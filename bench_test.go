package repro

// One testing.B benchmark per paper artifact (DESIGN.md §4): running
// `go test -bench=. -benchmem` regenerates every table, figure, claim, and
// ablation and reports the headline metric of each as a custom benchmark
// metric, so the paper's shapes are visible straight from the bench output.
//
// Absolute wall-clock numbers measure the *simulator*; the reproduced
// quantities are the ReportMetric values (virtual-time ratios, utilization
// percentages, overhead factors).

import (
	"context"
	"testing"

	"repro/internal/paper"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// benchArtifact regenerates one artifact per iteration and exports selected
// metrics through b.ReportMetric.
func benchArtifact(b *testing.B, id string, export map[string]string) {
	b.Helper()
	var last *paper.Artifact
	for i := 0; i < b.N; i++ {
		a, err := paper.Generate(id)
		if err != nil {
			b.Fatal(err)
		}
		last = a
	}
	for metric, unit := range export {
		if v, ok := last.Metrics[metric]; ok {
			b.ReportMetric(v, unit)
		} else {
			b.Fatalf("artifact %s missing metric %s", id, metric)
		}
	}
}

// BenchmarkTable1DeviceMatrix regenerates Table 1 (device properties seen
// from a CPU); the exported metrics are the measured DRAM and far-memory
// latencies bounding the table.
func BenchmarkTable1DeviceMatrix(b *testing.B) {
	benchArtifact(b, "table1", map[string]string{
		"latency_ns/DRAM":         "DRAM-ns",
		"latency_ns/Disagg. Mem.": "far-ns",
	})
}

// BenchmarkTable2Regions regenerates Table 2 (the three predefined Memory
// Regions) and exports each class's measured access cost.
func BenchmarkTable2Regions(b *testing.B) {
	benchArtifact(b, "table2", map[string]string{
		"access_ns/Private Scratch": "priv-ns",
		"access_ns/Global State":    "gstate-ns",
		"access_ns/Global Scratch":  "gscratch-ns",
	})
}

// BenchmarkTable3Apps runs all four Table 3 application workloads
// (DBMS, ML, HPC, streaming) end-to-end.
func BenchmarkTable3Apps(b *testing.B) {
	benchArtifact(b, "table3", map[string]string{"placements": "regions"})
}

// BenchmarkFigure1Pooling contrasts compute-centric static provisioning
// with the memory-centric pool (admission + utilization).
func BenchmarkFigure1Pooling(b *testing.B) {
	benchArtifact(b, "figure1", map[string]string{
		"static_util": "static-util",
		"pooled_util": "pooled-util",
	})
}

// BenchmarkFigure2Hospital executes the Figure 2 hospital dataflow.
func BenchmarkFigure2Hospital(b *testing.B) {
	benchArtifact(b, "figure2", map[string]string{"makespan_ns": "makespan-ns"})
}

// BenchmarkFigure3Mapping regenerates the per-compute-device mapping of the
// same logical region request.
func BenchmarkFigure3Mapping(b *testing.B) {
	benchArtifact(b, "figure3", map[string]string{
		"latency_ns/node0/cpu0": "cpu-ns",
		"latency_ns/node0/gpu0": "gpu-ns",
	})
}

// BenchmarkFigure4Ownership contrasts zero-copy ownership transfer with
// physical copies across handover sizes.
func BenchmarkFigure4Ownership(b *testing.B) {
	benchArtifact(b, "figure4", map[string]string{
		"copy_ns/67108864": "copy64MiB-ns",
	})
}

// BenchmarkClaimNUMA reproduces the ≈3× NUMA slowdown claim [39].
func BenchmarkClaimNUMA(b *testing.B) {
	benchArtifact(b, "claim-numa", map[string]string{"slowdown": "x-slowdown"})
}

// BenchmarkClaimPlacement reproduces the ≈3× naive-placement claim [59].
func BenchmarkClaimPlacement(b *testing.B) {
	benchArtifact(b, "claim-placement", map[string]string{"slowdown": "x-slowdown"})
}

// BenchmarkClaimUtilization reproduces the 50-65% utilization claim [38,56].
func BenchmarkClaimUtilization(b *testing.B) {
	benchArtifact(b, "claim-util", map[string]string{
		"static_util": "static-util",
		"pooled_util": "pooled-util",
	})
}

// BenchmarkClaimFaultTolerance reproduces the Carbink trade-off [62]:
// erasure coding's overhead vs replication's.
func BenchmarkClaimFaultTolerance(b *testing.B) {
	benchArtifact(b, "claim-fault", map[string]string{
		"replication_overhead": "repl-x",
		"erasure_overhead":     "ec-x",
	})
}

// BenchmarkClaimSwizzle reproduces the pointer-swizzling win [37,48,62].
func BenchmarkClaimSwizzle(b *testing.B) {
	benchArtifact(b, "claim-swizzle", map[string]string{"speedup": "x-speedup"})
}

// BenchmarkAblationAsync measures the async far-memory interface (A1).
func BenchmarkAblationAsync(b *testing.B) {
	benchArtifact(b, "ablation-async", map[string]string{"speedup": "x-speedup"})
}

// BenchmarkAblationScheduler measures HEFT vs FIFO vs round-robin (A2).
func BenchmarkAblationScheduler(b *testing.B) {
	benchArtifact(b, "ablation-sched", map[string]string{
		"makespan_ns/HEFT": "heft-ns",
		"makespan_ns/FIFO": "fifo-ns",
	})
}

// BenchmarkAblationCoherence measures shared vs exclusive ownership (A3).
func BenchmarkAblationCoherence(b *testing.B) {
	benchArtifact(b, "ablation-coherence", map[string]string{"ratio": "x-shared-cost"})
}

// BenchmarkAblationTiering measures hotness-driven region tiering (A4).
func BenchmarkAblationTiering(b *testing.B) {
	benchArtifact(b, "ablation-tiering", map[string]string{"speedup": "x-speedup"})
}

// BenchmarkAblationPlanner measures the declarative access-plan compiler (A5).
func BenchmarkAblationPlanner(b *testing.B) {
	benchArtifact(b, "ablation-planner", map[string]string{
		"plan_ns/memnode0/far0": "far-plan-ns",
		"d1_ns/memnode0/far0":   "far-sync-ns",
	})
}

// BenchmarkAblationMultiJob measures concurrent job serving (A6).
func BenchmarkAblationMultiJob(b *testing.B) {
	benchArtifact(b, "ablation-multijob", map[string]string{"speedup": "x-speedup"})
}

// BenchmarkAblationRecovery measures checkpointed restart (A7).
func BenchmarkAblationRecovery(b *testing.B) {
	benchArtifact(b, "ablation-recovery", map[string]string{"speedup": "x-speedup"})
}

// BenchmarkFigure1Sweep runs the offered-load sweep behind Figure 1 and
// exports the saturation point: static utilization ceiling vs pooled.
func BenchmarkFigure1Sweep(b *testing.B) {
	benchArtifact(b, "figure1-sweep", map[string]string{
		"static_util/load_1.04": "static-ceiling",
		"pooled_util/load_1.04": "pooled-ceiling",
	})
}

// BenchmarkTable1Sweep runs the access-size sweep and exports the
// latency-vs-bandwidth crossover compression.
func BenchmarkTable1Sweep(b *testing.B) {
	benchArtifact(b, "table1-sweep", map[string]string{
		"far_vs_dram_small": "x-at-64B",
		"far_vs_dram_large": "x-at-64MiB",
	})
}

// BenchmarkServeConcurrent drives core.Server from parallel goroutines —
// the serving path under concurrent submission load. Every job must be
// admitted and completed; jobs/epoch reports how much batching the worker
// pool achieved.
func BenchmarkServeConcurrent(b *testing.B) {
	srv, err := NewServer(ServerConfig{EpochWorkers: 4, MaxBatch: 8, QueueDepth: 256, Block: true})
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := srv.Submit(context.Background(), workload.DBMS(workload.DefaultDBMS())); err != nil {
				b.Error(err)
			}
		}
	})
	if err := srv.Close(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	tel := srv.Runtime().Telemetry()
	admitted := tel.Counter(telemetry.LayerRuntime, "server_admitted")
	completed := tel.Counter(telemetry.LayerRuntime, "server_completed")
	epochs := tel.Counter(telemetry.LayerRuntime, "server_epochs")
	if admitted != int64(b.N) || completed != int64(b.N) {
		b.Fatalf("admitted %d, completed %d, want %d each", admitted, completed, b.N)
	}
	if live := srv.Runtime().Regions().Live(); live != 0 {
		b.Fatalf("leaked %d regions", live)
	}
	if epochs > 0 {
		b.ReportMetric(float64(completed)/float64(epochs), "jobs/epoch")
	}
}
