// DBMS: the Table 3 database row — a query pipeline
// (scan → filter → hash-aggregate → hash-join) whose operator state lives
// in Private Scratch, whose admission latch lives in Global State, and
// whose aggregation hash index is re-used by the join via Global Scratch.
//
// The example runs the same query twice: once with the runtime's cost-model
// placement optimizer and once with an adversarial "worst legal placement"
// — the paper's intro claim that naive placement costs up to 3× becomes
// directly observable.
//
// Run with: go run ./examples/dbms
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/region"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	cfg := workload.DBMSConfig{Rows: 8192, Groups: 128, Predicate: 3}

	run := func(name string, mk func(*topology.Topology) region.Placer) *core.Report {
		topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
		if err != nil {
			log.Fatal(err)
		}
		rt, err := core.New(core.Config{Topology: topo, Placer: mk(topo)})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := rt.Run(workload.DBMS(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s placement ===\n", name)
		fmt.Print(rep.String())
		fmt.Println()
		return rep
	}

	best := run("optimizer", func(t *topology.Topology) region.Placer { return placement.NewBestFit(t) })
	worst := run("naive (worst legal)", func(t *topology.Topology) region.Placer { return placement.NewWorst(t) })

	fmt.Printf("query makespan: optimizer %v vs naive %v — naive is %.1f× slower\n",
		best.Makespan, worst.Makespan, float64(worst.Makespan)/float64(best.Makespan))
	fmt.Println("\nthe hash-join re-used the aggregation's hash index from Global Scratch:")
	fmt.Printf("  agg-index lives on %s\n", best.Tasks["hash-aggregate"].Regions["agg-index"])
	for _, l := range best.Tasks["hash-join"].Logs {
		fmt.Println("  join:", l)
	}
}
