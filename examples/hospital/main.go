// Hospital: the paper's running example (Figure 2) as a runnable program.
//
// A CCTV stream is preprocessed and face-recognized on the GPU; the
// sightings fan out to three CPU tasks: working-hour tracking, a public
// utilization feed, and caregiver alerting whose missing-patient ledger is
// declared *persistent* — watch the runtime place it on persistent media
// without the code ever naming PMem.
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.HospitalConfig{Frames: 64, FrameSize: 32 << 10, People: 512}
	report, err := rt.Run(workload.Hospital(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())

	fmt.Println("\nFigure 2 property annotations, as honoured by the runtime:")
	checks := []struct {
		task, region, want string
	}{
		{"preprocess", "framebuf", "GPU-local scratch (GDDR)"},
		{"face-recognition", "directory", "shared, coherent (Global Scratch)"},
		{"track-hours", "hours", "shared, coherent+sync (Global State)"},
		{"alert-caregivers", "missing-patients", "persistent media"},
	}
	for _, c := range checks {
		dev := report.Tasks[c.task].Regions[c.region]
		fmt.Printf("  %-18s %-18s → %-16s (%s)\n", c.task, c.region, dev, c.want)
	}
	ledger := report.Tasks["alert-caregivers"].Regions["missing-patients"]
	if m, ok := rt.Topology().Memory(ledger); ok && m.Persistent {
		fmt.Println("\n✓ the missing-patient ledger survives a crash: placed on", ledger)
	} else {
		fmt.Println("\n✗ persistence property violated!")
	}
}
