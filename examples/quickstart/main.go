// Quickstart: the smallest complete program against the disaggregated
// programming model.
//
// It builds a two-task job — a producer that writes a greeting into its
// output region and a consumer that reads it — and lets the runtime decide
// everything the paper says developers should not decide themselves: which
// compute device runs each task, which physical memory serves each region,
// and how the producer's output becomes the consumer's input (ownership
// transfer, not a copy).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataflow"
)

func main() {
	// A runtime with all defaults: the reference single-node testbed
	// (2 CPUs, GPU, TPU, FPGA, nine memory tiers, a far-memory pool),
	// the best-fit placement optimizer, and the HEFT scheduler.
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	job := dataflow.NewJob("quickstart")

	produce := job.Task("produce", dataflow.Props{
		Ops: 1e6, // declared compute work, used by the scheduler
	}, func(ctx dataflow.Ctx) error {
		// Output() allocates the region that will be handed to the next
		// task (Fig. 4's "Out"). We never say *where* — only how big.
		out, err := ctx.Output(64)
		if err != nil {
			return err
		}
		now, err := out.WriteAt(ctx.Now(), 0, []byte("hello, disaggregated world!"))
		if err != nil {
			return err
		}
		ctx.Wait(now) // advance the task's virtual clock past the write
		dev, _ := out.DeviceID()
		ctx.Log("wrote greeting into %s", dev)
		return nil
	})

	consume := job.Task("consume", dataflow.Props{
		Ops: 1e6,
	}, func(ctx dataflow.Ctx) error {
		// Inputs() returns the regions our predecessors produced. The
		// runtime moved ownership to us — zero bytes were copied if this
		// task's compute device can address the producer's placement.
		in := ctx.Inputs()[0]
		buf := make([]byte, 27)
		now, err := in.ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("read back: %q", buf)
		return nil
	})

	produce.Then(consume)

	report, err := rt.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())
	fmt.Printf("\nvirtual makespan: %v (leaked regions: %d)\n",
		report.Makespan, rt.Regions().Live())
}
