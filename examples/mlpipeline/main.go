// ML pipeline: the Table 3 ML/AI row — a Cachew-style input pipeline.
// CPU tasks ingest and preprocess samples into a shared Global Scratch
// cache; a TPU training task streams the cache asynchronously (prefetching
// the next sample while computing gradients on the current one) and keeps
// its weights in accelerator-local Private Scratch.
//
// The run ends with the cross-layer telemetry profile — the paper's
// challenge 8(1) answer: even though the runtime hides placement, you can
// still see which abstraction layer your time went to.
//
// Run with: go run ./examples/mlpipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	tel := telemetry.NewRegistry()
	rt, err := core.New(core.Config{Telemetry: tel})
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.MLConfig{Samples: 256, SampleSize: 1024, Features: 128, Epochs: 3}
	report, err := rt.Run(workload.ML(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())

	fmt.Println("\nplacements the pipeline never had to spell out:")
	fmt.Printf("  sample cache (Global Scratch) → %s\n", report.Tasks["preprocess"].Regions["sample-cache"])
	fmt.Printf("  worker state (Global State)   → %s\n", report.Tasks["preprocess"].Regions["worker-state"])
	fmt.Printf("  model weights (Priv. Scratch) → %s\n", report.Tasks["train"].Regions["weights"])
	fmt.Printf("  trained model (final output)  → %s\n", report.FinalOutputs["train"])

	fmt.Println("\ncross-layer profile (challenge 8(1)):")
	fmt.Print(tel.Report())
}
