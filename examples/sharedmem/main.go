// Sharedmem: the paper's §2.1 communication pattern in isolation —
// "performance-critical inter-task communication is being implemented via
// message-passing over shared memory" [41] — plus Broom-style region
// allocation [25].
//
// A producer and a consumer (think: two tasks of a dataflow, pinned to
// different CPU sockets) exchange records through a ring buffer that lives
// inside a shared, coherent Memory Region. The records themselves are
// bump-allocated in a Broom-style arena inside a transferable region: the
// producer builds an object graph GC-free, hands the whole region over by
// ownership transfer (zero copies), and sends only the 8-byte Ref through
// the ring.
//
// Run with: go run ./examples/sharedmem
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"repro/internal/arena"
	"repro/internal/channel"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
)

func main() {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		log.Fatal(err)
	}

	// 1. The control channel: a ring in coherent Global State, shared by
	//    producer (cpu0) and consumer (cpu1).
	ringRegion, err := mgr.Alloc(region.Spec{
		Name: "ring", Class: props.GlobalState, Size: channel.Geometry(16, 32),
		Owner: "producer", Compute: "node0/cpu0",
	})
	if err != nil {
		log.Fatal(err)
	}
	ringConsumer, err := ringRegion.Share("consumer", "node0/cpu1")
	if err != nil {
		log.Fatal(err)
	}
	tx, err := channel.Attach(ringRegion, 16, 32)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := channel.Attach(ringConsumer, 16, 32)
	if err != nil {
		log.Fatal(err)
	}
	var now time.Duration
	if now, err = tx.Init(0); err != nil {
		log.Fatal(err)
	}
	ringDev, _ := ringRegion.DeviceID()
	fmt.Printf("ring buffer lives on %s (coherent, shared cpu0↔cpu1)\n", ringDev)

	// 2. The data plane: an arena of records in a transferable region.
	dataRegion, err := mgr.Alloc(region.Spec{
		Name: "records", Class: props.Transfer, Size: 64 << 10,
		Owner: "producer", Compute: "node0/cpu0",
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := arena.New(dataRegion)
	if err != nil {
		log.Fatal(err)
	}

	// Producer: build a GC-free linked list of readings and announce the
	// head Ref through the ring.
	head := arena.NilRef
	for i := 1; i <= 8; i++ {
		head, now, err = a.Push(now, head, uint64(i*i))
		if err != nil {
			log.Fatal(err)
		}
	}
	msg := make([]byte, 16)
	binary.BigEndian.PutUint64(msg[:8], uint64(head))
	binary.BigEndian.PutUint64(msg[8:], uint64(a.Used()))
	if now, err = tx.Send(now, msg, time.Microsecond, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer built %d records (%d arena bytes) and sent Ref %d through the ring\n",
		a.Live(), a.Used(), head)

	// Ownership handover: the out becomes the in (Fig. 4) — zero copies.
	consumerData, cost, err := dataRegion.Transfer(now, "consumer", "node0/cpu1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record region handed to the consumer (transfer cost: %v)\n", cost-now)

	// Consumer: receive the Ref, re-attach the arena, walk the graph.
	got, now, err := rx.Recv(now, time.Microsecond, 100)
	if err != nil {
		log.Fatal(err)
	}
	ref := arena.Ref(binary.BigEndian.Uint64(got[:8]))
	bump := int64(binary.BigEndian.Uint64(got[8:]))
	a2, err := arena.Attach(consumerData, bump)
	if err != nil {
		log.Fatal(err)
	}
	var sum uint64
	count := 0
	if now, err = a2.Walk(now, ref, func(v uint64) bool {
		sum += v
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer walked %d records, sum %d, virtual time %v\n", count, sum, now)

	if err := consumerData.Release(); err != nil {
		log.Fatal(err)
	}
	ringConsumer.Release()
	ringRegion.Release()
	if mgr.Live() != 0 {
		log.Fatalf("leaked %d regions", mgr.Live())
	}
	fmt.Println("✓ zero regions leaked — lifetimes tracked by ownership, not GC")
}
