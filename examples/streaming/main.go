// Streaming: the paper's streaming scenario served end to end, plus the
// fault-tolerance discussion (challenge 8(3)) made concrete.
//
// A clickstream is declared as a stream spec — source, tumbling windows,
// a per-window task graph — and submitted whole through the serving
// engine's SubmitStream. Windows retire in order as the virtual-time
// watermark advances; mid-stream we cancel the ticket (the simulated
// crash) and resubmit the same spec with the crashed ticket's ResumeID:
// the completed windows are skipped from their checkpointed retirement
// markers and the interrupted window resumes from its task snapshots
// (partial replay) instead of re-executing from scratch.
//
// The epilogue then checkpoints the stream's summary into *erasure-coded
// far memory* (the Carbink-style store), crashes a memory node, reads the
// checkpoint back through the degraded path, and recovers full redundancy
// — the ~1.5× overhead of RS(6,4) instead of replication's 3×.
//
// Run with: go run ./examples/streaming
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"repro"
)

const (
	windows    = 6
	windowSize = 32
	eventBytes = 64
)

// spec declares the clickstream. Each call returns a fresh spec with a
// fresh source — sources are consumed in place, and the resumed run must
// replay the same events the crashed run saw.
func spec() repro.StreamSpec {
	events := make([]repro.StreamEvent, windows*windowSize)
	for i := range events {
		payload := make([]byte, eventBytes)
		binary.BigEndian.PutUint64(payload, uint64(i))
		events[i] = repro.StreamEvent{Key: uint64(i % 8), Payload: payload}
	}
	return repro.StreamSpec{
		Name:       "clickstream",
		Source:     repro.NewSliceSource(events),
		WindowSize: windowSize,
		Build: func(w repro.StreamWindow, j *repro.Job) error {
			ingest := j.Task("ingest", repro.TaskProps{
				Compute: repro.OnCPU, Ops: float64(len(w.Events)) * 50, OutputBytes: w.Bytes(),
			}, func(ctx repro.TaskCtx) error {
				recv, err := ctx.Scratch("recv-buffer", 4*eventBytes)
				if err != nil {
					return err
				}
				out, err := ctx.Output(w.Bytes())
				if err != nil {
					return err
				}
				var off int64
				for i, ev := range w.Events {
					now, err := recv.WriteAt(ctx.Now(), int64(i%4)*eventBytes, ev.Payload)
					if err != nil {
						return err
					}
					ctx.Wait(now)
					now, err = out.WriteAt(ctx.Now(), off, ev.Payload)
					if err != nil {
						return err
					}
					ctx.Wait(now)
					off += int64(len(ev.Payload))
				}
				ctx.Log("window %d: ingested %d events", w.Index, len(w.Events))
				return nil
			})
			fold := j.Task("fold", repro.TaskProps{
				Compute: repro.OnCPU, Ops: float64(len(w.Events)) * 120, OutputBytes: 8,
			}, func(ctx repro.TaskCtx) error {
				in := ctx.Inputs()[0]
				var sum uint64
				buf := make([]byte, eventBytes)
				for i := range w.Events {
					now, err := in.ReadAt(ctx.Now(), int64(i)*eventBytes, buf)
					if err != nil {
						return err
					}
					ctx.Wait(now)
					sum += binary.BigEndian.Uint64(buf)
				}
				out, err := ctx.Output(8)
				if err != nil {
					return err
				}
				res := make([]byte, 8)
				binary.BigEndian.PutUint64(res, sum)
				now, err := out.WriteAt(ctx.Now(), 0, res)
				if err != nil {
					return err
				}
				ctx.Wait(now)
				ctx.Log("window %d: folded %d events, sum %d", w.Index, len(w.Events), sum)
				return nil
			})
			ingest.Then(fold)
			return nil
		},
	}
}

func main() {
	// One serving stack with checkpointed recovery: stream windows snapshot
	// task outputs into replicated far memory, which is what makes the
	// mid-stream crash below recoverable.
	ckFabric := repro.NewFabric(repro.FabricConfig{})
	for i := 0; i < 3; i++ {
		if err := ckFabric.AddNode(fmt.Sprintf("ckmem%d", i), 1<<26); err != nil {
			log.Fatal(err)
		}
	}
	ckStore, err := repro.NewReplicatedStore(ckFabric, 2)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := repro.NewServer(repro.ServerConfig{
		EpochWorkers: 4, Block: true,
		Recovery: &repro.RecoveryPolicy{Store: ckStore, MaxAttempts: 3, PartialReplay: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("serving the clickstream, then crashing it mid-window:")
	tk, err := srv.SubmitStream(ctx, spec())
	if err != nil {
		log.Fatal(err)
	}
	for rep := range tk.Reports() {
		fmt.Printf("  %-22s makespan %12v\n", rep.Job, rep.Makespan)
		if tk.Windows() >= 2 {
			tk.Cancel() // the simulated crash: checkpoints survive
		}
	}
	<-tk.Done()
	fmt.Printf("crashed after %d windows (watermark %v)\n", tk.Windows(), tk.Watermark())

	fmt.Println("\nresuming from the last completed window:")
	rtk, err := srv.SubmitStream(ctx, spec(), repro.SubmitOptions{ResumeID: tk.ResumeID()})
	if err != nil {
		log.Fatal(err)
	}
	var restored int
	for rep := range rtk.Reports() {
		line := fmt.Sprintf("  %-22s makespan %12v", rep.Job, rep.Makespan)
		if rep.SkippedTasks > 0 {
			restored += rep.SkippedTasks
			line += fmt.Sprintf("  (%d task(s) restored from checkpoint)", rep.SkippedTasks)
		}
		fmt.Println(line)
	}
	<-rtk.Done()
	if err := rtk.Err(); err != nil {
		log.Fatal(err)
	}
	if rtk.SkippedWindows()+rtk.Windows() != windows {
		log.Fatalf("resume lost windows: %d skipped + %d retired != %d",
			rtk.SkippedWindows(), rtk.Windows(), windows)
	}
	fmt.Printf("resume skipped %d completed windows, restored %d task(s), final watermark %v\n",
		rtk.SkippedWindows(), restored, rtk.Watermark())
	if err := srv.Close(ctx); err != nil {
		log.Fatal(err)
	}

	// Checkpoint the stream's summary into fault-tolerant far memory.
	fmt.Println("\ncheckpointing the stream summary into erasure-coded far memory:")
	fabric := repro.NewFabric(repro.FabricConfig{})
	for i := 0; i < 6; i++ {
		if err := fabric.AddNode(fmt.Sprintf("memnode%d", i), 1<<24); err != nil {
			log.Fatal(err)
		}
	}
	store, err := repro.NewErasureStore(fabric, repro.ErasureConfig{Data: 4, Parity: 2, SpanSize: 8192})
	if err != nil {
		log.Fatal(err)
	}
	checkpoint := []byte(fmt.Sprintf("streaming checkpoint: watermark=%v windows=%d",
		rtk.Watermark(), rtk.SkippedWindows()+rtk.Windows()))
	id, putTime, err := store.Put(checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	logical, physical := store.StoredBytes()
	fmt.Printf("  stored %d logical bytes as %d physical (%.2f× overhead) in %v\n",
		logical, physical, float64(physical)/float64(logical), putTime)

	fmt.Println("  crashing memnode0 ...")
	if err := fabric.Crash("memnode0"); err != nil {
		log.Fatal(err)
	}
	got, degradedTime, err := store.Get(id)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, checkpoint) {
		log.Fatal("checkpoint corrupted after crash!")
	}
	fmt.Printf("  degraded read reconstructed the checkpoint in %v\n", degradedTime)

	repaired, recTime, err := store.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovery rebuilt %d shard(s) in %v — full redundancy restored\n", repaired, recTime)
	fmt.Println("✓ no data lost across the node crash")
}
