// Streaming: the Table 3 streaming row, plus the paper's fault-tolerance
// discussion (challenge 8(3)) made concrete.
//
// A windowed aggregation runs on the runtime; its window results are then
// checkpointed into *erasure-coded far memory* (the Carbink-style store).
// We crash a memory node mid-demo, read the checkpoint back through the
// degraded path, recover full redundancy, and verify nothing was lost —
// all with the ~1.5× memory overhead of RS(6,4) instead of replication's 3×.
//
// Run with: go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

func main() {
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.StreamingConfig{Events: 1024, EventSize: 128, WindowSize: 128, Keys: 32}
	report, err := rt.Run(workload.Streaming(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())

	// Checkpoint the pipeline's result cache into fault-tolerant far memory.
	fmt.Println("\ncheckpointing window results into erasure-coded far memory:")
	fabric := cluster.NewFabric(cluster.Config{})
	for i := 0; i < 6; i++ {
		if err := fabric.AddNode(fmt.Sprintf("memnode%d", i), 1<<24); err != nil {
			log.Fatal(err)
		}
	}
	store, err := fault.NewErasureStore(fabric, fault.ErasureConfig{Data: 4, Parity: 2, SpanSize: 8192})
	if err != nil {
		log.Fatal(err)
	}
	checkpoint := []byte(fmt.Sprintf("streaming checkpoint: makespan=%v windows=%d", report.Makespan, cfg.Events/cfg.WindowSize))
	id, putTime, err := store.Put(checkpoint)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Flush(); err != nil {
		log.Fatal(err)
	}
	logical, physical := store.StoredBytes()
	fmt.Printf("  stored %d logical bytes as %d physical (%.2f× overhead) in %v\n",
		logical, physical, float64(physical)/float64(logical), putTime)

	fmt.Println("  crashing memnode0 ...")
	if err := fabric.Crash("memnode0"); err != nil {
		log.Fatal(err)
	}
	got, degradedTime, err := store.Get(id)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, checkpoint) {
		log.Fatal("checkpoint corrupted after crash!")
	}
	fmt.Printf("  degraded read reconstructed the checkpoint in %v\n", degradedTime)

	repaired, recTime, err := store.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovery rebuilt %d shard(s) in %v — full redundancy restored\n", repaired, recTime)
	fmt.Println("✓ no data lost across the node crash")
}
