# Standard local CI for the repository. `make` runs the full gate.

GO ?= go

.PHONY: all build vet test race bench serve clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive layers under the race detector: the serving
# engine (core.Server, epochs) and the region manager.
race:
	$(GO) test -race ./internal/core/... ./internal/region/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Smoke-run the admission-controlled serving mode.
serve:
	$(GO) run ./cmd/disaggsim -serve -jobs 16 -workers 4

clean:
	$(GO) clean ./...
