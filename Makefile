# Standard local CI for the repository. `make` runs the full gate.

GO ?= go

.PHONY: all build vet test race bench bench-smoke loadgen-smoke doccheck serve serve-recover clean

all: build vet test race doccheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive layers under the race detector: the serving
# engine (core.Server, epochs, recovery), the region manager, the fault
# injector/stores, and the telemetry registry.
race:
	$(GO) test -race ./internal/core/... ./internal/region/... ./internal/fault/... ./internal/telemetry/... ./internal/cluster/... ./internal/shard/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short-mode smoke of the wavefront-executor benchmarks (wide-DAG speedup
# curve + serving path), with machine-readable results for CI artifacts.
# Each sub-benchmark also asserts the virtual makespan is identical across
# pool sizes, so this doubles as a determinism gate. The committed
# bench/BENCH_*_baseline.json captures are the before; the fresh run is the
# after (previous local runs are kept as BENCH_*_before.json), and benchgate
# fails the target when serve throughput regressed >10% vs the baseline
# (override with BENCHGATE_TOLERANCE).
bench-smoke: loadgen-smoke
	@for f in BENCH_parallel.json BENCH_serve.json BENCH_recover.json BENCH_shard.json BENCH_stream.json BENCH_migrate.json; do \
		if [ -f $$f ]; then cp $$f $${f%.json}_before.json; fi; done
	$(GO) test -run XXX -bench 'BenchmarkWideDAGParallel|BenchmarkServeParallel' \
		-benchtime 2x -benchmem -json ./internal/core/ > BENCH_parallel.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_parallel.json | head -20 || true
	$(GO) test -run XXX -bench BenchmarkServeOverlap \
		-benchtime 2x -benchmem -json ./internal/core/ > BENCH_serve.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_serve.json | head -20 || true
	$(GO) test -run XXX -bench BenchmarkRecoverPartial \
		-benchtime 2x -benchmem -json ./internal/core/ > BENCH_recover.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_recover.json | head -20 || true
	$(GO) test -run XXX -bench BenchmarkServeSharded \
		-benchtime 2x -benchmem -json ./internal/shard/ > BENCH_shard.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_shard.json | head -20 || true
	$(GO) test -run XXX -bench BenchmarkStreamServe \
		-benchtime 2x -benchmem -json ./internal/core/ > BENCH_stream.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_stream.json | head -20 || true
	$(GO) test -run XXX -bench BenchmarkClusterRebalance \
		-benchtime 2x -benchmem -json ./internal/shard/ > BENCH_migrate.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_migrate.json | head -20 || true
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_serve_baseline.json -current BENCH_serve.json
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_shard_baseline.json -current BENCH_shard.json \
		-metrics jobs/s,speedup
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_stream_baseline.json -current BENCH_stream.json \
		-metrics windows/s
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_migrate_baseline.json -current BENCH_migrate.json \
		-metrics exported/op,recalled/op -tolerance 0

# Seconds-scale fixed-seed open-loop serving smoke: 4k submissions against
# the SLO admission gate, replayed twice — the run itself fails if the two
# replays' admission decisions diverge. The gated metrics (admitted,
# slo-met) are deterministic counts for the fixed seed, so benchgate runs
# at zero tolerance and the gate is immune to machine speed.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -n 4000 -seed 42 -rho 1.5 -deadline 40us -repeat 2 \
		-bench-out BENCH_loadgen.json
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_loadgen_baseline.json \
		-current BENCH_loadgen.json -metrics admitted,slo-met -tolerance 0
	$(GO) run ./cmd/loadgen -n 4000 -seed 42 -rho 1.5 -deadline 40us -real -1 \
		-repeat 2 -shards 2 -bench-out BENCH_loadgen_shard.json
	$(GO) run ./cmd/benchgate -baseline bench/BENCH_loadgen_shard_baseline.json \
		-current BENCH_loadgen_shard.json -metrics admitted,slo-met -tolerance 0

# Fail if any exported identifier in the facade package lacks a doc comment.
doccheck:
	$(GO) run ./cmd/doccheck .

# Smoke-run the admission-controlled serving mode.
serve:
	$(GO) run ./cmd/disaggsim -serve -jobs 16 -workers 4

# Smoke-run fault-tolerant serving: injected faults, checkpointed recovery.
serve-recover:
	$(GO) run ./cmd/disaggsim -serve -jobs 16 -workers 4 -recover -faultrate 0.4 -maxattempts 8

clean:
	$(GO) clean ./...
