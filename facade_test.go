package repro_test

// The facade test doubles as the "external adopter" check: everything a
// downstream user needs is reachable through the root package alone.

import (
	"context"
	"errors"
	"testing"

	"repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	rt, err := repro.NewRuntime(repro.RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	job := repro.NewJob("facade")
	produce := job.Task("produce", repro.TaskProps{Ops: 1e5}, func(ctx repro.TaskCtx) error {
		out, err := ctx.Output(64)
		if err != nil {
			return err
		}
		now, err := out.WriteAt(ctx.Now(), 0, []byte("via facade"))
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	consume := job.Task("consume", repro.TaskProps{Compute: repro.OnCPU, Ops: 1e5}, func(ctx repro.TaskCtx) error {
		buf := make([]byte, 10)
		now, err := ctx.Inputs()[0].ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		if string(buf) != "via facade" {
			t.Errorf("payload = %q", buf)
		}
		return nil
	})
	produce.Then(consume)
	rep, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
	if rt.Regions().Live() != 0 {
		t.Error("regions leaked through the facade")
	}
}

func TestFacadeCustomAssembly(t *testing.T) {
	topo, err := repro.BuildSingleNode(repro.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	tel := repro.NewTelemetry()
	rt, err := repro.NewRuntime(repro.RuntimeConfig{
		Topology:  topo,
		Placer:    repro.NewBestFit(topo),
		Scheduler: repro.HEFT{},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := repro.NewJob("custom")
	job.Task("t", repro.TaskProps{Ops: 1e5, MemLatency: repro.LatencyLow}, func(ctx repro.TaskCtx) error {
		h, err := ctx.Scratch("ws", 4096)
		if err != nil {
			return err
		}
		_, err = h.WriteAt(ctx.Now(), 0, []byte{1})
		return err
	})
	if _, err := rt.Run(job); err != nil {
		t.Fatal(err)
	}
	if len(tel.Spans()) == 0 {
		t.Error("telemetry must observe the run")
	}
}

func TestFacadeConstantsAreTheRealOnes(t *testing.T) {
	if repro.PrivateScratch.String() != "Private Scratch" {
		t.Error("region class constants must alias the internal ones")
	}
	if repro.LatencyLow.Ceiling() <= 0 {
		t.Error("latency class constants must alias the internal ones")
	}
	if repro.OnGPU.String() != "GPU" {
		t.Error("device preferences must alias the internal ones")
	}
}

func TestFacadeServer(t *testing.T) {
	// The serving engine is fully drivable through the facade alone.
	srv, err := repro.NewServer(repro.ServerConfig{EpochWorkers: 2, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	job := repro.NewJob("facade-serve")
	job.Task("t", repro.TaskProps{Ops: 1e6, OutputBytes: 1 << 12}, nil).
		Then(job.Task("u", repro.TaskProps{Ops: 1e6}, nil))
	rep, err := srv.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("served makespan must be positive")
	}
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), job); !errors.Is(err, repro.ErrServerClosed) {
		t.Errorf("err = %v, want repro.ErrServerClosed", err)
	}
}
