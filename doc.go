// Package repro is a from-scratch Go implementation of the system envisioned
// in "Programming Fully Disaggregated Systems" (Anneser, Vogel, Gruber,
// Bandle, Giceva — HotOS '23): a declarative, memory-centric programming
// model for dataflow applications on disaggregated hardware, together with
// the runtime system (typed Memory Regions, ownership, property-driven
// placement, resource-aware scheduling, coherence accounting, and
// fault-tolerant far memory) and a deterministic simulator of the hardware
// the paper assumes (CXL pools, accelerators, NIC-attached memory nodes).
//
// Start with README.md for the tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-artifact reproduction. The public
// programming model lives in internal/core and internal/dataflow; the
// paper's tables and figures regenerate via cmd/paperbench and the
// benchmarks in bench_test.go.
package repro
