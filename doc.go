// Package repro is a from-scratch Go implementation of the system envisioned
// in "Programming Fully Disaggregated Systems" (Anneser, Vogel, Gruber,
// Bandle, Giceva — HotOS '23): a declarative, memory-centric programming
// model for dataflow applications on disaggregated hardware, together with
// the runtime system the paper sketches and a deterministic simulator of the
// hardware it assumes (CXL pools, accelerators, NIC-attached memory nodes).
//
// # Programming model
//
// Applications are dataflow [Job] DAGs. Each [Task] declares what it needs —
// compute cost, device preference, output size, memory latency class,
// confidentiality, persistence — as [TaskProps] rather than imperatively
// grabbing resources (the paper's Fig. 2c). Task bodies receive a [TaskCtx]
// through which every memory operation flows: private scratch, the output
// region handed to successors, and named job-wide globals. A task with a nil
// body is "structural": the runtime synthesizes its compute charge and
// output region from the declared properties alone.
//
// Memory is organized as typed Memory Regions (Table 2 of the paper):
// [PrivateScratch], [GlobalState], [GlobalScratch], and [TransferRegion],
// each a bundle of declarative [Requirements] that the placement optimizer
// maps onto concrete simulated devices. A [RegionHandle] is an ownership
// capability; the runtime tracks lifetimes and reports leaks.
//
// # Runtime and determinism
//
// [NewRuntime] assembles the runtime system: a hardware [Topology], a
// placement policy ([NewBestFit], [NewWorstFit], [NewRandomFit]), and a
// scheduler ([HEFT], [FIFO], [RoundRobin]). Execution is simulated in
// virtual time: every compute charge and region access advances a task's
// virtual clock by a modeled cost, while real goroutines do the actual data
// movement. The wavefront executor dispatches ready tasks onto a worker
// pool of any size, yet the virtual outcome — the [Report] — is identical
// for every pool size, because wall-clock effects never feed back into
// virtual time.
//
// # Serving
//
// [NewServer] wraps a Runtime in an admission-controlled serving engine:
// a bounded queue, a worker pool that folds concurrent jobs into shared
// virtual-time epochs, and whole-job overlap inside each batch.
// [Server.SubmitAsync] enqueues without blocking and returns a [Ticket];
// Ticket.Wait collects the job's Report later. See
// [ExampleServer_SubmitAsync].
//
// # Sharded serving and the cluster fabric
//
// [NewCluster] scales serving horizontally: N shards — each a full
// Server over its own runtime — behind a consistent-hash router on the
// one-sided [Fabric] ([NewFabric]: Read/Write/CAS verbs, leases,
// partitions, crash faults). Submissions hash by job signature onto a
// virtual-node ring; a crashed shard's in-flight jobs re-route to the
// ring successor, which adopts the dead shard's fabric leases by CAS and
// (with [RecoveryPolicy] configured) resumes from the cluster-shared
// checkpoint store. With [ClusterConfig].Migrate, maintenance sweeps
// ([Cluster.Rebalance], tuned by [RebalancePolicy]) evict regions that
// go cold past the local tier hierarchy into remote shards' memory
// pools; the next access recalls them transparently, and
// [Cluster.MigrationStats] accounts the traffic. Reports stay
// byte-identical to solo runs at any shard count, with or without
// migration or failover. See [ExampleNewCluster].
//
// # Streaming
//
// [Server.SubmitStream] serves unbounded dataflows on the same engine: a
// [StreamSpec] declares a source, a tumbling window size, and a Build
// callback stamping each window's bounded DAG; windows are admitted like
// ordinary jobs, retire in order on the returned [StreamTicket], and
// advance a virtual-time watermark. Backpressure (MaxInFlight) is
// structural and deterministic; with recovery configured, retirement
// markers make a canceled stream resumable from its checkpoint
// namespace. See [ExampleServer_SubmitStream].
//
// # Fault tolerance and recovery
//
// A [FaultInjector] deterministically kills chosen task executions so
// recovery is reproducible. Task outputs are checkpointed through a
// [Checkpointer] into a fault-tolerant far-memory [FaultStore]
// ([NewReplicatedStore], or the erasure-coded store in internal/fault).
// Runtime.RunWithRecovery retries a failed job, completing checkpointed
// tasks from their snapshots instead of re-executing them.
//
// Runtime.RunWithPartialReplay is the lazy variant: the retry resumes from
// the failed task onward, and a snapshot's payload is fetched from the
// store only when a re-executed task actually reads it — snapshots whose
// consumers were themselves checkpointed are never transferred. Virtual
// time is unaffected by the laziness: partial replay produces a Report
// byte-identical to full replay at any worker count, including for batch
// mates of the failing job under a serving [RecoveryPolicy]. See
// [ExampleRuntime_RunWithPartialReplay] and DESIGN.md for the equivalence
// argument.
//
// # Where to look next
//
// README.md is the tour, DESIGN.md the system inventory and design notes,
// EXPERIMENTS.md the paper-artifact reproduction (makespan ablations,
// serving throughput, recovery latency). The runnable programs in
// examples/ exercise each subsystem end to end; cmd/disaggsim is the CLI
// front door and cmd/paperbench regenerates the paper's tables. This root
// package is a facade: the implementation lives in internal/ packages
// (core, dataflow, region, props, placement, sched, topology, cluster,
// fault, telemetry) and stays free to evolve behind these aliases.
package repro
