package repro

// This file is the module's public facade: downstream users import the
// root package and get the programming model without reaching into
// internal/ paths. The aliases are the stable API surface; the internal
// packages remain free to evolve behind them.

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Programming model (§2.1): jobs, tasks, declarative properties.
type (
	// Job is a dataflow application: a DAG of tasks.
	Job = dataflow.Job
	// Task is one node of the DAG.
	Task = dataflow.Task
	// TaskProps are the declarative task properties of Fig. 2c.
	TaskProps = dataflow.Props
	// TaskCtx is the execution context passed to task bodies.
	TaskCtx = dataflow.Ctx
	// TaskFn is a task body.
	TaskFn = dataflow.Fn
	// DevicePref selects the compute-device kind a task wants.
	DevicePref = dataflow.DevicePref
)

// Device preferences.
const (
	AnyDevice = dataflow.AnyDevice
	OnCPU     = dataflow.OnCPU
	OnGPU     = dataflow.OnGPU
	OnTPU     = dataflow.OnTPU
	OnFPGA    = dataflow.OnFPGA
)

// NewJob creates an empty dataflow job.
func NewJob(name string) *Job { return dataflow.NewJob(name) }

// Memory model (§2.2): requirements, region classes, handles.
type (
	// Requirements is a declarative memory request.
	Requirements = props.Requirements
	// RegionClass names the predefined Memory Regions of Table 2.
	RegionClass = props.RegionClass
	// RegionHandle is an owner's capability to a Memory Region.
	RegionHandle = region.Handle
	// LatencyClass buckets access latency for declarative requests.
	LatencyClass = props.LatencyClass
)

// Region classes (Table 2).
const (
	PrivateScratch = props.PrivateScratch
	GlobalState    = props.GlobalState
	GlobalScratch  = props.GlobalScratch
	TransferRegion = props.Transfer
)

// Latency classes.
const (
	LatencyAny    = props.LatencyAny
	LatencyLow    = props.LatencyLow
	LatencyMedium = props.LatencyMedium
	LatencyHigh   = props.LatencyHigh
	LatencyBulk   = props.LatencyBulk
)

// Runtime system (§2.3).
type (
	// Runtime is the RTS: placement, scheduling, ownership, lifetimes.
	Runtime = core.Runtime
	// ExecConfig is the shared execution configuration consumed by both
	// NewRuntime and ServerConfig's embedded defaults.
	ExecConfig = core.ExecConfig
	// RuntimeConfig assembles a Runtime; zero values get defaults.
	RuntimeConfig = core.Config
	// Report is the outcome of one job run.
	Report = core.Report
	// MultiReport is the outcome of a concurrent job batch.
	MultiReport = core.MultiReport
	// MultiConfig tunes concurrent execution.
	MultiConfig = core.MultiConfig
	// Checkpointer persists task outputs for Runtime.RunWithRecovery and
	// Runtime.RunWithPartialReplay.
	Checkpointer = core.Checkpointer
	// Server is the concurrent job-submission engine: bounded admission
	// queue, worker pool batching jobs into shared virtual-time epochs,
	// per-job cancellation, graceful drain.
	Server = core.Server
	// ServerConfig assembles a Server; zero values get serving defaults.
	ServerConfig = core.ServerConfig
	// Ticket is an asynchronous submission's handle: Done/Wait/ID
	// (Server.SubmitAsync).
	Ticket = core.Ticket
	// SubmitOptions is the unified per-submission surface accepted by
	// Submit, SubmitAsync, and SubmitStream (at most one per call):
	// admission inputs, tiering, resume, pre-admission, shard labeling.
	SubmitOptions = core.SubmitOptions
	// BatchMode selects how the serving pool forms virtual-time epochs
	// (ServerConfig.Batching).
	BatchMode = core.BatchMode
	// SLOPolicy makes admission deadline-aware (ServerConfig.SLO).
	SLOPolicy = core.SLOPolicy
	// AutoScalePolicy grows/shrinks the live worker pool against observed
	// queue-wait p99 (ServerConfig.AutoScale).
	AutoScalePolicy = core.AutoScalePolicy
	// RecoveryPolicy makes served jobs fault-tolerant: checkpointed task
	// outputs, bounded retries, virtual-time backoff (ServerConfig.Recovery).
	// Set PartialReplay to restore checkpoint payloads lazily on retries;
	// recovered reports stay byte-identical to full replay either way.
	RecoveryPolicy = core.RecoveryPolicy
	// Topology is the simulated hardware graph.
	Topology = topology.Topology
	// Telemetry is the cross-layer metrics registry.
	Telemetry = telemetry.Registry
)

// NewRuntime builds an RTS instance. A zero config gets the reference
// single-node testbed, the best-fit placement optimizer, and the HEFT
// scheduler.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return core.New(cfg) }

// NewCheckpointer wraps a fault-tolerant store for RunWithRecovery.
var NewCheckpointer = core.NewCheckpointer

// Fault tolerance (challenge 8(3)): durable far-memory stores for
// checkpoints, plus the deterministic fault-injection hook.
type (
	// FaultStore is a fault-tolerant far-memory object store (replication
	// or Carbink-style erasure coding).
	FaultStore = fault.Store
	// FaultInjector deterministically kills chosen task executions so
	// recovery can be exercised reproducibly (RuntimeConfig.Inject).
	FaultInjector = fault.Injector
	// Fabric is the simulated far-memory cluster fault stores write to.
	Fabric = cluster.Fabric
	// FabricConfig tunes the simulated fabric.
	FabricConfig = cluster.Config
	// ErasureConfig tunes the Carbink-style erasure-coded store.
	ErasureConfig = fault.ErasureConfig
)

var (
	// NewFabric builds a far-memory cluster for fault stores.
	NewFabric = cluster.NewFabric
	// NewReplicatedStore keeps k full copies of each object.
	NewReplicatedStore = fault.NewReplicatedStore
	// NewErasureStore stripes objects RS(data+parity) across fabric nodes.
	NewErasureStore = fault.NewErasureStore
	// NewFaultInjector fails the first `kills` executions of a seeded
	// `rate` fraction of task sites.
	NewFaultInjector = fault.NewInjector
	// ErrInjectedFault marks a deterministically injected task failure.
	ErrInjectedFault = fault.ErrInjected
)

// NewServer builds and starts a concurrent job-submission engine.
var NewServer = core.NewServer

// Epoch batching modes (ServerConfig.Batching).
const (
	// BatchOverlapped lets one worker batch several queued jobs into a
	// shared epoch (the serving default).
	BatchOverlapped = core.BatchOverlapped
	// BatchSequential runs one job per epoch — the debugging/baseline mode
	// previously spelled ServerConfig.Sequential.
	BatchSequential = core.BatchSequential
)

// Serving-layer errors.
var (
	// ErrQueueFull reports a rejected submission (non-blocking admission).
	ErrQueueFull = core.ErrQueueFull
	// ErrServerClosed reports a submission after Close.
	ErrServerClosed = core.ErrServerClosed
	// ErrDeadline reports an SLO rejection: predicted completion exceeds
	// the submission's deadline and the policy does not down-tier.
	ErrDeadline = core.ErrDeadline
	// ErrStreamCanceled is the terminal error of a canceled stream
	// (StreamTicket.Cancel or its submission context ending).
	ErrStreamCanceled = core.ErrStreamCanceled
)

// Streaming dataflows (Server.SubmitStream): an unbounded source cut into
// bounded windows, each window an ordinary job stamped from the spec's
// template and executed on the serving pool.
type (
	// StreamSpec declares a streaming dataflow: source, window size, the
	// per-window task graph, key partitioning, and the in-flight bound.
	StreamSpec = stream.Spec
	// StreamEvent is one element of a stream: a partition key plus payload.
	StreamEvent = stream.Event
	// StreamSource produces a stream's events in order.
	StreamSource = stream.Source
	// StreamSourceFunc adapts a function to the StreamSource interface.
	StreamSourceFunc = stream.SourceFunc
	// StreamWindow is one bounded slice of the stream, handed to the
	// spec's Build callback.
	StreamWindow = stream.Window
	// StreamTicket is a live streaming submission: per-window reports,
	// watermark, Cancel (simulated crash), Drain.
	StreamTicket = core.StreamTicket
	// JobTemplate stamps numbered job instances from a shared builder —
	// what a StreamSpec's windows are instantiated from.
	JobTemplate = dataflow.Template
)

// NewSliceSource replays a fixed event slice — the deterministic test and
// resume source. Hand each stream run a fresh source.
var NewSliceSource = stream.NewSliceSource

// Sharded serving (multi-server routing front end).
type (
	// Cluster is the sharded serving front end: submissions routed by
	// consistent hash of the job signature, with failover replay across
	// shards when recovery is configured.
	Cluster = shard.Cluster
	// ClusterConfig assembles a Cluster; zero fields get serving defaults.
	ClusterConfig = shard.Config
	// ClusterShard is one serving shard of a Cluster.
	ClusterShard = shard.Shard
	// ShardStats is one shard's routing, admission, and fabric accounting.
	ShardStats = shard.ShardStats
	// MigrationStats counts cross-shard region traffic: regions exported to
	// remote pools, recalled on access, bytes moved each way, fabric verb
	// time priced into maintenance sweeps, and regions currently remote.
	MigrationStats = cluster.RegionPoolStats
	// RebalancePolicy tunes the maintenance sweep: promotion/demotion
	// watermarks across the local tier hierarchy, plus the eviction
	// watermark past which cold regions spill to remote shards' pools
	// (ClusterConfig.Rebalance; zero value = local-only sweeps).
	RebalancePolicy = region.RebalancePolicy
)

// Sharded-serving constructors and errors.
var (
	// NewCluster builds the fabric, the shards, and the routing ring; the
	// cluster is serving when it returns.
	NewCluster = shard.NewCluster
	// ErrNoShards means no alive shard remains to route or re-route to.
	ErrNoShards = shard.ErrNoShards
	// ErrClusterClosed reports a cluster submission after Close started.
	ErrClusterClosed = shard.ErrClosed
)

// Testbeds.
var (
	// BuildSingleNode constructs the reference single-node testbed.
	BuildSingleNode = topology.BuildSingleNode
	// BuildRack wires a multi-node rack with a shared fabric.
	BuildRack = topology.BuildRack
	// DefaultSingleNode is the fully populated single-node configuration.
	DefaultSingleNode = topology.DefaultSingleNode
)

// Placement policies.
var (
	// NewBestFit is the cost-model placement optimizer.
	NewBestFit = placement.NewBestFit
	// NewWorstFit is the adversarial baseline.
	NewWorstFit = placement.NewWorst
	// NewRandomFit places uniformly among matching devices.
	NewRandomFit = placement.NewRandom
)

// Schedulers.
type (
	// HEFT is the heterogeneous-earliest-finish-time scheduler.
	HEFT = sched.HEFT
	// FIFO is the first-idle-device baseline.
	FIFO = sched.FIFO
	// RoundRobin cycles eligible devices.
	RoundRobin = sched.RoundRobin
)

// NewTelemetry creates a metrics registry to pass into RuntimeConfig.
var NewTelemetry = telemetry.NewRegistry
