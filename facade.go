package repro

// This file is the module's public facade: downstream users import the
// root package and get the programming model without reaching into
// internal/ paths. The aliases are the stable API surface; the internal
// packages remain free to evolve behind them.

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Programming model (§2.1): jobs, tasks, declarative properties.
type (
	// Job is a dataflow application: a DAG of tasks.
	Job = dataflow.Job
	// Task is one node of the DAG.
	Task = dataflow.Task
	// TaskProps are the declarative task properties of Fig. 2c.
	TaskProps = dataflow.Props
	// TaskCtx is the execution context passed to task bodies.
	TaskCtx = dataflow.Ctx
	// TaskFn is a task body.
	TaskFn = dataflow.Fn
	// DevicePref selects the compute-device kind a task wants.
	DevicePref = dataflow.DevicePref
)

// Device preferences.
const (
	AnyDevice = dataflow.AnyDevice
	OnCPU     = dataflow.OnCPU
	OnGPU     = dataflow.OnGPU
	OnTPU     = dataflow.OnTPU
	OnFPGA    = dataflow.OnFPGA
)

// NewJob creates an empty dataflow job.
func NewJob(name string) *Job { return dataflow.NewJob(name) }

// Memory model (§2.2): requirements, region classes, handles.
type (
	// Requirements is a declarative memory request.
	Requirements = props.Requirements
	// RegionClass names the predefined Memory Regions of Table 2.
	RegionClass = props.RegionClass
	// RegionHandle is an owner's capability to a Memory Region.
	RegionHandle = region.Handle
	// LatencyClass buckets access latency for declarative requests.
	LatencyClass = props.LatencyClass
)

// Region classes (Table 2).
const (
	PrivateScratch = props.PrivateScratch
	GlobalState    = props.GlobalState
	GlobalScratch  = props.GlobalScratch
	TransferRegion = props.Transfer
)

// Latency classes.
const (
	LatencyAny    = props.LatencyAny
	LatencyLow    = props.LatencyLow
	LatencyMedium = props.LatencyMedium
	LatencyHigh   = props.LatencyHigh
	LatencyBulk   = props.LatencyBulk
)

// Runtime system (§2.3).
type (
	// Runtime is the RTS: placement, scheduling, ownership, lifetimes.
	Runtime = core.Runtime
	// ExecConfig is the shared execution configuration consumed by both
	// NewRuntime and ServerConfig's embedded defaults.
	ExecConfig = core.ExecConfig
	// RuntimeConfig assembles a Runtime; zero values get defaults.
	RuntimeConfig = core.Config
	// Report is the outcome of one job run.
	Report = core.Report
	// MultiReport is the outcome of a concurrent job batch.
	MultiReport = core.MultiReport
	// MultiConfig tunes concurrent execution.
	MultiConfig = core.MultiConfig
	// Checkpointer persists task outputs for Runtime.RunWithRecovery and
	// Runtime.RunWithPartialReplay.
	Checkpointer = core.Checkpointer
	// Server is the concurrent job-submission engine: bounded admission
	// queue, worker pool batching jobs into shared virtual-time epochs,
	// per-job cancellation, graceful drain.
	Server = core.Server
	// ServerConfig assembles a Server; zero values get serving defaults.
	ServerConfig = core.ServerConfig
	// Ticket is an asynchronous submission's handle: Done/Wait/ID
	// (Server.SubmitAsync).
	Ticket = core.Ticket
	// RecoveryPolicy makes served jobs fault-tolerant: checkpointed task
	// outputs, bounded retries, virtual-time backoff (ServerConfig.Recovery).
	// Set PartialReplay to restore checkpoint payloads lazily on retries;
	// recovered reports stay byte-identical to full replay either way.
	RecoveryPolicy = core.RecoveryPolicy
	// Topology is the simulated hardware graph.
	Topology = topology.Topology
	// Telemetry is the cross-layer metrics registry.
	Telemetry = telemetry.Registry
)

// NewRuntime builds an RTS instance. A zero config gets the reference
// single-node testbed, the best-fit placement optimizer, and the HEFT
// scheduler.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return core.New(cfg) }

// NewCheckpointer wraps a fault-tolerant store for RunWithRecovery.
var NewCheckpointer = core.NewCheckpointer

// Fault tolerance (challenge 8(3)): durable far-memory stores for
// checkpoints, plus the deterministic fault-injection hook.
type (
	// FaultStore is a fault-tolerant far-memory object store (replication
	// or Carbink-style erasure coding).
	FaultStore = fault.Store
	// FaultInjector deterministically kills chosen task executions so
	// recovery can be exercised reproducibly (RuntimeConfig.Inject).
	FaultInjector = fault.Injector
	// Fabric is the simulated far-memory cluster fault stores write to.
	Fabric = cluster.Fabric
	// FabricConfig tunes the simulated fabric.
	FabricConfig = cluster.Config
)

var (
	// NewFabric builds a far-memory cluster for fault stores.
	NewFabric = cluster.NewFabric
	// NewReplicatedStore keeps k full copies of each object.
	NewReplicatedStore = fault.NewReplicatedStore
	// NewFaultInjector fails the first `kills` executions of a seeded
	// `rate` fraction of task sites.
	NewFaultInjector = fault.NewInjector
	// ErrInjectedFault marks a deterministically injected task failure.
	ErrInjectedFault = fault.ErrInjected
)

// NewServer builds and starts a concurrent job-submission engine.
var NewServer = core.NewServer

// Serving-layer errors.
var (
	// ErrQueueFull reports a rejected submission (non-blocking admission).
	ErrQueueFull = core.ErrQueueFull
	// ErrServerClosed reports a submission after Close.
	ErrServerClosed = core.ErrServerClosed
)

// Testbeds.
var (
	// BuildSingleNode constructs the reference single-node testbed.
	BuildSingleNode = topology.BuildSingleNode
	// BuildRack wires a multi-node rack with a shared fabric.
	BuildRack = topology.BuildRack
	// DefaultSingleNode is the fully populated single-node configuration.
	DefaultSingleNode = topology.DefaultSingleNode
)

// Placement policies.
var (
	// NewBestFit is the cost-model placement optimizer.
	NewBestFit = placement.NewBestFit
	// NewWorstFit is the adversarial baseline.
	NewWorstFit = placement.NewWorst
	// NewRandomFit places uniformly among matching devices.
	NewRandomFit = placement.NewRandom
)

// Schedulers.
type (
	// HEFT is the heterogeneous-earliest-finish-time scheduler.
	HEFT = sched.HEFT
	// FIFO is the first-idle-device baseline.
	FIFO = sched.FIFO
	// RoundRobin cycles eligible devices.
	RoundRobin = sched.RoundRobin
)

// NewTelemetry creates a metrics registry to pass into RuntimeConfig.
var NewTelemetry = telemetry.NewRegistry
