// Package props implements the property algebra of the declarative
// programming model from "Programming Fully Disaggregated Systems"
// (HotOS '23, §2.1).
//
// Applications never name physical memory devices. Instead they declare
// Requirements — what the memory they need must provide (latency class,
// persistence, coherence, …) — and the runtime matches those against the
// Capabilities that each (simulated) physical device offers, as seen from
// the compute device executing the task.
//
// Requirements split into hard constraints (Match) and soft preferences
// (Score). A device is a placement candidate only if Match succeeds;
// candidates are then ranked by Score.
package props

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Tri is a three-valued constraint: a requirement may demand a feature,
// forbid it, or not care.
type Tri uint8

const (
	Any Tri = iota // no constraint
	Require
	Forbid
)

// String returns the constraint name.
func (t Tri) String() string {
	switch t {
	case Any:
		return "any"
	case Require:
		return "require"
	case Forbid:
		return "forbid"
	default:
		return fmt.Sprintf("Tri(%d)", uint8(t))
	}
}

// Satisfied reports whether a capability value v satisfies the constraint.
func (t Tri) Satisfied(v bool) bool {
	switch t {
	case Require:
		return v
	case Forbid:
		return !v
	default:
		return true
	}
}

// LatencyClass buckets access latency as seen from the requesting compute
// device. The paper's Table 1 spans roughly four orders of magnitude, which
// the classes discretize for declarative use.
type LatencyClass uint8

const (
	LatencyAny    LatencyClass = iota
	LatencyLow                 // ≤ 200ns: cache, HBM, DRAM, GDDR-from-GPU
	LatencyMedium              // ≤ 2µs: PMem, CXL-DRAM, NUMA-remote
	LatencyHigh                // ≤ 100µs: NIC-attached far memory, fast SSD
	LatencyBulk                // anything, incl. HDD
)

// String returns the class name.
func (c LatencyClass) String() string {
	switch c {
	case LatencyAny:
		return "any"
	case LatencyLow:
		return "low"
	case LatencyMedium:
		return "medium"
	case LatencyHigh:
		return "high"
	case LatencyBulk:
		return "bulk"
	default:
		return fmt.Sprintf("LatencyClass(%d)", uint8(c))
	}
}

// Ceiling returns the maximum access latency admitted by the class.
func (c LatencyClass) Ceiling() time.Duration {
	switch c {
	case LatencyLow:
		return 200 * time.Nanosecond
	case LatencyMedium:
		return 2 * time.Microsecond
	case LatencyHigh:
		return 100 * time.Microsecond
	default:
		return time.Hour // effectively unbounded
	}
}

// ClassifyLatency maps a concrete latency to the tightest class that admits it.
func ClassifyLatency(d time.Duration) LatencyClass {
	switch {
	case d <= LatencyLow.Ceiling():
		return LatencyLow
	case d <= LatencyMedium.Ceiling():
		return LatencyMedium
	case d <= LatencyHigh.Ceiling():
		return LatencyHigh
	default:
		return LatencyBulk
	}
}

// Capabilities describes what a physical memory device offers as seen from a
// specific compute device (topology-adjusted: latency and bandwidth include
// the interconnect path).
type Capabilities struct {
	Latency         time.Duration // effective access latency
	Bandwidth       float64       // effective bytes/second
	Granularity     int           // access granularity in bytes (64 for cache lines, 4096 for block devices)
	ByteAddressable bool          // true if loads/stores work at byte granularity
	Coherent        bool          // participates in hardware cache coherence with the compute device
	Sync            bool          // synchronous load/store interface is sensible (near memory)
	Persistent      bool          // survives power loss
	Remote          bool          // reached through a NIC (off-node)
	FreeCapacity    int64         // bytes currently allocatable
}

// Requirements is the declarative memory request of §2.1: the task states
// what properties the memory must have; the runtime picks the device.
type Requirements struct {
	// Hard constraints.
	Capacity     int64         // bytes needed (0 → caller sizes later, still must fit granularity)
	Latency      LatencyClass  // admitted latency ceiling
	MinBandwidth float64       // bytes/second floor; 0 → unconstrained
	Persistent   Tri           // Require → must survive crashes (e.g. T5 in Fig. 2)
	Coherent     Tri           // Require → hardware coherence needed (Global State)
	Sync         Tri           // Require → synchronous interface; Forbid → async-only is fine
	ByteAddr     Tri           // Require → no block devices
	MaxLatency   time.Duration // optional absolute ceiling; 0 → use Latency class

	// Soft preferences (scored, never disqualifying).
	Confidential bool // data is sensitive; prefer non-remote devices, runtime encrypts otherwise
	PreferLocal  bool // prefer devices attached to the executing compute device's node
}

// Violation describes why a device failed to match a requirement set.
type Violation struct {
	Field  string
	Detail string
}

func (v Violation) String() string { return v.Field + ": " + v.Detail }

// Match reports whether capabilities satisfy all hard constraints and, if
// not, the list of violations (for diagnostics and tests).
func (r Requirements) Match(c Capabilities) (bool, []Violation) {
	var vs []Violation
	if r.Capacity > 0 && c.FreeCapacity < r.Capacity {
		vs = append(vs, Violation{"capacity", fmt.Sprintf("need %d, free %d", r.Capacity, c.FreeCapacity)})
	}
	ceiling := r.Latency.Ceiling()
	if r.MaxLatency > 0 {
		ceiling = r.MaxLatency
	}
	if c.Latency > ceiling {
		vs = append(vs, Violation{"latency", fmt.Sprintf("%v exceeds ceiling %v", c.Latency, ceiling)})
	}
	if r.MinBandwidth > 0 && c.Bandwidth < r.MinBandwidth {
		vs = append(vs, Violation{"bandwidth", fmt.Sprintf("%.0f < required %.0f", c.Bandwidth, r.MinBandwidth)})
	}
	if !r.Persistent.Satisfied(c.Persistent) {
		vs = append(vs, Violation{"persistent", fmt.Sprintf("%s but device persistent=%t", r.Persistent, c.Persistent)})
	}
	if !r.Coherent.Satisfied(c.Coherent) {
		vs = append(vs, Violation{"coherent", fmt.Sprintf("%s but device coherent=%t", r.Coherent, c.Coherent)})
	}
	if !r.Sync.Satisfied(c.Sync) {
		vs = append(vs, Violation{"sync", fmt.Sprintf("%s but device sync=%t", r.Sync, c.Sync)})
	}
	if !r.ByteAddr.Satisfied(c.ByteAddressable) {
		vs = append(vs, Violation{"byteaddr", fmt.Sprintf("%s but device byteaddr=%t", r.ByteAddr, c.ByteAddressable)})
	}
	return len(vs) == 0, vs
}

// Score ranks a matching device: higher is better. The score rewards low
// latency and high bandwidth relative to the requirement ceiling, and
// penalizes wasting scarce premium devices on undemanding requests
// (capacity pressure) as well as remote placement of confidential data.
func (r Requirements) Score(c Capabilities) float64 {
	ceiling := r.Latency.Ceiling()
	if r.MaxLatency > 0 {
		ceiling = r.MaxLatency
	}
	// Latency headroom in [0,1]: 1 when instant, →0 approaching the ceiling.
	lat := 1.0 - float64(c.Latency)/float64(ceiling)
	if lat < 0 {
		lat = 0
	}
	score := 10 * lat
	// Bandwidth on a log-ish scale: each doubling above 1 GB/s adds a point.
	bw := c.Bandwidth / 1e9
	for bw > 1 && score < 1e6 {
		score++
		bw /= 2
	}
	if r.Confidential && c.Remote {
		score -= 5 // still allowed (runtime encrypts) but dispreferred
	}
	if r.PreferLocal && c.Remote {
		score -= 3
	}
	// Don't burn persistent devices on scratch data, nor coherent devices
	// on requests that don't need coherence: leave premium capacity for
	// requests that require it.
	if r.Persistent == Any && c.Persistent {
		score -= 1
	}
	if r.Coherent == Any && c.Coherent {
		score -= 0.5
	}
	return score
}

// Merge combines two requirement sets into the weakest set satisfying both
// (used when two tasks share one region: the region must satisfy the union
// of constraints). Conflicting Require/Forbid pairs return an error.
func Merge(a, b Requirements) (Requirements, error) {
	out := a
	if b.Capacity > out.Capacity {
		out.Capacity = b.Capacity
	}
	if b.Latency != LatencyAny && (out.Latency == LatencyAny || b.Latency < out.Latency) {
		out.Latency = b.Latency
	}
	if b.MinBandwidth > out.MinBandwidth {
		out.MinBandwidth = b.MinBandwidth
	}
	if b.MaxLatency > 0 && (out.MaxLatency == 0 || b.MaxLatency < out.MaxLatency) {
		out.MaxLatency = b.MaxLatency
	}
	var err error
	out.Persistent, err = mergeTri("persistent", a.Persistent, b.Persistent)
	if err != nil {
		return out, err
	}
	out.Coherent, err = mergeTri("coherent", a.Coherent, b.Coherent)
	if err != nil {
		return out, err
	}
	out.Sync, err = mergeTri("sync", a.Sync, b.Sync)
	if err != nil {
		return out, err
	}
	out.ByteAddr, err = mergeTri("byteaddr", a.ByteAddr, b.ByteAddr)
	if err != nil {
		return out, err
	}
	out.Confidential = a.Confidential || b.Confidential
	out.PreferLocal = a.PreferLocal || b.PreferLocal
	return out, nil
}

func mergeTri(field string, a, b Tri) (Tri, error) {
	switch {
	case a == b:
		return a, nil
	case a == Any:
		return b, nil
	case b == Any:
		return a, nil
	default:
		return Any, fmt.Errorf("props: conflicting %s constraints (%s vs %s)", field, a, b)
	}
}

// String renders the requirement set compactly for reports and errors.
func (r Requirements) String() string {
	var parts []string
	if r.Capacity > 0 {
		parts = append(parts, fmt.Sprintf("cap=%d", r.Capacity))
	}
	if r.Latency != LatencyAny {
		parts = append(parts, "lat="+r.Latency.String())
	}
	if r.MaxLatency > 0 {
		parts = append(parts, fmt.Sprintf("maxlat=%v", r.MaxLatency))
	}
	if r.MinBandwidth > 0 {
		parts = append(parts, fmt.Sprintf("bw≥%.1fGB/s", r.MinBandwidth/1e9))
	}
	for _, f := range []struct {
		name string
		t    Tri
	}{{"persist", r.Persistent}, {"coherent", r.Coherent}, {"sync", r.Sync}, {"byteaddr", r.ByteAddr}} {
		if f.t != Any {
			parts = append(parts, f.t.String()+":"+f.name)
		}
	}
	if r.Confidential {
		parts = append(parts, "confidential")
	}
	if r.PreferLocal {
		parts = append(parts, "preferlocal")
	}
	if len(parts) == 0 {
		return "{}"
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
