package props

// RegionClass names the pre-defined Memory Regions of the programming model
// (paper Table 2). Each class is a named bundle of properties that dataflow
// systems use over and over; applications may also declare Custom regions
// with bespoke Requirements.
type RegionClass uint8

const (
	// Custom regions carry caller-supplied Requirements.
	Custom RegionClass = iota
	// PrivateScratch is thread-local working memory: {noncoherent, sync}.
	// It holds intermediate results that are not part of the task's output
	// and is neither shared nor transferable.
	PrivateScratch
	// GlobalState is application-global synchronization memory:
	// {coherent, sync}. Latches, worker states, job metadata.
	GlobalState
	// GlobalScratch passes data between unconnected tasks:
	// {coherent, async}. Caches, transient indexes, blob storage.
	GlobalScratch
	// Transfer regions carry a task's output to the next task's input
	// (Fig. 4). Exclusively owned, handed over by ownership transfer.
	Transfer
)

// String returns the paper's name for the region class.
func (c RegionClass) String() string {
	switch c {
	case Custom:
		return "Custom"
	case PrivateScratch:
		return "Private Scratch"
	case GlobalState:
		return "Global State"
	case GlobalScratch:
		return "Global Scratch"
	case Transfer:
		return "Transfer"
	default:
		return "RegionClass(?)"
	}
}

// Defaults returns the property bundle the programming model pre-defines for
// the class (Table 2). Callers refine the result (capacity, persistence,
// confidentiality) before allocating.
func (c RegionClass) Defaults() Requirements {
	switch c {
	case PrivateScratch:
		return Requirements{
			Latency:     LatencyLow,
			Coherent:    Any, // "may have relaxed coherence guarantees"
			Sync:        Require,
			ByteAddr:    Require,
			PreferLocal: true,
		}
	case GlobalState:
		return Requirements{
			Latency:  LatencyMedium, // "expected to be slow as it has to be accessible from all compute devices"
			Coherent: Require,
			Sync:     Require,
			ByteAddr: Require,
		}
	case GlobalScratch:
		return Requirements{
			Latency:  LatencyHigh, // async interface tolerates far memory
			Coherent: Require,
			Sync:     Any, // accessed asynchronously; sync capability unneeded
			ByteAddr: Any,
		}
	case Transfer:
		return Requirements{
			Latency:     LatencyMedium,
			Sync:        Any,
			ByteAddr:    Require,
			PreferLocal: true,
		}
	default:
		return Requirements{}
	}
}

// Shareable reports whether regions of this class may have more than one
// owner. Private Scratch is visible to exactly one thread of execution.
func (c RegionClass) Shareable() bool {
	return c == GlobalState || c == GlobalScratch
}

// Transferable reports whether exclusive ownership of regions of this class
// may move between tasks (Fig. 4's out→in handover).
func (c RegionClass) Transferable() bool {
	return c == Transfer || c == Custom || c == GlobalScratch
}
