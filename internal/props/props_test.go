package props

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func capDRAM() Capabilities {
	return Capabilities{
		Latency:         90 * time.Nanosecond,
		Bandwidth:       100e9,
		Granularity:     64,
		ByteAddressable: true,
		Coherent:        true,
		Sync:            true,
		FreeCapacity:    1 << 38,
	}
}

func capSSD() Capabilities {
	return Capabilities{
		Latency:      80 * time.Microsecond,
		Bandwidth:    3e9,
		Granularity:  4096,
		Persistent:   true,
		FreeCapacity: 1 << 43,
	}
}

func capFar() Capabilities {
	return Capabilities{
		Latency:         2 * time.Microsecond,
		Bandwidth:       12e9,
		Granularity:     256,
		ByteAddressable: true,
		Remote:          true,
		FreeCapacity:    1 << 42,
	}
}

func TestTriSatisfied(t *testing.T) {
	cases := []struct {
		tri  Tri
		v    bool
		want bool
	}{
		{Any, true, true},
		{Any, false, true},
		{Require, true, true},
		{Require, false, false},
		{Forbid, true, false},
		{Forbid, false, true},
	}
	for _, c := range cases {
		if got := c.tri.Satisfied(c.v); got != c.want {
			t.Errorf("%s.Satisfied(%t) = %t, want %t", c.tri, c.v, got, c.want)
		}
	}
}

func TestLatencyClassOrdering(t *testing.T) {
	if !(LatencyLow.Ceiling() < LatencyMedium.Ceiling() && LatencyMedium.Ceiling() < LatencyHigh.Ceiling()) {
		t.Fatal("latency class ceilings must be strictly increasing")
	}
	if ClassifyLatency(50*time.Nanosecond) != LatencyLow {
		t.Error("50ns should classify as low")
	}
	if ClassifyLatency(300*time.Nanosecond) != LatencyMedium {
		t.Error("300ns should classify as medium")
	}
	if ClassifyLatency(50*time.Microsecond) != LatencyHigh {
		t.Error("50µs should classify as high")
	}
	if ClassifyLatency(8*time.Millisecond) != LatencyBulk {
		t.Error("8ms should classify as bulk")
	}
}

func TestMatchCapacity(t *testing.T) {
	r := Requirements{Capacity: 1 << 40}
	c := capDRAM() // 256 GiB free
	ok, vs := r.Match(c)
	if ok {
		t.Fatal("1 TiB request must not match 256 GiB device")
	}
	if len(vs) != 1 || vs[0].Field != "capacity" {
		t.Fatalf("want single capacity violation, got %v", vs)
	}
}

func TestMatchLatencyClass(t *testing.T) {
	r := Requirements{Latency: LatencyLow}
	if ok, _ := r.Match(capDRAM()); !ok {
		t.Error("DRAM (90ns) should satisfy LatencyLow")
	}
	if ok, _ := r.Match(capSSD()); ok {
		t.Error("SSD (80µs) must not satisfy LatencyLow")
	}
	r = Requirements{Latency: LatencyHigh}
	if ok, _ := r.Match(capSSD()); !ok {
		t.Error("SSD should satisfy LatencyHigh (≤100µs)")
	}
}

func TestMatchAbsoluteLatencyOverridesClass(t *testing.T) {
	r := Requirements{Latency: LatencyBulk, MaxLatency: 100 * time.Nanosecond}
	if ok, _ := r.Match(capDRAM()); !ok {
		t.Error("DRAM within 100ns ceiling")
	}
	if ok, _ := r.Match(capFar()); ok {
		t.Error("far memory (2µs) must fail a 100ns absolute ceiling")
	}
}

func TestMatchPersistence(t *testing.T) {
	r := Requirements{Persistent: Require, Latency: LatencyBulk}
	if ok, _ := r.Match(capDRAM()); ok {
		t.Error("volatile DRAM must not satisfy Require persistent")
	}
	if ok, _ := r.Match(capSSD()); !ok {
		t.Error("SSD must satisfy Require persistent")
	}
	r = Requirements{Persistent: Forbid, Latency: LatencyBulk}
	if ok, _ := r.Match(capSSD()); ok {
		t.Error("SSD must not satisfy Forbid persistent")
	}
}

func TestMatchBandwidthFloor(t *testing.T) {
	r := Requirements{MinBandwidth: 50e9, Latency: LatencyBulk}
	if ok, _ := r.Match(capDRAM()); !ok {
		t.Error("DRAM at 100 GB/s should pass a 50 GB/s floor")
	}
	if ok, _ := r.Match(capSSD()); ok {
		t.Error("SSD at 3 GB/s must fail a 50 GB/s floor")
	}
}

func TestScorePrefersFasterDevice(t *testing.T) {
	r := Requirements{Latency: LatencyBulk}
	if r.Score(capDRAM()) <= r.Score(capSSD()) {
		t.Error("DRAM must outscore SSD for an unconstrained request")
	}
}

func TestScorePenalizesRemoteConfidential(t *testing.T) {
	r := Requirements{Latency: LatencyBulk, Confidential: true}
	base := Requirements{Latency: LatencyBulk}
	if r.Score(capFar()) >= base.Score(capFar()) {
		t.Error("confidential request must score remote device lower")
	}
}

func TestScoreConservesPremiumDevices(t *testing.T) {
	// An undemanding request should prefer DRAM over an otherwise identical
	// persistent device, leaving persistence capacity for tasks that need it.
	dram := capDRAM()
	pmem := dram
	pmem.Persistent = true
	r := Requirements{Latency: LatencyBulk}
	if r.Score(dram) <= r.Score(pmem) {
		t.Error("scratch request should prefer the volatile device")
	}
	rp := Requirements{Latency: LatencyBulk, Persistent: Require}
	if ok, _ := rp.Match(pmem); !ok {
		t.Error("persistent request must still match the persistent device")
	}
}

func TestMergeTightensConstraints(t *testing.T) {
	a := Requirements{Capacity: 100, Latency: LatencyHigh, Persistent: Require}
	b := Requirements{Capacity: 200, Latency: LatencyLow, Coherent: Require, Confidential: true}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity != 200 {
		t.Errorf("capacity = %d, want max 200", m.Capacity)
	}
	if m.Latency != LatencyLow {
		t.Errorf("latency = %s, want tightest (low)", m.Latency)
	}
	if m.Persistent != Require || m.Coherent != Require {
		t.Error("merge must keep both Require constraints")
	}
	if !m.Confidential {
		t.Error("confidentiality must be sticky under merge")
	}
}

func TestMergeConflict(t *testing.T) {
	a := Requirements{Persistent: Require}
	b := Requirements{Persistent: Forbid}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("Require vs Forbid must be a merge conflict")
	}
}

func TestRequirementsString(t *testing.T) {
	r := Requirements{Capacity: 64, Latency: LatencyLow, Persistent: Require, Confidential: true}
	s := r.String()
	for _, want := range []string{"cap=64", "lat=low", "require:persist", "confidential"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if (Requirements{}).String() != "{}" {
		t.Errorf("empty requirements should render {}")
	}
}

// quickCaps builds arbitrary-but-sane capabilities from fuzzer inputs.
func quickCaps(lat uint32, bw uint32, free uint32, flags uint8) Capabilities {
	return Capabilities{
		Latency:         time.Duration(lat%10_000_000) * time.Nanosecond,
		Bandwidth:       float64(bw%1000) * 1e9,
		Granularity:     64,
		ByteAddressable: flags&1 != 0,
		Coherent:        flags&2 != 0,
		Sync:            flags&4 != 0,
		Persistent:      flags&8 != 0,
		Remote:          flags&16 != 0,
		FreeCapacity:    int64(free),
	}
}

// Property: improving a device (more free capacity, lower latency, more
// bandwidth, adding features a request might require) never turns a match
// into a non-match. Matching is monotone in capabilities.
func TestMatchMonotoneInCapabilities(t *testing.T) {
	f := func(lat, bw, free uint32, flags uint8, capReq uint32, latClass uint8) bool {
		c := quickCaps(lat, bw, free, flags)
		r := Requirements{
			Capacity: int64(capReq % (free + 1)),
			Latency:  LatencyClass(latClass % 5),
		}
		ok, _ := r.Match(c)
		if !ok {
			return true // only check preservation of matches
		}
		better := c
		better.Latency /= 2
		better.Bandwidth *= 2
		better.FreeCapacity *= 2
		ok2, _ := r.Match(better)
		return ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative on non-conflicting inputs, and the merged
// requirement matches a device only if both inputs match it.
func TestMergeSoundness(t *testing.T) {
	f := func(capA, capB uint16, latA, latB uint8, triA, triB uint8, lat uint32, bw, free uint32, flags uint8) bool {
		a := Requirements{Capacity: int64(capA), Latency: LatencyClass(latA % 5), Persistent: Tri(triA % 3)}
		b := Requirements{Capacity: int64(capB), Latency: LatencyClass(latB % 5), Persistent: Tri(triB % 3)}
		m1, err1 := Merge(a, b)
		m2, err2 := Merge(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if m1 != m2 {
			return false
		}
		c := quickCaps(lat, bw, free, flags)
		okM, _ := m1.Match(c)
		if !okM {
			return true
		}
		okA, _ := a.Match(c)
		okB, _ := b.Match(c)
		return okA && okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Score is finite for all sane inputs (no NaN/Inf creeping into
// the placement optimizer's ranking).
func TestScoreFinite(t *testing.T) {
	f := func(lat, bw, free uint32, flags uint8, conf bool) bool {
		r := Requirements{Latency: LatencyBulk, Confidential: conf}
		s := r.Score(quickCaps(lat, bw, free, flags))
		return !math.IsNaN(s) && !math.IsInf(s, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRegionClassDefaults(t *testing.T) {
	// Table 2: Private Scratch {noncoherent, sync}, Global State
	// {coherent, sync}, Global Scratch {coherent, async}.
	ps := PrivateScratch.Defaults()
	if ps.Sync != Require {
		t.Error("Private Scratch must require sync access")
	}
	if ps.Coherent == Require {
		t.Error("Private Scratch must not require coherence")
	}
	gs := GlobalState.Defaults()
	if gs.Coherent != Require || gs.Sync != Require {
		t.Error("Global State must require {coherent, sync}")
	}
	gsc := GlobalScratch.Defaults()
	if gsc.Coherent != Require {
		t.Error("Global Scratch must require coherence")
	}
	if gsc.Sync == Require {
		t.Error("Global Scratch is accessed asynchronously; must not require sync")
	}
}

func TestRegionClassSharingRules(t *testing.T) {
	if PrivateScratch.Shareable() {
		t.Error("Private Scratch is visible to only one thread")
	}
	if PrivateScratch.Transferable() {
		t.Error("Private Scratch is not transferable (paper §2.3)")
	}
	if !GlobalState.Shareable() || !GlobalScratch.Shareable() {
		t.Error("global regions must be shareable")
	}
	if !Transfer.Transferable() {
		t.Error("Transfer regions exist to be transferred")
	}
}

func TestRegionClassString(t *testing.T) {
	names := map[RegionClass]string{
		PrivateScratch: "Private Scratch",
		GlobalState:    "Global State",
		GlobalScratch:  "Global Scratch",
		Transfer:       "Transfer",
		Custom:         "Custom",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestStringRenderings(t *testing.T) {
	// Tri names.
	for tri, want := range map[Tri]string{Any: "any", Require: "require", Forbid: "forbid"} {
		if tri.String() != want {
			t.Errorf("Tri(%d).String() = %q", tri, tri.String())
		}
	}
	if Tri(9).String() == "" {
		t.Error("unknown Tri must still render")
	}
	// LatencyClass names.
	for c, want := range map[LatencyClass]string{
		LatencyAny: "any", LatencyLow: "low", LatencyMedium: "medium",
		LatencyHigh: "high", LatencyBulk: "bulk",
	} {
		if c.String() != want {
			t.Errorf("LatencyClass(%d).String() = %q", c, c.String())
		}
	}
	if LatencyClass(99).String() == "" {
		t.Error("unknown class must still render")
	}
	// Violations carry field and detail.
	v := Violation{Field: "latency", Detail: "too slow"}
	if v.String() != "latency: too slow" {
		t.Errorf("Violation.String() = %q", v.String())
	}
	// Custom class has no defaults; unknown classes render.
	if (Custom.Defaults() != Requirements{}) {
		t.Error("Custom defaults must be empty")
	}
	if RegionClass(77).String() == "" || (RegionClass(77).Defaults() != Requirements{}) {
		t.Error("unknown class must render and default empty")
	}
}
