package vmem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
)

func setup(t testing.TB) *region.Manager {
	t.Helper()
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func allocRegion(t testing.TB, mgr *region.Manager, size int64) *region.Handle {
	t.Helper()
	h, err := mgr.Alloc(region.Spec{
		Name: "seg", Class: props.PrivateScratch, Size: size,
		Owner: "task", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMapReadWriteRoundtrip(t *testing.T) {
	mgr := setup(t)
	h := allocRegion(t, mgr, 8192)
	defer h.Release()
	as := New(Config{})
	base, err := as.Map(h, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if base == 0 {
		t.Fatal("page 0 must stay unmapped")
	}
	payload := []byte("virtual memory over regions")
	now, err := as.Write(0, base+100, payload)
	if err != nil {
		t.Fatal(err)
	}
	if now <= 0 {
		t.Error("write must cost virtual time")
	}
	got := make([]byte, len(payload))
	if _, err := as.Read(now, base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read %q", got)
	}
}

func TestNilDerefFaults(t *testing.T) {
	as := New(Config{})
	if _, err := as.Read(0, 0, make([]byte, 8)); !errors.Is(err, ErrFault) {
		t.Error("address 0 must fault")
	}
	if _, err := as.Read(0, 12345, make([]byte, 8)); !errors.Is(err, ErrFault) {
		t.Error("unmapped address must fault")
	}
	if as.Stats().Faults == 0 {
		t.Error("faults must be counted")
	}
}

func TestProtectionEnforced(t *testing.T) {
	mgr := setup(t)
	h := allocRegion(t, mgr, 4096)
	defer h.Release()
	as := New(Config{})
	base, err := as.Map(h, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Read(0, base, make([]byte, 8)); err != nil {
		t.Errorf("read of read-only mapping: %v", err)
	}
	if _, err := as.Write(0, base, make([]byte, 8)); !errors.Is(err, ErrProtection) {
		t.Error("write to read-only mapping must fault")
	}
}

func TestGuardPageBetweenMappings(t *testing.T) {
	mgr := setup(t)
	h1 := allocRegion(t, mgr, 4096)
	h2 := allocRegion(t, mgr, 4096)
	defer h1.Release()
	defer h2.Release()
	as := New(Config{})
	b1, err := as.Map(h1, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := as.Map(h2, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if b2-b1 < 8192 {
		t.Fatalf("mappings must be separated by a guard page: %d %d", b1, b2)
	}
	// An overflow off the end of h1 must fault, not bleed into h2.
	if _, err := as.Read(0, b1+4090, make([]byte, 16)); !errors.Is(err, ErrFault) {
		t.Error("access crossing the mapping end must fault")
	}
}

func TestMapAtAndOverlap(t *testing.T) {
	mgr := setup(t)
	h1 := allocRegion(t, mgr, 4096)
	h2 := allocRegion(t, mgr, 4096)
	defer h1.Release()
	defer h2.Release()
	as := New(Config{})
	if err := as.MapAt(0x10000, h1, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.MapAt(0x10000, h2, ProtRead); !errors.Is(err, ErrOverlap) {
		t.Error("overlapping MapAt must fail")
	}
	if err := as.MapAt(123, h2, ProtRead); !errors.Is(err, ErrBadParam) {
		t.Error("unaligned base must fail")
	}
	if err := as.MapAt(0x40000, h2, ProtRead); err != nil {
		t.Fatal(err)
	}
	if as.Mappings() != 2 {
		t.Errorf("mappings = %d", as.Mappings())
	}
	// Later Map() must not collide with the MapAt range.
	h3 := allocRegion(t, mgr, 4096)
	defer h3.Release()
	b3, err := as.Map(h3, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if b3 <= 0x40000 {
		t.Errorf("auto base %#x must be past the highest mapping", b3)
	}
}

func TestUnmapFaultsAfter(t *testing.T) {
	mgr := setup(t)
	h := allocRegion(t, mgr, 4096)
	defer h.Release()
	as := New(Config{})
	base, _ := as.Map(h, ProtRead|ProtWrite)
	if _, err := as.Read(0, base, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(base); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Read(0, base, make([]byte, 8)); !errors.Is(err, ErrFault) {
		t.Error("unmapped VA must fault")
	}
	if err := as.Unmap(base); !errors.Is(err, ErrFault) {
		t.Error("double unmap must fail")
	}
}

func TestTLBHitsReduceCost(t *testing.T) {
	mgr := setup(t)
	h := allocRegion(t, mgr, 4096)
	defer h.Release()
	as := New(Config{})
	base, _ := as.Map(h, ProtRead|ProtWrite)
	buf := make([]byte, 8)
	// First access: miss + walk. Second to the same page (issued after the
	// first completes): hit — no walk cost.
	t1, err := as.Read(0, base, buf)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := as.Read(t1, base+64, buf)
	if err != nil {
		t.Fatal(err)
	}
	if t2-t1 >= t1 {
		t.Errorf("TLB hit (%v) must be cheaper than the miss (%v)", t2-t1, t1)
	}
	st := as.Stats()
	if st.TLBHits != 1 || st.TLBMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if as.HitRate() != 0.5 {
		t.Errorf("hit rate = %f", as.HitRate())
	}
}

func TestTLBEviction(t *testing.T) {
	mgr := setup(t)
	h := allocRegion(t, mgr, 64<<10) // 16 pages
	defer h.Release()
	as := New(Config{TLBEntries: 4})
	base, _ := as.Map(h, ProtRead)
	buf := make([]byte, 8)
	// Touch 8 distinct pages: all misses, TLB holds the last 4.
	for p := 0; p < 8; p++ {
		if _, err := as.Read(0, base+uint64(p*4096), buf); err != nil {
			t.Fatal(err)
		}
	}
	// Re-touch the last 4: hits. Re-touch the first 4: misses again.
	for p := 4; p < 8; p++ {
		as.Read(0, base+uint64(p*4096), buf)
	}
	for p := 0; p < 4; p++ {
		as.Read(0, base+uint64(p*4096), buf)
	}
	st := as.Stats()
	if st.TLBHits != 4 {
		t.Errorf("hits = %d, want 4", st.TLBHits)
	}
	if st.TLBMisses != 12 {
		t.Errorf("misses = %d, want 12", st.TLBMisses)
	}
}

func TestMapValidation(t *testing.T) {
	as := New(Config{})
	if _, err := as.Map(nil, ProtRead); !errors.Is(err, ErrBadParam) {
		t.Error("nil handle must fail")
	}
	mgr := setup(t)
	h := allocRegion(t, mgr, 64)
	defer h.Release()
	if _, err := as.Map(h, 0); !errors.Is(err, ErrBadParam) {
		t.Error("empty protection must fail")
	}
}

func TestStaleRegionSurfacesThroughVM(t *testing.T) {
	// The region moves to another owner; the old mapping's accesses must
	// surface the ownership error — the OS does not hide RTS ownership.
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "seg", Class: props.Transfer, Size: 4096,
		Owner: "t1", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	as := New(Config{})
	base, _ := as.Map(h, ProtRead|ProtWrite)
	h2, _, err := h.Transfer(0, "t2", "node0/cpu1")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if _, err := as.Read(0, base, make([]byte, 8)); !errors.Is(err, region.ErrStaleHandle) {
		t.Errorf("stale-handle access through VM err = %v", err)
	}
}

// Property: for random mapped layouts, every in-bounds access round-trips
// and every out-of-bounds access faults.
func TestAccessBoundaryProperty(t *testing.T) {
	mgr := setup(t)
	h := allocRegion(t, mgr, 8192)
	defer h.Release()
	as := New(Config{})
	base, err := as.Map(h, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, n uint8) bool {
		length := int64(n%64) + 1
		o := int64(off) % 9000
		buf := make([]byte, length)
		_, err := as.Read(0, base+uint64(o), buf)
		inBounds := o+length <= 8192
		if inBounds {
			return err == nil
		}
		return errors.Is(err, ErrFault)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVMRead(b *testing.B) {
	mgr := setup(b)
	topoH, err := mgr.Alloc(region.Spec{
		Name: "seg", Class: props.PrivateScratch, Size: 1 << 20,
		Owner: "task", Compute: "node0/cpu0",
	})
	if err != nil {
		b.Fatal(err)
	}
	as := New(Config{})
	base, err := as.Map(topoH, ProtRead|ProtWrite)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.Read(0, base+uint64((i%1024)*64), buf); err != nil {
			b.Fatal(err)
		}
	}
}
