// Package vmem is the memory-centric OS layer of the paper's challenges
// 4-5: "the core responsibility of the operating system is mapping
// RTS-requested memory into the address space of our proposed tasks."
// Ownership lives globally in the RTS (the region manager); the OS's
// remaining job is address translation.
//
// An AddressSpace maps virtual pages onto Memory Regions. Translation goes
// through a small simulated TLB: hits are free, misses pay a page-walk
// cost before the region access proceeds. Unmapped or protection-violating
// accesses fault — returning errors rather than silently touching the
// wrong region, which is how a memory-centric OS surfaces ownership bugs.
package vmem

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/region"
)

// Errors.
var (
	ErrFault      = errors.New("vmem: page fault (address not mapped)")
	ErrProtection = errors.New("vmem: protection violation")
	ErrOverlap    = errors.New("vmem: mapping overlaps an existing one")
	ErrBadParam   = errors.New("vmem: invalid parameter")
)

// Prot is a mapping's protection bits.
type Prot uint8

const (
	ProtRead Prot = 1 << iota
	ProtWrite
)

// mapping is one contiguous VA range backed by a region.
type mapping struct {
	base   uint64
	length int64
	h      *region.Handle
	prot   Prot
}

// Config tunes the address space.
type Config struct {
	PageSize     int64         // default 4096
	TLBEntries   int           // default 64
	PageWalkCost time.Duration // per TLB miss, default 100ns
}

// AddressSpace is one task's virtual address space.
type AddressSpace struct {
	cfg      Config
	mappings []mapping // sorted by base
	nextBase uint64
	// tlb is an LRU of page number → mapping index.
	tlb      map[uint64]int
	tlbOrder []uint64
	hits     uint64
	misses   uint64
	faults   uint64
}

// New builds an empty address space.
func New(cfg Config) *AddressSpace {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.TLBEntries <= 0 {
		cfg.TLBEntries = 64
	}
	if cfg.PageWalkCost <= 0 {
		cfg.PageWalkCost = 100 * time.Nanosecond
	}
	return &AddressSpace{
		cfg: cfg,
		// Leave page 0 unmapped so address 0 always faults (nil deref).
		nextBase: uint64(cfg.PageSize),
		tlb:      make(map[uint64]int),
	}
}

// Map installs a region into the address space and returns its base
// virtual address. The mapping covers the whole region, rounded up to
// pages; the hole after the end stays unmapped (guard page behaviour).
func (as *AddressSpace) Map(h *region.Handle, prot Prot) (uint64, error) {
	if h == nil || prot == 0 {
		return 0, fmt.Errorf("%w: nil handle or empty protection", ErrBadParam)
	}
	size, err := h.Size()
	if err != nil {
		return 0, err
	}
	pages := (size + as.cfg.PageSize - 1) / as.cfg.PageSize
	base := as.nextBase
	as.nextBase += uint64((pages + 1) * as.cfg.PageSize) // +1 guard page
	as.mappings = append(as.mappings, mapping{base: base, length: size, h: h, prot: prot})
	sort.Slice(as.mappings, func(i, j int) bool { return as.mappings[i].base < as.mappings[j].base })
	as.flushTLB()
	return base, nil
}

// MapAt installs a region at a caller-chosen base (page-aligned).
func (as *AddressSpace) MapAt(base uint64, h *region.Handle, prot Prot) error {
	if h == nil || prot == 0 || base == 0 || base%uint64(as.cfg.PageSize) != 0 {
		return fmt.Errorf("%w: base must be a non-zero page multiple", ErrBadParam)
	}
	size, err := h.Size()
	if err != nil {
		return err
	}
	for _, m := range as.mappings {
		if base < m.base+uint64(m.length) && m.base < base+uint64(size) {
			return fmt.Errorf("%w: [%d,%d) hits [%d,%d)", ErrOverlap, base, base+uint64(size), m.base, m.base+uint64(m.length))
		}
	}
	as.mappings = append(as.mappings, mapping{base: base, length: size, h: h, prot: prot})
	sort.Slice(as.mappings, func(i, j int) bool { return as.mappings[i].base < as.mappings[j].base })
	if base+uint64(size) >= as.nextBase {
		as.nextBase = base + uint64(size) + uint64(as.cfg.PageSize)
	}
	as.flushTLB()
	return nil
}

// Unmap removes the mapping at base.
func (as *AddressSpace) Unmap(base uint64) error {
	for i, m := range as.mappings {
		if m.base == base {
			as.mappings = append(as.mappings[:i], as.mappings[i+1:]...)
			as.flushTLB()
			return nil
		}
	}
	return fmt.Errorf("%w: no mapping at %#x", ErrFault, base)
}

// Mappings returns the number of live mappings.
func (as *AddressSpace) Mappings() int { return len(as.mappings) }

func (as *AddressSpace) flushTLB() {
	as.tlb = make(map[uint64]int)
	as.tlbOrder = as.tlbOrder[:0]
}

// lookup finds the mapping covering va (binary search).
func (as *AddressSpace) lookup(va uint64) (int, bool) {
	i := sort.Search(len(as.mappings), func(i int) bool {
		return as.mappings[i].base+uint64(as.mappings[i].length) > va
	})
	if i < len(as.mappings) && va >= as.mappings[i].base {
		return i, true
	}
	return 0, false
}

// translate resolves va through the TLB, returning the mapping index and
// the virtual time after any page walk.
func (as *AddressSpace) translate(now time.Duration, va uint64) (int, time.Duration, error) {
	page := va / uint64(as.cfg.PageSize)
	if idx, hit := as.tlb[page]; hit {
		// Validate the cached entry still covers va (mappings are flushed
		// on change, so a hit is always current).
		as.hits++
		return idx, now, nil
	}
	as.misses++
	now += as.cfg.PageWalkCost
	idx, ok := as.lookup(va)
	if !ok {
		as.faults++
		return 0, now, fmt.Errorf("%w: va %#x", ErrFault, va)
	}
	// Insert into the TLB, evicting LRU.
	if len(as.tlbOrder) >= as.cfg.TLBEntries {
		oldest := as.tlbOrder[0]
		as.tlbOrder = as.tlbOrder[1:]
		delete(as.tlb, oldest)
	}
	as.tlb[page] = idx
	as.tlbOrder = append(as.tlbOrder, page)
	return idx, now, nil
}

// access is the shared data path.
func (as *AddressSpace) access(now time.Duration, va uint64, buf []byte, write bool) (time.Duration, error) {
	idx, now, err := as.translate(now, va)
	if err != nil {
		return now, err
	}
	m := as.mappings[idx]
	need := ProtRead
	if write {
		need = ProtWrite
	}
	if m.prot&need == 0 {
		as.faults++
		return now, fmt.Errorf("%w: va %#x needs %d", ErrProtection, va, need)
	}
	off := int64(va - m.base)
	if off+int64(len(buf)) > m.length {
		as.faults++
		return now, fmt.Errorf("%w: access crosses the mapping end at %#x", ErrFault, m.base+uint64(m.length))
	}
	if write {
		f := m.h.WriteAsync(now, off, buf)
		return f.Await(now)
	}
	f := m.h.ReadAsync(now, off, buf)
	return f.Await(now)
}

// Read loads len(buf) bytes from va.
func (as *AddressSpace) Read(now time.Duration, va uint64, buf []byte) (time.Duration, error) {
	return as.access(now, va, buf, false)
}

// Write stores buf at va.
func (as *AddressSpace) Write(now time.Duration, va uint64, buf []byte) (time.Duration, error) {
	return as.access(now, va, buf, true)
}

// Stats reports translation counters.
type Stats struct {
	TLBHits, TLBMisses, Faults uint64
}

// Stats returns a snapshot.
func (as *AddressSpace) Stats() Stats {
	return Stats{TLBHits: as.hits, TLBMisses: as.misses, Faults: as.faults}
}

// HitRate returns TLB hits / translations.
func (as *AddressSpace) HitRate() float64 {
	total := as.hits + as.misses
	if total == 0 {
		return 0
	}
	return float64(as.hits) / float64(total)
}
