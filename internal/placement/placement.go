// Package placement implements the runtime's data-placement optimizer —
// the component that answers §2.2's challenge (1): the "optimal" memory
// device depends on the compute device executing the task and on the type
// of accesses it performs. Requirements act as hard filters; among the
// matching devices, a cost model built on topology-adjusted capabilities
// picks the best one.
//
// The package also ships the baselines the paper's motivation cites:
// a naive first-match policy, a static class→device table (the
// "traditional" explicit placement that ignores the compute device), and a
// seeded random policy. The claim-placement bench contrasts them.
package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/props"
	"repro/internal/topology"
)

// ErrNoCandidate is returned when no device passes the hard constraints.
var ErrNoCandidate = errors.New("placement: no device satisfies the request")

// Decision records one placement for reports and tests.
type Decision struct {
	Compute string
	Device  string
	Score   float64
	Req     props.Requirements
}

// DefaultDecisionCap bounds BestFit's decision log: under sustained serving
// load the log would otherwise grow without bound. Decisions() returns the
// most recent DefaultDecisionCap entries unless SetDecisionCap overrides it.
const DefaultDecisionCap = 4096

// BestFit is the cost-model optimizer: among devices whose topology-adjusted
// capabilities match the request's hard constraints, pick the one maximizing
// props.Score (low latency, high bandwidth, confidentiality locality, and
// premium-capacity conservation). Deterministic: ties break on device order.
// Safe for concurrent callers.
type BestFit struct {
	Topo *topology.Topology

	mu sync.Mutex
	// decisions is a ring buffer of the most recent placements: start is
	// the oldest entry once the buffer wrapped.
	decisions []Decision
	start     int
	cap       int // 0 → DefaultDecisionCap
}

// NewBestFit builds the optimizer.
func NewBestFit(topo *topology.Topology) *BestFit {
	return &BestFit{Topo: topo}
}

// Name implements region.Placer.
func (b *BestFit) Name() string { return "best-fit" }

// SetDecisionCap bounds the retained decision log to the n most recent
// placements (n ≤ 0 restores DefaultDecisionCap). Shrinking the cap drops
// the oldest excess entries.
func (b *BestFit) SetDecisionCap(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 {
		n = DefaultDecisionCap
	}
	if len(b.decisions) > n {
		b.decisions = b.chronologicalLocked()[len(b.decisions)-n:]
		b.start = 0
	}
	b.cap = n
}

// ResetDecisions clears the decision log (tests and between benchmark
// phases).
func (b *BestFit) ResetDecisions() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.decisions = nil
	b.start = 0
}

// record appends to the bounded decision log, overwriting the oldest entry
// once the cap is reached.
func (b *BestFit) record(d Decision) {
	b.mu.Lock()
	defer b.mu.Unlock()
	limit := b.cap
	if limit == 0 {
		limit = DefaultDecisionCap
	}
	if len(b.decisions) < limit {
		b.decisions = append(b.decisions, d)
		return
	}
	b.decisions[b.start] = d
	b.start = (b.start + 1) % len(b.decisions)
}

// chronologicalLocked unrolls the ring into oldest-first order. Caller
// holds b.mu.
func (b *BestFit) chronologicalLocked() []Decision {
	out := make([]Decision, 0, len(b.decisions))
	out = append(out, b.decisions[b.start:]...)
	out = append(out, b.decisions[:b.start]...)
	return out
}

// Place implements region.Placer.
func (b *BestFit) Place(req props.Requirements, computeID string) (string, error) {
	return b.placeAt(req, computeID, 0, nil, false)
}

// PlaceAt implements region.PlacerAt: the request's virtual time lets the
// optimizer see how far each device's service queue is backed up *right
// now* and steer hot allocations away from contended devices — the
// utilization awareness §3's challenges 1-3 require of the RTS.
func (b *BestFit) PlaceAt(req props.Requirements, computeID string, now time.Duration) (string, error) {
	return b.placeAt(req, computeID, now, nil, true)
}

// PlaceEpoch implements region.PlacerEpoch: the backlog penalty is read
// from the requester's own virtual-time view (a shared epoch or a wavefront
// task's causal view), so concurrently running tasks steer by their own
// contention instead of each other's.
func (b *BestFit) PlaceEpoch(req props.Requirements, computeID string, now time.Duration, clk topology.VClock) (string, error) {
	return b.placeAt(req, computeID, now, clk, true)
}

// backlogPenalty converts a device's queue backlog (relative to the
// requester's clock) into score points: one point per 100µs of backlog,
// capped at 8 so hard constraints and large latency-class gaps still win.
func backlogPenalty(busyUntil, now time.Duration) float64 {
	backlog := busyUntil - now
	if backlog <= 0 {
		return 0
	}
	p := float64(backlog) / float64(100*time.Microsecond)
	if p > 8 {
		p = 8
	}
	return p
}

func (b *BestFit) placeAt(req props.Requirements, computeID string, now time.Duration, clk topology.VClock, contentionAware bool) (string, error) {
	best, bestScore := "", 0.0
	for _, dev := range b.Topo.Memories() {
		if dev.HardwareManaged {
			continue
		}
		caps, ok := b.Topo.EffectiveCaps(computeID, dev.ID)
		if !ok {
			continue
		}
		if ok, _ := req.Match(caps); !ok {
			continue
		}
		s := req.Score(caps)
		if contentionAware {
			busy := dev.Stats().BusyUntil
			if clk != nil {
				busy = clk.BusyUntil(dev.ID)
			}
			s -= backlogPenalty(busy, now)
		}
		if best == "" || s > bestScore {
			best, bestScore = dev.ID, s
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: %s from %s", ErrNoCandidate, req, computeID)
	}
	b.record(Decision{Compute: computeID, Device: best, Score: bestScore, Req: req})
	return best, nil
}

// Decisions returns a copy of the retained decision log, oldest first. The
// log is bounded (SetDecisionCap), so under sustained load this is the most
// recent window, not the full history.
func (b *BestFit) Decisions() []Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.chronologicalLocked()
}

// PlaceShared finds the best device addressable — and matching — from
// *every* listed compute device (§2.2 challenge (2): shared memory must be
// addressable by all sharing tasks). The score is the worst-case score
// across the computes, so no sharer is starved.
func (b *BestFit) PlaceShared(req props.Requirements, computeIDs []string) (string, error) {
	if len(computeIDs) == 0 {
		return "", fmt.Errorf("%w: no compute devices given", ErrNoCandidate)
	}
	best, bestScore := "", 0.0
	for _, dev := range b.Topo.Memories() {
		if dev.HardwareManaged {
			continue
		}
		worst := 0.0
		ok := true
		for i, c := range computeIDs {
			caps, reachable := b.Topo.EffectiveCaps(c, dev.ID)
			if !reachable {
				ok = false
				break
			}
			if m, _ := req.Match(caps); !m {
				ok = false
				break
			}
			s := req.Score(caps)
			if i == 0 || s < worst {
				worst = s
			}
		}
		if !ok {
			continue
		}
		if best == "" || worst > bestScore {
			best, bestScore = dev.ID, worst
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: %s from %v", ErrNoCandidate, req, computeIDs)
	}
	return best, nil
}

// Static is the traditional explicit-placement baseline: a fixed preference
// order of device IDs per request "shape", chosen once by a developer for
// the CPU and applied no matter which compute device asks — exactly the
// pattern Figure 3 shows failing for GPUs.
type Static struct {
	Topo *topology.Topology
	// Order is the developer's hardcoded device preference list.
	Order []string
}

// NewStatic builds the baseline with the given device preference order.
func NewStatic(topo *topology.Topology, order []string) *Static {
	return &Static{Topo: topo, Order: order}
}

// Name implements region.Placer.
func (s *Static) Name() string { return "static" }

// Place implements region.Placer: first device in the hardcoded order that
// satisfies the hard constraints, regardless of the compute device's view.
func (s *Static) Place(req props.Requirements, computeID string) (string, error) {
	for _, id := range s.Order {
		dev, known := s.Topo.Memory(id)
		if !known || dev.HardwareManaged {
			continue
		}
		caps, ok := s.Topo.EffectiveCaps(computeID, id)
		if !ok {
			continue
		}
		if ok, _ := req.Match(caps); ok {
			return id, nil
		}
	}
	return "", fmt.Errorf("%w: static order exhausted for %s from %s", ErrNoCandidate, req, computeID)
}

// Random places uniformly among matching devices — the lower bound any
// cost model must beat. Seeded for reproducibility.
type Random struct {
	Topo *topology.Topology

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom builds the baseline.
func NewRandom(topo *topology.Topology, seed int64) *Random {
	return &Random{Topo: topo, rng: rand.New(rand.NewSource(seed))}
}

// Name implements region.Placer.
func (r *Random) Name() string { return "random" }

// Place implements region.Placer.
func (r *Random) Place(req props.Requirements, computeID string) (string, error) {
	var candidates []string
	for _, dev := range r.Topo.Memories() {
		if dev.HardwareManaged {
			continue
		}
		caps, ok := r.Topo.EffectiveCaps(computeID, dev.ID)
		if !ok {
			continue
		}
		if ok, _ := req.Match(caps); ok {
			candidates = append(candidates, dev.ID)
		}
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("%w: %s from %s", ErrNoCandidate, req, computeID)
	}
	sort.Strings(candidates)
	r.mu.Lock()
	pick := candidates[r.rng.Intn(len(candidates))]
	r.mu.Unlock()
	return pick, nil
}

// Worst inverts the optimizer: among matching devices it picks the lowest
// score. It bounds how bad "legal but thoughtless" placement can get — the
// ~3× penalty the intro cites from Mosaic [59].
type Worst struct {
	Topo *topology.Topology
}

// NewWorst builds the adversarial baseline.
func NewWorst(topo *topology.Topology) *Worst { return &Worst{Topo: topo} }

// Name implements region.Placer.
func (w *Worst) Name() string { return "worst-fit" }

// Place implements region.Placer.
func (w *Worst) Place(req props.Requirements, computeID string) (string, error) {
	best, bestScore, found := "", 0.0, false
	for _, dev := range w.Topo.Memories() {
		if dev.HardwareManaged {
			continue
		}
		caps, ok := w.Topo.EffectiveCaps(computeID, dev.ID)
		if !ok {
			continue
		}
		if ok, _ := req.Match(caps); !ok {
			continue
		}
		s := req.Score(caps)
		if !found || s < bestScore {
			best, bestScore, found = dev.ID, s, true
		}
	}
	if !found {
		return "", fmt.Errorf("%w: %s from %s", ErrNoCandidate, req, computeID)
	}
	return best, nil
}
