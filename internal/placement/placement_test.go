package placement

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/props"
	"repro/internal/topology"
)

func testbed(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBestFitFigure3(t *testing.T) {
	// The Figure 3 scenario: the *same* "fast local scratch" request maps
	// to different physical devices depending on the compute device.
	topo := testbed(t)
	b := NewBestFit(topo)
	req := props.Requirements{
		Capacity: 1 << 20, Latency: props.LatencyLow,
		Sync: props.Require, ByteAddr: props.Require, PreferLocal: true,
	}
	cpuDev, err := b.Place(req, "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	gpuDev, err := b.Place(req, "node0/gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if gpuDev != "node0/gddr0" {
		t.Errorf("GPU scratch on %s, want GDDR", gpuDev)
	}
	if cpuDev == "node0/gddr0" {
		t.Errorf("CPU scratch must not land on GDDR, got %s", cpuDev)
	}
	cpuCaps, _ := topo.EffectiveCaps("node0/cpu0", cpuDev)
	if cpuCaps.Latency > props.LatencyLow.Ceiling() {
		t.Error("CPU placement must satisfy the latency class")
	}
}

func TestBestFitPersistent(t *testing.T) {
	topo := testbed(t)
	b := NewBestFit(topo)
	req := props.Requirements{Capacity: 1 << 20, Latency: props.LatencyMedium, Persistent: props.Require}
	dev, err := b.Place(req, "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := topo.Memory(dev)
	if !m.Persistent {
		t.Errorf("persistent request on volatile %s", dev)
	}
	if dev != "node0/pmem0" {
		t.Errorf("medium-latency persistent request should pick PMem, got %s", dev)
	}
}

func TestBestFitConservesPremiumCapacity(t *testing.T) {
	// A don't-care request should not squat on PMem/HBM when DRAM serves it.
	topo := testbed(t)
	b := NewBestFit(topo)
	req := props.Requirements{Capacity: 1 << 20, Latency: props.LatencyMedium}
	dev, err := b.Place(req, "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := topo.Memory(dev)
	if m.Persistent {
		t.Errorf("scratch request wasted persistent device %s", dev)
	}
}

func TestBestFitNoCandidate(t *testing.T) {
	topo := testbed(t)
	b := NewBestFit(topo)
	// Impossible: persistent AND sub-200ns from a CPU on this testbed.
	req := props.Requirements{Latency: props.LatencyLow, Persistent: props.Require, MaxLatency: 50}
	if _, err := b.Place(req, "node0/cpu0"); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("err = %v, want ErrNoCandidate", err)
	}
}

func TestBestFitDecisionLog(t *testing.T) {
	topo := testbed(t)
	b := NewBestFit(topo)
	req := props.Requirements{Capacity: 64, Latency: props.LatencyBulk}
	if _, err := b.Place(req, "node0/cpu0"); err != nil {
		t.Fatal(err)
	}
	d := b.Decisions()
	if len(d) != 1 || d[0].Compute != "node0/cpu0" || d[0].Device == "" {
		t.Errorf("decision log = %+v", d)
	}
}

func TestPlaceSharedAddressableByAll(t *testing.T) {
	topo := testbed(t)
	b := NewBestFit(topo)
	req := props.GlobalState.Defaults()
	dev, err := b.PlaceShared(req, []string{"node0/cpu0", "node0/cpu1", "node0/gpu0"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"node0/cpu0", "node0/cpu1", "node0/gpu0"} {
		caps, ok := topo.EffectiveCaps(c, dev)
		if !ok {
			t.Fatalf("%s cannot reach shared placement %s", c, dev)
		}
		if ok, viol := req.Match(caps); !ok {
			t.Errorf("%s violates global-state req on %s: %v", c, dev, viol)
		}
	}
	if _, err := b.PlaceShared(req, nil); err == nil {
		t.Error("empty compute list must fail")
	}
}

func TestStaticIgnoresComputeDevice(t *testing.T) {
	// The static baseline always prefers DRAM — right for CPUs, wrong for
	// GPUs, which is the paper's argument for runtime placement.
	topo := testbed(t)
	s := NewStatic(topo, []string{"node0/dram0", "node0/dram1", "node0/cxl0", "node0/ssd0"})
	req := props.Requirements{Capacity: 1 << 20, Latency: props.LatencyBulk, ByteAddr: props.Require}
	cpuDev, err := s.Place(req, "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	gpuDev, err := s.Place(req, "node0/gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if cpuDev != "node0/dram0" || gpuDev != "node0/dram0" {
		t.Errorf("static must always pick dram0, got %s/%s", cpuDev, gpuDev)
	}
	// For the GPU that choice is measurably worse than GDDR.
	dramCaps, _ := topo.EffectiveCaps("node0/gpu0", "node0/dram0")
	gddrCaps, _ := topo.EffectiveCaps("node0/gpu0", "node0/gddr0")
	if dramCaps.Latency <= gddrCaps.Latency {
		t.Error("testbed must make static placement hurt the GPU")
	}
	if _, err := s.Place(props.Requirements{Persistent: props.Require, Latency: props.LatencyLow}, "node0/cpu0"); err == nil {
		t.Error("exhausted static order must fail")
	}
}

func TestRandomIsSeededAndValid(t *testing.T) {
	topo := testbed(t)
	req := props.Requirements{Capacity: 1 << 20, Latency: props.LatencyBulk}
	a := NewRandom(topo, 42)
	b := NewRandom(topo, 42)
	for i := 0; i < 20; i++ {
		da, err := a.Place(req, "node0/cpu0")
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Place(req, "node0/cpu0")
		if err != nil {
			t.Fatal(err)
		}
		if da != db {
			t.Fatal("same seed must give the same placements")
		}
		caps, _ := topo.EffectiveCaps("node0/cpu0", da)
		if ok, _ := req.Match(caps); !ok {
			t.Fatalf("random placement %s violates the request", da)
		}
	}
	if _, err := a.Place(props.Requirements{MaxLatency: 1}, "node0/cpu0"); !errors.Is(err, ErrNoCandidate) {
		t.Error("impossible request must fail")
	}
}

func TestWorstStillMatchesButScoresLow(t *testing.T) {
	topo := testbed(t)
	w := NewWorst(topo)
	b := NewBestFit(topo)
	req := props.Requirements{Capacity: 1 << 20, Latency: props.LatencyBulk, ByteAddr: props.Require}
	wd, err := w.Place(req, "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := b.Place(req, "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	wCaps, _ := topo.EffectiveCaps("node0/cpu0", wd)
	bCaps, _ := topo.EffectiveCaps("node0/cpu0", bd)
	if ok, _ := req.Match(wCaps); !ok {
		t.Error("worst-fit must still satisfy hard constraints")
	}
	if req.Score(wCaps) >= req.Score(bCaps) {
		t.Error("worst-fit must score below best-fit")
	}
	if _, err := w.Place(props.Requirements{MaxLatency: 1}, "node0/cpu0"); !errors.Is(err, ErrNoCandidate) {
		t.Error("impossible request must fail")
	}
}

func TestPlacerNames(t *testing.T) {
	topo := testbed(t)
	if NewBestFit(topo).Name() != "best-fit" || NewStatic(topo, nil).Name() != "static" ||
		NewRandom(topo, 1).Name() != "random" || NewWorst(topo).Name() != "worst-fit" {
		t.Error("placer names wrong")
	}
}

// Property: best-fit dominates — for any satisfiable request, the device
// best-fit picks scores at least as high as random's and worst-fit's picks.
func TestBestFitDominatesProperty(t *testing.T) {
	topo := testbed(t)
	best := NewBestFit(topo)
	rnd := NewRandom(topo, 7)
	worst := NewWorst(topo)
	computes := []string{"node0/cpu0", "node0/cpu1", "node0/gpu0", "node0/tpu0"}
	f := func(latSel, comSel uint8, persist bool, conf bool) bool {
		req := props.Requirements{
			Capacity: 1 << 16,
			Latency:  props.LatencyClass(latSel%4) + 1, // low..bulk
		}
		if persist {
			req.Persistent = props.Require
		}
		req.Confidential = conf
		c := computes[int(comSel)%len(computes)]
		bd, err := best.Place(req, c)
		if err != nil {
			return true // unsatisfiable is fine
		}
		bCaps, _ := topo.EffectiveCaps(c, bd)
		bScore := req.Score(bCaps)
		for _, other := range []interface {
			Place(props.Requirements, string) (string, error)
		}{rnd, worst} {
			od, err := other.Place(req, c)
			if err != nil {
				return false // best found one, others must too
			}
			oCaps, _ := topo.EffectiveCaps(c, od)
			if req.Score(oCaps) > bScore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBestFitPlace(b *testing.B) {
	topo := testbed(b)
	p := NewBestFit(topo)
	req := props.PrivateScratch.Defaults()
	req.Capacity = 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Place(req, "node0/gpu0"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBestFitDecisionCapRing(t *testing.T) {
	topo := testbed(t)
	b := NewBestFit(topo)
	b.SetDecisionCap(3)
	req := props.Requirements{Capacity: 1 << 10}
	for i := 0; i < 7; i++ {
		// Vary the capacity so each decision is distinguishable in the log.
		req.Capacity = int64(1<<10 + i)
		if _, err := b.Place(req, "node0/cpu0"); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Decisions()
	if len(got) != 3 {
		t.Fatalf("retained %d decisions, want 3", len(got))
	}
	// Most recent window, oldest first: capacities 4,5,6.
	for i, d := range got {
		if want := int64(1<<10 + 4 + i); d.Req.Capacity != want {
			t.Errorf("decision %d capacity = %d, want %d (ring must be chronological)", i, d.Req.Capacity, want)
		}
	}

	// Shrinking the cap drops the oldest excess entries.
	b.SetDecisionCap(2)
	got = b.Decisions()
	if len(got) != 2 || got[0].Req.Capacity != 1<<10+5 || got[1].Req.Capacity != 1<<10+6 {
		t.Errorf("after shrink got %+v, want capacities %d,%d", got, 1<<10+5, 1<<10+6)
	}

	b.ResetDecisions()
	if got := b.Decisions(); len(got) != 0 {
		t.Errorf("ResetDecisions left %d entries", len(got))
	}
	// Cap ≤ 0 restores the default bound.
	b.SetDecisionCap(0)
	if _, err := b.Place(req, "node0/cpu0"); err != nil {
		t.Fatal(err)
	}
	if got := b.Decisions(); len(got) != 1 {
		t.Errorf("after reset-to-default got %d decisions, want 1", len(got))
	}
}

func TestBestFitDecisionLogBoundedByDefault(t *testing.T) {
	topo := testbed(t)
	b := NewBestFit(topo)
	req := props.Requirements{Capacity: 1 << 10}
	for i := 0; i < DefaultDecisionCap+50; i++ {
		if _, err := b.Place(req, "node0/cpu0"); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(b.Decisions()); got != DefaultDecisionCap {
		t.Errorf("unbounded default log: %d entries, want %d", got, DefaultDecisionCap)
	}
}
