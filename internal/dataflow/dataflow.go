// Package dataflow implements the application-facing half of the paper's
// programming model (§2.1): applications launch *jobs* made of *tasks*;
// connected tasks form a directed acyclic graph; declarative *properties*
// attach to tasks (compute device preference, confidentiality, persistence,
// memory latency class) and the runtime — not the developer — turns them
// into placement and scheduling decisions.
//
// The package is pure structure: building, validating, and traversing the
// DAG. Execution lives in internal/core, scheduling in internal/sched.
package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// DevicePref declares which compute device kind a task wants (Fig. 2's
// "comp. device" property). AnyDevice defers entirely to the scheduler.
type DevicePref uint8

const (
	AnyDevice DevicePref = iota
	OnCPU
	OnGPU
	OnTPU
	OnFPGA
)

// String returns the preference name.
func (p DevicePref) String() string {
	switch p {
	case AnyDevice:
		return "any"
	case OnCPU:
		return "CPU"
	case OnGPU:
		return "GPU"
	case OnTPU:
		return "TPU"
	case OnFPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("DevicePref(%d)", uint8(p))
	}
}

// Kind maps the preference to a topology compute kind; ok is false for
// AnyDevice.
func (p DevicePref) Kind() (topology.ComputeKind, bool) {
	switch p {
	case OnCPU:
		return topology.CPU, true
	case OnGPU:
		return topology.GPU, true
	case OnTPU:
		return topology.TPU, true
	case OnFPGA:
		return topology.FPGA, true
	default:
		return topology.CPU, false
	}
}

// Props are the declarative task properties of Fig. 2c.
type Props struct {
	Compute      DevicePref         // which kind of compute device
	Confidential bool               // data must not be visible to other tasks/jobs
	Persistent   bool               // task state must survive crashes (T5)
	MemLatency   props.LatencyClass // latency demand for the task's scratch
	Ops          float64            // computational work, in scalar operations
	OutputBytes  int64              // bytes this task hands to each successor
}

// Ctx is the execution context internal/core passes to task bodies. It is
// an interface here to keep dataflow free of the runtime dependency.
type Ctx interface {
	// Now returns the task-local virtual clock.
	Now() time.Duration
	// Compute returns the compute device the task was scheduled on.
	Compute() string
	// Charge advances the virtual clock by the time `ops` scalar
	// operations take on the assigned compute device.
	Charge(ops float64)
	// Wait advances the virtual clock to at least t (e.g. after an async
	// Future.Await).
	Wait(t time.Duration)
	// Scratch allocates task-private scratch memory (freed automatically
	// when the task finishes).
	Scratch(name string, size int64) (*region.Handle, error)
	// Output allocates the region this task will hand to its successors
	// (Fig. 4's "Out"). Call at most once; the runtime transfers or shares
	// it after the task returns.
	Output(size int64) (*region.Handle, error)
	// Inputs returns the regions produced by predecessor tasks, in
	// predecessor order. The task owns them and must not use them after
	// returning.
	Inputs() []*region.Handle
	// Global returns (allocating on first use) a job-wide named region of
	// the given class — Global State for synchronization, Global Scratch
	// for cross-task data exchange (Table 2).
	Global(name string, class props.RegionClass, size int64) (*region.Handle, error)
	// Log records a human-readable event into the run report.
	Log(format string, args ...any)
	// Telemetry exposes the cross-layer metrics registry.
	Telemetry() *telemetry.Registry
}

// Fn is a task body.
type Fn func(ctx Ctx) error

// Task is one node of the job DAG.
type Task struct {
	id    string
	props Props
	fn    Fn
	preds []*Task
	succs []*Task
}

// ID returns the task's identifier.
func (t *Task) ID() string { return t.id }

// Props returns the task's declared properties.
func (t *Task) Props() Props { return t.props }

// Fn returns the task body (nil for structure-only tasks in tests).
func (t *Task) Fn() Fn { return t.fn }

// Preds returns the predecessor tasks in edge-insertion order.
func (t *Task) Preds() []*Task { return append([]*Task(nil), t.preds...) }

// Succs returns the successor tasks in edge-insertion order.
func (t *Task) Succs() []*Task { return append([]*Task(nil), t.succs...) }

// Then connects t → next and returns next, allowing chain syntax:
// preprocess.Then(recognize).Then(track).
func (t *Task) Then(next *Task) *Task {
	t.succs = append(t.succs, next)
	next.preds = append(next.preds, t)
	return next
}

// Job is a named DAG of tasks plus job-level properties.
type Job struct {
	name  string
	tasks map[string]*Task
	order []*Task // insertion order
}

// NewJob creates an empty job.
func NewJob(name string) *Job {
	return &Job{name: name, tasks: make(map[string]*Task)}
}

// Name returns the job name.
func (j *Job) Name() string { return j.name }

// Task adds a task. Duplicate IDs panic: they are programming errors in the
// dataflow definition, not runtime conditions.
func (j *Job) Task(id string, p Props, fn Fn) *Task {
	if id == "" {
		panic("dataflow: empty task id")
	}
	if _, dup := j.tasks[id]; dup {
		panic("dataflow: duplicate task id " + id)
	}
	t := &Task{id: id, props: p, fn: fn}
	j.tasks[id] = t
	j.order = append(j.order, t)
	return t
}

// Get returns a task by ID.
func (j *Job) Get(id string) (*Task, bool) {
	t, ok := j.tasks[id]
	return t, ok
}

// Tasks returns all tasks in insertion order.
func (j *Job) Tasks() []*Task { return append([]*Task(nil), j.order...) }

// Len returns the task count.
func (j *Job) Len() int { return len(j.order) }

// ErrCycle is returned by Validate for cyclic graphs.
var ErrCycle = errors.New("dataflow: job graph has a cycle")

// Validate checks the job is a proper DAG with sane properties.
func (j *Job) Validate() error {
	if len(j.order) == 0 {
		return errors.New("dataflow: job has no tasks")
	}
	for _, t := range j.order {
		if t.props.Ops < 0 || t.props.OutputBytes < 0 {
			return fmt.Errorf("dataflow: task %s has negative work", t.id)
		}
	}
	if _, err := j.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns the tasks in a deterministic topological order
// (Kahn's algorithm; ready set ordered by insertion index).
func (j *Job) TopoOrder() ([]*Task, error) {
	indeg := make(map[*Task]int, len(j.order))
	idx := make(map[*Task]int, len(j.order))
	for i, t := range j.order {
		indeg[t] = len(t.preds)
		idx[t] = i
	}
	var ready []*Task
	for _, t := range j.order {
		if indeg[t] == 0 {
			ready = append(ready, t)
		}
	}
	var out []*Task
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool { return idx[ready[a]] < idx[ready[b]] })
		t := ready[0]
		ready = ready[1:]
		out = append(out, t)
		for _, s := range t.succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(j.order) {
		return nil, ErrCycle
	}
	return out, nil
}

// Sources returns tasks with no predecessors.
func (j *Job) Sources() []*Task {
	var out []*Task
	for _, t := range j.order {
		if len(t.preds) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// Sinks returns tasks with no successors.
func (j *Job) Sinks() []*Task {
	var out []*Task
	for _, t := range j.order {
		if len(t.succs) == 0 {
			out = append(out, t)
		}
	}
	return out
}

// CriticalPathOps returns the largest sum of Ops along any source→sink path
// — a device-independent lower bound used by scheduler tests.
func (j *Job) CriticalPathOps() (float64, error) {
	order, err := j.TopoOrder()
	if err != nil {
		return 0, err
	}
	best := make(map[*Task]float64, len(order))
	var max float64
	for _, t := range order {
		v := t.props.Ops
		var in float64
		for _, p := range t.preds {
			if best[p] > in {
				in = best[p]
			}
		}
		best[t] = in + v
		if best[t] > max {
			max = best[t]
		}
	}
	return max, nil
}
