package dataflow

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func diamond() *Job {
	j := NewJob("diamond")
	a := j.Task("a", Props{Ops: 10}, nil)
	b := j.Task("b", Props{Ops: 20}, nil)
	c := j.Task("c", Props{Ops: 30}, nil)
	d := j.Task("d", Props{Ops: 5}, nil)
	a.Then(b)
	a.Then(c)
	b.Then(d)
	c.Then(d)
	return j
}

func TestJobConstruction(t *testing.T) {
	j := diamond()
	if j.Name() != "diamond" || j.Len() != 4 {
		t.Fatalf("job = %s/%d", j.Name(), j.Len())
	}
	a, ok := j.Get("a")
	if !ok {
		t.Fatal("missing task a")
	}
	if len(a.Succs()) != 2 {
		t.Errorf("a succs = %d, want 2", len(a.Succs()))
	}
	d, _ := j.Get("d")
	if len(d.Preds()) != 2 {
		t.Errorf("d preds = %d, want 2", len(d.Preds()))
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateTaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate id must panic")
		}
	}()
	j := NewJob("x")
	j.Task("t", Props{}, nil)
	j.Task("t", Props{}, nil)
}

func TestEmptyIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty id must panic")
		}
	}()
	NewJob("x").Task("", Props{}, nil)
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	j := diamond()
	order, err := j.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, task := range order {
		pos[task.ID()] = i
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %s→%s violated in order %v", e[0], e[1], pos)
		}
	}
	// Deterministic: two calls agree.
	order2, _ := j.TopoOrder()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("topo order must be deterministic")
		}
	}
}

func TestCycleDetection(t *testing.T) {
	j := NewJob("cyclic")
	a := j.Task("a", Props{}, nil)
	b := j.Task("b", Props{}, nil)
	a.Then(b)
	b.Then(a)
	if err := j.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("err = %v, want ErrCycle", err)
	}
}

func TestValidateRejectsEmptyAndNegative(t *testing.T) {
	if err := NewJob("empty").Validate(); err == nil {
		t.Error("empty job must fail validation")
	}
	j := NewJob("neg")
	j.Task("t", Props{Ops: -1}, nil)
	if err := j.Validate(); err == nil {
		t.Error("negative ops must fail validation")
	}
}

func TestSourcesAndSinks(t *testing.T) {
	j := diamond()
	if s := j.Sources(); len(s) != 1 || s[0].ID() != "a" {
		t.Errorf("sources = %v", s)
	}
	if s := j.Sinks(); len(s) != 1 || s[0].ID() != "d" {
		t.Errorf("sinks = %v", s)
	}
}

func TestCriticalPathOps(t *testing.T) {
	j := diamond()
	cp, err := j.CriticalPathOps()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 45 { // a(10) → c(30) → d(5)
		t.Errorf("critical path = %f, want 45", cp)
	}
}

func TestDevicePref(t *testing.T) {
	if k, ok := OnGPU.Kind(); !ok || k != topology.GPU {
		t.Error("OnGPU must map to topology.GPU")
	}
	if _, ok := AnyDevice.Kind(); ok {
		t.Error("AnyDevice has no kind")
	}
	if OnCPU.String() != "CPU" || AnyDevice.String() != "any" || OnFPGA.String() != "FPGA" {
		t.Error("pref names wrong")
	}
}

func TestHospitalShape(t *testing.T) {
	// The Figure 2 job: T1→T2→{T3,T4,T5}.
	j := NewJob("hospital")
	t1 := j.Task("preprocess", Props{Compute: OnGPU, Confidential: true, MemLatency: 1}, nil)
	t2 := j.Task("face-recognition", Props{Compute: OnGPU, Confidential: true, MemLatency: 1}, nil)
	t3 := j.Task("track-hours", Props{Compute: OnCPU, Confidential: true, MemLatency: 1}, nil)
	t4 := j.Task("compute-utilization", Props{Compute: OnCPU}, nil)
	t5 := j.Task("alert-caregivers", Props{Compute: OnCPU, Confidential: true, Persistent: true}, nil)
	t1.Then(t2)
	t2.Then(t3)
	t2.Then(t4)
	t2.Then(t5)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(j.Sinks()); got != 3 {
		t.Errorf("hospital sinks = %d, want 3", got)
	}
	if !t5.Props().Persistent || !t5.Props().Confidential {
		t.Error("T5 must be persistent and confidential (Fig. 2)")
	}
	if t4.Props().Confidential {
		t.Error("T4 (public utilization) must not be confidential")
	}
}

// Property: random DAGs built with forward-only edges always validate and
// topo-sort to a full ordering consistent with every edge.
func TestRandomDAGTopoProperty(t *testing.T) {
	f := func(edges []uint16, n uint8) bool {
		size := int(n%20) + 2
		j := NewJob("rand")
		tasks := make([]*Task, size)
		for i := range tasks {
			tasks[i] = j.Task(string(rune('A'+i%26))+string(rune('0'+i/26)), Props{Ops: float64(i)}, nil)
		}
		for _, e := range edges {
			from := int(e) % size
			to := int(e>>8) % size
			if from < to { // forward-only keeps it acyclic
				tasks[from].Then(tasks[to])
			}
		}
		if err := j.Validate(); err != nil {
			return false
		}
		order, err := j.TopoOrder()
		if err != nil || len(order) != size {
			return false
		}
		pos := map[*Task]int{}
		for i, task := range order {
			pos[task] = i
		}
		for _, task := range tasks {
			for _, s := range task.Succs() {
				if pos[task] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
