package dataflow

import "fmt"

// Template stamps out numbered instances of one job shape. Streaming uses
// it to instantiate a bounded window sub-DAG per source window; any caller
// that repeatedly submits the same graph under instance-numbered names can
// use it the same way.
//
// A Template is pure structure: Instantiate builds a fresh Job every call,
// so instances never share Task pointers and may be submitted, retried,
// and released independently.
type Template struct {
	// Name is the instance-name format. It must contain exactly one %d
	// verb (width modifiers allowed, e.g. "etl/w%06d"), which receives the
	// instance number.
	Name string
	// Build populates one instance's task graph. It receives the empty job
	// (already named) and the instance number.
	Build func(j *Job, instance int) error
}

// Instantiate builds, populates, and validates instance n of the template.
func (t Template) Instantiate(n int) (*Job, error) {
	if t.Build == nil {
		return nil, fmt.Errorf("dataflow: template %q has no Build", t.Name)
	}
	j := NewJob(fmt.Sprintf(t.Name, n))
	if err := t.Build(j, n); err != nil {
		return nil, fmt.Errorf("dataflow: building %s: %w", j.Name(), err)
	}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("dataflow: template instance %s: %w", j.Name(), err)
	}
	return j, nil
}
