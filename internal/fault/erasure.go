package fault

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
)

// ErasureStore stores objects in RS-coded *spans* following Carbink [62]:
// objects are appended into an open span buffer; when the buffer reaches the
// span size (or Flush is called), the span is split into d data shards plus
// p parity shards, each written to a distinct memory node. Reads of healthy
// spans touch only the data shards holding the object; degraded reads
// reconstruct from any d shards. Deleting objects leaves garbage in their
// spans; Compact rewrites spans whose live fraction drops below a threshold,
// reclaiming physical memory — the "compaction" the paper cites from
// Carbink.
type ErasureStore struct {
	mu     sync.Mutex
	fabric *cluster.Fabric
	rs     *RS
	// spanSize is the logical payload bytes per span (before sharding).
	spanSize int
	next     ObjectID
	objects  map[ObjectID]objLoc
	spans    map[int]*span
	nextSpan int
	open     *openSpan
	rr       int
	// gcThreshold: compact spans whose live ratio falls below this.
	gcThreshold float64
}

type objLoc struct {
	span int
	off  int
	size int
}

type span struct {
	shardSize int
	shards    []cluster.SlabID // d+p slabs on distinct nodes
	nodes     []string
	liveBytes int
	usedBytes int
	sealed    bool
}

type openSpan struct {
	id  int
	buf []byte
	// objects staged into this span, finalized at seal time.
	staged []ObjectID
}

// ErasureConfig tunes the store.
type ErasureConfig struct {
	Data, Parity int     // RS geometry, default 4+2
	SpanSize     int     // payload bytes per span, default 64 KiB
	GCThreshold  float64 // compact below this live ratio, default 0.5
}

// NewErasureStore builds a Carbink-style store over the fabric.
func NewErasureStore(f *cluster.Fabric, cfg ErasureConfig) (*ErasureStore, error) {
	if cfg.Data <= 0 {
		cfg.Data = 4
	}
	if cfg.Parity <= 0 {
		cfg.Parity = 2
	}
	if cfg.SpanSize <= 0 {
		cfg.SpanSize = 64 << 10
	}
	if cfg.GCThreshold <= 0 {
		cfg.GCThreshold = 0.5
	}
	rs, err := NewRS(cfg.Data, cfg.Parity)
	if err != nil {
		return nil, err
	}
	if len(f.Nodes()) < rs.TotalShards() {
		return nil, fmt.Errorf("fault: %d nodes cannot host %d shards", len(f.Nodes()), rs.TotalShards())
	}
	return &ErasureStore{
		fabric: f, rs: rs, spanSize: cfg.SpanSize,
		objects: make(map[ObjectID]objLoc), spans: make(map[int]*span),
		gcThreshold: cfg.GCThreshold,
	}, nil
}

// Overhead returns the configured storage expansion factor.
func (s *ErasureStore) Overhead() float64 { return s.rs.Overhead() }

// Put appends the object to the open span, sealing the span when full.
func (s *ErasureStore) Put(data []byte) (ObjectID, time.Duration, error) {
	if len(data) == 0 {
		return 0, 0, cluster.ErrInvalidInput
	}
	if len(data) > s.spanSize {
		return 0, 0, fmt.Errorf("%w: object %d exceeds span size %d", cluster.ErrInvalidInput, len(data), s.spanSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	if s.open != nil && len(s.open.buf)+len(data) > s.spanSize {
		d, err := s.sealLocked()
		total += d
		if err != nil {
			return 0, total, err
		}
	}
	if s.open == nil {
		s.open = &openSpan{id: s.nextSpan}
		s.nextSpan++
	}
	oid := s.next
	s.next++
	s.objects[oid] = objLoc{span: s.open.id, off: len(s.open.buf), size: len(data)}
	s.open.buf = append(s.open.buf, data...)
	s.open.staged = append(s.open.staged, oid)
	return oid, total, nil
}

// Flush seals the open span, making all staged objects durable.
func (s *ErasureStore) Flush() (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealLocked()
}

// sealLocked encodes and ships the open span. Caller holds s.mu.
func (s *ErasureStore) sealLocked() (time.Duration, error) {
	if s.open == nil || len(s.open.buf) == 0 {
		s.open = nil
		return 0, nil
	}
	alive := s.fabric.AliveNodes()
	if len(alive) < s.rs.TotalShards() {
		return 0, fmt.Errorf("%w: %d alive nodes, need %d", cluster.ErrUnreachable, len(alive), s.rs.TotalShards())
	}
	shards, shardSize := s.rs.Split(s.open.buf)
	if err := s.rs.Encode(shards); err != nil {
		return 0, err
	}
	// Bytes of objects deleted while staged are garbage from birth.
	live := 0
	for _, oid := range s.open.staged {
		if loc, ok := s.objects[oid]; ok && loc.span == s.open.id {
			live += loc.size
		}
	}
	sp := &span{shardSize: shardSize, liveBytes: live, usedBytes: len(s.open.buf), sealed: true}
	var total, maxWrite time.Duration
	for i, shard := range shards {
		node := alive[(s.rr+i)%len(alive)]
		slab, d, err := s.fabric.AllocSlab(node, int64(shardSize))
		total += d
		if err != nil {
			return total, err
		}
		dw, err := s.fabric.Write(slab, 0, shard)
		if dw > maxWrite {
			maxWrite = dw
		}
		if err != nil {
			return total, err
		}
		sp.shards = append(sp.shards, slab)
		sp.nodes = append(sp.nodes, node)
	}
	total += maxWrite // shard writes fan out in parallel
	s.rr = (s.rr + 1) % len(alive)
	s.spans[s.open.id] = sp
	s.open = nil
	return total, nil
}

// Get reads an object. Healthy path: read only the data shards covering the
// object's byte range. Degraded path: reconstruct the span from any d shards.
func (s *ErasureStore) Get(id ObjectID) ([]byte, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.objects[id]
	if !ok {
		return nil, 0, ErrNotFound
	}
	// Still staged in the open span?
	if s.open != nil && s.open.id == loc.span {
		out := make([]byte, loc.size)
		copy(out, s.open.buf[loc.off:loc.off+loc.size])
		return out, 0, nil
	}
	sp, ok := s.spans[loc.span]
	if !ok {
		return nil, 0, fmt.Errorf("fault: object %d references missing span %d", id, loc.span)
	}
	// Fast path: read the byte range straight from data shards.
	out := make([]byte, loc.size)
	var total time.Duration
	healthy := true
	for n := 0; n < loc.size; {
		abs := loc.off + n
		shard := abs / sp.shardSize
		within := abs % sp.shardSize
		chunk := sp.shardSize - within
		if chunk > loc.size-n {
			chunk = loc.size - n
		}
		d, err := s.fabric.Read(sp.shards[shard], int64(within), out[n:n+chunk])
		total += d
		if err != nil {
			healthy = false
			break
		}
		n += chunk
	}
	if healthy {
		return out, total, nil
	}
	// Degraded read: gather any d shards and reconstruct.
	buf, d, err := s.readSpanLocked(sp)
	total += d
	if err != nil {
		return nil, total, err
	}
	copy(out, buf[loc.off:loc.off+loc.size])
	return out, total, nil
}

// readSpanLocked returns the span's full payload, reconstructing if needed.
func (s *ErasureStore) readSpanLocked(sp *span) ([]byte, time.Duration, error) {
	shards := make([][]byte, s.rs.TotalShards())
	var total time.Duration
	got := 0
	for i, slab := range sp.shards {
		if got >= s.rs.DataShards() && i >= s.rs.DataShards() {
			break // we have enough
		}
		buf := make([]byte, sp.shardSize)
		d, err := s.fabric.Read(slab, 0, buf)
		total += d
		if err != nil {
			continue
		}
		shards[i] = buf
		got++
	}
	if got < s.rs.DataShards() {
		return nil, total, fmt.Errorf("%w: span has %d of %d shards", ErrTooFewOK, got, s.rs.DataShards())
	}
	if err := s.rs.Reconstruct(shards); err != nil {
		return nil, total, err
	}
	joined, err := s.rs.Join(shards, sp.usedBytes)
	if err != nil {
		return nil, total, err
	}
	return joined, total, nil
}

// Delete marks the object dead; physical space is reclaimed by Compact.
func (s *ErasureStore) Delete(id ObjectID) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.objects[id]
	if !ok {
		return 0, ErrNotFound
	}
	delete(s.objects, id)
	if s.open != nil && s.open.id == loc.span {
		return 0, nil // staged bytes die with the rewrite at seal
	}
	if sp, ok := s.spans[loc.span]; ok {
		sp.liveBytes -= loc.size
	}
	return 0, nil
}

// Compact rewrites spans whose live ratio fell below the threshold: live
// objects are re-Put into fresh spans, dead spans are freed. Returns the
// number of compacted spans and the virtual time spent (the offloadable
// parity work the paper mentions).
func (s *ErasureStore) Compact() (int, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var victims []int
	for id, sp := range s.spans {
		if !sp.sealed {
			continue
		}
		if sp.usedBytes == 0 || float64(sp.liveBytes)/float64(sp.usedBytes) < s.gcThreshold {
			victims = append(victims, id)
		}
	}
	sort.Ints(victims)
	var total time.Duration
	compacted := 0
	for _, vid := range victims {
		sp := s.spans[vid]
		// Collect live objects of this span.
		type liveObj struct {
			id   ObjectID
			data []byte
		}
		var live []liveObj
		if sp.liveBytes > 0 {
			payload, d, err := s.readSpanLocked(sp)
			total += d
			if err != nil {
				return compacted, total, err
			}
			for oid, loc := range s.objects {
				if loc.span != vid {
					continue
				}
				data := make([]byte, loc.size)
				copy(data, payload[loc.off:loc.off+loc.size])
				live = append(live, liveObj{oid, data})
			}
			sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
		}
		// Free the old shards.
		for _, slab := range sp.shards {
			d, _ := s.fabric.FreeSlab(slab)
			total += d
		}
		delete(s.spans, vid)
		// Re-stage live objects preserving their IDs.
		for _, lo := range live {
			if s.open != nil && len(s.open.buf)+len(lo.data) > s.spanSize {
				d, err := s.sealLocked()
				total += d
				if err != nil {
					return compacted, total, err
				}
			}
			if s.open == nil {
				s.open = &openSpan{id: s.nextSpan}
				s.nextSpan++
			}
			s.objects[lo.id] = objLoc{span: s.open.id, off: len(s.open.buf), size: len(lo.data)}
			s.open.buf = append(s.open.buf, lo.data...)
			s.open.staged = append(s.open.staged, lo.id)
		}
		compacted++
	}
	return compacted, total, nil
}

// Recover rebuilds shards lost to node crashes: every sealed span is probed
// and missing shards are reconstructed onto alive nodes.
func (s *ErasureStore) Recover() (int, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	repaired := 0
	spanIDs := make([]int, 0, len(s.spans))
	for id := range s.spans {
		spanIDs = append(spanIDs, id)
	}
	sort.Ints(spanIDs)
	for _, sid := range spanIDs {
		sp := s.spans[sid]
		shards := make([][]byte, s.rs.TotalShards())
		var missing []int
		for i, slab := range sp.shards {
			buf := make([]byte, sp.shardSize)
			d, err := s.fabric.Read(slab, 0, buf)
			total += d
			if err != nil {
				missing = append(missing, i)
				continue
			}
			shards[i] = buf
		}
		if len(missing) == 0 {
			continue
		}
		if err := s.rs.Reconstruct(shards); err != nil {
			return repaired, total, err
		}
		alive := s.fabric.AliveNodes()
		if len(alive) == 0 {
			return repaired, total, cluster.ErrUnreachable
		}
		for _, mi := range missing {
			// Place the rebuilt shard on an alive node not already hosting
			// a shard of this span, if possible.
			target := ""
			hosting := make(map[string]bool, len(sp.nodes))
			for j, n := range sp.nodes {
				if j != mi && !contains(missing, j) {
					hosting[n] = true
				}
			}
			for _, n := range alive {
				if !hosting[n] {
					target = n
					break
				}
			}
			if target == "" {
				target = alive[0]
			}
			slab, d, err := s.fabric.AllocSlab(target, int64(sp.shardSize))
			total += d
			if err != nil {
				return repaired, total, err
			}
			dw, err := s.fabric.Write(slab, 0, shards[mi])
			total += dw
			if err != nil {
				return repaired, total, err
			}
			sp.shards[mi] = slab
			sp.nodes[mi] = target
			repaired++
		}
	}
	return repaired, total, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// StoredBytes returns (logical live bytes, physical bytes incl. parity and
// garbage) — the overhead witness benchmarked against replication.
func (s *ErasureStore) StoredBytes() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var logical, physical int64
	for _, loc := range s.objects {
		logical += int64(loc.size)
	}
	for _, sp := range s.spans {
		physical += int64(sp.shardSize) * int64(s.rs.TotalShards())
	}
	if s.open != nil {
		physical += int64(len(s.open.buf))
	}
	return logical, physical
}

// SpanCount returns the number of sealed spans (tests and reports).
func (s *ErasureStore) SpanCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}
