package fault

import (
	"errors"
	"fmt"
	"sync"
)

// This file provides the deterministic fault-injection hook the runtime's
// recovery path is tested and demonstrated with. Simulated hardware never
// fails on its own; an Injector lets tests and disaggsim kill chosen task
// executions at a chosen attempt, so recovery behaviour is reproducible
// run-to-run (no wall-clock or math/rand nondeterminism).

// ErrInjected marks a deterministically injected task fault.
var ErrInjected = errors.New("fault: injected task failure")

// Injector decides, deterministically, which task executions fail. Two
// selection modes compose:
//
//   - rate-based: a seeded hash of the (submission, task) site picks a
//     `rate` fraction of sites; each picked site fails its first `kills`
//     executions and then succeeds, so recovery always converges;
//   - targeted: Kill(task, n) fails the next n executions of a task by
//     name, regardless of submission — pinpoint kills at a chosen
//     attempt/step for tests.
//
// An Injector is safe for concurrent use; a nil *Injector injects nothing.
type Injector struct {
	seed  uint64
	rate  float64
	kills int

	mu       sync.Mutex
	counts   map[string]int // site → injected failures so far
	targets  map[string]int // task → remaining targeted kills
	injected int64
}

// NewInjector builds an injector failing the first `kills` executions
// (default 1) of a `rate` fraction of task sites, selected by seed.
func NewInjector(seed uint64, rate float64, kills int) *Injector {
	if kills <= 0 {
		kills = 1
	}
	return &Injector{
		seed: seed, rate: rate, kills: kills,
		counts:  make(map[string]int),
		targets: make(map[string]int),
	}
}

// Kill schedules the next n executions of the named task to fail, in any
// submission — the "kill this task at attempt 1..n" test hook.
func (in *Injector) Kill(task string, n int) {
	if in == nil || n <= 0 {
		return
	}
	in.mu.Lock()
	in.targets[task] += n
	in.mu.Unlock()
}

// Step is called by the runtime immediately before a task body runs; a
// non-nil return is the injected fault and the task fails as if its body
// had returned it. id identifies the submission (unique per Server
// submission), task the task within it.
func (in *Injector) Step(id, task string) error {
	if in == nil {
		return nil
	}
	site := id + "/" + task
	in.mu.Lock()
	defer in.mu.Unlock()
	if n := in.targets[task]; n > 0 {
		in.targets[task] = n - 1
		in.injected++
		return fmt.Errorf("%w: %s (targeted)", ErrInjected, site)
	}
	if in.rate > 0 && in.counts[site] < in.kills && in.hash(site) < in.rate {
		in.counts[site]++
		in.injected++
		return fmt.Errorf("%w: %s (kill %d/%d)", ErrInjected, site, in.counts[site], in.kills)
	}
	return nil
}

// Injected reports how many faults have been injected so far.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// hash maps a site to [0,1) with FNV-1a over the key, mixed with the seed
// and finalized with a 64-bit avalanche.
func (in *Injector) hash(site string) float64 {
	h := uint64(1469598103934665603) ^ (in.seed * 0x9e3779b97f4a7c15)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}
