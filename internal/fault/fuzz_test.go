package fault

import (
	"bytes"
	"testing"
)

// Fuzz targets complement the property tests: `go test` runs the seed
// corpus; `go test -fuzz=FuzzRSRoundtrip ./internal/fault` explores.

func FuzzRSRoundtrip(f *testing.F) {
	f.Add([]byte("seed payload"), uint8(4), uint8(2), uint8(0b101))
	f.Add([]byte{0}, uint8(1), uint8(1), uint8(1))
	f.Add(bytes.Repeat([]byte{0xff}, 300), uint8(7), uint8(3), uint8(0b1100))
	f.Fuzz(func(t *testing.T, payload []byte, dRaw, pRaw, eraseMask uint8) {
		if len(payload) == 0 {
			return
		}
		d := int(dRaw%8) + 1
		p := int(pRaw%4) + 1
		rs, err := NewRS(d, p)
		if err != nil {
			t.Fatal(err)
		}
		shards, _ := rs.Split(payload)
		if err := rs.Encode(shards); err != nil {
			t.Fatal(err)
		}
		// Erase up to p shards according to the mask.
		erased := 0
		for i := 0; i < rs.TotalShards() && erased < p; i++ {
			if eraseMask&(1<<(i%8)) != 0 {
				shards[i] = nil
				erased++
			}
		}
		if err := rs.Reconstruct(shards); err != nil {
			t.Fatalf("reconstruct with %d ≤ %d erasures: %v", erased, p, err)
		}
		got, err := rs.Join(shards, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted through encode/erase/reconstruct")
		}
	})
}

func FuzzGFInverse(f *testing.F) {
	f.Add(uint8(1), uint8(2))
	f.Add(uint8(255), uint8(254))
	f.Fuzz(func(t *testing.T, a, b uint8) {
		if a == 0 || b == 0 {
			return
		}
		// (a*b)/b == a and a*inv(a) == 1.
		if gfDiv(gfMul(a, b), b) != a {
			t.Fatalf("(%d*%d)/%d != %d", a, b, b, a)
		}
		if gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("%d * inv(%d) != 1", a, a)
		}
	})
}
