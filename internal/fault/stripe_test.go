package fault

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStripedPutGetRoundtrip(t *testing.T) {
	f := fabricWithNodes(t, 4, 1<<20)
	s, err := NewStripedStore(f, StripeConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	id, d, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("put must cost time")
	}
	got, _, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("striped round trip corrupted data")
	}
	logical, physical := s.StoredBytes()
	if logical != 10_000 || physical < logical {
		t.Errorf("bytes = %d/%d", logical, physical)
	}
}

func TestStripedValidation(t *testing.T) {
	f := fabricWithNodes(t, 3, 1<<20)
	if _, err := NewStripedStore(f, StripeConfig{Width: 4}); err == nil {
		t.Error("width 4 on 3 nodes must fail")
	}
	if _, err := NewStripedStore(f, StripeConfig{Width: 2, Mirrors: -1}); err == nil {
		t.Error("negative mirrors must fail")
	}
	s, err := NewStripedStore(f, StripeConfig{Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(nil); err == nil {
		t.Error("empty put must fail")
	}
	if _, _, err := s.Get(42); !errors.Is(err, ErrNotFound) {
		t.Error("unknown get must be ErrNotFound")
	}
	if _, err := s.Delete(42); !errors.Is(err, ErrNotFound) {
		t.Error("unknown delete must be ErrNotFound")
	}
}

func TestStripedBandwidthAggregation(t *testing.T) {
	// The same 1 MiB object: width-4 striping must beat a single-node
	// store on transfer time (parallel chunks).
	payload := make([]byte, 1<<20)
	f1 := fabricWithNodes(t, 4, 1<<22)
	wide, err := NewStripedStore(f1, StripeConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, wideTime, err := wide.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	f2 := fabricWithNodes(t, 4, 1<<22)
	narrow, err := NewStripedStore(f2, StripeConfig{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, narrowTime, err := narrow.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if float64(narrowTime)/float64(wideTime) < 2 {
		t.Errorf("width-4 put (%v) should be ≥2× faster than width-1 (%v)", wideTime, narrowTime)
	}
}

func TestStripedWithoutMirrorsLosesDataOnCrash(t *testing.T) {
	f := fabricWithNodes(t, 4, 1<<20)
	s, _ := NewStripedStore(f, StripeConfig{Width: 4})
	id, _, err := s.Put(make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(id); err == nil {
		t.Error("pure striping must lose data when a node dies — that's its trade-off")
	}
	if _, _, err := s.Recover(); err == nil {
		t.Error("recovery without mirrors must report the loss")
	}
}

func TestStripedMirrorsSurviveCrashAndRecover(t *testing.T) {
	f := fabricWithNodes(t, 8, 1<<20)
	s, err := NewStripedStore(f, StripeConfig{Width: 4, Mirrors: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i)
	}
	id, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	logical, physical := s.StoredBytes()
	if physical != 2*logical {
		t.Errorf("mirror overhead = %d/%d, want 2×", physical, logical)
	}
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get(id)
	if err != nil {
		t.Fatalf("mirrored read after crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("mirrored read corrupted data")
	}
	repaired, d, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 || d <= 0 {
		t.Errorf("recover must rebuild lost replicas: repaired=%d", repaired)
	}
	// Survive a second crash post-recovery.
	if err := f.Crash("mem1"); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s.Get(id); err != nil || !bytes.Equal(got, data) {
		t.Errorf("post-recovery crash read: %v", err)
	}
}

func TestStripedDeleteFreesEverything(t *testing.T) {
	f := fabricWithNodes(t, 4, 1<<20)
	s, _ := NewStripedStore(f, StripeConfig{Width: 4, Mirrors: 0})
	id, _, _ := s.Put(make([]byte, 4096))
	if _, err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	for _, n := range f.Nodes() {
		used, _, _ := f.NodeUsage(n)
		if used != 0 {
			t.Errorf("%s still holds %d bytes", n, used)
		}
	}
	if _, _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Error("deleted object must be gone")
	}
}

func TestStripedTinyObjects(t *testing.T) {
	// Objects smaller than the stripe width still round-trip.
	f := fabricWithNodes(t, 4, 1<<20)
	s, _ := NewStripedStore(f, StripeConfig{Width: 4})
	for _, n := range []int{1, 2, 3, 5} {
		data := bytes.Repeat([]byte{byte(n)}, n)
		id, _, err := s.Put(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, _, err := s.Get(id)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("n=%d round trip: %q %v", n, got, err)
		}
	}
}

// Property: random payloads round-trip across widths and mirror counts.
func TestStripedRoundtripProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(4)
		mirrors := rng.Intn(2)
		f := fabricWithNodes(t, width*(1+mirrors)+1, 1<<20)
		s, err := NewStripedStore(f, StripeConfig{Width: width, Mirrors: mirrors})
		if err != nil {
			return false
		}
		data := make([]byte, 1+rng.Intn(20000))
		rng.Read(data)
		id, _, err := s.Put(data)
		if err != nil {
			return false
		}
		got, _, err := s.Get(id)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStripedPut(b *testing.B) {
	f := fabricWithNodes(b, 8, 1<<34)
	s, err := NewStripedStore(f, StripeConfig{Width: 4})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Put(payload); err != nil {
			b.Fatal(err)
		}
	}
}
