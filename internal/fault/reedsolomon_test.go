package fault

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check field axioms exhaustively over small ranges.
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("1 is not identity for %d", a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("0 not absorbing for %d", a)
		}
		if a != 0 {
			if gfMul(byte(a), gfInv(byte(a))) != 1 {
				t.Fatalf("inverse broken for %d", a)
			}
			if gfDiv(byte(a), byte(a)) != 1 {
				t.Fatalf("a/a != 1 for %d", a)
			}
		}
	}
	// Commutativity + associativity on a sample.
	for a := 1; a < 256; a += 7 {
		for b := 1; b < 256; b += 11 {
			if gfMul(byte(a), byte(b)) != gfMul(byte(b), byte(a)) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			for c := 1; c < 256; c += 37 {
				l := gfMul(gfMul(byte(a), byte(b)), byte(c))
				r := gfMul(byte(a), gfMul(byte(b), byte(c)))
				if l != r {
					t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestGFDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero must panic")
		}
	}()
	gfDiv(5, 0)
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverse of zero must panic")
		}
	}()
	gfInv(0)
}

func TestMatrixInvert(t *testing.T) {
	// Invert a known-invertible Vandermonde block and check m×inv = I.
	for n := 1; n <= 8; n++ {
		v := vandermonde(n, n)
		inv, ok := v.invert()
		if !ok {
			t.Fatalf("vandermonde %d×%d must invert", n, n)
		}
		prod := v.mul(inv)
		id := identity(n)
		if !bytes.Equal(prod.data, id.data) {
			t.Fatalf("m×inv != I for n=%d", n)
		}
	}
	// Singular matrix: two equal rows.
	m := newMatrix(2, 2)
	m.set(0, 0, 3)
	m.set(0, 1, 5)
	m.set(1, 0, 3)
	m.set(1, 1, 5)
	if _, ok := m.invert(); ok {
		t.Error("singular matrix must not invert")
	}
	if _, ok := newMatrix(2, 3).invert(); ok {
		t.Error("non-square matrix must not invert")
	}
}

func TestNewRSValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 2}, {4, 0}, {-1, 3}, {200, 100}} {
		if _, err := NewRS(bad[0], bad[1]); err == nil {
			t.Errorf("NewRS(%d,%d) must fail", bad[0], bad[1])
		}
	}
	rs, err := NewRS(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DataShards() != 8 || rs.ParityShards() != 3 || rs.TotalShards() != 11 {
		t.Error("geometry accessors wrong")
	}
	if o := rs.Overhead(); o < 1.37 || o > 1.38 {
		t.Errorf("RS(11,8) overhead = %f, want 1.375", o)
	}
}

func TestEncodeVerifyRoundtrip(t *testing.T) {
	rs, _ := NewRS(4, 2)
	shards, _ := rs.Split([]byte("hello, disaggregated world! this is a reed-solomon test payload."))
	if err := rs.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := rs.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("verify = %t, %v", ok, err)
	}
	// Corrupt one byte: verification must fail.
	shards[2][0] ^= 0xff
	ok, err = rs.Verify(shards)
	if err != nil || ok {
		t.Fatal("corruption must fail verification")
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// RS(6,4): every pattern of ≤2 erasures must reconstruct exactly.
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	orig, _ := rs.Split(payload)
	if err := rs.Encode(orig); err != nil {
		t.Fatal(err)
	}
	n := rs.TotalShards()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			shards := make([][]byte, n)
			for k := range shards {
				if k == i || k == j {
					continue
				}
				shards[k] = append([]byte(nil), orig[k]...)
			}
			if err := rs.Reconstruct(shards); err != nil {
				t.Fatalf("erasures {%d,%d}: %v", i, j, err)
			}
			for k := range shards {
				if !bytes.Equal(shards[k], orig[k]) {
					t.Fatalf("erasures {%d,%d}: shard %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	rs, _ := NewRS(4, 2)
	orig, _ := rs.Split(make([]byte, 100))
	if err := rs.Encode(orig); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, rs.TotalShards())
	for k := 3; k < len(shards); k++ { // only 3 of 4 data needed shards present
		shards[k] = orig[k]
	}
	shards[3], shards[4], shards[5] = nil, nil, nil // now only 0 present... rebuild properly:
	for k := range shards {
		shards[k] = nil
	}
	shards[0], shards[1], shards[2] = orig[0], orig[1], orig[2] // 3 < d=4
	if err := rs.Reconstruct(shards); err == nil {
		t.Error("3 of 6 shards with d=4 must fail")
	}
}

func TestShardValidation(t *testing.T) {
	rs, _ := NewRS(2, 1)
	if err := rs.Encode([][]byte{{1}, {2}}); err == nil {
		t.Error("wrong shard count must fail")
	}
	if err := rs.Encode([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Error("mixed sizes must fail")
	}
	if err := rs.Encode([][]byte{{1}, nil, {2}}); err == nil {
		t.Error("nil shard must fail encode")
	}
	if err := rs.Reconstruct([][]byte{nil, nil, nil}); err == nil {
		t.Error("all-nil must fail reconstruct")
	}
}

func TestSplitJoin(t *testing.T) {
	rs, _ := NewRS(3, 2)
	payload := []byte("uneven payload that does not divide evenly")
	shards, shardSize := rs.Split(payload)
	if shardSize != (len(payload)+2)/3 {
		t.Errorf("shardSize = %d", shardSize)
	}
	got, err := rs.Join(shards, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("split/join must round-trip")
	}
	if _, err := rs.Join(shards[:2], 10); err == nil {
		t.Error("join with too few shards must fail")
	}
	if _, err := rs.Join(shards, 1<<20); err == nil {
		t.Error("join with oversize n must fail")
	}
	empty, size := rs.Split(nil)
	if size != 1 || len(empty) != 5 {
		t.Error("empty split must produce 1-byte shards")
	}
}

// Property: for random geometries, payloads, and erasure patterns within
// the parity budget, decode(encode(x)) == x.
func TestReedSolomonRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(8)
		p := 1 + rng.Intn(4)
		rs, err := NewRS(d, p)
		if err != nil {
			return false
		}
		payload := make([]byte, 1+rng.Intn(4096))
		rng.Read(payload)
		shards, _ := rs.Split(payload)
		if err := rs.Encode(shards); err != nil {
			return false
		}
		// Erase up to p random shards.
		erasures := rng.Intn(p + 1)
		for e := 0; e < erasures; e++ {
			shards[rng.Intn(d+p)] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			return false
		}
		got, err := rs.Join(shards, len(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: parity is linear — encoding the XOR of two payloads gives the
// XOR of the parities (GF(2^8) addition is XOR).
func TestParityLinearityProperty(t *testing.T) {
	rs, _ := NewRS(4, 2)
	f := func(a, b [64]byte) bool {
		sa, _ := rs.Split(a[:])
		sb, _ := rs.Split(b[:])
		var xored [64]byte
		for i := range a {
			xored[i] = a[i] ^ b[i]
		}
		sx, _ := rs.Split(xored[:])
		if rs.Encode(sa) != nil || rs.Encode(sb) != nil || rs.Encode(sx) != nil {
			return false
		}
		for pi := 4; pi < 6; pi++ {
			for i := range sx[pi] {
				if sx[pi][i] != sa[pi][i]^sb[pi][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRSEncode(b *testing.B) {
	rs, err := NewRS(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	shards, _ := rs.Split(payload)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rs.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSReconstruct(b *testing.B) {
	rs, err := NewRS(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	orig, _ := rs.Split(payload)
	if err := rs.Encode(orig); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(orig))
		copy(shards, orig)
		shards[0], shards[5], shards[9] = nil, nil, nil
		if err := rs.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
