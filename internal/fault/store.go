package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
)

// This file provides the two durable far-memory object stores the paper's
// challenge 8(3) contrasts: ReplicatedStore (k-way replication, simple and
// fast to read but ≥2× memory) and ErasureStore (RS-coded spans in the style
// of Carbink [62]: ~1.5× memory, parity computed per span, degraded reads
// reconstruct, and a compactor reclaims dead spans). Both speak one-sided
// verbs against a cluster.Fabric and survive the crash of up to their
// redundancy budget of memory nodes.

// ErrNotFound is returned when an object key is unknown.
var ErrNotFound = errors.New("fault: object not found")

// ObjectID names a stored object.
type ObjectID uint64

// Store is the common interface of both redundancy schemes.
type Store interface {
	// Put stores data under a fresh id, returning the virtual time spent.
	Put(data []byte) (ObjectID, time.Duration, error)
	// Get returns the object's bytes (reconstructing if nodes are down).
	Get(id ObjectID) ([]byte, time.Duration, error)
	// Delete removes the object.
	Delete(id ObjectID) (time.Duration, error)
	// Recover re-establishes full redundancy after node failures,
	// returning repaired object count and virtual repair time.
	Recover() (int, time.Duration, error)
	// StoredBytes returns (logical, physical) byte counts: the memory
	// overhead witness.
	StoredBytes() (int64, int64)
}

// ---------------------------------------------------------------------------
// Replication

// ReplicatedStore keeps k full copies of each object on distinct nodes.
type ReplicatedStore struct {
	mu       sync.Mutex
	fabric   *cluster.Fabric
	replicas int
	next     ObjectID
	objects  map[ObjectID]*replObject
	rr       int // round-robin cursor over nodes
}

type replObject struct {
	size   int
	copies map[string]cluster.SlabID // node → slab
}

// NewReplicatedStore builds a store with the given replication factor.
func NewReplicatedStore(f *cluster.Fabric, replicas int) (*ReplicatedStore, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("fault: replication factor %d", replicas)
	}
	if len(f.Nodes()) < replicas {
		return nil, fmt.Errorf("fault: %d nodes cannot host %d replicas", len(f.Nodes()), replicas)
	}
	return &ReplicatedStore{fabric: f, replicas: replicas, objects: make(map[ObjectID]*replObject)}, nil
}

// pickNodes returns n distinct alive nodes round-robin, preferring spread.
func (s *ReplicatedStore) pickNodes(n int) ([]string, error) {
	alive := s.fabric.AliveNodes()
	if len(alive) < n {
		return nil, fmt.Errorf("%w: %d alive, need %d", cluster.ErrUnreachable, len(alive), n)
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, alive[(s.rr+i)%len(alive)])
	}
	s.rr = (s.rr + 1) % len(alive)
	return out, nil
}

// Put writes the object to all replicas (write-all).
func (s *ReplicatedStore) Put(data []byte) (ObjectID, time.Duration, error) {
	if len(data) == 0 {
		return 0, 0, cluster.ErrInvalidInput
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes, err := s.pickNodes(s.replicas)
	if err != nil {
		return 0, 0, err
	}
	obj := &replObject{size: len(data), copies: make(map[string]cluster.SlabID)}
	var total, maxT time.Duration
	for _, n := range nodes {
		id, d, err := s.fabric.AllocSlab(n, int64(len(data)))
		total += d
		if err != nil {
			s.rollback(obj)
			return 0, total, err
		}
		d2, err := s.fabric.Write(id, 0, data)
		if d2 > maxT {
			maxT = d2
		}
		if err != nil {
			s.rollback(obj)
			return 0, total, err
		}
		obj.copies[n] = id
	}
	// Replica writes go out in parallel: charge the slowest, not the sum.
	total += maxT
	oid := s.next
	s.next++
	s.objects[oid] = obj
	return oid, total, nil
}

func (s *ReplicatedStore) rollback(obj *replObject) {
	for _, slab := range obj.copies {
		s.fabric.FreeSlab(slab) //nolint:errcheck // best-effort cleanup
	}
}

// Get reads from the first reachable replica (read-any).
func (s *ReplicatedStore) Get(id ObjectID) ([]byte, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[id]
	if !ok {
		return nil, 0, ErrNotFound
	}
	buf := make([]byte, obj.size)
	var total time.Duration
	for _, n := range sortedNodes(obj.copies) {
		d, err := s.fabric.Read(obj.copies[n], 0, buf)
		total += d
		if err == nil {
			return buf, total, nil
		}
	}
	return nil, total, fmt.Errorf("%w: all %d replicas of object %d", cluster.ErrUnreachable, s.replicas, id)
}

// Delete frees all reachable replicas.
func (s *ReplicatedStore) Delete(id ObjectID) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objects[id]
	if !ok {
		return 0, ErrNotFound
	}
	var total time.Duration
	for _, slab := range obj.copies {
		d, _ := s.fabric.FreeSlab(slab)
		total += d
	}
	delete(s.objects, id)
	return total, nil
}

// Recover re-replicates objects whose copies were lost to crashes.
func (s *ReplicatedStore) Recover() (int, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var repaired int
	var total time.Duration
	oids := make([]ObjectID, 0, len(s.objects))
	for oid := range s.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		obj := s.objects[oid]
		// Probe copies, drop dead ones.
		buf := make([]byte, obj.size)
		var healthy []string
		var data []byte
		for _, n := range sortedNodes(obj.copies) {
			d, err := s.fabric.Read(obj.copies[n], 0, buf)
			total += d
			if err != nil {
				delete(obj.copies, n)
				continue
			}
			healthy = append(healthy, n)
			if data == nil {
				data = make([]byte, obj.size)
				copy(data, buf)
			}
		}
		if data == nil {
			return repaired, total, fmt.Errorf("fault: object %d lost all replicas", oid)
		}
		for len(obj.copies) < s.replicas {
			alive := s.fabric.AliveNodes()
			n := ""
			for i := range alive {
				cand := alive[(s.rr+i)%len(alive)]
				if _, dup := obj.copies[cand]; !dup {
					n = cand
					break
				}
			}
			if n == "" {
				// Every alive node already holds a copy; cannot spread further.
				break
			}
			s.rr = (s.rr + 1) % len(alive)
			slab, d, err := s.fabric.AllocSlab(n, int64(obj.size))
			total += d
			if err != nil {
				return repaired, total, err
			}
			d2, err := s.fabric.Write(slab, 0, data)
			total += d2
			if err != nil {
				return repaired, total, err
			}
			obj.copies[n] = slab
			repaired++
		}
	}
	return repaired, total, nil
}

// sortedNodes returns the map's node keys in sorted order so replica
// selection (and therefore simulated timing) is deterministic.
func sortedNodes(m map[string]cluster.SlabID) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StoredBytes returns logical vs physical bytes.
func (s *ReplicatedStore) StoredBytes() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var logical, physical int64
	for _, obj := range s.objects {
		logical += int64(obj.size)
		physical += int64(obj.size) * int64(len(obj.copies))
	}
	return logical, physical
}
