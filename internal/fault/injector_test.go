package fault

import (
	"errors"
	"sync"
	"testing"
)

func TestInjectorDeterministic(t *testing.T) {
	// Two injectors with the same seed make identical decisions.
	a := NewInjector(42, 0.5, 1)
	b := NewInjector(42, 0.5, 1)
	sites := []struct{ id, task string }{
		{"job#1", "ingest"}, {"job#1", "filter"}, {"job#2", "ingest"},
		{"job#3", "reduce"}, {"job#4", "ingest"}, {"job#5", "filter"},
	}
	for _, s := range sites {
		ea := a.Step(s.id, s.task)
		eb := b.Step(s.id, s.task)
		if (ea == nil) != (eb == nil) {
			t.Errorf("site %s/%s: seed-identical injectors disagree (%v vs %v)", s.id, s.task, ea, eb)
		}
		if ea != nil && !errors.Is(ea, ErrInjected) {
			t.Errorf("injected error must wrap ErrInjected, got %v", ea)
		}
	}
	// A different seed picks a different site set (statistically certain
	// over enough sites; pinned here so a hashing regression is caught).
	c := NewInjector(1, 0.5, 1)
	same := true
	for i := 0; i < 64; i++ {
		id := string(rune('a' + i%26))
		if (a.hash(id) < 0.5) != (c.hash(id) < 0.5) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds selected identical sites across 64 probes")
	}
}

func TestInjectorKillBudgetExhausts(t *testing.T) {
	in := NewInjector(7, 1.0, 2)
	var fails int
	for i := 0; i < 5; i++ {
		if in.Step("job#1", "t") != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("site failed %d times, want exactly kills=2 (recovery must converge)", fails)
	}
	if got := in.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
}

func TestInjectorTargetedKill(t *testing.T) {
	in := NewInjector(7, 0, 1) // rate 0: only targeted kills fire
	in.Kill("victim", 2)
	if in.Step("any#1", "bystander") != nil {
		t.Error("untargeted task failed at rate 0")
	}
	// Targeted kills apply across submissions, by task name.
	if in.Step("a#1", "victim") == nil || in.Step("b#2", "victim") == nil {
		t.Error("targeted task must fail its next 2 executions")
	}
	if in.Step("c#3", "victim") != nil {
		t.Error("targeted budget must exhaust after 2 kills")
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	in.Kill("x", 1)
	if err := in.Step("id", "x"); err != nil {
		t.Errorf("nil injector must inject nothing, got %v", err)
	}
	if in.Injected() != 0 {
		t.Error("nil injector reports nonzero injections")
	}
}

func TestInjectorRateBounds(t *testing.T) {
	never := NewInjector(3, 0, 1)
	always := NewInjector(3, 1.0, 1)
	for i := 0; i < 32; i++ {
		id := string(rune('a' + i))
		if never.Step(id, "t") != nil {
			t.Fatalf("rate 0 injected a fault at site %s", id)
		}
		if always.Step(id, "t") == nil {
			t.Fatalf("rate 1 spared site %s on first execution", id)
		}
	}
}

func TestInjectorConcurrent(t *testing.T) {
	in := NewInjector(9, 1.0, 1)
	const workers = 8
	var wg sync.WaitGroup
	fails := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Step("shared", "task") != nil {
					fails[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, f := range fails {
		total += f
	}
	if total != 1 {
		t.Errorf("shared site killed %d times across goroutines, want exactly 1", total)
	}
}
