package fault

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
)

// StripedStore stripes each object across several memory nodes — the
// "striping of memory pages across multiple memory nodes" the paper cites
// from Lee et al. [36]. Striping aggregates fabric bandwidth (chunk
// transfers proceed in parallel, so an object moves at ~width× a single
// node's rate) and optionally mirrors every stripe on a second node set
// for resilience (Mirrors=1 survives one node loss per stripe at 2×
// memory, the middle ground between raw striping and erasure coding).
type StripedStore struct {
	mu     sync.Mutex
	fabric *cluster.Fabric
	width  int // chunks per object
	mirror int // extra full copies of each chunk (0 = none)
	next   ObjectID
	objs   map[ObjectID]*stripedObj
	rr     int
}

type stripedObj struct {
	size   int
	chunks [][]cluster.SlabID // chunks[i] = primary + mirrors of chunk i
}

// StripeConfig tunes the store.
type StripeConfig struct {
	Width   int // default 4
	Mirrors int // default 0
}

// NewStripedStore builds the store.
func NewStripedStore(f *cluster.Fabric, cfg StripeConfig) (*StripedStore, error) {
	if cfg.Width <= 0 {
		cfg.Width = 4
	}
	if cfg.Mirrors < 0 {
		return nil, fmt.Errorf("fault: negative mirror count")
	}
	need := cfg.Width * (1 + cfg.Mirrors)
	if len(f.Nodes()) < need {
		return nil, fmt.Errorf("fault: %d nodes cannot host width %d with %d mirrors", len(f.Nodes()), cfg.Width, cfg.Mirrors)
	}
	return &StripedStore{
		fabric: f, width: cfg.Width, mirror: cfg.Mirrors,
		objs: make(map[ObjectID]*stripedObj),
	}, nil
}

// chunkSpan returns chunk i's byte range for an object of n bytes.
func (s *StripedStore) chunkSpan(n, i int) (int, int) {
	per := (n + s.width - 1) / s.width
	lo := i * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Put stripes data across width nodes (+ mirrors). Chunk writes fan out in
// parallel: the charged time is the slowest chunk, which is how striping
// buys bandwidth.
func (s *StripedStore) Put(data []byte) (ObjectID, time.Duration, error) {
	if len(data) == 0 {
		return 0, 0, cluster.ErrInvalidInput
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	alive := s.fabric.AliveNodes()
	need := s.width * (1 + s.mirror)
	if len(alive) < need {
		return 0, 0, fmt.Errorf("%w: %d alive, need %d", cluster.ErrUnreachable, len(alive), need)
	}
	obj := &stripedObj{size: len(data), chunks: make([][]cluster.SlabID, s.width)}
	var alloc, maxWrite time.Duration
	for i := 0; i < s.width; i++ {
		lo, hi := s.chunkSpan(len(data), i)
		chunkLen := hi - lo
		if chunkLen == 0 {
			chunkLen = 1 // keep geometry regular for tiny objects
		}
		for m := 0; m <= s.mirror; m++ {
			node := alive[(s.rr+i+m*s.width)%len(alive)]
			slab, d, err := s.fabric.AllocSlab(node, int64(chunkLen))
			alloc += d
			if err != nil {
				s.rollbackStripes(obj)
				return 0, alloc, err
			}
			if hi > lo {
				dw, err := s.fabric.Write(slab, 0, data[lo:hi])
				if dw > maxWrite {
					maxWrite = dw
				}
				if err != nil {
					s.rollbackStripes(obj)
					return 0, alloc, err
				}
			}
			obj.chunks[i] = append(obj.chunks[i], slab)
		}
	}
	s.rr = (s.rr + 1) % len(alive)
	id := s.next
	s.next++
	s.objs[id] = obj
	return id, alloc + maxWrite, nil
}

func (s *StripedStore) rollbackStripes(obj *stripedObj) {
	for _, replicas := range obj.chunks {
		for _, slab := range replicas {
			s.fabric.FreeSlab(slab) //nolint:errcheck // best-effort cleanup
		}
	}
}

// Get gathers the chunks in parallel (charged time = slowest chunk, trying
// mirrors when a primary's node is down).
func (s *StripedStore) Get(id ObjectID) ([]byte, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objs[id]
	if !ok {
		return nil, 0, ErrNotFound
	}
	out := make([]byte, obj.size)
	var slowest time.Duration
	for i, replicas := range obj.chunks {
		lo, hi := s.chunkSpan(obj.size, i)
		if hi <= lo {
			continue
		}
		var chunkTime time.Duration
		okRead := false
		for _, slab := range replicas {
			d, err := s.fabric.Read(slab, 0, out[lo:hi])
			chunkTime += d
			if err == nil {
				okRead = true
				break
			}
		}
		if !okRead {
			return nil, slowest, fmt.Errorf("%w: chunk %d of object %d lost", cluster.ErrUnreachable, i, id)
		}
		if chunkTime > slowest {
			slowest = chunkTime
		}
	}
	return out, slowest, nil
}

// Delete frees all chunks.
func (s *StripedStore) Delete(id ObjectID) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.objs[id]
	if !ok {
		return 0, ErrNotFound
	}
	var total time.Duration
	for _, replicas := range obj.chunks {
		for _, slab := range replicas {
			d, _ := s.fabric.FreeSlab(slab)
			total += d
		}
	}
	delete(s.objs, id)
	return total, nil
}

// Recover re-creates lost chunk replicas from surviving copies. With
// Mirrors=0 there is nothing to recover from — a lost chunk is data loss,
// the trade-off pure striping makes.
func (s *StripedStore) Recover() (int, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	repaired := 0
	ids := make([]ObjectID, 0, len(s.objs))
	for id := range s.objs {
		ids = append(ids, id)
	}
	sortObjectIDs(ids)
	for _, id := range ids {
		obj := s.objs[id]
		for i, replicas := range obj.chunks {
			lo, hi := s.chunkSpan(obj.size, i)
			chunkLen := hi - lo
			if chunkLen == 0 {
				chunkLen = 1
			}
			buf := make([]byte, chunkLen)
			var live []cluster.SlabID
			var lost int
			haveData := false
			for _, slab := range replicas {
				d, err := s.fabric.Read(slab, 0, buf[:hi-lo])
				total += d
				if err != nil {
					lost++
					continue
				}
				live = append(live, slab)
				haveData = true
			}
			if lost == 0 {
				continue
			}
			if !haveData {
				return repaired, total, fmt.Errorf("fault: object %d chunk %d lost all replicas", id, i)
			}
			// Re-create the lost replicas on alive nodes not already used.
			alive := s.fabric.AliveNodes()
			hosting := map[string]bool{}
			for _, slab := range live {
				hosting[slab.Node] = true
			}
			for r := 0; r < lost; r++ {
				target := ""
				for _, n := range alive {
					if !hosting[n] {
						target = n
						break
					}
				}
				if target == "" {
					break // cannot spread further
				}
				slab, d, err := s.fabric.AllocSlab(target, int64(chunkLen))
				total += d
				if err != nil {
					return repaired, total, err
				}
				if hi > lo {
					dw, err := s.fabric.Write(slab, 0, buf[:hi-lo])
					total += dw
					if err != nil {
						return repaired, total, err
					}
				}
				live = append(live, slab)
				hosting[target] = true
				repaired++
			}
			obj.chunks[i] = live
		}
	}
	return repaired, total, nil
}

// StoredBytes returns (logical, physical).
func (s *StripedStore) StoredBytes() (int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var logical, physical int64
	for _, obj := range s.objs {
		logical += int64(obj.size)
		for i, replicas := range obj.chunks {
			lo, hi := s.chunkSpan(obj.size, i)
			chunkLen := hi - lo
			if chunkLen == 0 {
				chunkLen = 1
			}
			physical += int64(chunkLen) * int64(len(replicas))
		}
	}
	return logical, physical
}

func sortObjectIDs(ids []ObjectID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Compile-time interface check.
var _ Store = (*StripedStore)(nil)
