package fault

import (
	"errors"
	"fmt"
)

// This file implements a systematic Reed–Solomon erasure code RS(d+p, d):
// d data shards are extended with p parity shards; any d of the d+p shards
// reconstruct the original data. It is the codec Carbink [62] uses to make
// far memory fault tolerant at ~1.5× memory overhead instead of the ≥2× of
// replication.

// Errors returned by the codec.
var (
	ErrShardCount = errors.New("fault: invalid shard configuration")
	ErrShardSize  = errors.New("fault: shards must be non-empty and equal length")
	ErrTooFewOK   = errors.New("fault: too few shards to reconstruct")
)

// RS is a Reed–Solomon codec for a fixed (data, parity) geometry.
type RS struct {
	data   int
	parity int
	// enc is the (data+parity)×data encoding matrix; its top data rows are
	// the identity (systematic code), the bottom parity rows generate parity.
	enc matrix
}

// NewRS builds a codec with d data and p parity shards. d+p must fit in
// GF(256), i.e. ≤ 255.
func NewRS(d, p int) (*RS, error) {
	if d <= 0 || p <= 0 || d+p > 255 {
		return nil, fmt.Errorf("%w: data=%d parity=%d", ErrShardCount, d, p)
	}
	// Build a systematic matrix: take the (d+p)×d Vandermonde matrix and
	// normalize its top d×d block to the identity by multiplying with the
	// block's inverse. The result keeps the any-d-rows-invertible property.
	v := vandermonde(d+p, d)
	top := newMatrix(d, d)
	for r := 0; r < d; r++ {
		copy(top.row(r), v.row(r))
	}
	topInv, ok := top.invert()
	if !ok {
		return nil, fmt.Errorf("fault: vandermonde top block singular (d=%d p=%d)", d, p)
	}
	return &RS{data: d, parity: p, enc: v.mul(topInv)}, nil
}

// DataShards returns d.
func (r *RS) DataShards() int { return r.data }

// ParityShards returns p.
func (r *RS) ParityShards() int { return r.parity }

// TotalShards returns d+p.
func (r *RS) TotalShards() int { return r.data + r.parity }

// Overhead returns the storage expansion factor (d+p)/d — e.g. 1.375 for
// RS(11,8), the knob Carbink trades against replication's 2×.
func (r *RS) Overhead() float64 { return float64(r.data+r.parity) / float64(r.data) }

func (r *RS) checkShards(shards [][]byte, wantAll bool) (int, error) {
	if len(shards) != r.TotalShards() {
		return 0, fmt.Errorf("%w: got %d shards, want %d", ErrShardCount, len(shards), r.TotalShards())
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			if wantAll {
				return 0, fmt.Errorf("%w: nil shard", ErrShardSize)
			}
			continue
		}
		if size < 0 {
			size = len(s)
		}
		if len(s) != size {
			return 0, fmt.Errorf("%w: mixed sizes %d and %d", ErrShardSize, size, len(s))
		}
	}
	if size <= 0 {
		return 0, fmt.Errorf("%w: no shard data", ErrShardSize)
	}
	return size, nil
}

// Encode fills shards[d:] with parity computed from shards[:d]. All d+p
// slices must be pre-allocated with equal lengths.
func (r *RS) Encode(shards [][]byte) error {
	size, err := r.checkShards(shards, true)
	if err != nil {
		return err
	}
	_ = size
	for pi := 0; pi < r.parity; pi++ {
		out := shards[r.data+pi]
		for i := range out {
			out[i] = 0
		}
		row := r.enc.row(r.data + pi)
		for di := 0; di < r.data; di++ {
			mulSlice(row[di], shards[di], out)
		}
	}
	return nil
}

// Verify recomputes parity and reports whether it matches shards[d:].
func (r *RS) Verify(shards [][]byte) (bool, error) {
	size, err := r.checkShards(shards, true)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for pi := 0; pi < r.parity; pi++ {
		for i := range buf {
			buf[i] = 0
		}
		row := r.enc.row(r.data + pi)
		for di := 0; di < r.data; di++ {
			mulSlice(row[di], shards[di], buf)
		}
		got := shards[r.data+pi]
		for i := range buf {
			if buf[i] != got[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds every nil shard in place. At least d shards must be
// present. Present shards are never modified.
func (r *RS) Reconstruct(shards [][]byte) error {
	size, err := r.checkShards(shards, false)
	if err != nil {
		return err
	}
	present := make([]int, 0, r.TotalShards())
	var missing []int
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < r.data {
		return fmt.Errorf("%w: %d present, need %d", ErrTooFewOK, len(present), r.data)
	}
	present = present[:r.data]
	// Build the d×d submatrix of encoding rows for the chosen present
	// shards and invert it: data = inv × presentShards.
	sub := newMatrix(r.data, r.data)
	for ri, idx := range present {
		copy(sub.row(ri), r.enc.row(idx))
	}
	inv, ok := sub.invert()
	if !ok {
		return fmt.Errorf("fault: reconstruction matrix singular (present=%v)", present)
	}
	// Recover the data shards we lost.
	dataBufs := make([][]byte, r.data)
	for di := 0; di < r.data; di++ {
		if shards[di] != nil {
			dataBufs[di] = shards[di]
		}
	}
	for _, mi := range missing {
		if mi >= r.data {
			continue // parity handled below
		}
		out := make([]byte, size)
		row := inv.row(mi)
		for k, idx := range present {
			mulSlice(row[k], shards[idx], out)
		}
		shards[mi] = out
		dataBufs[mi] = out
	}
	// Recompute any missing parity from the (now complete) data shards.
	for _, mi := range missing {
		if mi < r.data {
			continue
		}
		out := make([]byte, size)
		row := r.enc.row(mi)
		for di := 0; di < r.data; di++ {
			mulSlice(row[di], dataBufs[di], out)
		}
		shards[mi] = out
	}
	return nil
}

// Split slices data into d equal shards (zero-padding the tail) and
// allocates p empty parity shards, ready for Encode. The returned shard
// size is ceil(len(data)/d).
func (r *RS) Split(data []byte) ([][]byte, int) {
	shardSize := (len(data) + r.data - 1) / r.data
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, r.TotalShards())
	for i := 0; i < r.data; i++ {
		shards[i] = make([]byte, shardSize)
		start := i * shardSize
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	for i := r.data; i < r.TotalShards(); i++ {
		shards[i] = make([]byte, shardSize)
	}
	return shards, shardSize
}

// Join concatenates the data shards and trims to length n (inverse of Split).
func (r *RS) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) < r.data {
		return nil, fmt.Errorf("%w: got %d shards, want ≥ %d", ErrShardCount, len(shards), r.data)
	}
	var out []byte
	for i := 0; i < r.data; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrShardSize, i)
		}
		out = append(out, shards[i]...)
	}
	if n > len(out) {
		return nil, fmt.Errorf("%w: joined %d bytes, want %d", ErrShardSize, len(out), n)
	}
	return out[:n], nil
}
