package fault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func fabricWithNodes(t testing.TB, n int, capacity int64) *cluster.Fabric {
	t.Helper()
	f := cluster.NewFabric(cluster.Config{})
	for i := 0; i < n; i++ {
		if err := f.AddNode(fmt.Sprintf("mem%d", i), capacity); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// --- ReplicatedStore ---

func TestReplicatedPutGet(t *testing.T) {
	f := fabricWithNodes(t, 4, 1<<20)
	s, err := NewReplicatedStore(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("replicate me thrice")
	id, d, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("put must cost virtual time")
	}
	got, _, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("get must return stored bytes")
	}
	logical, physical := s.StoredBytes()
	if logical != int64(len(data)) || physical != 3*int64(len(data)) {
		t.Errorf("bytes = %d/%d, want %d/%d", logical, physical, len(data), 3*len(data))
	}
}

func TestReplicatedValidation(t *testing.T) {
	f := fabricWithNodes(t, 2, 1<<20)
	if _, err := NewReplicatedStore(f, 0); err == nil {
		t.Error("replicas=0 must fail")
	}
	if _, err := NewReplicatedStore(f, 3); err == nil {
		t.Error("3 replicas on 2 nodes must fail")
	}
	s, _ := NewReplicatedStore(f, 2)
	if _, _, err := s.Put(nil); err == nil {
		t.Error("empty put must fail")
	}
	if _, _, err := s.Get(42); !errors.Is(err, ErrNotFound) {
		t.Error("unknown get must be ErrNotFound")
	}
	if _, err := s.Delete(42); !errors.Is(err, ErrNotFound) {
		t.Error("unknown delete must be ErrNotFound")
	}
}

func TestReplicatedSurvivesCrashes(t *testing.T) {
	f := fabricWithNodes(t, 4, 1<<20)
	s, _ := NewReplicatedStore(f, 3)
	data := []byte("survives two crashes")
	id, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Crash two of the four nodes; with 3 replicas at least one survives.
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("mem1"); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-any must find a live replica")
	}
}

func TestReplicatedRecoverRestoresRedundancy(t *testing.T) {
	f := fabricWithNodes(t, 4, 1<<20)
	s, _ := NewReplicatedStore(f, 2)
	var ids []ObjectID
	for i := 0; i < 8; i++ {
		id, _, err := s.Put([]byte(fmt.Sprintf("object-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	repaired, d, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Error("crash of a hosting node must trigger repairs")
	}
	if d <= 0 {
		t.Error("recovery must take virtual time")
	}
	// Full redundancy restored: any object readable even if another node dies.
	_, physical := s.StoredBytes()
	var logical int64
	for _, id := range ids {
		got, _, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		logical += int64(len(got))
	}
	if physical != 2*logical {
		t.Errorf("post-recovery physical = %d, want %d", physical, 2*logical)
	}
}

func TestReplicatedDeleteFrees(t *testing.T) {
	f := fabricWithNodes(t, 3, 1<<20)
	s, _ := NewReplicatedStore(f, 2)
	id, _, _ := s.Put(make([]byte, 1000))
	if _, err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Error("deleted object must be gone")
	}
	for _, n := range f.Nodes() {
		used, _, _ := f.NodeUsage(n)
		if used != 0 {
			t.Errorf("%s still holds %d bytes", n, used)
		}
	}
}

// --- ErasureStore ---

func TestErasurePutGetWithFlush(t *testing.T) {
	f := fabricWithNodes(t, 6, 1<<22)
	s, err := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("erasure-coded object payload")
	id, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Readable while staged.
	got, _, err := s.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("staged get = %q, %v", got, err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.SpanCount() != 1 {
		t.Errorf("spans = %d, want 1", s.SpanCount())
	}
	got, _, err = s.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("sealed get = %q, %v", got, err)
	}
}

func TestErasureValidation(t *testing.T) {
	f := fabricWithNodes(t, 3, 1<<20)
	if _, err := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2}); err == nil {
		t.Error("6 shards on 3 nodes must fail")
	}
	f6 := fabricWithNodes(t, 6, 1<<20)
	s, err := NewErasureStore(f6, ErasureConfig{Data: 4, Parity: 2, SpanSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(nil); err == nil {
		t.Error("empty put must fail")
	}
	if _, _, err := s.Put(make([]byte, 4096)); err == nil {
		t.Error("object above span size must fail")
	}
	if _, _, err := s.Get(99); !errors.Is(err, ErrNotFound) {
		t.Error("unknown get must be ErrNotFound")
	}
}

func TestErasureAutoSealsFullSpans(t *testing.T) {
	f := fabricWithNodes(t, 6, 1<<22)
	s, _ := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 1024})
	for i := 0; i < 10; i++ {
		if _, _, err := s.Put(make([]byte, 300)); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpanCount() < 2 {
		t.Errorf("10×300B into 1KiB spans must seal ≥2 spans, got %d", s.SpanCount())
	}
}

func TestErasureDegradedRead(t *testing.T) {
	f := fabricWithNodes(t, 6, 1<<22)
	s, _ := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 2048})
	data := make([]byte, 1500)
	for i := range data {
		data[i] = byte(i * 7)
	}
	id, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash up to parity-many nodes: reads must still succeed.
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("mem3"); err != nil {
		t.Fatal(err)
	}
	got, dt, err := s.Get(id)
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("degraded read must reconstruct exact bytes")
	}
	if dt <= 0 {
		t.Error("degraded read must cost time")
	}
}

func TestErasureTooManyCrashesFails(t *testing.T) {
	f := fabricWithNodes(t, 6, 1<<22)
	s, _ := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 2048})
	id, _, _ := s.Put(make([]byte, 500))
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"mem0", "mem1", "mem2"} {
		if err := f.Crash(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get(id); err == nil {
		t.Error("3 crashes with parity 2 must fail the read")
	}
}

func TestErasureRecoverRebuildsShards(t *testing.T) {
	f := fabricWithNodes(t, 8, 1<<22)
	s, _ := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 2048})
	data := make([]byte, 1800)
	for i := range data {
		data[i] = byte(i)
	}
	id, _, _ := s.Put(data)
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("mem1"); err != nil {
		t.Fatal(err)
	}
	repaired, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Error("recover must rebuild lost shards")
	}
	// Now crash two *more* nodes: data must still be readable because
	// redundancy was re-established on the surviving nodes.
	if err := f.Crash("mem2"); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("post-recovery read mismatch")
	}
}

func TestErasureCompactReclaimsGarbage(t *testing.T) {
	f := fabricWithNodes(t, 6, 1<<22)
	s, _ := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 1024, GCThreshold: 0.6})
	var ids []ObjectID
	for i := 0; i < 12; i++ {
		id, _, err := s.Put(make([]byte, 250))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	_, physBefore := s.StoredBytes()
	// Delete 3 of every 4 objects: spans drop below the 0.6 live threshold.
	var keep []ObjectID
	for i, id := range ids {
		if i%4 == 0 {
			keep = append(keep, id)
			continue
		}
		if _, err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	n, _, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("compaction must find victims")
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	_, physAfter := s.StoredBytes()
	if physAfter >= physBefore {
		t.Errorf("compaction must shrink physical bytes: %d → %d", physBefore, physAfter)
	}
	// Survivors keep their identity and content.
	for _, id := range keep {
		got, _, err := s.Get(id)
		if err != nil {
			t.Fatalf("object %d lost in compaction: %v", id, err)
		}
		if len(got) != 250 {
			t.Errorf("object %d size = %d", id, len(got))
		}
	}
}

func TestErasureOverheadBeatsReplication(t *testing.T) {
	// The Carbink headline: RS(6,4) ≈ 1.5× vs 2× for 2-replication at equal
	// fault tolerance budget (here: sustain 2 node losses needs RS parity 2
	// vs 3 replicas ⇒ 1.5× vs 3×).
	fr := fabricWithNodes(t, 6, 1<<24)
	rep, _ := NewReplicatedStore(fr, 3)
	fe := fabricWithNodes(t, 6, 1<<24)
	ec, _ := NewErasureStore(fe, ErasureConfig{Data: 4, Parity: 2, SpanSize: 8192})
	payload := make([]byte, 2048)
	for i := 0; i < 16; i++ {
		if _, _, err := rep.Put(payload); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ec.Put(payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ec.Flush(); err != nil {
		t.Fatal(err)
	}
	lr, pr := rep.StoredBytes()
	le, pe := ec.StoredBytes()
	repOverhead := float64(pr) / float64(lr)
	ecOverhead := float64(pe) / float64(le)
	if repOverhead < 2.9 || repOverhead > 3.1 {
		t.Errorf("replication overhead = %f, want ≈3", repOverhead)
	}
	if ecOverhead > 1.7 {
		t.Errorf("erasure overhead = %f, want ≈1.5", ecOverhead)
	}
	if ecOverhead >= repOverhead {
		t.Error("erasure coding must be cheaper than replication")
	}
}

// Property: random Put/Get/Delete/Flush/crash-within-budget sequences never
// lose a live object in the erasure store.
func TestErasureDurabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := fabricWithNodes(t, 7, 1<<22)
		s, err := NewErasureStore(fab, ErasureConfig{Data: 3, Parity: 2, SpanSize: 1024})
		if err != nil {
			return false
		}
		live := map[ObjectID][]byte{}
		crashed := 0
		for op := 0; op < 60; op++ {
			switch rng.Intn(6) {
			case 0, 1:
				data := make([]byte, 1+rng.Intn(500))
				rng.Read(data)
				id, _, err := s.Put(data)
				if err != nil {
					return false
				}
				live[id] = data
			case 2:
				for id := range live {
					if _, err := s.Delete(id); err != nil {
						return false
					}
					delete(live, id)
					break
				}
			case 3:
				if _, err := s.Flush(); err != nil {
					return false
				}
			case 4:
				if crashed < 2 { // within parity budget
					// Crash, then immediately recover and restart to restore budget.
					if _, err := s.Flush(); err != nil {
						return false
					}
					node := fmt.Sprintf("mem%d", rng.Intn(7))
					if err := fab.Crash(node); err != nil {
						return false
					}
					crashed++
					if _, _, err := s.Recover(); err != nil {
						return false
					}
					if err := fab.Restart(node); err != nil {
						return false
					}
					crashed--
				}
			case 5:
				if _, _, err := s.Compact(); err != nil {
					return false
				}
			}
		}
		for id, want := range live {
			got, _, err := s.Get(id)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkReplicatedPut(b *testing.B) {
	f := fabricWithNodes(b, 4, 1<<34)
	s, err := NewReplicatedStore(f, 3)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Put(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasurePut(b *testing.B) {
	f := fabricWithNodes(b, 6, 1<<34)
	s, err := NewErasureStore(f, ErasureConfig{Data: 4, Parity: 2, SpanSize: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Put(payload); err != nil {
			b.Fatal(err)
		}
	}
}
