// Package fault implements the fault-tolerance mechanisms the paper's
// challenge 8(3) discusses for disaggregated memory: k-way replication,
// page striping across memory nodes, and Carbink-style erasure coding with
// span compaction — all built from scratch on the one-sided verbs of
// internal/cluster.
//
// This file is the finite-field arithmetic underneath Reed–Solomon:
// GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11d generator
// convention), using exp/log tables for O(1) multiply and divide.
package fault

// gfPoly is the primitive polynomial 0x11d (x^8+x^4+x^3+x^2+1), the
// conventional choice for storage Reed–Solomon codes.
const gfPoly = 0x11d

var (
	gfExp [512]byte // gfExp[i] = g^i, doubled so mul can skip a mod
	gfLog [256]byte // gfLog[x] = i with g^i = x, undefined for 0
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b in GF(2^8); b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("fault: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse; x must be non-zero.
func gfInv(x byte) byte {
	if x == 0 {
		panic("fault: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[x])]
}

// gfExpPow returns g^n for n ≥ 0.
func gfExpPow(n int) byte {
	return gfExp[n%255]
}

// mulSlice computes dst[i] ^= c * src[i] for all i — the inner loop of
// encode and decode (accumulating matrix-vector products).
func mulSlice(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// matrix is a dense GF(256) matrix in row-major order.
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) matrix {
	return matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m matrix) swapRows(a, b int) {
	ra, rb := m.row(a), m.row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// mul returns m × other.
func (m matrix) mul(other matrix) matrix {
	if m.cols != other.rows {
		panic("fault: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			mulSlice(a, other.row(k), out.row(r))
		}
	}
	return out
}

// invert returns the inverse via Gauss–Jordan elimination, or ok=false if
// the matrix is singular.
func (m matrix) invert() (matrix, bool) {
	if m.rows != m.cols {
		return matrix{}, false
	}
	n := m.rows
	// Augment [m | I].
	aug := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(aug.row(r)[:n], m.row(r))
		aug.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix{}, false
		}
		if pivot != col {
			aug.swapRows(pivot, col)
		}
		// Normalize the pivot row.
		inv := gfInv(aug.at(col, col))
		prow := aug.row(col)
		for i := range prow {
			prow[i] = gfMul(prow[i], inv)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.at(r, col)
			if f == 0 {
				continue
			}
			rrow := aug.row(r)
			for i := range rrow {
				rrow[i] ^= gfMul(f, prow[i])
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), aug.row(r)[n:])
	}
	return out, true
}

// identity returns the n×n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde builds the rows×cols matrix with entry (r,c) = g^(r·c); any
// square submatrix of distinct rows is invertible, the property RS relies on.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExpPow(r*c))
		}
	}
	return m
}
