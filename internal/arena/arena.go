// Package arena provides Broom-style region allocation *inside* a Memory
// Region — the paper's §2.2 lineage: "Broom [25] introduces memory regions
// and ownership to track lifetimes and, therefore, to remove the garbage
// collector. We build on this approach by generalizing memory regions to
// multiple devices."
//
// An Arena is a bump allocator over a region handle: tasks allocate
// records, strings, and arrays as offsets within their Private Scratch
// (or any region), freeing everything at once with Reset — object
// lifetimes follow the region's lifetime, exactly the discipline that lets
// the runtime rather than a garbage collector reclaim memory. All accessor
// methods move real bytes through the region (paying its simulated cost)
// and advance the caller's virtual clock.
package arena

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/region"
)

// Errors.
var (
	ErrFull    = errors.New("arena: region exhausted")
	ErrBadRef  = errors.New("arena: reference out of bounds")
	ErrBadSize = errors.New("arena: invalid size")
)

// Ref is an arena-relative object reference: an offset within the backing
// region. Refs stay valid across ownership transfers of the region (they
// are positions, not pointers), which is how object graphs survive the
// out→in handover of Fig. 4.
type Ref int64

// Arena is a bump allocator over a region handle.
type Arena struct {
	h     *region.Handle
	size  int64
	next  int64
	align int64
	// allocs counts live allocations since the last Reset (stats only;
	// individual frees don't exist — that's the point).
	allocs int64
}

// New wraps a region handle. Alignment defaults to 8.
func New(h *region.Handle) (*Arena, error) {
	size, err := h.Size()
	if err != nil {
		return nil, err
	}
	return &Arena{h: h, size: size, align: 8}, nil
}

// Attach re-wraps an arena whose region was transferred to a new handle:
// the bump pointer is preserved by the caller (HandOff/Adopt pattern).
func Attach(h *region.Handle, next int64) (*Arena, error) {
	a, err := New(h)
	if err != nil {
		return nil, err
	}
	if next < 0 || next > a.size {
		return nil, fmt.Errorf("%w: next=%d size=%d", ErrBadRef, next, a.size)
	}
	a.next = next
	return a, nil
}

// Handle returns the backing region handle.
func (a *Arena) Handle() *region.Handle { return a.h }

// Used returns the bytes bump-allocated so far.
func (a *Arena) Used() int64 { return a.next }

// Live returns the number of allocations since the last Reset.
func (a *Arena) Live() int64 { return a.allocs }

// Alloc reserves n bytes and returns the object's Ref. O(1); no per-object
// metadata — lifetimes are the region's.
func (a *Arena) Alloc(n int64) (Ref, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadSize, n)
	}
	off := (a.next + a.align - 1) &^ (a.align - 1)
	if off+n > a.size {
		return 0, fmt.Errorf("%w: want %d, %d of %d used", ErrFull, n, a.next, a.size)
	}
	a.next = off + n
	a.allocs++
	return Ref(off), nil
}

// Reset frees everything at once — Broom's bulk reclamation.
func (a *Arena) Reset() {
	a.next = 0
	a.allocs = 0
}

func (a *Arena) check(r Ref, n int64) error {
	if int64(r) < 0 || int64(r)+n > a.size {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBadRef, r, int64(r)+n, a.size)
	}
	return nil
}

// WriteBytes stores buf at r, returning the virtual completion time.
func (a *Arena) WriteBytes(now time.Duration, r Ref, buf []byte) (time.Duration, error) {
	if err := a.check(r, int64(len(buf))); err != nil {
		return now, err
	}
	f := a.h.WriteAsync(now, int64(r), buf)
	return f.Await(now)
}

// ReadBytes loads len(buf) bytes from r.
func (a *Arena) ReadBytes(now time.Duration, r Ref, buf []byte) (time.Duration, error) {
	if err := a.check(r, int64(len(buf))); err != nil {
		return now, err
	}
	f := a.h.ReadAsync(now, int64(r), buf)
	return f.Await(now)
}

// PutUint64 allocates-and-writes an 8-byte integer in one step.
func (a *Arena) PutUint64(now time.Duration, v uint64) (Ref, time.Duration, error) {
	r, err := a.Alloc(8)
	if err != nil {
		return 0, now, err
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	done, err := a.WriteBytes(now, r, buf[:])
	return r, done, err
}

// Uint64 reads an 8-byte integer at r.
func (a *Arena) Uint64(now time.Duration, r Ref) (uint64, time.Duration, error) {
	var buf [8]byte
	done, err := a.ReadBytes(now, r, buf[:])
	if err != nil {
		return 0, now, err
	}
	return binary.BigEndian.Uint64(buf[:]), done, nil
}

// PutString allocates a length-prefixed string.
func (a *Arena) PutString(now time.Duration, s string) (Ref, time.Duration, error) {
	if len(s) > 1<<31 {
		return 0, now, fmt.Errorf("%w: string too large", ErrBadSize)
	}
	r, err := a.Alloc(4 + int64(len(s)))
	if err != nil {
		return 0, now, err
	}
	buf := make([]byte, 4+len(s))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(s)))
	copy(buf[4:], s)
	done, err := a.WriteBytes(now, r, buf)
	return r, done, err
}

// String reads a length-prefixed string at r.
func (a *Arena) String(now time.Duration, r Ref) (string, time.Duration, error) {
	var lenBuf [4]byte
	done, err := a.ReadBytes(now, r, lenBuf[:])
	if err != nil {
		return "", now, err
	}
	n := int64(binary.BigEndian.Uint32(lenBuf[:]))
	if err := a.check(r+4, n); err != nil {
		return "", now, err
	}
	buf := make([]byte, n)
	done, err = a.ReadBytes(done, r+4, buf)
	return string(buf), done, err
}

// List is a singly linked list of uint64 payloads living entirely inside
// the arena — the classic GC-pressure structure, GC-free. Node layout:
// value(8) | next Ref(8); NilRef terminates.
const NilRef Ref = -1

const nodeSize = 16

// Push prepends a value to the list rooted at head and returns the new head.
func (a *Arena) Push(now time.Duration, head Ref, v uint64) (Ref, time.Duration, error) {
	r, err := a.Alloc(nodeSize)
	if err != nil {
		return NilRef, now, err
	}
	var buf [nodeSize]byte
	binary.BigEndian.PutUint64(buf[:8], v)
	binary.BigEndian.PutUint64(buf[8:], uint64(head))
	done, err := a.WriteBytes(now, r, buf[:])
	return r, done, err
}

// Walk traverses the list calling fn for each value; it returns the
// virtual completion time (each hop pays one region access — the
// pointer-chasing cost profile).
func (a *Arena) Walk(now time.Duration, head Ref, fn func(v uint64) bool) (time.Duration, error) {
	var buf [nodeSize]byte
	seen := int64(0)
	for head != NilRef {
		if err := a.check(head, nodeSize); err != nil {
			return now, err
		}
		done, err := a.ReadBytes(now, head, buf[:])
		if err != nil {
			return now, err
		}
		now = done
		if fn != nil && !fn(binary.BigEndian.Uint64(buf[:8])) {
			return now, nil
		}
		head = Ref(binary.BigEndian.Uint64(buf[8:]))
		seen++
		if seen > a.size/nodeSize {
			return now, errors.New("arena: list cycle detected")
		}
	}
	return now, nil
}
