package arena

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
)

func newArena(t testing.TB, size int64) (*Arena, *region.Manager) {
	t.Helper()
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "arena", Class: props.PrivateScratch, Size: size,
		Owner: "task", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	return a, mgr
}

func TestAllocBumpAndAlignment(t *testing.T) {
	a, _ := newArena(t, 1024)
	r1, err := a.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 0 {
		t.Errorf("first alloc at %d, want 0", r1)
	}
	if int64(r2)%8 != 0 {
		t.Errorf("second alloc at %d, want 8-aligned", r2)
	}
	if a.Live() != 2 {
		t.Errorf("live = %d", a.Live())
	}
	if a.Used() != int64(r2)+8 {
		t.Errorf("used = %d", a.Used())
	}
}

func TestAllocValidation(t *testing.T) {
	a, _ := newArena(t, 128)
	if _, err := a.Alloc(0); !errors.Is(err, ErrBadSize) {
		t.Error("zero alloc must fail")
	}
	if _, err := a.Alloc(-4); !errors.Is(err, ErrBadSize) {
		t.Error("negative alloc must fail")
	}
	if _, err := a.Alloc(1024); !errors.Is(err, ErrFull) {
		t.Error("oversized alloc must fail")
	}
}

func TestExhaustionAndReset(t *testing.T) {
	a, _ := newArena(t, 128)
	for i := 0; i < 16; i++ {
		if _, err := a.Alloc(8); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(8); !errors.Is(err, ErrFull) {
		t.Error("17th alloc must exhaust the 128-byte arena")
	}
	a.Reset()
	if a.Used() != 0 || a.Live() != 0 {
		t.Error("reset must clear the bump pointer")
	}
	if _, err := a.Alloc(8); err != nil {
		t.Errorf("alloc after reset: %v", err)
	}
}

func TestUint64Roundtrip(t *testing.T) {
	a, _ := newArena(t, 1024)
	r, now, err := a.PutUint64(0, 0xdeadbeefcafef00d)
	if err != nil {
		t.Fatal(err)
	}
	if now <= 0 {
		t.Error("write must cost virtual time")
	}
	v, _, err := a.Uint64(now, r)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Errorf("read %x", v)
	}
}

func TestStringRoundtrip(t *testing.T) {
	a, _ := newArena(t, 1024)
	r, now, err := a.PutString(0, "regions, not garbage collection")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := a.String(now, r)
	if err != nil {
		t.Fatal(err)
	}
	if s != "regions, not garbage collection" {
		t.Errorf("read %q", s)
	}
	// Empty string works too.
	r2, now, err := a.PutString(now, "")
	if err != nil {
		t.Fatal(err)
	}
	if s2, _, err := a.String(now, r2); err != nil || s2 != "" {
		t.Errorf("empty string round trip: %q %v", s2, err)
	}
}

func TestRefBoundsChecked(t *testing.T) {
	a, _ := newArena(t, 128)
	buf := make([]byte, 16)
	if _, err := a.ReadBytes(0, Ref(120), buf); !errors.Is(err, ErrBadRef) {
		t.Error("read past end must fail")
	}
	if _, err := a.WriteBytes(0, Ref(-1), buf); !errors.Is(err, ErrBadRef) {
		t.Error("negative ref must fail")
	}
}

func TestLinkedListGCFree(t *testing.T) {
	a, _ := newArena(t, 4096)
	// Build 1..100 (Push prepends, so walk sees 100..1).
	hd := NilRef
	var err error
	for c := int64(1); c <= 100; c++ {
		hd, _, err = a.Push(0, hd, uint64(c))
		if err != nil {
			t.Fatal(err)
		}
	}
	want := uint64(100)
	count := 0
	if _, err := a.Walk(0, hd, func(v uint64) bool {
		if v != want {
			t.Fatalf("walk saw %d, want %d", v, want)
		}
		want--
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("walk visited %d nodes", count)
	}
}

func TestWalkEarlyStopAndCycleGuard(t *testing.T) {
	a, _ := newArena(t, 4096)
	hd := NilRef
	var err error
	for i := 0; i < 10; i++ {
		hd, _, err = a.Push(0, hd, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if _, err := a.Walk(0, hd, func(uint64) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
	// Forge a cycle: node pointing at itself.
	r, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteBytes(0, r, encodeNode(7, r)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Walk(0, r, nil); err == nil {
		t.Error("cycle must be detected")
	}
}

func encodeNode(v uint64, next Ref) []byte {
	buf := make([]byte, 16)
	for i := 0; i < 8; i++ {
		buf[7-i] = byte(v >> (8 * i))
		buf[15-i] = byte(uint64(next) >> (8 * i))
	}
	return buf
}

func TestAttachAfterTransfer(t *testing.T) {
	// Build an object graph in a transferable region, hand the region to
	// the "next task", re-attach the arena, and read the graph — Refs
	// survive the ownership move.
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "graph", Class: props.Transfer, Size: 4096,
		Owner: "t1", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	hd := NilRef
	for i := 0; i < 5; i++ {
		hd, _, err = a.Push(0, hd, uint64(i*11))
		if err != nil {
			t.Fatal(err)
		}
	}
	used := a.Used()
	h2, _, err := h.Transfer(0, "t2", "node0/cpu1")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Attach(h2, used)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if _, err := a2.Walk(0, hd, func(v uint64) bool {
		got = append(got, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 44 || got[4] != 0 {
		t.Errorf("walk after transfer = %v", got)
	}
	if _, err := Attach(h2, 1<<20); !errors.Is(err, ErrBadRef) {
		t.Error("attach with bad bump pointer must fail")
	}
	h2.Release()
}

// Property: any interleaving of Alloc/Put/Read keeps objects disjoint and
// round-trips every stored value.
func TestArenaDisjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		a, _ := newArena(t, 1<<14)
		rng := rand.New(rand.NewSource(seed))
		type obj struct {
			r Ref
			v uint64
		}
		var objs []obj
		for i := 0; i < 100; i++ {
			v := rng.Uint64()
			r, _, err := a.PutUint64(0, v)
			if err != nil {
				break // arena full is fine
			}
			// Disjointness: new ref doesn't overlap previous objects.
			for _, o := range objs {
				if r < o.r+8 && o.r < r+8 {
					return false
				}
			}
			objs = append(objs, obj{r, v})
		}
		for _, o := range objs {
			v, _, err := a.Uint64(0, o.r)
			if err != nil || v != o.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkArenaAlloc(b *testing.B) {
	a, _ := newArena(b, 1<<26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Alloc(64); err != nil {
			a.Reset()
		}
	}
}

func BenchmarkArenaPushWalk(b *testing.B) {
	a, _ := newArena(b, 1<<22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		hd := NilRef
		var err error
		for k := 0; k < 64; k++ {
			hd, _, err = a.Push(0, hd, uint64(k))
			if err != nil {
				b.Fatal(err)
			}
		}
		if _, err := a.Walk(0, hd, nil); err != nil {
			b.Fatal(err)
		}
	}
}
