// Package stream defines long-running streaming dataflows as a served
// scenario: an unbounded event source is cut into bounded windows, and
// each window is instantiated from a job template (dataflow.Template) as
// a finite sub-DAG the serving engine executes like any other job.
//
// The package is pure structure — events, windows, and the window-graph
// template. Execution (watermarks, backpressure, per-window checkpoints,
// crash/resume) lives in internal/core (Server.SubmitStream): core
// imports stream, never the reverse, mirroring how dataflow stays free of
// the runtime dependency.
//
// The model is the paper's Table 3 streaming row made incremental: window
// tasks use the same typed regions (Private Scratch receive buffers,
// Global State worker liveness, Global Scratch rolling result caches),
// and because every window is an ordinary job, the engine's determinism
// guarantee carries over — a window's report is byte-identical to running
// that window alone, at any pool size.
package stream

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dataflow"
)

// Event is one element of a stream: an opaque payload plus the key the
// window graph may partition on.
type Event struct {
	// Key selects the partition for key-partitioned window graphs
	// (Window.Partition groups by Key modulo the partition count).
	Key uint64
	// Payload is the event bytes, owned by the consumer once pulled.
	Payload []byte
}

// Source produces the stream's events in order. Next returns the next
// event and true, or a zero Event and false once the stream is exhausted.
// Sources are pulled from a single goroutine (the stream driver) and are
// pulled only while the stream is below its in-flight window limit — a
// blocked pull is the backpressure signal.
type Source interface {
	Next() (Event, bool)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (Event, bool)

// Next calls f.
func (f SourceFunc) Next() (Event, bool) { return f() }

// SliceSource replays a fixed event slice — the deterministic test and
// resume source. Fields are consumed in place; hand each stream run a
// fresh SliceSource.
type SliceSource struct {
	events []Event
}

// NewSliceSource builds a SliceSource over events (not copied).
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next pops the next event.
func (s *SliceSource) Next() (Event, bool) {
	if len(s.events) == 0 {
		return Event{}, false
	}
	ev := s.events[0]
	s.events = s.events[1:]
	return ev, true
}

// Pull reads up to n events from src. ok is false once the source is
// exhausted (the returned slice may still hold a final partial batch).
func Pull(src Source, n int) (events []Event, ok bool) {
	for i := 0; i < n; i++ {
		ev, more := src.Next()
		if !more {
			return events, false
		}
		events = append(events, ev)
	}
	return events, true
}

// Window is one bounded slice of the stream, handed to the spec's Build
// callback when its sub-DAG is instantiated.
type Window struct {
	// Index is the window's position in the stream (0-based).
	Index int
	// Events are the window's events in arrival order; the final window of
	// a finite stream may hold fewer than Spec.WindowSize.
	Events []Event
}

// Partition groups the window's events by Key modulo p, preserving
// arrival order inside each group — the key-partitioned fan-out a window
// graph shards its aggregation tasks over. p < 1 is treated as 1.
func (w Window) Partition(p int) [][]Event {
	if p < 1 {
		p = 1
	}
	parts := make([][]Event, p)
	for _, ev := range w.Events {
		i := int(ev.Key % uint64(p))
		parts[i] = append(parts[i], ev)
	}
	return parts
}

// Bytes concatenates the window's payloads — the ingest task's staging
// size.
func (w Window) Bytes() int64 {
	var n int64
	for _, ev := range w.Events {
		n += int64(len(ev.Payload))
	}
	return n
}

// Spec declares a streaming dataflow: where events come from, how the
// stream is cut into windows, and the task graph each window instantiates.
// It is the streaming analogue of a dataflow.Job — submitted whole via
// Server.SubmitStream, which executes window instances on the serving
// pool and retires them in order.
type Spec struct {
	// Name prefixes every window job: window w runs as "<Name>/w%06d".
	// It must not contain a '%' (the window template is a format string).
	Name string
	// Source yields the stream's events. The driver owns it once the spec
	// is submitted.
	Source Source
	// WindowSize is the number of events per tumbling window (> 0). A
	// finite source's last window may be partial.
	WindowSize int
	// Partitions is the key-partition fan-out Build may use
	// (Window.Partition). Informational to the engine; defaults to 1.
	Partitions int
	// MaxInFlight bounds how many windows may be executing or awaiting
	// retirement at once (default 2). The source is not pulled while the
	// stream is at the bound — deterministic backpressure.
	MaxInFlight int
	// Build populates one window's task graph on the (already named) job.
	Build func(w Window, j *dataflow.Job) error
}

// Validate checks the spec is executable.
func (s Spec) Validate() error {
	if s.Name == "" {
		return errors.New("stream: spec has no name")
	}
	if strings.ContainsRune(s.Name, '%') {
		return fmt.Errorf("stream: spec name %q must not contain %%", s.Name)
	}
	if s.Source == nil {
		return fmt.Errorf("stream: spec %q has no source", s.Name)
	}
	if s.WindowSize <= 0 {
		return fmt.Errorf("stream: spec %q window size %d", s.Name, s.WindowSize)
	}
	if s.Build == nil {
		return fmt.Errorf("stream: spec %q has no window builder", s.Name)
	}
	if s.MaxInFlight < 0 {
		return fmt.Errorf("stream: spec %q negative in-flight bound", s.Name)
	}
	return nil
}

// InFlight resolves the effective in-flight window bound.
func (s Spec) InFlight() int {
	if s.MaxInFlight <= 0 {
		return 2
	}
	return s.MaxInFlight
}

// Template returns the dataflow template window jobs are stamped from.
func (s Spec) Template(events []Event) dataflow.Template {
	return dataflow.Template{
		Name: s.Name + "/w%06d",
		Build: func(j *dataflow.Job, n int) error {
			return s.Build(Window{Index: n, Events: events}, j)
		},
	}
}

// Instantiate builds window idx's sub-DAG over the given events. The
// resulting job is named "<Name>/w<idx>" and validated — ready to submit.
func (s Spec) Instantiate(idx int, events []Event) (*dataflow.Job, error) {
	return s.Template(events).Instantiate(idx)
}
