package memsim

import (
	"testing"
	"testing/quick"
	"time"
)

func mustDevice(t *testing.T, spec Spec) *Device {
	t.Helper()
	d, err := NewDevice("test/"+spec.Name, spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCatalogSpecsValid(t *testing.T) {
	specs := append(Table1Specs(), GDDRSpec(), CXLPMemSpec())
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTable1Ordering(t *testing.T) {
	// The table's ordinal rankings must hold in the concrete numbers:
	// bandwidth Cache ≥ HBM > DRAM > PMem ≥ CXL > Disagg > SSD > HDD,
	// latency Cache < HBM ≤ DRAM < CXL < PMem < Disagg < SSD < HDD.
	c, h, d, p := CacheSpec(), HBMSpec(), DRAMSpec(), PMemSpec()
	x, f, s, hd := CXLDRAMSpec(), DisaggMemSpec(), SSDSpec(), HDDSpec()
	bw := []Spec{c, h, d, x, f, p, s, hd}
	for i := 1; i < len(bw); i++ {
		if bw[i].Bandwidth > bw[i-1].Bandwidth {
			t.Errorf("bandwidth ordering violated: %s (%.0f) > %s (%.0f)",
				bw[i].Name, bw[i].Bandwidth, bw[i-1].Name, bw[i-1].Bandwidth)
		}
	}
	lat := []Spec{c, d, h, x, p, f, s, hd}
	for i := 1; i < len(lat); i++ {
		if lat[i].Latency < lat[i-1].Latency {
			t.Errorf("latency ordering violated: %s (%v) < %s (%v)",
				lat[i].Name, lat[i].Latency, lat[i-1].Name, lat[i-1].Latency)
		}
	}
}

func TestTable1Properties(t *testing.T) {
	// Sync and persistence flags must match the table's ✓/✗ columns.
	for _, tc := range []struct {
		spec        Spec
		sync, pers  bool
		granularity int
		attach      Attach
	}{
		{CacheSpec(), true, false, 1, AttachCPU},
		{HBMSpec(), true, false, 64, AttachCPU},
		{DRAMSpec(), true, false, 64, AttachCPU},
		{PMemSpec(), true, true, 256, AttachCPU},
		{CXLDRAMSpec(), true, false, 64, AttachPCIe},
		{DisaggMemSpec(), false, false, 256, AttachNIC},
		{SSDSpec(), false, true, 4096, AttachPCIe},
		{HDDSpec(), false, true, 4096, AttachSATA},
	} {
		s := tc.spec
		if s.Sync != tc.sync || s.Persistent != tc.pers || s.Granularity != tc.granularity || s.Attach != tc.attach {
			t.Errorf("%s: got (sync=%t pers=%t gran=%d attach=%s)", s.Name, s.Sync, s.Persistent, s.Granularity, s.Attach)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := DRAMSpec()
	for _, mod := range []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Latency = 0 },
		func(s *Spec) { s.Bandwidth = 0 },
		func(s *Spec) { s.Granularity = 0 },
		func(s *Spec) { s.Capacity = 0 },
	} {
		s := good
		mod(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v should fail validation", s)
		}
	}
	if _, err := NewDevice("", good); err == nil {
		t.Error("empty device id must be rejected")
	}
}

func TestServiceTimeSequential(t *testing.T) {
	d := mustDevice(t, DRAMSpec()) // 90ns, 100 GB/s
	got := d.ServiceTime(100*MiB, Read, Sequential)
	// 100 MiB / 100e9 B/s ≈ 1.048ms; latency is noise at this size.
	want := time.Duration(float64(100*MiB) / 100e9 * float64(time.Second))
	if diff := got - want; diff < 0 || diff > time.Microsecond {
		t.Errorf("ServiceTime = %v, want ≈ %v", got, want)
	}
}

func TestServiceTimeRandomPaysLatencyPerGranule(t *testing.T) {
	d := mustDevice(t, DRAMSpec())
	seq := d.ServiceTime(64*KiB, Read, Sequential)
	rnd := d.ServiceTime(64*KiB, Read, Random)
	// 1024 granules × 90ns ≫ one 90ns latency.
	if rnd < 100*seq {
		t.Errorf("random access (%v) should dwarf sequential (%v) at this size", rnd, seq)
	}
}

func TestServiceTimeGranularityRounding(t *testing.T) {
	d := mustDevice(t, SSDSpec())
	if one, blk := d.ServiceTime(1, Read, Sequential), d.ServiceTime(4096, Read, Sequential); one != blk {
		t.Errorf("1-byte SSD access (%v) must cost a full block (%v)", one, blk)
	}
}

func TestPersistentWritePenalty(t *testing.T) {
	d := mustDevice(t, PMemSpec())
	r := d.ServiceTime(1*MiB, Read, Sequential)
	w := d.ServiceTime(1*MiB, Write, Sequential)
	if w <= r {
		t.Errorf("persistent write (%v) must exceed read (%v)", w, r)
	}
	v := mustDevice(t, DRAMSpec())
	if v.ServiceTime(1*MiB, Write, Sequential) != v.ServiceTime(1*MiB, Read, Sequential) {
		t.Error("volatile devices have symmetric read/write cost")
	}
}

func TestAccessQueueContention(t *testing.T) {
	d := mustDevice(t, DRAMSpec())
	// Two simultaneous 1 MiB reads: the second completes after the first's
	// transfer drains the queue.
	t1 := d.Access(0, 1*MiB, Read, Sequential)
	t2 := d.Access(0, 1*MiB, Read, Sequential)
	if t2 <= t1 {
		t.Errorf("contended access must finish later: t1=%v t2=%v", t1, t2)
	}
	svc := d.ServiceTime(1*MiB, Read, Sequential)
	if want := t1 + svc; t2 != want {
		t.Errorf("t2 = %v, want t1+svc = %v", t2, want)
	}
}

func TestAccessAfterIdlePaysNoQueueing(t *testing.T) {
	d := mustDevice(t, DRAMSpec())
	done := d.Access(0, 1*MiB, Read, Sequential)
	// Issue the next access long after the queue drained.
	later := done + time.Millisecond
	d2 := d.Access(later, 1*MiB, Read, Sequential)
	if d2 != later+d.ServiceTime(1*MiB, Read, Sequential) {
		t.Errorf("idle device must not add queueing delay")
	}
}

func TestReserveRelease(t *testing.T) {
	d := mustDevice(t, HBMSpec()) // 16 GiB
	if err := d.Reserve(10 * GiB); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(10 * GiB); err == nil {
		t.Fatal("oversubscription must fail")
	}
	if got := d.Free(); got != 6*GiB {
		t.Errorf("Free = %d, want 6 GiB", got)
	}
	if u := d.Utilization(); u < 0.62 || u > 0.63 {
		t.Errorf("Utilization = %f, want ≈0.625", u)
	}
	d.Release(10 * GiB)
	if got := d.Free(); got != 16*GiB {
		t.Errorf("Free after release = %d, want full capacity", got)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	d := mustDevice(t, HBMSpec())
	defer func() {
		if recover() == nil {
			t.Error("releasing unallocated capacity must panic")
		}
	}()
	d.Release(1)
}

func TestReserveRejectsNonPositive(t *testing.T) {
	d := mustDevice(t, HBMSpec())
	if err := d.Reserve(0); err == nil {
		t.Error("Reserve(0) must fail")
	}
	if err := d.Reserve(-5); err == nil {
		t.Error("Reserve(-5) must fail")
	}
}

func TestStatsCounting(t *testing.T) {
	d := mustDevice(t, DRAMSpec())
	d.Access(0, 128, Read, Sequential)
	d.Access(0, 256, Write, Sequential)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("counts = %d/%d, want 1/1", s.Reads, s.Writes)
	}
	if s.BytesRead != 128 || s.BytesWritten != 256 {
		t.Errorf("bytes = %d/%d, want 128/256", s.BytesRead, s.BytesWritten)
	}
	d.ResetQueue()
	if d.Stats().BusyUntil != 0 {
		t.Error("ResetQueue must clear the service queue")
	}
}

// Property: completion times are monotone in request size and never precede
// issue time plus the device latency.
func TestAccessMonotoneProperty(t *testing.T) {
	f := func(a, b uint32, at uint32) bool {
		d, err := NewDevice("q", DRAMSpec())
		if err != nil {
			return false
		}
		sa, sb := int64(a%10_000_000)+1, int64(b%10_000_000)+1
		if sa > sb {
			sa, sb = sb, sa
		}
		now := time.Duration(at % 1_000_000)
		ta := d.ServiceTime(sa, Read, Sequential)
		tb := d.ServiceTime(sb, Read, Sequential)
		if ta > tb {
			return false
		}
		done := d.Access(now, sa, Read, Sequential)
		return done >= now+d.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the service queue never travels backwards — a sequence of
// accesses yields non-decreasing completion times when issued at
// non-decreasing timestamps.
func TestQueueMonotoneProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		d, err := NewDevice("q", CXLDRAMSpec())
		if err != nil {
			return false
		}
		var prev time.Duration
		now := time.Duration(0)
		for i, s := range sizes {
			done := d.Access(now, int64(s)+1, Read, Sequential)
			if done < prev {
				return false
			}
			prev = done
			if i%2 == 0 {
				now += time.Microsecond
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestByteAddressable(t *testing.T) {
	if !DRAMSpec().ByteAddressable() || !PMemSpec().ByteAddressable() {
		t.Error("DRAM and PMem are byte-addressable")
	}
	if SSDSpec().ByteAddressable() || HDDSpec().ByteAddressable() {
		t.Error("block devices are not byte-addressable")
	}
}

func TestClassAndAttachStrings(t *testing.T) {
	if Cache.String() != "Cache" || CXLDRAM.String() != "CXL-DRAM" || DisaggMem.String() != "Disagg. Mem." {
		t.Error("class names must match Table 1 rows")
	}
	if AttachCPU.String() != "CPU" || AttachNIC.String() != "NIC" || AttachSATA.String() != "SATA" {
		t.Error("attach names must match Table 1")
	}
}
