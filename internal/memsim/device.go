// Package memsim simulates the physical memory devices of a fully
// disaggregated system: the rows of Table 1 in the paper (cache, HBM, DRAM,
// PMem, CXL-DRAM, NIC-attached disaggregated memory, SSD, HDD) plus GDDR for
// accelerators.
//
// Real hardware of these kinds is not available here, so each device is a
// discrete-cost model: an access of s bytes issued at virtual time t is
// serviced after the device latency plus s divided by the device bandwidth,
// with a single service queue providing bandwidth contention. Accesses still
// touch real host memory (the backing arena lives in internal/region), so the
// data path is genuinely exercised; only *time* is simulated. All state is
// deterministic — no wall clocks, no randomness.
package memsim

import (
	"fmt"
	"sync"
	"time"
)

// Class enumerates the device kinds of Table 1 (plus GDDR, which the paper's
// Figure 3 uses as the GPU-local tier).
type Class uint8

const (
	Cache Class = iota
	HBM
	DRAM
	PMem
	CXLDRAM
	DisaggMem
	SSD
	HDD
	GDDR
)

// String returns the Table 1 row name.
func (c Class) String() string {
	switch c {
	case Cache:
		return "Cache"
	case HBM:
		return "HBM"
	case DRAM:
		return "DRAM"
	case PMem:
		return "PMem"
	case CXLDRAM:
		return "CXL-DRAM"
	case DisaggMem:
		return "Disagg. Mem."
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	case GDDR:
		return "GDDR"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Attach describes how the device is physically attached (Table 1's
// "Attached" column); the attachment determines which interconnect paths
// exist in the topology.
type Attach uint8

const (
	AttachCPU  Attach = iota // on the memory bus / on-package
	AttachPCIe               // PCIe or CXL
	AttachNIC                // reached over the network fabric
	AttachSATA
)

// String returns the attachment name as printed in Table 1.
func (a Attach) String() string {
	switch a {
	case AttachCPU:
		return "CPU"
	case AttachPCIe:
		return "PCIe"
	case AttachNIC:
		return "NIC"
	case AttachSATA:
		return "SATA"
	default:
		return fmt.Sprintf("Attach(%d)", uint8(a))
	}
}

// Spec is the static property sheet of a device model — the simulator's
// rendering of one Table 1 row.
type Spec struct {
	Name        string
	Class       Class
	Latency     time.Duration // device-internal access latency (excludes interconnect)
	Bandwidth   float64       // bytes/second sustained
	Granularity int           // bytes per access unit
	Attach      Attach
	Coherent    bool // can participate in hardware cache coherence
	Sync        bool // synchronous loads/stores are sensible
	Persistent  bool
	Capacity    int64 // bytes
	// HardwareManaged marks devices (caches) that the placement layer must
	// never allocate regions on: they speed accesses up transparently but
	// are not a software-visible memory pool.
	HardwareManaged bool
}

// Validate reports spec errors early instead of producing nonsense costs.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("memsim: spec missing name")
	case s.Latency <= 0:
		return fmt.Errorf("memsim: %s: latency must be positive", s.Name)
	case s.Bandwidth <= 0:
		return fmt.Errorf("memsim: %s: bandwidth must be positive", s.Name)
	case s.Granularity <= 0:
		return fmt.Errorf("memsim: %s: granularity must be positive", s.Name)
	case s.Capacity <= 0:
		return fmt.Errorf("memsim: %s: capacity must be positive", s.Name)
	default:
		return nil
	}
}

// ByteAddressable reports whether the device supports byte-granular
// loads/stores (granularity ≤ a cache line and not a block device).
func (s Spec) ByteAddressable() bool { return s.Granularity <= 512 }

// AccessKind distinguishes reads from writes: persistent and block devices
// commonly have asymmetric costs.
type AccessKind uint8

const (
	Read AccessKind = iota
	Write
)

// Pattern distinguishes sequential streaming from random accesses; random
// accesses pay the device latency per granule instead of once per request.
type Pattern uint8

const (
	Sequential Pattern = iota
	Random
)

// Device is a simulated memory device instance: a spec plus mutable
// service-queue state for bandwidth contention and an allocation meter.
type Device struct {
	Spec
	ID string // unique within a topology, e.g. "node0/dram0"

	mu        sync.Mutex
	busyUntil time.Duration // virtual time the service queue drains
	allocated int64         // bytes handed out by the allocator layer
	reads     uint64
	writes    uint64
	bytesRead uint64
	bytesWr   uint64
}

// NewDevice builds a device from a validated spec.
func NewDevice(id string, spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if id == "" {
		return nil, fmt.Errorf("memsim: device id must be non-empty")
	}
	return &Device{Spec: spec, ID: id}, nil
}

// roundUp rounds n up to the device granularity: a 1-byte access to a block
// device still moves a full block.
func (d *Device) roundUp(n int64) int64 {
	g := int64(d.Granularity)
	if rem := n % g; rem != 0 {
		n += g - rem
	}
	return n
}

// ServiceTime returns how long the device itself needs to move size bytes,
// excluding queueing and interconnect: latency (once for sequential, per
// granule for random) plus transfer time at device bandwidth. Writes to
// persistent media pay a 1.25× penalty (flush overhead), matching the
// read/write asymmetry of PMem and flash.
func (d *Device) ServiceTime(size int64, kind AccessKind, pat Pattern) time.Duration {
	if size <= 0 {
		return 0
	}
	size = d.roundUp(size)
	lat := d.Latency
	if pat == Random {
		granules := size / int64(d.Granularity)
		lat = time.Duration(int64(d.Latency) * granules)
	}
	xfer := time.Duration(float64(size) / d.Bandwidth * float64(time.Second))
	if kind == Write && d.Persistent {
		xfer = xfer * 5 / 4
	}
	return lat + xfer
}

// Access services a request issued at virtual time now and returns the
// virtual completion time. A single FIFO service queue models bandwidth
// contention: concurrent requests serialize their transfer phases.
func (d *Device) Access(now time.Duration, size int64, kind AccessKind, pat Pattern) time.Duration {
	svc := d.ServiceTime(size, kind, pat)
	d.mu.Lock()
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + svc
	d.busyUntil = done
	d.countLocked(size, kind)
	d.mu.Unlock()
	return done
}

// AccessQueued is Access against a caller-held service-queue state instead
// of the device-global one: busyUntil is the queue drain time the caller
// tracks (one per virtual-time epoch), and the advanced value is returned
// alongside the completion time. Device counters still accumulate globally;
// only *queue time* is epoch-local, which is what lets concurrent epochs
// share a device without serializing against each other's virtual backlog.
func (d *Device) AccessQueued(busyUntil, now time.Duration, size int64, kind AccessKind, pat Pattern) (done, newBusyUntil time.Duration) {
	svc := d.ServiceTime(size, kind, pat)
	start := now
	if busyUntil > start {
		start = busyUntil
	}
	done = start + svc
	d.mu.Lock()
	d.countLocked(size, kind)
	d.mu.Unlock()
	return done, done
}

// countLocked bumps the access counters. Caller holds d.mu.
func (d *Device) countLocked(size int64, kind AccessKind) {
	switch kind {
	case Read:
		d.reads++
		d.bytesRead += uint64(size)
	case Write:
		d.writes++
		d.bytesWr += uint64(size)
	}
}

// Stats is a snapshot of device counters for reports and tests.
type Stats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten uint64
	Allocated               int64
	BusyUntil               time.Duration
}

// Stats returns a consistent snapshot.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Reads: d.reads, Writes: d.writes,
		BytesRead: d.bytesRead, BytesWritten: d.bytesWr,
		Allocated: d.allocated, BusyUntil: d.busyUntil,
	}
}

// Reserve accounts an allocation against device capacity. The region layer
// calls this under its allocator; Reserve fails rather than oversubscribes.
func (d *Device) Reserve(n int64) error {
	if n <= 0 {
		return fmt.Errorf("memsim: %s: reserve of %d bytes", d.ID, n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.allocated+n > d.Capacity {
		return fmt.Errorf("memsim: %s: capacity exhausted (%d allocated, %d capacity, %d requested)",
			d.ID, d.allocated, d.Capacity, n)
	}
	d.allocated += n
	return nil
}

// Release returns capacity. Releasing more than allocated is a bug in the
// caller and panics loudly rather than corrupting accounting.
func (d *Device) Release(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n > d.allocated {
		panic(fmt.Sprintf("memsim: %s: release %d with %d allocated", d.ID, n, d.allocated))
	}
	d.allocated -= n
}

// Free returns the unallocated capacity in bytes.
func (d *Device) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Capacity - d.allocated
}

// Utilization returns allocated/capacity in [0,1].
func (d *Device) Utilization() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return float64(d.allocated) / float64(d.Capacity)
}

// ResetQueue clears the service queue (between benchmark iterations).
func (d *Device) ResetQueue() {
	d.mu.Lock()
	d.busyUntil = 0
	d.mu.Unlock()
}
