package memsim

import "time"

// The catalogue renders Table 1 of the paper into concrete numbers. Latency
// and bandwidth are device-internal figures (the interconnect path adds its
// own cost in internal/topology); values follow the table's ordinal ranking
// (++/+/◦/−/−−) using publicly reported magnitudes for each technology.

const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40
)

// CacheSpec models an on-CPU last-level cache slice: Table 1 row "Cache"
// (Bw ++, Lat ++, 1 B granularity, CPU-attached, sync, volatile).
func CacheSpec() Spec {
	return Spec{
		Name: "Cache", Class: Cache,
		Latency: 4 * time.Nanosecond, Bandwidth: 1000e9,
		Granularity: 1, Attach: AttachCPU,
		Coherent: true, Sync: true, Persistent: false,
		Capacity: 64 * MiB, HardwareManaged: true,
	}
}

// HBMSpec models on-package high-bandwidth memory (Bw ++, Lat +).
func HBMSpec() Spec {
	return Spec{
		Name: "HBM", Class: HBM,
		Latency: 110 * time.Nanosecond, Bandwidth: 400e9,
		Granularity: 64, Attach: AttachCPU,
		Coherent: true, Sync: true, Persistent: false,
		Capacity: 16 * GiB,
	}
}

// DRAMSpec models a socket's local DDR DRAM (Bw +, Lat +).
func DRAMSpec() Spec {
	return Spec{
		Name: "DRAM", Class: DRAM,
		Latency: 90 * time.Nanosecond, Bandwidth: 100e9,
		Granularity: 64, Attach: AttachCPU,
		Coherent: true, Sync: true, Persistent: false,
		Capacity: 256 * GiB,
	}
}

// PMemSpec models Optane-style persistent memory (Bw ◦, Lat ◦, 256 B
// granularity, persistent).
func PMemSpec() Spec {
	return Spec{
		Name: "PMem", Class: PMem,
		Latency: 350 * time.Nanosecond, Bandwidth: 8e9,
		Granularity: 256, Attach: AttachCPU,
		Coherent: true, Sync: true, Persistent: true,
		Capacity: 1 * TiB,
	}
}

// CXLDRAMSpec models a CXL.mem DRAM expansion card: DRAM media behind a
// PCIe5/CXL link, so medium latency; coherent via CXL; sync or async per
// Table 1 ("✓/✗"). The optional persistence of the table row is modeled by
// CXLPMemSpec.
func CXLDRAMSpec() Spec {
	return Spec{
		Name: "CXL-DRAM", Class: CXLDRAM,
		Latency: 170 * time.Nanosecond, Bandwidth: 30e9,
		Granularity: 64, Attach: AttachPCIe,
		Coherent: true, Sync: true, Persistent: false,
		Capacity: 512 * GiB,
	}
}

// CXLPMemSpec is the persistent variant of the CXL expansion row.
func CXLPMemSpec() Spec {
	s := CXLDRAMSpec()
	s.Name = "CXL-PMem"
	s.Latency = 400 * time.Nanosecond
	s.Bandwidth = 10e9
	s.Persistent = true
	s.Capacity = 2 * TiB
	return s
}

// DisaggMemSpec models NIC-attached far memory on a memory node (Bw ◦,
// Lat −, async only, granularity "?" in the table — we use 256 B, a common
// RDMA transfer unit). Persistence is optional per the table; the volatile
// variant is the default, fault tolerance (internal/fault) adds durability.
func DisaggMemSpec() Spec {
	return Spec{
		Name: "Disagg. Mem.", Class: DisaggMem,
		Latency: 1500 * time.Nanosecond, Bandwidth: 12e9,
		Granularity: 256, Attach: AttachNIC,
		Coherent: false, Sync: false, Persistent: false,
		Capacity: 4 * TiB,
	}
}

// SSDSpec models NVMe flash (Bw −, Lat −, 4 KiB blocks, persistent).
func SSDSpec() Spec {
	return Spec{
		Name: "SSD", Class: SSD,
		Latency: 60 * time.Microsecond, Bandwidth: 3e9,
		Granularity: 4096, Attach: AttachPCIe,
		Coherent: false, Sync: false, Persistent: true,
		Capacity: 8 * TiB,
	}
}

// HDDSpec models spinning disks (Bw −−, Lat −−, persistent).
func HDDSpec() Spec {
	return Spec{
		Name: "HDD", Class: HDD,
		Latency: 6 * time.Millisecond, Bandwidth: 200e6,
		Granularity: 4096, Attach: AttachSATA,
		Coherent: false, Sync: false, Persistent: true,
		Capacity: 32 * TiB,
	}
}

// GDDRSpec models GPU-local graphics memory: very fast from the GPU, only
// reachable over PCIe/CXL from the host (Figure 3's point: the best device
// depends on the compute device).
func GDDRSpec() Spec {
	return Spec{
		Name: "GDDR", Class: GDDR,
		Latency: 120 * time.Nanosecond, Bandwidth: 500e9,
		Granularity: 64, Attach: AttachPCIe,
		Coherent: false, Sync: true, Persistent: false,
		Capacity: 24 * GiB,
	}
}

// Table1Specs returns the catalogue in the paper's row order (the nine specs
// that make up Table 1 plus GDDR).
func Table1Specs() []Spec {
	return []Spec{
		CacheSpec(), HBMSpec(), DRAMSpec(), PMemSpec(),
		CXLDRAMSpec(), DisaggMemSpec(), SSDSpec(), HDDSpec(),
	}
}
