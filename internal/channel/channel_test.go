package channel

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
)

// pair allocates a shared region and returns producer and consumer
// endpoints on different CPUs (shared ownership across sockets).
func pair(t testing.TB, slots, payload int) (*Ring, *Ring, *region.Manager) {
	t.Helper()
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "ring", Class: props.GlobalState, Size: Geometry(slots, payload),
		Owner: "producer", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := h.Share("consumer", "node0/cpu1")
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Attach(h, slots, payload)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Attach(h2, slots, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prod.Init(0); err != nil {
		t.Fatal(err)
	}
	return prod, cons, mgr
}

func TestAttachValidation(t *testing.T) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "small", Class: props.GlobalState, Size: 64,
		Owner: "p", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := Attach(h, 16, 64); !errors.Is(err, ErrLayout) {
		t.Error("undersized region must fail attach")
	}
	if _, err := Attach(h, 0, 64); !errors.Is(err, ErrLayout) {
		t.Error("zero slots must fail")
	}
}

func TestSendRecvRoundtrip(t *testing.T) {
	prod, cons, _ := pair(t, 8, 64)
	now, ok, err := prod.TrySend(0, []byte("message one"))
	if err != nil || !ok {
		t.Fatalf("send: %v ok=%t", err, ok)
	}
	if now <= 0 {
		t.Error("send must cost virtual time (region accesses)")
	}
	msg, _, ok, err := cons.TryRecv(now)
	if err != nil || !ok {
		t.Fatalf("recv: %v ok=%t", err, ok)
	}
	if !bytes.Equal(msg, []byte("message one")) {
		t.Errorf("recv %q", msg)
	}
}

func TestEmptyAndFull(t *testing.T) {
	prod, cons, _ := pair(t, 2, 16)
	if _, _, ok, _ := cons.TryRecv(0); ok {
		t.Error("empty ring must not deliver")
	}
	var now time.Duration
	for i := 0; i < 2; i++ {
		done, ok, err := prod.TrySend(now, []byte{byte(i)})
		if err != nil || !ok {
			t.Fatalf("send %d: %v", i, err)
		}
		now = done
	}
	if _, ok, _ := prod.TrySend(now, []byte{9}); ok {
		t.Error("full ring must reject")
	}
	// Drain one, send succeeds again.
	_, now, ok, err := cons.TryRecv(now)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, ok, _ := prod.TrySend(now, []byte{9}); !ok {
		t.Error("ring must accept after a recv")
	}
}

func TestOversizedMessage(t *testing.T) {
	prod, _, _ := pair(t, 4, 8)
	if _, _, err := prod.TrySend(0, make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized message must fail")
	}
}

func TestWraparoundPreservesFIFO(t *testing.T) {
	prod, cons, _ := pair(t, 4, 16)
	var now time.Duration
	next := 0 // next value to send
	expect := 0
	for round := 0; round < 10; round++ {
		// Fill.
		for {
			done, ok, err := prod.TrySend(now, []byte{byte(next)})
			if err != nil {
				t.Fatal(err)
			}
			now = done
			if !ok {
				break
			}
			next++
		}
		// Drain.
		for {
			msg, done, ok, err := cons.TryRecv(now)
			if err != nil {
				t.Fatal(err)
			}
			now = done
			if !ok {
				break
			}
			if int(msg[0]) != expect%256 {
				t.Fatalf("out of order: got %d want %d", msg[0], expect%256)
			}
			expect++
		}
	}
	if expect != next || expect < 30 {
		t.Errorf("drained %d of %d", expect, next)
	}
}

func TestBlockingSendRecv(t *testing.T) {
	prod, cons, _ := pair(t, 1, 16)
	now, err := prod.Send(0, []byte("a"), time.Microsecond, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Second send must time out (nobody drains).
	if _, err := prod.Send(now, []byte("b"), time.Microsecond, 5); err == nil {
		t.Error("send into a full ring with no consumer must time out")
	}
	msg, now, err := cons.Recv(now, time.Microsecond, 10)
	if err != nil || string(msg) != "a" {
		t.Fatalf("recv: %q %v", msg, err)
	}
	// Recv on empty times out.
	if _, _, err := cons.Recv(now, time.Microsecond, 5); err == nil {
		t.Error("recv from empty ring must time out")
	}
}

func TestLen(t *testing.T) {
	prod, cons, _ := pair(t, 8, 16)
	var now time.Duration
	for i := 0; i < 5; i++ {
		done, ok, err := prod.TrySend(now, []byte{byte(i)})
		if err != nil || !ok {
			t.Fatal(err)
		}
		now = done
	}
	n, now, err := cons.Len(now)
	if err != nil || n != 5 {
		t.Errorf("len = %d (%v), want 5", n, err)
	}
	cons.TryRecv(now)
	if n, _, _ := cons.Len(now); n != 4 {
		t.Errorf("len after recv = %d", n)
	}
}

func TestCrossSocketRingPaysCoherence(t *testing.T) {
	// The ring's counters ping-pong between cpu0 (producer) and cpu1
	// (consumer): a same-CPU ring must be cheaper per message.
	prodX, consX, mgrX := pair(t, 8, 64)
	var crossTime time.Duration
	now := time.Duration(0)
	for i := 0; i < 16; i++ {
		done, ok, err := prodX.TrySend(now, []byte("m"))
		if err != nil || !ok {
			t.Fatal(err)
		}
		_, done, ok, err = consX.TryRecv(done)
		if err != nil || !ok {
			t.Fatal(err)
		}
		now = done
	}
	crossTime = now
	_ = mgrX

	// Same-CPU pair.
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "ring", Class: props.GlobalState, Size: Geometry(8, 64),
		Owner: "producer", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := h.Share("consumer", "node0/cpu0")
	if err != nil {
		t.Fatal(err)
	}
	prodL, _ := Attach(h, 8, 64)
	consL, _ := Attach(h2, 8, 64)
	prodL.Init(0)
	now = 0
	for i := 0; i < 16; i++ {
		done, ok, err := prodL.TrySend(now, []byte("m"))
		if err != nil || !ok {
			t.Fatal(err)
		}
		_, done, ok, err = consL.TryRecv(done)
		if err != nil || !ok {
			t.Fatal(err)
		}
		now = done
	}
	if crossTime <= now {
		t.Errorf("cross-socket ring (%v) must cost more than same-CPU (%v)", crossTime, now)
	}
}

// Property: any interleaving of sends and receives preserves FIFO order
// and loses no message.
func TestFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		prod, cons, _ := pair(t, 4, 16)
		rng := rand.New(rand.NewSource(seed))
		var now time.Duration
		sent, received := 0, 0
		for op := 0; op < 120; op++ {
			if rng.Intn(2) == 0 {
				done, ok, err := prod.TrySend(now, []byte(fmt.Sprintf("%08d", sent)))
				if err != nil {
					return false
				}
				now = done
				if ok {
					sent++
				}
			} else {
				msg, done, ok, err := cons.TryRecv(now)
				if err != nil {
					return false
				}
				now = done
				if ok {
					if string(msg) != fmt.Sprintf("%08d", received) {
						return false
					}
					received++
				}
			}
		}
		// Drain the rest.
		for {
			msg, done, ok, err := cons.TryRecv(now)
			if err != nil {
				return false
			}
			now = done
			if !ok {
				break
			}
			if string(msg) != fmt.Sprintf("%08d", received) {
				return false
			}
			received++
		}
		return received == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRingSendRecv(b *testing.B) {
	prod, cons, _ := pair(b, 64, 64)
	msg := make([]byte, 32)
	var now time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, ok, err := prod.TrySend(now, msg)
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
		_, done, ok, err = cons.TryRecv(done)
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
		now = done
	}
}
