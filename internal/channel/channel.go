// Package channel implements message-passing over shared memory — the
// inter-task communication pattern the paper singles out as performance-
// critical ("the performance-critical inter-task communication is being
// implemented via message-passing over shared memory [41]", §2.1, citing
// Naiad).
//
// A Ring is a single-producer single-consumer ring buffer laid out inside
// a shared Memory Region: an 8-byte head counter, an 8-byte tail counter,
// and fixed-size slots. Producer and consumer hold separate handles to the
// same region (shared ownership), so every head/tail access pays the
// region's real placement cost — including MESI directory traffic when the
// two ends run on different compute devices. The ring is the quantitative
// witness for why the paper wants coherent Global State for
// synchronization: the counters ping-pong between the endpoints' caches.
package channel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/region"
)

// Errors.
var (
	ErrTooLarge = errors.New("channel: message exceeds slot payload")
	ErrLayout   = errors.New("channel: region too small for the requested geometry")
)

const headerBytes = 16 // head(8) | tail(8)
const slotHeader = 4   // per-slot length prefix

// Ring is one endpoint's view of the shared ring buffer.
type Ring struct {
	h        *region.Handle
	slots    int64
	slotSize int64 // payload capacity per slot (excluding the length prefix)
}

// Geometry computes the region size needed for the given slot count and
// payload capacity.
func Geometry(slots int, payload int) int64 {
	return headerBytes + int64(slots)*(slotHeader+int64(payload))
}

// Attach wraps a region handle as a ring endpoint. Both endpoints must use
// identical geometry. The producer should call Init once before any Send.
func Attach(h *region.Handle, slots, payload int) (*Ring, error) {
	if slots <= 0 || payload <= 0 {
		return nil, fmt.Errorf("%w: slots=%d payload=%d", ErrLayout, slots, payload)
	}
	size, err := h.Size()
	if err != nil {
		return nil, err
	}
	if size < Geometry(slots, payload) {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrLayout, Geometry(slots, payload), size)
	}
	return &Ring{h: h, slots: int64(slots), slotSize: int64(payload)}, nil
}

// Init zeroes the counters (producer-side, once).
func (r *Ring) Init(now time.Duration) (time.Duration, error) {
	var zero [headerBytes]byte
	f := r.h.WriteAsync(now, 0, zero[:])
	return f.Await(now)
}

// counters loads (head, tail).
func (r *Ring) counters(now time.Duration) (uint64, uint64, time.Duration, error) {
	var buf [headerBytes]byte
	f := r.h.ReadAsync(now, 0, buf[:])
	done, err := f.Await(now)
	if err != nil {
		return 0, 0, now, err
	}
	return binary.BigEndian.Uint64(buf[:8]), binary.BigEndian.Uint64(buf[8:]), done, nil
}

func (r *Ring) setCounter(now time.Duration, off int64, v uint64) (time.Duration, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	f := r.h.WriteAsync(now, off, buf[:])
	return f.Await(now)
}

// slotOff returns the byte offset of slot i.
func (r *Ring) slotOff(i uint64) int64 {
	return headerBytes + int64(i%uint64(r.slots))*(slotHeader+r.slotSize)
}

// TrySend enqueues msg if there is room. Returns (completionTime, sent).
func (r *Ring) TrySend(now time.Duration, msg []byte) (time.Duration, bool, error) {
	if int64(len(msg)) > r.slotSize {
		return now, false, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(msg), r.slotSize)
	}
	head, tail, done, err := r.counters(now)
	if err != nil {
		return now, false, err
	}
	if head-tail >= uint64(r.slots) {
		return done, false, nil // full
	}
	// Write the slot, then publish by bumping head.
	buf := make([]byte, slotHeader+len(msg))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(msg)))
	copy(buf[4:], msg)
	f := r.h.WriteAsync(done, r.slotOff(head), buf)
	done, err = f.Await(done)
	if err != nil {
		return now, false, err
	}
	done, err = r.setCounter(done, 0, head+1)
	if err != nil {
		return now, false, err
	}
	return done, true, nil
}

// TryRecv dequeues one message if available. Returns (msg, completionTime,
// received).
func (r *Ring) TryRecv(now time.Duration) ([]byte, time.Duration, bool, error) {
	head, tail, done, err := r.counters(now)
	if err != nil {
		return nil, now, false, err
	}
	if tail >= head {
		return nil, done, false, nil // empty
	}
	var lenBuf [slotHeader]byte
	f := r.h.ReadAsync(done, r.slotOff(tail), lenBuf[:])
	done, err = f.Await(done)
	if err != nil {
		return nil, now, false, err
	}
	n := int64(binary.BigEndian.Uint32(lenBuf[:]))
	if n > r.slotSize {
		return nil, now, false, fmt.Errorf("channel: corrupt slot length %d", n)
	}
	msg := make([]byte, n)
	if n > 0 {
		f = r.h.ReadAsync(done, r.slotOff(tail)+slotHeader, msg)
		done, err = f.Await(done)
		if err != nil {
			return nil, now, false, err
		}
	}
	done, err = r.setCounter(done, 8, tail+1)
	if err != nil {
		return nil, now, false, err
	}
	return msg, done, true, nil
}

// Len returns the number of queued messages.
func (r *Ring) Len(now time.Duration) (int, time.Duration, error) {
	head, tail, done, err := r.counters(now)
	if err != nil {
		return 0, now, err
	}
	return int(head - tail), done, nil
}

// Send spins (in virtual time) until the message fits, modeling a blocking
// producer: each failed attempt costs one backoff quantum.
func (r *Ring) Send(now time.Duration, msg []byte, backoff time.Duration, maxTries int) (time.Duration, error) {
	if backoff <= 0 {
		backoff = time.Microsecond
	}
	for try := 0; try < maxTries; try++ {
		done, ok, err := r.TrySend(now, msg)
		if err != nil {
			return now, err
		}
		if ok {
			return done, nil
		}
		now = done + backoff
	}
	return now, fmt.Errorf("channel: send timed out after %d tries", maxTries)
}

// Recv spins until a message arrives, modeling a blocking consumer.
func (r *Ring) Recv(now time.Duration, backoff time.Duration, maxTries int) ([]byte, time.Duration, error) {
	if backoff <= 0 {
		backoff = time.Microsecond
	}
	for try := 0; try < maxTries; try++ {
		msg, done, ok, err := r.TryRecv(now)
		if err != nil {
			return nil, now, err
		}
		if ok {
			return msg, done, nil
		}
		now = done + backoff
	}
	return nil, now, fmt.Errorf("channel: recv timed out after %d tries", maxTries)
}
