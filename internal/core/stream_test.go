package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// chainEvents synthesizes n keyed events with no payload — the chain specs
// below exercise the engine, not the window bodies.
func chainEvents(n int) []stream.Event {
	events := make([]stream.Event, n)
	for i := range events {
		events[i] = stream.Event{Key: uint64(i)}
	}
	return events
}

// chainSpec declares a three-task ETL chain per window. hook, when
// non-nil, runs inside each task body (the crash tests gate on it);
// nil keeps the declarative nil-body fast path.
func chainSpec(name string, src stream.Source, windowSize, inflight int, hook func(w stream.Window, task string) error) stream.Spec {
	body := func(w stream.Window, task string) dataflow.Fn {
		if hook == nil {
			return nil
		}
		return func(dataflow.Ctx) error { return hook(w, task) }
	}
	return stream.Spec{
		Name: name, Source: src, WindowSize: windowSize, MaxInFlight: inflight,
		Build: func(w stream.Window, j *dataflow.Job) error {
			a := j.Task("extract", dataflow.Props{Ops: 1e5, OutputBytes: 1 << 12}, body(w, "extract"))
			b := j.Task("transform", dataflow.Props{Ops: 2e5, OutputBytes: 1 << 10}, body(w, "transform"))
			c := j.Task("load", dataflow.Props{Ops: 1e5}, body(w, "load"))
			a.Then(b)
			b.Then(c)
			return nil
		},
	}
}

// collectStream submits the spec and drains it, returning the per-window
// reports in retirement order.
func collectStream(t *testing.T, s *Server, spec stream.Spec, opts ...SubmitOptions) ([]*Report, *StreamTicket) {
	t.Helper()
	tk, err := s.SubmitStream(context.Background(), spec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var reps []*Report
	for rep := range tk.Reports() {
		reps = append(reps, rep)
	}
	<-tk.Done()
	if err := tk.Err(); err != nil {
		t.Fatal(err)
	}
	return reps, tk
}

// TestStreamReportsMatchSoloAcrossWorkers pins the tentpole's determinism
// contract: every window report a served stream retires is byte-identical
// to running that window alone on a fresh single-worker runtime — at any
// EpochWorkers, with key-partitioned window graphs, with other windows of
// the same stream overlapped in the same epochs.
func TestStreamReportsMatchSoloAcrossWorkers(t *testing.T) {
	cfg := workload.StreamConfig{Windows: 4, WindowSize: 16, EventSize: 32, Keys: 8, Partitions: 2, MaxInFlight: 2}

	// Solo baseline: each window instantiated and run by itself.
	events := workload.StreamEvents(cfg)
	spec := workload.Stream(cfg)
	var want []string
	for w := 0; w < cfg.Windows; w++ {
		job, err := spec.Instantiate(w, events[w*cfg.WindowSize:(w+1)*cfg.WindowSize])
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rep.String())
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		s := newTestServer(t, ServerConfig{EpochWorkers: workers, MaxBatch: 4, Block: true})
		reps, tk := collectStream(t, s, workload.Stream(cfg))
		if len(reps) != cfg.Windows {
			t.Fatalf("EpochWorkers=%d retired %d windows, want %d", workers, len(reps), cfg.Windows)
		}
		var wm time.Duration
		for i, rep := range reps {
			if got := rep.String(); got != want[i] {
				t.Errorf("EpochWorkers=%d window %d diverges from solo single-worker run:\n--- solo ---\n%s--- served ---\n%s", workers, i, want[i], got)
			}
			wm += rep.Makespan
		}
		if tk.Watermark() != wm {
			t.Errorf("EpochWorkers=%d watermark %v != sum of retired makespans %v", workers, tk.Watermark(), wm)
		}
	}
}

// TestStreamBackpressureBoundsSource pins deterministic backpressure: with
// MaxInFlight=1 and no consumer, the driver may hold at most the in-flight
// window, the report buffer, and one retirement in the delivery select —
// so an unbounded source is pulled O(in-flight) windows ahead of the
// consumer, never further.
func TestStreamBackpressureBoundsSource(t *testing.T) {
	const windowSize = 8
	var pulled atomic.Int64
	src := stream.SourceFunc(func() (stream.Event, bool) {
		n := pulled.Add(1)
		// consumed(2) + buffer(1) + in-flight(1) + the retirement parked in
		// the delivery select (1), plus one window of slack: anything past
		// this means the in-flight cap is not holding the source back.
		if n > 6*windowSize {
			t.Errorf("unbounded source pulled %d events with only 2 windows consumed", n)
			return stream.Event{}, false
		}
		return stream.Event{Key: uint64(n)}, true
	})
	s := newTestServer(t, ServerConfig{EpochWorkers: 2, MaxBatch: 4, Block: true})
	tk, err := s.SubmitStream(context.Background(), chainSpec("firehose", src, windowSize, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	<-tk.Reports()
	<-tk.Reports()
	// Drain: the source stops being pulled, in-flight windows retire.
	done := make(chan struct{})
	var late int
	go func() {
		defer close(done)
		for range tk.Reports() {
			late++
		}
	}()
	if err := tk.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
	if tk.Windows() != 2+late {
		t.Errorf("ticket counts %d windows, consumed %d", tk.Windows(), 2+late)
	}
	if got := pulled.Load(); got > 6*windowSize {
		t.Errorf("source pulled %d events total", got)
	}
}

// TestStreamCancelMidWindowDrains pins cancel: the reports channel closes
// promptly, the terminal error is ErrStreamCanceled, in-flight windows are
// awaited (no leaked submissions), and the server keeps serving.
func TestStreamCancelMidWindowDrains(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 2, MaxBatch: 4, Block: true})
	spec := chainSpec("cancelme", stream.NewSliceSource(chainEvents(8*8)), 8, 2, nil)
	tk, err := s.SubmitStream(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	<-tk.Reports()
	tk.Cancel()
	for range tk.Reports() { //nolint:revive // draining until close
	}
	<-tk.Done()
	if !errors.Is(tk.Err(), ErrStreamCanceled) {
		t.Errorf("Err = %v, want ErrStreamCanceled", tk.Err())
	}
	if tk.Windows() < 1 || tk.Windows() >= 8 {
		t.Errorf("canceled stream retired %d of 8 windows", tk.Windows())
	}
	// The engine is not wedged: an ordinary submission still serves.
	if _, err := s.Submit(context.Background(), pipelineJob("after-cancel")); err != nil {
		t.Fatalf("server wedged after stream cancel: %v", err)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_streams"); got != 1 {
		t.Errorf("server_streams = %d, want 1", got)
	}
}

// TestSubmitStreamValidation pins the submission-surface errors.
func TestSubmitStreamValidation(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1})
	ctx := context.Background()
	if _, err := s.SubmitStream(ctx, stream.Spec{}); err == nil {
		t.Error("invalid spec must be rejected")
	}
	ok := func() stream.Spec { return chainSpec("ok", stream.NewSliceSource(chainEvents(8)), 8, 1, nil) }
	if _, err := s.SubmitStream(ctx, ok(), SubmitOptions{}, SubmitOptions{}); err == nil {
		t.Error("more than one SubmitOptions must be rejected")
	}
	if _, err := s.SubmitStream(ctx, ok(), SubmitOptions{ResumeID: "orphan"}); err == nil {
		t.Error("ResumeID without ServerConfig.Recovery must be rejected")
	}
	reps, _ := collectStream(t, s, ok())
	if len(reps) != 1 {
		t.Fatalf("retired %d windows, want 1", len(reps))
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitStream(ctx, ok()); !errors.Is(err, ErrServerClosed) {
		t.Errorf("submit after close = %v, want ErrServerClosed", err)
	}
}

// crashResume runs the deterministic crash/resume protocol at the given
// EpochWorkers: window 2's transform task gates until window 2's extract
// has checkpointed, the stream is canceled while transform blocks (the
// simulated crash — cancellation is observed at the next task boundary, so
// "load" never runs), and the same spec is resubmitted with the crashed
// ticket's ResumeID. Because the gate fixes the crashed run's checkpoint
// state exactly — markers for w0 and w1, snapshots for w2's extract and
// transform — the resumed run is identical at any pool size.
func crashResume(t *testing.T, workers int) (crashed, resumed *StreamTicket, resumedReps []*Report) {
	t.Helper()
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{
		Runtime: rt, EpochWorkers: workers, MaxBatch: 4, Block: true,
		Recovery: &RecoveryPolicy{MaxAttempts: 3, PartialReplay: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) }) //nolint:errcheck

	gate := make(chan struct{})
	reached := make(chan struct{})
	var once sync.Once
	hook := func(w stream.Window, task string) error {
		if w.Index == 2 && task == "transform" {
			once.Do(func() { close(reached) })
			<-gate
		}
		return nil
	}
	const windows, windowSize = 5, 8
	tk, err := s.SubmitStream(context.Background(),
		chainSpec("crashy", stream.NewSliceSource(chainEvents(windows*windowSize)), windowSize, 2, hook))
	if err != nil {
		t.Fatal(err)
	}
	<-tk.Reports() // w0
	<-tk.Reports() // w1
	<-reached      // w2: extract checkpointed, transform parked on the gate
	tk.Cancel()    // the crash: markers and window snapshots survive
	close(gate)
	for range tk.Reports() { //nolint:revive // draining until close
	}
	<-tk.Done()
	if !errors.Is(tk.Err(), ErrStreamCanceled) {
		t.Fatalf("crashed stream Err = %v, want ErrStreamCanceled", tk.Err())
	}
	if tk.Windows() != 2 {
		t.Fatalf("crashed stream retired %d windows, want 2", tk.Windows())
	}

	rtk, err := s.SubmitStream(context.Background(),
		chainSpec("crashy", stream.NewSliceSource(chainEvents(windows*windowSize)), windowSize, 2, nil),
		SubmitOptions{ResumeID: tk.ResumeID()})
	if err != nil {
		t.Fatal(err)
	}
	var reps []*Report
	for rep := range rtk.Reports() {
		reps = append(reps, rep)
	}
	<-rtk.Done()
	if err := rtk.Err(); err != nil {
		t.Fatal(err)
	}
	return tk, rtk, reps
}

// TestStreamCrashResume pins mid-stream crash recovery: the resume skips
// the two marker-completed windows, partial-replays the interrupted window
// (SkippedTasks > 0), re-runs the rest from scratch, and reconstructs the
// watermark as markers + resumed makespans.
func TestStreamCrashResume(t *testing.T) {
	crashed, resumed, reps := crashResume(t, 2)
	if resumed.SkippedWindows() != 2 {
		t.Errorf("resume skipped %d windows, want 2", resumed.SkippedWindows())
	}
	if got := resumed.SkippedWindows() + resumed.Windows(); got != 5 {
		t.Errorf("resume accounts for %d windows, want 5", got)
	}
	if len(reps) != 3 {
		t.Fatalf("resume retired %d windows, want 3", len(reps))
	}
	// w2 replays its checkpointed prefix: extract and transform completed
	// before the crash, so exactly those two restore.
	if reps[0].SkippedTasks != 2 {
		t.Errorf("resumed window SkippedTasks = %d, want 2 (extract, transform)", reps[0].SkippedTasks)
	}
	for i, rep := range reps[1:] {
		if rep.SkippedTasks != 0 {
			t.Errorf("post-crash window %d SkippedTasks = %d, want 0", i+3, rep.SkippedTasks)
		}
	}
	// Watermark arithmetic: the crashed ticket's watermark came from live
	// retirements, the resumed ticket rebuilt the same prefix from markers.
	wm := crashed.Watermark()
	for _, rep := range reps {
		wm += rep.Makespan
	}
	if resumed.Watermark() != wm {
		t.Errorf("resumed watermark %v != markers + resumed makespans %v", resumed.Watermark(), wm)
	}

	// Post-crash-point windows are byte-identical to an uninterrupted
	// stream on an identical serving stack (same recovery pricing).
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewServer(ServerConfig{
		Runtime: rt, EpochWorkers: 2, MaxBatch: 4, Block: true,
		Recovery: &RecoveryPolicy{MaxAttempts: 3, PartialReplay: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { base.Close(context.Background()) }) //nolint:errcheck
	baseReps, _ := collectStream(t, base,
		chainSpec("crashy", stream.NewSliceSource(chainEvents(5*8)), 8, 2, nil))
	if len(baseReps) != 5 {
		t.Fatalf("baseline retired %d windows, want 5", len(baseReps))
	}
	for i := 3; i < 5; i++ {
		if got, want := reps[i-2].String(), baseReps[i].String(); got != want {
			t.Errorf("post-crash window %d diverges from uninterrupted stream:\n--- uninterrupted ---\n%s--- resumed ---\n%s", i, want, got)
		}
	}
}

// TestStreamCrashResumeDeterministicAcrossWorkers re-runs the identical
// crash/resume protocol at EpochWorkers 1 and 4: because the gate fixes
// the crashed state, every resumed report must be byte-identical between
// the two pool sizes — recovery composes with the determinism contract.
func TestStreamCrashResumeDeterministicAcrossWorkers(t *testing.T) {
	_, r1, reps1 := crashResume(t, 1)
	_, r4, reps4 := crashResume(t, 4)
	if r1.SkippedWindows() != r4.SkippedWindows() || r1.Windows() != r4.Windows() {
		t.Fatalf("resume shape diverges: %d+%d windows at 1 worker, %d+%d at 4",
			r1.SkippedWindows(), r1.Windows(), r4.SkippedWindows(), r4.Windows())
	}
	if r1.Watermark() != r4.Watermark() {
		t.Errorf("resumed watermark %v at 1 worker != %v at 4", r1.Watermark(), r4.Watermark())
	}
	for i := range reps1 {
		if got, want := reps4[i].String(), reps1[i].String(); got != want {
			t.Errorf("resumed window %d diverges across pool sizes:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", i, want, got)
		}
	}
}
