package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// estimateOf prices a job exactly the way SLO admission does.
func estimateOf(t *testing.T, s *Server, job *dataflow.Job) time.Duration {
	t.Helper()
	est, _, err := sched.EstimateJob(job, s.rt.topo, s.rt.sched)
	if err != nil {
		t.Fatalf("EstimateJob: %v", err)
	}
	return est.Makespan
}

// TestSLOAdmissionModel drives the virtual queue model through a
// back-to-back arrival sequence on a one-worker model: the first job fits,
// the second is predicted to queue past its deadline and is refused, and a
// third arriving after the model drained is admitted again.
func TestSLOAdmissionModel(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 2, QueueDepth: 16, Block: true,
		SLO: &SLOPolicy{Workers: 1}})
	est := estimateOf(t, s, pipelineJob("p"))
	deadline := est + est/2 // fits one service time, not two

	tk1, err := s.SubmitAsyncOpts(context.Background(), pipelineJob("p"), SubmitOptions{Deadline: deadline})
	if err != nil {
		t.Fatalf("first submission refused: %v", err)
	}
	_, err = s.SubmitAsyncOpts(context.Background(), pipelineJob("p"), SubmitOptions{Deadline: deadline})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("second back-to-back submission: err = %v, want ErrDeadline", err)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_slo_rejected"); got != 1 {
		t.Errorf("server_slo_rejected = %d, want 1", got)
	}

	// After the modeled worker drains (arrival past its free time), the
	// same deadline admits again.
	tk3, err := s.SubmitAsyncOpts(context.Background(), pipelineJob("p"),
		SubmitOptions{Arrival: 2 * est, Deadline: deadline})
	if err != nil {
		t.Fatalf("post-drain submission refused: %v", err)
	}

	rep1, err := tk1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.SLODeadline != deadline {
		t.Errorf("SLODeadline = %v, want %v", rep1.SLODeadline, deadline)
	}
	if rep1.SLOWait != 0 {
		t.Errorf("first arrival should see an idle model, SLOWait = %v", rep1.SLOWait)
	}
	if rep1.SLOPredicted != est {
		t.Errorf("SLOPredicted = %v, want estimate %v", rep1.SLOPredicted, est)
	}
	if rep1.BestEffort {
		t.Error("guaranteed admission reported BestEffort")
	}
	// The reused admission plan must reproduce the solo makespan exactly.
	if rep1.Makespan != est {
		t.Errorf("Makespan %v != admission estimate %v (plan reuse broken?)", rep1.Makespan, est)
	}
	if rep3, err := tk3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	} else if rep3.SLOWait != 0 {
		t.Errorf("post-drain arrival should not queue in the model, SLOWait = %v", rep3.SLOWait)
	}
}

// TestSLOAdmissionDeterministic replays one arrival sequence through two
// fresh servers and requires identical verdicts at every step.
func TestSLOAdmissionDeterministic(t *testing.T) {
	type verdict struct {
		admitted   bool
		bestEffort bool
	}
	replay := func() []verdict {
		s := newTestServer(t, ServerConfig{EpochWorkers: 2, QueueDepth: 64, Block: true,
			SLO: &SLOPolicy{Workers: 2, DownTier: false}})
		est := estimateOf(t, s, pipelineJob("p"))
		var out []verdict
		for i := 0; i < 40; i++ {
			// Arrivals at 40% of the two-worker drain rate: overload, so the
			// sequence mixes admissions and rejections.
			arr := time.Duration(i) * est * 4 / 10
			tk, err := s.SubmitAsyncOpts(context.Background(), pipelineJob("p"),
				SubmitOptions{Arrival: arr, Deadline: 2 * est})
			v := verdict{admitted: err == nil}
			if err == nil {
				v.bestEffort = tk.BestEffort()
			} else if !errors.Is(err, ErrDeadline) {
				t.Fatalf("submission %d: %v", i, err)
			}
			out = append(out, v)
		}
		return out
	}
	a, b := replay(), replay()
	rejected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across replays: %+v vs %+v", i, a[i], b[i])
		}
		if !a[i].admitted {
			rejected++
		}
	}
	if rejected == 0 || rejected == len(a) {
		t.Fatalf("degenerate replay: %d/%d rejected — sequence exercises nothing", rejected, len(a))
	}
}

// TestSLODownTier: the same predicted miss that ErrDeadline refuses is
// admitted best-effort under a DownTier policy, marked on ticket, report,
// and counter.
func TestSLODownTier(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 2, QueueDepth: 16, Block: true,
		SLO: &SLOPolicy{Workers: 1, DownTier: true}})
	est := estimateOf(t, s, pipelineJob("p"))
	deadline := est + est/2

	tk1, err := s.SubmitAsyncOpts(context.Background(), pipelineJob("p"), SubmitOptions{Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := s.SubmitAsyncOpts(context.Background(), pipelineJob("p"), SubmitOptions{Deadline: deadline})
	if err != nil {
		t.Fatalf("DownTier policy refused a predicted miss: %v", err)
	}
	if tk1.BestEffort() {
		t.Error("guaranteed admission marked best-effort on ticket")
	}
	if !tk2.BestEffort() {
		t.Error("predicted miss not marked best-effort on ticket")
	}
	rep2, err := tk2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.BestEffort {
		t.Error("down-tiered job's report not marked BestEffort")
	}
	if rep2.SLOWait != est {
		t.Errorf("second back-to-back arrival should queue one service time, SLOWait = %v, want %v", rep2.SLOWait, est)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_downtiered"); got != 1 {
		t.Errorf("server_downtiered = %d, want 1", got)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_slo_rejected"); got != 0 {
		t.Errorf("server_slo_rejected = %d, want 0 under DownTier", got)
	}
}

// TestSLOUnset: without a policy, SubmitAsyncOpts ignores admission inputs
// and reports carry zero SLO fields.
func TestSLOUnset(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1})
	tk, err := s.SubmitAsyncOpts(context.Background(), pipelineJob("p"),
		SubmitOptions{Arrival: time.Hour, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatalf("SLO-less server gated a submission: %v", err)
	}
	rep, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLODeadline != 0 || rep.SLOWait != 0 || rep.SLOPredicted != 0 || rep.BestEffort {
		t.Errorf("SLO fields set without a policy: %+v", rep)
	}
}

// TestLiveWorkersWithoutScaler pins the static answer.
func TestLiveWorkersWithoutScaler(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 3})
	if got := s.LiveWorkers(); got != 3 {
		t.Errorf("LiveWorkers = %d, want 3", got)
	}
}

// TestAutoScaleGrowsUnderPressure holds the single worker hostage while
// jobs pile up, then releases it: the observed queue waits blow past the
// target and the controller must grow the pool. Afterwards a stream of
// quick jobs with negligible waits must shrink it back to Min.
func TestAutoScaleGrowsUnderPressure(t *testing.T) {
	s := newTestServer(t, ServerConfig{
		EpochWorkers: 1, QueueDepth: 64, MaxBatch: 1, Block: true,
		AutoScale: &AutoScalePolicy{Min: 1, Max: 3, TargetP99: 2 * time.Millisecond,
			Interval: 2 * time.Millisecond, Window: 4},
	})
	started := make(chan struct{})
	release := make(chan struct{})
	go s.Submit(context.Background(), blockingJob("holder", started, release)) //nolint:errcheck
	<-started

	// Pile up jobs; they will dequeue with waits far above target.
	var tks []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := s.SubmitAsync(context.Background(), pipelineJob("queued"))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	time.Sleep(20 * time.Millisecond) // let the queued jobs accumulate wait
	close(release)
	for _, tk := range tks {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_scale_up") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-scaler never scaled up despite queue waits 10x the target")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.LiveWorkers(); got < 1 || got > 3 {
		t.Errorf("LiveWorkers = %d, outside policy bounds [1,3]", got)
	}

	// Feed quick jobs so the window refills with negligible waits; the
	// controller must come back down to Min (one step per interval).
	for time.Now().Before(deadline) {
		if _, err := s.Submit(context.Background(), pipelineJob("quick")); err != nil {
			t.Fatal(err)
		}
		if s.LiveWorkers() == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.LiveWorkers(); got != 1 {
		t.Errorf("LiveWorkers = %d after sustained low load, want 1", got)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_scale_down"); got == 0 {
		t.Error("server_scale_down = 0, want > 0")
	}
}

// TestAutoScaleCloseRace: Close with an active scaler must not race the
// worker drain (the scaler is stopped before the queue closes). Run with
// -race to make this meaningful.
func TestAutoScaleCloseRace(t *testing.T) {
	for i := 0; i < 10; i++ {
		s, err := NewServer(ServerConfig{
			EpochWorkers: 1, QueueDepth: 8, MaxBatch: 2,
			AutoScale: &AutoScalePolicy{Min: 1, Max: 4, TargetP99: time.Microsecond,
				Interval: time.Millisecond, Window: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if _, err := s.SubmitAsync(context.Background(), pipelineJob("j")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
