package core

// Tests for the parallel wavefront executor: virtual-time determinism
// across worker-pool sizes, clean drains on mid-wavefront failure and
// cancellation, bounded queue linger, and the wide-DAG speedup benchmark.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	goruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/props"
	"repro/internal/telemetry"
)

// wideJob builds a src → width branches → sink diamond whose bodies do real
// work through every concurrency-sensitive runtime path: input reads from
// the shared fan-out region (coherence-fenced), private scratch writes
// (parallel payload copies), a job-global accumulator (fence-gated first
// use, rank-ordered read-modify-write), and compute charges.
func wideJob(name string, width int) *dataflow.Job {
	j := dataflow.NewJob(name)
	src := j.Task("src", dataflow.Props{Ops: 1e5, OutputBytes: 32 << 10}, nil)
	sink := j.Task("sink", dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
		buf := make([]byte, 64)
		for _, in := range ctx.Inputs() {
			now, err := in.ReadAt(ctx.Now(), 0, buf)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		return nil
	})
	for i := 0; i < width; i++ {
		id := fmt.Sprintf("branch%02d", i)
		t := j.Task(id, dataflow.Props{Ops: 2e5, OutputBytes: 256}, func(ctx dataflow.Ctx) error {
			in := ctx.Inputs()[0]
			head := make([]byte, 1<<10)
			now, err := in.ReadAt(ctx.Now(), 0, head)
			if err != nil {
				return err
			}
			ctx.Wait(now)

			scratch, err := ctx.Scratch("buf", 16<<10)
			if err != nil {
				return err
			}
			payload := make([]byte, 4<<10)
			for b := range payload {
				payload[b] = byte(b)
			}
			for off := int64(0); off < 16<<10; off += int64(len(payload)) {
				now, err := scratch.WriteAt(ctx.Now(), off, payload)
				if err != nil {
					return err
				}
				ctx.Wait(now)
			}

			acc, err := ctx.Global("acc", props.GlobalState, 4096)
			if err != nil {
				return err
			}
			cnt := make([]byte, 8)
			now, err = acc.ReadAt(ctx.Now(), 0, cnt)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			cnt[0]++
			now, err = acc.WriteAt(ctx.Now(), 0, cnt)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			ctx.Charge(1e5)
			return nil
		})
		src.Then(t)
		t.Then(sink)
	}
	return j
}

// TestWavefrontDeterministicAcrossWorkerCounts is the determinism gate: the
// report — virtual makespan, every task's start/finish, placements, peak
// memory, final outputs — must be byte-for-byte identical whether the DAG
// ran on one worker or many.
func TestWavefrontDeterministicAcrossWorkerCounts(t *testing.T) {
	counts := []int{1, 4, goruntime.GOMAXPROCS(0)}
	var want *Report
	for _, w := range counts {
		rt, err := New(Config{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Workers() != w {
			t.Fatalf("Workers() = %d, want %d", rt.Workers(), w)
		}
		// Repeat each pool size a few times: a race that perturbs virtual
		// time is unlikely to strike the first run.
		for rep := 0; rep < 3; rep++ {
			got, err := rt.Run(wideJob("wide", 16))
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if want == nil {
				want = got
				continue
			}
			if got.Makespan != want.Makespan {
				t.Fatalf("workers=%d: makespan %v != %v", w, got.Makespan, want.Makespan)
			}
			if !reflect.DeepEqual(got.PeakDeviceBytes, want.PeakDeviceBytes) {
				t.Fatalf("workers=%d: peak %v != %v", w, got.PeakDeviceBytes, want.PeakDeviceBytes)
			}
			if !reflect.DeepEqual(got.FinalOutputs, want.FinalOutputs) {
				t.Fatalf("workers=%d: final outputs %v != %v", w, got.FinalOutputs, want.FinalOutputs)
			}
			if !reflect.DeepEqual(got.Tasks, want.Tasks) {
				for id, tr := range want.Tasks {
					if !reflect.DeepEqual(got.Tasks[id], tr) {
						t.Fatalf("workers=%d: task %s: %+v != %+v", w, id, got.Tasks[id], tr)
					}
				}
				t.Fatalf("workers=%d: task reports diverge", w)
			}
			// Everything else too — batch metadata, attempts, scheduler and
			// placer names: the whole report is a pure function of the job.
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d: full report diverges:\n%+v\n!=\n%+v", w, got, want)
			}
		}
		if rt.Regions().Live() != 0 {
			t.Fatalf("workers=%d leaked %d regions", w, rt.Regions().Live())
		}
	}
}

// TestWavefrontFaultDrainsClean injects a fault into a mid-rank branch
// while the wavefront is wide open: the surfaced error must be that task's
// (min-rank first-error-wins), in-flight siblings must drain, and no region
// may leak — device bytes return to zero.
func TestWavefrontFaultDrainsClean(t *testing.T) {
	inj := fault.NewInjector(1, 0, 1)
	inj.Kill("branch07", 1)
	rt, err := New(Config{Workers: 8, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(wideJob("faulty", 16))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "branch07") {
		t.Errorf("err = %v, want the killed task surfaced", err)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions after mid-wavefront fault", live)
	}
	for dev, bytes := range rt.Regions().DeviceBytes() {
		if bytes != 0 {
			t.Errorf("device %s holds %d bytes after drain", dev, bytes)
		}
	}
}

// TestWavefrontCancellationDrainsClean cancels a submission from inside a
// running task body: the wavefront must stop dispatching, drain, release
// every region, and surface the context error to the submitter.
func TestWavefrontCancellationDrainsClean(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	j := dataflow.NewJob("cancelme")
	first := j.Task("first", dataflow.Props{Ops: 1e4, OutputBytes: 1 << 10}, func(c dataflow.Ctx) error {
		cancel() // the submission dies while its own DAG is mid-flight
		return nil
	})
	for i := 0; i < 8; i++ {
		tk := j.Task(fmt.Sprintf("tail%d", i), dataflow.Props{Ops: 1e4}, func(c dataflow.Ctx) error {
			if _, err := c.Scratch("s", 4<<10); err != nil {
				return err
			}
			return nil
		})
		first.Then(tk)
	}
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1})
	_, err := s.Submit(ctx, j)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if live := s.Runtime().Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions after cancellation", live)
	}
	for dev, bytes := range s.Runtime().Regions().DeviceBytes() {
		if bytes != 0 {
			t.Errorf("device %s holds %d bytes after cancellation", dev, bytes)
		}
	}
}

// TestServeMaxLingerBoundsQueueWait drives an open-loop arrival stream
// through a lingering server: collection may wait up to MaxLinger for
// fuller batches, so the queue-wait p99 stays bounded by linger plus
// execution time rather than growing with the backlog.
func TestServeMaxLingerBoundsQueueWait(t *testing.T) {
	tel := telemetry.NewRegistry()
	rt, err := New(Config{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ServerConfig{
		Runtime: rt, EpochWorkers: 2, MaxBatch: 8, Block: true,
		MaxLinger: 10 * time.Millisecond,
	})
	const jobs = 24
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), pipelineJob(fmt.Sprintf("open%02d", i)))
		}(i)
		time.Sleep(time.Millisecond) // open loop: arrivals don't wait for completions
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	h := tel.Hist(telemetry.LayerRuntime, "server_queue_wait")
	if h == nil || h.Count() != jobs {
		t.Fatalf("queue-wait histogram missing or short: %v", h)
	}
	// Generous wall-clock bound: 24 tiny jobs, 2 workers, 10ms linger —
	// anything near the bound means lingering stopped being bounded.
	if p99 := h.Quantile(0.99); p99 > 5*time.Second {
		t.Errorf("queue wait p99 = %v, want bounded by linger + execution", p99)
	}
	if got := tel.Counter(telemetry.LayerRuntime, "server_epochs"); got == 0 || got > jobs {
		t.Errorf("epochs = %d, want within [1, %d]", got, jobs)
	}
}

// benchWideJob is the speedup benchmark's fan-out DAG: the source hands no
// region to its branches (OutputBytes 0) and each branch touches only
// private scratch, so no coherence fence serializes the wavefront and the
// measured speedup is the executor's, not the workload's. Each branch does
// real payload copies plus a wall-clock stall emulating the blocking far
// memory / accelerator-DMA wait a disaggregated task spends most of its
// life in — the latency the executor overlaps even on a single core.
func benchWideJob(name string, width int, payload int64, stall time.Duration) *dataflow.Job {
	j := dataflow.NewJob(name)
	src := j.Task("src", dataflow.Props{Ops: 1e4}, nil)
	sink := j.Task("sink", dataflow.Props{Ops: 1e4}, nil)
	for i := 0; i < width; i++ {
		t := j.Task(fmt.Sprintf("branch%02d", i), dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
			scratch, err := ctx.Scratch("buf", payload)
			if err != nil {
				return err
			}
			chunk := make([]byte, 64<<10)
			for b := range chunk {
				chunk[b] = byte(b * 131)
			}
			for off := int64(0); off < payload; off += int64(len(chunk)) {
				now, err := scratch.WriteAt(ctx.Now(), off, chunk)
				if err != nil {
					return err
				}
				ctx.Wait(now)
			}
			back := make([]byte, 64<<10)
			now, err := scratch.ReadAt(ctx.Now(), 0, back)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			if stall > 0 {
				time.Sleep(stall)
			}
			ctx.Charge(1e6)
			return nil
		})
		src.Then(t)
		t.Then(sink)
	}
	return j
}

// benchWorkerCounts is {1, 2, 4, GOMAXPROCS} deduplicated in order, so
// single-core hosts don't produce duplicate sub-benchmark names.
func benchWorkerCounts() []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{1, 2, 4, goruntime.GOMAXPROCS(0)} {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// benchRefMakespan memoizes the Workers=1 reference makespan so every
// sub-benchmark can assert virtual time is worker-count-invariant.
var benchRefMakespan struct {
	once sync.Once
	d    time.Duration
}

// BenchmarkWideDAGParallel measures wall-clock execution of a fan-out-16
// DAG with real 4 MiB payload writes per branch across wavefront pool
// sizes. Virtual makespan must be identical at every size; wall-clock time
// should fall as workers are added (the acceptance gate records ≥2× at
// workers=4 over workers=1).
func BenchmarkWideDAGParallel(b *testing.B) {
	const width, payload, stall = 16, 1 << 20, 5 * time.Millisecond
	benchRefMakespan.once.Do(func() {
		rt, err := New(Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Run(benchWideJob("wide-ref", width, payload, stall))
		if err != nil {
			b.Fatal(err)
		}
		benchRefMakespan.d = rep.Makespan
	})
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			rt, err := New(Config{Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(benchWideJob("wide", width, payload, stall))
				if err != nil {
					b.Fatal(err)
				}
				if rep.Makespan != benchRefMakespan.d {
					b.Fatalf("makespan %v != workers=1 reference %v", rep.Makespan, benchRefMakespan.d)
				}
			}
		})
	}
}

// BenchmarkServeParallel pushes a burst of jobs through the serving path
// with the wavefront executor under each pool size — the end-to-end figure
// for the batching + wavefront combination.
func BenchmarkServeParallel(b *testing.B) {
	counts := []int{1}
	if n := goruntime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			rt, err := New(Config{Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewServer(ServerConfig{Runtime: rt, EpochWorkers: 2, MaxBatch: 4, Block: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close(context.Background()) //nolint:errcheck
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for k := 0; k < 8; k++ {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						if _, err := s.Submit(context.Background(), benchWideJob(fmt.Sprintf("serve%d", k), 8, 1<<20, time.Millisecond)); err != nil {
							b.Error(err)
						}
					}(k)
				}
				wg.Wait()
			}
		})
	}
}
