package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/workload"
)

func dbmsNamed(name string) *dataflow.Job {
	// The workload builders fix the job name; clone the DAG under a new
	// name by rebuilding with distinct configs is overkill — wrap instead.
	j := workload.DBMS(workload.DefaultDBMS())
	renamed := dataflow.NewJob(name)
	clone := map[string]*dataflow.Task{}
	for _, t := range j.Tasks() {
		clone[t.ID()] = renamed.Task(t.ID(), t.Props(), t.Fn())
	}
	for _, t := range j.Tasks() {
		for _, s := range t.Succs() {
			clone[t.ID()].Then(clone[s.ID()])
		}
	}
	return renamed
}

func TestRunAllValidation(t *testing.T) {
	rt := newRuntime(t)
	if _, err := rt.RunAll(nil, MultiConfig{}); err == nil {
		t.Error("empty job list must fail")
	}
	if _, err := rt.RunAll([]*dataflow.Job{nil}, MultiConfig{}); err == nil {
		t.Error("nil job must fail")
	}
	j := workload.HPC(workload.DefaultHPC())
	if _, err := rt.RunAll([]*dataflow.Job{j, j}, MultiConfig{}); err == nil {
		t.Error("duplicate job names must fail")
	}
}

func TestRunAllMixedWorkloads(t *testing.T) {
	rt := newRuntime(t)
	jobs := []*dataflow.Job{
		workload.Hospital(workload.DefaultHospital()),
		workload.DBMS(workload.DefaultDBMS()),
		workload.ML(workload.DefaultML()),
	}
	rep, err := rt.RunAll(jobs, MultiConfig{ComputeStretch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("job results = %d", len(rep.Jobs))
	}
	// Concurrency: the combined makespan beats running jobs back to back.
	if rep.Makespan >= rep.SumIsolated {
		t.Errorf("concurrent makespan %v must beat sequential %v", rep.Makespan, rep.SumIsolated)
	}
	// Interference: nobody runs faster concurrently than alone.
	for name, jr := range rep.Jobs {
		if jr.Stretch < 0.99 {
			t.Errorf("%s stretch %.2f < 1 — concurrent run cannot beat isolation", name, jr.Stretch)
		}
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
	s := rep.String()
	if !strings.Contains(s, "hospital") || !strings.Contains(s, "stretch") {
		t.Errorf("summary missing fields:\n%s", s)
	}
}

func TestRunAllSameWorkloadContends(t *testing.T) {
	// 6 copies of the same CPU-heavy query must interfere: combined
	// makespan above any single isolated run.
	rt := newRuntime(t)
	var jobs []*dataflow.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, dbmsNamed(fmt.Sprintf("dbms-%d", i)))
	}
	rep, err := rt.RunAll(jobs, MultiConfig{})
	if err != nil {
		t.Fatal(err)
	}
	solo := newRuntime(t)
	soloRep, err := solo.Run(dbmsNamed("dbms-solo"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan < soloRep.Makespan {
		t.Errorf("6-way concurrent makespan %v cannot beat one isolated run %v", rep.Makespan, soloRep.Makespan)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestRunAllFailureCleansAllJobs(t *testing.T) {
	rt := newRuntime(t)
	boom := errors.New("boom")
	bad := dataflow.NewJob("bad")
	bad.Task("explode", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		if _, err := ctx.Scratch("tmp", 4096); err != nil {
			return err
		}
		return boom
	})
	good := workload.HPC(workload.DefaultHPC())
	_, err := rt.RunAll([]*dataflow.Job{good, bad}, MultiConfig{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("failure leaked %d regions", rt.Regions().Live())
	}
}

func TestRunAllDeterministic(t *testing.T) {
	run := func() *MultiReport {
		rt := newRuntime(t)
		jobs := []*dataflow.Job{
			workload.DBMS(workload.DefaultDBMS()),
			workload.StreamWindow(workload.DefaultStream(), 0),
		}
		rep, err := rt.RunAll(jobs, MultiConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic combined makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	for name, jr := range a.Jobs {
		if b.Jobs[name].Report.Makespan != jr.Report.Makespan {
			t.Errorf("%s makespan differs across runs", name)
		}
	}
}

func BenchmarkRunAllJobMix(b *testing.B) {
	rt, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := []*dataflow.Job{
			workload.Hospital(workload.DefaultHospital()),
			workload.DBMS(workload.DefaultDBMS()),
			workload.StreamWindow(workload.DefaultStream(), 0),
		}
		if _, err := rt.RunAll(jobs, MultiConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
