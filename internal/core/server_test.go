package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// pipelineJob builds a small three-stage job; identical inputs always build
// structurally identical jobs, so isolated makespans must match exactly.
func pipelineJob(name string) *dataflow.Job {
	j := dataflow.NewJob(name)
	a := j.Task("ingest", dataflow.Props{Ops: 2e6, OutputBytes: 1 << 18}, nil)
	b := j.Task("filter", dataflow.Props{Ops: 4e6, OutputBytes: 1 << 16}, nil)
	c := j.Task("reduce", dataflow.Props{Ops: 1e6}, nil)
	a.Then(b)
	b.Then(c)
	return j
}

func newTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) }) //nolint:errcheck
	return s
}

func TestServeSingleJobMatchesRun(t *testing.T) {
	// A batch of one through the Server is the same computation as Run on a
	// fresh runtime: same schedule, fresh epoch, zero competing load.
	iso := newRuntime(t)
	want, err := iso.Run(pipelineJob("p"))
	if err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1})
	got, err := s.Submit(context.Background(), pipelineJob("p"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Errorf("served makespan %v != Run makespan %v", got.Makespan, want.Makespan)
	}
	if len(got.Tasks) != len(want.Tasks) {
		t.Errorf("task count %d != %d", len(got.Tasks), len(want.Tasks))
	}
}

func TestServeRejectsInvalidSubmissions(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1})
	if _, err := s.Submit(context.Background(), nil); err == nil {
		t.Error("nil job must be rejected")
	}
	if _, err := s.Submit(context.Background(), dataflow.NewJob("empty")); err == nil {
		t.Error("empty job must be rejected")
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_admitted"); got != 0 {
		t.Errorf("invalid submissions counted as admitted: %d", got)
	}
}

// blockingJob returns a job whose first task parks on release, plus a
// channel that reports the task has started running. It lets tests hold a
// worker busy deterministically (task bodies run real Go code).
func blockingJob(name string, started chan<- struct{}, release <-chan struct{}) *dataflow.Job {
	j := dataflow.NewJob(name)
	j.Task("block", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		started <- struct{}{}
		<-release
		return nil
	})
	return j
}

func TestServeQueueFullRejects(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1, QueueDepth: 1})
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), blockingJob("holder", started, release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-started // the single worker is now parked inside the holder's task

	wg.Add(1)
	go func() {
		defer wg.Done()
		// Fills the queue's only slot and waits behind the holder.
		if _, err := s.Submit(context.Background(), pipelineJob("queued")); err != nil {
			t.Errorf("queued: %v", err)
		}
	}()
	// The queued job is admitted asynchronously; poll until the slot is taken.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued job never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Submit(context.Background(), pipelineJob("overflow")); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_rejected"); got != 1 {
		t.Errorf("server_rejected = %d, want 1", got)
	}

	close(release)
	wg.Wait()
}

func TestServeBlockingBackpressure(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1, QueueDepth: 1, Block: true})
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), blockingJob("holder", started, release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-started

	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), pipelineJob("queued")); err != nil {
			t.Errorf("queued: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued job never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full + Block: Submit parks until its context ends.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, pipelineJob("blocked"))
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("blocking Submit returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}

	close(release)
	wg.Wait()
}

func TestServeCancelWhileQueued(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1, QueueDepth: 2})
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), blockingJob("holder", started, release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-started

	// Admit a job whose body must never run, then cancel it while queued.
	var ran atomic.Bool
	j := dataflow.NewJob("doomed")
	j.Task("t", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		ran.Store(true)
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, j)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed job never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}

	close(release)
	wg.Wait()
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Error("canceled-while-queued job must never execute")
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_canceled"); got != 1 {
		t.Errorf("server_canceled = %d, want 1", got)
	}
}

func TestServeBatchFailureIsolation(t *testing.T) {
	// A failing job inside a batch must only fail its own submitter; batch
	// mates complete and all regions drain.
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 4, QueueDepth: 4})
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), blockingJob("holder", started, release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-started // worker parked: the next two submissions land in one batch

	boom := errors.New("boom")
	bad := dataflow.NewJob("bad")
	bad.Task("explode", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		if _, err := ctx.Scratch("tmp", 1<<16); err != nil {
			return err
		}
		return boom
	})

	badErr := make(chan error, 1)
	goodErr := make(chan error, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := s.Submit(context.Background(), bad)
		badErr <- err
	}()
	go func() {
		defer wg.Done()
		_, err := s.Submit(context.Background(), pipelineJob("good"))
		goodErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("batch mates never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if err := <-badErr; !errors.Is(err, boom) {
		t.Errorf("bad job err = %v, want boom", err)
	}
	if err := <-goodErr; err != nil {
		t.Errorf("good job err = %v, want success", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if live := s.Runtime().Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions after batch failure", live)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_failed"); got != 1 {
		t.Errorf("server_failed = %d, want 1", got)
	}
}

func TestServeCloseDrainsAndRejects(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 2, QueueDepth: 8})
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), pipelineJob(fmt.Sprintf("p%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Submit(context.Background(), pipelineJob("late")); !errors.Is(err, ErrServerClosed) {
		t.Errorf("err = %v, want ErrServerClosed", err)
	}
}

// TestServeConcurrentStress is the issue's -race acceptance test: ≥32 jobs
// submitted from ≥8 goroutines, every submission gets exactly one report, no
// report is shared between submissions, and the runtime's byte accounting
// returns to zero afterwards.
func TestServeConcurrentStress(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 4, MaxBatch: 4, QueueDepth: 64, Block: true})
	const (
		goroutines = 8
		perG       = 5 // 40 jobs total
	)
	type outcome struct {
		rep *Report
		err error
	}
	results := make([][]outcome, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		results[g] = make([]outcome, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var j *dataflow.Job
				switch i % 3 {
				case 0:
					j = pipelineJob("pipe") // same name on purpose: ns must disambiguate
				case 1:
					j = workload.Hospital(workload.DefaultHospital())
				default:
					j = workload.DBMS(workload.DefaultDBMS())
				}
				rep, err := s.Submit(context.Background(), j)
				results[g][i] = outcome{rep, err}
			}
		}(g)
	}
	wg.Wait()

	seen := make(map[*Report]bool)
	completed := 0
	for g := range results {
		for i, out := range results[g] {
			if out.err != nil {
				t.Errorf("goroutine %d job %d: %v", g, i, out.err)
				continue
			}
			if out.rep == nil {
				t.Errorf("goroutine %d job %d: lost report", g, i)
				continue
			}
			if seen[out.rep] {
				t.Errorf("goroutine %d job %d: duplicated report", g, i)
			}
			seen[out.rep] = true
			if out.rep.Makespan <= 0 {
				t.Errorf("goroutine %d job %d: non-positive makespan", g, i)
			}
			completed++
		}
	}
	if completed != goroutines*perG {
		t.Errorf("completed %d/%d jobs", completed, goroutines*perG)
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt := s.Runtime()
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
	for dev, b := range rt.Regions().DeviceBytes() {
		if b != 0 {
			t.Errorf("device %s still accounts %d bytes", dev, b)
		}
	}
	tel := rt.Telemetry()
	if got := tel.Counter(telemetry.LayerRuntime, "server_admitted"); got != goroutines*perG {
		t.Errorf("server_admitted = %d, want %d", got, goroutines*perG)
	}
	if got := tel.Counter(telemetry.LayerRuntime, "server_completed"); got != goroutines*perG {
		t.Errorf("server_completed = %d, want %d", got, goroutines*perG)
	}
	if tel.Counter(telemetry.LayerRuntime, "server_epochs") == 0 {
		t.Error("no epochs recorded")
	}
	serveSpans := 0
	for _, sp := range tel.Spans() {
		if sp.Name == "serve" {
			serveSpans++
		}
	}
	if serveSpans != goroutines*perG {
		t.Errorf("serve spans = %d, want %d", serveSpans, goroutines*perG)
	}
}

// TestServeIsolatedDeterminism pins the issue's determinism clause: identical
// jobs served in isolation (one at a time, batch of one) produce identical
// makespans across repetitions and match plain Run.
func TestServeIsolatedDeterminism(t *testing.T) {
	want, err := newRuntime(t).Run(pipelineJob("p"))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1})
	for i := 0; i < 5; i++ {
		rep, err := s.Submit(context.Background(), pipelineJob("p"))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Makespan != want.Makespan {
			t.Errorf("iteration %d: makespan %v, want %v", i, rep.Makespan, want.Makespan)
		}
	}
}

// TestConcurrentRunsAreIsolated pins the epoch refactor underneath the
// Server: parallel Run calls on one runtime never perturb each other's
// virtual clocks.
func TestConcurrentRunsAreIsolated(t *testing.T) {
	rt := newRuntime(t)
	want, err := rt.Run(pipelineJob("p"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	got := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := rt.Run(pipelineJob("p"))
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			got[i] = rep.Makespan
		}(i)
	}
	wg.Wait()
	for i, m := range got {
		if m != want.Makespan {
			t.Errorf("concurrent run %d makespan %v, want %v", i, m, want.Makespan)
		}
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
}
