package core

// Tests for partial-replay recovery (ISSUE 5): on a retry, checkpointed
// tasks replay at the deterministic recorded price in both modes, and
// partial replay additionally defers the real store fetch until a
// re-executed consumer needs the payload. The headline contract under test:
// RunWithPartialReplay's final report is byte-identical to
// RunWithRecovery's at any Workers / EpochWorkers setting — the modes may
// differ only in real (wall-clock) restore traffic, never in virtual time.

import (
	"context"
	"fmt"
	"reflect"
	goruntime "runtime"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// patternPayload is each chain stage's output size in patternJob.
const patternPayload = 8 << 10

// patternJob builds `width` parallel chains of `depth` stages feeding one
// verifying sink. Every stage writes a chain-specific byte pattern into its
// output, and the sink reads each chain tail and checks the bytes — so a
// replay that handed a re-executed consumer a placeholder payload (instead
// of hydrating the checkpointed bytes) fails loudly, not silently.
func patternJob(name string, width, depth int) *dataflow.Job {
	j := dataflow.NewJob(name)
	tails := make([]*dataflow.Task, width)
	for c := 0; c < width; c++ {
		c := c
		var prev *dataflow.Task
		for s := 0; s < depth; s++ {
			fill := byte(7 + c)
			t := j.Task(fmt.Sprintf("c%ds%d", c, s), dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
				out, err := ctx.Output(patternPayload)
				if err != nil {
					return err
				}
				buf := make([]byte, patternPayload)
				for i := range buf {
					buf[i] = fill
				}
				now, err := out.WriteAsync(ctx.Now(), 0, buf).Await(ctx.Now())
				if err != nil {
					return err
				}
				ctx.Wait(now)
				return nil
			})
			if prev != nil {
				prev.Then(t)
			}
			prev = t
		}
		tails[c] = prev
	}
	sink := j.Task("sink", dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
		for c, in := range ctx.Inputs() {
			buf := make([]byte, 256)
			now, err := in.ReadAt(ctx.Now(), 0, buf)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			want := byte(7 + c)
			for i, b := range buf {
				if b != want {
					return fmt.Errorf("chain %d byte %d = %#x, want %#x", c, i, b, want)
				}
			}
		}
		return nil
	})
	for _, tail := range tails {
		tail.Then(sink)
	}
	return j
}

// runReplay executes patternJob-style recovery once: a fresh runtime with
// the given worker bound and targeted kills, a fresh erasure-coded store,
// and the chosen replay mode. The report is returned with the runtime so
// callers can inspect telemetry and leak counters.
func runReplay(t *testing.T, job *dataflow.Job, workers int, kills map[string]int, partial bool, maxAttempts int) (*Report, int, *Runtime) {
	t.Helper()
	inj := fault.NewInjector(1, 0, 1)
	for task, n := range kills {
		inj.Kill(task, n)
	}
	rt, err := New(Config{Inject: inj, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ck, _ := newCkStore(t)
	run := rt.RunWithRecovery
	if partial {
		run = rt.RunWithPartialReplay
	}
	rep, attempts, err := run(job, ck, maxAttempts)
	if err != nil {
		t.Fatalf("partial=%v workers=%d: %v", partial, workers, err)
	}
	if got := ck.Snapshots(); got != 0 {
		t.Errorf("partial=%v workers=%d: %d snapshots leaked after success", partial, workers, got)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("partial=%v workers=%d: leaked %d regions", partial, workers, live)
	}
	return rep, attempts, rt
}

// TestPartialReplayMatchesFullReplay is the headline determinism gate: for
// every worker-pool size, a retried job's report under partial replay is
// byte-identical to the same retry under full replay — and identical
// across pool sizes. The sink re-executes and verifies real payload bytes,
// so the equality also proves lazy hydration delivered the checkpointed
// data, not the placeholder.
func TestPartialReplayMatchesFullReplay(t *testing.T) {
	const width, depth = 4, 3
	var want *Report
	for _, w := range []int{1, 4, goruntime.GOMAXPROCS(0)} {
		full, fullAttempts, _ := runReplay(t, patternJob("chains", width, depth), w, map[string]int{"sink": 1}, false, 3)
		part, partAttempts, _ := runReplay(t, patternJob("chains", width, depth), w, map[string]int{"sink": 1}, true, 3)
		if fullAttempts != 2 || partAttempts != 2 {
			t.Fatalf("workers=%d: attempts full=%d partial=%d, want 2", w, fullAttempts, partAttempts)
		}
		if !reflect.DeepEqual(full, part) {
			for id := range full.Tasks {
				if !reflect.DeepEqual(full.Tasks[id], part.Tasks[id]) {
					t.Errorf("workers=%d task %s:\nfull    %+v\npartial %+v", w, id, full.Tasks[id], part.Tasks[id])
				}
			}
			t.Fatalf("workers=%d: partial report diverges from full:\nfull    %+v\npartial %+v", w, full, part)
		}
		if part.SkippedTasks != width*depth {
			t.Errorf("workers=%d: SkippedTasks = %d, want %d", w, part.SkippedTasks, width*depth)
		}
		if part.ReplayedTasks != 1 {
			t.Errorf("workers=%d: ReplayedTasks = %d, want 1", w, part.ReplayedTasks)
		}
		if want == nil {
			want = part
			continue
		}
		if !reflect.DeepEqual(part, want) {
			t.Fatalf("workers=%d: report diverges across pool sizes:\n%+v\n!=\n%+v", w, part, want)
		}
	}
}

// TestPartialReplaySkipsUnreadRestores asserts the point of the mode: the
// real store traffic. Full replay fetches every replayed output eagerly
// (width×depth payloads); partial replay fetches only the chain tails the
// re-executed sink consumes (width payloads) — interior chain outputs are
// never pulled from the store at all.
func TestPartialReplaySkipsUnreadRestores(t *testing.T) {
	const width, depth = 4, 3
	_, _, rtFull := runReplay(t, patternJob("chains", width, depth), 4, map[string]int{"sink": 1}, false, 3)
	_, _, rtPart := runReplay(t, patternJob("chains", width, depth), 4, map[string]int{"sink": 1}, true, 3)

	fullBytes := rtFull.Telemetry().Counter(telemetry.LayerFault, "restored_bytes")
	partBytes := rtPart.Telemetry().Counter(telemetry.LayerFault, "restored_bytes")
	if fullBytes != int64(width*depth*patternPayload) {
		t.Errorf("full restored_bytes = %d, want %d", fullBytes, width*depth*patternPayload)
	}
	if partBytes != int64(width*patternPayload) {
		t.Errorf("partial restored_bytes = %d, want %d", partBytes, width*patternPayload)
	}
	if partBytes >= fullBytes {
		t.Errorf("partial replay saved nothing: %d >= %d", partBytes, fullBytes)
	}
	// Both modes replay the same task set; only the real fetches differ.
	fullRestores := rtFull.Telemetry().Counter(telemetry.LayerFault, "restores")
	partRestores := rtPart.Telemetry().Counter(telemetry.LayerFault, "restores")
	if fullRestores != partRestores || fullRestores != int64(width*depth) {
		t.Errorf("restores full=%d partial=%d, want both %d", fullRestores, partRestores, width*depth)
	}
	if got := rtPart.Telemetry().Counter(telemetry.LayerFault, "lazy_hydrations"); got != int64(width) {
		t.Errorf("lazy_hydrations = %d, want %d", got, width)
	}
}

// TestPartialReplayMultiFault drives two failures through one submission —
// a mid-chain kill on the first attempt, then a sink kill during the
// second attempt's replayed suffix — and requires the three-attempt
// outcome to stay byte-identical between the modes.
func TestPartialReplayMultiFault(t *testing.T) {
	const width, depth = 3, 3
	kills := map[string]int{"c1s2": 1, "sink": 1}
	for _, w := range []int{1, goruntime.GOMAXPROCS(0)} {
		full, fullAttempts, _ := runReplay(t, patternJob("chains", width, depth), w, kills, false, 4)
		part, partAttempts, _ := runReplay(t, patternJob("chains", width, depth), w, kills, true, 4)
		if fullAttempts != 3 || partAttempts != 3 {
			t.Fatalf("workers=%d: attempts full=%d partial=%d, want 3", w, fullAttempts, partAttempts)
		}
		if !reflect.DeepEqual(full, part) {
			t.Fatalf("workers=%d: multi-fault partial report diverges:\n%+v\n!=\n%+v", w, full, part)
		}
		if part.SkippedTasks != width*depth {
			t.Errorf("workers=%d: SkippedTasks = %d, want %d", w, part.SkippedTasks, width*depth)
		}
		if part.SkippedTasks+part.ReplayedTasks != len(part.Tasks) {
			t.Errorf("workers=%d: skipped %d + replayed %d != %d tasks",
				w, part.SkippedTasks, part.ReplayedTasks, len(part.Tasks))
		}
	}
}

// TestServePartialReplayOverlappedMatchesFull runs the same faulty batch —
// two pattern jobs whose sinks are killed once each, plus an untouched
// pipeline mate between them — through two servers that differ only in
// RecoveryPolicy.PartialReplay, overlapped on a shared pool. Every
// member's report, including the never-failing mate's, must match
// byte-for-byte.
func TestServePartialReplayOverlappedMatchesFull(t *testing.T) {
	serve := func(partial bool) []*Report {
		inj := fault.NewInjector(1, 0, 1)
		inj.Kill("sink", 2) // first executions: pa's attempt 1, pb's attempt 1
		rt, err := New(Config{Inject: inj, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(ServerConfig{
			Runtime: rt, EpochWorkers: 1, MaxBatch: 8, QueueDepth: 16, Block: true,
			Recovery: &RecoveryPolicy{MaxAttempts: 3, PartialReplay: partial},
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs := []*dataflow.Job{
			patternJob("pa", 2, 2),
			pipelineJob("mate"),
			patternJob("pb", 3, 2),
		}
		tks := submitOneBatch(t, s, jobs)
		reps := make([]*Report, len(tks))
		for i, tk := range tks {
			r, err := tk.Wait(context.Background())
			if err != nil {
				t.Fatalf("partial=%v job %d: %v", partial, i, err)
			}
			reps[i] = r
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := s.Checkpointer().Snapshots(); got != 0 {
			t.Errorf("partial=%v: %d snapshots leaked", partial, got)
		}
		if live := rt.Regions().Live(); live != 0 {
			t.Errorf("partial=%v: leaked %d regions", partial, live)
		}
		return reps
	}

	full := serve(false)
	part := serve(true)
	for i := range full {
		if !reflect.DeepEqual(full[i], part[i]) {
			t.Errorf("job %d: served partial report diverges:\nfull    %+v\npartial %+v", i, full[i], part[i])
		}
	}
	for _, i := range []int{0, 2} {
		if part[i].Attempts != 2 {
			t.Errorf("job %d: attempts = %d, want 2", i, part[i].Attempts)
		}
		if part[i].SkippedTasks == 0 || part[i].ReplayedTasks == 0 {
			t.Errorf("job %d: skipped/replayed = %d/%d, want both non-zero",
				i, part[i].SkippedTasks, part[i].ReplayedTasks)
		}
		if part[i].SkippedTasks+part[i].ReplayedTasks != len(part[i].Tasks) {
			t.Errorf("job %d: skipped %d + replayed %d != %d tasks",
				i, part[i].SkippedTasks, part[i].ReplayedTasks, len(part[i].Tasks))
		}
	}
	if part[1].Attempts != 1 || part[1].SkippedTasks != 0 || part[1].ReplayedTasks != 0 {
		t.Errorf("unfailing mate shows recovery side effects: %+v", part[1])
	}
}

// benchRecoverJob builds the recovery benchmark's DAG: `width` parallel
// chains of `depth` structural stages — each checkpointing a real payload —
// feeding one sink. With the sink killed once, a retry replays every chain
// stage; full replay fetches all width×depth payloads back from the store,
// partial replay fetches only the width chain tails the re-executed sink
// receives as inputs.
func benchRecoverJob(name string, width, depth int, payload int64) *dataflow.Job {
	j := dataflow.NewJob(name)
	sink := j.Task("sink", dataflow.Props{Ops: 1e5}, nil)
	for c := 0; c < width; c++ {
		var prev *dataflow.Task
		for s := 0; s < depth; s++ {
			t := j.Task(fmt.Sprintf("c%ds%d", c, s), dataflow.Props{Ops: 2e6, OutputBytes: payload}, nil)
			if prev != nil {
				prev.Then(t)
			}
			prev = t
		}
		prev.Then(sink)
	}
	return j
}

// BenchmarkRecoverPartial measures one failed-then-recovered submission
// under full vs partial replay: the retry's wall-clock latency and the real
// restore traffic (restored-B/op). Virtual time must not move at all — the
// recovered report is asserted byte-identical across the modes, so the
// benchmark doubles as the equivalence gate at benchmark scale.
func BenchmarkRecoverPartial(b *testing.B) {
	const (
		width   = 6
		depth   = 4
		payload = 32 << 10
	)
	var want *Report
	for _, mode := range []string{"full", "partial"} {
		b.Run(mode, func(b *testing.B) {
			inj := fault.NewInjector(1, 0, 1)
			rt, err := New(Config{Inject: inj, Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			ck, _ := newCkStore(b)
			run := rt.RunWithRecovery
			if mode == "partial" {
				run = rt.RunWithPartialReplay
			}
			b.ReportAllocs()
			b.ResetTimer()
			var rep *Report
			for i := 0; i < b.N; i++ {
				inj.Kill("sink", 1)
				r, attempts, err := run(benchRecoverJob("recover", width, depth, payload), ck, 3)
				if err != nil {
					b.Fatal(err)
				}
				if attempts != 2 {
					b.Fatalf("attempts = %d, want 2", attempts)
				}
				rep = r
			}
			b.StopTimer()
			restored := rt.Telemetry().Counter(telemetry.LayerFault, "restored_bytes")
			b.ReportMetric(float64(restored)/float64(b.N), "restored-B/op")
			if want == nil {
				want = rep
			} else if !reflect.DeepEqual(rep, want) {
				b.Fatalf("recovered report diverges between modes:\n%+v\n!=\n%+v", rep, want)
			}
		})
	}
}

// TestRunWithPartialReplayAPI covers the facade-level entry point: replay
// accounting on the report, a drained checkpointer, and the no-fault case
// reporting no replay at all.
func TestRunWithPartialReplayAPI(t *testing.T) {
	inj := fault.NewInjector(1, 0, 1)
	inj.Kill("sink", 1)
	rt, err := New(Config{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	ck, _ := newCkStore(t)
	rep, attempts, err := rt.RunWithPartialReplay(patternJob("p", 1, 2), ck, 3)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || rep.Attempts != 2 {
		t.Errorf("attempts = %d / report %d, want 2", attempts, rep.Attempts)
	}
	if rep.SkippedTasks != 2 || rep.ReplayedTasks != 1 {
		t.Errorf("skipped/replayed = %d/%d, want 2/1", rep.SkippedTasks, rep.ReplayedTasks)
	}
	if got := ck.Snapshots(); got != 0 {
		t.Errorf("%d snapshots leaked", got)
	}

	// No fault: one attempt, nothing skipped or replayed.
	rt2, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ck2, _ := newCkStore(t)
	rep2, attempts2, err := rt2.RunWithPartialReplay(patternJob("p", 1, 2), ck2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if attempts2 != 1 || rep2.SkippedTasks != 0 || rep2.ReplayedTasks != 0 {
		t.Errorf("clean run: attempts=%d skipped=%d replayed=%d, want 1/0/0",
			attempts2, rep2.SkippedTasks, rep2.ReplayedTasks)
	}
}
