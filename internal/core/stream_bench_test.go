package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/workload"
)

// BenchmarkStreamServe serves the synthetic streaming workload end to end
// — source cut into windows, every window a job on the serving pool,
// in-order retirement — and reports windows/s at 1 vs 4 epoch workers.
// The first iteration of each sub-benchmark additionally asserts every
// per-window report is byte-identical to the solo single-worker run, so
// the committed baseline doubles as a determinism gate: throughput never
// buys back reproducibility.
func BenchmarkStreamServe(b *testing.B) {
	cfg := workload.StreamConfig{
		Windows: 8, WindowSize: 32, EventSize: 64, Keys: 16,
		Partitions: 2, MaxInFlight: 4,
	}
	// Solo Workers=1 references for the first-iteration equality assert.
	events := workload.StreamEvents(cfg)
	spec := workload.Stream(cfg)
	want := make([]string, cfg.Windows)
	for w := range want {
		job, err := spec.Instantiate(w, events[w*cfg.WindowSize:(w+1)*cfg.WindowSize])
		if err != nil {
			b.Fatal(err)
		}
		rt, err := New(Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Run(job)
		if err != nil {
			b.Fatal(err)
		}
		want[w] = rep.String()
	}

	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rt, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewServer(ServerConfig{
				Runtime: rt, EpochWorkers: workers, MaxBatch: 8, QueueDepth: 64, Block: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close(context.Background()) //nolint:errcheck
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, err := s.SubmitStream(context.Background(), workload.Stream(cfg))
				if err != nil {
					b.Fatal(err)
				}
				w := 0
				for rep := range tk.Reports() {
					if i == 0 {
						if got := rep.String(); got != want[w] {
							b.Fatalf("EpochWorkers=%d window %d report diverges from solo single-worker run:\n--- solo ---\n%s--- served ---\n%s",
								workers, w, want[w], got)
						}
					}
					w++
				}
				<-tk.Done()
				if err := tk.Err(); err != nil {
					b.Fatal(err)
				}
				if w != cfg.Windows {
					b.Fatalf("retired %d windows, want %d", w, cfg.Windows)
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(cfg.Windows*b.N)/sec, "windows/s")
			}
		})
	}
}
