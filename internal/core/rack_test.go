package core

import (
	"fmt"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Rack-scale integration: jobs running on the multi-node Figure 1b
// topology, where compute nodes reach each other's DRAM and the pooled
// far-memory nodes only over the fabric.

func rackRuntime(t *testing.T, nodes, memNodes int) *Runtime {
	t.Helper()
	topo, err := topology.BuildRack(nodes, memNodes)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRackRunsCPUWorkloads(t *testing.T) {
	rt := rackRuntime(t, 4, 2)
	for _, job := range []*dataflow.Job{
		workload.DBMS(workload.DefaultDBMS()),
		workload.HPC(workload.DefaultHPC()),
		workload.StreamWindow(workload.DefaultStream(), 0),
	} {
		rep, err := rt.Run(job)
		if err != nil {
			t.Fatalf("%s on rack: %v", job.Name(), err)
		}
		if rep.Makespan <= 0 {
			t.Errorf("%s: zero makespan", job.Name())
		}
		if rt.Regions().Live() != 0 {
			t.Fatalf("%s leaked %d regions", job.Name(), rt.Regions().Live())
		}
	}
}

func TestRackSpreadsConcurrentJobs(t *testing.T) {
	// Jobs wide enough to saturate a node must spread across the rack:
	// each has 24 parallel heavy tasks; 8 jobs ≫ one node's 32 cores.
	rt := rackRuntime(t, 4, 2)
	var jobs []*dataflow.Job
	for i := 0; i < 8; i++ {
		j := dataflow.NewJob(fmt.Sprintf("batch-%d", i))
		for k := 0; k < 24; k++ {
			j.Task(fmt.Sprintf("crunch-%02d", k), dataflow.Props{Ops: 1e9}, nil)
		}
		jobs = append(jobs, j)
	}
	rep, err := rt.RunAll(jobs, MultiConfig{})
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]bool{}
	for _, jr := range rep.Jobs {
		for _, tr := range jr.Report.Tasks {
			used[tr.Compute] = true
		}
	}
	if len(used) < 2 {
		t.Errorf("8 jobs used only %d rack nodes: %v", len(used), used)
	}
}

func TestRackCrossNodeTransfer(t *testing.T) {
	// Pin a producer to one node's view and let the consumer be scheduled
	// anywhere: the transfer must work across the fabric (migration path).
	rt := rackRuntime(t, 2, 1)
	j := dataflow.NewJob("cross")
	payload := []byte("bytes over the fabric")
	a := j.Task("produce", dataflow.Props{Ops: 1e6, OutputBytes: 4096}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(4096)
		if err != nil {
			return err
		}
		f := out.WriteAsync(ctx.Now(), 0, payload)
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	b := j.Task("consume", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		got := make([]byte, len(payload))
		f := in.ReadAsync(ctx.Now(), 0, got)
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		if string(got) != string(payload) {
			return fmt.Errorf("cross-node payload = %q", got)
		}
		return nil
	})
	a.Then(b)
	if _, err := rt.Run(j); err != nil {
		t.Fatal(err)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestRackFarMemoryReachableFromAllNodes(t *testing.T) {
	rt := rackRuntime(t, 4, 2)
	topo := rt.Topology()
	for n := 0; n < 4; n++ {
		cpu := fmt.Sprintf("rack/node%d/cpu0", n)
		for m := 0; m < 2; m++ {
			far := fmt.Sprintf("rack/memnode%d/far0", m)
			caps, ok := topo.EffectiveCaps(cpu, far)
			if !ok {
				t.Fatalf("%s cannot reach %s", cpu, far)
			}
			if !caps.Remote || caps.Sync {
				t.Errorf("far memory from %s must be remote+async", cpu)
			}
		}
	}
}
