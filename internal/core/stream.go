package core

// Streaming dataflows as a served scenario (Server.SubmitStream): an
// unbounded stream.Source feeds incremental re-execution window by window.
// Each window is a bounded sub-DAG stamped from the spec's template and
// submitted through the ordinary serving path — pre-admitted, overlapped
// inside serving epochs with the rest of the traffic — so every per-window
// report inherits the engine's core guarantee: byte-identical to running
// that window alone, at any EpochWorkers.
//
// The driver pulls WindowSize events, instantiates the window job, and
// keeps at most MaxInFlight windows submitted; the source is not pulled
// while the stream sits at the bound, which is the whole backpressure
// story — deterministic, because it is a pure function of window
// completion order, and windows retire strictly oldest-first.
//
// Watermarks advance in virtual time: when window w retires, the stream's
// watermark grows by w's virtual makespan, so the watermark is the virtual
// time a single-worker replay of the retired prefix would have consumed —
// a pure function of the event stream, independent of wall-clock speed or
// pool size.
//
// Fault tolerance composes with the existing Checkpointer. Window tasks
// checkpoint under the per-window namespace "<stream>/w%06d" (forgotten at
// window completion, like any served job), and each retirement writes a
// marker snapshot "__window__%06d" under the stream's own namespace
// carrying the window's makespan. A crashed stream — its context canceled
// mid-window — keeps everything: the canceled window's partial task
// snapshots survive because windows carry an external ResumeID (the same
// rule that preserves a dead shard's checkpoints for failover), and
// markers live under the stream namespace, which only a terminal outcome
// forgets. Resuming (SubmitStream with opts.ResumeID = the crashed
// ticket's ResumeID) scans the markers, rebuilds the watermark from their
// recorded makespans, skips the completed windows without re-delivering
// their reports, and re-runs the first incomplete window with
// RecoveryPolicy.PartialReplay restoring its checkpointed prefix — its
// report shows SkippedTasks > 0. Windows after the resume point are
// re-run from scratch (their partial state from the crashed run is
// dropped), keeping the resumed run a deterministic function of the
// marker high-water mark alone.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// ErrStreamCanceled is the terminal error of a stream whose context was
// canceled (StreamTicket.Cancel or the submission context ending).
var ErrStreamCanceled = errors.New("core: stream canceled")

// StreamTicket is a live streaming submission: per-window reports arrive
// in window order on Reports, the watermark advances as windows retire,
// and the stream ends when the source drains (or Drain is called), the
// context is canceled, or a window fails terminally.
type StreamTicket struct {
	id      string
	reports chan *Report
	cancel  context.CancelFunc
	done    chan struct{}
	drain   chan struct{}

	cancelOnce sync.Once
	drainOnce  sync.Once

	mu        sync.Mutex
	watermark time.Duration
	windows   int
	skipped   int
	err       error
}

// ResumeID is the stream's checkpoint namespace. After a crash (Cancel or
// context cancellation), submitting the same spec with
// SubmitOptions{ResumeID: t.ResumeID()} resumes from the last completed
// window. Empty when the server runs without ServerConfig.Recovery.
func (t *StreamTicket) ResumeID() string { return t.id }

// Reports yields the retired windows' reports in window order. The
// channel is closed when the stream ends; consumers must drain it — a
// stream whose reports are not consumed stops retiring windows once the
// channel's buffer (the in-flight bound) fills, which stalls the source.
func (t *StreamTicket) Reports() <-chan *Report { return t.reports }

// Watermark is the stream's virtual-time high-water mark: the sum of all
// retired windows' virtual makespans, including windows skipped by a
// resume (their recorded makespans are replayed from the retirement
// markers).
func (t *StreamTicket) Watermark() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.watermark
}

// Windows is the number of windows retired by this run (excluding windows
// a resume skipped).
func (t *StreamTicket) Windows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.windows
}

// SkippedWindows is the number of completed windows a resume skipped from
// their retirement markers instead of re-executing.
func (t *StreamTicket) SkippedWindows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.skipped
}

// Done is closed when the stream has ended and Err is final.
func (t *StreamTicket) Done() <-chan struct{} { return t.done }

// Err returns the stream's terminal error: nil after a clean drain,
// ErrStreamCanceled (wrapping the context cause) after a cancel, or the
// first window's terminal failure. Valid once Done is closed.
func (t *StreamTicket) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Cancel stops the stream without waiting: in-flight windows are canceled
// at their next task boundary. It is the simulated crash — checkpointed
// window state and retirement markers are kept so a later SubmitStream
// with this ticket's ResumeID resumes from the last completed window.
func (t *StreamTicket) Cancel() { t.cancelOnce.Do(t.cancel) }

// Drain stops pulling the source, lets the in-flight windows retire, and
// waits for the stream to end (or ctx). The reports channel must still be
// consumed while draining. A nil ctx means context.Background().
func (t *StreamTicket) Drain(ctx context.Context) error {
	t.drainOnce.Do(func() { close(t.drain) })
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-t.done:
		return t.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// draining reports whether Drain was requested.
func (t *StreamTicket) draining() bool {
	select {
	case <-t.drain:
		return true
	default:
		return false
	}
}

// setErr records the terminal error (first writer wins).
func (t *StreamTicket) setErr(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// streamWindowNS is the checkpoint namespace of one window's task
// snapshots: "<stream>/w%06d". Forgetting it (at window completion, the
// ordinary served-job GC) never touches the stream's retirement markers,
// which live directly under the stream namespace; forgetting the stream
// namespace drops both.
func streamWindowNS(streamID string, idx int) string {
	return fmt.Sprintf("%s/w%06d", streamID, idx)
}

// streamMarker is the retirement-marker task name of window idx under the
// stream namespace.
func streamMarker(idx int) string { return fmt.Sprintf("__window__%06d", idx) }

// SubmitStream admits a streaming dataflow: the spec's source is cut into
// windows, each window instantiated from the spec's template and executed
// on the serving pool, with at most spec.MaxInFlight windows in flight
// and reports retired strictly in window order. Accepts at most one
// SubmitOptions, sharing the unified submission surface with
// Submit/SubmitAsync: Shard labels the windows' reports, BestEffort
// down-tiers them, and ResumeID resumes a crashed stream from its last
// completed window (requires ServerConfig.Recovery). Streams bypass the
// SLO admission model — their windows are submitted pre-admitted, since
// an unbounded source has no finite makespan estimate to admit against.
//
// The stream runs until the source drains, Drain or Cancel is called, the
// submission context ends, or a window fails terminally (after the
// recovery policy's retries, when configured). Close the server only
// after the stream ends; a mid-stream Close fails the stream's next
// window submission with ErrServerClosed.
func (s *Server) SubmitStream(ctx context.Context, spec stream.Spec, opts ...SubmitOptions) (*StreamTicket, error) {
	opt, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opt.ResumeID != "" && s.rec == nil {
		return nil, errors.New("core: stream ResumeID requires ServerConfig.Recovery")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.gate.RLock()
	closed := s.closed
	s.gate.RUnlock()
	if closed {
		return nil, ErrServerClosed
	}

	id := opt.ResumeID
	if id == "" && s.rec != nil {
		id = s.rec.ck.NewRunID(spec.Name)
	}
	cctx, cancel := context.WithCancel(ctx)
	t := &StreamTicket{
		id:      id,
		reports: make(chan *Report, spec.InFlight()),
		cancel:  cancel,
		done:    make(chan struct{}),
		drain:   make(chan struct{}),
	}
	s.rt.tel.Add(telemetry.LayerRuntime, "server_streams", 1)
	go s.streamDriver(cctx, spec, opt, t, opt.ResumeID != "")
	return t, nil
}

// streamDriver is the stream's pump: resume scan, window submission with
// the in-flight bound, in-order retirement, watermark and marker
// bookkeeping, and terminal cleanup.
func (s *Server) streamDriver(ctx context.Context, spec stream.Spec, opt SubmitOptions, t *StreamTicket, resumed bool) {
	defer close(t.done)
	defer close(t.reports)
	defer t.cancel()

	next, ok := s.streamResumeScan(spec, t, resumed)
	if !ok {
		return
	}
	resumeFrom := next

	type inflight struct {
		idx int
		tk  *Ticket
	}
	var q []inflight
	maxInFlight := spec.InFlight()
	eof := false

	// terminate cancels and awaits the in-flight windows, then settles the
	// namespace: kept after a cancel (the simulated crash — resume replays
	// it), forgotten on any terminal outcome (clean drain or failure).
	terminate := func(err error) {
		t.setErr(err)
		t.cancel()
		for _, f := range q {
			f.tk.Wait(nil) //nolint:errcheck // the server always delivers
		}
		if s.rec != nil && t.id != "" {
			if canceled := errors.Is(err, ErrStreamCanceled); !canceled {
				s.rec.ck.Forget(t.id)
			}
		}
	}

	for {
		// Fill the pipeline up to the in-flight bound. The source is only
		// pulled here — at the bound, or once draining, it stays untouched.
		for !eof && !t.draining() && ctx.Err() == nil && len(q) < maxInFlight {
			events, more := stream.Pull(spec.Source, spec.WindowSize)
			if !more {
				eof = true
			}
			if len(events) == 0 {
				break
			}
			job, err := spec.Instantiate(next, events)
			if err != nil {
				terminate(err)
				return
			}
			wopt := SubmitOptions{
				Shard: opt.Shard, Preadmitted: true, BestEffort: opt.BestEffort,
			}
			if s.rec != nil {
				wopt.ResumeID = streamWindowNS(t.id, next)
				if resumed && next != resumeFrom {
					// Only the resume point replays the crashed attempt's
					// partial checkpoints. Later windows may also have been
					// mid-flight at the crash, but how far they got is
					// wall-clock accident — drop their state so the resumed
					// run is a function of the marker high-water mark alone.
					s.rec.ck.Forget(wopt.ResumeID)
				}
			}
			tk, err := s.SubmitAsync(ctx, job, wopt)
			if err != nil {
				terminate(fmt.Errorf("core: stream %s window %d: %w", spec.Name, next, err))
				return
			}
			q = append(q, inflight{idx: next, tk: tk})
			next++
		}
		if len(q) == 0 {
			if ctx.Err() != nil && !eof && !t.draining() {
				terminate(fmt.Errorf("%w: %w", ErrStreamCanceled, context.Cause(ctx)))
				return
			}
			terminate(nil) // clean drain: source exhausted, everything retired
			return
		}

		// Retire the oldest window; younger in-flight mates keep executing.
		head := q[0]
		rep, err := head.tk.Wait(nil)
		if err != nil {
			if ctx.Err() != nil {
				terminate(fmt.Errorf("%w: %w", ErrStreamCanceled, context.Cause(ctx)))
				return
			}
			terminate(fmt.Errorf("core: stream %s window %d: %w", spec.Name, head.idx, err))
			return
		}
		q = q[1:]
		if s.rec != nil {
			// Retirement marker: window idx completed with this makespan.
			// Written before the report is delivered, so a crash between
			// the two re-runs the window (deterministically) rather than
			// losing it.
			payload := make([]byte, 8)
			binary.BigEndian.PutUint64(payload, uint64(rep.Makespan))
			if _, err := s.rec.ck.snapshot(t.id, streamMarker(head.idx), payload, true); err != nil {
				terminate(err)
				return
			}
		}
		t.mu.Lock()
		t.watermark += rep.Makespan
		t.windows++
		t.mu.Unlock()
		s.rt.tel.Add(telemetry.LayerRuntime, "server_stream_windows", 1)
		select {
		case t.reports <- rep:
		case <-ctx.Done():
			terminate(fmt.Errorf("%w: %w", ErrStreamCanceled, context.Cause(ctx)))
			return
		}
	}
}

// streamResumeScan walks the stream's retirement markers on a resume:
// every marked window is skipped — its recorded makespan advances the
// watermark, its report is not re-delivered — and the scan stops at the
// first unmarked window, the resume point. The skipped windows' events
// are pulled off the source and discarded so the resume point sees the
// same events it saw before the crash. Returns the resume point and
// whether the stream may proceed.
func (s *Server) streamResumeScan(spec stream.Spec, t *StreamTicket, resumed bool) (int, bool) {
	if !resumed || s.rec == nil {
		return 0, true
	}
	next := 0
	for {
		if _, ok := s.rec.ck.lookup(t.id, streamMarker(next)); !ok {
			break
		}
		data, _, _, err := s.rec.ck.restore(t.id, streamMarker(next))
		if err != nil {
			t.setErr(err)
			return 0, false
		}
		if len(data) != 8 {
			t.setErr(fmt.Errorf("core: stream %s window %d: malformed retirement marker", spec.Name, next))
			return 0, false
		}
		t.mu.Lock()
		t.watermark += time.Duration(binary.BigEndian.Uint64(data))
		t.skipped++
		t.mu.Unlock()
		next++
	}
	for i := 0; i < next*spec.WindowSize; i++ {
		if _, ok := spec.Source.Next(); !ok {
			break
		}
	}
	if next > 0 {
		s.rt.tel.Add(telemetry.LayerRuntime, "server_stream_resumed", 1)
	}
	return next, true
}
