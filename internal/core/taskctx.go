package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// taskCtx implements dataflow.Ctx: the window through which a task body
// talks to the RTS. All time is virtual; every region operation both moves
// real bytes and advances the task's clock by the simulated cost.
type taskCtx struct {
	run     *run
	task    *dataflow.Task
	compute *topology.ComputeDevice
	now     time.Duration
	owner   region.Owner

	inputs       []*region.Handle
	scratch      []*region.Handle
	output       *region.Handle
	globalShares map[string]*region.Handle
	regions      map[string]string // label → device (for the report)
	logs         []string

	// view is the task's private causal clock view (wavefront executor);
	// nil falls back to the run's shared epoch. rank is the task's
	// deterministic topological rank, fence its rank-order barrier — both
	// are installed by the dispatcher.
	view  *topology.TaskView
	rank  int
	fence region.Fence
	// events is the task's virtual memory-ledger journal, published to the
	// run on successful completion (wavefront.go); evseq orders same-time
	// entries within the task.
	events []memEvent
	evseq  int
	// ckRestoreCost is the snapshot Put price stashed by checkpointTask;
	// on full completion it becomes the entry's deterministic replay price
	// (Checkpointer.record).
	ckRestoreCost time.Duration
}

// clock is the virtual-time view this task's allocations and accesses are
// priced against.
func (c *taskCtx) clock() topology.VClock {
	if c.view != nil {
		return c.view
	}
	return c.run.epoch
}

// Now implements dataflow.Ctx.
func (c *taskCtx) Now() time.Duration { return c.now }

// Compute implements dataflow.Ctx.
func (c *taskCtx) Compute() string { return c.compute.ID }

// Charge implements dataflow.Ctx: ops scalar operations on this device.
func (c *taskCtx) Charge(ops float64) {
	if ops <= 0 {
		return
	}
	c.now += time.Duration(ops / (c.compute.Gops * 1e9) * float64(time.Second))
}

// Wait implements dataflow.Ctx.
func (c *taskCtx) Wait(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// scratchReq builds the requirements for task-local memory from the task's
// declarative properties. A persistent demand relaxes the latency class to
// at least medium: persistent media are never sub-200ns in Table 1 (the
// paper's Fig. 2 annotations are aspirational; see EXPERIMENTS.md).
func scratchReq(p dataflow.Props) props.Requirements {
	req := props.Requirements{Confidential: p.Confidential}
	if p.MemLatency != props.LatencyAny {
		req.Latency = p.MemLatency
	}
	if p.Persistent {
		req.Persistent = props.Require
		if req.Latency != props.LatencyAny && req.Latency < props.LatencyMedium {
			req.Latency = props.LatencyMedium
		}
	}
	return req
}

// Scratch implements dataflow.Ctx: thread-local Private Scratch (Table 2).
func (c *taskCtx) Scratch(name string, size int64) (*region.Handle, error) {
	req := scratchReq(c.task.Props())
	class := props.PrivateScratch
	if req.Persistent == props.Require {
		// Private Scratch's low-latency class default conflicts with
		// persistent media (Table 1 has no sub-200ns persistent device);
		// honour persistence with an equivalent Custom request at relaxed
		// latency instead of letting the class default re-tighten it.
		class = props.Custom
		req.Latency = props.LatencyMedium
		req.Sync = props.Require
		req.ByteAddr = props.Require
		req.PreferLocal = true
	}
	h, err := c.run.rt.regions.Alloc(region.Spec{
		Name: name, Class: class, Size: size,
		Req: req, Owner: c.owner, Compute: c.compute.ID, Now: c.now,
		Clock: c.clock(),
	})
	if err != nil {
		return nil, err
	}
	h.Rebind(c.clock(), c.rank, c.fence)
	c.noteAlloc(h, size)
	c.scratch = append(c.scratch, h)
	c.noteRegion(name, h)
	return h, nil
}

// Output implements dataflow.Ctx: the region handed to successors (Fig. 4).
func (c *taskCtx) Output(size int64) (*region.Handle, error) {
	if c.output != nil {
		return nil, errors.New("core: task already allocated its output")
	}
	class := props.Transfer
	if len(c.task.Succs()) > 1 {
		// Several consumers: the output must be shareable, i.e. Global
		// Scratch (Table 2's "data exchange" region).
		class = props.GlobalScratch
	}
	req := scratchReq(c.task.Props())
	req.Persistent = props.Any // outputs are in-flight data, not task state
	if class == props.GlobalScratch && req.Latency != props.LatencyAny && req.Latency < props.LatencyMedium {
		req.Latency = props.LatencyMedium // coherent+shareable is never sub-200ns here
	}
	h, err := c.run.rt.regions.Alloc(region.Spec{
		Name: c.task.ID() + "/out", Class: class, Size: size,
		Req: req, Owner: c.owner, Compute: c.compute.ID, Now: c.now,
		Clock: c.clock(),
	})
	if err != nil {
		return nil, err
	}
	h.Rebind(c.clock(), c.rank, c.fence)
	c.noteAlloc(h, size)
	c.output = h
	c.noteRegion("out", h)
	return h, nil
}

// Inputs implements dataflow.Ctx.
func (c *taskCtx) Inputs() []*region.Handle {
	return append([]*region.Handle(nil), c.inputs...)
}

// Global implements dataflow.Ctx: job-wide named regions, allocated on
// first use with a placement addressable by every scheduled compute device
// (§2.2 challenge (2)), then shared with each requesting task.
func (c *taskCtx) Global(name string, class props.RegionClass, size int64) (*region.Handle, error) {
	if c.globalShares == nil {
		c.globalShares = make(map[string]*region.Handle)
	}
	if h, ok := c.globalShares[name]; ok {
		return h, nil
	}
	c.run.smu.Lock()
	g, ok := c.run.globals[name]
	c.run.smu.Unlock()
	if !ok {
		// First use: fence on rank order so the creating task — whose
		// compute device anchors the placement — is the same task a
		// sequential run would pick, regardless of wall-clock arrival.
		// After the fence every lower rank has completed, so a re-check
		// either finds the global or makes this task its deterministic
		// creator (two concurrent creators are impossible: the higher rank
		// blocks at its fence until the lower one finishes).
		if c.fence != nil {
			// Full barrier (nil deps): any lower rank could be the
			// deterministic creator, so all of them must retire first.
			if err := c.fence(nil); err != nil {
				return nil, err
			}
			c.run.smu.Lock()
			g, ok = c.run.globals[name]
			c.run.smu.Unlock()
		}
	}
	if !ok {
		if !class.Shareable() {
			return nil, fmt.Errorf("core: global %q needs a shareable class, got %s", name, class)
		}
		req, err := props.Merge(class.Defaults(), props.Requirements{Capacity: size})
		if err != nil {
			return nil, err
		}
		// Place for the union of compute devices this job uses.
		if shared, ok := c.run.rt.placer.(interface {
			PlaceShared(props.Requirements, []string) (string, error)
		}); ok {
			computes := c.run.scheduledComputes()
			if dev, err := shared.PlaceShared(req, computes); err == nil {
				h, err := c.run.rt.regions.Alloc(region.Spec{
					Name: name, Class: class, Size: size,
					Owner: region.Owner(c.run.ns), Compute: c.pinCompute(dev),
					Device: dev, Clock: c.clock(),
				})
				if err == nil {
					g = &globalEntry{handle: h, class: class, shared: map[string]*region.Handle{}}
				}
			}
		}
		if g == nil {
			h, err := c.run.rt.regions.Alloc(region.Spec{
				Name: name, Class: class, Size: size,
				Owner: region.Owner(c.run.ns), Compute: c.compute.ID,
				Clock: c.clock(),
			})
			if err != nil {
				return nil, err
			}
			g = &globalEntry{handle: h, class: class, shared: map[string]*region.Handle{}}
		}
		c.noteAlloc(g.handle, size)
		c.run.smu.Lock()
		c.run.globals[name] = g
		c.run.smu.Unlock()
		dev, _ := g.handle.DeviceID()
		c.noteDevice(name, dev)
	}
	sh, err := g.handle.Share(c.owner, c.compute.ID)
	if err != nil {
		return nil, fmt.Errorf("core: sharing global %q: %w", name, err)
	}
	// The share inherited the creator's clock view; rebind it to this
	// task's own before any access is priced through it.
	sh.Rebind(c.clock(), c.rank, c.fence)
	c.noteShare(sh)
	c.globalShares[name] = sh
	c.noteRegion(name, sh)
	return sh, nil
}

// pinCompute finds a compute device that can address dev, preferring the
// task's own; used to steer the global allocation to the co-placed device.
func (c *taskCtx) pinCompute(dev string) string {
	if c.run.rt.topo.Addressable(c.compute.ID, dev) {
		return c.compute.ID
	}
	for _, comp := range c.run.rt.topo.Computes() {
		if c.run.rt.topo.Addressable(comp.ID, dev) {
			return comp.ID
		}
	}
	return c.compute.ID
}

// scheduledComputes lists the distinct compute devices the schedule uses.
func (r *run) scheduledComputes() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range r.schedule.Assignments {
		if !seen[a.Compute] {
			seen[a.Compute] = true
			out = append(out, a.Compute)
		}
	}
	return out
}

// Log implements dataflow.Ctx.
func (c *taskCtx) Log(format string, args ...any) {
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
}

// Telemetry implements dataflow.Ctx.
func (c *taskCtx) Telemetry() *telemetry.Registry { return c.run.rt.tel }

// noteRegion records the placement of a labelled region for the report.
func (c *taskCtx) noteRegion(label string, h *region.Handle) {
	if dev, err := h.DeviceID(); err == nil {
		c.regions[label] = dev
	}
}

func (c *taskCtx) noteDevice(label, dev string) { c.regions[label] = dev }

// releaseScratchAndInputs frees task-lifetime regions after the body ran.
// Only releases that actually dropped a claim are journaled: a handle the
// task already released itself stays live in the ledger until its true last
// release (or run end).
func (c *taskCtx) releaseScratchAndInputs() {
	for _, h := range c.scratch {
		if h.Release() == nil { //nolint:errcheck // may already be released by the task
			c.noteRelease(h)
		}
	}
	c.scratch = nil
	for _, h := range c.inputs {
		if h.Release() == nil { //nolint:errcheck // may already be released by the task
			c.noteRelease(h)
		}
	}
	c.inputs = nil
}

// releaseAll is the failure-path teardown.
func (c *taskCtx) releaseAll() {
	c.releaseScratchAndInputs()
	if c.output != nil {
		c.output.Release() //nolint:errcheck // best-effort teardown
		c.output = nil
	}
	for _, h := range c.globalShares {
		h.Release() //nolint:errcheck // best-effort teardown
	}
	c.globalShares = nil
}

// Compile-time check that taskCtx satisfies the programming-model contract.
var _ dataflow.Ctx = (*taskCtx)(nil)

// BestFitPlacer is re-exported so API users can reference the default
// optimizer without importing internal/placement directly.
type BestFitPlacer = placement.BestFit
