package core

// Tests for overlapped batch execution: whole jobs of one serving batch run
// concurrently on the shared worker pool, yet every member's report stays a
// pure function of its own job — byte-identical to a solo run at any pool
// size — and a failing or retrying batch mate leaves the others untouched.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// submitOneBatch forces the given jobs into a single overlapped batch: a
// blocking holder parks the server's only epoch worker, the jobs are
// admitted asynchronously while it is held, and releasing the holder lets
// the next collection sweep them all up in submission order.
func submitOneBatch(t *testing.T, s *Server, jobs []*dataflow.Job) []*Ticket {
	t.Helper()
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), blockingJob("holder", started, release)); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-started // the single epoch worker is parked inside the holder's task
	tks := make([]*Ticket, len(jobs))
	for i, j := range jobs {
		tk, err := s.SubmitAsync(context.Background(), j)
		if err != nil {
			t.Fatalf("SubmitAsync %s: %v", j.Name(), err)
		}
		tks[i] = tk
	}
	close(release)
	wg.Wait()
	return tks
}

// overlapMixJobs is the determinism workload: two fan-out jobs exercising
// coherence fences, private scratch, and fence-gated job-globals, plus two
// linear pipelines, all competing for one shared pool.
func overlapMixJobs() []*dataflow.Job {
	return []*dataflow.Job{
		wideJob("wide-a", 8),
		pipelineJob("pipe-b"),
		wideJob("wide-c", 6),
		pipelineJob("pipe-d"),
	}
}

// requireSoloEqual asserts the served report matches the job's solo Run on
// an idle runtime in every virtual dimension — the overlap mode's isolation
// contract (batch fields are serving-side metadata and differ by design).
func requireSoloEqual(t *testing.T, label string, got, solo *Report) {
	t.Helper()
	if got.Makespan != solo.Makespan {
		t.Fatalf("%s: makespan %v != solo %v", label, got.Makespan, solo.Makespan)
	}
	if !reflect.DeepEqual(got.Tasks, solo.Tasks) {
		for id, tr := range solo.Tasks {
			if !reflect.DeepEqual(got.Tasks[id], tr) {
				t.Fatalf("%s: task %s: %+v != solo %+v", label, id, got.Tasks[id], tr)
			}
		}
		t.Fatalf("%s: task reports diverge from solo", label)
	}
	if !reflect.DeepEqual(got.PeakDeviceBytes, solo.PeakDeviceBytes) {
		t.Fatalf("%s: peak %v != solo %v", label, got.PeakDeviceBytes, solo.PeakDeviceBytes)
	}
	if !reflect.DeepEqual(got.FinalOutputs, solo.FinalOutputs) {
		t.Fatalf("%s: final outputs %v != solo %v", label, got.FinalOutputs, solo.FinalOutputs)
	}
}

// TestServeOverlapDeterministicAcrossWorkerCounts is the overlapped-mode
// determinism gate: a four-job batch executed on pools of 1, 4, and
// GOMAXPROCS workers must produce byte-identical per-job reports, each
// additionally identical (modulo batch metadata) to the job's solo Run.
func TestServeOverlapDeterministicAcrossWorkerCounts(t *testing.T) {
	solo := make([]*Report, 0, 4)
	for _, j := range overlapMixJobs() {
		rt, err := New(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(j)
		if err != nil {
			t.Fatal(err)
		}
		solo = append(solo, rep)
	}

	var want []*Report
	for _, w := range []int{1, 4, goruntime.GOMAXPROCS(0)} {
		// Repeat each pool size a few times: a race that perturbs virtual
		// time is unlikely to strike the first run.
		for rep := 0; rep < 3; rep++ {
			rt, err := New(Config{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewServer(ServerConfig{
				Runtime: rt, EpochWorkers: 1, MaxBatch: 8, QueueDepth: 16, Block: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			tks := submitOneBatch(t, s, overlapMixJobs())
			got := make([]*Report, len(tks))
			for i, tk := range tks {
				r, err := tk.Wait(context.Background())
				if err != nil {
					t.Fatalf("workers=%d job %d: %v", w, i, err)
				}
				got[i] = r
			}
			if err := s.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
			if live := rt.Regions().Live(); live != 0 {
				t.Fatalf("workers=%d: leaked %d regions", w, live)
			}
			for i, r := range got {
				if r.BatchSize != len(got) || r.BatchIndex != i || !r.Overlapped {
					t.Fatalf("workers=%d job %d: batch fields = (%d,%d,%v), want (%d,%d,true)",
						w, i, r.BatchSize, r.BatchIndex, r.Overlapped, len(got), i)
				}
				requireSoloEqual(t, fmt.Sprintf("workers=%d job %d", w, i), r, solo[i])
			}
			if want == nil {
				want = got
				continue
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("workers=%d rep=%d job %d: full report diverges:\n%+v\n!=\n%+v",
						w, rep, i, got[i], want[i])
				}
			}
		}
	}
}

// TestServeOverlapFaultIsolation fails one member mid-batch while its mates
// are in flight on the same pool: only the bad submitter sees the error,
// the mates' reports stay byte-identical to solo runs, and the epoch drains
// without leaking a region.
func TestServeOverlapFaultIsolation(t *testing.T) {
	soloA := mustSoloRun(t, wideJob("good-a", 8))
	soloC := mustSoloRun(t, wideJob("good-c", 6))

	boom := errors.New("boom")
	bad := dataflow.NewJob("bad")
	bad.Task("explode", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		if _, err := ctx.Scratch("tmp", 1<<16); err != nil {
			return err
		}
		return boom
	})

	rt, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{
		Runtime: rt, EpochWorkers: 1, MaxBatch: 8, QueueDepth: 16, Block: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tks := submitOneBatch(t, s, []*dataflow.Job{wideJob("good-a", 8), bad, wideJob("good-c", 6)})

	repA, errA := tks[0].Wait(context.Background())
	_, errBad := tks[1].Wait(context.Background())
	repC, errC := tks[2].Wait(context.Background())
	if errA != nil || errC != nil {
		t.Fatalf("good jobs failed: %v, %v", errA, errC)
	}
	if !errors.Is(errBad, boom) {
		t.Fatalf("bad job err = %v, want %v", errBad, boom)
	}
	requireSoloEqual(t, "good-a", repA, soloA)
	requireSoloEqual(t, "good-c", repC, soloC)
	for i, r := range []*Report{repA, nil, repC} {
		if r == nil {
			continue
		}
		if r.BatchSize != 3 || r.BatchIndex != i || !r.Overlapped {
			t.Errorf("job %d: batch fields = (%d,%d,%v), want (3,%d,true)",
				i, r.BatchSize, r.BatchIndex, r.Overlapped, i)
		}
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	tel := rt.Telemetry()
	if got := tel.Counter(telemetry.LayerRuntime, "server_failed"); got != 1 {
		t.Errorf("server_failed = %d, want 1", got)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions after mid-batch failure", live)
	}
	for dev, bytes := range rt.Regions().DeviceBytes() {
		if bytes != 0 {
			t.Errorf("device %s holds %d bytes after drain", dev, bytes)
		}
	}
}

func mustSoloRun(t *testing.T, j *dataflow.Job) *Report {
	t.Helper()
	rt, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServeOverlapRecoveryIsolation retries one member inside a live
// overlapped batch: the flaky job recovers on its second attempt while its
// mates' reports stay byte-identical to the same batch served with no fault
// at all.
func TestServeOverlapRecoveryIsolation(t *testing.T) {
	batch := func() []*dataflow.Job {
		return []*dataflow.Job{wideJob("good-a", 8), pipelineJob("flaky"), wideJob("good-b", 6)}
	}
	serve := func(inj *fault.Injector) ([]*Report, []error, *Server) {
		s := newRecoveryServer(t, inj,
			RecoveryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
			ServerConfig{EpochWorkers: 1, MaxBatch: 8, QueueDepth: 16, Block: true})
		tks := submitOneBatch(t, s, batch())
		reps := make([]*Report, len(tks))
		errs := make([]error, len(tks))
		for i, tk := range tks {
			reps[i], errs[i] = tk.Wait(context.Background())
		}
		return reps, errs, s
	}

	clean, cleanErrs, _ := serve(fault.NewInjector(1, 0, 1)) // no faults
	inj := fault.NewInjector(1, 0, 1)
	inj.Kill("ingest", 1) // flaky's first task dies once, mid-batch
	reps, errs, s := serve(inj)

	for i := range cleanErrs {
		if cleanErrs[i] != nil || errs[i] != nil {
			t.Fatalf("job %d: errs = %v / %v, want success", i, cleanErrs[i], errs[i])
		}
	}
	if reps[1].Attempts != 2 {
		t.Errorf("flaky attempts = %d, want 2", reps[1].Attempts)
	}
	// The mates must be oblivious to the mid-batch retry: identical reports
	// whether their neighbour failed-and-recovered or sailed through.
	for _, i := range []int{0, 2} {
		if !reflect.DeepEqual(reps[i], clean[i]) {
			t.Errorf("job %d: report differs between faulty and clean batches:\n%+v\n!=\n%+v",
				i, reps[i], clean[i])
		}
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	tel := s.Runtime().Telemetry()
	if got := tel.Counter(telemetry.LayerFault, "job_retries"); got != 1 {
		t.Errorf("job_retries = %d, want 1", got)
	}
	if got := s.Checkpointer().Snapshots(); got != 0 {
		t.Errorf("snapshots after drain = %d, want 0", got)
	}
	if live := s.Runtime().Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
}

// TestServeSequentialModeMatchesRunAll pins the legacy knob: with
// ServerConfig.Sequential the batch runs job-after-job against the shared
// epoch backlog (RunAll's virtual-contention semantics) and reports say so.
func TestServeSequentialModeMatchesRunAll(t *testing.T) {
	rt, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{
		Runtime: rt, EpochWorkers: 1, MaxBatch: 8, QueueDepth: 16, Block: true,
		Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background()) //nolint:errcheck
	tks := submitOneBatch(t, s, []*dataflow.Job{pipelineJob("seq-a"), pipelineJob("seq-b")})
	var reps []*Report
	for i, tk := range tks {
		rep, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		reps = append(reps, rep)
	}
	for i, r := range reps {
		if r.Overlapped {
			t.Errorf("job %d: Overlapped = true in sequential mode", i)
		}
		if r.BatchSize != 2 || r.BatchIndex != i {
			t.Errorf("job %d: batch fields = (%d,%d), want (2,%d)", i, r.BatchSize, r.BatchIndex, i)
		}
	}
	// Virtual contention: the second member queues behind the backlog the
	// first absorbed into the shared epoch, so it cannot finish earlier.
	if reps[1].Makespan < reps[0].Makespan {
		t.Errorf("sequential member 1 makespan %v < member 0 %v, want queued-behind",
			reps[1].Makespan, reps[0].Makespan)
	}
}

// TestTicketDoneAndID covers the asynchronous handle itself: Done closes
// exactly when the report is ready, Wait honours its context, and IDs are
// unique and ascending in admission order.
func TestTicketDoneAndID(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 4, QueueDepth: 8, Block: true})
	tkA, err := s.SubmitAsync(context.Background(), pipelineJob("tk-a"))
	if err != nil {
		t.Fatal(err)
	}
	tkB, err := s.SubmitAsync(context.Background(), pipelineJob("tk-b"))
	if err != nil {
		t.Fatal(err)
	}
	if tkA.ID() == tkB.ID() || tkB.ID() < tkA.ID() {
		t.Errorf("ticket IDs = %d, %d, want unique ascending", tkA.ID(), tkB.ID())
	}
	// Wait with an already-canceled context must not consume the result.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tkA.Wait(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait(canceled) err = %v, want context.Canceled", err)
	}
	repA, err := tkA.Wait(context.Background())
	if err != nil || repA == nil {
		t.Fatalf("Wait after canceled Wait: rep=%v err=%v", repA, err)
	}
	<-tkA.Done()
	<-tkB.Done()
	if rep, err := tkB.Wait(context.Background()); err != nil || rep == nil {
		t.Fatalf("tkB: rep=%v err=%v", rep, err)
	}
	// A second Wait returns the same settled result.
	again, err := tkA.Wait(context.Background())
	if err != nil || again != repA {
		t.Errorf("repeated Wait: rep=%p want %p, err=%v", again, repA, err)
	}
}

// benchChainJob is a linear depth-stage pipeline with the same real-work
// body as benchWideJob's branches: payload copies through private scratch
// plus a wall-clock stall per stage. Its critical path is the whole job, so
// alone it cannot use a pool — only overlapping it with batch mates can.
func benchChainJob(name string, depth int, payload int64, stall time.Duration) *dataflow.Job {
	j := dataflow.NewJob(name)
	var prev *dataflow.Task
	for i := 0; i < depth; i++ {
		t := j.Task(fmt.Sprintf("stage%02d", i), dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
			scratch, err := ctx.Scratch("buf", payload)
			if err != nil {
				return err
			}
			chunk := make([]byte, 64<<10)
			for b := range chunk {
				chunk[b] = byte(b * 131)
			}
			for off := int64(0); off < payload; off += int64(len(chunk)) {
				now, err := scratch.WriteAt(ctx.Now(), off, chunk)
				if err != nil {
					return err
				}
				ctx.Wait(now)
			}
			if stall > 0 {
				time.Sleep(stall)
			}
			ctx.Charge(1e6)
			return nil
		})
		if prev != nil {
			prev.Then(t)
		}
		prev = t
	}
	return j
}

// BenchmarkServeOverlap is the serving-mode acceptance benchmark: a mixed
// batch — two wide fan-outs that can use the pool alone and two serial
// chains that cannot — served overlapped versus job-after-job on the same
// four-worker pool. Overlap lets the chains' stalls hide under the wides'
// waves (the gate records ≥1.3× wall-clock at workers=4); in overlap mode
// every member's virtual makespan is additionally asserted identical to its
// solo Workers=1 run — throughput never buys back determinism.
func BenchmarkServeOverlap(b *testing.B) {
	const (
		wideWidth  = 8
		chainDepth = 6
		payload    = 1 << 20
		stall      = 2 * time.Millisecond
	)
	batch := func(iter int) []*dataflow.Job {
		return []*dataflow.Job{
			benchWideJob(fmt.Sprintf("wide%d-0", iter), wideWidth, payload, stall),
			benchChainJob(fmt.Sprintf("chain%d-1", iter), chainDepth, payload, stall),
			benchWideJob(fmt.Sprintf("wide%d-2", iter), wideWidth, payload, stall),
			benchChainJob(fmt.Sprintf("chain%d-3", iter), chainDepth, payload, stall),
		}
	}
	// Solo Workers=1 references: virtual time must be batch- and
	// pool-size-invariant, so job names cannot matter either.
	refs := make([]time.Duration, 4)
	for i, j := range batch(-1) {
		rt, err := New(Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := rt.Run(j)
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = rep.Makespan
	}
	for _, mode := range []string{"overlap", "sequential"} {
		b.Run(mode, func(b *testing.B) {
			rt, err := New(Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			s, err := NewServer(ServerConfig{
				Runtime: rt, EpochWorkers: 1, MaxBatch: 8, QueueDepth: 64, Block: true,
				MaxLinger:  5 * time.Millisecond,
				Sequential: mode == "sequential",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close(context.Background()) //nolint:errcheck
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jobs := batch(i)
				tks := make([]*Ticket, len(jobs))
				for k, j := range jobs {
					tk, err := s.SubmitAsync(context.Background(), j)
					if err != nil {
						b.Fatal(err)
					}
					tks[k] = tk
				}
				for k, tk := range tks {
					rep, err := tk.Wait(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if mode == "overlap" && rep.Makespan != refs[k] {
						b.Fatalf("job %d makespan %v != solo reference %v", k, rep.Makespan, refs[k])
					}
				}
			}
			b.ReportMetric(float64(b.N*len(refs))/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
