package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataflow"
	"repro/internal/fault"
)

func newCkStore(t testing.TB) (*Checkpointer, *cluster.Fabric) {
	t.Helper()
	fabric := cluster.NewFabric(cluster.Config{})
	for i := 0; i < 8; i++ {
		if err := fabric.AddNode(fmt.Sprintf("ckmem%d", i), 1<<24); err != nil {
			t.Fatal(err)
		}
	}
	store, err := fault.NewErasureStore(fabric, fault.ErasureConfig{Data: 4, Parity: 2, SpanSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return NewCheckpointer(ckWithAutoFlush{store}), fabric
}

// ckWithAutoFlush seals spans on every Put so snapshots are immediately
// durable (a real deployment would group-commit; tests want determinism).
type ckWithAutoFlush struct {
	*fault.ErasureStore
}

func (s ckWithAutoFlush) Put(data []byte) (fault.ObjectID, time.Duration, error) {
	id, d, err := s.ErasureStore.Put(data)
	if err != nil {
		return id, d, err
	}
	d2, err := s.ErasureStore.Flush()
	return id, d + d2, err
}

// flakyJob builds a 3-task chain whose middle task fails the first
// `failures` executions; counters observe re-execution.
func flakyJob(failures int, execCounts map[string]*int) *dataflow.Job {
	j := dataflow.NewJob("flaky")
	remaining := failures
	count := func(id string) {
		if execCounts != nil {
			(*execCounts[id])++
		}
	}
	a := j.Task("produce", dataflow.Props{Ops: 1e4}, func(ctx dataflow.Ctx) error {
		count("produce")
		out, err := ctx.Output(64)
		if err != nil {
			return err
		}
		f := out.WriteAsync(ctx.Now(), 0, []byte("precious intermediate"))
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	b := j.Task("transform", dataflow.Props{Ops: 1e4}, func(ctx dataflow.Ctx) error {
		count("transform")
		if remaining > 0 {
			remaining--
			return errors.New("transient failure")
		}
		in := ctx.Inputs()[0]
		buf := make([]byte, 21)
		f := in.ReadAsync(ctx.Now(), 0, buf)
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		out, err := ctx.Output(64)
		if err != nil {
			return err
		}
		fw := out.WriteAsync(ctx.Now(), 0, bytes.ToUpper(buf))
		now, err = fw.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	c := j.Task("consume", dataflow.Props{Ops: 1e4}, func(ctx dataflow.Ctx) error {
		count("consume")
		in := ctx.Inputs()[0]
		buf := make([]byte, 21)
		f := in.ReadAsync(ctx.Now(), 0, buf)
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("final: %s", buf)
		return nil
	})
	a.Then(b)
	b.Then(c)
	return j
}

func TestRecoverySkipsCheckpointedTasks(t *testing.T) {
	rt := newRuntime(t)
	ck, _ := newCkStore(t)
	counts := map[string]*int{"produce": new(int), "transform": new(int), "consume": new(int)}
	job := flakyJob(1, counts)
	rep, attempts, err := rt.RunWithRecovery(job, ck, 3)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	// The producer ran once: its second "execution" was a restore.
	if *counts["produce"] != 1 {
		t.Errorf("produce executed %d times, want 1 (checkpoint must skip re-execution)", *counts["produce"])
	}
	if *counts["transform"] != 2 { // failed once, then succeeded
		t.Errorf("transform executed %d times, want 2", *counts["transform"])
	}
	if *counts["consume"] != 1 {
		t.Errorf("consume executed %d times, want 1", *counts["consume"])
	}
	// The data flowed through the restore intact.
	var final string
	for _, l := range rep.Tasks["consume"].Logs {
		if strings.Contains(l, "final:") {
			final = l
		}
	}
	if !strings.Contains(final, "PRECIOUS INTERMEDIATE") {
		t.Errorf("restored pipeline produced %q", final)
	}
	// The restore is visible in the report.
	restored := false
	for _, l := range rep.Tasks["produce"].Logs {
		if strings.Contains(l, "restored from checkpoint") {
			restored = true
		}
	}
	if !restored {
		t.Error("produce must be marked restored on the successful attempt")
	}
	// Snapshots are garbage-collected on success.
	if ck.Snapshots() != 0 {
		t.Errorf("snapshots after success = %d, want 0", ck.Snapshots())
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestRecoveryExhaustsAttempts(t *testing.T) {
	rt := newRuntime(t)
	ck, _ := newCkStore(t)
	job := flakyJob(99, nil) // never succeeds
	_, attempts, err := rt.RunWithRecovery(job, ck, 3)
	if err == nil {
		t.Fatal("permanently failing job must error")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error must mention attempts: %v", err)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestRecoverySurvivesStorageNodeCrash(t *testing.T) {
	// A memory node holding checkpoint shards crashes between attempts;
	// erasure coding must still restore the snapshot.
	rt := newRuntime(t)
	ck, fabric := newCkStore(t)
	counts := map[string]*int{"produce": new(int), "transform": new(int), "consume": new(int)}
	job := flakyJob(1, counts)

	// First attempt manually so we can crash a node before the retry; both
	// attempts share one submission ID so the retry sees the snapshots.
	id := ck.runID(job.Name())
	_, err := rt.execute(job, ck, id, false)
	if err == nil {
		t.Fatal("first attempt should fail (flaky task)")
	}
	if err := fabric.Crash("ckmem0"); err != nil {
		t.Fatal(err)
	}
	rep, err := rt.execute(job, ck, id, false)
	if err != nil {
		t.Fatalf("retry with crashed checkpoint node: %v", err)
	}
	if *counts["produce"] != 1 {
		t.Errorf("produce re-executed despite degraded checkpoint read")
	}
	var final string
	for _, l := range rep.Tasks["consume"].Logs {
		final += l
	}
	if !strings.Contains(final, "PRECIOUS INTERMEDIATE") {
		t.Errorf("degraded restore corrupted data: %q", final)
	}
}

func TestRunWithRecoveryValidation(t *testing.T) {
	rt := newRuntime(t)
	if _, _, err := rt.RunWithRecovery(flakyJob(0, nil), nil, 2); err == nil {
		t.Error("nil checkpointer must fail")
	}
}

func TestRecoveryNoFailureSingleAttempt(t *testing.T) {
	rt := newRuntime(t)
	ck, _ := newCkStore(t)
	rep, attempts, err := rt.RunWithRecovery(flakyJob(0, nil), ck, 3)
	if err != nil || attempts != 1 {
		t.Fatalf("clean job: attempts=%d err=%v", attempts, err)
	}
	if rep.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
}
