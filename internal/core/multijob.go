package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dataflow"
	"repro/internal/sched"
	"repro/internal/topology"
)

// This file adds concurrent multi-job execution — the deployment shape the
// paper targets ("dataflow systems that serve thousands of jobs in parallel
// on such complex hardware landscapes", §2.1) and the reason the RTS must
// "optimize for concurrently running jobs" (§3, challenges 1-3).
//
// Jobs are scheduled independently (each gets its own HEFT plan) but
// *execute* against shared compute cores and shared memory devices: core
// slots serialize tasks, device service queues serialize transfers, and
// the placement optimizer sees the other jobs' allocations through device
// free-capacity. Contention is therefore emergent, not modeled.
//
// RunAll is the *virtual-contention* multi-job mode: members run
// job-after-job, each queueing behind the backlog its predecessors absorbed
// into the shared epoch, so interference (stretch) is observable in the
// reports. The Server's default batch mode makes the opposite trade —
// overlapped wall-clock execution with virtual isolation per member (see
// server.go); its Sequential knob recovers these RunAll semantics.

// JobResult pairs a job's report with isolation diagnostics.
type JobResult struct {
	Report *Report
	// Stretch is this job's concurrent makespan divided by its makespan
	// when run alone on an identical testbed — the interference factor.
	// Only set when ComputeStretch was requested.
	Stretch float64
}

// MultiReport is the outcome of RunAll.
type MultiReport struct {
	Jobs map[string]*JobResult
	// Makespan is the finish time of the last task across all jobs.
	Makespan time.Duration
	// SumIsolated is the sum of isolated makespans (sequential baseline);
	// only set when ComputeStretch was requested.
	SumIsolated time.Duration
}

// String renders a per-job summary.
func (m *MultiReport) String() string {
	names := make([]string, 0, len(m.Jobs))
	for n := range m.Jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := fmt.Sprintf("%d jobs, combined makespan %v\n", len(m.Jobs), m.Makespan)
	for _, n := range names {
		jr := m.Jobs[n]
		out += fmt.Sprintf("  %-16s makespan %12v", n, jr.Report.Makespan)
		if jr.Stretch > 0 {
			out += fmt.Sprintf("  stretch %.2f×", jr.Stretch)
		}
		out += "\n"
	}
	return out
}

// MultiConfig tunes RunAll.
type MultiConfig struct {
	// ComputeStretch additionally runs every job alone on a fresh default
	// testbed to report per-job interference factors. Costs one extra run
	// per job.
	ComputeStretch bool
}

// newLoad builds an empty per-device core-availability estimate.
func (rt *Runtime) newLoad() map[string][]time.Duration {
	load := make(map[string][]time.Duration)
	for _, c := range rt.topo.Computes() {
		load[c.ID] = make([]time.Duration, c.Cores)
	}
	return load
}

// scheduleInto plans one job against the accumulating load of previously
// admitted jobs, folding the new plan back into load — how the runtime
// packs concurrently submitted jobs across the cluster. A load-aware
// scheduler is used when available.
func (rt *Runtime) scheduleInto(j *dataflow.Job, load map[string][]time.Duration) (*sched.Schedule, error) {
	loadAware, _ := rt.sched.(interface {
		ScheduleLoaded(*dataflow.Job, *topology.Topology, map[string][]time.Duration) (*sched.Schedule, error)
	})
	var schedule *sched.Schedule
	var err error
	if loadAware != nil {
		schedule, err = loadAware.ScheduleLoaded(j, rt.topo, load)
	} else {
		schedule, err = rt.sched.Schedule(j, rt.topo)
	}
	if err != nil {
		return nil, err
	}
	for _, a := range schedule.Assignments {
		cores := load[a.Compute]
		idx := 0
		for i := range cores {
			if cores[i] < cores[idx] {
				idx = i
			}
		}
		if a.Finish > cores[idx] {
			cores[idx] = a.Finish
		}
	}
	return schedule, nil
}

// RunAll executes several jobs concurrently on this runtime's shared
// topology. Job names must be unique (they namespace region owners and
// job-level globals).
func (rt *Runtime) RunAll(jobs []*dataflow.Job, cfg MultiConfig) (*MultiReport, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("core: no jobs")
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j == nil {
			return nil, fmt.Errorf("core: nil job")
		}
		if seen[j.Name()] {
			return nil, fmt.Errorf("core: duplicate job name %q", j.Name())
		}
		seen[j.Name()] = true
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("core: job %s: %w", j.Name(), err)
		}
	}

	// One fresh virtual-time epoch shared by every job below — contention
	// between the jobs is the point; isolation from *other* batches and
	// concurrent Runs comes from the epoch being private to this call.
	epoch := rt.topo.NewEpoch()
	// Shared core availability across all jobs.
	cores := make(map[string][]time.Duration)
	for _, c := range rt.topo.Computes() {
		cores[c.ID] = make([]time.Duration, c.Cores)
	}

	load := rt.newLoad()
	runs := make([]*run, 0, len(jobs))
	orders := make([][]*dataflow.Task, 0, len(jobs))
	rankSets := make([]map[string]int, 0, len(jobs))
	for _, j := range jobs {
		schedule, err := rt.scheduleInto(j, load)
		if err != nil {
			return nil, fmt.Errorf("core: scheduling %s: %w", j.Name(), err)
		}
		r := rt.newRun(j, schedule, epoch, j.Name(), cores)
		ranks, order, err := sched.Ranks(j)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
		orders = append(orders, order)
		rankSets = append(rankSets, ranks)
	}

	// Each job's DAG executes as a parallel wavefront over the shared core
	// clocks; jobs run in admission order, and every completed job's clock
	// views are absorbed into the shared epoch, so later jobs queue behind
	// its device backlog — contention stays emergent and deterministic.
	for i, r := range runs {
		if failed, err := r.runWavefront(orders[i], rankSets[i], rt.workers, nil); err != nil {
			for _, rr := range runs {
				rr.cleanup()
			}
			if failed != "" {
				return nil, fmt.Errorf("core: job %s task %s: %w", r.job.Name(), failed, err)
			}
			return nil, fmt.Errorf("core: job %s: %w", r.job.Name(), err)
		}
	}

	out := &MultiReport{Jobs: make(map[string]*JobResult, len(runs))}
	for _, r := range runs {
		if r.report.Makespan > out.Makespan {
			out.Makespan = r.report.Makespan
		}
		out.Jobs[r.job.Name()] = &JobResult{Report: r.report}
	}

	if cfg.ComputeStretch {
		for i, j := range jobs {
			iso, err := New(Config{Scheduler: rt.sched})
			if err != nil {
				return nil, err
			}
			rep, err := iso.Run(j)
			if err != nil {
				return nil, fmt.Errorf("core: isolated baseline for %s: %w", j.Name(), err)
			}
			out.SumIsolated += rep.Makespan
			if rep.Makespan > 0 {
				out.Jobs[j.Name()].Stretch = float64(runs[i].report.Makespan) / float64(rep.Makespan)
			}
		}
	}
	return out, nil
}
