package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workload"
)

func newRuntime(t testing.TB) *Runtime {
	t.Helper()
	rt, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestDefaultsAreWired(t *testing.T) {
	rt := newRuntime(t)
	if rt.Topology() == nil || rt.Regions() == nil || rt.Telemetry() == nil {
		t.Fatal("defaults must be non-nil")
	}
}

func TestRunRejectsInvalidJobs(t *testing.T) {
	rt := newRuntime(t)
	if _, err := rt.Run(dataflow.NewJob("empty")); err == nil {
		t.Error("empty job must fail")
	}
	j := dataflow.NewJob("cycle")
	a := j.Task("a", dataflow.Props{}, nil)
	b := j.Task("b", dataflow.Props{}, nil)
	a.Then(b)
	b.Then(a)
	if _, err := rt.Run(j); !errors.Is(err, dataflow.ErrCycle) {
		t.Errorf("err = %v, want ErrCycle", err)
	}
}

func TestStructuralJobRuns(t *testing.T) {
	// Tasks without bodies still schedule, charge their Ops, and pass
	// implicit outputs down the chain.
	rt := newRuntime(t)
	j := dataflow.NewJob("structural")
	a := j.Task("a", dataflow.Props{Ops: 1e6, OutputBytes: 1 << 16}, nil)
	b := j.Task("b", dataflow.Props{Ops: 1e6}, nil)
	a.Then(b)
	rep, err := rt.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
	if len(rep.Tasks) != 2 {
		t.Errorf("task reports = %d", len(rep.Tasks))
	}
	if rep.Tasks["b"].Start < rep.Tasks["a"].Finish {
		t.Error("b must start after a")
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestHospitalEndToEnd(t *testing.T) {
	rt := newRuntime(t)
	job := workload.Hospital(workload.DefaultHospital())
	rep, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	// GPU tasks on the GPU (Fig. 2 annotations).
	for _, id := range []string{"preprocess", "face-recognition"} {
		if got := rep.Tasks[id].Compute; got != "node0/gpu0" {
			t.Errorf("%s ran on %s, want GPU", id, got)
		}
	}
	for _, id := range []string{"track-hours", "compute-utilization", "alert-caregivers"} {
		c, _ := rt.Topology().Compute(rep.Tasks[id].Compute)
		if c.Kind != topology.CPU {
			t.Errorf("%s ran on %s, want CPU", id, c.Kind)
		}
	}
	// The persistent missing-patient ledger must be on persistent media.
	ledger := rep.Tasks["alert-caregivers"].Regions["missing-patients"]
	dev, ok := rt.Topology().Memory(ledger)
	if !ok || !dev.Persistent {
		t.Errorf("missing-patient ledger on %q, want persistent device", ledger)
	}
	// GPU scratch must be GPU-local (Fig. 3): the preprocess frame buffer.
	if got := rep.Tasks["preprocess"].Regions["framebuf"]; got != "node0/gddr0" {
		t.Errorf("GPU frame buffer on %s, want GDDR", got)
	}
	// All three sinks ran; utilization produced a final output.
	if _, ok := rep.FinalOutputs["compute-utilization"]; !ok {
		t.Error("utilization output missing")
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
	// Logs made it into the report.
	found := false
	for _, l := range rep.Tasks["alert-caregivers"].Logs {
		if strings.Contains(l, "alerted caregivers") {
			found = true
		}
	}
	if !found {
		t.Error("alert log missing from report")
	}
}

func TestDBMSEndToEnd(t *testing.T) {
	rt := newRuntime(t)
	rep, err := rt.Run(workload.DBMS(workload.DefaultDBMS()))
	if err != nil {
		t.Fatal(err)
	}
	// The join must have found matches via the re-used hash index.
	var joined string
	for _, l := range rep.Tasks["hash-join"].Logs {
		if strings.Contains(l, "join matched") {
			joined = l
		}
	}
	if joined == "" || strings.Contains(joined, "matched 0 ") {
		t.Errorf("join produced no matches: %q", joined)
	}
	// The agg index went to a shared (coherent) device.
	idxDev := rep.Tasks["hash-aggregate"].Regions["agg-index"]
	if idxDev == "" {
		t.Fatal("agg-index placement not recorded")
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestMLEndToEnd(t *testing.T) {
	rt := newRuntime(t)
	rep, err := rt.Run(workload.ML(workload.DefaultML()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Tasks["train"].Compute; got != "node0/tpu0" {
		t.Errorf("training on %s, want TPU", got)
	}
	if _, ok := rep.FinalOutputs["train"]; !ok {
		t.Error("trained weights must be a final output")
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestHPCAndStreamingEndToEnd(t *testing.T) {
	rt := newRuntime(t)
	for _, job := range []*dataflow.Job{
		workload.HPC(workload.DefaultHPC()),
		workload.StreamWindow(workload.DefaultStream(), 0),
	} {
		rep, err := rt.Run(job)
		if err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
		if rep.Makespan <= 0 {
			t.Errorf("%s: zero makespan", job.Name())
		}
		if rt.Regions().Live() != 0 {
			t.Errorf("%s: leaked %d regions", job.Name(), rt.Regions().Live())
		}
	}
}

func TestFanOutSharesOutput(t *testing.T) {
	// One producer, three consumers: the output must be shared (Global
	// Scratch), each consumer sees the same bytes, and nothing leaks.
	rt := newRuntime(t)
	j := dataflow.NewJob("fanout")
	payload := []byte("shared exactly once")
	src := j.Task("src", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(64)
		if err != nil {
			return err
		}
		f := out.WriteAsync(ctx.Now(), 0, payload)
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	mk := func(name string) *dataflow.Task {
		return j.Task(name, dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
			in := ctx.Inputs()[0]
			got := make([]byte, len(payload))
			f := in.ReadAsync(ctx.Now(), 0, got)
			now, err := f.Await(ctx.Now())
			if err != nil {
				return err
			}
			ctx.Wait(now)
			if string(got) != string(payload) {
				return errors.New("consumer saw wrong bytes")
			}
			return nil
		})
	}
	for _, name := range []string{"c1", "c2", "c3"} {
		src.Then(mk(name))
	}
	if _, err := rt.Run(j); err != nil {
		t.Fatal(err)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}

func TestTaskFailureCleansUp(t *testing.T) {
	rt := newRuntime(t)
	j := dataflow.NewJob("failing")
	boom := errors.New("boom")
	a := j.Task("a", dataflow.Props{Ops: 1e3, OutputBytes: 1 << 12}, nil)
	b := j.Task("b", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		if _, err := ctx.Scratch("tmp", 4096); err != nil {
			return err
		}
		return boom
	})
	a.Then(b)
	_, err := rt.Run(j)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !strings.Contains(err.Error(), "task b") {
		t.Errorf("error must name the failing task: %v", err)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("failure leaked %d regions", rt.Regions().Live())
	}
}

func TestGlobalRequiresShareableClass(t *testing.T) {
	rt := newRuntime(t)
	j := dataflow.NewJob("bad-global")
	j.Task("t", dataflow.Props{Ops: 1}, func(ctx dataflow.Ctx) error {
		_, err := ctx.Global("x", props.PrivateScratch, 64)
		return err
	})
	if _, err := rt.Run(j); err == nil {
		t.Error("private-scratch global must fail")
	}
	if rt.Regions().Live() != 0 {
		t.Error("leak after failed global")
	}
}

func TestSchedulerChoiceAffectsMakespan(t *testing.T) {
	mkJob := func() *dataflow.Job {
		j := dataflow.NewJob("mix")
		src := j.Task("src", dataflow.Props{Ops: 1e5, OutputBytes: 4096}, nil)
		sink := j.Task("sink", dataflow.Props{Ops: 1e5}, nil)
		for i := 0; i < 16; i++ {
			t := j.Task(string(rune('A'+i)), dataflow.Props{Ops: 5e8, OutputBytes: 4096}, nil)
			src.Then(t)
			t.Then(sink)
		}
		return j
	}
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	heftRT, err := New(Config{Topology: topo, Scheduler: sched.HEFT{}})
	if err != nil {
		t.Fatal(err)
	}
	heftRep, err := heftRT.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	topo2, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	fifoRT, err := New(Config{Topology: topo2, Scheduler: sched.FIFO{}})
	if err != nil {
		t.Fatal(err)
	}
	fifoRep, err := fifoRT.Run(mkJob())
	if err != nil {
		t.Fatal(err)
	}
	if heftRep.Makespan >= fifoRep.Makespan {
		t.Errorf("HEFT (%v) must beat FIFO (%v)", heftRep.Makespan, fifoRep.Makespan)
	}
}

func TestPlacerChoiceAffectsPlacement(t *testing.T) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{Topology: topo, Placer: placement.NewWorst(topo)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(workload.HPC(workload.DefaultHPC()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placer != "worst-fit" {
		t.Errorf("report placer = %s", rep.Placer)
	}
}

func TestReportRendering(t *testing.T) {
	rt := newRuntime(t)
	rep, err := rt.Run(workload.Hospital(workload.DefaultHospital()))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"hospital", "face-recognition", "region", "HEFT"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if len(rep.PeakDeviceBytes) == 0 {
		t.Error("peak device bytes must be sampled")
	}
}

func TestRepeatedRunsAreIsolated(t *testing.T) {
	rt := newRuntime(t)
	job := workload.DefaultDBMS()
	r1, err := rt.Run(workload.DBMS(job))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rt.Run(workload.DBMS(job))
	if err != nil {
		t.Fatal(err)
	}
	// Same job twice: same placements (devices drained between runs).
	for id, t1 := range r1.Tasks {
		if r2.Tasks[id].Compute != t1.Compute {
			t.Errorf("%s moved between runs: %s → %s", id, t1.Compute, r2.Tasks[id].Compute)
		}
	}
	if rt.Regions().Live() != 0 {
		t.Error("second run leaked regions")
	}
}

func BenchmarkHospitalRun(b *testing.B) {
	rt := newRuntime(b)
	cfg := workload.DefaultHospital()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(workload.Hospital(cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDBMSRun(b *testing.B) {
	rt := newRuntime(b)
	cfg := workload.DefaultDBMS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(workload.DBMS(cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReportStringDeterministicOnTies(t *testing.T) {
	// Two tasks with identical Start times: map iteration order must not
	// leak into the rendering — ties break on task ID.
	rep := &Report{
		Job: "tie", Scheduler: "heft", Placer: "best-fit", Makespan: 10,
		Tasks: map[string]*TaskReport{
			"zeta":  {Task: "zeta", Compute: "node0/cpu0", Start: 0, Finish: 5},
			"alpha": {Task: "alpha", Compute: "node0/cpu0", Start: 0, Finish: 7},
			"mid":   {Task: "mid", Compute: "node0/gpu0", Start: 3, Finish: 9},
		},
	}
	first := rep.String()
	for i := 0; i < 50; i++ {
		if got := rep.String(); got != first {
			t.Fatalf("rendering varies between calls:\n%s\nvs\n%s", first, got)
		}
	}
	ia, iz, im := strings.Index(first, "alpha"), strings.Index(first, "zeta"), strings.Index(first, "mid")
	if ia < 0 || iz < 0 || im < 0 {
		t.Fatalf("missing tasks in rendering:\n%s", first)
	}
	if !(ia < iz && iz < im) {
		t.Errorf("order must be alpha < zeta (ID tie-break) < mid (later start):\n%s", first)
	}
}

func TestGlobalShareReleaseFailureDoesNotLeak(t *testing.T) {
	// A task that releases its own global shares makes the runtime's
	// end-of-task release fail. Every share must still be walked (no leaks),
	// all failures aggregated, and the task recorded as executed.
	rt := newRuntime(t)
	j := dataflow.NewJob("self-release")
	j.Task("t", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		ha, err := ctx.Global("alpha", props.GlobalScratch, 1<<16)
		if err != nil {
			return err
		}
		hb, err := ctx.Global("beta", props.GlobalScratch, 1<<16)
		if err != nil {
			return err
		}
		// Misbehaving body: drops the runtime-managed shares itself.
		if err := ha.Release(); err != nil {
			return err
		}
		return hb.Release()
	})
	_, err := rt.Run(j)
	if err == nil {
		t.Fatal("expected aggregated release errors")
	}
	if !strings.Contains(err.Error(), "releasing global alpha") ||
		!strings.Contains(err.Error(), "releasing global beta") {
		t.Errorf("error must name both failed releases, got: %v", err)
	}
	if !errors.Is(err, region.ErrNotOwner) {
		t.Errorf("error must wrap region.ErrNotOwner, got: %v", err)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
	// The task itself ran to completion and must have been recorded.
	execSpans := 0
	for _, sp := range rt.Telemetry().Spans() {
		if sp.Name == "exec" && sp.Task == "t" {
			execSpans++
		}
	}
	if execSpans != 1 {
		t.Errorf("exec spans for t = %d, want 1", execSpans)
	}
}
