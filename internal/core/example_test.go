package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/props"
)

// Example demonstrates the programming model end to end: declare a
// two-task dataflow, let the runtime place and schedule it, and observe
// the ownership handover.
func Example() {
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	job := dataflow.NewJob("example")
	produce := job.Task("produce", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(64)
		if err != nil {
			return err
		}
		now, err := out.WriteAt(ctx.Now(), 0, []byte("hi"))
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	consume := job.Task("consume", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		buf := make([]byte, 2)
		now, err := ctx.Inputs()[0].ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("got %s", buf)
		return nil
	})
	produce.Then(consume)

	report, err := rt.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Tasks["consume"].Logs[0])
	fmt.Println("regions leaked:", rt.Regions().Live())
	// Output:
	// got hi
	// regions leaked: 0
}

// Example_declarativeProperties shows properties steering placement: the
// persistent task's ledger lands on persistent media without the code
// naming a device.
func Example_declarativeProperties() {
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	job := dataflow.NewJob("props")
	job.Task("ledger-keeper", dataflow.Props{
		Compute: dataflow.OnCPU, Persistent: true, Ops: 1e3,
	}, func(ctx dataflow.Ctx) error {
		ledger, err := ctx.Scratch("ledger", 4096)
		if err != nil {
			return err
		}
		dev, _ := ledger.DeviceID()
		m, _ := rt.Topology().Memory(dev)
		ctx.Log("ledger on %s (persistent: %t)", dev, m.Persistent)
		return nil
	})
	report, err := rt.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Tasks["ledger-keeper"].Logs[0])
	// Output:
	// ledger on node0/pmem0 (persistent: true)
}

// Example_globalRegions shows Table 2's shared regions: two tasks
// coordinate through a named Global State region.
func Example_globalRegions() {
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	job := dataflow.NewJob("globals")
	writer := job.Task("writer", dataflow.Props{Ops: 1e3, OutputBytes: 8}, func(ctx dataflow.Ctx) error {
		state, err := ctx.Global("flag", props.GlobalState, 64)
		if err != nil {
			return err
		}
		now, err := state.WriteAt(ctx.Now(), 0, []byte{42})
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	reader := job.Task("reader", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		state, err := ctx.Global("flag", props.GlobalState, 64)
		if err != nil {
			return err
		}
		buf := make([]byte, 1)
		now, err := state.ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("flag=%d", buf[0])
		return nil
	})
	writer.Then(reader)
	report, err := rt.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Tasks["reader"].Logs[0])
	// Output:
	// flag=42
}
