package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
)

// The data-integrity property: on a random DAG, every task writes a
// payload derived from its identity into its output; every consumer
// verifies each input matches its producer's expected payload. Any bug in
// ownership transfer, sharing, migration, sealing, or buffering surfaces
// as a payload mismatch.

const integrityPayload = 96

func stampFor(task string) []byte {
	buf := make([]byte, integrityPayload)
	h := uint64(1469598103934665603)
	for _, c := range task {
		h ^= uint64(c)
		h *= 1099511628211
	}
	for i := 0; i < integrityPayload; i += 8 {
		h = h*6364136223846793005 + 1442695040888963407
		binary.BigEndian.PutUint64(buf[i:], h)
	}
	return buf
}

// buildIntegrityDAG creates a random DAG whose tasks stamp and verify.
func buildIntegrityDAG(t *testing.T, rng *rand.Rand, name string) *dataflow.Job {
	t.Helper()
	n := 3 + rng.Intn(10)
	j := dataflow.NewJob(name)
	tasks := make([]*dataflow.Task, n)
	prefs := []dataflow.DevicePref{dataflow.AnyDevice, dataflow.OnCPU, dataflow.OnGPU, dataflow.OnTPU}
	type edgeSet struct{ preds []string }
	edges := make([]edgeSet, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%02d", i)
		conf := rng.Intn(4) == 0
		mk := func(id string) dataflow.Fn {
			return func(ctx dataflow.Ctx) error {
				// Verify every input against its producer's stamp.
				ins := ctx.Inputs()
				if len(ins) != len(edges[indexOf(id)].preds) {
					return fmt.Errorf("%s: %d inputs, want %d", id, len(ins), len(edges[indexOf(id)].preds))
				}
				for k, in := range ins {
					want := stampFor(name + "/" + edges[indexOf(id)].preds[k])
					got := make([]byte, integrityPayload)
					f := in.ReadAsync(ctx.Now(), 0, got)
					now, err := f.Await(ctx.Now())
					if err != nil {
						return fmt.Errorf("%s reading input %d: %w", id, k, err)
					}
					ctx.Wait(now)
					for b := range want {
						if got[b] != want[b] {
							return fmt.Errorf("%s: input %d from %s corrupted at byte %d", id, k, edges[indexOf(id)].preds[k], b)
						}
					}
				}
				// Stamp the output.
				out, err := ctx.Output(integrityPayload)
				if err != nil {
					return err
				}
				f := out.WriteAsync(ctx.Now(), 0, stampFor(name+"/"+id))
				now, err := f.Await(ctx.Now())
				if err != nil {
					return err
				}
				ctx.Wait(now)
				return nil
			}
		}
		tasks[i] = j.Task(id, dataflow.Props{
			Compute:      prefs[rng.Intn(len(prefs))],
			Confidential: conf,
			Ops:          float64(1+rng.Intn(100)) * 1e4,
			OutputBytes:  integrityPayload,
		}, mk(id))
	}
	// Forward edges only (acyclic by construction).
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if rng.Intn(3) == 0 {
				tasks[i].Then(tasks[k])
				edges[k].preds = append(edges[k].preds, tasks[i].ID())
			}
		}
	}
	return j
}

// indexOf extracts the numeric suffix of "tNN".
func indexOf(id string) int {
	return int(id[1]-'0')*10 + int(id[2]-'0')
}

func TestRandomDAGDataIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt, err := New(Config{})
		if err != nil {
			return false
		}
		job := buildIntegrityDAG(t, rng, fmt.Sprintf("integ-%d", seed))
		if _, err := rt.Run(job); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return rt.Regions().Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomDAGIntegrityUnderRecovery(t *testing.T) {
	// The same integrity property with a checkpointer in the loop and a
	// mid-DAG failure on the first attempt: restored outputs must carry
	// the exact stamps.
	rng := rand.New(rand.NewSource(99))
	rt := newRuntime(t)
	ck, _ := newCkStore(t)
	job := buildIntegrityDAG(t, rng, "integ-recover")
	// Inject one failure into the last task by wrapping... instead, build a
	// dedicated flaky verifier appended to the DAG.
	fails := 1
	sinks := job.Sinks()
	probe := job.Task("probe", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		if fails > 0 {
			fails--
			return fmt.Errorf("injected failure")
		}
		for k, in := range ctx.Inputs() {
			got := make([]byte, integrityPayload)
			f := in.ReadAsync(ctx.Now(), 0, got)
			now, err := f.Await(ctx.Now())
			if err != nil {
				return err
			}
			ctx.Wait(now)
			want := stampFor("integ-recover/" + sinks[k].ID())
			for b := range want {
				if got[b] != want[b] {
					return fmt.Errorf("restored input %d corrupted at byte %d", k, b)
				}
			}
		}
		return nil
	})
	for _, s := range sinks {
		s.Then(probe)
	}
	_, attempts, err := rt.RunWithRecovery(job, ck, 3)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if rt.Regions().Live() != 0 {
		t.Errorf("leaked %d regions", rt.Regions().Live())
	}
}
