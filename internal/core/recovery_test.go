package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// newRecoveryServer builds a server with recovery over the default store and
// a runtime carrying the given injector.
func newRecoveryServer(t *testing.T, inj *fault.Injector, pol RecoveryPolicy, cfg ServerConfig) *Server {
	t.Helper()
	rt, err := New(Config{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Runtime = rt
	cfg.Recovery = &pol
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) }) //nolint:errcheck
	return s
}

// TestServeRecoveryConcurrentStress is the issue's -race acceptance test:
// ≥8 concurrent submitters with injected task faults, every job eventually
// succeeds with its attempt count reported, and the checkpointer drains to
// zero snapshots.
//
// rate=1, kills=1 makes the schedule of failures deterministic per
// submission: each of the pipeline's 3 tasks is killed exactly once, in
// topological order, so every submission needs exactly 4 attempts.
func TestServeRecoveryConcurrentStress(t *testing.T) {
	inj := fault.NewInjector(1, 1.0, 1)
	s := newRecoveryServer(t, inj,
		RecoveryPolicy{MaxAttempts: 4},
		ServerConfig{EpochWorkers: 4, MaxBatch: 4, QueueDepth: 64, Block: true})

	const (
		goroutines = 8
		perG       = 4 // 32 jobs total
	)
	type outcome struct {
		rep *Report
		err error
	}
	results := make([][]outcome, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		results[g] = make([]outcome, perG)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Same job name on purpose: per-submission snapshot
				// namespaces must keep the checkpoints apart.
				rep, err := s.Submit(context.Background(), pipelineJob("pipe"))
				results[g][i] = outcome{rep, err}
			}
		}(g)
	}
	wg.Wait()

	total := goroutines * perG
	for g := range results {
		for i, out := range results[g] {
			if out.err != nil {
				t.Errorf("goroutine %d job %d: %v", g, i, out.err)
				continue
			}
			if out.rep.Attempts != 4 {
				t.Errorf("goroutine %d job %d: attempts = %d, want 4", g, i, out.rep.Attempts)
			}
			if out.rep.Makespan <= 0 {
				t.Errorf("goroutine %d job %d: non-positive makespan", g, i)
			}
			if len(out.rep.Tasks) != 3 {
				t.Errorf("goroutine %d job %d: %d task reports, want 3", g, i, len(out.rep.Tasks))
			}
		}
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Checkpointer().Snapshots(); got != 0 {
		t.Errorf("snapshots after drain = %d, want 0", got)
	}
	rt := s.Runtime()
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
	tel := rt.Telemetry()
	if got := tel.Counter(telemetry.LayerRuntime, "server_completed"); got != int64(total) {
		t.Errorf("server_completed = %d, want %d", got, total)
	}
	if got := tel.Counter(telemetry.LayerRuntime, "server_recovered"); got != int64(total) {
		t.Errorf("server_recovered = %d, want %d", got, total)
	}
	// 3 retries per submission (one per killed task).
	if got := tel.Counter(telemetry.LayerFault, "job_retries"); got != int64(3*total) {
		t.Errorf("job_retries = %d, want %d", got, 3*total)
	}
	if tel.Counter(telemetry.LayerFault, "restores") == 0 {
		t.Error("no restores recorded")
	}
	recovered := 0
	for _, sp := range tel.Spans() {
		if sp.Name == "serve-recovered" {
			recovered++
		}
	}
	if recovered != total {
		t.Errorf("serve-recovered spans = %d, want %d", recovered, total)
	}
}

// TestServeWithoutRecoverySurfacesFault pins the acceptance contrast: the
// same injected workload without a RecoveryPolicy fails its submitters.
func TestServeWithoutRecoverySurfacesFault(t *testing.T) {
	inj := fault.NewInjector(1, 1.0, 1)
	rt, err := New(Config{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, ServerConfig{Runtime: rt, EpochWorkers: 2, Block: true})
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), pipelineJob("pipe"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("job %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	tel := rt.Telemetry()
	if got := tel.Counter(telemetry.LayerRuntime, "server_failed"); got != n {
		t.Errorf("server_failed = %d, want %d", got, n)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
}

// TestServeRecoveryBackoff pins the virtual-time backoff: a retried job's
// tasks start no earlier than the accumulated backoff on the epoch clock.
func TestServeRecoveryBackoff(t *testing.T) {
	const backoff = time.Millisecond
	inj := fault.NewInjector(1, 0, 1)
	inj.Kill("ingest", 1) // attempt 1 dies at the first task
	s := newRecoveryServer(t, inj,
		RecoveryPolicy{MaxAttempts: 2, Backoff: backoff},
		ServerConfig{EpochWorkers: 1, MaxBatch: 1})

	rep, err := s.Submit(context.Background(), pipelineJob("pipe"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", rep.Attempts)
	}
	for id, tr := range rep.Tasks {
		if tr.Start < backoff {
			t.Errorf("task %s starts at %v, want ≥ %v (retry backoff)", id, tr.Start, backoff)
		}
	}
	// Queue-wait is now a histogram, not a sum counter.
	h := s.Runtime().Telemetry().Hist(telemetry.LayerRuntime, "server_queue_wait")
	if h == nil || h.Count() != 1 {
		t.Fatalf("server_queue_wait histogram missing or wrong count: %+v", h)
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_queue_wait_ns"); got != 0 {
		t.Errorf("legacy sum counter still written: %d", got)
	}
}

// TestServeRecoveryExhaustion: a permanently failing job still fails after
// MaxAttempts, and its snapshots are forgotten.
func TestServeRecoveryExhaustion(t *testing.T) {
	inj := fault.NewInjector(1, 0, 1)
	inj.Kill("reduce", 99) // sink dies every attempt
	s := newRecoveryServer(t, inj,
		RecoveryPolicy{MaxAttempts: 3},
		ServerConfig{EpochWorkers: 1, MaxBatch: 1})

	_, err := s.Submit(context.Background(), pipelineJob("pipe"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Checkpointer().Snapshots(); got != 0 {
		t.Errorf("snapshots after exhausted job = %d, want 0", got)
	}
	tel := s.Runtime().Telemetry()
	if got := tel.Counter(telemetry.LayerFault, "job_retries"); got != 2 {
		t.Errorf("job_retries = %d, want 2", got)
	}
	if got := tel.Counter(telemetry.LayerRuntime, "server_failed"); got != 1 {
		t.Errorf("server_failed = %d, want 1", got)
	}
	if live := s.Runtime().Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
}

// TestCheckpointerConcurrentSameNameJobs pins the keying bugfix: two
// concurrent recovery runs of same-named jobs sharing one Checkpointer must
// not cross-restore or cross-Forget each other's snapshots.
func TestCheckpointerConcurrentSameNameJobs(t *testing.T) {
	ck, _ := newCkStore(t)
	const n = 4
	type res struct {
		counts map[string]*int
		err    error
	}
	results := make([]res, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt, err := New(Config{})
			if err != nil {
				results[i].err = err
				return
			}
			counts := map[string]*int{"produce": new(int), "transform": new(int), "consume": new(int)}
			results[i].counts = counts
			_, _, results[i].err = rt.RunWithRecovery(flakyJob(1, counts), ck, 3)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Errorf("job %d: %v", i, r.err)
			continue
		}
		// Cross-restore would skip the producer entirely (0 executions);
		// cross-Forget would force a re-execution (2 executions).
		if got := *r.counts["produce"]; got != 1 {
			t.Errorf("job %d: produce executed %d times, want exactly 1", i, got)
		}
	}
	if got := ck.Snapshots(); got != 0 {
		t.Errorf("snapshots after all jobs = %d, want 0", got)
	}
}

// TestCheckpointerForgetSnapshotRace hammers snapshot/restore/Forget from
// many goroutines (distinct run IDs plus re-checkpoints) — the race
// detector validates that store I/O left the critical section safely.
func TestCheckpointerForgetSnapshotRace(t *testing.T) {
	ck, _ := newCkStore(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("job@%d", w)
			for i := 0; i < 20; i++ {
				task := fmt.Sprintf("t%d", i%5)
				if _, err := ck.snapshot(id, task, []byte("payload"), true); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if _, _, _, err := ck.restore(id, task); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
				if i%7 == 0 {
					ck.Forget(id)
				}
			}
			ck.Forget(id)
		}(w)
	}
	wg.Wait()
	if got := ck.Snapshots(); got != 0 {
		t.Errorf("snapshots after forget-all = %d, want 0", got)
	}
}

// TestRestoreDeliversEmptyPayload pins the zero-byte restore fix: a
// checkpoint entry that recorded an output with an empty payload must still
// deliver a region to successors instead of starving them.
func TestRestoreDeliversEmptyPayload(t *testing.T) {
	rt := newRuntime(t)
	ck, _ := newCkStore(t)

	j := dataflow.NewJob("empty-out")
	got := make(chan int, 1)
	p := j.Task("produce", dataflow.Props{Ops: 1e3}, nil)
	c := j.Task("consume", dataflow.Props{Ops: 1e3}, func(ctx dataflow.Ctx) error {
		got <- len(ctx.Inputs())
		return nil
	})
	p.Then(c)

	// Simulate a prior attempt that checkpointed produce's output with an
	// empty payload (hasOutput=true, zero bytes).
	id := ck.runID(j.Name())
	if _, err := ck.snapshot(id, "produce", nil, true); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.execute(j, ck, id, false); err != nil {
		t.Fatal(err)
	}
	if inputs := <-got; inputs != 1 {
		t.Errorf("consumer saw %d inputs, want 1 (empty snapshot must still deliver)", inputs)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Errorf("leaked %d regions", live)
	}
}

// TestCheckpointerOutputlessEntries pins the other half of the fix: a sink
// that completed without any output restores as "done, nothing to deliver".
func TestCheckpointerOutputlessEntries(t *testing.T) {
	ck, _ := newCkStore(t)
	if _, err := ck.snapshot("id", "sink", nil, false); err != nil {
		t.Fatal(err)
	}
	data, hasOutput, _, err := ck.restore("id", "sink")
	if err != nil {
		t.Fatal(err)
	}
	if hasOutput || data != nil {
		t.Errorf("outputless entry restored as (%v, hasOutput=%v), want (nil, false)", data, hasOutput)
	}
	if _, _, _, err := ck.restore("id", "missing"); err == nil {
		t.Error("restore of unknown task must fail")
	}
}
