package core

// Allocation-regression gate for the determinism-tax work: the wavefront
// executor pools task clock views (topology.GetTaskView), the region manager
// pools data backings, and the claim ledger reuses its grant buffer. These
// budgets are pinned with modest headroom above the measured post-pooling
// numbers so the optimizations can't silently regress — if a change pushes a
// run back toward per-task map/backing churn, these fail before any
// benchmark is looked at.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataflow"
)

// allocBudget runs fn once to warm pools and caches, then measures.
func allocBudget(t *testing.T, name string, budget float64, fn func()) {
	t.Helper()
	fn()
	got := testing.AllocsPerRun(5, fn)
	t.Logf("%s: %.0f allocs/run (budget %.0f)", name, got, budget)
	if got > budget {
		t.Errorf("%s allocates %.0f per run, budget is %.0f — pooling regressed?", name, got, budget)
	}
}

// TestAllocBudgetSoloWavefront pins the allocation count of one parallel
// wavefront run of the wide diamond job (src → 8 branches → sink, with a
// fenced job global): measured ~1.9k after pooling.
func TestAllocBudgetSoloWavefront(t *testing.T) {
	rt, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	iter := 0
	allocBudget(t, "solo wavefront run", 2200, func() {
		iter++
		if _, err := rt.Run(wideJob(fmt.Sprintf("alloc%d", iter), 8)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocBudgetOverlappedBatch pins the allocation count of one
// overlapped serving batch of four small jobs on a shared pool.
func TestAllocBudgetOverlappedBatch(t *testing.T) {
	rt, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{
		Runtime: rt, EpochWorkers: 1, MaxBatch: 8, QueueDepth: 64, Block: true,
		MaxLinger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background()) //nolint:errcheck
	iter := 0
	batch := func() []*dataflow.Job {
		iter++
		return []*dataflow.Job{
			wideJob(fmt.Sprintf("w%d-0", iter), 4),
			wideJob(fmt.Sprintf("w%d-1", iter), 4),
			wideJob(fmt.Sprintf("w%d-2", iter), 4),
			wideJob(fmt.Sprintf("w%d-3", iter), 4),
		}
	}
	allocBudget(t, "overlapped batch (4 jobs)", 5200, func() {
		jobs := batch()
		tks := make([]*Ticket, len(jobs))
		for k, j := range jobs {
			tk, err := s.SubmitAsync(context.Background(), j)
			if err != nil {
				t.Fatal(err)
			}
			tks[k] = tk
		}
		for _, tk := range tks {
			if _, err := tk.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	})
}
