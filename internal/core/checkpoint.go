package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// This file implements runtime-level checkpoint/restart — the paper's
// challenge 8(3): "failures may lead to data loss and force applications to
// stop and restart. Therefore, our programming model and its runtime system
// must implement suitable mechanisms that guarantee fault tolerance."
//
// The mechanism follows the dataflow structure: a task's externally visible
// effect is its output region, so after each task completes the runtime
// snapshots that output into a fault-tolerant far-memory store
// (internal/fault — replication or Carbink-style erasure coding, the
// operator's choice). When a task fails, RunWithRecovery re-runs the job:
// tasks with a snapshot are *restored* — their output is fetched from the
// store into a fresh region and handed to successors — instead of
// re-executed.
//
// Scope: the snapshot covers dataflow state (task outputs). Side effects on
// job-global regions are transient by definition (Global Scratch) or
// synchronization state (Global State) that tasks must be able to rebuild —
// the same contract Spark-style lineage recovery imposes.

// Checkpointer stores per-(job, task) output snapshots in a fault.Store.
type Checkpointer struct {
	store fault.Store

	mu      sync.Mutex
	entries map[string]ckEntry // "job/task" → entry
}

type ckEntry struct {
	obj  fault.ObjectID
	size int64
	// done marks tasks that completed without an output (sinks whose
	// effect is logs/final state only).
	done bool
}

// NewCheckpointer wraps a fault-tolerant store.
func NewCheckpointer(store fault.Store) *Checkpointer {
	return &Checkpointer{store: store, entries: make(map[string]ckEntry)}
}

func ckKey(job, task string) string { return job + "/" + task }

// lookup returns the entry for a task, if any.
func (c *Checkpointer) lookup(job, task string) (ckEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[ckKey(job, task)]
	return e, ok
}

// snapshot persists a completed task's output bytes (nil for output-less
// tasks) and returns the virtual time the store took.
func (c *Checkpointer) snapshot(job, task string, data []byte) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := ckKey(job, task)
	if old, ok := c.entries[key]; ok && !old.done {
		// Re-checkpoint (job re-ran from scratch): drop the stale object.
		c.store.Delete(old.obj) //nolint:errcheck // best-effort GC
	}
	if len(data) == 0 {
		c.entries[key] = ckEntry{done: true}
		return 0, nil
	}
	obj, d, err := c.store.Put(data)
	if err != nil {
		return d, fmt.Errorf("core: checkpoint %s: %w", key, err)
	}
	c.entries[key] = ckEntry{obj: obj, size: int64(len(data))}
	return d, nil
}

// restore fetches a snapshot's bytes.
func (c *Checkpointer) restore(job, task string) ([]byte, time.Duration, error) {
	c.mu.Lock()
	e, ok := c.entries[ckKey(job, task)]
	c.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("core: no checkpoint for %s/%s", job, task)
	}
	if e.done {
		return nil, 0, nil
	}
	data, d, err := c.store.Get(e.obj)
	if err != nil {
		return nil, d, fmt.Errorf("core: restoring %s/%s: %w", job, task, err)
	}
	return data, d, nil
}

// Forget drops all snapshots of a job (after successful completion).
func (c *Checkpointer) Forget(job string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	prefix := job + "/"
	for k, e := range c.entries {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			if !e.done {
				c.store.Delete(e.obj) //nolint:errcheck // best-effort GC
			}
			delete(c.entries, k)
		}
	}
}

// Snapshots returns the number of stored entries (tests, reports).
func (c *Checkpointer) Snapshots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// RunWithRecovery executes the job, checkpointing each task's output into
// ck's store; on task failure it retries (up to maxAttempts total runs),
// restoring completed tasks from their snapshots instead of re-executing
// them. Returns the final report, the number of attempts used, and the
// first error if all attempts failed. Snapshots are forgotten on success.
func (rt *Runtime) RunWithRecovery(job *dataflow.Job, ck *Checkpointer, maxAttempts int) (*Report, int, error) {
	if ck == nil {
		return nil, 0, fmt.Errorf("core: nil checkpointer")
	}
	if maxAttempts <= 0 {
		maxAttempts = 2
	}
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep, err := rt.execute(job, ck)
		if err == nil {
			ck.Forget(job.Name())
			return rep, attempt, nil
		}
		lastErr = err
		rt.tel.Add(telemetry.LayerFault, "job_retries", 1)
	}
	return nil, maxAttempts, fmt.Errorf("core: job %s failed after %d attempts: %w", job.Name(), maxAttempts, lastErr)
}

// checkpointTask snapshots a completed task's output (if any) into the
// checkpointer's store, charging the store's virtual time to the task.
func (r *run) checkpointTask(ctx *taskCtx, t *dataflow.Task) error {
	var data []byte
	if ctx.output != nil {
		size, err := ctx.output.Size()
		if err != nil {
			return err
		}
		data = make([]byte, size)
		f := ctx.output.ReadAsync(ctx.now, 0, data)
		now, err := f.Await(ctx.now)
		if err != nil {
			return err
		}
		ctx.now = now
	}
	d, err := r.ck.snapshot(r.job.Name(), t.ID(), data)
	if err != nil {
		return err
	}
	ctx.now += d
	r.rt.tel.Add(telemetry.LayerFault, "checkpoints", 1)
	return nil
}

// restoreTask replays a checkpointed task: inputs are discarded (their
// producer's effect is already captured downstream), the stored output is
// materialized into a fresh region, and delivery proceeds as usual.
func (r *run) restoreTask(ctx *taskCtx, t *dataflow.Task, cores []time.Duration, coreIdx int, start time.Duration) error {
	for _, p := range t.Preds() {
		if h := r.pending[t.ID()][p.ID()]; h != nil {
			h.Release() //nolint:errcheck // discarding a superseded input
			delete(r.pending[t.ID()], p.ID())
		}
	}
	// Adopt inputs list as empty: the restored task does not run.
	data, d, err := r.ck.restore(r.job.Name(), t.ID())
	if err != nil {
		return err
	}
	ctx.now += d
	if data != nil {
		out, err := ctx.Output(int64(len(data)))
		if err != nil {
			return err
		}
		f := out.WriteAsync(ctx.now, 0, data)
		now, err := f.Await(ctx.now)
		if err != nil {
			return err
		}
		ctx.now = now
		if err := r.deliverOutput(ctx, t); err != nil {
			ctx.releaseAll()
			return err
		}
	}
	ctx.Log("restored from checkpoint")
	r.rt.tel.Add(telemetry.LayerFault, "restores", 1)
	cores[coreIdx] = ctx.now
	r.finish[t.ID()] = ctx.now
	r.report.Tasks[t.ID()] = &TaskReport{
		Task: t.ID(), Compute: ctx.compute.ID,
		Start: start, Finish: ctx.now,
		Regions: ctx.regions, Logs: ctx.logs,
	}
	return nil
}
