package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/region"
	"repro/internal/telemetry"
)

// This file implements runtime-level checkpoint/restart — the paper's
// challenge 8(3): "failures may lead to data loss and force applications to
// stop and restart. Therefore, our programming model and its runtime system
// must implement suitable mechanisms that guarantee fault tolerance."
//
// The mechanism follows the dataflow structure: a task's externally visible
// effect is its output region, so after each task completes the runtime
// snapshots that output into a fault-tolerant far-memory store
// (internal/fault — replication or Carbink-style erasure coding, the
// operator's choice). When a task fails, RunWithRecovery re-runs the job:
// tasks with a snapshot are *restored* — their output is fetched from the
// store into a fresh region and handed to successors — instead of
// re-executed. core.Server layers the same mechanism under concurrent
// serving (ServerConfig.Recovery): retries replay inside the worker's
// shared epoch.
//
// Scope: the snapshot covers dataflow state (task outputs). Side effects on
// job-global regions are transient by definition (Global Scratch) or
// synchronization state (Global State) that tasks must be able to rebuild —
// the same contract Spark-style lineage recovery imposes.

// Checkpointer stores per-(submission, task) output snapshots in a
// fault.Store. It is safe for concurrent use by many runs: entries are
// keyed by a unique per-submission run ID (not the job name), so identical
// jobs submitted concurrently never cross-restore or cross-Forget each
// other's snapshots, and store I/O happens outside the entry lock so
// workers never serialize on far-memory transfers.
type Checkpointer struct {
	store fault.Store
	seq   atomic.Uint64

	mu      sync.Mutex
	entries map[string]ckEntry // "runID/task" → entry
}

type ckEntry struct {
	obj  fault.ObjectID
	size int64
	// hasOutput distinguishes a task that produced an output region
	// (possibly with an empty payload — successors still expect delivery)
	// from a sink that completed without one.
	hasOutput bool
	// recorded marks the snapshot of a task that fully completed, making
	// it warm-replayable: restoreCost below is valid, and partial replay
	// may defer the real store fetch until a re-executed consumer needs
	// the payload. A snapshot without a record (the task failed between
	// checkpoint and completion, or the entry was seeded outside the
	// engine) replays cold — the store round trip is performed, and its
	// observed price charged, eagerly in both modes.
	recorded bool
	// restoreCost is the virtual price charged for replaying a recorded
	// snapshot — the snapshot Put duration, used as the deterministic
	// proxy for a restore Get in both replay modes: the store's Get cost
	// can depend on mutable cluster state (degraded erasure reads), and
	// partial replay must know the price without performing the Get.
	restoreCost time.Duration
}

// NewCheckpointer wraps a fault-tolerant store.
func NewCheckpointer(store fault.Store) *Checkpointer {
	return &Checkpointer{store: store, entries: make(map[string]ckEntry)}
}

// runID mints a unique snapshot namespace for one submission of job. All
// attempts of that submission share the ID; concurrent submissions of
// same-named jobs get distinct IDs.
func (c *Checkpointer) runID(job string) string {
	return fmt.Sprintf("%s@%d", job, c.seq.Add(1))
}

// NewRunID mints a caller-owned snapshot namespace (see runID). A sharded
// router mints one per submission and threads it through
// SubmitOptions.ResumeID so every shard attempt of that submission — the
// original and any failover re-submissions — shares the namespace. The
// caller owns its lifecycle: call Forget once the submission is settled.
func (c *Checkpointer) NewRunID(job string) string { return c.runID(job) }

func ckKey(runID, task string) string { return runID + "/" + task }

// lookup returns the entry for a task, if any.
func (c *Checkpointer) lookup(runID, task string) (ckEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[ckKey(runID, task)]
	return e, ok
}

// snapshot persists a completed task's output bytes. hasOutput marks
// whether the task produced an output region at all; data may be empty
// either way. Returns the virtual time the store took.
//
// The store round-trips run outside the entry lock: N workers
// checkpointing concurrently contend on the store's own synchronization
// only, never on each other's bookkeeping.
func (c *Checkpointer) snapshot(runID, task string, data []byte, hasOutput bool) (time.Duration, error) {
	key := ckKey(runID, task)
	e := ckEntry{hasOutput: hasOutput}
	var d time.Duration
	if hasOutput && len(data) > 0 {
		obj, dd, err := c.store.Put(data)
		if err != nil {
			return dd, fmt.Errorf("core: checkpoint %s: %w", key, err)
		}
		e.obj, e.size, d = obj, int64(len(data)), dd
	}
	c.mu.Lock()
	old, had := c.entries[key]
	c.entries[key] = e
	c.mu.Unlock()
	if had && old.size > 0 {
		// Re-checkpoint (the run re-ran this task from scratch): drop the
		// stale object, again outside the lock. A concurrent Forget of the
		// same run may have deleted it already; the store's not-found reply
		// is tolerated (best-effort GC).
		c.store.Delete(old.obj) //nolint:errcheck // best-effort GC
	}
	return d, nil
}

// record marks an existing snapshot entry warm-replayable, attaching its
// deterministic restore price. It is called once per task, at the very end
// of the success path, so a task that failed after its snapshot keeps a
// record-less entry and replays through the cold path. A re-snapshot
// (snapshot called again for the same task) resets the entry cold until
// the re-run completes and records again.
func (c *Checkpointer) record(runID, task string, restoreCost time.Duration) {
	key := ckKey(runID, task)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.recorded, e.restoreCost = true, restoreCost
		c.entries[key] = e
	}
	c.mu.Unlock()
}

// restore fetches a snapshot's bytes. hasOutput reports whether the task
// had produced an output region (so an empty payload still must be
// delivered to successors).
func (c *Checkpointer) restore(runID, task string) (data []byte, hasOutput bool, d time.Duration, err error) {
	c.mu.Lock()
	e, ok := c.entries[ckKey(runID, task)]
	c.mu.Unlock()
	if !ok {
		return nil, false, 0, fmt.Errorf("core: no checkpoint for %s/%s", runID, task)
	}
	if e.size == 0 {
		return nil, e.hasOutput, 0, nil
	}
	data, d, err = c.store.Get(e.obj)
	if err != nil {
		return nil, true, d, fmt.Errorf("core: restoring %s/%s: %w", runID, task, err)
	}
	return data, true, d, nil
}

// Forget drops all snapshots of one submission (after it terminally
// succeeded or failed). Entries leave the map under the lock; the store
// deletes run outside it, so a slow store never blocks other runs'
// snapshot/restore traffic.
func (c *Checkpointer) Forget(runID string) {
	prefix := runID + "/"
	var objs []fault.ObjectID
	c.mu.Lock()
	for k, e := range c.entries {
		if strings.HasPrefix(k, prefix) {
			if e.size > 0 {
				objs = append(objs, e.obj)
			}
			delete(c.entries, k)
		}
	}
	c.mu.Unlock()
	for _, obj := range objs {
		c.store.Delete(obj) //nolint:errcheck // best-effort GC
	}
}

// drop removes a single task's snapshot. The wavefront executor uses it
// after a failure to trim snapshots that ranks *above* the failing task
// produced out of sequential order — a sequential run would never have
// executed them, so recovery must not replay them.
func (c *Checkpointer) drop(runID, task string) {
	key := ckKey(runID, task)
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if ok && e.size > 0 {
		c.store.Delete(e.obj) //nolint:errcheck // best-effort GC
	}
}

// Snapshots returns the number of stored entries (tests, reports).
func (c *Checkpointer) Snapshots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// defaultFaultStore builds the serving default: a 2-way replicated
// far-memory store over a private 3-node fabric.
func defaultFaultStore() (fault.Store, error) {
	f := cluster.NewFabric(cluster.Config{})
	for i := 0; i < 3; i++ {
		if err := f.AddNode(fmt.Sprintf("ckmem%d", i), 1<<28); err != nil {
			return nil, err
		}
	}
	return fault.NewReplicatedStore(f, 2)
}

// RunWithRecovery executes the job, checkpointing each task's output into
// ck's store; on task failure it retries (up to maxAttempts total runs),
// replaying completed tasks from their checkpoint records instead of
// re-executing them. Every retry eagerly re-materializes each replayed
// task's output from the store (whole-job replay: the full restore I/O is
// paid up front). Returns the final report, the number of attempts used,
// and the first error if all attempts failed. Snapshots are forgotten on
// success and after the final failed attempt (nothing will ever replay
// them).
func (rt *Runtime) RunWithRecovery(job *dataflow.Job, ck *Checkpointer, maxAttempts int) (*Report, int, error) {
	return rt.runRecovery(job, ck, maxAttempts, false)
}

// RunWithPartialReplay is RunWithRecovery with lazy restore I/O: on a retry,
// completed tasks are still marked done from their records, but a task's
// output is fetched from the store only when a replayed successor actually
// consumes it. Interior outputs of the skipped prefix — those no replayed
// task ever reads — are never fetched at all, which is where wide or deep
// DAGs save retry latency. The final report is byte-identical to
// RunWithRecovery's at any Workers setting: virtual time charges the same
// recorded restore price per consumed input in both modes, and only the
// real (wall-clock) store traffic differs.
func (rt *Runtime) RunWithPartialReplay(job *dataflow.Job, ck *Checkpointer, maxAttempts int) (*Report, int, error) {
	return rt.runRecovery(job, ck, maxAttempts, true)
}

// runRecovery is the shared retry loop behind RunWithRecovery (eager
// restore) and RunWithPartialReplay (lazy restore).
func (rt *Runtime) runRecovery(job *dataflow.Job, ck *Checkpointer, maxAttempts int, partial bool) (*Report, int, error) {
	if ck == nil {
		return nil, 0, fmt.Errorf("core: nil checkpointer")
	}
	if maxAttempts <= 0 {
		maxAttempts = 2
	}
	id := ck.runID(job.Name())
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep, err := rt.execute(job, ck, id, partial)
		if err == nil {
			ck.Forget(id)
			rep.Attempts = attempt
			if attempt > 1 {
				rep.ReplayedTasks = len(rep.Tasks) - rep.SkippedTasks
			}
			return rep, attempt, nil
		}
		lastErr = err
		rt.tel.Add(telemetry.LayerFault, "job_retries", 1)
	}
	ck.Forget(id)
	return nil, maxAttempts, fmt.Errorf("core: job %s failed after %d attempts: %w", job.Name(), maxAttempts, lastErr)
}

// checkpointTask snapshots a completed task's output (if any) into the
// checkpointer's store, charging the store's virtual time to the task. The
// Put price is stashed on the context: when the task fully completes it
// becomes the entry's deterministic replay price (record).
func (r *run) checkpointTask(ctx *taskCtx, t *dataflow.Task) error {
	var data []byte
	hasOutput := ctx.output != nil
	if hasOutput {
		size, err := ctx.output.Size()
		if err != nil {
			return err
		}
		data = make([]byte, size)
		f := ctx.output.ReadAsync(ctx.now, 0, data)
		now, err := f.Await(ctx.now)
		if err != nil {
			return err
		}
		ctx.now = now
	}
	d, err := r.ck.snapshot(r.ckID, t.ID(), data, hasOutput)
	if err != nil {
		return err
	}
	ctx.now += d
	ctx.ckRestoreCost = d
	r.rt.tel.Add(telemetry.LayerFault, "checkpoints", 1)
	return nil
}

// lazyRestore tracks one replayed producer's re-materialized output region
// under partial replay: the region holds a placeholder payload until a
// re-executed consumer receives it as input and hydrates the real bytes.
// The mutex serializes concurrent consumers of a shared output — only the
// wall-clock fetch is serialized, never virtual time.
type lazyRestore struct {
	mu   sync.Mutex
	size int64
	done bool
}

// hydrate fetches the replayed producer's payload from the checkpoint store
// (once) and writes it raw into the re-materialized region. The restore's
// virtual price was already charged when the producer replayed; this is
// pure real I/O, counted in the fault layer's restored_bytes gauge — the
// quantity partial replay exists to shrink.
func (lr *lazyRestore) hydrate(r *run, task string, h *region.Handle) error {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.done {
		return nil
	}
	data, _, _, err := r.ck.restore(r.ckID, task)
	if err != nil {
		return err
	}
	if len(data) > 0 {
		if err := h.Hydrate(0, data); err != nil {
			return err
		}
	}
	lr.done = true
	r.rt.tel.Add(telemetry.LayerFault, "lazy_hydrations", 1)
	r.rt.tel.Add(telemetry.LayerFault, "restored_bytes", int64(len(data)))
	return nil
}

// restoreTaskAt replays a checkpointed task on a wavefront worker: inputs
// are discarded (their producer's effect is already captured downstream),
// the stored output is re-materialized into a fresh region, and delivery
// proceeds as usual — even for an empty payload, so successors that
// legitimately expect the region are never starved. The dispatcher folds
// the returned finish time and report into the run, like any executed task.
//
// Replay charges one store round trip of virtual time. For a recorded
// (warm) snapshot the price is the deterministic recorded Put cost, and
// partial replay elides the real store fetch entirely: a placeholder
// payload of the snapshot's exact size backs the region until a
// re-executed consumer hydrates it (run.lazy) — so outputs no re-executed
// task ever reads are never fetched at all. The virtual timeline, and with
// it the final report, is byte-identical between the modes; only the real
// store traffic differs. A record-less (cold) snapshot — the task failed
// after its checkpoint, or the entry was seeded outside the engine —
// fetches eagerly in both modes and charges the observed Get price.
func (r *run) restoreTaskAt(ctx *taskCtx, t *dataflow.Task, start time.Duration) (time.Duration, *TaskReport, error) {
	for _, p := range t.Preds() {
		r.smu.Lock()
		h := r.pending[t.ID()][p.ID()]
		if h != nil {
			delete(r.pending[t.ID()], p.ID())
		}
		r.smu.Unlock()
		if h != nil {
			if h.Release() == nil { //nolint:errcheck // discarding a superseded input
				ctx.noteRelease(h)
			}
		}
	}
	// Adopt inputs list as empty: the restored task does not run.
	e, ok := r.ck.lookup(r.ckID, t.ID())
	if !ok {
		return 0, nil, fmt.Errorf("core: no checkpoint for %s/%s", r.ckID, t.ID())
	}
	lazy := r.partial && e.recorded
	var data []byte
	hasOutput := e.hasOutput
	if lazy {
		ctx.now += e.restoreCost
	} else {
		var d time.Duration
		var err error
		data, hasOutput, d, err = r.ck.restore(r.ckID, t.ID())
		if err != nil {
			return 0, nil, err
		}
		if e.recorded {
			// Charge the deterministic price partial replay would charge,
			// not the observed Get — keeping the two modes' virtual
			// timelines identical.
			d = e.restoreCost
		}
		ctx.now += d
		r.rt.tel.Add(telemetry.LayerFault, "restored_bytes", int64(len(data)))
	}
	if hasOutput {
		size := e.size
		if size == 0 {
			// Regions have a one-byte floor; deliver the smallest region
			// with an empty payload rather than starving successors.
			size = 1
		}
		out, err := ctx.Output(size)
		if err != nil {
			return 0, nil, err
		}
		if e.size > 0 {
			payload := data
			if lazy {
				// Placeholder of the snapshot's exact size: the write below
				// prices identically to the eager path, and the real bytes
				// arrive through lazyRestore.hydrate if ever needed.
				payload = make([]byte, e.size)
			}
			f := out.WriteAsync(ctx.now, 0, payload)
			now, err := f.Await(ctx.now)
			if err != nil {
				ctx.releaseAll()
				return 0, nil, err
			}
			ctx.now = now
			if lazy {
				r.smu.Lock()
				r.lazy[t.ID()] = &lazyRestore{size: e.size}
				r.smu.Unlock()
			}
		}
		if err := r.deliverOutput(ctx, t); err != nil {
			ctx.releaseAll()
			return 0, nil, err
		}
	}
	ctx.Log("restored from checkpoint")
	r.rt.tel.Add(telemetry.LayerFault, "restores", 1)
	r.flushEvents(ctx)
	rep := &TaskReport{
		Task: t.ID(), Compute: ctx.compute.ID,
		Start: start, Finish: ctx.now,
		Regions: ctx.regions, Logs: ctx.logs,
	}
	r.rt.tel.Record(telemetry.Span{
		Layer: telemetry.LayerFault, Job: r.job.Name(), Task: t.ID(),
		Name: "restore", Start: start, End: ctx.now,
	})
	return ctx.now, rep, nil
}
