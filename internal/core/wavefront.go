package core

// This file implements the dependency-driven wavefront executor that
// replaced the sequential task loop. A per-run dispatcher tracks each
// task's unmet predecessor count and launches every ready task on a bounded
// worker pool (Config.Workers goroutines), so independent DAG branches
// execute their *real* work — region transfers, memsim copies, checkpoint
// store I/O, task Fn bodies — concurrently, while *virtual* time stays
// byte-for-byte deterministic.
//
// Determinism rests on four mechanisms:
//
//  1. Causal clock views (topology.TaskView). Each task prices its memory
//     accesses against a private queue view seeded from the element-wise
//     max of its predecessors' final views, so it queues behind exactly the
//     accesses that happened-before it in the DAG — never behind a sibling
//     branch that merely ran earlier in wall-clock time.
//
//  2. A rank-ordered core-claim ledger. The task's rank (its topological
//     index, sched.Ranks) is the global tie-breaker: per compute device,
//     tasks claim virtual cores strictly in rank order, and a claim is only
//     granted when the chosen core's availability cannot be altered by any
//     lower-rank task still in flight on that device (the free core's clock
//     must not exceed the earliest in-flight claim's start). This makes the
//     multiset of core clocks — and therefore every task's start time —
//     identical to sequential execution.
//
//  3. Rank-order fences for globally ordered side effects. Operations whose
//     cost or outcome depends on shared mutable state (the coherence
//     directory on ever-shared regions, first-use creation of job globals)
//     wait until every lower-rank task has completed. Under Workers=1 the
//     fence is always trivially open; under parallel dispatch it only
//     blocks wall-clock time, never virtual time. A fenced task releases
//     its worker slot while it waits so the pool cannot starve.
//
//  4. Min-rank first-error-wins failure. When tasks fail, the failure that
//     sequential execution would have hit first — the lowest rank — is the
//     one surfaced; everything below it runs to completion (and keeps its
//     checkpoints), in-flight work above it is drained, snapshots that
//     ranks above the failure produced out of order are dropped, and the
//     run's core clocks are rewound to the deterministic post-failure state
//     so recovery replays exactly what a sequential run would have.
//
// A wavefront executes inside a wavePool. Runtime.Run and RunAll drive a
// pool with a single member; the Server's overlapped batch mode attaches
// every batch member (and every recovery retry) to one shared pool, so many
// jobs' ready tasks compete for the same bounded worker slots concurrently.
// Determinism generalizes from one job to N because everything virtual is
// per member — seed views, core clocks, claim ledgers, fences, failure
// frontiers — and the only shared state, the pool's wall-clock worker
// slots, never feeds back into virtual time. Cross-member dispatch order is
// itself deterministic: the pool launches the lowest (rank, submission
// sequence) claimed task (sched.BatchBefore).
//
// Peak device memory is likewise virtualized: tasks journal alloc / share /
// release / migrate events stamped with (virtual time, rank, sequence), and
// the high-water mark per device is computed by a deterministic sweep over
// the sorted journal instead of sampling wall-clock allocator state.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/allocator"
	"repro/internal/dataflow"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/topology"
)

// errWavefrontAborted marks a task abandoned at a fence because a
// lower-rank task already failed: its own outcome is unobservable in
// sequential order, so the error is never surfaced.
var errWavefrontAborted = errors.New("core: wavefront aborted after earlier failure")

// taskState is one task's position in the wavefront lifecycle.
type taskState int8

const (
	tsWaiting taskState = iota // predecessors unmet
	tsReady                    // dispatchable, no core claimed yet
	tsClaimed                  // virtual core claimed, awaiting a worker slot
	tsRunning                  // executing on a worker goroutine
	tsDone                     // completed (or restored) successfully
	tsFailed                   // body / verdict / release failure
	tsSkipped                  // never dispatched (beyond the failure rank)
)

// evKind tags a virtual memory-ledger event.
type evKind int8

const (
	evAlloc   evKind = iota // region created: +1 ref, +block bytes on dev
	evShare                 // additional owner granted: +1 ref
	evRelease               // owner released: -1 ref; last ref frees bytes
	evMove                  // region migrated to dev
)

// memEvent is one entry in the run's virtual memory ledger. The (at, rank,
// seq) triple totally orders events deterministically: virtual time first,
// task rank for cross-task ties, per-task sequence within a task.
type memEvent struct {
	at    time.Duration
	rank  int
	seq   int
	id    region.ID
	kind  evKind
	dev   string // evAlloc / evMove: the region's (new) home device
	bytes int64  // evAlloc: allocator block size
}

// wavePool arbitrates one bounded worker pool across one or more
// concurrently executing wavefronts — one member per batch submission when
// the Server overlaps jobs, exactly one for Runtime.Run and RunAll. Members
// share the pool's lock, condition variable, and worker slots; everything
// virtual (core clocks, claim ledgers, seed views, fences, failure
// frontiers) stays per member, which is what keeps each job's virtual time
// independent of its batch mates. The pool always launches the claimed task
// with the lowest (rank, member sequence) pair — sched.BatchBefore — so
// cross-member dispatch ties resolve by submission order, never by
// wall-clock races; the tiebreak shapes only wall-clock interleaving, since
// each member's virtual time is fixed by its own claim ledger.
type wavePool struct {
	mu   sync.Mutex
	cond *sync.Cond
	// slots counts free worker slots. It transiently dips below zero when a
	// fenced task resumes before a launch completes, matching the bounded
	// overshoot the single-job dispatcher always had.
	slots   int
	members []*wavefront
}

// newWavePool builds a pool with the given worker bound (minimum 1).
func newWavePool(workers int) *wavePool {
	if workers <= 0 {
		workers = 1
	}
	p := &wavePool{slots: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// attach registers a member, assigning its submission sequence. Callers
// either hold p.mu or are the only goroutine aware of the pool yet.
func (p *wavePool) attach(w *wavefront) {
	w.pool = p
	w.seq = len(p.members)
	p.members = append(p.members, w)
}

// launch starts claimed tasks while worker slots are free, always picking
// the lowest (rank, member sequence) claim across all members. Caller
// holds p.mu.
func (p *wavePool) launch() {
	for p.slots > 0 {
		var best *wavefront
		for _, w := range p.members {
			if w.canceled != nil || len(w.dispatch) == 0 {
				continue
			}
			if best == nil || sched.BatchBefore(w.dispatch[0], w.seq, best.dispatch[0], best.seq) {
				best = w
			}
		}
		if best == nil {
			return
		}
		k := best.dispatch[0]
		best.dispatch = best.dispatch[1:]
		best.state[k] = tsRunning
		best.inflight++
		p.slots--
		go best.runTask(k)
	}
}

// wavefront is one run's dispatcher state — one member of a wavePool.
type wavefront struct {
	r      *run
	pool   *wavePool
	seq    int          // submission sequence within the pool (dispatch tiebreak)
	cancel func() error // per-submission cancellation probe (Server); nil never cancels

	// seed is the epoch snapshot every task of this run prices against
	// (merged with predecessor views). Snapshotting once — instead of
	// reading the epoch per task — is what keeps overlapped batch members
	// deterministic: a mate that finishes mid-flight absorbs its views into
	// the shared epoch, and a live read would leak that wall-clock-dependent
	// backlog into this job's virtual time.
	seed *topology.TaskView
	// baseCores snapshots the run's core clocks at wavefront construction,
	// so a failure can rewind them to the deterministic sequential state.
	baseCores map[string][]time.Duration

	order    []*dataflow.Task
	rank     map[string]int
	devOf    []string // rank → assigned compute device
	devOrder []string // deterministic device iteration order
	devs     map[string]*sched.ClaimLedger

	state      []taskState
	unmet      []int           // remaining predecessor count
	ready      []bool          // rank is tsReady (the claim ledger's grant mask)
	readyAt    []time.Duration // max predecessor finish (virtual)
	views      []*topology.TaskView // final clock views of done tasks
	finish     []time.Duration
	restored   []bool // checkpointed in a prior attempt: restore, don't run
	reported   []bool // produced a task report (ran or restored to completion)
	claimCore  []int
	claimStart []time.Duration
	dispatch   []int // claimed ranks awaiting a worker slot, ascending

	inflight int // goroutines launched and not yet returned
	frontier int // lowest rank not yet done
	done     int
	failRank int // lowest failed rank, -1 if none
	failErr  error
	failTask string
	canceled error
}

// runWavefront executes the run's whole DAG on a single-member pool and
// blocks until it drains — the Runtime.Run / RunAll / sequential-batch
// engine. On success the run's report (peak memory, makespan) is finalized
// and every task's clock view is absorbed into the epoch; on failure every
// live region is released and the returned task/error pair identifies the
// lowest-rank failure. A cancellation (cancel returning non-nil) surfaces
// as failedTask == "" with the probe's error.
func (r *run) runWavefront(order []*dataflow.Task, ranks map[string]int, workers int, cancel func() error) (failedTask string, err error) {
	w, failed, err := r.newWavefront(order, ranks, cancel, r.epoch.View())
	if err != nil {
		r.cleanup()
		return failed, err
	}
	p := newWavePool(workers)
	p.attach(w)
	p.mu.Lock()
	w.pump()
	for !w.drainedLocked() {
		p.cond.Wait()
	}
	p.mu.Unlock()
	return w.finalize()
}

// newWavefront validates the run's plan and assembles its dispatcher state:
// per-device claim queues, predecessor counts, the causal seed view, the
// core-clock snapshot failure rewinds restore, and the eager rank-ordered
// injection / restore pre-pass. The returned wavefront is not yet attached
// to a pool. On a validation error the failing task's ID is returned and
// the caller owns run cleanup.
func (r *run) newWavefront(order []*dataflow.Task, ranks map[string]int, cancel func() error, seed *topology.TaskView) (*wavefront, string, error) {
	// Validate the plan up front so scheduling gaps surface as task errors
	// rather than mid-flight panics.
	for _, t := range order {
		asg, ok := r.schedule.Assignments[t.ID()]
		if !ok {
			return nil, t.ID(), errors.New("core: task missing from schedule")
		}
		if _, ok := r.rt.topo.Compute(asg.Compute); !ok {
			return nil, t.ID(), fmt.Errorf("core: scheduled on unknown device %s", asg.Compute)
		}
	}
	n := len(order)
	w := &wavefront{
		r: r, cancel: cancel, seed: seed,
		order: order, rank: ranks,
		devOf: make([]string, n), devs: make(map[string]*sched.ClaimLedger),
		state: make([]taskState, n), unmet: make([]int, n), ready: make([]bool, n),
		readyAt: make([]time.Duration, n), views: make([]*topology.TaskView, n),
		finish: make([]time.Duration, n), restored: make([]bool, n),
		reported:  make([]bool, n),
		claimCore: make([]int, n), claimStart: make([]time.Duration, n),
		baseCores: make(map[string][]time.Duration, len(r.cores)),
		failRank:  -1,
	}
	for dev, cs := range r.cores {
		w.baseCores[dev] = append([]time.Duration(nil), cs...)
	}
	r.ranks = ranks
	for k, t := range order {
		dev := r.schedule.Assignments[t.ID()].Compute
		w.devOf[k] = dev
		ds := w.devs[dev]
		if ds == nil {
			ds = sched.NewClaimLedger()
			w.devs[dev] = ds
			w.devOrder = append(w.devOrder, dev)
		}
		ds.Enqueue(k) // ascending: k iterates in rank order
		w.unmet[k] = len(t.Preds())
		if w.unmet[k] == 0 {
			w.state[k] = tsReady
			w.ready[k] = true
		}
	}
	sort.Strings(w.devOrder)

	// Injection verdicts and restore decisions are taken eagerly in strict
	// rank order, exactly as the sequential loop would consume them: tasks
	// checkpointed by a prior attempt never step the injector, and stepping
	// stops at the first failure (ranks above it never consume injector
	// state). Injector passes are mutation-free, so pre-consuming them is
	// observationally identical to consuming them at dispatch time.
	for k, t := range order {
		if r.ck != nil {
			if _, ok := r.ck.lookup(r.ckID, t.ID()); ok {
				w.restored[k] = true
				continue
			}
		}
		if r.inject != nil {
			if err := r.inject.Step(r.ns, t.ID()); err != nil {
				w.failRank, w.failErr, w.failTask = k, err, t.ID()
				w.state[k] = tsFailed
				w.ready[k] = false
				break
			}
		}
	}
	return w, "", nil
}

// finalize settles a drained wavefront: releases the run's regions and, on
// success, folds its clock views into the epoch and finalizes the report's
// peak-memory and makespan figures. On failure it additionally drops
// snapshots that ranks above the failure produced out of sequential order,
// and rewinds the run's core clocks to the deterministic post-failure
// state: the construction-time snapshot replayed with exactly the
// completions a sequential run would have made (reported ranks at or below
// the failure). Without the rewind, in-flight tasks above the failure rank
// — which only exist at Workers>1 — would leave their finish times on the
// clocks and make every retry's virtual time depend on the pool size.
//
// Must be called exactly once, after drainedLocked() was observed under the
// pool lock; at that point no task goroutine of this member is live, so its
// state is safe to read unlocked.
func (w *wavefront) finalize() (failedTask string, err error) {
	r := w.r
	if w.canceled != nil {
		r.cleanup()
		w.recycleViews()
		return "", w.canceled
	}
	if w.failRank >= 0 {
		if r.ck != nil {
			for k := w.failRank + 1; k < len(w.order); k++ {
				if w.state[k] == tsDone && !w.restored[k] {
					r.ck.drop(r.ckID, w.order[k].ID())
				}
			}
		}
		for dev, base := range w.baseCores {
			copy(r.cores[dev], base)
		}
		for k := 0; k <= w.failRank && k < len(w.order); k++ {
			if w.reported[k] {
				r.cores[w.devOf[k]][w.claimCore[k]] = w.finish[k]
			}
		}
		r.cleanup()
		w.recycleViews()
		return w.failTask, w.failErr
	}

	// Success: fold every task's clock view back into the epoch so batch
	// mates that run after this job queue behind its device backlog
	// (sequential batches and RunAll; overlapped members never re-read the
	// epoch, so for them this is inert bookkeeping).
	r.epoch.AbsorbViews(w.views...)
	r.cleanup()
	w.recycleViews()
	r.computePeak()
	r.report.PeakDeviceBytes = r.peak
	for k := range w.restored {
		if w.restored[k] {
			r.report.SkippedTasks++
		}
	}
	for _, tr := range r.report.Tasks {
		if tr.Finish > r.report.Makespan {
			r.report.Makespan = tr.Finish
		}
	}
	return "", nil
}

// recycleViews returns the run's task views and seed snapshot to the pool.
// Safe only after cleanup: every region the run held has been released, so
// stale handles fail their manager lookup before their clock view — possibly
// one of these, now recycled — would be consulted.
func (w *wavefront) recycleViews() {
	for k, v := range w.views {
		topology.PutTaskView(v) // nil-safe: failed/skipped ranks have no view
		w.views[k] = nil
	}
	topology.PutTaskView(w.seed)
	w.seed = nil
}

// drainedLocked reports whether the wavefront has nothing left to do.
// Caller holds the pool lock.
func (w *wavefront) drainedLocked() bool {
	if w.inflight > 0 {
		return false
	}
	if w.canceled != nil {
		return true
	}
	if w.failRank >= 0 {
		return w.frontier >= w.failRank
	}
	return w.done == len(w.order)
}

// pump advances this member (claim granting, cancellation probe, failure
// revocation) and then lets the pool launch whatever is now dispatchable —
// across all members. Caller holds the pool lock.
func (w *wavefront) pump() {
	w.advance()
	w.pool.launch()
}

// advance grants core claims in rank order per device, probes cancellation,
// and revokes claims orphaned by a failure. It never launches; the pool
// does, so cross-member dispatch order stays deterministic. Caller holds
// the pool lock.
func (w *wavefront) advance() {
	if w.cancel != nil && w.canceled == nil {
		if err := w.cancel(); err != nil {
			w.canceled = err
			w.pool.cond.Broadcast()
		}
	}
	if w.canceled != nil {
		return
	}
	limit := len(w.order)
	if w.failRank >= 0 && w.failRank < limit {
		limit = w.failRank // nothing at or above the failure rank dispatches
	}
	for {
		progress := false
		for _, dev := range w.devOrder {
			ds := w.devs[dev]
			// The ledger grants the whole run of consecutive dispatchable
			// head-of-queue ranks in one pass (sched.GrantBatch), so a
			// completion that unblocks several ranks costs one critical
			// section instead of one wakeup each.
			for _, g := range ds.GrantBatch(w.r.cores[dev], w.r.base, limit, w.ready, w.readyAt) {
				w.claimCore[g.Rank], w.claimStart[g.Rank] = g.Core, g.Start
				w.state[g.Rank] = tsClaimed
				w.ready[g.Rank] = false
				w.dispatch = insertRank(w.dispatch, g.Rank)
				progress = true
			}
		}
		// A failure revokes claims at or above the failure rank that have
		// not launched yet.
		if w.failRank >= 0 && len(w.dispatch) > 0 {
			keep := w.dispatch[:0]
			for _, k := range w.dispatch {
				if k < w.failRank {
					keep = append(keep, k)
					continue
				}
				w.devs[w.devOf[k]].Release(w.claimCore[k])
				w.state[k] = tsSkipped
			}
			w.dispatch = keep
		}
		if !progress {
			return
		}
	}
}

// insertRank inserts k into an ascending rank slice.
func insertRank(s []int, k int) []int {
	i := sort.SearchInts(s, k)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = k
	return s
}

// seedView builds the task's causal clock view: the wavefront's seed
// snapshot merged with every predecessor's final view. Predecessor views
// are published under the pool lock before the successor launches, so
// reading them here without the lock is race-free.
func (w *wavefront) seedView(k int) *topology.TaskView {
	v := topology.GetTaskView(w.seed)
	for _, p := range w.order[k].Preds() {
		v.Merge(w.views[w.rank[p.ID()]])
	}
	return v
}

// runTask executes one claimed task on a worker goroutine and folds its
// outcome back into the dispatcher.
func (w *wavefront) runTask(k int) {
	t := w.order[k]
	view := w.seedView(k)
	fin, rep, err := w.r.execTaskAt(w, k, t, view, w.claimStart[k])

	p := w.pool
	p.mu.Lock()
	w.inflight--
	p.slots++
	dev := w.devOf[k]
	w.devs[dev].Release(w.claimCore[k])
	if rep != nil {
		// The task ran to completion (possibly with a release error):
		// its core clock and report are recorded either way, exactly like
		// the sequential engine.
		w.reported[k] = true
		w.r.cores[dev][w.claimCore[k]] = fin
		w.finish[k] = fin
		w.r.finish[t.ID()] = fin
		w.r.report.Tasks[t.ID()] = rep
	}
	if err != nil {
		w.state[k] = tsFailed
		if !errors.Is(err, errWavefrontAborted) && (w.failRank < 0 || k < w.failRank) {
			w.failRank, w.failErr, w.failTask = k, err, t.ID()
		}
		// The failed task's view was never published to w.views, so nothing
		// merges from it or prices through it again — recycle it now.
		topology.PutTaskView(view)
	} else {
		w.state[k] = tsDone
		w.done++
		w.views[k] = view
		for _, s := range t.Succs() {
			sk := w.rank[s.ID()]
			w.unmet[sk]--
			if fin > w.readyAt[sk] {
				w.readyAt[sk] = fin
			}
			if w.unmet[sk] == 0 && w.state[sk] == tsWaiting {
				w.state[sk] = tsReady
				w.ready[sk] = true
			}
		}
		for w.frontier < len(w.order) && w.state[w.frontier] == tsDone {
			w.frontier++
		}
	}
	w.pump()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// fence blocks the calling task (rank k) until the ordering its access
// needs is established — the barrier installed on coherence-priced accesses
// and global first-use. deps == nil demands the full rank barrier (every
// rank below k completed): the conservative form used for open sharing and
// first-use creation, where the set of ordering-relevant parties is
// unknowable. A non-nil deps lists the region's happens-before sharer set
// (region.Handle.fenceDeps); the fence then waits only for those ranks, so
// a region whose sharing phase has passed stops serializing the whole run.
// The barrier is strictly per member: batch mates sharing the pool never
// fence against each other. The waiting task releases its worker slot so
// the pool cannot starve; it aborts if a rank below it fails (its own
// outcome would be unobservable sequentially — this also covers deps that
// failed or were revoked and will never retire) or the run is canceled.
func (w *wavefront) fence(k int, deps []int) error {
	p := w.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.fenceOpenLocked(k, deps) {
		return nil
	}
	p.slots++
	w.pump()
	for !w.fenceOpenLocked(k, deps) {
		if w.failRank >= 0 && w.failRank < k {
			p.slots--
			return errWavefrontAborted
		}
		if w.canceled != nil {
			p.slots--
			return w.canceled
		}
		p.cond.Wait()
	}
	p.slots--
	return nil
}

// fenceOpenLocked reports whether rank k's fence requirement already holds:
// every rank below k retired (the frontier passed k), or — when deps lists
// the access's happens-before set — every listed rank below k completed.
// Caller holds the pool lock.
func (w *wavefront) fenceOpenLocked(k int, deps []int) bool {
	if w.frontier >= k {
		return true
	}
	if deps == nil {
		return false
	}
	for _, d := range deps {
		if d < k && w.state[d] != tsDone {
			return false
		}
	}
	return true
}

// computePeak sweeps the run's virtual memory ledger in deterministic
// (time, rank, seq) order and records the per-device high-water mark.
// Regions never released (job globals, retained final outputs) stay live
// through the end of the sweep, matching their actual lifetime.
func (r *run) computePeak() {
	r.smu.Lock()
	events := r.events
	r.events = nil
	r.smu.Unlock()
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.seq < b.seq
	})
	type liveRegion struct {
		dev   string
		bytes int64
		refs  int
	}
	live := make(map[region.ID]*liveRegion)
	cur := make(map[string]int64)
	bump := func(dev string) {
		if cur[dev] > r.peak[dev] {
			r.peak[dev] = cur[dev]
		}
	}
	for _, e := range events {
		switch e.kind {
		case evAlloc:
			live[e.id] = &liveRegion{dev: e.dev, bytes: e.bytes, refs: 1}
			cur[e.dev] += e.bytes
			bump(e.dev)
		case evShare:
			if lr := live[e.id]; lr != nil {
				lr.refs++
			}
		case evRelease:
			if lr := live[e.id]; lr != nil {
				lr.refs--
				if lr.refs == 0 {
					cur[lr.dev] -= lr.bytes
					delete(live, e.id)
				}
			}
		case evMove:
			if lr := live[e.id]; lr != nil && lr.dev != e.dev {
				cur[lr.dev] -= lr.bytes
				lr.dev = e.dev
				cur[e.dev] += lr.bytes
				bump(e.dev)
			}
		}
	}
}

// flushEvents publishes a completed task's ledger entries. Failed tasks
// never flush: their run's report is discarded anyway, and partial journals
// would imbalance the sweep.
func (r *run) flushEvents(ctx *taskCtx) {
	if len(ctx.events) == 0 {
		return
	}
	r.smu.Lock()
	r.events = append(r.events, ctx.events...)
	r.smu.Unlock()
}

// note journals one ledger event at the context's current virtual time.
func (c *taskCtx) note(kind evKind, id region.ID, dev string, bytes int64) {
	c.events = append(c.events, memEvent{
		at: c.now, rank: c.rank, seq: c.evseq,
		id: id, kind: kind, dev: dev, bytes: bytes,
	})
	c.evseq++
}

func (c *taskCtx) noteAlloc(h *region.Handle, size int64) {
	if dev, err := h.DeviceID(); err == nil {
		c.note(evAlloc, h.ID(), dev, allocator.BlockSize(size))
	}
}

func (c *taskCtx) noteShare(h *region.Handle)   { c.note(evShare, h.ID(), "", 0) }
func (c *taskCtx) noteRelease(h *region.Handle) { c.note(evRelease, h.ID(), "", 0) }

func (c *taskCtx) noteMove(h *region.Handle) {
	if dev, err := h.DeviceID(); err == nil {
		c.note(evMove, h.ID(), dev, 0)
	}
}
