package core

// Edge-case coverage for Server.collect — the batch-folding path between
// the admission queue and the epoch executors — and regression pins for
// the canceled-while-queued fixes: dead tickets must neither reach the
// queue (pre-canceled contexts) nor occupy batch slots (canceled after
// enqueue).

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataflow"
	"repro/internal/telemetry"
)

// holdWorker parks the server's only worker on a blocking job and returns
// a release function. It guarantees subsequently submitted jobs queue.
func holdWorker(t *testing.T, s *Server) (release func(), done *Ticket) {
	t.Helper()
	started := make(chan struct{})
	rel := make(chan struct{})
	tk, err := s.SubmitAsync(context.Background(), blockingJob("holder", started, rel))
	if err != nil {
		t.Fatalf("holder: %v", err)
	}
	<-started
	return func() { close(rel) }, tk
}

// waitQueued polls until the admission queue holds n tickets.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d tickets (have %d)", n, len(s.queue))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitPreCanceledNeverQueues is the SubmitAsync fix: a submission
// whose context is already dead is refused at the door — counted canceled,
// not admitted, and its body never runs.
func TestSubmitPreCanceledNeverQueues(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var ran atomic.Bool
	j := dataflow.NewJob("dead-on-arrival")
	j.Task("t", dataflow.Props{Ops: 1e3}, func(dataflow.Ctx) error {
		ran.Store(true)
		return nil
	})
	if _, err := s.SubmitAsync(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	tel := s.Runtime().Telemetry()
	if got := tel.Counter(telemetry.LayerRuntime, "server_canceled"); got != 1 {
		t.Errorf("server_canceled = %d, want 1", got)
	}
	if got := tel.Counter(telemetry.LayerRuntime, "server_admitted"); got != 0 {
		t.Errorf("server_admitted = %d, want 0", got)
	}
	if ran.Load() {
		t.Error("dead-on-arrival job executed")
	}
}

// TestCollectCanceledTicketFreesBatchSlot is the collect-side regression
// pin: a ticket canceled while queued must not consume one of the batch's
// MaxBatch slots. Two live jobs queued behind a canceled one must land in
// the same two-slot batch — before the fix the corpse took a slot and
// split them across epochs.
func TestCollectCanceledTicketFreesBatchSlot(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 2, QueueDepth: 8})
	release, holder := holdWorker(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := s.SubmitAsync(ctx, pipelineJob("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	live1, err := s.SubmitAsync(context.Background(), pipelineJob("live1"))
	if err != nil {
		t.Fatal(err)
	}
	live2, err := s.SubmitAsync(context.Background(), pipelineJob("live2"))
	if err != nil {
		t.Fatal(err)
	}
	waitQueued(t, s, 3)
	cancel() // kill the head-of-line ticket while it sits in the queue

	release()
	if _, err := holder.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Errorf("doomed ticket: err = %v, want context.Canceled", err)
	}
	for _, tk := range []*Ticket{live1, live2} {
		rep, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.BatchSize != 2 {
			t.Errorf("%s: BatchSize = %d, want 2 (canceled ticket consumed a batch slot)", rep.Job, rep.BatchSize)
		}
	}
	if got := s.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_canceled"); got != 1 {
		t.Errorf("server_canceled = %d, want 1", got)
	}
}

// TestCollectEntireBatchCanceled: when every queued ticket is dead the
// batch comes back empty and runBatch must no-op — subsequent live
// submissions still serve normally.
func TestCollectEntireBatchCanceled(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 4, QueueDepth: 8})
	release, holder := holdWorker(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	var doomed []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := s.SubmitAsync(ctx, pipelineJob("doomed"))
		if err != nil {
			t.Fatal(err)
		}
		doomed = append(doomed, tk)
	}
	waitQueued(t, s, 3)
	cancel()
	release()
	if _, err := holder.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, tk := range doomed {
		if _, err := tk.Wait(context.Background()); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}
	rep, err := s.Submit(context.Background(), pipelineJob("after"))
	if err != nil {
		t.Fatalf("server wedged after all-dead batch: %v", err)
	}
	if rep.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1", rep.BatchSize)
	}
}

// TestCollectMaxBatchOne: MaxBatch=1 disables folding — queued jobs each
// get a private epoch even when they are all simultaneously available.
func TestCollectMaxBatchOne(t *testing.T) {
	s := newTestServer(t, ServerConfig{EpochWorkers: 1, MaxBatch: 1, QueueDepth: 8})
	release, holder := holdWorker(t, s)
	var tks []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.SubmitAsync(context.Background(), pipelineJob("solo"))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	waitQueued(t, s, 4)
	release()
	if _, err := holder.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tks {
		rep, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.BatchSize != 1 {
			t.Errorf("BatchSize = %d, want 1 with MaxBatch=1", rep.BatchSize)
		}
	}
}

// TestCollectLingerExpiresWithStraggler: a lingering worker launches the
// partial batch when the timer fires; a straggler arriving after that
// rides the next batch, not the lingered one.
func TestCollectLingerExpiresWithStraggler(t *testing.T) {
	s := newTestServer(t, ServerConfig{
		EpochWorkers: 1, MaxBatch: 8, QueueDepth: 8,
		MaxLinger: 30 * time.Millisecond,
	})
	first, err := s.SubmitAsync(context.Background(), pipelineJob("first"))
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := first.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.BatchSize != 1 {
		t.Errorf("lingered batch size = %d, want 1 (nothing else arrived)", rep1.BatchSize)
	}
	// The straggler shows up long after the first batch launched.
	straggler, err := s.SubmitAsync(context.Background(), pipelineJob("straggler"))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := straggler.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BatchSize != 1 {
		t.Errorf("straggler batch size = %d, want 1", rep2.BatchSize)
	}
}

// TestCollectLingerFillsBatch: during the linger window, arrivals fold
// into the waiting batch up to MaxBatch.
func TestCollectLingerFillsBatch(t *testing.T) {
	s := newTestServer(t, ServerConfig{
		EpochWorkers: 1, MaxBatch: 2, QueueDepth: 8,
		MaxLinger: 2 * time.Second, // far longer than the fill takes
	})
	a, err := s.SubmitAsync(context.Background(), pipelineJob("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SubmitAsync(context.Background(), pipelineJob("b"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range []*Ticket{a, b} {
		rep, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.BatchSize != 2 {
			t.Errorf("%s: BatchSize = %d, want 2 (linger should have folded both)", rep.Job, rep.BatchSize)
		}
	}
}

// TestCollectQueueClosedMidLinger: Close while a worker lingers for more
// jobs must launch the partial batch, complete it, and shut down cleanly —
// not strand the lingering worker for the full MaxLinger.
func TestCollectQueueClosedMidLinger(t *testing.T) {
	s := newTestServer(t, ServerConfig{
		EpochWorkers: 1, MaxBatch: 8, QueueDepth: 8,
		MaxLinger: 10 * time.Second, // Close must cut this short
	})
	tk, err := s.SubmitAsync(context.Background(), pipelineJob("lone"))
	if err != nil {
		t.Fatal(err)
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Close(closeCtx); err != nil {
		t.Fatalf("Close during linger: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("Close took %v — lingering worker did not observe the closed queue", waited)
	}
	rep, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("job admitted before Close must complete: %v", err)
	}
	if rep.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1", rep.BatchSize)
	}
}
