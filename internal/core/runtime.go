// Package core implements the paper's runtime system (RTS, §2.3) and is the
// public programming-model API of this library. The RTS:
//
//  1. determines at runtime which physical memory device fits each task's
//     declared requirements (via the placement optimizer),
//  2. allocates the Memory Regions tasks request (via the region manager),
//  3. deallocates regions after the last owning task finishes,
//  4. schedules tasks resource-aware onto heterogeneous compute devices,
//
// and moves data between tasks by ownership transfer (Fig. 4), falling back
// to physical copies only when the receiving compute device cannot address
// the producer's placement within the declared properties.
//
// Applications build a dataflow.Job, attach declarative properties, and call
// Runtime.Run. Everything below the Job API — devices, interconnects,
// coherence, fault tolerance — is simulated (see DESIGN.md §2), so runs are
// deterministic and hardware-independent.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Config assembles a Runtime. Zero fields get production defaults: the
// reference single-node testbed, the best-fit placement optimizer, and the
// HEFT scheduler.
type Config struct {
	Topology  *topology.Topology
	Placer    region.Placer
	Scheduler sched.Scheduler
	Telemetry *telemetry.Registry
	// Inject, when set, is consulted before every task execution and may
	// fail it deterministically (fault.ErrInjected) — the chaos hook tests
	// and disaggsim use to exercise recovery. Nil injects nothing.
	Inject *fault.Injector
}

// Runtime is the RTS instance. Run is safe for concurrent submission from
// multiple goroutines: each call executes in its own virtual-time epoch
// (fresh device queues), so jobs never corrupt each other's clocks. For
// admission control, batching, and backpressure on top of this, use Server.
type Runtime struct {
	topo    *topology.Topology
	placer  region.Placer
	sched   sched.Scheduler
	regions *region.Manager
	tel     *telemetry.Registry
	inject  *fault.Injector
}

// New builds a runtime.
func New(cfg Config) (*Runtime, error) {
	topo := cfg.Topology
	if topo == nil {
		t, err := topology.BuildSingleNode(topology.DefaultSingleNode())
		if err != nil {
			return nil, err
		}
		topo = t
	}
	placer := cfg.Placer
	if placer == nil {
		placer = placement.NewBestFit(topo)
	}
	scheduler := cfg.Scheduler
	if scheduler == nil {
		scheduler = sched.HEFT{}
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placer, Telemetry: tel})
	if err != nil {
		return nil, err
	}
	return &Runtime{topo: topo, placer: placer, sched: scheduler, regions: mgr, tel: tel, inject: cfg.Inject}, nil
}

// Topology returns the hardware graph.
func (rt *Runtime) Topology() *topology.Topology { return rt.topo }

// Regions exposes the region manager (examples and tests).
func (rt *Runtime) Regions() *region.Manager { return rt.regions }

// Telemetry returns the cross-layer metrics registry.
func (rt *Runtime) Telemetry() *telemetry.Registry { return rt.tel }

// TaskReport describes one executed task.
type TaskReport struct {
	Task    string
	Compute string
	Start   time.Duration
	Finish  time.Duration
	// Regions maps region label → physical device the RTS chose, the
	// observable outcome of declarative placement (Fig. 3).
	Regions map[string]string
	Logs    []string
}

// Report is the outcome of one job run.
type Report struct {
	Job       string
	Scheduler string
	Placer    string
	Makespan  time.Duration
	Tasks     map[string]*TaskReport
	// PeakDeviceBytes is the high-water allocation per device.
	PeakDeviceBytes map[string]int64
	// FinalOutputs maps sink task → device holding its retained output.
	FinalOutputs map[string]string
	// Attempts is the number of runs recovery needed to complete the job
	// (1 = no retry). Zero when the run was not recovery-managed.
	Attempts int
}

// String renders the report as a fixed-width table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %q (%s scheduler, %s placer): makespan %v\n", r.Job, r.Scheduler, r.Placer, r.Makespan)
	ids := make([]string, 0, len(r.Tasks))
	for id := range r.Tasks {
		ids = append(ids, id)
	}
	// Stable order with an ID tie-break: map iteration seeds ids randomly,
	// so sorting on Start alone renders same-start tasks nondeterministically.
	sort.SliceStable(ids, func(a, b int) bool {
		ta, tb := r.Tasks[ids[a]], r.Tasks[ids[b]]
		if ta.Start != tb.Start {
			return ta.Start < tb.Start
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		t := r.Tasks[id]
		fmt.Fprintf(&b, "  %-22s on %-14s %12v → %12v\n", t.Task, t.Compute, t.Start, t.Finish)
		names := make([]string, 0, len(t.Regions))
		for n := range t.Regions {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "      region %-18s → %s\n", n, t.Regions[n])
		}
		for _, l := range t.Logs {
			fmt.Fprintf(&b, "      log: %s\n", l)
		}
	}
	return b.String()
}

// globalEntry is a job-wide named region (Global State / Global Scratch).
type globalEntry struct {
	handle *region.Handle
	class  props.RegionClass
	shared map[string]*region.Handle // task id → that task's share
}

// run is the per-job execution state.
type run struct {
	rt       *Runtime
	job      *dataflow.Job
	schedule *sched.Schedule
	// epoch is the virtual-time view this run's accesses queue against.
	// Runs in different epochs are fully isolated; runs sharing one epoch
	// (RunAll, Server batches) contend on the same device queues.
	epoch *topology.Epoch
	// ns namespaces region owners. Defaults to the job name; the Server
	// makes it unique per submission so identical jobs can run in one
	// shared epoch without their owners colliding.
	ns string
	// base is the earliest virtual time any task of this run may start —
	// recovery retries use it to model per-attempt backoff on the epoch
	// clock without perturbing batch mates.
	base   time.Duration
	cores  map[string][]time.Duration
	finish map[string]time.Duration
	// pending maps consumer task → producer task → delivered handle.
	pending map[string]map[string]*region.Handle
	globals map[string]*globalEntry
	report  *Report
	peak    map[string]int64
	ck      *Checkpointer // nil unless recovery drives the run
	ckID    string        // unique per-submission snapshot namespace
	inject  *fault.Injector
}

// Run executes the job to completion on the virtual clock and returns the
// report. On task failure every live region is released before returning
// (no leaks), and the error identifies the failing task.
func (rt *Runtime) Run(job *dataflow.Job) (*Report, error) {
	return rt.execute(job, nil, "")
}

// execute is the shared engine behind Run and RunWithRecovery. ckID is the
// snapshot namespace of this submission (one per RunWithRecovery call, so
// retries restore their own attempt's checkpoints and nobody else's).
func (rt *Runtime) execute(job *dataflow.Job, ck *Checkpointer, ckID string) (*Report, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	// Each run gets a fresh virtual-time epoch: device service queues start
	// drained and never touch the shared topology, so concurrent Runs are
	// isolated. (RunAll and Server batches share one epoch across their
	// jobs — that is where contention is the point.)
	schedule, err := rt.sched.Schedule(job, rt.topo)
	if err != nil {
		return nil, err
	}
	r := rt.newRun(job, schedule, rt.topo.NewEpoch(), job.Name(), nil)
	r.ck, r.ckID = ck, ckID
	order, err := job.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		if err := r.execTask(t); err != nil {
			r.cleanup()
			return nil, fmt.Errorf("core: task %s: %w", t.ID(), err)
		}
	}
	r.cleanup()
	r.report.PeakDeviceBytes = r.peak
	for _, tr := range r.report.Tasks {
		if tr.Finish > r.report.Makespan {
			r.report.Makespan = tr.Finish
		}
	}
	return r.report, nil
}

// newRun assembles per-job execution state. cores may be shared between
// runs (RunAll, Server batches); nil gets this run its own fresh core
// availability. ns namespaces region owners (see run.ns).
func (rt *Runtime) newRun(job *dataflow.Job, schedule *sched.Schedule, epoch *topology.Epoch, ns string, cores map[string][]time.Duration) *run {
	if cores == nil {
		cores = make(map[string][]time.Duration)
		for _, c := range rt.topo.Computes() {
			cores[c.ID] = make([]time.Duration, c.Cores)
		}
	}
	return &run{
		rt:       rt,
		job:      job,
		schedule: schedule,
		epoch:    epoch,
		ns:       ns,
		cores:    cores,
		finish:   make(map[string]time.Duration),
		pending:  make(map[string]map[string]*region.Handle),
		globals:  make(map[string]*globalEntry),
		peak:     make(map[string]int64),
		inject:   rt.inject,
		report: &Report{
			Job: job.Name(), Scheduler: rt.sched.Name(), Placer: rt.placer.Name(),
			Tasks:        make(map[string]*TaskReport),
			FinalOutputs: make(map[string]string),
		},
	}
}

// samplePeak records per-device high-water allocation.
func (r *run) samplePeak() {
	for dev, b := range r.rt.regions.DeviceBytes() {
		if b > r.peak[dev] {
			r.peak[dev] = b
		}
	}
}

// execTask runs one task at its scheduled placement.
func (r *run) execTask(t *dataflow.Task) error {
	asg, ok := r.schedule.Assignments[t.ID()]
	if !ok {
		return errors.New("core: task missing from schedule")
	}
	comp, ok := r.rt.topo.Compute(asg.Compute)
	if !ok {
		return fmt.Errorf("core: scheduled on unknown device %s", asg.Compute)
	}
	// Ready when all predecessors finished.
	var ready time.Duration
	for _, p := range t.Preds() {
		if f := r.finish[p.ID()]; f > ready {
			ready = f
		}
	}
	// Earliest free core on the assigned device.
	cores := r.cores[asg.Compute]
	coreIdx := 0
	for i := range cores {
		if cores[i] < cores[coreIdx] {
			coreIdx = i
		}
	}
	start := ready
	if cores[coreIdx] > start {
		start = cores[coreIdx]
	}
	if r.base > start {
		start = r.base // recovery backoff: retries begin no earlier
	}

	ctx := &taskCtx{
		run: r, task: t, compute: comp,
		now:     start,
		owner:   region.Owner(r.ns + "/" + t.ID()),
		regions: make(map[string]string),
	}
	// Recovery fast path: a checkpointed task is restored, not re-run.
	if r.ck != nil {
		if _, ok := r.ck.lookup(r.ckID, t.ID()); ok {
			return r.restoreTask(ctx, t, cores, coreIdx, start)
		}
	}
	// Collect inputs: transfer exclusive outputs from predecessors (the
	// Fig. 4 handover), adopt shared ones as-is.
	for _, p := range t.Preds() {
		h := r.pending[t.ID()][p.ID()]
		if h == nil {
			continue
		}
		if cls, err := h.Class(); err == nil && cls == props.Transfer {
			nh, done, err := h.Transfer(ctx.now, ctx.owner, asg.Compute)
			if err != nil {
				return fmt.Errorf("input transfer from %s: %w", p.ID(), err)
			}
			ctx.now = done
			h = nh
		}
		ctx.inputs = append(ctx.inputs, h)
		delete(r.pending[t.ID()], p.ID())
	}

	// Fault injection point: a killed task fails exactly as if its body
	// had crashed after collecting inputs, before any effect.
	if r.inject != nil {
		if err := r.inject.Step(r.ns, t.ID()); err != nil {
			ctx.releaseAll()
			return err
		}
	}
	// Run the body; structural tasks (nil fn) still cost their declared
	// Ops and produce their declared output.
	if fn := t.Fn(); fn != nil {
		if err := fn(ctx); err != nil {
			ctx.releaseAll()
			return err
		}
	}
	ctx.Charge(t.Props().Ops)
	if ctx.output == nil && t.Props().OutputBytes > 0 && len(t.Succs()) > 0 {
		if _, err := ctx.Output(t.Props().OutputBytes); err != nil {
			ctx.releaseAll()
			return fmt.Errorf("implicit output: %w", err)
		}
	}
	r.samplePeak()

	// Snapshot the output before it is handed over (fault tolerance).
	if r.ck != nil {
		if err := r.checkpointTask(ctx, t); err != nil {
			ctx.releaseAll()
			return err
		}
	}

	// Hand the output over.
	if ctx.output != nil {
		if err := r.deliverOutput(ctx, t); err != nil {
			ctx.releaseAll()
			return err
		}
	}
	// Scratch dies with the task; inputs were consumed.
	ctx.releaseScratchAndInputs()
	// Release this task's shares of globals (the job-level owner keeps
	// them alive until the job ends). One failed release must not leak
	// the remaining shares: release them all in deterministic order and
	// aggregate the errors.
	names := make([]string, 0, len(ctx.globalShares))
	for name := range ctx.globalShares {
		names = append(names, name)
	}
	sort.Strings(names)
	var relErrs []error
	for _, name := range names {
		if err := ctx.globalShares[name].Release(); err != nil {
			relErrs = append(relErrs, fmt.Errorf("releasing global %s: %w", name, err))
		}
	}

	// The task did run to completion: record its report and finish time
	// even when a share release failed, so downstream accounting (makespan,
	// spans, reports) stays consistent.
	cores[coreIdx] = ctx.now
	r.finish[t.ID()] = ctx.now
	r.report.Tasks[t.ID()] = &TaskReport{
		Task: t.ID(), Compute: asg.Compute,
		Start: start, Finish: ctx.now,
		Regions: ctx.regions, Logs: ctx.logs,
	}
	r.rt.tel.Record(telemetry.Span{
		Layer: telemetry.LayerRuntime, Job: r.job.Name(), Task: t.ID(),
		Name: "exec", Start: start, End: ctx.now,
	})
	return errors.Join(relErrs...)
}

// deliverOutput routes a finished task's output region to its successors:
// one successor → exclusive pending transfer; several → shared grants
// (Global Scratch semantics); none → retained as the job's final output.
func (r *run) deliverOutput(ctx *taskCtx, t *dataflow.Task) error {
	succs := t.Succs()
	switch len(succs) {
	case 0:
		dev, err := ctx.output.DeviceID()
		if err != nil {
			return err
		}
		r.report.FinalOutputs[t.ID()] = dev
		// Retain until cleanup.
		r.globals["__final__/"+t.ID()] = &globalEntry{handle: ctx.output}
		ctx.output = nil
		return nil
	case 1:
		if r.pending[succs[0].ID()] == nil {
			r.pending[succs[0].ID()] = make(map[string]*region.Handle)
		}
		r.pending[succs[0].ID()][t.ID()] = ctx.output
		ctx.output = nil
		return nil
	default:
		for _, s := range succs {
			sAsg := r.schedule.Assignments[s.ID()]
			sh, err := ctx.output.Share(region.Owner(r.ns+"/"+s.ID()+"/in"), sAsg.Compute)
			if err != nil {
				return fmt.Errorf("sharing output with %s: %w", s.ID(), err)
			}
			if r.pending[s.ID()] == nil {
				r.pending[s.ID()] = make(map[string]*region.Handle)
			}
			r.pending[s.ID()][t.ID()] = sh
		}
		// The producer's own claim ends; the shares keep the region alive.
		if err := ctx.output.Release(); err != nil {
			return err
		}
		ctx.output = nil
		return nil
	}
}

// cleanup releases everything the run still holds: job globals, retained
// final outputs, and any undelivered pending handles (failure paths).
func (r *run) cleanup() {
	for _, g := range r.globals {
		if g.handle != nil {
			g.handle.Release() //nolint:errcheck // best-effort teardown
		}
	}
	r.globals = map[string]*globalEntry{}
	for _, m := range r.pending {
		for _, h := range m {
			h.Release() //nolint:errcheck // best-effort teardown
		}
	}
	r.pending = map[string]map[string]*region.Handle{}
}
