// Package core implements the paper's runtime system (RTS, §2.3) and is the
// public programming-model API of this library. The RTS:
//
//  1. determines at runtime which physical memory device fits each task's
//     declared requirements (via the placement optimizer),
//  2. allocates the Memory Regions tasks request (via the region manager),
//  3. deallocates regions after the last owning task finishes,
//  4. schedules tasks resource-aware onto heterogeneous compute devices,
//
// and moves data between tasks by ownership transfer (Fig. 4), falling back
// to physical copies only when the receiving compute device cannot address
// the producer's placement within the declared properties.
//
// Applications build a dataflow.Job, attach declarative properties, and call
// Runtime.Run. Everything below the Job API — devices, interconnects,
// coherence, fault tolerance — is simulated (see DESIGN.md §2), so runs are
// deterministic and hardware-independent.
package core

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ExecConfig is the execution-engine configuration shared by the two entry
// points: Runtime construction (New) and the serving front door
// (ServerConfig embeds it). Zero fields get production defaults: the
// reference single-node testbed, the best-fit placement optimizer, and the
// HEFT scheduler.
type ExecConfig struct {
	Topology  *topology.Topology
	Placer    region.Placer
	Scheduler sched.Scheduler
	Telemetry *telemetry.Registry
	// Inject, when set, is consulted before every task execution and may
	// fail it deterministically (fault.ErrInjected) — the chaos hook tests
	// and disaggsim use to exercise recovery. Nil injects nothing.
	Inject *fault.Injector
	// Workers bounds the wavefront executor's worker pool: how many tasks
	// may execute their real work (transfers, copies, bodies, checkpoint
	// I/O) concurrently — within one run, and across every job of an
	// overlapped serving batch, which shares a single pool. Virtual time is
	// identical for every value — see wavefront.go. Zero or negative
	// defaults to GOMAXPROCS.
	Workers int
}

// Config is the historical name of ExecConfig, kept as an alias so existing
// Runtime constructors keep compiling unchanged.
type Config = ExecConfig

// Runtime is the RTS instance. Run is safe for concurrent submission from
// multiple goroutines: each call executes in its own virtual-time epoch
// (fresh device queues), so jobs never corrupt each other's clocks. For
// admission control, batching, and backpressure on top of this, use Server.
type Runtime struct {
	topo    *topology.Topology
	placer  region.Placer
	sched   sched.Scheduler
	regions *region.Manager
	tel     *telemetry.Registry
	inject  *fault.Injector
	workers int
}

// New builds a runtime.
func New(cfg Config) (*Runtime, error) {
	topo := cfg.Topology
	if topo == nil {
		t, err := topology.BuildSingleNode(topology.DefaultSingleNode())
		if err != nil {
			return nil, err
		}
		topo = t
	}
	placer := cfg.Placer
	if placer == nil {
		placer = placement.NewBestFit(topo)
	}
	scheduler := cfg.Scheduler
	if scheduler == nil {
		scheduler = sched.HEFT{}
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placer, Telemetry: tel})
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = goruntime.GOMAXPROCS(0)
	}
	return &Runtime{topo: topo, placer: placer, sched: scheduler, regions: mgr, tel: tel, inject: cfg.Inject, workers: workers}, nil
}

// Workers reports the wavefront executor's worker-pool bound.
func (rt *Runtime) Workers() int { return rt.workers }

// Topology returns the hardware graph.
func (rt *Runtime) Topology() *topology.Topology { return rt.topo }

// Regions exposes the region manager (examples and tests).
func (rt *Runtime) Regions() *region.Manager { return rt.regions }

// Telemetry returns the cross-layer metrics registry.
func (rt *Runtime) Telemetry() *telemetry.Registry { return rt.tel }

// Scheduler returns the task scheduler — load harnesses use it to price
// sampled jobs (sched.EstimateJob) when deriving arrival rates from a
// target utilization.
func (rt *Runtime) Scheduler() sched.Scheduler { return rt.sched }

// TaskReport describes one executed task.
type TaskReport struct {
	Task    string
	Compute string
	Start   time.Duration
	Finish  time.Duration
	// Regions maps region label → physical device the RTS chose, the
	// observable outcome of declarative placement (Fig. 3).
	Regions map[string]string
	Logs    []string
}

// Report is the outcome of one job run.
type Report struct {
	Job       string
	Scheduler string
	Placer    string
	Makespan  time.Duration
	Tasks     map[string]*TaskReport
	// PeakDeviceBytes is the high-water allocation per device.
	PeakDeviceBytes map[string]int64
	// FinalOutputs maps sink task → device holding its retained output.
	FinalOutputs map[string]string
	// Attempts is the number of runs recovery needed to complete the job
	// (1 = no retry). Zero when the run was not recovery-managed.
	Attempts int
	// AttemptWaits records the virtual backoff each retry waited before
	// starting: AttemptWaits[i] is the delay applied ahead of attempt i+2.
	// Empty when the job completed on its first attempt (or recovery was
	// not policy-managed).
	AttemptWaits []time.Duration
	// BatchSize and BatchIndex identify the serving batch this job executed
	// in: how many jobs its epoch packed and this job's position in
	// admission order. Both zero outside the serving path (Runtime.Run,
	// RunAll). Like every other report field they are a pure function of
	// the batch, identical at any worker-pool size.
	BatchSize  int
	BatchIndex int
	// Overlapped reports whether the batch executed its members
	// concurrently on a shared worker pool (the Server's default) rather
	// than job-after-job (ServerConfig.Sequential).
	Overlapped bool
	// SLODeadline, SLOWait, and SLOPredicted are the deadline this
	// submission was admitted against, the admission model's predicted
	// virtual queue wait, and the predicted virtual sojourn (wait +
	// makespan estimate). The achieved virtual sojourn is SLOWait +
	// Makespan — what SLO attainment is measured on. All zero without
	// ServerConfig.SLO.
	SLODeadline  time.Duration
	SLOWait      time.Duration
	SLOPredicted time.Duration
	// BestEffort marks a job the SLO policy down-tiered at admission: it
	// was predicted to miss its deadline and runs outside the SLO-attaining
	// population (SLOPolicy.DownTier).
	BestEffort bool
	// SkippedTasks counts tasks this run completed from checkpoint
	// snapshots without re-executing their bodies — the replay skip set of
	// a recovery retry. Zero on a first attempt and outside recovery. The
	// count is identical under full and partial replay: the modes differ
	// only in when the real restore I/O happens, never in what is skipped.
	SkippedTasks int
	// ReplayedTasks counts tasks the final (successful) retry actually
	// re-executed — everything not skipped. Zero when the job completed on
	// its first attempt. SkippedTasks + ReplayedTasks == len(Tasks) on a
	// recovered report.
	ReplayedTasks int
	// Shard labels the serving shard that executed this submission
	// (SubmitOptions.Shard); empty outside sharded serving. Deliberately
	// excluded from String() so sharded reports stay byte-identical to solo
	// runs.
	Shard string
}

// String renders the report as a fixed-width table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %q (%s scheduler, %s placer): makespan %v\n", r.Job, r.Scheduler, r.Placer, r.Makespan)
	ids := make([]string, 0, len(r.Tasks))
	for id := range r.Tasks {
		ids = append(ids, id)
	}
	// Stable order with an ID tie-break: map iteration seeds ids randomly,
	// so sorting on Start alone renders same-start tasks nondeterministically.
	sort.SliceStable(ids, func(a, b int) bool {
		ta, tb := r.Tasks[ids[a]], r.Tasks[ids[b]]
		if ta.Start != tb.Start {
			return ta.Start < tb.Start
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		t := r.Tasks[id]
		fmt.Fprintf(&b, "  %-22s on %-14s %12v → %12v\n", t.Task, t.Compute, t.Start, t.Finish)
		names := make([]string, 0, len(t.Regions))
		for n := range t.Regions {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "      region %-18s → %s\n", n, t.Regions[n])
		}
		for _, l := range t.Logs {
			fmt.Fprintf(&b, "      log: %s\n", l)
		}
	}
	return b.String()
}

// globalEntry is a job-wide named region (Global State / Global Scratch).
type globalEntry struct {
	handle *region.Handle
	class  props.RegionClass
	shared map[string]*region.Handle // task id → that task's share
}

// run is the per-job execution state.
type run struct {
	rt       *Runtime
	job      *dataflow.Job
	schedule *sched.Schedule
	// epoch is the virtual-time view this run's accesses queue against.
	// Runs in different epochs are fully isolated; runs sharing one epoch
	// (RunAll, Server batches) contend on the same device queues.
	epoch *topology.Epoch
	// ns namespaces region owners. Defaults to the job name; the Server
	// makes it unique per submission so identical jobs can run in one
	// shared epoch without their owners colliding.
	ns string
	// base is the earliest virtual time any task of this run may start —
	// recovery retries use it to model per-attempt backoff on the epoch
	// clock without perturbing batch mates.
	base   time.Duration
	cores  map[string][]time.Duration
	finish map[string]time.Duration
	// smu guards the cross-task shared maps (pending, globals) and the
	// memory ledger against concurrent wavefront task goroutines. It is a
	// leaf lock: nothing is called while holding it.
	smu sync.Mutex
	// pending maps consumer task → producer task → delivered handle.
	pending map[string]map[string]*region.Handle
	globals map[string]*globalEntry
	// ranks maps task ID → deterministic topological rank for the current
	// wavefront attempt (set by newWavefront). deliverOutput uses it to
	// record consumer ranks on fan-out shares, which is what lets those
	// regions fence per sharer instead of against the whole run.
	ranks map[string]int
	// events is the virtual memory ledger completed tasks journal into;
	// computePeak sweeps it deterministically at run end (wavefront.go).
	events []memEvent
	report *Report
	peak   map[string]int64
	ck     *Checkpointer // nil unless recovery drives the run
	ckID   string        // unique per-submission snapshot namespace
	// partial selects lazy restore I/O on replay: a replayed task's output
	// payload is fetched from the store only when a re-executed consumer
	// receives it as input, instead of eagerly when the task is replayed.
	// Virtual time is identical either way (see restoreTaskAt).
	partial bool
	// lazy maps a replayed producer's task ID to its re-materialized
	// output's restore state. Written by replay task goroutines, read by
	// consuming task goroutines (both guarded by smu).
	lazy   map[string]*lazyRestore
	inject *fault.Injector
}

// Run executes the job to completion on the virtual clock and returns the
// report. On task failure every live region is released before returning
// (no leaks), and the error identifies the failing task.
func (rt *Runtime) Run(job *dataflow.Job) (*Report, error) {
	return rt.execute(job, nil, "", false)
}

// execute is the shared engine behind Run, RunWithRecovery, and
// RunWithPartialReplay. ckID is the snapshot namespace of this submission
// (one per recovery call, so retries replay their own attempt's checkpoints
// and nobody else's); partial selects lazy restore I/O on replay.
func (rt *Runtime) execute(job *dataflow.Job, ck *Checkpointer, ckID string, partial bool) (*Report, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	// Each run gets a fresh virtual-time epoch: device service queues start
	// drained and never touch the shared topology, so concurrent Runs are
	// isolated. (RunAll and Server batches share one epoch across their
	// jobs — that is where contention is the point.)
	schedule, err := rt.sched.Schedule(job, rt.topo)
	if err != nil {
		return nil, err
	}
	ranks, order, err := sched.Ranks(job)
	if err != nil {
		return nil, err
	}
	r := rt.newRun(job, schedule, rt.topo.NewEpoch(), job.Name(), nil)
	r.ck, r.ckID, r.partial = ck, ckID, partial
	if failed, err := r.runWavefront(order, ranks, rt.workers, nil); err != nil {
		if failed != "" {
			return nil, fmt.Errorf("core: task %s: %w", failed, err)
		}
		return nil, err
	}
	return r.report, nil
}

// newRun assembles per-job execution state. cores may be shared between
// runs (RunAll, Server batches); nil gets this run its own fresh core
// availability. ns namespaces region owners (see run.ns).
func (rt *Runtime) newRun(job *dataflow.Job, schedule *sched.Schedule, epoch *topology.Epoch, ns string, cores map[string][]time.Duration) *run {
	if cores == nil {
		cores = make(map[string][]time.Duration)
		for _, c := range rt.topo.Computes() {
			cores[c.ID] = make([]time.Duration, c.Cores)
		}
	}
	return &run{
		rt:       rt,
		job:      job,
		schedule: schedule,
		epoch:    epoch,
		ns:       ns,
		cores:    cores,
		finish:   make(map[string]time.Duration),
		pending:  make(map[string]map[string]*region.Handle),
		globals:  make(map[string]*globalEntry),
		lazy:     make(map[string]*lazyRestore),
		peak:     make(map[string]int64),
		inject:   rt.inject,
		report: &Report{
			Job: job.Name(), Scheduler: rt.sched.Name(), Placer: rt.placer.Name(),
			Tasks:        make(map[string]*TaskReport),
			FinalOutputs: make(map[string]string),
		},
	}
}

// execTaskAt runs one task at its scheduled placement, starting at the
// virtual time the dispatcher's core claim granted. It runs on a wavefront
// worker goroutine: all cross-task state it touches is either owned by this
// task (ctx, its clock view) or guarded (r.smu for pending/globals/ledger,
// w.mu inside fences). It returns the task's virtual finish time and report
// — both non-nil even when a trailing release failed, matching the
// sequential engine's accounting — or a nil report on failure before
// completion.
func (r *run) execTaskAt(w *wavefront, k int, t *dataflow.Task, view *topology.TaskView, start time.Duration) (time.Duration, *TaskReport, error) {
	asg := r.schedule.Assignments[t.ID()]
	comp, _ := r.rt.topo.Compute(asg.Compute)
	ctx := &taskCtx{
		run: r, task: t, compute: comp,
		now:     start,
		owner:   region.Owner(r.ns + "/" + t.ID()),
		regions: make(map[string]string),
		view:    view,
		rank:    k,
	}
	ctx.fence = func(deps []int) error { return w.fence(k, deps) }
	// Recovery fast path: a checkpointed task is restored, not re-run.
	if w.restored[k] {
		return r.restoreTaskAt(ctx, t, start)
	}
	// Collect inputs: transfer exclusive outputs from predecessors (the
	// Fig. 4 handover), adopt shared ones as-is. Handles are rebound to
	// this task's clock view and fence as they cross the task boundary.
	for _, p := range t.Preds() {
		r.smu.Lock()
		h := r.pending[t.ID()][p.ID()]
		if h != nil {
			delete(r.pending[t.ID()], p.ID())
		}
		lr := r.lazy[p.ID()]
		r.smu.Unlock()
		if h == nil {
			continue
		}
		if lr != nil {
			// The producer was replayed from its checkpoint under partial
			// replay: its region carries a placeholder payload until a task
			// that actually re-executes receives it as input. Fetch the real
			// bytes now (wall-clock only — the restore's virtual price was
			// charged at the replayed producer, identically in both modes).
			if err := lr.hydrate(r, p.ID(), h); err != nil {
				ctx.inputs = append(ctx.inputs, h) // keep it releasable
				ctx.releaseAll()
				return 0, nil, fmt.Errorf("restoring input from %s: %w", p.ID(), err)
			}
		}
		h.Rebind(view, k, ctx.fence)
		if cls, err := h.Class(); err == nil && cls == props.Transfer {
			fromDev, _ := h.DeviceID()
			nh, done, err := h.Transfer(ctx.now, ctx.owner, asg.Compute)
			if err != nil {
				ctx.inputs = append(ctx.inputs, h) // keep it releasable
				ctx.releaseAll()
				return 0, nil, fmt.Errorf("input transfer from %s: %w", p.ID(), err)
			}
			ctx.now = done
			h = nh
			if toDev, err := h.DeviceID(); err == nil && toDev != fromDev {
				ctx.noteMove(h)
			}
		}
		ctx.inputs = append(ctx.inputs, h)
	}

	// Fault injection happened eagerly at wavefront start (rank-ordered
	// verdicts, see runWavefront): a task that reaches this point passed.
	// Run the body; structural tasks (nil fn) still cost their declared
	// Ops and produce their declared output.
	if fn := t.Fn(); fn != nil {
		if err := fn(ctx); err != nil {
			ctx.releaseAll()
			return 0, nil, err
		}
	}
	ctx.Charge(t.Props().Ops)
	if ctx.output == nil && t.Props().OutputBytes > 0 && len(t.Succs()) > 0 {
		if _, err := ctx.Output(t.Props().OutputBytes); err != nil {
			ctx.releaseAll()
			return 0, nil, fmt.Errorf("implicit output: %w", err)
		}
	}

	// Snapshot the output before it is handed over (fault tolerance).
	if r.ck != nil {
		if err := r.checkpointTask(ctx, t); err != nil {
			ctx.releaseAll()
			return 0, nil, err
		}
	}

	// Hand the output over.
	if ctx.output != nil {
		if err := r.deliverOutput(ctx, t); err != nil {
			ctx.releaseAll()
			return 0, nil, err
		}
	}
	// Scratch dies with the task; inputs were consumed.
	ctx.releaseScratchAndInputs()
	// Release this task's shares of globals (the job-level owner keeps
	// them alive until the job ends). One failed release must not leak
	// the remaining shares: release them all in deterministic order and
	// aggregate the errors.
	names := make([]string, 0, len(ctx.globalShares))
	for name := range ctx.globalShares {
		names = append(names, name)
	}
	sort.Strings(names)
	var relErrs []error
	for _, name := range names {
		h := ctx.globalShares[name]
		if err := h.Release(); err != nil {
			relErrs = append(relErrs, fmt.Errorf("releasing global %s: %w", name, err))
		} else {
			ctx.noteRelease(h)
		}
	}

	// The task did run to completion: record its report and finish time
	// even when a share release failed, so downstream accounting (makespan,
	// spans, reports) stays consistent.
	r.flushEvents(ctx)
	if r.ck != nil && relErrs == nil {
		// Fully successful: mark the snapshot warm-replayable so a later
		// attempt can replay it at the deterministic recorded price (and,
		// under partial replay, without eager restore I/O). A release error
		// keeps the entry cold — the retry restores it eagerly, exactly as
		// it always has.
		r.ck.record(r.ckID, t.ID(), ctx.ckRestoreCost)
	}
	rep := &TaskReport{
		Task: t.ID(), Compute: asg.Compute,
		Start: start, Finish: ctx.now,
		Regions: ctx.regions, Logs: ctx.logs,
	}
	r.rt.tel.Record(telemetry.Span{
		Layer: telemetry.LayerRuntime, Job: r.job.Name(), Task: t.ID(),
		Name: "exec", Start: start, End: ctx.now,
	})
	return ctx.now, rep, errors.Join(relErrs...)
}

// deliverOutput routes a finished task's output region to its successors:
// one successor → exclusive pending transfer; several → shared grants
// (Global Scratch semantics); none → retained as the job's final output.
func (r *run) deliverOutput(ctx *taskCtx, t *dataflow.Task) error {
	succs := t.Succs()
	switch len(succs) {
	case 0:
		dev, err := ctx.output.DeviceID()
		if err != nil {
			return err
		}
		r.smu.Lock()
		r.report.FinalOutputs[t.ID()] = dev
		// Retain until cleanup.
		r.globals["__final__/"+t.ID()] = &globalEntry{handle: ctx.output}
		r.smu.Unlock()
		ctx.output = nil
		return nil
	case 1:
		r.smu.Lock()
		if r.pending[succs[0].ID()] == nil {
			r.pending[succs[0].ID()] = make(map[string]*region.Handle)
		}
		r.pending[succs[0].ID()][t.ID()] = ctx.output
		r.smu.Unlock()
		ctx.output = nil
		return nil
	default:
		for _, s := range succs {
			sAsg := r.schedule.Assignments[s.ID()]
			// All fan-out shares are granted here, at producer completion —
			// before any consumer can launch — so the region's sharer set is
			// closed by construction and ShareRanked's per-sharer fencing is
			// sound (see wavefront.fence).
			sh, err := ctx.output.ShareRanked(region.Owner(r.ns+"/"+s.ID()+"/in"), sAsg.Compute, r.ranks[s.ID()])
			if err != nil {
				return fmt.Errorf("sharing output with %s: %w", s.ID(), err)
			}
			ctx.noteShare(sh)
			r.smu.Lock()
			if r.pending[s.ID()] == nil {
				r.pending[s.ID()] = make(map[string]*region.Handle)
			}
			r.pending[s.ID()][t.ID()] = sh
			r.smu.Unlock()
		}
		// The producer's own claim ends; the shares keep the region alive.
		out := ctx.output
		if err := out.Release(); err != nil {
			return err
		}
		ctx.noteRelease(out)
		ctx.output = nil
		return nil
	}
}

// cleanup releases everything the run still holds: job globals, retained
// final outputs, and any undelivered pending handles (failure paths).
func (r *run) cleanup() {
	r.smu.Lock()
	globals := r.globals
	pending := r.pending
	r.globals = map[string]*globalEntry{}
	r.pending = map[string]map[string]*region.Handle{}
	r.smu.Unlock()
	for _, g := range globals {
		if g.handle != nil {
			g.handle.Release() //nolint:errcheck // best-effort teardown
		}
	}
	for _, m := range pending {
		for _, h := range m {
			h.Release() //nolint:errcheck // best-effort teardown
		}
	}
}
