package core

// SLO-aware admission and queue-wait-driven auto-scaling for core.Server —
// the serving-side half of judging the system by application-visible
// latency rather than device throughput. Admission prices every submission
// with the scheduler's makespan estimate (sched.EstimateJob) and simulates
// the serving pool as a deterministic FIFO multi-server queue in virtual
// time: a submission whose predicted sojourn (queue wait + service) exceeds
// its deadline is rejected — or admitted as best-effort when the policy
// down-tiers instead — *before* it consumes a queue slot. Because the model
// advances only on arrivals and estimates, the admit/reject sequence is a
// pure function of the submission sequence: a fixed-seed traffic replay
// makes identical decisions at any wall-clock speed, worker count, or
// auto-scaler activity.
//
// The auto-scaler is the wall-clock complement: it watches the observed
// queue-wait p99 over a sliding window and grows or shrinks the live
// epoch-worker pool between configured bounds. It never feeds back into the
// admission model (which would launder wall-clock noise into admission
// decisions); it only changes how fast the real pool drains.

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ErrDeadline is returned by Submit/SubmitAsync when SLO admission predicts
// the job cannot complete within its deadline and the policy rejects rather
// than down-tiers.
var ErrDeadline = errors.New("core: predicted completion exceeds the submission's deadline")

// SLOPolicy makes admission deadline-aware (ServerConfig.SLO).
type SLOPolicy struct {
	// Deadline is the default completion deadline for every submission,
	// measured in virtual time from the submission's arrival: queue wait in
	// the admission model plus the scheduler's makespan estimate must fit
	// inside it. Individual submissions may override it
	// (SubmitOptions.Deadline). Zero means no default deadline — only
	// submissions carrying their own deadline are gated.
	Deadline time.Duration
	// DownTier admits deadline-missing jobs as best-effort instead of
	// rejecting them: the job runs (and occupies model capacity, since it
	// consumes real capacity), its report is marked BestEffort, and it is
	// excluded from the SLO-attainment population.
	DownTier bool
	// Workers is the modeled pool width (default EpochWorkers). It is
	// deliberately decoupled from the auto-scaler's live worker count so
	// admission stays a deterministic function of the submission sequence.
	Workers int
}

// SubmitOptions is the unified per-submission surface shared by Submit,
// SubmitAsync, and SubmitStream (each accepts at most one): admission
// inputs for the SLO model (Arrival, Deadline), tiering (BestEffort),
// resume (ResumeID), pre-admission (Preadmitted), and the shard label
// sharded routers stamp on reports (Shard). The zero value is a plain
// submission.
type SubmitOptions struct {
	// Arrival is the submission's virtual arrival time on the server's
	// admission clock. Zero (or any value behind the clock) means "now":
	// the clock's high-water mark. Traffic harnesses drive this from their
	// arrival process, which is what makes replayed admission decisions
	// reproducible run-to-run.
	Arrival time.Duration
	// Deadline overrides SLOPolicy.Deadline for this submission; zero keeps
	// the policy default.
	Deadline time.Duration
	// BestEffort forces the submission down to the best-effort tier: under
	// an SLO policy it is admitted (and occupies model capacity) even when
	// the predicted sojourn misses its deadline, exactly as a DownTier
	// policy would admit it; without a policy it merely marks the ticket
	// and report. Best-effort submissions are excluded from the
	// SLO-attainment population either way.
	BestEffort bool
	// Shard labels the serving shard handling this submission. Purely
	// informational: it is copied to Report.Shard (which String() omits, so
	// sharded reports stay byte-identical to solo runs).
	Shard string
	// ResumeID, when non-empty, is an externally minted checkpoint
	// namespace (Checkpointer.NewRunID) the run adopts instead of minting
	// its own. A sharded router uses it to re-submit a job that died with
	// its shard on a survivor: snapshots the dead shard's attempt persisted
	// are restored instead of re-executed (partial replay across shards).
	// The namespace is owned by whoever minted it — a run canceled mid-way
	// leaves the snapshots in place for the next attempt; terminal
	// completion or failure still forgets them. Ignored without
	// ServerConfig.Recovery.
	ResumeID string
	// Preadmitted bypasses the SLO admission model for this submission:
	// the job was already admitted once (on a shard that has since died)
	// and failover must not re-litigate — or double-charge — admission.
	// Ignored without ServerConfig.SLO.
	Preadmitted bool
}

// sloTier is the admission model's verdict for one submission.
type sloTier int

const (
	tierGuaranteed sloTier = iota // predicted to meet its deadline
	tierBestEffort                // predicted miss, admitted down-tiered
	tierRejected                  // predicted miss, refused
)

// sloState is the deterministic admission queue model: one virtual free
// time per modeled worker, advanced by estimates at admission. Arrivals
// are clamped monotone, so the model is a G/G/k FIFO simulation over the
// submission sequence — wall-clock execution speed never enters it.
type sloState struct {
	pol SLOPolicy

	mu     sync.Mutex
	freeAt []time.Duration // per modeled worker: virtual time it frees up
	clock  time.Duration   // arrival high-water mark
}

func newSLOState(pol SLOPolicy, epochWorkers int) *sloState {
	w := pol.Workers
	if w <= 0 {
		w = epochWorkers
	}
	return &sloState{pol: pol, freeAt: make([]time.Duration, w)}
}

// deadlineFor resolves a submission's effective deadline: its own override,
// else the policy default.
func (m *sloState) deadlineFor(opt SubmitOptions) time.Duration {
	if opt.Deadline > 0 {
		return opt.Deadline
	}
	return m.pol.Deadline
}

// admit plays one arrival through the queue model. It returns the predicted
// queue wait, the predicted sojourn (wait + service estimate), and the
// verdict; only admitted submissions (guaranteed or best-effort) occupy
// model capacity.
func (m *sloState) admit(opt SubmitOptions, estimate time.Duration) (wait, predicted time.Duration, tier sloTier) {
	deadline := m.deadlineFor(opt)
	m.mu.Lock()
	defer m.mu.Unlock()
	if opt.Arrival > m.clock {
		m.clock = opt.Arrival
	}
	arrival := m.clock
	best := 0
	for i, at := range m.freeAt {
		if at < m.freeAt[best] {
			best = i
		}
	}
	start := arrival
	if m.freeAt[best] > start {
		start = m.freeAt[best]
	}
	wait = start - arrival
	predicted = wait + estimate
	if opt.BestEffort {
		// Forced down-tier: never rejected, but it runs, so it occupies
		// model capacity like any admitted submission.
		m.freeAt[best] = start + estimate
		return wait, predicted, tierBestEffort
	}
	if deadline > 0 && predicted > deadline && !m.pol.DownTier {
		return wait, predicted, tierRejected
	}
	m.freeAt[best] = start + estimate
	if deadline > 0 && predicted > deadline {
		return wait, predicted, tierBestEffort
	}
	return wait, predicted, tierGuaranteed
}

// AutoScalePolicy grows and shrinks the live epoch-worker pool against the
// observed queue-wait p99 (ServerConfig.AutoScale).
type AutoScalePolicy struct {
	// Min and Max bound the live worker count. Min defaults to EpochWorkers;
	// Max defaults to 4×Min.
	Min, Max int
	// TargetP99 is the queue-wait p99 the controller steers toward: above
	// it the pool grows, comfortably below it (half the target, for
	// hysteresis) the pool shrinks. Default 10ms.
	TargetP99 time.Duration
	// Interval between control decisions (default 25ms).
	Interval time.Duration
	// Window is the sliding queue-wait sample window the p99 is computed
	// over (default 256).
	Window int
}

// scaler is the running controller.
type scaler struct {
	s   *Server
	pol AutoScalePolicy

	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	cur    int // live workers (controller's view)
	ring   []time.Duration
	widx   int
	filled bool
}

func newScaler(s *Server, pol AutoScalePolicy, epochWorkers int) *scaler {
	if pol.Min <= 0 {
		pol.Min = epochWorkers
	}
	if pol.Max <= 0 {
		pol.Max = 4 * pol.Min
	}
	if pol.Max < pol.Min {
		pol.Max = pol.Min
	}
	if pol.TargetP99 <= 0 {
		pol.TargetP99 = 10 * time.Millisecond
	}
	if pol.Interval <= 0 {
		pol.Interval = 25 * time.Millisecond
	}
	if pol.Window <= 0 {
		pol.Window = 256
	}
	return &scaler{
		s: s, pol: pol,
		stop: make(chan struct{}), done: make(chan struct{}),
		cur:  epochWorkers,
		ring: make([]time.Duration, pol.Window),
	}
}

// note feeds one observed queue wait into the sliding window.
func (sc *scaler) note(d time.Duration) {
	sc.mu.Lock()
	sc.ring[sc.widx] = d
	sc.widx++
	if sc.widx == len(sc.ring) {
		sc.widx, sc.filled = 0, true
	}
	sc.mu.Unlock()
}

// windowP99 computes the p99 over the current window (0 when empty).
func (sc *scaler) windowP99() time.Duration {
	sc.mu.Lock()
	n := sc.widx
	if sc.filled {
		n = len(sc.ring)
	}
	samples := make([]time.Duration, n)
	copy(samples, sc.ring[:n])
	sc.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	idx := (n*99 + 99) / 100 // ceil(0.99·n)
	if idx > n {
		idx = n
	}
	return samples[idx-1]
}

// loop runs control decisions until stopped (Server.Close).
func (sc *scaler) loop() {
	defer close(sc.done)
	t := time.NewTicker(sc.pol.Interval)
	defer t.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-t.C:
			sc.step()
		}
	}
}

// step makes one scaling decision. Growing spawns a worker on the shared
// queue; shrinking parks a token on the shrink channel, which the next
// worker to observe it consumes by exiting. Both directions move one worker
// per interval — deliberate damping against a noisy p99.
func (sc *scaler) step() {
	p99 := sc.windowP99()
	sc.mu.Lock()
	cur := sc.cur
	sc.mu.Unlock()
	switch {
	case p99 > sc.pol.TargetP99 && cur < sc.pol.Max:
		sc.mu.Lock()
		sc.cur++
		sc.mu.Unlock()
		sc.s.wg.Add(1)
		go sc.s.worker()
		sc.s.rt.tel.Add(telemetry.LayerRuntime, "server_scale_up", 1)
	case cur > sc.pol.Min && p99 < sc.pol.TargetP99/2:
		select {
		case sc.s.shrink <- struct{}{}:
			sc.mu.Lock()
			sc.cur--
			sc.mu.Unlock()
			sc.s.rt.tel.Add(telemetry.LayerRuntime, "server_scale_down", 1)
		default: // a previous token is still unconsumed; stay damped
		}
	}
}

// stopWait halts the controller and blocks until its goroutine exited, so
// no scale-up can race Server.Close's queue close and drain.
func (sc *scaler) stopWait() {
	close(sc.stop)
	<-sc.done
}

// LiveWorkers reports the current epoch-worker count the auto-scaler
// believes is live (the configured EpochWorkers when auto-scaling is off).
func (s *Server) LiveWorkers() int {
	if s.scaler == nil {
		return s.workers
	}
	s.scaler.mu.Lock()
	defer s.scaler.mu.Unlock()
	return s.scaler.cur
}
