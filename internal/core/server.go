package core

// This file implements core.Server — the concurrent job-submission engine
// the paper's deployment story implies (§2.1: "dataflow systems that serve
// thousands of jobs in parallel"). Runtime.Run gives per-call epoch
// isolation; Server adds what a multi-tenant front door needs on top:
//
//   - a bounded admission queue with configurable backpressure (fail fast
//     with ErrQueueFull, or block until a slot frees) and an async
//     ticket-based submission API (SubmitAsync/Ticket) mirroring the
//     paper's future-based far-memory interface at the job level,
//   - epoch workers that batch whatever is queued into shared virtual-time
//     epochs and, by default, *overlap* the whole batch on one bounded
//     worker pool: every member's ready tasks compete for the shared slots
//     in deterministic (rank, submission) order while each member's virtual
//     time stays byte-identical to running the job alone
//     (ServerConfig.Sequential restores job-after-job RunAll-style
//     contention; separate batches are fully isolated either way),
//   - per-job context cancellation and deadlines, honored while queued and
//     between tasks during execution,
//   - optional fault-tolerant execution (ServerConfig.Recovery): task
//     outputs are checkpointed into a shared fault.Store and failed jobs
//     are retried inside the worker's epoch with checkpointed tasks
//     restored instead of re-executed (challenge 8(3)),
//   - graceful drain on Close, and
//   - per-job admission / queue-wait / rejection counters plus spans in the
//     runtime's telemetry registry, so the serving path is observable.
//
// Within a batch, each submission gets a unique owner namespace, so many
// tenants may submit jobs with the same name concurrently.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Errors reported by the serving layer.
var (
	// ErrQueueFull is returned by Submit when the admission queue is full
	// and the server was configured to reject rather than block.
	ErrQueueFull = errors.New("core: server admission queue full")
	// ErrServerClosed is returned by Submit after Close started draining.
	ErrServerClosed = errors.New("core: server closed")
)

// ServerConfig assembles a Server. Zero fields get serving defaults.
//
// The embedded ExecConfig is the single source of execution knobs — the
// topology, placer, scheduler, telemetry, fault injection, and the
// worker-pool bound (ExecConfig.Workers) every batch's tasks share. It is
// consulted only when Runtime is nil; a non-nil Runtime brings its own.
// Note the worker-knob split: ExecConfig.Workers bounds *task* concurrency
// inside one batch, EpochWorkers bounds how many *batches* run at once.
type ServerConfig struct {
	ExecConfig
	// Runtime executes the admitted jobs. Nil builds one from the embedded
	// ExecConfig (whose zero value gives the reference testbed, best-fit
	// placer, and HEFT scheduler).
	Runtime *Runtime
	// QueueDepth bounds the admission queue (default 64). Submissions
	// beyond the bound are rejected or block, per Block.
	QueueDepth int
	// EpochWorkers is the number of epoch workers serving the queue
	// (default 4). Each worker runs one batch at a time; batches run
	// concurrently.
	EpochWorkers int
	// MaxBatch caps how many queued jobs one worker folds into a shared
	// virtual-time epoch (default 8). 1 disables batching: every job gets
	// a private epoch.
	MaxBatch int
	// Block selects the backpressure policy: false (default) makes Submit
	// fail fast with ErrQueueFull when the queue is full; true makes it
	// block until a slot frees or the submission's context ends.
	Block bool
	// MaxLinger bounds how long a worker waits for the queue to yield more
	// jobs before launching a partial batch. Zero (the default) keeps
	// collection opportunistic: the worker grabs whatever is already queued
	// and launches immediately. A positive linger trades a bounded amount
	// of queue wait for fuller batches.
	MaxLinger time.Duration
	// Batching selects how a batch's members execute. BatchOverlapped (the
	// zero value) overlaps whole jobs on the batch's shared worker pool
	// with virtual isolation: every member's virtual-time report is
	// computed as if it ran alone, and batch mates contend only for
	// wall-clock resources. BatchSequential is the legacy mode: members
	// execute job-after-job over shared core clocks and epoch backlog,
	// each queueing behind its predecessors (RunAll semantics — virtual
	// contention inside the batch).
	Batching BatchMode
	// Sequential is the legacy spelling of Batching == BatchSequential.
	//
	// Deprecated: compatibility alias, equivalent to setting Batching to
	// BatchSequential (either selects the sequential mode).
	Sequential bool
	// Recovery, when set, makes every admitted job run fault-tolerantly:
	// task outputs are checkpointed into the policy's store and a failed
	// job is retried in place (restored tasks replayed inside the worker's
	// epoch) up to MaxAttempts. Nil disables recovery: failures surface
	// directly to the submitter.
	Recovery *RecoveryPolicy
	// SLO, when set, makes admission deadline-aware: every submission is
	// priced with the scheduler's makespan estimate against a deterministic
	// queue model of the pool, and predicted deadline misses are rejected
	// (ErrDeadline) or down-tiered before they consume a queue slot. The
	// model charges capacity at decision time, so pair it with Block or a
	// queue deep enough that SLO admission — not ErrQueueFull — is the
	// effective gate. See slo.go.
	SLO *SLOPolicy
	// AutoScale, when set, lets the server grow and shrink its live
	// epoch-worker pool between the policy's bounds, steering the observed
	// queue-wait p99 toward the policy target. Purely a wall-clock control:
	// it never alters admission decisions or virtual-time reports.
	AutoScale *AutoScalePolicy
}

// BatchMode selects how a serving batch's members execute
// (ServerConfig.Batching).
type BatchMode int

const (
	// BatchOverlapped (default) overlaps whole jobs on the batch's shared
	// worker pool with per-member virtual isolation.
	BatchOverlapped BatchMode = iota
	// BatchSequential executes members job-after-job with virtual
	// contention inside the batch (RunAll semantics).
	BatchSequential
)

// RecoveryPolicy configures fault-tolerant serving (ServerConfig.Recovery).
type RecoveryPolicy struct {
	// Store is the fault-tolerant far-memory store holding checkpoints,
	// shared by all workers — the operator's redundancy choice
	// (fault.NewReplicatedStore, fault.NewErasureStore). Nil builds a
	// default 2-way replicated store over a private 3-node fabric.
	Store fault.Store
	// Checkpointer, when set, is used directly instead of wrapping Store —
	// the way a sharded deployment shares one snapshot namespace across
	// every shard's server, so a job resubmitted on a survivor
	// (SubmitOptions.ResumeID) can restore what a dead shard checkpointed.
	Checkpointer *Checkpointer
	// MaxAttempts caps total runs per submission, first included
	// (default 3).
	MaxAttempts int
	// Backoff is the base per-retry delay in virtual time. Retries back off
	// exponentially: the wait before attempt n+1 is Backoff·2^(n-1), capped
	// at BackoffCap. Batch mates are unaffected; the waits a submission
	// accumulated are reported in Report.AttemptWaits.
	Backoff time.Duration
	// BackoffCap bounds the exponential growth (default 8×Backoff).
	BackoffCap time.Duration
	// PartialReplay resumes a retried job from the failed task onward:
	// tasks whose checkpoints survived with unchanged transitive inputs are
	// completed from their replay records without re-execution, and their
	// outputs are rebound from the store lazily — restore I/O is performed
	// (and charged to real wall-clock) only when a replayed successor
	// actually reads the region. Virtual-time accounting is identical to
	// full replay: retried reports are byte-for-byte the same either way,
	// only the real restore I/O and re-execution work are elided.
	PartialReplay bool
}

// recoveryState is the resolved serving-side recovery machinery.
type recoveryState struct {
	ck          *Checkpointer
	maxAttempts int
	backoff     time.Duration
	cap         time.Duration
	partial     bool
}

// backoffWait is the virtual-time delay inserted before the retry that
// follows a failed attempt (1-based): backoff·2^(attempt-1), capped.
func backoffWait(rec *recoveryState, attempt int) time.Duration {
	if rec.backoff <= 0 {
		return 0
	}
	w := rec.backoff
	for i := 1; i < attempt; i++ {
		w <<= 1
		if w >= rec.cap || w <= 0 { // cap reached or shift overflowed
			return rec.cap
		}
	}
	if w > rec.cap {
		return rec.cap
	}
	return w
}

// Ticket is an asynchronously admitted submission, returned by SubmitAsync.
// Exactly one outcome is delivered per ticket; once Done() is closed, Wait
// returns that outcome without blocking, any number of times, from any
// goroutine.
type Ticket struct {
	id         uint64
	bestEffort bool
	done       chan struct{}
	report     *Report
	err        error
}

// ID returns the submission's admission sequence number, unique per server
// — the same number that namespaces the job's regions and checkpoints.
func (t *Ticket) ID() uint64 { return t.id }

// BestEffort reports whether SLO admission down-tiered this submission
// (predicted deadline miss under a DownTier policy). Known at admission
// time, so callers can log the tier before the job runs.
func (t *Ticket) BestEffort() bool { return t.bestEffort }

// Done returns a channel closed when the job's outcome is available.
// Callers multiplexing many tickets select on it and then call Wait.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the outcome is available or ctx ends; a nil ctx means
// context.Background(). Wait returning ctx.Err() abandons only this call —
// the job's lifetime follows the context given to SubmitAsync, and a later
// Wait still observes the outcome.
func (t *Ticket) Wait(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-t.done:
		return t.report, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliver publishes the outcome. Called exactly once, by the serving side.
func (t *Ticket) deliver(rep *Report, err error) {
	t.report, t.err = rep, err
	close(t.done)
}

// NewRoutedTicket mints a caller-owned ticket for a routing front end (a
// shard router) that multiplexes server tickets behind its own: the router
// returns the routed ticket to the submitter and Delivers the outcome of
// whichever shard attempt finally settles the job. Never handed to a
// Server.
func NewRoutedTicket(id uint64, bestEffort bool) *Ticket {
	return &Ticket{id: id, bestEffort: bestEffort, done: make(chan struct{})}
}

// Deliver publishes the outcome of a routed ticket (NewRoutedTicket). Must
// be called exactly once; calling it on a server-issued ticket is a bug
// (the server delivers those itself).
func (t *Ticket) Deliver(rep *Report, err error) { t.deliver(rep, err) }

// jobTicket is one admitted submission's server-side state.
type jobTicket struct {
	job      *dataflow.Job
	ctx      context.Context
	enqueued time.Time
	tk       *Ticket
	// SLO admission state (zero without ServerConfig.SLO): the plan the
	// estimate was derived from — reused by overlapped batches instead of
	// replanning — plus the deadline judged against, the model's predicted
	// sojourn, and whether the job was down-tiered to best-effort.
	plan       *sched.Schedule
	deadline   time.Duration
	slowait    time.Duration // model's predicted virtual queue wait
	predicted  time.Duration // slowait + makespan estimate
	bestEffort bool
	// Sharded-serving metadata (SubmitOptions.Shard/ResumeID): the shard
	// label stamped on the report, and the externally owned checkpoint
	// namespace a failover re-submission resumes from.
	shard  string
	resume string
}

// Server is the admission-controlled serving engine. It is safe for
// concurrent use by multiple goroutines.
type Server struct {
	rt         *Runtime
	workers    int // configured EpochWorkers (the auto-scaler's baseline)
	maxBatch   int
	block      bool
	maxLinger  time.Duration
	sequential bool
	rec        *recoveryState // nil: recovery disabled
	slo        *sloState      // nil: admission is deadline-blind
	scaler     *scaler        // nil: fixed worker pool

	queue chan *jobTicket
	// shrink carries the auto-scaler's scale-down tokens; a worker that
	// observes one exits. Nil (blocking forever in selects) without a
	// scaler.
	shrink chan struct{}
	wg     sync.WaitGroup
	seq    atomic.Uint64

	// gate serializes admission against Close: submissions hold the read
	// side while enqueueing, Close takes the write side to flip closed, so
	// the queue channel is only closed once no send can be in flight.
	gate   sync.RWMutex
	closed bool
}

// NewServer builds and starts a serving engine: its workers are live when
// NewServer returns. Callers must Close it to drain.
func NewServer(cfg ServerConfig) (*Server, error) {
	rt := cfg.Runtime
	if rt == nil {
		var err error
		rt, err = New(cfg.ExecConfig)
		if err != nil {
			return nil, err
		}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	workers := cfg.EpochWorkers
	if workers <= 0 {
		workers = 4
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 8
	}
	var rec *recoveryState
	if cfg.Recovery != nil {
		ck := cfg.Recovery.Checkpointer
		if ck == nil {
			store := cfg.Recovery.Store
			if store == nil {
				var err error
				store, err = defaultFaultStore()
				if err != nil {
					return nil, err
				}
			}
			ck = NewCheckpointer(store)
		}
		maxAttempts := cfg.Recovery.MaxAttempts
		if maxAttempts <= 0 {
			maxAttempts = 3
		}
		cap := cfg.Recovery.BackoffCap
		if cap <= 0 {
			cap = 8 * cfg.Recovery.Backoff
		}
		rec = &recoveryState{
			ck:          ck,
			maxAttempts: maxAttempts,
			backoff:     cfg.Recovery.Backoff,
			cap:         cap,
			partial:     cfg.Recovery.PartialReplay,
		}
	}
	s := &Server{
		rt:         rt,
		workers:    workers,
		maxBatch:   maxBatch,
		block:      cfg.Block,
		maxLinger:  cfg.MaxLinger,
		sequential: cfg.Sequential || cfg.Batching == BatchSequential,
		rec:        rec,
		queue:      make(chan *jobTicket, depth),
	}
	if cfg.SLO != nil {
		s.slo = newSLOState(*cfg.SLO, workers)
	}
	if cfg.AutoScale != nil {
		s.scaler = newScaler(s, *cfg.AutoScale, workers)
		s.shrink = make(chan struct{}, s.scaler.pol.Max)
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.scaler != nil {
		go s.scaler.loop()
	}
	return s, nil
}

// Runtime returns the runtime executing the admitted jobs.
func (s *Server) Runtime() *Runtime { return s.rt }

// Rebalance runs one region-tiering sweep on the server's runtime, priced
// inside a private epoch (region.RebalanceIn) so it is safe to call while
// the server is serving: admitted batches never observe the sweep's device
// backlog. With an exporter wired into the region manager (cross-shard
// migration), the sweep may also evict cold regions to the remote pool and
// recall hot exported ones.
func (s *Server) Rebalance(now time.Duration, pol region.RebalancePolicy) (region.RebalanceStats, error) {
	return s.rt.Regions().RebalanceIn(s.rt.Topology().NewEpoch(), now, pol)
}

// Checkpointer returns the recovery checkpointer, or nil when the server
// was built without a RecoveryPolicy.
func (s *Server) Checkpointer() *Checkpointer {
	if s.rec == nil {
		return nil
	}
	return s.rec.ck
}

// resolveOpts folds a variadic options list into the single effective
// SubmitOptions — the unified submission surface accepts at most one.
func resolveOpts(opts []SubmitOptions) (SubmitOptions, error) {
	switch len(opts) {
	case 0:
		return SubmitOptions{}, nil
	case 1:
		return opts[0], nil
	default:
		return SubmitOptions{}, errors.New("core: at most one SubmitOptions per submission")
	}
}

// SubmitAsync admits a job without waiting for it to execute: it returns a
// Ticket as soon as the job is queued, or an admission error (a validation
// failure, ErrQueueFull, ErrServerClosed, ErrDeadline under an SLO policy,
// or — when Block is set and the queue stays full — ctx's error)
// immediately. The submission ctx governs the job's whole lifetime, exactly
// as with Submit: a job canceled while queued is never executed; one
// canceled mid-run is stopped at the next task boundary and its regions are
// released. The outcome is retrieved via the ticket (Done, Wait).
//
// At most one SubmitOptions may be passed — the whole per-submission
// surface in one place: virtual arrival and deadline for the SLO admission
// model, forced best-effort tiering, the shard label, an external
// checkpoint namespace to resume from, and pre-admission. Traffic
// harnesses submit through the options so replayed arrival sequences make
// identical admission decisions run-to-run. Submit and SubmitStream accept
// the same options; omitted options mean a plain submission.
func (s *Server) SubmitAsync(ctx context.Context, job *dataflow.Job, opts ...SubmitOptions) (*Ticket, error) {
	opt, err := resolveOpts(opts)
	if err != nil {
		return nil, err
	}
	return s.submitAsync(ctx, job, opt)
}

// SubmitAsyncOpts is SubmitAsync with exactly one explicit SubmitOptions.
//
// Deprecated: pass the options directly to SubmitAsync, which now accepts
// them variadically. Kept as a thin compatibility wrapper.
func (s *Server) SubmitAsyncOpts(ctx context.Context, job *dataflow.Job, opt SubmitOptions) (*Ticket, error) {
	return s.submitAsync(ctx, job, opt)
}

// submitAsync is the single admission path behind Submit, SubmitAsync,
// SubmitAsyncOpts, and (per window) SubmitStream.
func (s *Server) submitAsync(ctx context.Context, job *dataflow.Job, opt SubmitOptions) (*Ticket, error) {
	if job == nil {
		return nil, errors.New("core: nil job")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	// A submission whose context already ended must never reach the queue:
	// it would ride a batch slot (and MaxLinger wait) only to be dropped at
	// dequeue. Refuse it here and account it as canceled, not rejected —
	// the server had room, the submitter had given up.
	if err := ctx.Err(); err != nil {
		s.rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
		return nil, err
	}
	t := &jobTicket{
		job: job, ctx: ctx, enqueued: time.Now(),
		tk:    &Ticket{id: s.seq.Add(1), done: make(chan struct{})},
		shard: opt.Shard, resume: opt.ResumeID,
	}
	if s.slo != nil && !opt.Preadmitted {
		est, plan, err := sched.EstimateJob(job, s.rt.topo, s.rt.sched)
		if err != nil {
			return nil, err
		}
		wait, predicted, tier := s.slo.admit(opt, est.Makespan)
		if tier == tierRejected {
			s.rt.tel.Add(telemetry.LayerRuntime, "server_slo_rejected", 1)
			return nil, fmt.Errorf("%w: predicted %v, deadline %v", ErrDeadline, predicted, s.slo.deadlineFor(opt))
		}
		t.plan, t.slowait, t.predicted = plan, wait, predicted
		t.deadline = s.slo.deadlineFor(opt)
		if tier == tierBestEffort {
			t.bestEffort = true
			t.tk.bestEffort = true
			s.rt.tel.Add(telemetry.LayerRuntime, "server_downtiered", 1)
		}
	}
	if opt.BestEffort && !t.bestEffort {
		// Forced tiering outside the SLO path (no policy, or pre-admitted):
		// the submission still runs and is marked best-effort.
		t.bestEffort = true
		t.tk.bestEffort = true
	}

	s.gate.RLock()
	if s.closed {
		s.gate.RUnlock()
		s.rt.tel.Add(telemetry.LayerRuntime, "server_rejected", 1)
		return nil, ErrServerClosed
	}
	if s.block {
		select {
		case s.queue <- t:
			s.gate.RUnlock()
		case <-ctx.Done():
			s.gate.RUnlock()
			s.rt.tel.Add(telemetry.LayerRuntime, "server_rejected", 1)
			return nil, ctx.Err()
		}
	} else {
		select {
		case s.queue <- t:
			s.gate.RUnlock()
		default:
			s.gate.RUnlock()
			s.rt.tel.Add(telemetry.LayerRuntime, "server_rejected", 1)
			return nil, ErrQueueFull
		}
	}
	s.rt.tel.Add(telemetry.LayerRuntime, "server_admitted", 1)
	return t.tk, nil
}

// Submit admits a job and blocks until its report is ready, admission is
// refused (ErrQueueFull, ErrServerClosed), or ctx ends. A nil ctx means
// context.Background(). It is exactly SubmitAsync — same unified options
// surface, at most one SubmitOptions — followed by Wait on the same
// context.
func (s *Server) Submit(ctx context.Context, job *dataflow.Job, opts ...SubmitOptions) (*Report, error) {
	tk, err := s.SubmitAsync(ctx, job, opts...)
	if err != nil {
		return nil, err
	}
	return tk.Wait(ctx)
}

// Close stops admission and drains: already-admitted jobs run to
// completion, then the workers exit. Returns ctx.Err() if ctx ends before
// the drain finishes (the workers keep draining in the background). Safe to
// call more than once; a nil ctx means context.Background().
func (s *Server) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.gate.Lock()
	already := s.closed
	s.closed = true
	s.gate.Unlock()
	if !already {
		// The scale controller must be fully stopped before the drain: a
		// late scale-up would Add on a WaitGroup already being waited on.
		if s.scaler != nil {
			s.scaler.stopWait()
		}
		close(s.queue) // no Submit can be mid-send once the gate flipped
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker serves batches until the queue is closed and drained, or the
// auto-scaler hands it a scale-down token.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case t, ok := <-s.queue:
			if !ok {
				return
			}
			s.runBatch(s.collect(t))
		case <-s.shrink: // nil without a scaler: never ready
			return
		}
	}
}

// collect folds queued jobs behind first into one batch, up to MaxBatch —
// the batch shares one virtual-time epoch. With MaxLinger zero the fold is
// opportunistic (whatever is already queued); a positive linger waits that
// long for stragglers, bounding the queue wait it can add to first.
//
// Tickets whose context ended while queued are finished here and never
// occupy a batch slot: a dead job must not displace a live one from the
// epoch, nor stretch the linger wait of the jobs it rides with. The batch
// may come back empty (every candidate was dead); runBatch no-ops on it.
func (s *Server) collect(first *jobTicket) []*jobTicket {
	batch := s.appendLive(nil, first)
	if s.maxLinger > 0 {
		timer := time.NewTimer(s.maxLinger)
		defer timer.Stop()
		for len(batch) < s.maxBatch {
			select {
			case t, ok := <-s.queue:
				if !ok {
					return batch
				}
				batch = s.appendLive(batch, t)
			case <-timer.C:
				return batch
			}
		}
		return batch
	}
	for len(batch) < s.maxBatch {
		select {
		case t, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = s.appendLive(batch, t)
		default:
			return batch
		}
	}
	return batch
}

// appendLive folds a dequeued ticket into the batch, unless its context
// already ended — then the outcome is delivered immediately and the batch
// is returned unchanged (the canceled-while-queued drop, counted under
// server_canceled).
func (s *Server) appendLive(batch []*jobTicket, t *jobTicket) []*jobTicket {
	if err := t.ctx.Err(); err != nil {
		s.noteQueueWait(time.Since(t.enqueued))
		s.rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
		t.tk.deliver(nil, err)
		return batch
	}
	return append(batch, t)
}

// noteQueueWait records one observed queue wait — into the shared telemetry
// histogram and, when auto-scaling, the controller's sliding window.
func (s *Server) noteQueueWait(d time.Duration) {
	s.rt.tel.Observe(telemetry.LayerRuntime, "server_queue_wait", d)
	if s.scaler != nil {
		s.scaler.note(d)
	}
}

// liveJob is one batch member's execution state.
type liveJob struct {
	t          *jobTicket
	r          *run
	order      []*dataflow.Task
	ranks      map[string]int
	waits      []time.Duration // virtual backoff applied before each retry
	attempt    int             // 1-based; >1 means recovery retried this submission
	batchSize  int             // members this batch executed (Report.BatchSize)
	batchIndex int             // this member's admission position (Report.BatchIndex)
	overlapped bool            // executed on the shared pool, not job-after-job
}

// runBatch plans one batch and hands it to the mode-specific executor.
// Failures and cancellations are isolated per job: the failing run's
// regions are released and only its submitter sees the error.
//
// The two modes differ in what batch mates share. Sequential: one core
// clock map and the epoch's accumulated backlog — members queue behind each
// other in virtual time (RunAll semantics). Overlapped (default): members
// get private core clocks and are planned against an empty load, so each
// member's virtual-time report is byte-identical to running the job alone
// at any pool size; mates contend only for wall-clock resources (the
// shared worker pool, the allocator, the checkpoint store).
func (s *Server) runBatch(batch []*jobTicket) {
	rt := s.rt
	dequeued := time.Now()

	// Queue-wait accounting; jobs whose context ended between collect and
	// here (collect already dropped those dead while queued) are finished
	// without ever executing.
	admitted := batch[:0]
	for _, t := range batch {
		s.noteQueueWait(dequeued.Sub(t.enqueued))
		if err := t.ctx.Err(); err != nil {
			rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
			t.tk.deliver(nil, err)
			continue
		}
		admitted = append(admitted, t)
	}
	if len(admitted) == 0 {
		return
	}
	rt.tel.Add(telemetry.LayerRuntime, "server_epochs", 1)

	// Plan every member; a scheduling failure only fails its own job.
	epoch := rt.topo.NewEpoch()
	var cores map[string][]time.Duration
	if s.sequential {
		cores = make(map[string][]time.Duration)
		for _, c := range rt.topo.Computes() {
			cores[c.ID] = make([]time.Duration, c.Cores)
		}
	}
	load := rt.newLoad()
	lives := make([]*liveJob, 0, len(admitted))
	for _, t := range admitted {
		var schedule *sched.Schedule
		var err error
		switch {
		case s.sequential:
			// Members queue behind each other: plan against the batch's
			// accumulating load.
			schedule, err = rt.scheduleInto(t.job, load)
		case t.plan != nil:
			// SLO admission already planned this job against an idle
			// machine — exactly the empty-load plan overlapped members use —
			// so reuse it rather than paying HEFT twice per submission.
			schedule = t.plan
		default:
			// Virtual isolation extends to planning: an empty load per
			// member yields the same plan the job would get alone, which is
			// what makes overlapped reports identical to solo runs.
			schedule, err = rt.scheduleInto(t.job, rt.newLoad())
		}
		if err != nil {
			s.fail(t, fmt.Errorf("core: scheduling %s: %w", t.job.Name(), err))
			continue
		}
		ranks, order, err := sched.Ranks(t.job)
		if err != nil {
			s.fail(t, err)
			continue
		}
		// A unique owner namespace per submission lets identical jobs
		// share the epoch without region-owner collisions.
		ns := fmt.Sprintf("%s#%d", t.job.Name(), t.tk.id)
		r := rt.newRun(t.job, schedule, epoch, ns, cores) // nil cores → private clocks
		if s.rec != nil {
			// The snapshot namespace is unique per submission, so
			// same-named jobs in flight never cross-restore or
			// cross-Forget each other's checkpoints. A submission carrying
			// an external ResumeID adopts that namespace instead: snapshots
			// a previous (dead-shard) attempt persisted there are restored
			// rather than re-executed.
			ckID := t.resume
			if ckID == "" {
				ckID = s.rec.ck.runID(t.job.Name())
			}
			r.ck, r.ckID = s.rec.ck, ckID
			r.partial = s.rec.partial
		}
		lives = append(lives, &liveJob{t: t, r: r, order: order, ranks: ranks, attempt: 1})
	}
	for i, l := range lives {
		l.batchSize, l.batchIndex, l.overlapped = len(lives), i, !s.sequential
	}
	if len(lives) == 0 {
		return
	}
	if s.sequential {
		s.runBatchSequential(lives, epoch, cores)
		return
	}
	s.runBatchOverlapped(lives, epoch)
}

// runBatchSequential executes batch members job-after-job over the shared
// cores and epoch; jobs run in admission order, each queueing behind the
// clock views its completed batch mates absorbed into the epoch. Failures
// and retries stay per job.
func (s *Server) runBatchSequential(lives []*liveJob, epoch *topology.Epoch, cores map[string][]time.Duration) {
	rt := s.rt
	for _, l := range lives {
		for {
			failed, err := l.r.runWavefront(l.order, l.ranks, rt.workers, l.t.ctx.Err)
			if err == nil {
				s.complete(l)
				break
			}
			if failed == "" && l.t.ctx.Err() != nil {
				// Canceled mid-wavefront: the run was already cleaned up.
				s.forgetCanceled(l)
				rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
				l.t.tk.deliver(nil, err)
				break
			}
			// Recovery: retry in place, inside this worker's epoch. The
			// fresh run shares the batch's cores and device queues;
			// checkpointed tasks are restored instead of re-executed, and
			// the exponential backoff pushes the retry's start on the
			// virtual clock.
			if s.rec != nil && l.attempt < s.rec.maxAttempts && l.t.ctx.Err() == nil {
				rt.tel.Add(telemetry.LayerFault, "job_retries", 1)
				wait := backoffWait(s.rec, l.attempt)
				nr := rt.newRun(l.t.job, l.r.schedule, epoch, l.r.ns, cores)
				nr.ck, nr.ckID = l.r.ck, l.r.ckID
				nr.partial = s.rec.partial
				nr.base = l.r.base + wait
				l.waits = append(l.waits, wait)
				l.r = nr
				l.attempt++
				continue
			}
			s.forget(l.r)
			if failed != "" {
				s.fail(l.t, fmt.Errorf("core: job %s task %s: %w", l.t.job.Name(), failed, err))
			} else {
				s.fail(l.t, err)
			}
			break
		}
	}
}

// runBatchOverlapped executes all batch members concurrently on one shared
// worker pool: every member's ready tasks compete for the pool's slots in
// deterministic (rank, submission) order, so narrow phases of one job are
// overlapped with its mates' work instead of idling the pool. Virtual
// isolation keeps every member's report byte-identical to running the job
// alone: each member prices against its own clone of the batch-start epoch
// snapshot and its own core clocks, so a mate's failure, retry, or mere
// presence never perturbs anyone else's virtual time. Recovery retries are
// attached to the live pool as fresh members, overlapping with the rest of
// the batch instead of serializing behind it; each retry inherits its
// predecessor attempt's (deterministically rewound) core clocks and
// checkpoints, exactly like the sequential path.
func (s *Server) runBatchOverlapped(lives []*liveJob, epoch *topology.Epoch) {
	rt := s.rt
	// Batch-start snapshot: every member and every retry seeds from a clone
	// of this view, never from a live epoch read that could see a mate's
	// mid-flight absorbs.
	seed := epoch.View()
	p := newWavePool(rt.workers)
	members := make(map[*wavefront]*liveJob, len(lives))
	var active []*wavefront
	for _, l := range lives {
		sv := topology.GetTaskView(seed)
		w, failed, err := l.r.newWavefront(l.order, l.ranks, l.t.ctx.Err, sv)
		if err != nil {
			topology.PutTaskView(sv)
			l.r.cleanup()
			s.forget(l.r)
			s.fail(l.t, fmt.Errorf("core: job %s task %s: %w", l.t.job.Name(), failed, err))
			continue
		}
		p.attach(w)
		members[w] = l
		active = append(active, w)
	}
	if len(active) == 0 {
		return
	}

	p.mu.Lock()
	// Grant every member's initial claims before the first launch so the
	// pool's (rank, submission) tiebreak sees the whole batch at once.
	for _, w := range active {
		w.advance()
	}
	p.launch()
	for len(active) > 0 {
		var drained []*wavefront
		rest := active[:0]
		for _, w := range active {
			if w.drainedLocked() {
				drained = append(drained, w)
			} else {
				rest = append(rest, w)
			}
		}
		active = rest
		if len(drained) == 0 {
			p.cond.Wait()
			continue
		}
		// Finalize drained members outside the pool lock: finalization does
		// region teardown and checkpoint-store I/O, and the pool must keep
		// dispatching the still-live members meanwhile.
		p.mu.Unlock()
		var retries []*wavefront
		for _, w := range drained {
			l := members[w]
			failed, err := w.finalize()
			if err == nil {
				s.complete(l)
				continue
			}
			if failed == "" && l.t.ctx.Err() != nil {
				// Canceled mid-wavefront: the run was already cleaned up.
				s.forgetCanceled(l)
				rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
				l.t.tk.deliver(nil, err)
				continue
			}
			if s.rec != nil && l.attempt < s.rec.maxAttempts && l.t.ctx.Err() == nil {
				rt.tel.Add(telemetry.LayerFault, "job_retries", 1)
				wait := backoffWait(s.rec, l.attempt)
				nr := rt.newRun(l.t.job, l.r.schedule, epoch, l.r.ns, l.r.cores)
				nr.ck, nr.ckID = l.r.ck, l.r.ckID
				nr.partial = s.rec.partial
				nr.base = l.r.base + wait
				l.waits = append(l.waits, wait)
				l.r = nr
				l.attempt++
				sv := topology.GetTaskView(seed)
				w2, failed2, err2 := nr.newWavefront(l.order, l.ranks, l.t.ctx.Err, sv)
				if err2 != nil {
					topology.PutTaskView(sv)
					nr.cleanup()
					s.forget(nr)
					s.fail(l.t, fmt.Errorf("core: job %s task %s: %w", l.t.job.Name(), failed2, err2))
					continue
				}
				members[w2] = l
				retries = append(retries, w2)
				continue
			}
			s.forget(l.r)
			if failed != "" {
				s.fail(l.t, fmt.Errorf("core: job %s task %s: %w", l.t.job.Name(), failed, err))
			} else {
				s.fail(l.t, err)
			}
		}
		p.mu.Lock()
		for _, w := range retries {
			p.attach(w)
			active = append(active, w)
			w.advance()
		}
		if len(retries) > 0 {
			p.launch()
		}
	}
	p.mu.Unlock()
	topology.PutTaskView(seed)
}

// fail delivers an error outcome.
func (s *Server) fail(t *jobTicket, err error) {
	s.rt.tel.Add(telemetry.LayerRuntime, "server_failed", 1)
	t.tk.deliver(nil, err)
}

// forget drops a terminated submission's snapshots so the checkpointer
// drains back to zero entries. No-op without recovery.
func (s *Server) forget(r *run) {
	if s.rec != nil && r.ckID != "" {
		s.rec.ck.Forget(r.ckID)
	}
}

// forgetCanceled is forget for a canceled run, except when the submission
// adopted an external checkpoint namespace (SubmitOptions.ResumeID): a
// shard being killed cancels its in-flight jobs, and the snapshots they
// persisted are exactly what the router's failover re-submission replays on
// a survivor — the namespace owner forgets them, not the dying shard.
func (s *Server) forgetCanceled(l *liveJob) {
	if l.t.resume != "" {
		return
	}
	s.forget(l.r)
}

// complete finalizes a finished run and delivers its report. Recovered
// jobs (attempt > 1) are distinguished in spans and counters so replayed
// work is visible in the serving profile.
func (s *Server) complete(l *liveJob) {
	// runWavefront already released the run's regions and finalized its
	// peak-memory and makespan figures.
	s.forget(l.r)
	l.r.report.Attempts = l.attempt
	l.r.report.AttemptWaits = l.waits
	l.r.report.BatchSize = l.batchSize
	l.r.report.BatchIndex = l.batchIndex
	l.r.report.Overlapped = l.overlapped
	l.r.report.SLODeadline = l.t.deadline
	l.r.report.SLOWait = l.t.slowait
	l.r.report.SLOPredicted = l.t.predicted
	l.r.report.BestEffort = l.t.bestEffort
	l.r.report.Shard = l.t.shard
	span := "serve"
	if l.attempt > 1 {
		span = "serve-recovered"
		l.r.report.ReplayedTasks = len(l.r.report.Tasks) - l.r.report.SkippedTasks
		s.rt.tel.Add(telemetry.LayerRuntime, "server_recovered", 1)
	} else if l.r.report.SkippedTasks > 0 {
		// First local attempt, yet tasks were restored: a failover
		// re-submission (SubmitOptions.ResumeID) replaying what a dead
		// shard checkpointed.
		span = "serve-recovered"
		l.r.report.ReplayedTasks = len(l.r.report.Tasks) - l.r.report.SkippedTasks
		s.rt.tel.Add(telemetry.LayerRuntime, "server_recovered", 1)
	}
	s.rt.tel.Add(telemetry.LayerRuntime, "server_completed", 1)
	s.rt.tel.Record(telemetry.Span{
		Layer: telemetry.LayerRuntime, Job: l.t.job.Name(),
		Name: span, Start: 0, End: l.r.report.Makespan,
	})
	l.t.tk.deliver(l.r.report, nil)
}
