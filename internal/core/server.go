package core

// This file implements core.Server — the concurrent job-submission engine
// the paper's deployment story implies (§2.1: "dataflow systems that serve
// thousands of jobs in parallel"). Runtime.Run gives per-call epoch
// isolation; Server adds what a multi-tenant front door needs on top:
//
//   - a bounded admission queue with configurable backpressure (fail fast
//     with ErrQueueFull, or block until a slot frees),
//   - a worker pool whose workers batch whatever is queued into shared
//     virtual-time epochs (batched jobs contend on the same device queues,
//     exactly like RunAll; separate batches are fully isolated),
//   - per-job context cancellation and deadlines, honored while queued and
//     between tasks during execution,
//   - optional fault-tolerant execution (ServerConfig.Recovery): task
//     outputs are checkpointed into a shared fault.Store and failed jobs
//     are retried inside the worker's epoch with checkpointed tasks
//     restored instead of re-executed (challenge 8(3)),
//   - graceful drain on Close, and
//   - per-job admission / queue-wait / rejection counters plus spans in the
//     runtime's telemetry registry, so the serving path is observable.
//
// Within a batch, each submission gets a unique owner namespace, so many
// tenants may submit jobs with the same name concurrently.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Errors reported by the serving layer.
var (
	// ErrQueueFull is returned by Submit when the admission queue is full
	// and the server was configured to reject rather than block.
	ErrQueueFull = errors.New("core: server admission queue full")
	// ErrServerClosed is returned by Submit after Close started draining.
	ErrServerClosed = errors.New("core: server closed")
)

// ServerConfig assembles a Server. Zero fields get serving defaults.
type ServerConfig struct {
	// Runtime executes the admitted jobs. Nil builds a default runtime
	// (reference testbed, best-fit placer, HEFT scheduler).
	Runtime *Runtime
	// QueueDepth bounds the admission queue (default 64). Submissions
	// beyond the bound are rejected or block, per Block.
	QueueDepth int
	// Workers is the number of epoch workers serving the queue (default 4).
	// Each worker runs one batch at a time; batches run concurrently.
	Workers int
	// MaxBatch caps how many queued jobs one worker folds into a shared
	// virtual-time epoch (default 8). 1 disables batching: every job gets
	// a private epoch.
	MaxBatch int
	// Block selects the backpressure policy: false (default) makes Submit
	// fail fast with ErrQueueFull when the queue is full; true makes it
	// block until a slot frees or the submission's context ends.
	Block bool
	// MaxLinger bounds how long a worker waits for the queue to yield more
	// jobs before launching a partial batch. Zero (the default) keeps
	// collection opportunistic: the worker grabs whatever is already queued
	// and launches immediately. A positive linger trades a bounded amount
	// of queue wait for fuller batches.
	MaxLinger time.Duration
	// Recovery, when set, makes every admitted job run fault-tolerantly:
	// task outputs are checkpointed into the policy's store and a failed
	// job is retried in place (restored tasks replayed inside the worker's
	// epoch) up to MaxAttempts. Nil disables recovery: failures surface
	// directly to the submitter.
	Recovery *RecoveryPolicy
}

// RecoveryPolicy configures fault-tolerant serving (ServerConfig.Recovery).
type RecoveryPolicy struct {
	// Store is the fault-tolerant far-memory store holding checkpoints,
	// shared by all workers — the operator's redundancy choice
	// (fault.NewReplicatedStore, fault.NewErasureStore). Nil builds a
	// default 2-way replicated store over a private 3-node fabric.
	Store fault.Store
	// MaxAttempts caps total runs per submission, first included
	// (default 3).
	MaxAttempts int
	// Backoff is the base per-retry delay in virtual time. Retries back off
	// exponentially: the wait before attempt n+1 is Backoff·2^(n-1), capped
	// at BackoffCap. Batch mates are unaffected; the waits a submission
	// accumulated are reported in Report.AttemptWaits.
	Backoff time.Duration
	// BackoffCap bounds the exponential growth (default 8×Backoff).
	BackoffCap time.Duration
}

// recoveryState is the resolved serving-side recovery machinery.
type recoveryState struct {
	ck          *Checkpointer
	maxAttempts int
	backoff     time.Duration
	cap         time.Duration
}

// backoffWait is the virtual-time delay inserted before the retry that
// follows a failed attempt (1-based): backoff·2^(attempt-1), capped.
func backoffWait(rec *recoveryState, attempt int) time.Duration {
	if rec.backoff <= 0 {
		return 0
	}
	w := rec.backoff
	for i := 1; i < attempt; i++ {
		w <<= 1
		if w >= rec.cap || w <= 0 { // cap reached or shift overflowed
			return rec.cap
		}
	}
	if w > rec.cap {
		return rec.cap
	}
	return w
}

// jobOutcome is what a worker delivers back to a waiting Submit.
type jobOutcome struct {
	report *Report
	err    error
}

// jobTicket is one admitted submission.
type jobTicket struct {
	job      *dataflow.Job
	ctx      context.Context
	seq      uint64
	enqueued time.Time
	done     chan jobOutcome // buffered: workers never block on delivery
}

// Server is the admission-controlled serving engine. It is safe for
// concurrent use by multiple goroutines.
type Server struct {
	rt        *Runtime
	maxBatch  int
	block     bool
	maxLinger time.Duration
	rec       *recoveryState // nil: recovery disabled

	queue chan *jobTicket
	wg    sync.WaitGroup
	seq   atomic.Uint64

	// gate serializes admission against Close: submissions hold the read
	// side while enqueueing, Close takes the write side to flip closed, so
	// the queue channel is only closed once no send can be in flight.
	gate   sync.RWMutex
	closed bool
}

// NewServer builds and starts a serving engine: its workers are live when
// NewServer returns. Callers must Close it to drain.
func NewServer(cfg ServerConfig) (*Server, error) {
	rt := cfg.Runtime
	if rt == nil {
		var err error
		rt, err = New(Config{})
		if err != nil {
			return nil, err
		}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 8
	}
	var rec *recoveryState
	if cfg.Recovery != nil {
		store := cfg.Recovery.Store
		if store == nil {
			var err error
			store, err = defaultFaultStore()
			if err != nil {
				return nil, err
			}
		}
		maxAttempts := cfg.Recovery.MaxAttempts
		if maxAttempts <= 0 {
			maxAttempts = 3
		}
		cap := cfg.Recovery.BackoffCap
		if cap <= 0 {
			cap = 8 * cfg.Recovery.Backoff
		}
		rec = &recoveryState{
			ck:          NewCheckpointer(store),
			maxAttempts: maxAttempts,
			backoff:     cfg.Recovery.Backoff,
			cap:         cap,
		}
	}
	s := &Server{
		rt:        rt,
		maxBatch:  maxBatch,
		block:     cfg.Block,
		maxLinger: cfg.MaxLinger,
		rec:       rec,
		queue:     make(chan *jobTicket, depth),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Runtime returns the runtime executing the admitted jobs.
func (s *Server) Runtime() *Runtime { return s.rt }

// Checkpointer returns the recovery checkpointer, or nil when the server
// was built without a RecoveryPolicy.
func (s *Server) Checkpointer() *Checkpointer {
	if s.rec == nil {
		return nil
	}
	return s.rec.ck
}

// Submit admits a job and blocks until its report is ready, admission is
// refused (ErrQueueFull, ErrServerClosed), or ctx ends. A nil ctx means
// context.Background(). Cancellation is honored at every stage: a job
// canceled while queued is never executed; one canceled mid-run is stopped
// at the next task boundary and its regions are released.
func (s *Server) Submit(ctx context.Context, job *dataflow.Job) (*Report, error) {
	if job == nil {
		return nil, errors.New("core: nil job")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	t := &jobTicket{
		job: job, ctx: ctx, seq: s.seq.Add(1),
		enqueued: time.Now(), done: make(chan jobOutcome, 1),
	}

	s.gate.RLock()
	if s.closed {
		s.gate.RUnlock()
		s.rt.tel.Add(telemetry.LayerRuntime, "server_rejected", 1)
		return nil, ErrServerClosed
	}
	if s.block {
		select {
		case s.queue <- t:
			s.gate.RUnlock()
		case <-ctx.Done():
			s.gate.RUnlock()
			s.rt.tel.Add(telemetry.LayerRuntime, "server_rejected", 1)
			return nil, ctx.Err()
		}
	} else {
		select {
		case s.queue <- t:
			s.gate.RUnlock()
		default:
			s.gate.RUnlock()
			s.rt.tel.Add(telemetry.LayerRuntime, "server_rejected", 1)
			return nil, ErrQueueFull
		}
	}
	s.rt.tel.Add(telemetry.LayerRuntime, "server_admitted", 1)

	select {
	case out := <-t.done:
		return out.report, out.err
	case <-ctx.Done():
		// The worker notices the dead context at the next task boundary
		// and cleans the run up; done is buffered, so nothing leaks.
		return nil, ctx.Err()
	}
}

// Close stops admission and drains: already-admitted jobs run to
// completion, then the workers exit. Returns ctx.Err() if ctx ends before
// the drain finishes (the workers keep draining in the background). Safe to
// call more than once; a nil ctx means context.Background().
func (s *Server) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.gate.Lock()
	already := s.closed
	s.closed = true
	s.gate.Unlock()
	if !already {
		close(s.queue) // no Submit can be mid-send once the gate flipped
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker serves batches until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, ok := <-s.queue
		if !ok {
			return
		}
		s.runBatch(s.collect(t))
	}
}

// collect folds queued jobs behind first into one batch, up to MaxBatch —
// the batch shares one virtual-time epoch. With MaxLinger zero the fold is
// opportunistic (whatever is already queued); a positive linger waits that
// long for stragglers, bounding the queue wait it can add to first.
func (s *Server) collect(first *jobTicket) []*jobTicket {
	batch := []*jobTicket{first}
	if s.maxLinger > 0 {
		timer := time.NewTimer(s.maxLinger)
		defer timer.Stop()
		for len(batch) < s.maxBatch {
			select {
			case t, ok := <-s.queue:
				if !ok {
					return batch
				}
				batch = append(batch, t)
			case <-timer.C:
				return batch
			}
		}
		return batch
	}
	for len(batch) < s.maxBatch {
		select {
		case t, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, t)
		default:
			return batch
		}
	}
	return batch
}

// liveJob is one batch member's execution state.
type liveJob struct {
	t       *jobTicket
	r       *run
	order   []*dataflow.Task
	ranks   map[string]int
	waits   []time.Duration // virtual backoff applied before each retry
	attempt int             // 1-based; >1 means recovery retried this submission
}

// runBatch executes one batch in a shared virtual-time epoch. Failures and
// cancellations are isolated per job: the failing run's regions are
// released and only its submitter sees the error.
func (s *Server) runBatch(batch []*jobTicket) {
	rt := s.rt
	dequeued := time.Now()

	// Queue-wait accounting; jobs whose context ended while queued are
	// finished here without ever executing.
	admitted := batch[:0]
	for _, t := range batch {
		rt.tel.Observe(telemetry.LayerRuntime, "server_queue_wait", dequeued.Sub(t.enqueued))
		if err := t.ctx.Err(); err != nil {
			rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
			t.done <- jobOutcome{err: err}
			continue
		}
		admitted = append(admitted, t)
	}
	if len(admitted) == 0 {
		return
	}
	rt.tel.Add(telemetry.LayerRuntime, "server_epochs", 1)

	// Plan each job against the accumulating load of the batch; a
	// scheduling failure only fails its own job.
	epoch := rt.topo.NewEpoch()
	cores := make(map[string][]time.Duration)
	for _, c := range rt.topo.Computes() {
		cores[c.ID] = make([]time.Duration, c.Cores)
	}
	load := rt.newLoad()
	lives := make([]*liveJob, 0, len(admitted))
	for _, t := range admitted {
		schedule, err := rt.scheduleInto(t.job, load)
		if err != nil {
			s.fail(t, fmt.Errorf("core: scheduling %s: %w", t.job.Name(), err))
			continue
		}
		ranks, order, err := sched.Ranks(t.job)
		if err != nil {
			s.fail(t, err)
			continue
		}
		// A unique owner namespace per submission lets identical jobs
		// share the epoch without region-owner collisions.
		ns := fmt.Sprintf("%s#%d", t.job.Name(), t.seq)
		r := rt.newRun(t.job, schedule, epoch, ns, cores)
		if s.rec != nil {
			// The snapshot namespace is unique per submission, so
			// same-named jobs in flight never cross-restore or
			// cross-Forget each other's checkpoints.
			r.ck, r.ckID = s.rec.ck, s.rec.ck.runID(t.job.Name())
		}
		lives = append(lives, &liveJob{t: t, r: r, order: order, ranks: ranks, attempt: 1})
	}

	// Each job's DAG executes as a parallel wavefront against the batch's
	// shared cores and epoch; jobs run in admission order, each queueing
	// behind the clock views its completed batch mates absorbed into the
	// epoch. Failures and retries stay per job.
	for _, l := range lives {
		for {
			failed, err := l.r.runWavefront(l.order, l.ranks, rt.workers, l.t.ctx.Err)
			if err == nil {
				s.complete(l)
				break
			}
			if failed == "" && l.t.ctx.Err() != nil {
				// Canceled mid-wavefront: the run was already cleaned up.
				s.forget(l.r)
				rt.tel.Add(telemetry.LayerRuntime, "server_canceled", 1)
				l.t.done <- jobOutcome{err: err}
				break
			}
			// Recovery: retry in place, inside this worker's epoch. The
			// fresh run shares the batch's cores and device queues;
			// checkpointed tasks are restored instead of re-executed, and
			// the exponential backoff pushes the retry's start on the
			// virtual clock.
			if s.rec != nil && l.attempt < s.rec.maxAttempts && l.t.ctx.Err() == nil {
				rt.tel.Add(telemetry.LayerFault, "job_retries", 1)
				wait := backoffWait(s.rec, l.attempt)
				nr := rt.newRun(l.t.job, l.r.schedule, epoch, l.r.ns, cores)
				nr.ck, nr.ckID = l.r.ck, l.r.ckID
				nr.base = l.r.base + wait
				l.waits = append(l.waits, wait)
				l.r = nr
				l.attempt++
				continue
			}
			s.forget(l.r)
			if failed != "" {
				s.fail(l.t, fmt.Errorf("core: job %s task %s: %w", l.t.job.Name(), failed, err))
			} else {
				s.fail(l.t, err)
			}
			break
		}
	}
}

// fail delivers an error outcome.
func (s *Server) fail(t *jobTicket, err error) {
	s.rt.tel.Add(telemetry.LayerRuntime, "server_failed", 1)
	t.done <- jobOutcome{err: err}
}

// forget drops a terminated submission's snapshots so the checkpointer
// drains back to zero entries. No-op without recovery.
func (s *Server) forget(r *run) {
	if s.rec != nil && r.ckID != "" {
		s.rec.ck.Forget(r.ckID)
	}
}

// complete finalizes a finished run and delivers its report. Recovered
// jobs (attempt > 1) are distinguished in spans and counters so replayed
// work is visible in the serving profile.
func (s *Server) complete(l *liveJob) {
	// runWavefront already released the run's regions and finalized its
	// peak-memory and makespan figures.
	s.forget(l.r)
	l.r.report.Attempts = l.attempt
	l.r.report.AttemptWaits = l.waits
	span := "serve"
	if l.attempt > 1 {
		span = "serve-recovered"
		s.rt.tel.Add(telemetry.LayerRuntime, "server_recovered", 1)
	}
	s.rt.tel.Add(telemetry.LayerRuntime, "server_completed", 1)
	s.rt.tel.Record(telemetry.Span{
		Layer: telemetry.LayerRuntime, Job: l.t.job.Name(),
		Name: span, Start: 0, End: l.r.report.Makespan,
	})
	l.t.done <- jobOutcome{report: l.r.report}
}
