package shard

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/telemetry"
)

// chainJob builds a deterministic three-stage pipeline. Structurally
// identical inputs yield identical virtual timelines; only the name (the
// routing key) varies.
func chainJob(name string) *dataflow.Job {
	j := dataflow.NewJob(name)
	a := j.Task("ingest", dataflow.Props{Ops: 2e6, OutputBytes: 1 << 16}, nil)
	b := j.Task("filter", dataflow.Props{Ops: 4e6, OutputBytes: 1 << 14}, nil)
	c := j.Task("reduce", dataflow.Props{Ops: 1e6}, nil)
	a.Then(b)
	b.Then(c)
	return j
}

// gateJob is a five-stage chain whose fourth task parks on release after
// announcing itself on started — the deterministic crash window: while the
// gate is held, tasks 0–2 have completed (and checkpointed, when recovery
// is on) and task 4 has not dispatched. Nil channels build the same job
// with a pass-through gate (solo references, failover re-runs race-free):
// channel traffic is real Go code, invisible to virtual time.
func gateJob(name string, started chan<- struct{}, release <-chan struct{}) *dataflow.Job {
	j := dataflow.NewJob(name)
	var prev *dataflow.Task
	for i := 0; i < 3; i++ {
		t := j.Task(fmt.Sprintf("t%d", i), dataflow.Props{Ops: 1e6, OutputBytes: 1 << 12}, nil)
		if prev != nil {
			prev.Then(t)
		}
		prev = t
	}
	gate := j.Task("gate", dataflow.Props{Ops: 1e6, OutputBytes: 1 << 12}, func(ctx dataflow.Ctx) error {
		if started != nil {
			select {
			case started <- struct{}{}:
			default: // failover re-run: the test already saw the first entry
			}
		}
		if release != nil {
			<-release
		}
		return nil
	})
	prev.Then(gate)
	gate.Then(j.Task("t4", dataflow.Props{Ops: 1e6}, nil))
	return j
}

// soloReport runs the job alone on an idle Workers=1 runtime — the byte
// reference every served report must reproduce.
func soloReport(t testing.TB, j *dataflow.Job) *core.Report {
	t.Helper()
	rt, err := core.New(core.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func newTestCluster(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	if cfg.Server.EpochWorkers == 0 {
		cfg.Server.EpochWorkers = 1
	}
	if cfg.Server.MaxBatch == 0 {
		cfg.Server.MaxBatch = 4
	}
	if cfg.Server.QueueDepth == 0 {
		cfg.Server.QueueDepth = 64
	}
	cfg.Server.Block = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(context.Background()) }) //nolint:errcheck
	return c
}

// TestShardedReportsSoloIdentical is the tentpole invariant: jobs routed
// across shards produce reports byte-identical (Report.String()) to their
// solo runs, while the routing layer spreads them over more than one shard
// and prices every admission through the fabric ledger.
func TestShardedReportsSoloIdentical(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	perShard := map[string]int{}
	for i := 0; i < 16; i++ {
		j := chainJob(fmt.Sprintf("job%02d", i))
		want := soloReport(t, j).String()
		rep, err := c.Submit(context.Background(), chainJob(j.Name()))
		if err != nil {
			t.Fatalf("%s: %v", j.Name(), err)
		}
		if got := rep.String(); got != want {
			t.Fatalf("%s on %s diverges from solo:\n got: %s\nwant: %s", j.Name(), rep.Shard, got, want)
		}
		if rep.Shard == "" {
			t.Fatalf("%s: report must carry its serving shard", j.Name())
		}
		perShard[rep.Shard]++
	}
	if len(perShard) < 2 {
		t.Fatalf("16 distinct keys landed on one shard: %v", perShard)
	}
	for _, st := range c.Stats() {
		if st.Submitted != st.Admitted || st.Completed != st.Submitted {
			t.Errorf("%s: submitted %d admitted %d completed %d", st.Name, st.Submitted, st.Admitted, st.Completed)
		}
		// Every submission wrote one ledger record to its home node, plus
		// the slab alloc: the fabric attributes the traffic per shard.
		if st.Fabric.Verbs < uint64(st.Submitted)+1 {
			t.Errorf("%s: fabric verbs %d < ledger writes %d + alloc", st.Name, st.Fabric.Verbs, st.Submitted)
		}
		if st.Fabric.Bytes < uint64(st.Submitted)*ledgerRecordBytes {
			t.Errorf("%s: fabric bytes %d < %d ledger bytes", st.Name, st.Fabric.Bytes, st.Submitted*ledgerRecordBytes)
		}
	}
}

// TestRoutingDeterministic pins the control-plane property: routing and
// per-shard admission fingerprints are pure functions of (membership,
// weights, vnodes, submission stream) — two identically configured
// clusters agree byte-for-byte, with and without failures.
func TestRoutingDeterministic(t *testing.T) {
	build := func() *Cluster { return newTestCluster(t, Config{Shards: 3, Weights: []int{1, 2, 1}}) }
	a, b := build(), build()
	if fa, fb := a.RouteFingerprint(4096), b.RouteFingerprint(4096); fa != fb {
		t.Fatalf("identical clusters route differently: %016x != %016x", fa, fb)
	}
	if fa, fc := a.RouteFingerprint(4096), newTestCluster(t, Config{Shards: 3}).RouteFingerprint(4096); fa == fc {
		t.Fatal("weights must change the assignment fingerprint")
	}

	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("stream%02d", i)
		if _, err := a.Submit(context.Background(), chainJob(name)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Submit(context.Background(), chainJob(name)); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	for i := range sa {
		if sa[i].AdmissionSig != sb[i].AdmissionSig || sa[i].Submitted != sb[i].Submitted {
			t.Errorf("shard %d: %s/%d != %s/%d", i,
				sa[i].AdmissionSig, sa[i].Submitted, sb[i].AdmissionSig, sb[i].Submitted)
		}
	}

	// Failures re-route identically too: the ring point set never changes,
	// only the skip set.
	if err := a.Partition(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Partition(1); err != nil {
		t.Fatal(err)
	}
	if fa, fb := a.RouteFingerprint(4096), b.RouteFingerprint(4096); fa != fb {
		t.Fatalf("post-failure routing diverges: %016x != %016x", fa, fb)
	}
	if err := a.Heal(1); err != nil {
		t.Fatal(err)
	}
	if fa := a.RouteFingerprint(4096); fa != b.RouteFingerprint(4096) {
		_ = fa // b still partitioned: fingerprints must differ
	} else {
		t.Fatal("healed cluster must route differently from a partitioned one")
	}
}

// TestWeightedRingSkew checks weighted virtual nodes tilt the key space
// toward heavier shards.
func TestWeightedRingSkew(t *testing.T) {
	r := buildRing([]string{"s0", "s1"}, []int{1, 3}, 64)
	alive := func(int) bool { return true }
	counts := [2]int{}
	key := uint64(1)
	for i := 0; i < 8192; i++ {
		key = key*6364136223846793005 + 1442695040888963407
		counts[r.successor(key, alive)]++
	}
	if counts[1] <= counts[0] {
		t.Fatalf("weight-3 shard must absorb more keys: %v", counts)
	}
}

// findJobFor scans names until one routes to the wanted shard.
func findJobFor(t *testing.T, c *Cluster, shard int, prefix string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if c.Route(Signature(gateJob(name, nil, nil))) == shard {
			return name
		}
	}
	t.Fatalf("no key routes to shard %d", shard)
	return ""
}

// TestFailoverReroutesByteIdentical is the failover gate, run at the
// worker counts the acceptance list names: a shard crashes with jobs in
// flight (one mid-execution, the rest queued behind it); every ticket
// still settles, re-routed to the survivor, and — recovery off, so the
// survivor re-runs from scratch — every report is byte-identical to the
// job's solo run.
func TestFailoverReroutesByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("EpochWorkers=%d", workers), func(t *testing.T) {
			c := newTestCluster(t, Config{
				Shards: 2,
				Server: core.ServerConfig{EpochWorkers: workers, MaxBatch: 1},
			})
			victim := 0
			gateName := findJobFor(t, c, victim, "gate")
			mateNames := make([]string, 0, 3)
			for i := 0; len(mateNames) < 3; i++ {
				name := fmt.Sprintf("mate-%d", i)
				if c.Route(Signature(chainJob(name))) == victim {
					mateNames = append(mateNames, name)
				}
			}

			solo := map[string]string{gateName: soloReport(t, gateJob(gateName, nil, nil)).String()}
			for _, n := range mateNames {
				solo[n] = soloReport(t, chainJob(n)).String()
			}

			started := make(chan struct{}, 1)
			release := make(chan struct{})
			tks := map[string]*core.Ticket{}
			gtk, err := c.SubmitAsync(context.Background(), gateJob(gateName, started, release))
			if err != nil {
				t.Fatal(err)
			}
			tks[gateName] = gtk
			<-started // the victim shard is now executing the gate job
			for _, n := range mateNames {
				tk, err := c.SubmitAsync(context.Background(), chainJob(n))
				if err != nil {
					t.Fatal(err)
				}
				tks[n] = tk
			}

			if err := c.Crash(victim); err != nil {
				t.Fatal(err)
			}
			close(release) // let the doomed attempt drain; re-runs pass through

			survivor := c.shards[1-victim].name
			for name, tk := range tks {
				rep, err := tk.Wait(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if rep.Shard != survivor {
					t.Errorf("%s served by %s, want survivor %s", name, rep.Shard, survivor)
				}
				if got := rep.String(); got != solo[name] {
					t.Errorf("%s: re-routed report diverges from solo:\n got: %s\nwant: %s", name, got, solo[name])
				}
			}
			st := c.Stats()
			if st[1-victim].Rerouted != int64(len(tks)) {
				t.Errorf("survivor adopted %d jobs, want %d", st[1-victim].Rerouted, len(tks))
			}
			if !st[victim].Down {
				t.Error("crashed shard must report Down")
			}
			if _, ok := c.Fabric().Owner(c.shards[victim].slab); !ok {
				t.Error("dead shard's ledger lease must survive in the control plane")
			}
		})
	}
}

// TestFailoverPartialReplayResumes turns recovery on: the survivor resumes
// the crashed job from the dead shard's checkpoints (shared namespace via
// SubmitOptions.ResumeID) instead of re-running it — the cross-shard
// partial-replay path.
func TestFailoverPartialReplayResumes(t *testing.T) {
	c := newTestCluster(t, Config{
		Shards: 2,
		Server: core.ServerConfig{
			EpochWorkers: 1, MaxBatch: 1,
			Recovery: &core.RecoveryPolicy{MaxAttempts: 2, PartialReplay: true},
		},
	})
	victim := 0
	name := findJobFor(t, c, victim, "resume")
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	tk, err := c.SubmitAsync(context.Background(), gateJob(name, started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // t0..t2 completed and checkpointed on the victim
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	close(release)
	rep, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard != c.shards[1-victim].name {
		t.Fatalf("served by %s, want the survivor", rep.Shard)
	}
	if rep.SkippedTasks < 3 {
		t.Fatalf("survivor must restore the dead shard's checkpoints, skipped %d tasks", rep.SkippedTasks)
	}
	if len(rep.Tasks) != 5 {
		t.Fatalf("recovered report must still cover all 5 tasks, got %d", len(rep.Tasks))
	}
	if got := c.Runtime().Telemetry().Counter(telemetry.LayerRuntime, "server_recovered"); got < 1 {
		t.Errorf("server_recovered counter = %d, want ≥1", got)
	}
	// The router owns the namespace and forgets it once settled.
	if n := c.Checkpointer().Snapshots(); n != 0 {
		t.Errorf("%d checkpoint entries leaked after settlement", n)
	}
}

// TestClusterSoak drives concurrent submitters, in-epoch rebalance sweeps,
// and a crash/restart cycle through a 2-shard cluster — the -race workout
// for the router's locking. Every submission must settle.
func TestClusterSoak(t *testing.T) {
	c := newTestCluster(t, Config{
		Shards: 2,
		Server: core.ServerConfig{EpochWorkers: 2, MaxBatch: 4},
	})
	const (
		submitters = 3
		perG       = 20
	)
	var wg sync.WaitGroup
	var settled, failed int64
	var mu sync.Mutex
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rep, err := c.Submit(context.Background(), chainJob(fmt.Sprintf("soak-%d-%d", g, i)))
				mu.Lock()
				if err != nil {
					failed++
				} else {
					settled++
					if rep.Shard == "" {
						t.Error("soak report lost its shard label")
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	// Maintenance sweeps concurrent with serving (satellite 1): each runs
	// in its own epoch, so serving reports stay solo-identical throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			c.Rebalance(time.Duration(i) * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if failed != 0 {
		t.Errorf("%d soak submissions failed", failed)
	}
	if settled != submitters*perG {
		t.Errorf("settled %d of %d", settled, submitters*perG)
	}
	var completed int64
	for _, st := range c.Stats() {
		completed += st.Completed
	}
	if completed != settled {
		t.Errorf("shards completed %d, tickets settled %d", completed, settled)
	}
}

// TestClusterClosedRejects pins the shutdown contract.
func TestClusterClosedRejects(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2})
	if err := c.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAsync(context.Background(), chainJob("late")); err != ErrClosed {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}
