package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Errors reported by the routing front end.
var (
	// ErrNoShards means no alive shard remains to route or re-route to.
	ErrNoShards = errors.New("shard: no alive shard")
	// ErrClosed is returned by submissions after Close started.
	ErrClosed = errors.New("shard: cluster closed")
)

// ledgerRecordBytes is the size of one admission record in a shard's ledger
// slab: signature, routed ticket id, arrival, deadline — 8 bytes each.
const ledgerRecordBytes = 32

// Config assembles a Cluster. Zero fields get serving defaults.
type Config struct {
	// Shards is the number of server shards (default 2).
	Shards int
	// Weights are optional per-shard ring weights: shard i contributes
	// Weights[i]×VNodes virtual nodes (missing or non-positive entries
	// count as 1). Weighted shards absorb proportionally more key space.
	Weights []int
	// VNodes is the number of virtual nodes per weight unit (default 64).
	VNodes int
	// Server is the per-shard serving template. Runtime and
	// ExecConfig.Topology must be nil: every shard is given its own private
	// runtime (own topology instance, region manager, epoch pool) so
	// shards never share device queues. Telemetry, if set, is shared by
	// all shards; nil builds one shared registry. Recovery, if set,
	// enables cross-shard failover replay: the cluster replaces the
	// policy's store with one shared checkpointer over a replicated
	// fabric store, so a survivor can restore what a dead shard
	// checkpointed.
	Server core.ServerConfig
	// NewTopology builds one shard's private hardware graph. Nil uses the
	// reference single-node testbed.
	NewTopology func() (*topology.Topology, error)
	// Fabric tunes the interconnect the shards share (RTT, bandwidth).
	Fabric cluster.Config
	// SlabBytes sizes each shard's ledger slab (default 1 MiB).
	SlabBytes int64
	// TrackLoad prices every routed job with the scheduler's estimator
	// (sched.EstimateJob) and accumulates per-shard estimated virtual
	// work — the router-side load view Stats reports. Off by default:
	// it costs one HEFT preamble per submission.
	TrackLoad bool
	// Migrate enables cross-shard region migration: every shard gets a
	// cluster.RegionPool wired into its region manager as the remote
	// exporter, and Rebalance sweeps may evict cold regions past the local
	// tier hierarchy into the ring successors' fabric memory. Payloads are
	// mirrored into the cluster-shared checkpoint store, so a region
	// survives the crash of the memory node hosting its slab.
	Migrate bool
	// PoolBytes is the extra fabric capacity each shard node exports for
	// other shards' migrated regions (default 64 MiB; Migrate only).
	PoolBytes int64
	// SpillWatermark caps a remote host's fill fraction for migrated
	// regions (default 0.9; Migrate only).
	SpillWatermark float64
	// Rebalance is the tiering policy Cluster.Rebalance sweeps run with.
	// With Migrate on and EvictWatermark unset, EvictWatermark defaults to
	// 0.95 so only genuinely full devices shed regions to the cluster.
	Rebalance region.RebalancePolicy
}

// Shard is one serving shard: a core.Server over its own runtime, a fabric
// node exporting its ledger slab, and the router-side health/accounting
// state.
type Shard struct {
	id   int
	name string // fabric node name
	srv  *core.Server
	c    *Cluster
	pool *cluster.RegionPool // remote-exporter for this shard's regions; nil without Migrate

	mu        sync.Mutex
	down      bool
	adopted   bool // ledger lease already handed to a survivor
	slab      cluster.SlabID
	ledgerSeq int64 // records written (ring-buffer cursor)
	// active holds one cancel func per in-flight submission; markDown calls
	// them synchronously, so a Crash/Partition returns only after every
	// submission on the shard has observed the death.
	nextSub uint64
	active  map[uint64]context.CancelFunc

	// Admission fingerprint over this shard's primary routing decisions,
	// in submission order (failover re-submissions are excluded: their
	// timing is wall-clock). Reproducible when submissions come from one
	// goroutine, as the traffic harness does.
	sigMu sync.Mutex
	sig   uint64 // running FNV-64a

	submitted     atomic.Int64
	admitted      atomic.Int64
	bestEffort    atomic.Int64
	rejectedSLO   atomic.Int64
	rejectedQueue atomic.Int64
	errored       atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	rerouted      atomic.Int64 // failover re-submissions adopted by this shard
	sloMissed     atomic.Int64 // admitted guaranteed-tier jobs that missed their virtual deadline
	estWorkNs     atomic.Int64 // cumulative estimated virtual work routed here (TrackLoad)
}

// Name returns the shard's fabric node name ("shard0", "shard1", ...).
func (sh *Shard) Name() string { return sh.name }

// Server returns the shard's serving engine.
func (sh *Shard) Server() *core.Server { return sh.srv }

// isDown reports whether the shard has been marked dead.
func (sh *Shard) isDown() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.down
}

// ShardStats is one shard's routing, admission, and fabric accounting.
type ShardStats struct {
	Name string
	Down bool
	// Primary routing decisions (failover re-submissions excluded).
	Submitted     int64
	Admitted      int64 // guaranteed tier
	BestEffort    int64
	RejectedSLO   int64
	RejectedQueue int64
	Errors        int64
	// Completion ledger, including adopted re-routes.
	Completed int64
	Failed    int64
	Rerouted  int64
	SLOMissed int64 // guaranteed-tier completions past their virtual deadline
	// EstWorkNs is the cumulative estimated virtual work routed to this
	// shard (Config.TrackLoad).
	EstWorkNs int64
	// AdmissionSig fingerprints the shard's decision stream (FNV-64a).
	AdmissionSig string
	// Fabric counts the verbs/bytes that hit this shard's fabric node —
	// ledger writes, failover transfers, and migrated region payloads
	// parked here by other shards.
	Fabric cluster.NodeStats
	// Migration counts the regions this shard exported to (and recalled
	// from) the cluster pool. Zero-valued without Config.Migrate.
	Migration cluster.RegionPoolStats
}

// Cluster is the sharded serving front end. Submissions are routed by
// consistent hash of the job signature; the submission API mirrors
// core.Server so traffic harnesses drive either interchangeably. Safe for
// concurrent use; fingerprint reproducibility additionally requires a
// single submitting goroutine (same as the admission model's decision
// order).
type Cluster struct {
	cfg     Config
	fabric  *cluster.Fabric
	ring    *ring
	shards  []*Shard
	tel     *telemetry.Registry
	ck      *core.Checkpointer // shared across shards; nil without recovery
	ckStore fault.Store        // backing store for ck and migration backups; nil without either
	seq     atomic.Uint64      // routed ticket ids
	wg      sync.WaitGroup     // in-flight watchers
	closed  atomic.Bool
}

// NewCluster builds the fabric, the shards (each with a private runtime),
// and the routing ring, and leases every shard's ledger slab. The cluster
// is serving when NewCluster returns; Close drains it.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.SlabBytes <= 0 {
		cfg.SlabBytes = 1 << 20
	}
	if cfg.Migrate {
		if cfg.PoolBytes <= 0 {
			cfg.PoolBytes = 64 << 20
		}
		if cfg.SpillWatermark <= 0 {
			cfg.SpillWatermark = 0.9
		}
		if cfg.Rebalance.EvictWatermark <= 0 {
			cfg.Rebalance.EvictWatermark = 0.95
		}
	}
	if cfg.Server.Runtime != nil || cfg.Server.Topology != nil {
		return nil, errors.New("shard: Server.Runtime/Topology must be nil — every shard builds its own")
	}
	tel := cfg.Server.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	c := &Cluster{cfg: cfg, fabric: cluster.NewFabric(cfg.Fabric), tel: tel}

	// Cross-shard durable state: one 2-way replicated store on a private
	// checkpoint fabric (pmem nodes), shared by every shard — a node crash
	// costs at most one replica of any snapshot. Failover replay uses it
	// through the shared checkpointer; migration mirrors exported region
	// payloads into it so a region survives its slab host's death.
	if cfg.Server.Recovery != nil || cfg.Migrate {
		ckFabric := cluster.NewFabric(cfg.Fabric)
		for i := 0; i < 3; i++ {
			if err := ckFabric.AddNode(fmt.Sprintf("pmem%d", i), 1<<28); err != nil {
				return nil, err
			}
		}
		store, err := fault.NewReplicatedStore(ckFabric, 2)
		if err != nil {
			return nil, err
		}
		c.ckStore = store
		if cfg.Server.Recovery != nil {
			c.ck = core.NewCheckpointer(store)
		}
	}

	names := make([]string, cfg.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
	}
	c.ring = buildRing(names, cfg.Weights, cfg.VNodes)

	for i := 0; i < cfg.Shards; i++ {
		sh, err := c.buildShard(i, names[i])
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// buildShard constructs one shard: fabric node + leased ledger slab +
// server over a private runtime.
func (c *Cluster) buildShard(i int, name string) (*Shard, error) {
	// With migration on, each shard node exports PoolBytes beyond its
	// ledger: the memory other shards park cold regions in.
	capacity := c.cfg.SlabBytes
	if c.cfg.Migrate {
		capacity += c.cfg.PoolBytes
	}
	if err := c.fabric.AddNode(name, capacity); err != nil {
		return nil, err
	}
	sh := &Shard{id: i, name: name, c: c}
	if err := c.leaseLedger(sh); err != nil {
		return nil, err
	}

	scfg := c.cfg.Server // copy of the template
	var topo *topology.Topology
	var err error
	if c.cfg.NewTopology != nil {
		topo, err = c.cfg.NewTopology()
	} else {
		topo, err = topology.BuildSingleNode(topology.DefaultSingleNode())
	}
	if err != nil {
		return nil, err
	}
	ec := scfg.ExecConfig
	ec.Topology = topo
	ec.Telemetry = c.tel
	rt, err := core.New(ec)
	if err != nil {
		return nil, err
	}
	scfg.Runtime = rt
	if scfg.Recovery != nil {
		rp := *scfg.Recovery
		rp.Checkpointer = c.ck
		rp.Store = nil
		scfg.Recovery = &rp
	}
	sh.srv, err = core.NewServer(scfg)
	if err != nil {
		return nil, err
	}
	if c.cfg.Migrate {
		sh.pool = cluster.NewRegionPool(
			c.fabric, name,
			func(int64) []string { return c.spillTargets(i) },
			c.cfg.SpillWatermark,
			&storeBackup{st: c.ckStore, ids: make(map[string]fault.ObjectID)},
			c.tel,
		)
		rt.Regions().SetExporter(sh.pool)
	}
	sh.active = make(map[uint64]context.CancelFunc)
	return sh, nil
}

// spillTargets lists the alive shards' fabric nodes in ring order after
// shard i — the preference order shard i's region pool exports to. Never
// includes the shard itself: spilling home would be a no-op tier.
func (c *Cluster) spillTargets(i int) []string {
	idxs := c.ring.walkFrom(i, c.alive)
	out := make([]string, len(idxs))
	for j, idx := range idxs {
		out[j] = c.shards[idx].name
	}
	return out
}

// storeBackup adapts the cluster-shared fault.Store to the narrow
// cluster.Backup interface a RegionPool mirrors payloads into (the region
// analogue of checkpoint snapshots; same pmem fabric, same replication).
type storeBackup struct {
	st  fault.Store
	mu  sync.Mutex
	ids map[string]fault.ObjectID
}

func (b *storeBackup) Save(key string, data []byte) (time.Duration, error) {
	id, d, err := b.st.Put(data)
	if err != nil {
		return d, err
	}
	b.mu.Lock()
	old, had := b.ids[key]
	b.ids[key] = id
	b.mu.Unlock()
	if had {
		b.st.Delete(old) //nolint:errcheck // replaced snapshot; best-effort GC
	}
	return d, nil
}

func (b *storeBackup) Load(key string) ([]byte, time.Duration, error) {
	b.mu.Lock()
	id, ok := b.ids[key]
	b.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("shard: no backup under %q", key)
	}
	return b.st.Get(id)
}

func (b *storeBackup) Discard(key string) {
	b.mu.Lock()
	id, ok := b.ids[key]
	delete(b.ids, key)
	b.mu.Unlock()
	if ok {
		b.st.Delete(id) //nolint:errcheck // best-effort GC
	}
}

// leaseLedger allocates and leases a fresh ledger slab for the shard.
// Caller must not hold sh.mu.
func (c *Cluster) leaseLedger(sh *Shard) error {
	slab, _, err := c.fabric.AllocSlab(sh.name, c.cfg.SlabBytes)
	if err != nil {
		return err
	}
	if _, err := c.fabric.Lease(slab, sh.name); err != nil {
		return err
	}
	sh.mu.Lock()
	sh.slab = slab
	sh.ledgerSeq = 0
	sh.mu.Unlock()
	return nil
}

// Shards returns the shards in id order.
func (c *Cluster) Shards() []*Shard { return append([]*Shard(nil), c.shards...) }

// Fabric exposes the interconnect (tests, stats, fault injection).
func (c *Cluster) Fabric() *cluster.Fabric { return c.fabric }

// Runtime returns shard 0's runtime. All shards share one telemetry
// registry and structurally identical topologies, so harnesses that price
// sample jobs or read aggregate counters (loadgen) see the cluster-wide
// view through it.
func (c *Cluster) Runtime() *core.Runtime { return c.shards[0].srv.Runtime() }

// Checkpointer returns the shared recovery checkpointer, nil without a
// Recovery template.
func (c *Cluster) Checkpointer() *core.Checkpointer { return c.ck }

// alive is the ring's liveness oracle.
func (c *Cluster) alive(i int) bool { return !c.shards[i].isDown() }

// Route returns the shard a job with this signature currently routes to,
// or -1 when none is alive. Pure function of (ring, membership): every
// front end agrees without coordination.
func (c *Cluster) Route(sig uint64) int { return c.ring.successor(sig, c.alive) }

// RouteFingerprint hashes the current shard assignment of n synthetic
// signatures — the membership-determinism witness: two clusters with the
// same shard count, weights, vnodes, and down set produce identical
// fingerprints.
func (c *Cluster) RouteFingerprint(n int) uint64 {
	const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3
	var h uint64 = fnvOffset
	key := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < n; i++ {
		key ^= key << 13
		key ^= key >> 7
		key ^= key << 17
		idx := c.Route(key)
		h ^= uint64(idx) + 1
		h *= fnvPrime
	}
	return h
}

// note folds one primary admission decision into the shard's fingerprint
// and counters. Decision bytes mirror loadgen's signature alphabet.
func (sh *Shard) note(d byte) {
	const fnvPrime = 0x100000001b3
	sh.sigMu.Lock()
	if sh.sig == 0 {
		sh.sig = 0xcbf29ce484222325
	}
	sh.sig ^= uint64(d)
	sh.sig *= fnvPrime
	sh.sigMu.Unlock()
	sh.submitted.Add(1)
	switch d {
	case 'A':
		sh.admitted.Add(1)
	case 'B':
		sh.bestEffort.Add(1)
	case 'S':
		sh.rejectedSLO.Add(1)
	case 'Q':
		sh.rejectedQueue.Add(1)
	default:
		sh.errored.Add(1)
	}
}

// admissionSig renders the fingerprint like loadgen.Result.AdmissionSig.
func (sh *Shard) admissionSig() string {
	sh.sigMu.Lock()
	defer sh.sigMu.Unlock()
	s := sh.sig
	if s == 0 {
		s = 0xcbf29ce484222325 // empty stream = FNV offset basis
	}
	return fmt.Sprintf("%016x", s)
}

// noteComplete accounts one delivered report.
func (sh *Shard) noteComplete(rep *core.Report) {
	sh.completed.Add(1)
	if rep.SLODeadline > 0 && !rep.BestEffort && rep.SLOWait+rep.Makespan > rep.SLODeadline {
		sh.sloMissed.Add(1)
	}
}

// ledgerWrite appends one admission record to the shard's ledger slab with
// a one-sided fabric Write — the routing hop every submission pays, and
// what makes cross-shard traffic visible in the per-node fabric counters.
// Returns false when the shard's fabric node is unreachable (the router's
// failure detector).
func (c *Cluster) ledgerWrite(sh *Shard, sig, ticket uint64, opt core.SubmitOptions) bool {
	var rec [ledgerRecordBytes]byte
	putBE(rec[0:], sig)
	putBE(rec[8:], ticket)
	putBE(rec[16:], uint64(opt.Arrival))
	putBE(rec[24:], uint64(opt.Deadline))
	sh.mu.Lock()
	slab := sh.slab
	slots := c.cfg.SlabBytes / ledgerRecordBytes
	off := (sh.ledgerSeq % slots) * ledgerRecordBytes
	sh.ledgerSeq++
	sh.mu.Unlock()
	_, err := c.fabric.Write(slab, off, rec[:])
	return err == nil
}

func putBE(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// markDown declares a shard dead and synchronously cancels every queued
// and running submission on it (the watchers then re-route them).
// Idempotent.
func (c *Cluster) markDown(sh *Shard) {
	sh.mu.Lock()
	wasDown := sh.down
	sh.down = true
	cancels := make([]context.CancelFunc, 0, len(sh.active))
	for _, cf := range sh.active {
		cancels = append(cancels, cf)
	}
	sh.mu.Unlock()
	if !wasDown {
		c.tel.Add(telemetry.LayerRuntime, "shard_down", 1)
		for _, cf := range cancels {
			cf()
		}
		if sh.pool != nil {
			// Adoption sweep: the ring successor takes over the dead shard's
			// exported-region leases (control-plane Handoff) and reclaims the
			// slabs. The payloads are useless without the dead shard's region
			// table — its jobs re-materialize from checkpoints on re-route —
			// so freeing the memory is the disposition, not copying it.
			adopter := ""
			if next := c.ring.walkFrom(sh.id, c.alive); len(next) > 0 {
				adopter = c.shards[next[0]].name
			}
			sh.pool.Abandon(adopter)
		}
	}
}

// revive brings a healed/restarted shard back into the ring with a fresh
// context and ledger slab (the old slab either died with the node or was
// adopted by a survivor).
func (c *Cluster) revive(sh *Shard) error {
	// A partition preserves the node's memory, so the old ledger slab still
	// holds capacity; drop it before leasing a fresh one. After a crash the
	// slab died with the node and the free is a tolerated no-op.
	sh.mu.Lock()
	old := sh.slab
	sh.mu.Unlock()
	if old != (cluster.SlabID{}) {
		c.fabric.FreeSlab(old) //nolint:errcheck // gone after a crash
	}
	if err := c.leaseLedger(sh); err != nil {
		return err
	}
	sh.mu.Lock()
	sh.down = false
	sh.adopted = false
	sh.mu.Unlock()
	c.tel.Add(telemetry.LayerRuntime, "shard_up", 1)
	return nil
}

// Crash kills shard i: its fabric node loses its memory (cluster.Crash)
// and every in-flight submission on it is canceled and re-routed by its
// watcher to a surviving shard.
func (c *Cluster) Crash(i int) error {
	if err := c.fabric.Crash(c.shards[i].name); err != nil {
		return err
	}
	c.markDown(c.shards[i])
	return nil
}

// Partition cuts shard i off (memory preserved). The router treats it as
// down: in-flight jobs are re-routed — a partitioned shard cannot deliver
// outcomes to the front end.
func (c *Cluster) Partition(i int) error {
	if err := c.fabric.Partition(c.shards[i].name); err != nil {
		return err
	}
	c.markDown(c.shards[i])
	return nil
}

// Heal reconnects a partitioned shard and returns it to the ring.
func (c *Cluster) Heal(i int) error {
	if err := c.fabric.Heal(c.shards[i].name); err != nil {
		return err
	}
	return c.revive(c.shards[i])
}

// Restart brings a crashed shard back (empty) and returns it to the ring.
func (c *Cluster) Restart(i int) error {
	if err := c.fabric.Restart(c.shards[i].name); err != nil {
		return err
	}
	return c.revive(c.shards[i])
}

// submit places a job on this shard under a context that also dies with
// the shard (markDown cancels it). The returned cleanup must be called
// once the ticket settled.
func (sh *Shard) submit(ctx context.Context, job *dataflow.Job, opt core.SubmitOptions) (*core.Ticket, func(), error) {
	mctx, cancel := context.WithCancel(ctx)
	sh.mu.Lock()
	if sh.down {
		sh.mu.Unlock()
		cancel()
		return nil, nil, fmt.Errorf("%w: %s is down", ErrNoShards, sh.name)
	}
	id := sh.nextSub
	sh.nextSub++
	sh.active[id] = cancel
	sh.mu.Unlock()
	cleanup := func() {
		sh.mu.Lock()
		delete(sh.active, id)
		sh.mu.Unlock()
		cancel()
	}
	tk, err := sh.srv.SubmitAsync(mctx, job, opt)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return tk, cleanup, nil
}

// SubmitAsync consistent-hashes the job to its home shard, records the
// admission in the shard's ledger slab (a one-sided fabric Write), and
// submits. The returned ticket is router-owned: if the home shard dies
// before the job completes, the router re-routes it to the ring successor
// — resuming from the dead shard's checkpoints when recovery is on — and
// the ticket observes the final outcome, wherever it ran.
//
// It shares core.Server's unified submission surface: at most one
// core.SubmitOptions, whose admission inputs (arrival, deadline, tiering,
// pre-admission) are judged by the home shard's own SLO gate. Admission
// errors (ErrDeadline, ErrQueueFull, validation) surface exactly as
// core.Server reports them.
func (c *Cluster) SubmitAsync(ctx context.Context, job *dataflow.Job, opts ...core.SubmitOptions) (*core.Ticket, error) {
	var opt core.SubmitOptions
	switch len(opts) {
	case 0:
	case 1:
		opt = opts[0]
	default:
		return nil, errors.New("shard: at most one SubmitOptions per submission")
	}
	return c.submitAsync(ctx, job, opt)
}

// SubmitAsyncOpts is SubmitAsync with exactly one explicit SubmitOptions.
//
// Deprecated: pass the options directly to SubmitAsync, which now accepts
// them variadically. Kept as a thin compatibility wrapper.
func (c *Cluster) SubmitAsyncOpts(ctx context.Context, job *dataflow.Job, opt core.SubmitOptions) (*core.Ticket, error) {
	return c.submitAsync(ctx, job, opt)
}

// submitAsync is the single routed-admission path behind Submit and
// SubmitAsync.
func (c *Cluster) submitAsync(ctx context.Context, job *dataflow.Job, opt core.SubmitOptions) (*core.Ticket, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if job == nil {
		return nil, errors.New("core: nil job")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sig := Signature(job)
	ticketID := c.seq.Add(1)
	if c.ck != nil && opt.ResumeID == "" {
		// One checkpoint namespace per submission, owned by the router:
		// every shard attempt (home and failover) shares it.
		opt.ResumeID = c.ck.NewRunID(job.Name())
	}

	// Route, probing health with the ledger write: an unreachable home
	// shard is marked down and the walk continues on the survivors.
	for hops := 0; hops <= len(c.shards); hops++ {
		idx := c.Route(sig)
		if idx < 0 {
			return nil, ErrNoShards
		}
		sh := c.shards[idx]
		if c.cfg.TrackLoad {
			rt := sh.srv.Runtime()
			if est, _, err := sched.EstimateJob(job, rt.Topology(), rt.Scheduler()); err == nil {
				sh.estWorkNs.Add(est.Makespan.Nanoseconds())
			}
		}
		if !c.ledgerWrite(sh, sig, ticketID, opt) {
			c.markDown(sh)
			continue
		}
		opt.Shard = sh.name
		tk, cleanup, err := sh.submit(ctx, job, opt)
		if err != nil {
			if sh.isDown() {
				continue // died between ledger write and submit
			}
			switch {
			case errors.Is(err, core.ErrDeadline):
				sh.note('S')
			case errors.Is(err, core.ErrQueueFull):
				sh.note('Q')
			default:
				sh.note('E')
			}
			return nil, err
		}
		if tk.BestEffort() {
			sh.note('B')
		} else {
			sh.note('A')
		}
		rtk := core.NewRoutedTicket(ticketID, tk.BestEffort())
		c.wg.Add(1)
		go c.watch(ctx, rtk, sh, tk, cleanup, job, opt, sig)
		return rtk, nil
	}
	return nil, ErrNoShards
}

// Submit is SubmitAsync — same unified options surface — followed by Wait
// on the same context.
func (c *Cluster) Submit(ctx context.Context, job *dataflow.Job, opts ...core.SubmitOptions) (*core.Report, error) {
	tk, err := c.SubmitAsync(ctx, job, opts...)
	if err != nil {
		return nil, err
	}
	return tk.Wait(ctx)
}

// watch drives one routed submission to a terminal outcome, re-routing it
// to ring successors as shards die underneath it.
func (c *Cluster) watch(ctx context.Context, rtk *core.Ticket, sh *Shard, tk *core.Ticket, cleanup func(), job *dataflow.Job, opt core.SubmitOptions, sig uint64) {
	defer c.wg.Done()
	for {
		rep, err := tk.Wait(nil) // the server always delivers exactly once
		cleanup()
		if err == nil {
			sh.noteComplete(rep)
			if c.ck != nil {
				c.ck.Forget(opt.ResumeID) // terminal: the namespace owner GCs it
			}
			rtk.Deliver(rep, nil)
			return
		}
		if ctx.Err() != nil {
			// The submitter gave up; not the shard's fault.
			sh.failed.Add(1)
			if c.ck != nil {
				c.ck.Forget(opt.ResumeID)
			}
			rtk.Deliver(nil, err)
			return
		}
		if !sh.isDown() {
			// Genuine job failure on a healthy shard: terminal.
			sh.failed.Add(1)
			if c.ck != nil {
				c.ck.Forget(opt.ResumeID)
			}
			rtk.Deliver(nil, err)
			return
		}
		// The shard died with the job in flight. Adopt its ledger on the
		// ring successor and re-submit there. With recovery on, the
		// re-submission carries the same ResumeID, so tasks the dead shard
		// checkpointed are restored instead of re-executed.
		next, ferr := c.failover(sh, sig, rtk.ID(), opt)
		if ferr != nil {
			if c.ck != nil {
				c.ck.Forget(opt.ResumeID)
			}
			rtk.Deliver(nil, fmt.Errorf("shard: re-routing %s after %s died: %w", job.Name(), sh.name, ferr))
			return
		}
		ropt := opt
		ropt.Shard = next.name
		ropt.Preadmitted = true // admission was settled at the home shard
		ntk, ncleanup, serr := next.submit(ctx, job, ropt)
		if serr != nil {
			if next.isDown() {
				sh = next // the successor died too; walk on
				continue
			}
			next.errored.Add(1)
			if c.ck != nil {
				c.ck.Forget(opt.ResumeID)
			}
			rtk.Deliver(nil, serr)
			return
		}
		next.rerouted.Add(1)
		c.tel.Add(telemetry.LayerRuntime, "shard_rerouted", 1)
		sh, tk, cleanup = next, ntk, ncleanup
	}
}

// failover picks the ring successor for a dead shard's job, performs the
// one-time ledger adoption (control-plane lease Handoff — it succeeds even
// though the home node is dead), and replays the admission record onto the
// survivor's ledger.
func (c *Cluster) failover(dead *Shard, sig uint64, ticketID uint64, opt core.SubmitOptions) (*Shard, error) {
	idx := c.Route(sig)
	if idx < 0 {
		return nil, ErrNoShards
	}
	next := c.shards[idx]
	dead.mu.Lock()
	adopt := !dead.adopted
	dead.adopted = true
	slab := dead.slab
	dead.mu.Unlock()
	if adopt {
		// Ownership moves in the fabric control plane; the dead node is
		// not consulted. Errors are tolerable (e.g. a second front end
		// already moved it): the lease is advisory metadata for stats.
		c.fabric.Handoff(slab, dead.name, next.name) //nolint:errcheck
		c.tel.Add(telemetry.LayerRuntime, "shard_ledger_adopted", 1)
	}
	c.ledgerWrite(next, sig, ticketID, opt)
	return next, nil
}

// Stats reports every shard's routing/admission/fabric accounting, in
// shard order.
func (c *Cluster) Stats() []ShardStats {
	byNode := c.fabric.StatsByNode()
	out := make([]ShardStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = ShardStats{
			Name:          sh.name,
			Down:          sh.isDown(),
			Submitted:     sh.submitted.Load(),
			Admitted:      sh.admitted.Load(),
			BestEffort:    sh.bestEffort.Load(),
			RejectedSLO:   sh.rejectedSLO.Load(),
			RejectedQueue: sh.rejectedQueue.Load(),
			Errors:        sh.errored.Load(),
			Completed:     sh.completed.Load(),
			Failed:        sh.failed.Load(),
			Rerouted:      sh.rerouted.Load(),
			SLOMissed:     sh.sloMissed.Load(),
			EstWorkNs:     sh.estWorkNs.Load(),
			AdmissionSig:  sh.admissionSig(),
			Fabric:        byNode[sh.name],
		}
		if sh.pool != nil {
			out[i].Migration = sh.pool.Stats()
		}
	}
	return out
}

// Rebalance runs one epoch-priced region-tiering sweep on every alive
// shard's runtime — the maintenance pass a production cluster runs
// concurrently with serving. Each sweep prices its migrations inside a
// private epoch (region.RebalanceIn), so serving batches never observe
// its backlog. With Config.Migrate, the sweep additionally evicts regions
// that went cold past the local tiers into the ring successors' pools and
// recalls exported regions that ran hot. Returns the number of regions
// moved (local migrations + exports + recalls).
func (c *Cluster) Rebalance(now time.Duration) int {
	moved := 0
	for _, sh := range c.shards {
		if sh.isDown() {
			continue
		}
		stats, err := sh.srv.Rebalance(now, c.cfg.Rebalance)
		if err == nil {
			moved += stats.Promoted + stats.Demoted + stats.Exported + stats.Recalled
		}
	}
	return moved
}

// MigrationStats sums every shard's region-pool counters — the cluster-wide
// view of cross-shard region traffic. Zero-valued without Config.Migrate.
func (c *Cluster) MigrationStats() cluster.RegionPoolStats {
	var out cluster.RegionPoolStats
	for _, sh := range c.shards {
		if sh.pool == nil {
			continue
		}
		st := sh.pool.Stats()
		out.Exported += st.Exported
		out.Recalled += st.Recalled
		out.HostLost += st.HostLost
		out.BytesOut += st.BytesOut
		out.BytesBack += st.BytesBack
		out.VerbTime += st.VerbTime
		out.Live += st.Live
	}
	return out
}

// Close stops admission, drains every shard (down ones included — their
// canceled jobs still need their workers to exit), and waits for all
// in-flight watchers. Safe to call more than once; a nil ctx means
// context.Background().
func (c *Cluster) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.closed.Store(true)
	var firstErr error
	for _, sh := range c.shards {
		if err := sh.srv.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if firstErr == nil {
			firstErr = ctx.Err()
		}
	}
	return firstErr
}
