package shard

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/telemetry"
)

// migratePayload derives a deterministic per-job payload (FNV keystream).
func migratePayload(name string, n int) []byte {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := h.Sum64()
	out := make([]byte, n)
	for i := range out {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		out[i] = byte(seed)
	}
	return out
}

const migrateRegionBytes = 64 << 10

// migrateJob is the migration workload: a producer fills a job-wide Global
// Scratch region, a stall stage holds the wall clock open (the window
// maintenance sweeps fire in — while it runs the region goes cold and is
// evicted to a remote shard), and a consumer reads the payload back,
// verifying every byte survived the remote round trip. Virtual time is a
// pure function of the structure, so the served report must be
// byte-identical to a solo run that never migrated.
func migrateJob(name string, stall time.Duration) *dataflow.Job {
	j := dataflow.NewJob(name)
	payload := migratePayload(name, migrateRegionBytes)
	produce := j.Task("produce", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		st, err := ctx.Global("state", props.GlobalScratch, migrateRegionBytes)
		if err != nil {
			return err
		}
		now, err := st.WriteAsync(ctx.Now(), 0, payload).Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	hold := j.Task("hold", dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
		time.Sleep(stall) // real time only; invisible to the virtual clock
		return nil
	})
	consume := j.Task("consume", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		st, err := ctx.Global("state", props.GlobalScratch, migrateRegionBytes)
		if err != nil {
			return err
		}
		buf := make([]byte, migrateRegionBytes)
		now, err := st.ReadAsync(ctx.Now(), 0, buf).Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("payload corrupted across migration")
		}
		return nil
	})
	produce.Then(hold)
	hold.Then(consume)
	return j
}

// sweepUntil runs epoch-priced rebalance sweeps every interval until stop
// is closed — the cluster's maintenance loop, concurrent with serving.
func sweepUntil(c *Cluster, interval time.Duration, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		c.Rebalance(0)
		time.Sleep(interval)
	}
}

// evictingConfig forces migration on every sweep: any utilization exports
// all cold regions, so the remote path is exercised without gigabytes of
// load.
func evictingConfig(shards int) Config {
	return Config{
		Shards:  shards,
		Migrate: true,
		Server:  core.ServerConfig{EpochWorkers: 2, MaxBatch: 4},
		Rebalance: region.RebalancePolicy{
			EvictWatermark: 1e-12,
		},
	}
}

// TestMigrationReportEqualityAcrossShardCounts is the tentpole invariant:
// with cross-shard migration enabled and maintenance sweeps running
// concurrently with serving, every report stays byte-identical to a solo
// Runtime.Run at shard counts 1, 2, and 4. At one shard there is no spill
// target, so the same sweeps must simply do nothing remote.
func TestMigrationReportEqualityAcrossShardCounts(t *testing.T) {
	const stall = 10 * time.Millisecond
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := newTestCluster(t, evictingConfig(shards))
			stop := make(chan struct{})
			go sweepUntil(c, 200*time.Microsecond, stop)
			defer close(stop)

			type pending struct {
				name string
				want string
				tk   *core.Ticket
			}
			var subs []pending
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("mig-%d", i)
				want := soloReport(t, migrateJob(name, 0)).String()
				tk, err := c.SubmitAsync(context.Background(), migrateJob(name, stall))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				subs = append(subs, pending{name, want, tk})
			}
			for _, s := range subs {
				rep, err := s.tk.Wait(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", s.name, err)
				}
				if got := rep.String(); got != s.want {
					t.Fatalf("%s diverges from solo with migration on:\n got: %s\nwant: %s", s.name, got, s.want)
				}
			}

			ms := c.MigrationStats()
			if shards == 1 {
				if ms.Exported != 0 {
					t.Fatalf("one shard has no spill target, yet exported %d regions", ms.Exported)
				}
				return
			}
			// The stall window gives the sweep loop dozens of chances to
			// export each job's cold region; the consumer then recalls it.
			if ms.Exported == 0 || ms.Recalled == 0 {
				t.Fatalf("migration path not exercised: %+v", ms)
			}
			if ms.BytesOut < migrateRegionBytes || ms.BytesBack < migrateRegionBytes {
				t.Errorf("payload accounting: %+v", ms)
			}
			if ms.VerbTime <= 0 {
				t.Error("fabric verbs must cost virtual time")
			}
			// The moved bytes are attributed to the hosting nodes' NIC-side
			// counters.
			var fabricBytes uint64
			for _, st := range c.Stats() {
				fabricBytes += st.Fabric.Bytes
			}
			if fabricBytes < uint64(ms.BytesOut) {
				t.Errorf("fabric counted %d bytes, migration alone moved %d", fabricBytes, ms.BytesOut)
			}
		})
	}
}

// migrateGateJob passes the payload through a task *output* (checkpointed
// under recovery) and parks on a gate between producer and consumer — the
// deterministic crash window for the owner-dies-mid-migration test.
func migrateGateJob(name string, started chan<- struct{}, release <-chan struct{}) *dataflow.Job {
	j := dataflow.NewJob(name)
	payload := migratePayload(name, 4<<10)
	produce := j.Task("produce", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(4 << 10)
		if err != nil {
			return err
		}
		now, err := out.WriteAsync(ctx.Now(), 0, payload).Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	gate := j.Task("gate", dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
		if started != nil {
			select {
			case started <- struct{}{}:
			default: // failover re-run: the test already saw the first entry
			}
		}
		if release != nil {
			<-release
		}
		return nil
	})
	consume := j.Task("consume", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		buf := make([]byte, 4<<10)
		now, err := in.ReadAsync(ctx.Now(), 0, buf).Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("payload corrupted across crash recovery")
		}
		return nil
	})
	produce.Then(gate)
	produce.Then(consume)
	gate.Then(consume)
	return j
}

// crashMidMigration drives the shared choreography of the owner-crash
// tests: park a migrateGateJob on the victim shard, sweep until the
// victim's regions are exported (the job is now mid-migration), crash the
// victim, and release the gate. Returns the delivered report.
func crashMidMigration(t *testing.T, c *Cluster, victim int, prefix string) (*core.Report, string) {
	t.Helper()
	var name string
	for i := 0; i < 4096; i++ {
		cand := fmt.Sprintf("%s-%d", prefix, i)
		if c.Route(Signature(migrateGateJob(cand, nil, nil))) == victim {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no key routes to the victim shard")
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	tk, err := c.SubmitAsync(context.Background(), migrateGateJob(name, started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // produce completed; consume not dispatched

	// Sweep until the victim's cold regions (produce's output shares) are
	// exported into the cluster pool.
	deadline := time.Now().Add(5 * time.Second)
	for c.shards[victim].pool.Stats().Live == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never exported a region")
		}
		c.Rebalance(0)
		time.Sleep(100 * time.Microsecond)
	}

	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	close(release)

	// Adoption: the dead owner holds no leases; the survivors reclaimed
	// the slab capacity.
	if leases := c.Fabric().LeasesOf(c.shards[victim].name); len(leases) != 0 {
		t.Fatalf("dead owner still holds %d leases after adoption", len(leases))
	}
	if got := c.Runtime().Telemetry().Counter(telemetry.LayerCluster, "region_exports_adopted"); got < 1 {
		t.Errorf("region_exports_adopted = %d, want ≥1", got)
	}

	rep, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard == c.shards[victim].name {
		t.Fatalf("served by the dead shard %s", rep.Shard)
	}
	return rep, name
}

// TestMigrationOwnerCrashByteIdentical crashes a shard while its regions
// sit exported in the cluster pool and a job is parked mid-flight, with
// recovery off: the ring successor adopts the dead owner's slab leases and
// the job re-runs from scratch on a survivor — report byte-identical to a
// solo run, exactly as if the migration had never happened.
func TestMigrationOwnerCrashByteIdentical(t *testing.T) {
	cfg := evictingConfig(3)
	cfg.Server.MaxBatch = 1
	cfg.Server.EpochWorkers = 1
	c := newTestCluster(t, cfg)

	rep, name := crashMidMigration(t, c, 0, "crash-mig")
	want := soloReport(t, migrateGateJob(name, nil, nil)).String()
	if got := rep.String(); got != want {
		t.Fatalf("report after owner crash diverges from solo:\n got: %s\nwant: %s", got, want)
	}
}

// TestMigrationOwnerCrashPartialReplay is the same crash with recovery on:
// the survivor restores the producer from the cluster-shared checkpoint
// store instead of re-running it, and the consumer — re-executed — reads
// the restored payload (its body verifies every byte).
func TestMigrationOwnerCrashPartialReplay(t *testing.T) {
	cfg := evictingConfig(3)
	cfg.Server.MaxBatch = 1
	cfg.Server.EpochWorkers = 1
	cfg.Server.Recovery = &core.RecoveryPolicy{MaxAttempts: 2, PartialReplay: true}
	c := newTestCluster(t, cfg)

	rep, _ := crashMidMigration(t, c, 0, "replay-mig")
	if rep.SkippedTasks < 1 {
		t.Errorf("survivor must restore the dead shard's checkpoints, skipped %d", rep.SkippedTasks)
	}
	if len(rep.Tasks) != 3 {
		t.Errorf("recovered report must cover all 3 tasks, got %d", len(rep.Tasks))
	}
}

// TestMigrationSlabHostCrashRecallsFromBackup kills the memory node hosting
// a migrated region: the fabric read fails, and the recall must transparently
// fall back to the replicated checkpoint store — byte-identical report
// included, because the fallback costs wall-clock only.
func TestMigrationSlabHostCrashRecallsFromBackup(t *testing.T) {
	cfg := evictingConfig(2)
	cfg.Server.MaxBatch = 1
	cfg.Server.EpochWorkers = 1
	c := newTestCluster(t, cfg)

	// The job runs on `home`; its regions spill to the only other shard.
	home := 0
	var name string
	for i := 0; i < 4096; i++ {
		cand := fmt.Sprintf("hostloss-%d", i)
		if c.Route(Signature(migrateGateJob(cand, nil, nil))) == home {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no key routes to the home shard")
	}
	want := soloReport(t, migrateGateJob(name, nil, nil)).String()

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	tk, err := c.SubmitAsync(context.Background(), migrateGateJob(name, started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	deadline := time.Now().Add(5 * time.Second)
	for c.shards[home].pool.Stats().Live == 0 {
		if time.Now().After(deadline) {
			t.Fatal("home shard never exported a region")
		}
		c.Rebalance(0)
		time.Sleep(100 * time.Microsecond)
	}

	// Kill the slab host (the other shard). home's exported payloads are
	// gone from the fabric; only the pmem backup still has them.
	if err := c.Crash(1 - home); err != nil {
		t.Fatal(err)
	}
	close(release)

	rep, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.String(); got != want {
		t.Fatalf("report after slab-host crash diverges from solo:\n got: %s\nwant: %s", got, want)
	}
	if st := c.shards[home].pool.Stats(); st.HostLost < 1 {
		t.Errorf("HostLost = %d, want ≥1 (recall must have come from backup)", st.HostLost)
	}
	if got := c.Runtime().Telemetry().Counter(telemetry.LayerCluster, "region_host_lost"); got < 1 {
		t.Errorf("region_host_lost counter = %d, want ≥1", got)
	}
}

// TestWalkFromOrdersSpillTargets pins the spill-target walk: deterministic,
// excludes the origin, skips dead shards, and is consistent with the ring.
func TestWalkFromOrdersSpillTargets(t *testing.T) {
	r := buildRing([]string{"shard0", "shard1", "shard2", "shard3"}, nil, 64)
	all := func(int) bool { return true }
	got := r.walkFrom(0, all)
	if len(got) != 3 {
		t.Fatalf("walkFrom(0) = %v, want 3 distinct others", got)
	}
	for _, s := range got {
		if s == 0 {
			t.Fatalf("walkFrom must exclude the origin: %v", got)
		}
	}
	// Deterministic across calls.
	for i := 0; i < 3; i++ {
		again := r.walkFrom(0, all)
		for j := range got {
			if again[j] != got[j] {
				t.Fatalf("walkFrom not deterministic: %v vs %v", got, again)
			}
		}
	}
	// Dead shards are skipped, order of the rest preserved.
	dead := got[0]
	alive := func(i int) bool { return i != dead }
	pruned := r.walkFrom(0, alive)
	if len(pruned) != 2 {
		t.Fatalf("walkFrom with one dead = %v, want 2", pruned)
	}
	if pruned[0] != got[1] || pruned[1] != got[2] {
		t.Fatalf("pruned walk %v must preserve ring order of %v", pruned, got)
	}
}
