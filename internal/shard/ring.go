// Package shard scales the serving engine horizontally: a front-end Cluster
// consistent-hashes submissions across N core.Server shards, each backed by
// its own runtime and epoch pool, over the disaggregated memory fabric
// (internal/cluster). The paper's deployment story — and MIND's argument
// that routing and memory-management logic belongs in the network layer
// between compute and memory nodes — shows up in three places:
//
//   - routing state (the hash ring) is derived only from membership, so any
//     front end computes the same assignment (Signature → shard) without
//     coordination;
//   - every admission is recorded in the home shard's ledger slab through a
//     one-sided fabric Write, so cross-shard traffic is priced (and
//     attributable per node via cluster.NodeStats);
//   - slab ownership lives in the fabric control plane (cluster.Lease /
//     Handoff), so when a shard dies a survivor adopts its ledger with a
//     single control-plane CAS — no agreement with the dead node needed —
//     and in-flight jobs are re-routed, resuming from whatever the dead
//     shard checkpointed (partial replay across shards).
//
// Each shard keeps the engine's core invariant: virtual-time reports are
// byte-identical to solo Runtime.Run at any shard count, worker count, or
// failover history (a re-routed job re-plans against the survivor's idle
// epoch exactly as it would have at home).
package shard

import (
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/dataflow"
)

// Signature is the routing key of a job: an FNV-64a hash over the job name
// and its task IDs in declaration order. Two structurally identical
// submissions route to the same shard; the signature is independent of
// membership, so the ring — not the key — absorbs shard failures.
func Signature(job *dataflow.Job) uint64 {
	h := fnv.New64a()
	io.WriteString(h, job.Name())
	for _, t := range job.Tasks() {
		h.Write([]byte{0})
		io.WriteString(h, t.ID())
	}
	return h.Sum64()
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is a weighted consistent-hash circle: shard i contributes
// weight[i]×vnodes points, so capacity-weighted shards absorb
// proportionally more of the key space, and the loss of one shard spreads
// its keys across all survivors instead of dumping them on one neighbor.
type ring struct {
	points []ringPoint
}

// buildRing hashes every shard's virtual nodes onto the circle. The point
// set depends only on (names, weights, vnodes), never on liveness: routing
// under failure walks the same circle and skips dead shards, which is what
// makes assignments reproducible for a given membership.
func buildRing(names []string, weights []int, vnodes int) *ring {
	r := &ring{}
	for i, name := range names {
		w := 1
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		for v := 0; v < w*vnodes; v++ {
			h := fnv.New64a()
			io.WriteString(h, name)
			h.Write([]byte{'#', byte(v), byte(v >> 8), byte(v >> 16)})
			r.points = append(r.points, ringPoint{hash: h.Sum64(), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// walkFrom lists the distinct alive shards in ring order starting just
// after shard's first point, excluding shard itself — the spill-target
// preference order for cross-shard region migration. Pure function of
// (ring, membership), like successor: every shard computes the same walk.
func (r *ring) walkFrom(shard int, alive func(int) bool) []int {
	n := len(r.points)
	if n == 0 {
		return nil
	}
	start := 0
	for i, p := range r.points {
		if p.shard == shard {
			start = i + 1
			break
		}
	}
	var out []int
	seen := map[int]bool{shard: true}
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if !seen[p.shard] && alive(p.shard) {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// successor returns the first alive shard at or after key on the circle,
// or -1 when no alive shard exists. alive(i) reports shard i's health.
func (r *ring) successor(key uint64, alive func(int) bool) int {
	n := len(r.points)
	if n == 0 {
		return -1
	}
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		if alive(p.shard) {
			return p.shard
		}
	}
	return -1
}
