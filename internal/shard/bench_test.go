package shard

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/props"
)

// benchStallJob is the serving workload: a three-stage chain whose stages
// stall the wall clock (the far-memory round trips a real deployment
// waits on) and write a small scratch payload. Virtual time is a pure
// function of the structure, so every name has the same solo makespan.
func benchStallJob(name string, stall time.Duration) *dataflow.Job {
	j := dataflow.NewJob(name)
	var prev *dataflow.Task
	for i := 0; i < 3; i++ {
		t := j.Task(fmt.Sprintf("stage%d", i), dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
			scratch, err := ctx.Scratch("buf", 4<<10)
			if err != nil {
				return err
			}
			now, err := scratch.WriteAt(ctx.Now(), 0, make([]byte, 4<<10))
			if err != nil {
				return err
			}
			ctx.Wait(now)
			time.Sleep(stall)
			ctx.Charge(1e5)
			return nil
		})
		if prev != nil {
			prev.Then(t)
		}
		prev = t
	}
	return j
}

// benchJobNames picks jobCount names whose consistent-hash assignment is
// even on both the 2-shard and the 4-shard ring, so the scaling curve
// measures the architecture, not one unlucky key draw. Deterministic: the
// ring point set is fixed, so the scan always selects the same names.
func benchJobNames(jobCount, vnodes int) []string {
	ring2 := buildRing([]string{"shard0", "shard1"}, nil, vnodes)
	ring4 := buildRing([]string{"shard0", "shard1", "shard2", "shard3"}, nil, vnodes)
	alive := func(int) bool { return true }
	var names []string
	count2 := make([]int, 2)
	count4 := make([]int, 4)
	for i := 0; len(names) < jobCount && i < 65536; i++ {
		name := fmt.Sprintf("sj-%d", i)
		sig := Signature(benchStallJob(name, 0))
		b2, b4 := ring2.successor(sig, alive), ring4.successor(sig, alive)
		if count2[b2] >= jobCount/2 || count4[b4] >= jobCount/4 {
			continue
		}
		count2[b2]++
		count4[b4]++
		names = append(names, name)
	}
	return names
}

// BenchmarkServeSharded is the scaling acceptance benchmark: a fixed
// 16-job wave served by 1, 2, and 4 shards, each shard a single-worker
// core.Server over its own runtime and epoch pool. One shard drains the
// wave serially; N shards overlap the stages' wall-clock stalls N ways, so
// admitted jobs/s scales with the shard count (gated ≥1.7× at 2 shards,
// ≥3× at 4 by bench-smoke). On the first iteration of every shard count,
// each report is asserted byte-identical to the job's solo Workers=1 run —
// horizontal scale never buys back determinism.
func BenchmarkServeSharded(b *testing.B) {
	const (
		jobCount = 16
		stall    = 2 * time.Millisecond
		vnodes   = 64
	)
	names := benchJobNames(jobCount, vnodes)
	if len(names) != jobCount {
		b.Fatalf("selected %d balanced job names, want %d", len(names), jobCount)
	}
	solo := make(map[string]string, jobCount)
	for _, n := range names {
		solo[n] = soloReport(b, benchStallJob(n, stall)).String()
	}

	var baseJobsPerSec float64
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := NewCluster(Config{
				Shards: shards,
				VNodes: vnodes,
				Server: core.ServerConfig{
					EpochWorkers: 1, MaxBatch: 1, QueueDepth: 2 * jobCount, Block: true,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close(context.Background()) //nolint:errcheck
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tks := make([]*core.Ticket, jobCount)
				for k, n := range names {
					tk, err := c.SubmitAsync(context.Background(), benchStallJob(n, stall))
					if err != nil {
						b.Fatal(err)
					}
					tks[k] = tk
				}
				for k, tk := range tks {
					rep, err := tk.Wait(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						if got := rep.String(); got != solo[names[k]] {
							b.Fatalf("%s: sharded report diverges from solo:\n got: %s\nwant: %s", names[k], got, solo[names[k]])
						}
					}
				}
			}
			jobsPerSec := float64(b.N*jobCount) / b.Elapsed().Seconds()
			b.ReportMetric(jobsPerSec, "jobs/s")
			if shards == 1 {
				baseJobsPerSec = jobsPerSec
			} else if baseJobsPerSec > 0 {
				b.ReportMetric(jobsPerSec/baseJobsPerSec, "speedup")
			}
		})
	}
}

// benchMigrateJob is the rebalance workload: produce fills a job-wide
// 64 KiB global, hold parks the job (signalling started, waiting on
// release) so the sweep window is open, and consume reads every byte back.
// Exactly one evictable region per job, so the export/recall counts per
// iteration are an exact function of the job count.
func benchMigrateJob(name string, started chan<- struct{}, release <-chan struct{}) *dataflow.Job {
	j := dataflow.NewJob(name)
	payload := migratePayload(name, migrateRegionBytes)
	produce := j.Task("produce", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		st, err := ctx.Global("state", props.GlobalScratch, migrateRegionBytes)
		if err != nil {
			return err
		}
		now, err := st.WriteAsync(ctx.Now(), 0, payload).Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		return nil
	})
	hold := j.Task("hold", dataflow.Props{Ops: 1e5}, func(ctx dataflow.Ctx) error {
		if started != nil {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		if release != nil {
			<-release
		}
		return nil
	})
	consume := j.Task("consume", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
		st, err := ctx.Global("state", props.GlobalScratch, migrateRegionBytes)
		if err != nil {
			return err
		}
		buf := make([]byte, migrateRegionBytes)
		now, err := st.ReadAsync(ctx.Now(), 0, buf).Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("payload corrupted across migration")
		}
		return nil
	})
	produce.Then(hold)
	hold.Then(consume)
	return j
}

// BenchmarkClusterRebalance is the migration acceptance benchmark: 8 jobs
// park with one cold 64 KiB region each on a 2-shard cluster, maintenance
// sweeps export every region to the remote shard's pool, and the released
// consumers recall them on read. The exported/op and recalled/op metrics
// are exact (8 regions, each exported once and recalled once), so
// bench-smoke gates them at zero tolerance; the first iteration also
// asserts each report byte-identical to a solo run that never migrated.
func BenchmarkClusterRebalance(b *testing.B) {
	const jobCount = 8
	cfg := evictingConfig(2)
	// All jobs must park at hold concurrently, so every shard needs enough
	// epoch workers and batch slots to run the full wave at once.
	cfg.Server.EpochWorkers = jobCount
	cfg.Server.MaxBatch = jobCount
	cfg.Server.QueueDepth = 2 * jobCount
	cfg.Server.Block = true
	c, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close(context.Background()) //nolint:errcheck

	names := make([]string, jobCount)
	solo := make([]string, jobCount)
	for k := range names {
		names[k] = fmt.Sprintf("reb-%d", k)
		solo[k] = soloReport(b, benchMigrateJob(names[k], nil, nil)).String()
	}

	var exported, recalled, bytesOut int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := c.MigrationStats()
		started := make(chan struct{}, jobCount)
		release := make(chan struct{})
		tks := make([]*core.Ticket, jobCount)
		for k, n := range names {
			tk, err := c.SubmitAsync(context.Background(), benchMigrateJob(n, started, release))
			if err != nil {
				b.Fatal(err)
			}
			tks[k] = tk
		}
		for k := 0; k < jobCount; k++ {
			<-started
		}
		// Sweep until every parked region has been exported to the remote
		// pool (heat decays one step per sweep, so a few passes suffice).
		for c.MigrationStats().Exported-before.Exported < jobCount {
			c.Rebalance(0)
		}
		close(release)
		for k, tk := range tks {
			rep, err := tk.Wait(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				if got := rep.String(); got != solo[k] {
					b.Fatalf("%s: migrated report diverges from solo:\n got: %s\nwant: %s", names[k], got, solo[k])
				}
			}
		}
		after := c.MigrationStats()
		exported += after.Exported - before.Exported
		recalled += after.Recalled - before.Recalled
		bytesOut += int(after.BytesOut - before.BytesOut)
	}
	b.ReportMetric(float64(exported)/float64(b.N), "exported/op")
	b.ReportMetric(float64(recalled)/float64(b.N), "recalled/op")
	b.ReportMetric(float64(bytesOut)/float64(b.N), "migrated-B/op")
}
