package topology

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/memsim"
	"repro/internal/props"
)

func testbed(t *testing.T) *Topology {
	t.Helper()
	topo, err := BuildSingleNode(DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuildSingleNodeInventory(t *testing.T) {
	topo := testbed(t)
	if got := len(topo.Computes()); got != 5 { // 2 CPUs, GPU, TPU, FPGA
		t.Errorf("compute count = %d, want 5", got)
	}
	for _, id := range []string{"node0/cpu0", "node0/cpu1", "node0/gpu0", "node0/tpu0", "node0/fpga0"} {
		if _, ok := topo.Compute(id); !ok {
			t.Errorf("missing compute %s", id)
		}
	}
	for _, id := range []string{"node0/dram0", "node0/dram1", "node0/hbm0", "node0/pmem0",
		"node0/cxl0", "node0/ssd0", "node0/hdd0", "node0/gddr0", "memnode0/far0", "memnode1/far0"} {
		if _, ok := topo.Memory(id); !ok {
			t.Errorf("missing memory %s", id)
		}
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	topo := New()
	c := &ComputeDevice{ID: "x", Kind: CPU, Gops: 1}
	if err := topo.AddCompute(c); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddCompute(&ComputeDevice{ID: "x", Kind: GPU, Gops: 1}); err == nil {
		t.Error("duplicate compute id must be rejected")
	}
	d, _ := memsim.NewDevice("x", memsim.DRAMSpec())
	if err := topo.AddMemory(d); err == nil {
		t.Error("memory id colliding with compute id must be rejected")
	}
}

func TestConnectValidation(t *testing.T) {
	topo := New()
	if err := topo.Connect(Link{A: "a", B: "a", Latency: 1, Bandwidth: 1}); err == nil {
		t.Error("self-link must be rejected")
	}
	if err := topo.Connect(Link{A: "a", B: "b", Latency: 1, Bandwidth: 0}); err == nil {
		t.Error("zero-bandwidth link must be rejected")
	}
	if err := topo.Connect(Link{A: "", B: "b", Latency: 1, Bandwidth: 1}); err == nil {
		t.Error("empty endpoint must be rejected")
	}
}

func TestPathLocalDRAM(t *testing.T) {
	topo := testbed(t)
	p, ok := topo.Path("node0/cpu0", "node0/dram0")
	if !ok {
		t.Fatal("no path cpu0→dram0")
	}
	if len(p.Hops) != 1 || p.Latency != memBusLat {
		t.Errorf("cpu0→dram0 should be one membus hop, got %d hops lat %v", len(p.Hops), p.Latency)
	}
	if !p.Coherent {
		t.Error("memory bus path must be coherent")
	}
}

func TestPathCrossSocketNUMA(t *testing.T) {
	topo := testbed(t)
	local, _ := topo.Path("node0/cpu0", "node0/dram0")
	remote, ok := topo.Path("node0/cpu0", "node0/dram1")
	if !ok {
		t.Fatal("no path to remote socket DRAM")
	}
	if remote.Latency <= local.Latency {
		t.Errorf("remote socket (%v) must cost more than local (%v)", remote.Latency, local.Latency)
	}
	if len(remote.Hops) != 2 { // UPI + membus
		t.Errorf("remote DRAM path should be 2 hops, got %d", len(remote.Hops))
	}
	if !remote.Coherent {
		t.Error("UPI path stays coherent")
	}
}

func TestPathToFarMemoryNotCoherent(t *testing.T) {
	topo := testbed(t)
	p, ok := topo.Path("node0/cpu0", "memnode0/far0")
	if !ok {
		t.Fatal("no path to far memory")
	}
	if p.Coherent {
		t.Error("NIC path must not be coherent")
	}
	if p.Bandwidth > nicBW {
		t.Errorf("fabric path bandwidth %v must be capped by NIC (%v)", p.Bandwidth, nicBW)
	}
}

func TestPathIdentity(t *testing.T) {
	topo := testbed(t)
	p, ok := topo.Path("node0/cpu0", "node0/cpu0")
	if !ok || p.Latency != 0 || len(p.Hops) != 0 || !math.IsInf(p.Bandwidth, 1) {
		t.Errorf("identity path must be free, got %+v ok=%t", p, ok)
	}
}

func TestPathMissing(t *testing.T) {
	topo := New()
	if _, ok := topo.Path("nowhere", "elsewhere"); ok {
		t.Error("path between unknown endpoints must not exist")
	}
}

func TestEffectiveCapsFigure3(t *testing.T) {
	// Figure 3: the same "fast local scratch" view differs per compute
	// device — DRAM is the CPU's fast tier, GDDR the GPU's.
	topo := testbed(t)
	cpuDRAM, ok := topo.EffectiveCaps("node0/cpu0", "node0/dram0")
	if !ok {
		t.Fatal("no caps cpu→dram")
	}
	cpuGDDR, ok := topo.EffectiveCaps("node0/cpu0", "node0/gddr0")
	if !ok {
		t.Fatal("no caps cpu→gddr")
	}
	gpuDRAM, ok := topo.EffectiveCaps("node0/gpu0", "node0/dram0")
	if !ok {
		t.Fatal("no caps gpu→dram")
	}
	gpuGDDR, ok := topo.EffectiveCaps("node0/gpu0", "node0/gddr0")
	if !ok {
		t.Fatal("no caps gpu→gddr")
	}
	if cpuDRAM.Latency >= cpuGDDR.Latency {
		t.Errorf("from CPU, DRAM (%v) must beat GDDR (%v)", cpuDRAM.Latency, cpuGDDR.Latency)
	}
	if gpuGDDR.Latency >= gpuDRAM.Latency {
		t.Errorf("from GPU, GDDR (%v) must beat DRAM (%v)", gpuGDDR.Latency, gpuDRAM.Latency)
	}
	if gpuGDDR.Bandwidth <= gpuDRAM.Bandwidth {
		t.Error("GPU sees more bandwidth from GDDR than from host DRAM")
	}
}

func TestEffectiveCapsRemoteAndSync(t *testing.T) {
	topo := testbed(t)
	far, ok := topo.EffectiveCaps("node0/cpu0", "memnode0/far0")
	if !ok {
		t.Fatal("no caps to far memory")
	}
	if !far.Remote {
		t.Error("far memory must be flagged remote")
	}
	if far.Sync {
		t.Error("NIC-attached memory must not offer a sync interface")
	}
	if far.Coherent {
		t.Error("far memory is not coherent")
	}
	dram, _ := topo.EffectiveCaps("node0/cpu0", "node0/dram0")
	if dram.Remote || !dram.Sync || !dram.Coherent {
		t.Error("local DRAM must be sync, coherent, non-remote")
	}
}

func TestEffectiveCapsUnknownIDs(t *testing.T) {
	topo := testbed(t)
	if _, ok := topo.EffectiveCaps("node0/cpu0", "nope"); ok {
		t.Error("unknown memory must fail")
	}
	if _, ok := topo.EffectiveCaps("nope", "node0/dram0"); ok {
		t.Error("unknown compute must fail")
	}
}

func TestEffectiveCapsMatchTable2Regions(t *testing.T) {
	// The testbed must be able to serve all three predefined region classes
	// from a CPU.
	topo := testbed(t)
	for _, class := range []props.RegionClass{props.PrivateScratch, props.GlobalState, props.GlobalScratch} {
		req := class.Defaults()
		found := false
		for _, m := range topo.Memories() {
			caps, ok := topo.EffectiveCaps("node0/cpu0", m.ID)
			if !ok {
				continue
			}
			if ok, _ := req.Match(caps); ok {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no device on the testbed serves %s %s", class, req)
		}
	}
}

func TestAccessTimeIncludesPath(t *testing.T) {
	topo := testbed(t)
	dram, _ := topo.Memory("node0/dram0")
	svc := dram.ServiceTime(64, memsim.Read, memsim.Sequential)
	done, err := topo.AccessTime("node0/cpu0", "node0/dram0", 0, 64, memsim.Read, memsim.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if want := svc + 2*memBusLat; done != want {
		t.Errorf("AccessTime = %v, want svc+2×path = %v", done, want)
	}
}

func TestAccessTimeNarrowPathStretchesTransfer(t *testing.T) {
	topo := testbed(t)
	// Far memory: device claims 12 GB/s but NIC path is narrower in latency
	// terms; a large transfer must be slower than the device-only service.
	far, _ := topo.Memory("memnode0/far0")
	const size = 64 << 20
	svc := far.ServiceTime(size, memsim.Read, memsim.Sequential)
	far.ResetQueue()
	done, err := topo.AccessTime("node0/cpu0", "memnode0/far0", 0, size, memsim.Read, memsim.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if done <= svc {
		t.Errorf("fabric transfer (%v) must exceed device service (%v)", done, svc)
	}
}

func TestAccessTimeErrors(t *testing.T) {
	topo := testbed(t)
	if _, err := topo.AccessTime("node0/cpu0", "nope", 0, 64, memsim.Read, memsim.Sequential); err == nil {
		t.Error("unknown device must error")
	}
	iso := New()
	d, _ := memsim.NewDevice("island", memsim.DRAMSpec())
	if err := iso.AddMemory(d); err != nil {
		t.Fatal(err)
	}
	if err := iso.AddCompute(&ComputeDevice{ID: "c", Kind: CPU, Gops: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := iso.AccessTime("c", "island", 0, 64, memsim.Read, memsim.Sequential); err == nil {
		t.Error("unreachable device must error")
	}
}

func TestAddressable(t *testing.T) {
	topo := testbed(t)
	if !topo.Addressable("node0/gpu0", "node0/dram0") {
		t.Error("GPU must address host DRAM over PCIe")
	}
	if !topo.Addressable("node0/cpu1", "node0/gddr0") {
		t.Error("remote-socket CPU must address GDDR via UPI+PCIe")
	}
}

func TestComputesByKind(t *testing.T) {
	topo := testbed(t)
	if got := len(topo.ComputesByKind(CPU)); got != 2 {
		t.Errorf("CPU count = %d, want 2", got)
	}
	if got := len(topo.ComputesByKind(GPU)); got != 1 {
		t.Errorf("GPU count = %d, want 1", got)
	}
}

func TestBuildRack(t *testing.T) {
	topo, err := BuildRack(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Computes()) != 4 {
		t.Errorf("rack computes = %d, want 4", len(topo.Computes()))
	}
	if len(topo.Memories()) != 6 { // 4 local DRAM + 2 far
		t.Errorf("rack memories = %d, want 6", len(topo.Memories()))
	}
	// Any CPU can reach any far node and any other node's DRAM via fabric.
	if !topo.Addressable("rack/node0/cpu0", "rack/memnode1/far0") {
		t.Error("node0 must reach memnode1")
	}
	if !topo.Addressable("rack/node3/cpu0", "rack/node0/dram0") {
		t.Error("node3 must reach node0 DRAM over fabric")
	}
	if _, err := BuildRack(0, 1); err == nil {
		t.Error("empty rack must be rejected")
	}
}

// Property: path latency satisfies the triangle inequality through any
// intermediate endpoint the router might choose (routing is optimal).
func TestPathOptimalityProperty(t *testing.T) {
	topo := testbed(t)
	var ids []string
	for _, c := range topo.Computes() {
		ids = append(ids, c.ID)
	}
	for _, m := range topo.Memories() {
		ids = append(ids, m.ID)
	}
	f := func(a, b, c uint8) bool {
		x, y, z := ids[int(a)%len(ids)], ids[int(b)%len(ids)], ids[int(c)%len(ids)]
		pxy, ok1 := topo.Path(x, y)
		pxz, ok2 := topo.Path(x, z)
		pzy, ok3 := topo.Path(z, y)
		if !ok1 || !ok2 || !ok3 {
			return true
		}
		return pxy.Latency <= pxz.Latency+pzy.Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: paths are symmetric in latency (all links are bidirectional).
func TestPathSymmetryProperty(t *testing.T) {
	topo := testbed(t)
	var ids []string
	for _, m := range topo.Memories() {
		ids = append(ids, m.ID)
	}
	f := func(a, b uint8) bool {
		x, y := ids[int(a)%len(ids)], ids[int(b)%len(ids)]
		pxy, ok1 := topo.Path(x, y)
		pyx, ok2 := topo.Path(y, x)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return pxy.Latency == pyx.Latency && pxy.Bandwidth == pyx.Bandwidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScaleCapHook(t *testing.T) {
	cfg := DefaultSingleNode()
	cfg.ScaleCap = func(s memsim.Spec) memsim.Spec {
		s.Capacity = 1 << 20
		return s
	}
	topo, err := BuildSingleNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range topo.Memories() {
		if m.Capacity != 1<<20 {
			t.Fatalf("%s capacity = %d, want scaled 1 MiB", m.ID, m.Capacity)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || TPU.String() != "TPU" || FPGA.String() != "FPGA" {
		t.Error("compute kind names wrong")
	}
	if LinkUPI.String() != "UPI" || LinkNIC.String() != "NIC" || LinkPCIe.String() != "PCIe/CXL" {
		t.Error("link kind names wrong")
	}
}

var sinkPath PathInfo

func BenchmarkPathRouting(b *testing.B) {
	topo, err := BuildSingleNode(DefaultSingleNode())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := topo.Path("node0/gpu0", "memnode1/far0")
		sinkPath = p
	}
}

var sinkDur time.Duration

func BenchmarkAccessTime(b *testing.B) {
	topo, err := BuildSingleNode(DefaultSingleNode())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := topo.AccessTime("node0/cpu0", "node0/dram0", 0, 4096, memsim.Read, memsim.Sequential)
		sinkDur = d
	}
}

func TestMustSingleNodeAndResetQueues(t *testing.T) {
	topo := MustSingleNode()
	dram, _ := topo.Memory("node0/dram0")
	dram.Access(0, 1<<20, memsim.Read, memsim.Sequential)
	if dram.Stats().BusyUntil == 0 {
		t.Fatal("access must advance the queue")
	}
	topo.ResetQueues()
	if dram.Stats().BusyUntil != 0 {
		t.Error("ResetQueues must drain every device")
	}
}

func TestComputeKindUnknownString(t *testing.T) {
	if ComputeKind(9).String() == "" || LinkKind(9).String() == "" {
		t.Error("unknown enum values must render")
	}
	if LinkOnChip.String() != "on-chip" || LinkMemBus.String() != "membus" || LinkSATA.String() != "SATA" {
		t.Error("link names wrong")
	}
}

func TestBuildSingleNodeVariants(t *testing.T) {
	// Minimal config: no accelerators, no far memory, no caches.
	topo, err := BuildSingleNode(SingleNodeConfig{Sockets: 1, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Computes()) != 1 {
		t.Errorf("computes = %d, want 1 CPU", len(topo.Computes()))
	}
	if _, ok := topo.Memory("node0/cache0"); ok {
		t.Error("DisableCache must omit cache devices")
	}
	if _, ok := topo.Memory("node0/gddr0"); ok {
		t.Error("no GPU means no GDDR")
	}
	if _, ok := topo.Memory("memnode0/far0"); ok {
		t.Error("no far memory requested")
	}
	// Four sockets wire a UPI chain.
	topo4, err := BuildSingleNode(SingleNodeConfig{Sockets: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := topo4.Path("node0/cpu0", "node0/dram3")
	if !ok {
		t.Fatal("no path across the UPI chain")
	}
	if len(p.Hops) != 4 { // 3×UPI + membus
		t.Errorf("cpu0→dram3 hops = %d, want 4", len(p.Hops))
	}
}
