package topology

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/memsim"
)

// Epoch is one virtual-time epoch: a private view of every memory device's
// service queue. The hardware graph itself (devices, links, routes, capacity
// accounting) stays shared; only *queue time* — the state that defines a
// virtual clock — lives here. Concurrent epochs therefore never interleave
// their backlogs: two jobs running in different epochs each see the device
// idle at their own t=0, exactly as if they ran on freshly drained hardware,
// while jobs sharing one epoch contend on the same FIFO queues (the
// multi-job serving case where contention is the point).
//
// Epoch replaces the old pattern of mutating the device-global queue and
// calling Topology.ResetQueues between runs, which was only safe for
// sequential submission. ResetQueues remains for the measurement-phase
// callers that still use the global queue.
//
// An Epoch is safe for concurrent use by multiple goroutines.
type Epoch struct {
	topo *Topology

	mu   sync.Mutex
	busy map[string]time.Duration // memory device ID → queue drain time
}

// VClock is a virtual-time view of the memory device queues: the contract
// shared by Epoch (locked, FIFO across all callers) and TaskView (unlocked,
// private to one task in a wavefront). Placers and the region manager price
// accesses against whichever view the caller hands them.
type VClock interface {
	// Topology returns the shared hardware graph this clock runs on.
	Topology() *Topology
	// BusyUntil returns the view-local queue drain time of a memory device.
	BusyUntil(memID string) time.Duration
	// AccessTime is Topology.AccessTime against this view's queue state.
	AccessTime(computeID, memID string, now time.Duration, size int64, kind memsim.AccessKind, pat memsim.Pattern) (time.Duration, error)
}

// NewEpoch starts a fresh virtual-time epoch on this topology: every device
// queue is seen as drained at t=0.
func (t *Topology) NewEpoch() *Epoch {
	return &Epoch{topo: t, busy: make(map[string]time.Duration)}
}

// Topology returns the shared hardware graph this epoch runs on.
func (e *Epoch) Topology() *Topology { return e.topo }

// BusyUntil returns the epoch-local queue drain time of a memory device —
// the contention signal epoch-aware placers steer by.
func (e *Epoch) BusyUntil(memID string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.busy[memID]
}

// AccessTime is Topology.AccessTime against this epoch's queue state: the
// virtual completion time of a memory access of size bytes issued by
// computeID against memID at virtual time now. Path latency both ways is
// added to the epoch-local queued service time, and transfer time is
// stretched if the path is narrower than the device.
func (e *Epoch) AccessTime(computeID, memID string, now time.Duration, size int64, kind memsim.AccessKind, pat memsim.Pattern) (time.Duration, error) {
	mem, ok := e.topo.memories[memID]
	if !ok {
		return 0, fmt.Errorf("topology: unknown memory device %q", memID)
	}
	path, ok := e.topo.Path(computeID, memID)
	if !ok {
		return 0, fmt.Errorf("topology: no path %s→%s", computeID, memID)
	}
	e.mu.Lock()
	done, busy := mem.AccessQueued(e.busy[memID], now+path.Latency, size, kind, pat)
	e.busy[memID] = busy
	e.mu.Unlock()
	done += pathStretch(path, mem, size)
	return done + path.Latency, nil
}

// View snapshots the epoch's current queue state into a fresh TaskView.
// Wavefront source tasks seed from this; everything downstream seeds from
// merged predecessor views.
func (e *Epoch) View() *TaskView {
	e.mu.Lock()
	defer e.mu.Unlock()
	busy := make(map[string]time.Duration, len(e.busy))
	for id, t := range e.busy {
		busy[id] = t
	}
	return &TaskView{topo: e.topo, busy: busy}
}

// Absorb folds a finished task's queue state back into the epoch as an
// element-wise max: after a run completes, the epoch's drain times reflect
// the deepest backlog any of the run's tasks produced, so later jobs that
// share the epoch queue behind the whole run.
func (e *Epoch) Absorb(v *TaskView) {
	if v == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, t := range v.busy {
		if t > e.busy[id] {
			e.busy[id] = t
		}
	}
}

// AbsorbViews folds several task views into the epoch under one lock
// acquisition — the bulk form of Absorb a drained wavefront uses to publish
// its whole run at once. Nil entries (tasks that never completed) are
// skipped.
func (e *Epoch) AbsorbViews(vs ...*TaskView) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, v := range vs {
		if v == nil {
			continue
		}
		for id, t := range v.busy {
			if t > e.busy[id] {
				e.busy[id] = t
			}
		}
	}
}

// TaskView is one task's causal view of the device queues inside a
// wavefront run. It seeds from the element-wise max of the task's
// predecessors' final views, so a task queues behind exactly the accesses
// that happened-before it in the DAG — never behind a sibling branch that
// merely ran earlier in wall-clock time. That independence from dispatch
// order is what keeps parallel execution byte-for-byte deterministic.
//
// A TaskView is NOT safe for concurrent use: it belongs to one task
// goroutine. Cross-task handoff (predecessor final view → successor seed)
// is synchronized by the wavefront dispatcher.
type TaskView struct {
	topo *Topology
	busy map[string]time.Duration
}

// viewPool recycles TaskViews (and, most importantly, their busy maps): a
// wavefront allocates one view per task, and on short serving batches the
// per-task map churn was a measurable slice of the determinism tax. Views
// enter the pool through PutTaskView once their run has absorbed them and
// released every region that could price through them.
var viewPool = sync.Pool{
	New: func() any { return &TaskView{busy: make(map[string]time.Duration, 8)} },
}

// GetTaskView returns a pooled view initialized as a copy of src (same
// topology, same queue state) — the pooled equivalent of src.Clone(). The
// caller owns the view until it hands it to PutTaskView.
func GetTaskView(src *TaskView) *TaskView {
	v := viewPool.Get().(*TaskView)
	v.topo = src.topo
	clear(v.busy)
	for id, t := range src.busy {
		v.busy[id] = t
	}
	return v
}

// PutTaskView recycles a view. The caller must guarantee nothing can price
// an access through it anymore — in the wavefront executor that holds after
// finalize: the run's regions are released first, and every handle lookup
// fails before its clock view would be consulted. Nil is a no-op, so callers
// can put back sparse view tables without filtering.
func PutTaskView(v *TaskView) {
	if v == nil {
		return
	}
	viewPool.Put(v)
}

// NewTaskView starts an empty view: every queue drained at t=0.
func (t *Topology) NewTaskView() *TaskView {
	return &TaskView{topo: t, busy: make(map[string]time.Duration)}
}

// Topology returns the shared hardware graph this view runs on.
func (v *TaskView) Topology() *Topology { return v.topo }

// BusyUntil returns the view-local queue drain time of a memory device.
func (v *TaskView) BusyUntil(memID string) time.Duration { return v.busy[memID] }

// Merge folds another view in as an element-wise max. Seeding a task's view
// is Merge over every predecessor's final view.
func (v *TaskView) Merge(o *TaskView) {
	if o == nil {
		return
	}
	for id, t := range o.busy {
		if t > v.busy[id] {
			v.busy[id] = t
		}
	}
}

// Clone returns an independent copy of the view.
func (v *TaskView) Clone() *TaskView {
	busy := make(map[string]time.Duration, len(v.busy))
	for id, t := range v.busy {
		busy[id] = t
	}
	return &TaskView{topo: v.topo, busy: busy}
}

// AccessTime is Topology.AccessTime against this view's queue state.
func (v *TaskView) AccessTime(computeID, memID string, now time.Duration, size int64, kind memsim.AccessKind, pat memsim.Pattern) (time.Duration, error) {
	mem, ok := v.topo.memories[memID]
	if !ok {
		return 0, fmt.Errorf("topology: unknown memory device %q", memID)
	}
	path, ok := v.topo.Path(computeID, memID)
	if !ok {
		return 0, fmt.Errorf("topology: no path %s→%s", computeID, memID)
	}
	done, busy := mem.AccessQueued(v.busy[memID], now+path.Latency, size, kind, pat)
	v.busy[memID] = busy
	done += pathStretch(path, mem, size)
	return done + path.Latency, nil
}

// pathStretch is the extra transfer time when the route is the bottleneck:
// the gap between moving size bytes at path bandwidth vs device bandwidth.
func pathStretch(path PathInfo, mem *memsim.Device, size int64) time.Duration {
	if size <= 0 || path.Bandwidth >= mem.Bandwidth {
		return 0
	}
	extra := time.Duration(float64(size)/path.Bandwidth*float64(time.Second)) -
		time.Duration(float64(size)/mem.Bandwidth*float64(time.Second))
	if extra < 0 {
		return 0
	}
	return extra
}
