package topology

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/memsim"
)

// Epoch is one virtual-time epoch: a private view of every memory device's
// service queue. The hardware graph itself (devices, links, routes, capacity
// accounting) stays shared; only *queue time* — the state that defines a
// virtual clock — lives here. Concurrent epochs therefore never interleave
// their backlogs: two jobs running in different epochs each see the device
// idle at their own t=0, exactly as if they ran on freshly drained hardware,
// while jobs sharing one epoch contend on the same FIFO queues (the
// multi-job serving case where contention is the point).
//
// Epoch replaces the old pattern of mutating the device-global queue and
// calling Topology.ResetQueues between runs, which was only safe for
// sequential submission. ResetQueues remains for the measurement-phase
// callers that still use the global queue.
//
// An Epoch is safe for concurrent use by multiple goroutines.
type Epoch struct {
	topo *Topology

	mu   sync.Mutex
	busy map[string]time.Duration // memory device ID → queue drain time
}

// NewEpoch starts a fresh virtual-time epoch on this topology: every device
// queue is seen as drained at t=0.
func (t *Topology) NewEpoch() *Epoch {
	return &Epoch{topo: t, busy: make(map[string]time.Duration)}
}

// Topology returns the shared hardware graph this epoch runs on.
func (e *Epoch) Topology() *Topology { return e.topo }

// BusyUntil returns the epoch-local queue drain time of a memory device —
// the contention signal epoch-aware placers steer by.
func (e *Epoch) BusyUntil(memID string) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.busy[memID]
}

// AccessTime is Topology.AccessTime against this epoch's queue state: the
// virtual completion time of a memory access of size bytes issued by
// computeID against memID at virtual time now. Path latency both ways is
// added to the epoch-local queued service time, and transfer time is
// stretched if the path is narrower than the device.
func (e *Epoch) AccessTime(computeID, memID string, now time.Duration, size int64, kind memsim.AccessKind, pat memsim.Pattern) (time.Duration, error) {
	mem, ok := e.topo.memories[memID]
	if !ok {
		return 0, fmt.Errorf("topology: unknown memory device %q", memID)
	}
	path, ok := e.topo.Path(computeID, memID)
	if !ok {
		return 0, fmt.Errorf("topology: no path %s→%s", computeID, memID)
	}
	e.mu.Lock()
	done, busy := mem.AccessQueued(e.busy[memID], now+path.Latency, size, kind, pat)
	e.busy[memID] = busy
	e.mu.Unlock()
	done += pathStretch(path, mem, size)
	return done + path.Latency, nil
}

// pathStretch is the extra transfer time when the route is the bottleneck:
// the gap between moving size bytes at path bandwidth vs device bandwidth.
func pathStretch(path PathInfo, mem *memsim.Device, size int64) time.Duration {
	if size <= 0 || path.Bandwidth >= mem.Bandwidth {
		return 0
	}
	extra := time.Duration(float64(size)/path.Bandwidth*float64(time.Second)) -
		time.Duration(float64(size)/mem.Bandwidth*float64(time.Second))
	if extra < 0 {
		return 0
	}
	return extra
}
