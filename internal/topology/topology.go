// Package topology models the hardware landscape of a disaggregated data
// center: compute devices (CPUs, GPUs, TPUs, FPGAs), the simulated memory
// devices of internal/memsim, and the interconnects between them (on-chip
// fabrics, memory buses, UPI cross-socket links, PCIe/CXL, SATA, and the
// network fabric reaching memory nodes).
//
// The central question the paper's §2.2 asks — "which physical memory device
// best serves this request *from this compute device*?" — is answered here:
// Path computes the cheapest interconnect route between a compute device and
// a memory device, and EffectiveCaps folds the path cost into the device's
// raw capabilities. The same memory device therefore presents different
// capabilities to different compute devices (Figure 3).
package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/memsim"
	"repro/internal/props"
)

// ComputeKind enumerates the compute device types of Figure 1.
type ComputeKind uint8

const (
	CPU ComputeKind = iota
	GPU
	TPU
	FPGA
)

// String returns the kind name.
func (k ComputeKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case TPU:
		return "TPU"
	case FPGA:
		return "FPGA"
	default:
		return fmt.Sprintf("ComputeKind(%d)", uint8(k))
	}
}

// ComputeDevice is a processing element tasks can be scheduled on.
type ComputeDevice struct {
	ID    string
	Kind  ComputeKind
	Node  string  // hosting node (chassis); "" for none
	Gops  float64 // billions of scalar ops per second, the scheduler's speed model
	Cores int     // parallel task slots
}

// LinkKind tags interconnect technologies, mostly for reporting.
type LinkKind uint8

const (
	LinkOnChip LinkKind = iota
	LinkMemBus          // DDR memory bus
	LinkUPI             // cross-socket coherent link
	LinkPCIe            // PCIe or CXL
	LinkSATA
	LinkNIC // network fabric hop
)

// String returns the link technology name.
func (k LinkKind) String() string {
	switch k {
	case LinkOnChip:
		return "on-chip"
	case LinkMemBus:
		return "membus"
	case LinkUPI:
		return "UPI"
	case LinkPCIe:
		return "PCIe/CXL"
	case LinkSATA:
		return "SATA"
	case LinkNIC:
		return "NIC"
	default:
		return fmt.Sprintf("LinkKind(%d)", uint8(k))
	}
}

// Link is a bidirectional edge between two endpoints with its own latency
// and bandwidth. Endpoints are string IDs: compute devices, memory devices,
// or internal switches ("node0/pcie", "fabric").
type Link struct {
	A, B      string
	Kind      LinkKind
	Latency   time.Duration
	Bandwidth float64 // bytes/second
	Coherent  bool    // link preserves hardware cache coherence (memory bus, UPI, CXL)
}

// PathInfo is the result of routing from a compute device to a memory device.
type PathInfo struct {
	Hops      []Link
	Latency   time.Duration // sum of link latencies (excludes the device's own latency)
	Bandwidth float64       // min of link bandwidths (math.Inf(1) for the empty path)
	Coherent  bool          // every hop preserves coherence
}

// Topology is the full hardware graph.
type Topology struct {
	computes map[string]*ComputeDevice
	memories map[string]*memsim.Device
	adj      map[string][]Link
	// order preserves insertion order for deterministic iteration.
	computeOrder []string
	memoryOrder  []string
	// pathCache memoizes routing results; the graph is static after
	// construction and Path sits on every memory access's hot path.
	pathMu    sync.RWMutex
	pathCache map[[2]string]pathEntry
}

type pathEntry struct {
	info PathInfo
	ok   bool
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		computes:  make(map[string]*ComputeDevice),
		memories:  make(map[string]*memsim.Device),
		adj:       make(map[string][]Link),
		pathCache: make(map[[2]string]pathEntry),
	}
}

// AddCompute registers a compute device. IDs must be unique across the graph.
func (t *Topology) AddCompute(c *ComputeDevice) error {
	if c == nil || c.ID == "" {
		return fmt.Errorf("topology: compute device must have an id")
	}
	if t.has(c.ID) {
		return fmt.Errorf("topology: duplicate id %q", c.ID)
	}
	if c.Gops <= 0 {
		return fmt.Errorf("topology: %s: Gops must be positive", c.ID)
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	t.computes[c.ID] = c
	t.computeOrder = append(t.computeOrder, c.ID)
	return nil
}

// AddMemory registers a memory device built by memsim.
func (t *Topology) AddMemory(d *memsim.Device) error {
	if d == nil {
		return fmt.Errorf("topology: nil memory device")
	}
	if t.has(d.ID) {
		return fmt.Errorf("topology: duplicate id %q", d.ID)
	}
	t.memories[d.ID] = d
	t.memoryOrder = append(t.memoryOrder, d.ID)
	return nil
}

func (t *Topology) has(id string) bool {
	if _, ok := t.computes[id]; ok {
		return true
	}
	if _, ok := t.memories[id]; ok {
		return true
	}
	return false
}

// Connect adds a bidirectional link. Unknown endpoints are allowed — they
// become switches (pure routing vertices).
func (t *Topology) Connect(l Link) error {
	if l.A == "" || l.B == "" || l.A == l.B {
		return fmt.Errorf("topology: invalid link %q-%q", l.A, l.B)
	}
	if l.Latency < 0 || l.Bandwidth <= 0 {
		return fmt.Errorf("topology: link %s-%s needs latency ≥ 0 and bandwidth > 0", l.A, l.B)
	}
	t.adj[l.A] = append(t.adj[l.A], l)
	rev := l
	rev.A, rev.B = l.B, l.A
	t.adj[l.B] = append(t.adj[l.B], rev)
	t.pathMu.Lock()
	t.pathCache = make(map[[2]string]pathEntry) // routes changed
	t.pathMu.Unlock()
	return nil
}

// Compute returns a registered compute device.
func (t *Topology) Compute(id string) (*ComputeDevice, bool) {
	c, ok := t.computes[id]
	return c, ok
}

// Memory returns a registered memory device.
func (t *Topology) Memory(id string) (*memsim.Device, bool) {
	d, ok := t.memories[id]
	return d, ok
}

// Computes returns all compute devices in insertion order.
func (t *Topology) Computes() []*ComputeDevice {
	out := make([]*ComputeDevice, 0, len(t.computeOrder))
	for _, id := range t.computeOrder {
		out = append(out, t.computes[id])
	}
	return out
}

// Memories returns all memory devices in insertion order.
func (t *Topology) Memories() []*memsim.Device {
	out := make([]*memsim.Device, 0, len(t.memoryOrder))
	for _, id := range t.memoryOrder {
		out = append(out, t.memories[id])
	}
	return out
}

// ComputesByKind returns compute devices of the given kind.
func (t *Topology) ComputesByKind(k ComputeKind) []*ComputeDevice {
	var out []*ComputeDevice
	for _, c := range t.Computes() {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// Path routes from one endpoint to another, minimizing latency (ties broken
// by hop count, then lexicographically for determinism). It returns false if
// no route exists. Results are memoized: the graph is immutable once built
// and Path runs on every simulated memory access.
func (t *Topology) Path(from, to string) (PathInfo, bool) {
	if from == to {
		return PathInfo{Bandwidth: math.Inf(1), Coherent: true}, true
	}
	key := [2]string{from, to}
	t.pathMu.RLock()
	if e, hit := t.pathCache[key]; hit {
		t.pathMu.RUnlock()
		return e.info, e.ok
	}
	t.pathMu.RUnlock()
	info, ok := t.route(from, to)
	t.pathMu.Lock()
	t.pathCache[key] = pathEntry{info: info, ok: ok}
	t.pathMu.Unlock()
	return info, ok
}

// route is the uncached Dijkstra search behind Path.
func (t *Topology) route(from, to string) (PathInfo, bool) {
	type state struct {
		lat  time.Duration
		hops int
	}
	dist := map[string]state{from: {}}
	prev := map[string]Link{}
	visited := map[string]bool{}
	for {
		// Extract the unvisited vertex with minimal (lat, hops, id).
		cur, ok := "", false
		var best state
		keys := make([]string, 0, len(dist))
		for v := range dist {
			keys = append(keys, v)
		}
		sort.Strings(keys)
		for _, v := range keys {
			if visited[v] {
				continue
			}
			s := dist[v]
			if !ok || s.lat < best.lat || (s.lat == best.lat && s.hops < best.hops) {
				cur, best, ok = v, s, true
			}
		}
		if !ok {
			return PathInfo{}, false
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for _, l := range t.adj[cur] {
			nd := state{best.lat + l.Latency, best.hops + 1}
			if old, seen := dist[l.B]; !seen || nd.lat < old.lat || (nd.lat == old.lat && nd.hops < old.hops) {
				dist[l.B] = nd
				prev[l.B] = l
			}
		}
	}
	// Reconstruct.
	var hops []Link
	for v := to; v != from; {
		l := prev[v]
		hops = append(hops, l)
		v = l.A
	}
	// Reverse into from→to order.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	info := PathInfo{Hops: hops, Bandwidth: math.Inf(1), Coherent: true}
	for _, l := range hops {
		info.Latency += l.Latency
		if l.Bandwidth < info.Bandwidth {
			info.Bandwidth = l.Bandwidth
		}
		if !l.Coherent {
			info.Coherent = false
		}
	}
	return info, true
}

// EffectiveCaps folds a path's cost into a memory device's raw spec,
// producing the capabilities the device offers *as seen from* the given
// compute device. This is the paper's Figure 3 in code: DRAM looks fast from
// the local CPU and slow from a GPU across PCIe; GDDR is the reverse.
func (t *Topology) EffectiveCaps(computeID, memID string) (props.Capabilities, bool) {
	mem, ok := t.memories[memID]
	if !ok {
		return props.Capabilities{}, false
	}
	if _, ok := t.computes[computeID]; !ok {
		return props.Capabilities{}, false
	}
	path, ok := t.Path(computeID, memID)
	if !ok {
		return props.Capabilities{}, false
	}
	bw := mem.Bandwidth
	if path.Bandwidth < bw {
		bw = path.Bandwidth
	}
	remote := false
	for _, l := range path.Hops {
		if l.Kind == LinkNIC {
			remote = true
			break
		}
	}
	return props.Capabilities{
		Latency:         mem.Latency + path.Latency,
		Bandwidth:       bw,
		Granularity:     mem.Granularity,
		ByteAddressable: mem.ByteAddressable(),
		Coherent:        mem.Coherent && path.Coherent,
		Sync:            mem.Sync && !remote,
		Persistent:      mem.Persistent,
		Remote:          remote,
		FreeCapacity:    mem.Free(),
	}, true
}

// AccessTime returns the virtual completion time of a memory access of size
// bytes issued by computeID against memID at virtual time now: path latency
// both ways is added to the device's queued service time, and transfer time
// is scaled up if the path is narrower than the device.
func (t *Topology) AccessTime(computeID, memID string, now time.Duration, size int64, kind memsim.AccessKind, pat memsim.Pattern) (time.Duration, error) {
	mem, ok := t.memories[memID]
	if !ok {
		return 0, fmt.Errorf("topology: unknown memory device %q", memID)
	}
	path, ok := t.Path(computeID, memID)
	if !ok {
		return 0, fmt.Errorf("topology: no path %s→%s", computeID, memID)
	}
	done := mem.Access(now+path.Latency, size, kind, pat)
	// If the path is the bottleneck, stretch the transfer phase.
	done += pathStretch(path, mem, size)
	return done + path.Latency, nil
}

// ResetQueues drains every memory device's service queue — used between
// measurement phases so one experiment's virtual backlog cannot leak into
// the next.
func (t *Topology) ResetQueues() {
	for _, m := range t.memories {
		m.ResetQueue()
	}
}

// Addressable reports whether the compute device can address the memory
// device at all (a route exists). Block devices remain addressable — the
// runtime wraps them behind async interfaces.
func (t *Topology) Addressable(computeID, memID string) bool {
	_, ok := t.Path(computeID, memID)
	return ok
}
