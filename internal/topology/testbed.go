package topology

import (
	"fmt"
	"time"

	"repro/internal/memsim"
)

// This file builds the reference testbeds used throughout tests, examples,
// and the paper-artifact benches. The single-node testbed mirrors the
// paper's Figure 1a: two CPU sockets with local DRAM, HBM and PMem, a GPU
// with GDDR, a TPU and an FPGA on PCIe/CXL, a CXL-DRAM expansion card, an
// SSD, an HDD, and a NIC reaching pooled far memory on memory nodes.

// Link latency/bandwidth constants for the reference interconnects.
const (
	memBusLat  = 10 * time.Nanosecond
	upiLat     = 60 * time.Nanosecond // cross-socket hop, the NUMA penalty
	pcieLat    = 400 * time.Nanosecond
	cxlLat     = 80 * time.Nanosecond // CXL.mem port latency
	sataLat    = 500 * time.Microsecond
	nicLat     = 1200 * time.Nanosecond // per fabric hop (RDMA-class)
	memBusBW   = 200e9
	upiBW      = 60e9
	pcieBW     = 32e9
	cxlBW      = 45e9
	sataBW     = 600e6
	nicBW      = 25e9
	onNodeName = "node0"
)

// SingleNodeConfig tunes the reference single-node testbed.
type SingleNodeConfig struct {
	Sockets      int  // CPU sockets, default 2
	WithGPU      bool // add GPU + GDDR
	WithTPU      bool
	WithFPGA     bool
	WithFarMem   bool // add a NIC-attached memory pool node
	FarMemNodes  int  // number of far-memory nodes, default 1
	CoresPerCPU  int  // default 32
	ScaleCap     func(memsim.Spec) memsim.Spec
	DisableCache bool // omit per-socket cache devices (they're tiny)
}

// DefaultSingleNode returns the fully populated configuration used by the
// paper-artifact benches.
func DefaultSingleNode() SingleNodeConfig {
	return SingleNodeConfig{
		Sockets: 2, WithGPU: true, WithTPU: true, WithFPGA: true,
		WithFarMem: true, FarMemNodes: 2, CoresPerCPU: 32,
	}
}

// BuildSingleNode constructs the reference testbed.
func BuildSingleNode(cfg SingleNodeConfig) (*Topology, error) {
	if cfg.Sockets <= 0 {
		cfg.Sockets = 2
	}
	if cfg.CoresPerCPU <= 0 {
		cfg.CoresPerCPU = 32
	}
	if cfg.FarMemNodes <= 0 {
		cfg.FarMemNodes = 1
	}
	scale := cfg.ScaleCap
	if scale == nil {
		scale = func(s memsim.Spec) memsim.Spec { return s }
	}
	t := New()

	addMem := func(id string, spec memsim.Spec) (*memsim.Device, error) {
		d, err := memsim.NewDevice(id, scale(spec))
		if err != nil {
			return nil, err
		}
		return d, t.AddMemory(d)
	}

	// CPU sockets with per-socket cache, DRAM, and (socket 0) HBM + PMem.
	for s := 0; s < cfg.Sockets; s++ {
		cpu := &ComputeDevice{
			ID:   fmt.Sprintf("%s/cpu%d", onNodeName, s),
			Kind: CPU, Node: onNodeName,
			Gops: 200, Cores: cfg.CoresPerCPU,
		}
		if err := t.AddCompute(cpu); err != nil {
			return nil, err
		}
		if !cfg.DisableCache {
			cache, err := addMem(fmt.Sprintf("%s/cache%d", onNodeName, s), memsim.CacheSpec())
			if err != nil {
				return nil, err
			}
			if err := t.Connect(Link{A: cpu.ID, B: cache.ID, Kind: LinkOnChip, Latency: time.Nanosecond, Bandwidth: 2000e9, Coherent: true}); err != nil {
				return nil, err
			}
		}
		dram, err := addMem(fmt.Sprintf("%s/dram%d", onNodeName, s), memsim.DRAMSpec())
		if err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: cpu.ID, B: dram.ID, Kind: LinkMemBus, Latency: memBusLat, Bandwidth: memBusBW, Coherent: true}); err != nil {
			return nil, err
		}
		// Cross-socket UPI ring: cpu_s ↔ cpu_{s-1}.
		if s > 0 {
			prev := fmt.Sprintf("%s/cpu%d", onNodeName, s-1)
			if err := t.Connect(Link{A: prev, B: cpu.ID, Kind: LinkUPI, Latency: upiLat, Bandwidth: upiBW, Coherent: true}); err != nil {
				return nil, err
			}
		}
	}
	cpu0 := fmt.Sprintf("%s/cpu0", onNodeName)

	hbm, err := addMem(onNodeName+"/hbm0", memsim.HBMSpec())
	if err != nil {
		return nil, err
	}
	if err := t.Connect(Link{A: cpu0, B: hbm.ID, Kind: LinkOnChip, Latency: 5 * time.Nanosecond, Bandwidth: 800e9, Coherent: true}); err != nil {
		return nil, err
	}
	pmem, err := addMem(onNodeName+"/pmem0", memsim.PMemSpec())
	if err != nil {
		return nil, err
	}
	if err := t.Connect(Link{A: cpu0, B: pmem.ID, Kind: LinkMemBus, Latency: memBusLat, Bandwidth: 40e9, Coherent: true}); err != nil {
		return nil, err
	}

	// PCIe/CXL root complex hangs off socket 0.
	pcieSwitch := onNodeName + "/pcie"
	if err := t.Connect(Link{A: cpu0, B: pcieSwitch, Kind: LinkPCIe, Latency: pcieLat / 2, Bandwidth: pcieBW, Coherent: true}); err != nil {
		return nil, err
	}

	cxl, err := addMem(onNodeName+"/cxl0", memsim.CXLDRAMSpec())
	if err != nil {
		return nil, err
	}
	if err := t.Connect(Link{A: cpu0, B: cxl.ID, Kind: LinkPCIe, Latency: cxlLat, Bandwidth: cxlBW, Coherent: true}); err != nil {
		return nil, err
	}

	ssd, err := addMem(onNodeName+"/ssd0", memsim.SSDSpec())
	if err != nil {
		return nil, err
	}
	if err := t.Connect(Link{A: pcieSwitch, B: ssd.ID, Kind: LinkPCIe, Latency: pcieLat / 2, Bandwidth: 8e9, Coherent: false}); err != nil {
		return nil, err
	}
	hdd, err := addMem(onNodeName+"/hdd0", memsim.HDDSpec())
	if err != nil {
		return nil, err
	}
	if err := t.Connect(Link{A: cpu0, B: hdd.ID, Kind: LinkSATA, Latency: sataLat, Bandwidth: sataBW, Coherent: false}); err != nil {
		return nil, err
	}

	if cfg.WithGPU {
		gpu := &ComputeDevice{ID: onNodeName + "/gpu0", Kind: GPU, Node: onNodeName, Gops: 2000, Cores: 64}
		if err := t.AddCompute(gpu); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: gpu.ID, B: pcieSwitch, Kind: LinkPCIe, Latency: pcieLat / 2, Bandwidth: pcieBW, Coherent: true}); err != nil {
			return nil, err
		}
		gddr, err := addMem(onNodeName+"/gddr0", memsim.GDDRSpec())
		if err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: gpu.ID, B: gddr.ID, Kind: LinkMemBus, Latency: 8 * time.Nanosecond, Bandwidth: 900e9, Coherent: false}); err != nil {
			return nil, err
		}
	}
	if cfg.WithTPU {
		tpu := &ComputeDevice{ID: onNodeName + "/tpu0", Kind: TPU, Node: onNodeName, Gops: 4000, Cores: 16}
		if err := t.AddCompute(tpu); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: tpu.ID, B: pcieSwitch, Kind: LinkPCIe, Latency: pcieLat / 2, Bandwidth: pcieBW, Coherent: true}); err != nil {
			return nil, err
		}
		// TPUs ship with on-package HBM; without it no sub-200ns memory is
		// reachable from the accelerator (Table 1 from the TPU's view).
		spec := memsim.HBMSpec()
		spec.Name = "TPU-HBM"
		spec.Attach = memsim.AttachPCIe
		spec.Coherent = false
		thbm, err := addMem(onNodeName+"/tpuhbm0", spec)
		if err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: tpu.ID, B: thbm.ID, Kind: LinkMemBus, Latency: 8 * time.Nanosecond, Bandwidth: 600e9, Coherent: false}); err != nil {
			return nil, err
		}
	}
	if cfg.WithFPGA {
		fpga := &ComputeDevice{ID: onNodeName + "/fpga0", Kind: FPGA, Node: onNodeName, Gops: 600, Cores: 8}
		if err := t.AddCompute(fpga); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: fpga.ID, B: pcieSwitch, Kind: LinkPCIe, Latency: pcieLat / 2, Bandwidth: pcieBW, Coherent: true}); err != nil {
			return nil, err
		}
		// On-chip BRAM: small, very fast, FPGA-local.
		spec := memsim.Spec{
			Name: "BRAM", Class: memsim.HBM,
			Latency: 10 * time.Nanosecond, Bandwidth: 200e9,
			Granularity: 64, Attach: memsim.AttachPCIe,
			Coherent: false, Sync: true, Persistent: false,
			Capacity: 256 * memsim.MiB,
		}
		bram, err := addMem(onNodeName+"/bram0", spec)
		if err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: fpga.ID, B: bram.ID, Kind: LinkOnChip, Latency: 2 * time.Nanosecond, Bandwidth: 400e9, Coherent: false}); err != nil {
			return nil, err
		}
	}

	if cfg.WithFarMem {
		// NIC per node, fabric switch, memory nodes with pooled DRAM.
		nic := onNodeName + "/nic"
		if err := t.Connect(Link{A: cpu0, B: nic, Kind: LinkPCIe, Latency: pcieLat / 2, Bandwidth: nicBW, Coherent: false}); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: nic, B: "fabric", Kind: LinkNIC, Latency: nicLat / 2, Bandwidth: nicBW, Coherent: false}); err != nil {
			return nil, err
		}
		for n := 0; n < cfg.FarMemNodes; n++ {
			far, err := addMem(fmt.Sprintf("memnode%d/far0", n), memsim.DisaggMemSpec())
			if err != nil {
				return nil, err
			}
			if err := t.Connect(Link{A: "fabric", B: far.ID, Kind: LinkNIC, Latency: nicLat / 2, Bandwidth: nicBW, Coherent: false}); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// MustSingleNode builds the default testbed and panics on error; intended
// for tests and benches where the configuration is static and known-good.
func MustSingleNode() *Topology {
	t, err := BuildSingleNode(DefaultSingleNode())
	if err != nil {
		panic(err)
	}
	return t
}

// BuildRack wires rackSize copies of the single-node testbed to a shared
// fabric with memNodes pooled far-memory nodes — the paper's Figure 1b
// memory pool. Node i's devices are namespaced "rack/nodeI/...".
func BuildRack(rackSize, memNodes int) (*Topology, error) {
	if rackSize <= 0 || memNodes < 0 {
		return nil, fmt.Errorf("topology: invalid rack shape %d/%d", rackSize, memNodes)
	}
	t := New()
	for n := 0; n < rackSize; n++ {
		node := fmt.Sprintf("rack/node%d", n)
		cpu := &ComputeDevice{ID: node + "/cpu0", Kind: CPU, Node: node, Gops: 200, Cores: 32}
		if err := t.AddCompute(cpu); err != nil {
			return nil, err
		}
		dram, err := memsim.NewDevice(node+"/dram0", memsim.DRAMSpec())
		if err != nil {
			return nil, err
		}
		if err := t.AddMemory(dram); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: cpu.ID, B: dram.ID, Kind: LinkMemBus, Latency: memBusLat, Bandwidth: memBusBW, Coherent: true}); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: cpu.ID, B: "rack/fabric", Kind: LinkNIC, Latency: nicLat, Bandwidth: nicBW, Coherent: false}); err != nil {
			return nil, err
		}
	}
	for m := 0; m < memNodes; m++ {
		far, err := memsim.NewDevice(fmt.Sprintf("rack/memnode%d/far0", m), memsim.DisaggMemSpec())
		if err != nil {
			return nil, err
		}
		if err := t.AddMemory(far); err != nil {
			return nil, err
		}
		if err := t.Connect(Link{A: "rack/fabric", B: far.ID, Kind: LinkNIC, Latency: nicLat / 2, Bandwidth: nicBW, Coherent: false}); err != nil {
			return nil, err
		}
	}
	return t, nil
}
