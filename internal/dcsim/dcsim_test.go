package dcsim

import (
	"testing"
	"testing/quick"
	"time"
)

func testConfig() Config {
	return Config{Servers: 8, PerServer: 256 << 30}
}

func testJobs(seed uint64, n int) []Job {
	cfg := testConfig()
	return PoissonJobs(seed, n, 10*time.Millisecond, 80*time.Millisecond, cfg.PerServer, 0.1, 0.9)
}

func TestConfigValidation(t *testing.T) {
	if _, err := Static(Config{}, nil); err == nil {
		t.Error("zero config must fail")
	}
	if _, err := Pooled(Config{Servers: -1, PerServer: 10}, nil); err == nil {
		t.Error("negative servers must fail")
	}
}

func TestPoissonJobsDeterministic(t *testing.T) {
	a := testJobs(42, 100)
	b := testJobs(42, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := testJobs(43, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds must differ")
	}
	// Arrivals are sorted, demands within bounds.
	cfg := testConfig()
	for i := 1; i < len(a); i++ {
		if a[i].Arrival < a[i-1].Arrival {
			t.Fatal("arrivals must be non-decreasing")
		}
	}
	for _, j := range a {
		if j.Demand < int64(0.05*float64(cfg.PerServer)) || j.Demand > cfg.PerServer {
			t.Fatalf("demand %d out of [0.1,0.9] band", j.Demand)
		}
		if j.Duration <= 0 {
			t.Fatal("durations must be positive")
		}
	}
}

func TestConservation(t *testing.T) {
	cfg := testConfig()
	jobs := testJobs(7, 500)
	for _, policy := range []func(Config, []Job) (Result, error){Static, Pooled} {
		res, err := policy(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted+res.Rejected != len(jobs) {
			t.Errorf("%s: %d admitted + %d rejected != %d jobs", res.Policy, res.Admitted, res.Rejected, len(jobs))
		}
		if res.AvgUtil < 0 || res.AvgUtil > 1 || res.PeakUtil > 1 {
			t.Errorf("%s: utilization out of range: %+v", res.Policy, res)
		}
		if res.PeakUtil < res.AvgUtil {
			t.Errorf("%s: peak below average", res.Policy)
		}
	}
}

func TestPooledDominatesStatic(t *testing.T) {
	cfg := testConfig()
	jobs := testJobs(11, 800)
	st, err := Static(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	po, err := Pooled(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Everyone eventually runs (unbounded patience), so admission is
	// equal; the stranding shows up as queueing delay and lower
	// concurrent utilization.
	if po.AvgWait >= st.AvgWait {
		t.Errorf("pooled wait %v must beat static %v", po.AvgWait, st.AvgWait)
	}
	if po.Makespan > st.Makespan {
		t.Errorf("pooled makespan %v must not exceed static %v", po.Makespan, st.Makespan)
	}
}

func TestOversizedJobRejected(t *testing.T) {
	cfg := Config{Servers: 2, PerServer: 100}
	jobs := []Job{{ID: 0, Arrival: 0, Duration: time.Second, Demand: 150}}
	st, _ := Static(cfg, jobs)
	if st.Rejected != 1 {
		t.Error("static must reject a job bigger than one server")
	}
	// The pool can host it (total 200).
	po, _ := Pooled(cfg, jobs)
	if po.Admitted != 1 {
		t.Error("pool must admit a 1.5-server job — the scale-up argument of §1")
	}
}

func TestQueueingFIFO(t *testing.T) {
	// One server, two jobs that cannot co-reside: second waits for first.
	cfg := Config{Servers: 1, PerServer: 100}
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 10 * time.Millisecond, Demand: 80},
		{ID: 1, Arrival: time.Millisecond, Duration: 10 * time.Millisecond, Demand: 80},
	}
	res, err := Static(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 2 {
		t.Fatalf("both jobs eventually run: %+v", res)
	}
	if res.MaxWait != 9*time.Millisecond {
		t.Errorf("second job waits 9ms (until first departs), got %v", res.MaxWait)
	}
	if res.Makespan != 20*time.Millisecond {
		t.Errorf("makespan = %v, want 20ms", res.Makespan)
	}
}

func TestMaxWaitRejects(t *testing.T) {
	cfg := Config{Servers: 1, PerServer: 100, MaxWait: time.Millisecond}
	jobs := []Job{
		{ID: 0, Arrival: 0, Duration: 50 * time.Millisecond, Demand: 80},
		{ID: 1, Arrival: time.Millisecond, Duration: time.Millisecond, Demand: 80},
		{ID: 2, Arrival: 2 * time.Millisecond, Duration: time.Millisecond, Demand: 80},
	}
	res, err := Static(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Errorf("impatient jobs must be rejected: %+v", res)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := testConfig()
	jobs := testJobs(5, 300)
	a, _ := Pooled(cfg, jobs)
	b, _ := Pooled(cfg, jobs)
	if a != b {
		t.Error("same input must give identical results")
	}
}

// Property: over random seeds and loads, pooled never waits longer than
// static on average, and utilization integrals stay in bounds.
func TestPooledNeverWorseProperty(t *testing.T) {
	f := func(seed uint64, loadSel uint8) bool {
		cfg := testConfig()
		inter := time.Duration(5+int(loadSel%20)) * time.Millisecond
		jobs := PoissonJobs(seed, 300, inter, 60*time.Millisecond, cfg.PerServer, 0.1, 0.9)
		st, err1 := Static(cfg, jobs)
		po, err2 := Pooled(cfg, jobs)
		if err1 != nil || err2 != nil {
			return false
		}
		if po.AvgWait > st.AvgWait {
			return false
		}
		if st.AvgUtil < 0 || st.AvgUtil > 1 || po.AvgUtil < 0 || po.AvgUtil > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPooled10k(b *testing.B) {
	cfg := testConfig()
	jobs := PoissonJobs(9, 10000, 2*time.Millisecond, 60*time.Millisecond, cfg.PerServer, 0.1, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pooled(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
