// Package dcsim is a discrete-event simulator of datacenter memory
// provisioning — the quantitative backdrop of the paper's Figure 1 and of
// the intro's utilization claim [38, 56]: servers are over-provisioned for
// peak demand, so statically partitioned memory strands capacity that a
// runtime-managed pool could serve.
//
// Jobs are (arrival, duration, memory demand) triples; two policies serve
// the same stream:
//
//   - Static: job i is bound to server i mod N (compute-centric — its
//     memory must come from its own server). If the server is full the job
//     waits in that server's FIFO queue.
//   - Pooled: one memory pool of the same total capacity (memory-centric,
//     Fig. 1b). Jobs wait in a single FIFO queue only when the whole pool
//     is exhausted.
//
// The simulator is event-driven and fully deterministic: a seeded LCG
// drives the synthetic job stream, and ties break on job ID.
package dcsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Job is one memory reservation episode.
type Job struct {
	ID       int
	Arrival  time.Duration
	Duration time.Duration // how long the memory stays allocated once admitted
	Demand   int64         // bytes
}

// Config describes the machine park.
type Config struct {
	Servers   int   // number of servers (static) / pool shards (pooled)
	PerServer int64 // bytes of memory per server
	// MaxWait bounds queueing; jobs that would wait longer are rejected.
	// Zero means unbounded patience.
	MaxWait time.Duration
}

// Validate reports config errors.
func (c Config) Validate() error {
	if c.Servers <= 0 || c.PerServer <= 0 {
		return errors.New("dcsim: servers and per-server capacity must be positive")
	}
	return nil
}

// Total returns the park's total memory.
func (c Config) Total() int64 { return int64(c.Servers) * c.PerServer }

// Result summarizes one policy's run over a job stream.
type Result struct {
	Policy   string
	Admitted int
	Rejected int
	// AvgUtil is the time-weighted average memory utilization in [0,1]
	// over [first arrival, last departure].
	AvgUtil  float64
	PeakUtil float64
	// AvgWait / MaxWait measure queueing delay of admitted jobs.
	AvgWait time.Duration
	MaxWait time.Duration
	// Makespan is the time the last admitted job departs.
	Makespan time.Duration
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("%s: admitted %d, rejected %d, util avg %.1f%% peak %.1f%%, wait avg %v max %v",
		r.Policy, r.Admitted, r.Rejected, 100*r.AvgUtil, 100*r.PeakUtil, r.AvgWait, r.MaxWait)
}

// PoissonJobs builds a deterministic synthetic stream: exponential
// interarrivals (mean interarrival), exponential durations (mean
// duration), and demands uniform in [minFrac, maxFrac] of one server.
func PoissonJobs(seed uint64, n int, meanInterarrival, meanDuration time.Duration, perServer int64, minFrac, maxFrac float64) []Job {
	state := seed*2862933555777941757 + 3037000493
	next := func() float64 { // uniform (0,1)
		state = state*6364136223846793005 + 1442695040888963407
		return (float64(state>>11) + 1) / float64(1<<53)
	}
	exp := func(mean time.Duration) time.Duration {
		return time.Duration(-float64(mean) * math.Log(next()))
	}
	jobs := make([]Job, n)
	var clock time.Duration
	for i := range jobs {
		clock += exp(meanInterarrival)
		frac := minFrac + (maxFrac-minFrac)*next()
		jobs[i] = Job{
			ID:       i,
			Arrival:  clock,
			Duration: exp(meanDuration) + time.Millisecond,
			Demand:   int64(frac * float64(perServer)),
		}
	}
	return jobs
}

// event is a departure in the event queue.
type event struct {
	at     time.Duration
	id     int
	server int
	size   int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() time.Duration { return h[0].at }

// run is the shared event loop. assign maps a job to a server index
// (static) or always 0 (pooled); capacity is per-bucket.
func run(cfg Config, jobs []Job, policy string, buckets int, capacity int64, assign func(Job) int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	ordered := append([]Job(nil), jobs...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Arrival != ordered[j].Arrival {
			return ordered[i].Arrival < ordered[j].Arrival
		}
		return ordered[i].ID < ordered[j].ID
	})
	used := make([]int64, buckets)
	queues := make([][]Job, buckets)
	var departures eventHeap
	res := Result{Policy: policy}
	var utilArea float64 // ∫ used dt, in byte·ns
	var lastT time.Duration
	var totalUsed int64
	var waitSum time.Duration
	total := capacity * int64(buckets)

	account := func(now time.Duration) {
		utilArea += float64(totalUsed) * float64(now-lastT)
		lastT = now
	}
	admit := func(j Job, b int, now time.Duration) {
		used[b] += j.Demand
		totalUsed += j.Demand
		if u := float64(totalUsed) / float64(total); u > res.PeakUtil {
			res.PeakUtil = u
		}
		heap.Push(&departures, event{at: now + j.Duration, id: j.ID, server: b, size: j.Demand})
		res.Admitted++
		wait := now - j.Arrival
		waitSum += wait
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
		if now+j.Duration > res.Makespan {
			res.Makespan = now + j.Duration
		}
	}
	depart := func(now time.Duration) {
		e := heap.Pop(&departures).(event)
		used[e.server] -= e.size
		totalUsed -= e.size
		// Drain this bucket's queue as far as it now fits (FIFO).
		q := queues[e.server]
		for len(q) > 0 && used[e.server]+q[0].Demand <= capacity {
			j := q[0]
			q = q[1:]
			admit(j, e.server, now)
		}
		queues[e.server] = q
	}

	for _, j := range ordered {
		// Process departures before this arrival.
		for len(departures) > 0 && departures.peek() <= j.Arrival {
			at := departures.peek()
			account(at)
			depart(at)
		}
		account(j.Arrival)
		if j.Demand > capacity {
			res.Rejected++
			continue
		}
		b := assign(j)
		if b < 0 || b >= buckets {
			return Result{}, fmt.Errorf("dcsim: assignment %d out of range", b)
		}
		if len(queues[b]) == 0 && used[b]+j.Demand <= capacity {
			admit(j, b, j.Arrival)
			continue
		}
		if cfg.MaxWait > 0 {
			// Patience bound: estimate is conservative — reject when the
			// queue is nonempty and the job would certainly wait (the
			// bound is exercised by tests; production would estimate).
			if len(queues[b]) > 0 {
				res.Rejected++
				continue
			}
		}
		queues[b] = append(queues[b], j)
	}
	// Drain all remaining departures.
	for len(departures) > 0 {
		at := departures.peek()
		account(at)
		depart(at)
	}
	if res.Admitted > 0 {
		res.AvgWait = waitSum / time.Duration(res.Admitted)
	}
	if lastT > 0 {
		res.AvgUtil = utilArea / (float64(total) * float64(lastT))
	}
	// Any jobs still queued never got memory.
	for _, q := range queues {
		res.Rejected += len(q)
	}
	return res, nil
}

// Static serves the stream compute-centrically: job i's memory must come
// from server i mod Servers (Fig. 1a).
func Static(cfg Config, jobs []Job) (Result, error) {
	return run(cfg, jobs, "static", cfg.Servers, cfg.PerServer, func(j Job) int {
		return j.ID % cfg.Servers
	})
}

// Pooled serves the stream memory-centrically: one pool of the same total
// capacity (Fig. 1b).
func Pooled(cfg Config, jobs []Job) (Result, error) {
	return run(cfg, jobs, "pooled", 1, cfg.Total(), func(Job) int { return 0 })
}
