package coherence

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

var l0 = LineID{Region: 1, Line: 0}

func TestColdReadIsExclusive(t *testing.T) {
	d := NewDirectory()
	a := d.Read("cpu0", l0)
	if a.Hits != 0 || a.Fetches != 1 || a.DirectoryLookups != 1 {
		t.Errorf("cold read actions = %+v", a)
	}
	if d.StateOf("cpu0", l0) != Exclusive {
		t.Errorf("state = %s, want E", d.StateOf("cpu0", l0))
	}
}

func TestReadHit(t *testing.T) {
	d := NewDirectory()
	d.Read("cpu0", l0)
	a := d.Read("cpu0", l0)
	if a.Hits != 1 || a.Total() != 0 {
		t.Errorf("warm read actions = %+v, want pure hit", a)
	}
}

func TestSecondReaderDemotesToShared(t *testing.T) {
	d := NewDirectory()
	d.Read("cpu0", l0)
	d.Read("gpu0", l0)
	if d.StateOf("cpu0", l0) != Shared || d.StateOf("gpu0", l0) != Shared {
		t.Error("both readers must end Shared")
	}
	if d.Sharers(l0) != 2 {
		t.Errorf("sharers = %d, want 2", d.Sharers(l0))
	}
}

func TestWriteUpgradesExclusiveSilently(t *testing.T) {
	d := NewDirectory()
	d.Read("cpu0", l0)
	a := d.Write("cpu0", l0)
	if a.Hits != 1 || a.Total() != 0 {
		t.Errorf("E→M upgrade must be silent, got %+v", a)
	}
	if d.StateOf("cpu0", l0) != Modified {
		t.Error("writer must hold M")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory()
	d.Read("cpu0", l0)
	d.Read("gpu0", l0)
	d.Read("tpu0", l0)
	a := d.Write("cpu0", l0)
	if a.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", a.Invalidations)
	}
	if d.StateOf("gpu0", l0) != Invalid || d.StateOf("tpu0", l0) != Invalid {
		t.Error("other sharers must be invalidated")
	}
	if d.Sharers(l0) != 1 {
		t.Errorf("sharers = %d, want 1", d.Sharers(l0))
	}
}

func TestReadAfterRemoteWriteForcesWriteback(t *testing.T) {
	d := NewDirectory()
	d.Write("cpu0", l0)
	a := d.Read("gpu0", l0)
	if a.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", a.Writebacks)
	}
	if d.StateOf("cpu0", l0) != Shared || d.StateOf("gpu0", l0) != Shared {
		t.Error("after read of dirty line, both hold S")
	}
}

func TestWriteAfterRemoteWrite(t *testing.T) {
	d := NewDirectory()
	d.Write("cpu0", l0)
	a := d.Write("gpu0", l0)
	if a.Writebacks != 1 || a.Invalidations != 1 {
		t.Errorf("M→M migration actions = %+v", a)
	}
	if d.StateOf("cpu0", l0) != Invalid || d.StateOf("gpu0", l0) != Modified {
		t.Error("ownership must migrate")
	}
}

func TestEvict(t *testing.T) {
	d := NewDirectory()
	d.Write("cpu0", l0)
	a := d.Evict("cpu0", l0)
	if a.Writebacks != 1 {
		t.Errorf("dirty evict writebacks = %d, want 1", a.Writebacks)
	}
	if d.StateOf("cpu0", l0) != Invalid {
		t.Error("evicted line must be Invalid")
	}
	// Clean evict and evict of unknown line are free.
	d.Read("cpu0", l0)
	d.Read("gpu0", l0)
	if a := d.Evict("cpu0", l0); a.Writebacks != 0 {
		t.Error("clean evict must not write back")
	}
	if a := d.Evict("cpu0", LineID{9, 9}); a.Total() != 0 {
		t.Error("evicting an untracked line is free")
	}
}

func TestDropRegion(t *testing.T) {
	d := NewDirectory()
	d.Write("cpu0", LineID{1, 0})
	d.Write("cpu0", LineID{1, 1})
	d.Read("gpu0", LineID{2, 0})
	a := d.DropRegion(1)
	if a.Writebacks != 2 {
		t.Errorf("dropping 2 dirty lines: writebacks = %d", a.Writebacks)
	}
	if d.Sharers(LineID{1, 0}) != 0 || d.Sharers(LineID{1, 1}) != 0 {
		t.Error("region 1 lines must be forgotten")
	}
	if d.Sharers(LineID{2, 0}) != 1 {
		t.Error("region 2 must be untouched")
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := NewDirectory()
	d.Read("a", l0)
	d.Write("b", l0)
	d.Read("a", l0)
	s := d.Stats()
	if s.Total() == 0 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// Property: under any access interleaving, the directory never violates
// single-writer and the invariant checker passes.
func TestProtocolInvariantsProperty(t *testing.T) {
	devs := []string{"cpu0", "cpu1", "gpu0", "tpu0"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDirectory()
		for i := 0; i < 500; i++ {
			dev := devs[rng.Intn(len(devs))]
			id := LineID{Region: uint64(rng.Intn(3)), Line: uint64(rng.Intn(8))}
			switch rng.Intn(4) {
			case 0, 1:
				d.Read(dev, id)
			case 2:
				d.Write(dev, id)
			case 3:
				d.Evict(dev, id)
			}
			if d.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: write counts — a write by one device followed by reads from k
// others then a write again invalidates exactly k sharers.
func TestInvalidationCountProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%6) + 1
		d := NewDirectory()
		d.Write("w", l0)
		for i := 0; i < n; i++ {
			d.Read(devName(i), l0)
		}
		a := d.Write("w", l0)
		return a.Invalidations == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func devName(i int) string { return string(rune('a'+i)) + "dev" }

func TestConcurrentSafety(t *testing.T) {
	d := NewDirectory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dev := devName(g)
			for i := 0; i < 500; i++ {
				id := LineID{Region: 1, Line: uint64(i % 16)}
				if i%3 == 0 {
					d.Write(dev, id)
				} else {
					d.Read(dev, id)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state letters wrong")
	}
}

func BenchmarkReadHit(b *testing.B) {
	d := NewDirectory()
	d.Read("cpu0", l0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read("cpu0", l0)
	}
}

func BenchmarkWriteContention(b *testing.B) {
	d := NewDirectory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			d.Write("cpu0", l0)
		} else {
			d.Write("gpu0", l0)
		}
	}
}
