// Package coherence simulates a directory-based MESI protocol over the
// cache lines of shared Memory Regions. The paper's ownership model (§2.2)
// rests on a cost asymmetry: exclusively-owned memory needs no coherence
// traffic, while shared ownership "puts additional requirements on the
// Memory Region, i.e., being cache-coherent or having strict memory
// ordering". This package makes that cost concrete and measurable.
//
// Each sharer (a compute device's cache) holds lines in Modified, Exclusive,
// Shared, or Invalid state. A home directory tracks, per line, the current
// sharers and the single writer if any. Reads and writes return the protocol
// actions taken (directory lookup, invalidations, writebacks, data fetches),
// which the region layer converts into simulated time.
package coherence

import (
	"fmt"
	"sync"
)

// State is a MESI cache-line state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the state's letter.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// LineID identifies a cache line: a region and a line index within it.
type LineID struct {
	Region uint64
	Line   uint64
}

// Actions counts the protocol work one access caused; the region layer
// prices each kind of action.
type Actions struct {
	DirectoryLookups int // home-directory consultations
	Invalidations    int // sharer caches invalidated
	Writebacks       int // dirty lines flushed to the home node
	Fetches          int // data transfers into the requesting cache
	Hits             int // served entirely from the local cache
}

// Add accumulates b into a.
func (a *Actions) Add(b Actions) {
	a.DirectoryLookups += b.DirectoryLookups
	a.Invalidations += b.Invalidations
	a.Writebacks += b.Writebacks
	a.Fetches += b.Fetches
	a.Hits += b.Hits
}

// Total returns the number of non-hit protocol actions.
func (a Actions) Total() int {
	return a.DirectoryLookups + a.Invalidations + a.Writebacks + a.Fetches
}

type lineState struct {
	sharers map[string]State // device → state (Invalid entries elided)
}

// Directory is the home directory for a set of coherent lines. It is
// safe for concurrent use; each line is serialized through the directory
// lock, mirroring a real home node's ordering point.
type Directory struct {
	mu    sync.Mutex
	lines map[LineID]*lineState

	stats Actions
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lines: make(map[LineID]*lineState)}
}

func (d *Directory) line(id LineID) *lineState {
	ls, ok := d.lines[id]
	if !ok {
		ls = &lineState{sharers: make(map[string]State)}
		d.lines[id] = ls
	}
	return ls
}

// Read performs a coherent read of a line by device dev and returns the
// protocol actions taken.
func (d *Directory) Read(dev string, id LineID) Actions {
	d.mu.Lock()
	defer d.mu.Unlock()
	ls := d.line(id)
	var a Actions
	switch ls.sharers[dev] {
	case Modified, Exclusive, Shared:
		a.Hits++
		d.stats.Add(a)
		return a
	}
	// Miss: consult the directory.
	a.DirectoryLookups++
	// If some other cache holds it Modified, it must write back and demote.
	for other, st := range ls.sharers {
		if other == dev {
			continue
		}
		if st == Modified {
			a.Writebacks++
			ls.sharers[other] = Shared
		} else if st == Exclusive {
			ls.sharers[other] = Shared
		}
	}
	a.Fetches++
	if len(ls.sharers) == 0 {
		ls.sharers[dev] = Exclusive
	} else {
		ls.sharers[dev] = Shared
	}
	d.stats.Add(a)
	return a
}

// Write performs a coherent write of a line by device dev.
func (d *Directory) Write(dev string, id LineID) Actions {
	d.mu.Lock()
	defer d.mu.Unlock()
	ls := d.line(id)
	var a Actions
	switch ls.sharers[dev] {
	case Modified:
		a.Hits++
		d.stats.Add(a)
		return a
	case Exclusive:
		// Silent upgrade E→M.
		ls.sharers[dev] = Modified
		a.Hits++
		d.stats.Add(a)
		return a
	}
	a.DirectoryLookups++
	// Invalidate every other sharer; dirty copies write back first.
	for other, st := range ls.sharers {
		if other == dev {
			continue
		}
		if st == Modified {
			a.Writebacks++
		}
		a.Invalidations++
		delete(ls.sharers, other)
	}
	if ls.sharers[dev] != Shared {
		a.Fetches++ // read-for-ownership brings the line in
	}
	ls.sharers[dev] = Modified
	d.stats.Add(a)
	return a
}

// Evict removes dev's copy of a line, writing back if dirty.
func (d *Directory) Evict(dev string, id LineID) Actions {
	d.mu.Lock()
	defer d.mu.Unlock()
	ls, ok := d.lines[id]
	var a Actions
	if !ok {
		return a
	}
	if st, held := ls.sharers[dev]; held {
		if st == Modified {
			a.Writebacks++
		}
		delete(ls.sharers, dev)
	}
	d.stats.Add(a)
	return a
}

// DropRegion forgets all lines of a region (region freed). Dirty lines are
// counted as writebacks.
func (d *Directory) DropRegion(region uint64) Actions {
	d.mu.Lock()
	defer d.mu.Unlock()
	var a Actions
	for id, ls := range d.lines {
		if id.Region != region {
			continue
		}
		for _, st := range ls.sharers {
			if st == Modified {
				a.Writebacks++
			}
		}
		delete(d.lines, id)
	}
	d.stats.Add(a)
	return a
}

// StateOf reports dev's state for a line (Invalid when absent).
func (d *Directory) StateOf(dev string, id LineID) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	ls, ok := d.lines[id]
	if !ok {
		return Invalid
	}
	return ls.sharers[dev]
}

// Sharers returns the number of caches holding the line in any valid state.
func (d *Directory) Sharers(id LineID) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	ls, ok := d.lines[id]
	if !ok {
		return 0
	}
	return len(ls.sharers)
}

// Stats returns cumulative protocol actions.
func (d *Directory) Stats() Actions {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// CheckInvariants validates the single-writer-multiple-reader discipline:
// a line in Modified or Exclusive anywhere has exactly one sharer, and
// Shared lines have no Modified/Exclusive holder.
func (d *Directory) CheckInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, ls := range d.lines {
		var mCount, eCount, sCount int
		for _, st := range ls.sharers {
			switch st {
			case Modified:
				mCount++
			case Exclusive:
				eCount++
			case Shared:
				sCount++
			case Invalid:
				return fmt.Errorf("coherence: line %v tracks an Invalid sharer", id)
			}
		}
		if mCount > 1 {
			return fmt.Errorf("coherence: line %v has %d writers", id, mCount)
		}
		if eCount > 1 {
			return fmt.Errorf("coherence: line %v has %d exclusive holders", id, eCount)
		}
		if (mCount == 1 || eCount == 1) && len(ls.sharers) != 1 {
			return fmt.Errorf("coherence: line %v mixes M/E with other sharers", id)
		}
		_ = sCount
	}
	return nil
}
