package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file is the cluster half of cross-shard region migration: a
// RegionPool turns the raw fabric verbs into the Exporter contract the
// region layer consumes. Export is AllocSlab + Lease + Write (the lease is
// claimed *before* the payload moves, so an initiator crash mid-migration
// leaves a leased slab a survivor can enumerate and adopt — never an
// orphan); Fetch is one Read, falling back to the durable backup when the
// remote host died; Drop is Handoff-free teardown. MIND's placement of
// memory-management state in the network shows up directly: slab ownership
// lives in the fabric control plane, and the NIC-side NodeStats counters
// price every byte a migration moves.

// ErrNoSpillTarget reports an export attempt with no eligible remote host
// (every candidate dead, partitioned, or over its watermark).
var ErrNoSpillTarget = errors.New("cluster: no spill target below watermark")

// Backup is the durable store a RegionPool mirrors exported payloads into,
// so a region survives the crash of the memory node hosting its slab.
// Narrower than fault.Store to avoid an import cycle (internal/fault builds
// on this package); internal/shard adapts fault.Store to it.
type Backup interface {
	Save(key string, data []byte) (time.Duration, error)
	Load(key string) ([]byte, time.Duration, error)
	Discard(key string)
}

// RegionPoolStats counts what a pool did on behalf of its shard.
type RegionPoolStats struct {
	Exported  int           // regions pushed to remote hosts
	Recalled  int           // regions fetched back
	HostLost  int           // fetches served from backup because the host died
	BytesOut  int64         // payload bytes written remotely
	BytesBack int64         // payload bytes read back
	VerbTime  time.Duration // virtual time of all fabric verbs issued
	Live      int           // remote placements currently held
}

// placement records where one exported region lives.
type placement struct {
	slab SlabID
	size int64
}

// RegionPool implements region.Exporter over the cluster fabric for one
// shard (the owner of every lease it takes).
type RegionPool struct {
	mu     sync.Mutex
	f      *Fabric
	owner  string
	spill  func(size int64) []string // candidate hosts, preference order
	mark   float64                   // per-host capacity watermark (0,1]
	backup Backup
	tel    *telemetry.Registry
	seq    uint64
	slabs  map[string]placement
	stats  RegionPoolStats
}

// NewRegionPool builds a pool. spill returns candidate memory nodes in
// preference order for a payload of the given size (typically the ring
// successors of the owning shard); watermark caps each host's fill fraction
// (<=0 defaults to 0.9). backup may be nil (no durability: a host crash
// then loses exported payloads).
func NewRegionPool(f *Fabric, owner string, spill func(size int64) []string, watermark float64, backup Backup, tel *telemetry.Registry) *RegionPool {
	if watermark <= 0 || watermark > 1 {
		watermark = 0.9
	}
	return &RegionPool{
		f:      f,
		owner:  owner,
		spill:  spill,
		mark:   watermark,
		backup: backup,
		tel:    tel,
		slabs:  make(map[string]placement),
	}
}

// Export pushes a payload to the first spill candidate below the capacity
// watermark. The control-plane ordering is deliberate: Lease before Write,
// so if the owner dies mid-migration the half-written slab is already
// leased and a survivor's adoption sweep reclaims it. The backup copy is
// saved before the token exists, so a fetch can always fall back to it.
func (p *RegionPool) Export(id uint64, data []byte) (string, time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	size := int64(len(data))
	if size == 0 {
		return "", 0, ErrInvalidInput
	}
	var total time.Duration
	for _, host := range p.spill(size) {
		used, cap, err := p.f.NodeUsage(host)
		if err != nil || cap <= 0 || float64(used+size)/float64(cap) > p.mark {
			continue
		}
		slab, d, err := p.f.AllocSlab(host, size)
		total += d
		if err != nil {
			continue // host filled up or died between the check and the verb
		}
		d, err = p.f.Lease(slab, p.owner)
		total += d
		if err != nil {
			d, _ = p.f.FreeSlab(slab)
			total += d
			continue
		}
		p.seq++
		token := fmt.Sprintf("%s#%d", p.owner, p.seq)
		if p.backup != nil {
			if d, err := p.backup.Save(token, data); err == nil {
				total += d
			}
		}
		d, err = p.f.Write(slab, 0, data)
		total += d
		if err != nil {
			// Host died between Alloc and Write; the lease makes the slab
			// adoptable, the backup keeps the payload. Treat as failure so
			// the region stays resident.
			p.f.Handoff(slab, p.owner, p.owner+"?dead") //nolint:errcheck // best-effort release
			if p.backup != nil {
				p.backup.Discard(token)
			}
			continue
		}
		p.slabs[token] = placement{slab: slab, size: size}
		p.stats.Exported++
		p.stats.BytesOut += size
		p.stats.VerbTime += total
		p.stats.Live = len(p.slabs)
		p.tel.Add(telemetry.LayerCluster, "region_exports", 1)
		p.tel.Add(telemetry.LayerCluster, "region_export_bytes", size)
		return token, total, nil
	}
	return "", total, fmt.Errorf("%w: %d bytes", ErrNoSpillTarget, size)
}

// Fetch reads a payload back with one fabric read. When the hosting node is
// unreachable (crashed or partitioned), the durable backup serves the bytes
// instead — the same recovery story as cross-shard partial replay.
func (p *RegionPool) Fetch(token string, buf []byte) (time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pl, ok := p.slabs[token]
	if !ok {
		return 0, fmt.Errorf("%w: token %q", ErrBadSlab, token)
	}
	if int64(len(buf)) < pl.size {
		return 0, fmt.Errorf("%w: buf %d < payload %d", ErrInvalidInput, len(buf), pl.size)
	}
	d, err := p.f.Read(pl.slab, 0, buf[:pl.size])
	if err == nil {
		p.stats.Recalled++
		p.stats.BytesBack += pl.size
		p.stats.VerbTime += d
		p.tel.Add(telemetry.LayerCluster, "region_recalls", 1)
		p.tel.Add(telemetry.LayerCluster, "region_recall_bytes", pl.size)
		return d, nil
	}
	if !errors.Is(err, ErrUnreachable) || p.backup == nil {
		return d, err
	}
	data, bd, berr := p.backup.Load(token)
	if berr != nil {
		return d, fmt.Errorf("cluster: host lost and backup failed: %v (host: %w)", berr, err)
	}
	copy(buf, data)
	p.stats.Recalled++
	p.stats.HostLost++
	p.stats.BytesBack += pl.size
	p.stats.VerbTime += d + bd
	p.tel.Add(telemetry.LayerCluster, "region_recalls", 1)
	p.tel.Add(telemetry.LayerCluster, "region_recall_bytes", pl.size)
	p.tel.Add(telemetry.LayerCluster, "region_host_lost", 1)
	return d + bd, nil
}

// Drop releases the remote placement under token. Unknown tokens and dead
// hosts are tolerated: the slab is gone either way, and the adoption sweep
// handles leases whose home node died.
func (p *RegionPool) Drop(token string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pl, ok := p.slabs[token]
	if !ok {
		return nil
	}
	delete(p.slabs, token)
	p.stats.Live = len(p.slabs)
	if p.backup != nil {
		p.backup.Discard(token)
	}
	if d, err := p.f.FreeSlab(pl.slab); err == nil {
		p.stats.VerbTime += d
	}
	return nil
}

// Slabs lists the pool's live remote placements, sorted by token.
func (p *RegionPool) Slabs() []SlabID {
	p.mu.Lock()
	defer p.mu.Unlock()
	toks := make([]string, 0, len(p.slabs))
	for t := range p.slabs {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	out := make([]SlabID, len(toks))
	for i, t := range toks {
		out[i] = p.slabs[t].slab
	}
	return out
}

// Abandon is the adoption sweep a survivor runs over a dead shard's pool:
// every lease still held by the dead owner is handed off to adopter and its
// slab freed. The payload is garbage without the dead shard's region table
// — recovery re-materializes regions from checkpoints, not from slabs — so
// reclaiming the memory is the correct disposition; the backup entries are
// likewise discarded. Returns the number of slabs adopted.
func (p *RegionPool) Abandon(adopter string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, slab := range p.f.LeasesOf(p.owner) {
		if adopter != "" {
			if _, err := p.f.Handoff(slab, p.owner, adopter); err != nil {
				continue // lost the race to another survivor
			}
		}
		p.f.FreeSlab(slab) //nolint:errcheck // host may be dead; lease map is already clean
		n++
	}
	for token := range p.slabs {
		if p.backup != nil {
			p.backup.Discard(token)
		}
		delete(p.slabs, token)
	}
	p.stats.Live = 0
	p.tel.Add(telemetry.LayerCluster, "region_exports_adopted", int64(n))
	return n
}

// Stats returns a snapshot of the pool's counters.
func (p *RegionPool) Stats() RegionPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
