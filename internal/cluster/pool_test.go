package cluster

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeBackup is an in-memory durable store.
type fakeBackup struct {
	mu    sync.Mutex
	data  map[string][]byte
	saves int
}

func newFakeBackup() *fakeBackup { return &fakeBackup{data: make(map[string][]byte)} }

func (b *fakeBackup) Save(key string, data []byte) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data[key] = append([]byte(nil), data...)
	b.saves++
	return time.Microsecond, nil
}

func (b *fakeBackup) Load(key string) ([]byte, time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.data[key]
	if !ok {
		return nil, 0, errors.New("fakeBackup: missing")
	}
	return append([]byte(nil), d...), time.Microsecond, nil
}

func (b *fakeBackup) Discard(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.data, key)
}

func (b *fakeBackup) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

func poolFixture(t *testing.T, hosts []string, capacity int64, mark float64, bk Backup) (*Fabric, *RegionPool) {
	t.Helper()
	f := NewFabric(Config{})
	for _, h := range hosts {
		if err := f.AddNode(h, capacity); err != nil {
			t.Fatal(err)
		}
	}
	spill := func(int64) []string { return hosts }
	return f, NewRegionPool(f, "shard0", spill, mark, bk, telemetry.NewRegistry())
}

func TestRegionPoolRoundtrip(t *testing.T) {
	f, p := poolFixture(t, []string{"pool0"}, 1<<20, 0.9, nil)
	payload := bytes.Repeat([]byte{0xee}, 4096)

	tok, cost, err := p.Export(7, payload)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("export verbs must cost virtual time")
	}
	// Ownership is in the fabric control plane.
	slabs := p.Slabs()
	if len(slabs) != 1 {
		t.Fatalf("pool holds %d slabs, want 1", len(slabs))
	}
	if owner, ok := f.Owner(slabs[0]); !ok || owner != "shard0" {
		t.Errorf("slab lease = %q, %v; want shard0", owner, ok)
	}
	if got := f.LeasesOf("shard0"); len(got) != 1 || got[0] != slabs[0] {
		t.Errorf("LeasesOf = %v, want [%v]", got, slabs[0])
	}
	// The NIC-side counters saw the payload.
	ns, err := f.NodeStats("pool0")
	if err != nil {
		t.Fatal(err)
	}
	if ns.Bytes < uint64(len(payload)) {
		t.Errorf("NodeStats.Bytes = %d, want >= %d", ns.Bytes, len(payload))
	}

	buf := make([]byte, len(payload))
	if _, err := p.Fetch(tok, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("fetched payload differs")
	}

	if err := p.Drop(tok); err != nil {
		t.Fatal(err)
	}
	if used, _, _ := f.NodeUsage("pool0"); used != 0 {
		t.Errorf("node still holds %d bytes after drop", used)
	}
	if err := p.Drop("never-issued"); err != nil {
		t.Error("unknown tokens must be tolerated:", err)
	}

	st := p.Stats()
	if st.Exported != 1 || st.Recalled != 1 || st.BytesOut != 4096 || st.BytesBack != 4096 || st.Live != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegionPoolWatermarkAndSpillOrder(t *testing.T) {
	// small can hold one 4KiB payload below a 0.5 watermark; big takes the
	// overflow.
	f := NewFabric(Config{})
	if err := f.AddNode("small", 16<<10); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNode("big", 1<<20); err != nil {
		t.Fatal(err)
	}
	p := NewRegionPool(f, "shard0", func(int64) []string { return []string{"small", "big"} }, 0.5, nil, nil)

	payload := make([]byte, 4096)
	if _, _, err := p.Export(1, payload); err != nil {
		t.Fatal(err)
	}
	// small is now at 4/16 KiB; another 4 KiB would hit 0.5 exactly — still
	// allowed; a third must spill to big.
	if _, _, err := p.Export(2, payload); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Export(3, payload); err != nil {
		t.Fatal(err)
	}
	if used, _, _ := f.NodeUsage("small"); used != 8192 {
		t.Errorf("small used = %d, want 8192 (watermark must cap it)", used)
	}
	if used, _, _ := f.NodeUsage("big"); used != 4096 {
		t.Errorf("big used = %d, want 4096 (spill target)", used)
	}

	// No candidate below watermark → ErrNoSpillTarget, region stays home.
	pFull := NewRegionPool(f, "shard1", func(int64) []string { return []string{"small"} }, 0.5, nil, nil)
	if _, _, err := pFull.Export(4, payload); !errors.Is(err, ErrNoSpillTarget) {
		t.Errorf("export over watermark = %v, want ErrNoSpillTarget", err)
	}
}

func TestRegionPoolFetchFallsBackToBackupOnHostCrash(t *testing.T) {
	bk := newFakeBackup()
	f, p := poolFixture(t, []string{"pool0"}, 1<<20, 0.9, bk)
	payload := []byte("survives the host")

	tok, _, err := p.Export(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bk.len() != 1 {
		t.Fatalf("backup holds %d entries after export, want 1", bk.len())
	}
	if err := f.Crash("pool0"); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, len(payload))
	if _, err := p.Fetch(tok, buf); err != nil {
		t.Fatal("fetch after host crash must fall back to backup:", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("backup payload differs")
	}
	if st := p.Stats(); st.HostLost != 1 {
		t.Errorf("HostLost = %d, want 1", st.HostLost)
	}
	// Without a backup the loss is surfaced.
	f2, p2 := poolFixture(t, []string{"pool0"}, 1<<20, 0.9, nil)
	tok2, _, err := p2.Export(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	f2.Crash("pool0") //nolint:errcheck // node exists
	if _, err := p2.Fetch(tok2, buf); !errors.Is(err, ErrUnreachable) {
		t.Errorf("fetch with no backup = %v, want ErrUnreachable", err)
	}
}

func TestRegionPoolAbandonAdoptsLeases(t *testing.T) {
	bk := newFakeBackup()
	f, p := poolFixture(t, []string{"pool0"}, 1<<20, 0.9, bk)
	for i := uint64(0); i < 3; i++ {
		if _, _, err := p.Export(i, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(f.LeasesOf("shard0")); got != 3 {
		t.Fatalf("LeasesOf = %d, want 3", got)
	}

	// shard0 dies; a survivor adopts its holdings and reclaims the memory.
	if n := p.Abandon("shard1"); n != 3 {
		t.Fatalf("Abandon adopted %d slabs, want 3", n)
	}
	if got := len(f.LeasesOf("shard0")); got != 0 {
		t.Errorf("dead owner still holds %d leases", got)
	}
	if used, _, _ := f.NodeUsage("pool0"); used != 0 {
		t.Errorf("pool node still holds %d bytes after adoption", used)
	}
	if bk.len() != 0 {
		t.Errorf("backup still holds %d entries after adoption", bk.len())
	}
	if st := p.Stats(); st.Live != 0 {
		t.Errorf("Live = %d after abandon, want 0", st.Live)
	}
}
