// Package cluster simulates the disaggregated memory fabric: memory nodes
// exporting slabs of byte-addressable storage, reached from compute nodes
// through one-sided verbs (Read/Write/CompareAndSwap) in the style of RDMA.
//
// The paper's challenge 8(3) — faults are common "in data centers having
// thousands of interconnected compute and memory devices" — is modeled with
// injectable node crashes and network partitions; internal/fault builds
// replication and erasure coding on top of these verbs and recovers through
// them. Data lives in real host memory; latency is virtual (a cost the
// caller accumulates), so tests and benches are deterministic.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Errors returned by fabric verbs. ErrUnreachable covers both crashed nodes
// and partitions, matching what a real initiator observes (timeouts).
var (
	ErrUnreachable  = errors.New("cluster: node unreachable")
	ErrBadSlab      = errors.New("cluster: unknown slab")
	ErrOutOfRange   = errors.New("cluster: access out of slab range")
	ErrCASMismatch  = errors.New("cluster: compare-and-swap mismatch")
	ErrSlabExists   = errors.New("cluster: slab already exists")
	ErrOutOfMemory  = errors.New("cluster: memory node capacity exhausted")
	ErrUnknownNode  = errors.New("cluster: unknown node")
	ErrInvalidInput = errors.New("cluster: invalid argument")
	ErrLeaseHeld    = errors.New("cluster: slab lease held by another owner")
)

// SlabID names a slab on a specific node.
type SlabID struct {
	Node string
	Slab uint64
}

func (s SlabID) String() string { return fmt.Sprintf("%s/slab%d", s.Node, s.Slab) }

// node is one memory node: capacity plus its exported slabs.
type node struct {
	capacity int64
	used     int64
	alive    bool
	slabs    map[uint64][]byte
	nextSlab uint64
	verbs    uint64 // verbs executed at this node (survives crash: NIC-side)
	bytes    uint64 // payload bytes moved to/from this node
}

// NodeStats is the per-node slice of the fabric counters: verbs executed at
// a node and payload bytes moved to or from it. The counters live in the
// interconnect (NIC-side), so they survive node crashes and restarts.
type NodeStats struct {
	Verbs uint64
	Bytes uint64
}

// Fabric is the cluster interconnect plus the set of memory nodes.
type Fabric struct {
	mu         sync.Mutex
	nodes      map[string]*node
	partition  map[string]bool   // nodes cut off from the initiators
	leases     map[SlabID]string // slab ownership registry, held in the fabric
	rtt        time.Duration     // one-sided verb round trip
	bwPerVerb  float64           // bytes/second for payload transfer
	verbCount  uint64
	bytesMoved uint64
}

// Config tunes fabric performance.
type Config struct {
	RTT       time.Duration // verb round-trip latency, default 3µs
	Bandwidth float64       // payload bandwidth bytes/s, default 12 GB/s
}

// NewFabric builds an empty fabric.
func NewFabric(cfg Config) *Fabric {
	if cfg.RTT <= 0 {
		cfg.RTT = 3 * time.Microsecond
	}
	if cfg.Bandwidth <= 0 {
		cfg.Bandwidth = 12e9
	}
	return &Fabric{
		nodes:     make(map[string]*node),
		partition: make(map[string]bool),
		leases:    make(map[SlabID]string),
		rtt:       cfg.RTT,
		bwPerVerb: cfg.Bandwidth,
	}
}

// AddNode registers a memory node with the given capacity.
func (f *Fabric) AddNode(name string, capacity int64) error {
	if name == "" || capacity <= 0 {
		return ErrInvalidInput
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[name]; ok {
		return fmt.Errorf("%w: %s", ErrSlabExists, name)
	}
	f.nodes[name] = &node{capacity: capacity, alive: true, slabs: make(map[uint64][]byte)}
	return nil
}

// Nodes lists node names, alive or not, sorted for determinism.
func (f *Fabric) Nodes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.nodes))
	for n := range f.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AliveNodes lists reachable nodes.
func (f *Fabric) AliveNodes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for name, n := range f.nodes {
		if n.alive && !f.partition[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// reachable must be called with f.mu held.
func (f *Fabric) reachable(name string) (*node, error) {
	n, ok := f.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	if !n.alive || f.partition[name] {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, name)
	}
	return n, nil
}

// count records one executed verb against the fabric totals and the target
// node's NIC-side counters. Must be called with f.mu held.
func (f *Fabric) count(n *node, payload int) {
	f.verbCount++
	n.verbs++
	if payload > 0 {
		f.bytesMoved += uint64(payload)
		n.bytes += uint64(payload)
	}
}

// AllocSlab carves size bytes out of a node and returns its slab handle and
// the virtual time the verb took.
func (f *Fabric) AllocSlab(nodeName string, size int64) (SlabID, time.Duration, error) {
	if size <= 0 {
		return SlabID{}, 0, ErrInvalidInput
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.reachable(nodeName)
	if err != nil {
		return SlabID{}, f.rtt, err
	}
	if n.used+size > n.capacity {
		return SlabID{}, f.rtt, fmt.Errorf("%w: %s (%d used of %d, want %d)", ErrOutOfMemory, nodeName, n.used, n.capacity, size)
	}
	id := n.nextSlab
	n.nextSlab++
	n.slabs[id] = make([]byte, size)
	n.used += size
	f.count(n, 0)
	return SlabID{Node: nodeName, Slab: id}, f.rtt, nil
}

// FreeSlab releases a slab.
func (f *Fabric) FreeSlab(id SlabID) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.reachable(id.Node)
	if err != nil {
		return f.rtt, err
	}
	buf, ok := n.slabs[id.Slab]
	if !ok {
		return f.rtt, fmt.Errorf("%w: %s", ErrBadSlab, id)
	}
	delete(n.slabs, id.Slab)
	n.used -= int64(len(buf))
	delete(f.leases, id)
	f.count(n, 0)
	return f.rtt, nil
}

// xferTime prices moving n payload bytes.
func (f *Fabric) xferTime(n int) time.Duration {
	return f.rtt + time.Duration(float64(n)/f.bwPerVerb*float64(time.Second))
}

// Read copies slab bytes [off, off+len(buf)) into buf — a one-sided RDMA
// read. Returns the virtual verb duration.
func (f *Fabric) Read(id SlabID, off int64, buf []byte) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.reachable(id.Node)
	if err != nil {
		return f.rtt, err
	}
	slab, ok := n.slabs[id.Slab]
	if !ok {
		return f.rtt, fmt.Errorf("%w: %s", ErrBadSlab, id)
	}
	if off < 0 || off+int64(len(buf)) > int64(len(slab)) {
		return f.rtt, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+int64(len(buf)), len(slab))
	}
	copy(buf, slab[off:])
	f.count(n, len(buf))
	return f.xferTime(len(buf)), nil
}

// Write copies buf into the slab at off — a one-sided RDMA write.
func (f *Fabric) Write(id SlabID, off int64, buf []byte) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.reachable(id.Node)
	if err != nil {
		return f.rtt, err
	}
	slab, ok := n.slabs[id.Slab]
	if !ok {
		return f.rtt, fmt.Errorf("%w: %s", ErrBadSlab, id)
	}
	if off < 0 || off+int64(len(buf)) > int64(len(slab)) {
		return f.rtt, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, off, off+int64(len(buf)), len(slab))
	}
	copy(slab[off:], buf)
	f.count(n, len(buf))
	return f.xferTime(len(buf)), nil
}

// CompareAndSwap atomically replaces the 8 bytes at off with swap if they
// equal compare — the fabric's synchronization primitive (used for far
// latches in Global State spillover).
func (f *Fabric) CompareAndSwap(id SlabID, off int64, compare, swap uint64) (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.reachable(id.Node)
	if err != nil {
		return f.rtt, err
	}
	slab, ok := n.slabs[id.Slab]
	if !ok {
		return f.rtt, fmt.Errorf("%w: %s", ErrBadSlab, id)
	}
	if off < 0 || off+8 > int64(len(slab)) {
		return f.rtt, fmt.Errorf("%w: CAS at %d of %d", ErrOutOfRange, off, len(slab))
	}
	cur := beUint64(slab[off:])
	if cur != compare {
		// A failed compare is still an executed verb: the request traversed
		// the fabric and the node performed the comparison.
		f.count(n, 0)
		return f.rtt, fmt.Errorf("%w: have %d, want %d", ErrCASMismatch, cur, compare)
	}
	putBEUint64(slab[off:], swap)
	f.count(n, 8)
	return f.rtt, nil
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func putBEUint64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// Crash marks a node dead, losing its volatile contents.
func (f *Fabric) Crash(nodeName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[nodeName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	n.alive = false
	n.slabs = make(map[uint64][]byte) // volatile memory is gone
	n.used = 0
	return nil
}

// Restart brings a crashed node back empty.
func (f *Fabric) Restart(nodeName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[nodeName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	n.alive = true
	return nil
}

// Partition cuts a node off without losing its memory.
func (f *Fabric) Partition(nodeName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[nodeName]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	f.partition[nodeName] = true
	return nil
}

// Heal reconnects a partitioned node.
func (f *Fabric) Heal(nodeName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[nodeName]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	delete(f.partition, nodeName)
	return nil
}

// NodeUsage returns (used, capacity) for a node regardless of liveness.
func (f *Fabric) NodeUsage(nodeName string) (int64, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[nodeName]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	return n.used, n.capacity, nil
}

// Stats reports fabric-wide verb and byte counters.
func (f *Fabric) Stats() (verbs, bytes uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.verbCount, f.bytesMoved
}

// StatsByNode reports the per-node verb/byte counters for every registered
// node, alive or not.
func (f *Fabric) StatsByNode() map[string]NodeStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]NodeStats, len(f.nodes))
	for name, n := range f.nodes {
		out[name] = NodeStats{Verbs: n.verbs, Bytes: n.bytes}
	}
	return out
}

// NodeStats reports the verb/byte counters of one node.
func (f *Fabric) NodeStats(nodeName string) (NodeStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[nodeName]
	if !ok {
		return NodeStats{}, fmt.Errorf("%w: %s", ErrUnknownNode, nodeName)
	}
	return NodeStats{Verbs: n.verbs, Bytes: n.bytes}, nil
}

// Lease claims ownership of a slab for an initiator. The registry lives in
// the fabric control plane (MIND's "memory-management logic belongs in the
// network"), so ownership metadata survives the death of the slab's home
// node. Claiming an unleased slab or re-claiming one's own lease succeeds;
// claiming another owner's lease fails. Costs one round trip.
func (f *Fabric) Lease(id SlabID, owner string) (time.Duration, error) {
	if owner == "" {
		return 0, ErrInvalidInput
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[id.Node]; !ok {
		return f.rtt, fmt.Errorf("%w: %s", ErrUnknownNode, id.Node)
	}
	if cur, ok := f.leases[id]; ok && cur != owner {
		return f.rtt, fmt.Errorf("%w: %s leased by %s", ErrLeaseHeld, id, cur)
	}
	f.leases[id] = owner
	f.verbCount++
	return f.rtt, nil
}

// Owner reports the current lease holder of a slab, if any.
func (f *Fabric) Owner(id SlabID) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	owner, ok := f.leases[id]
	return owner, ok
}

// LeasesOf lists the slabs currently leased by an owner, sorted for
// determinism. The registry is fabric-resident, so a survivor can enumerate
// a dead shard's holdings to adopt them.
func (f *Fabric) LeasesOf(owner string) []SlabID {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []SlabID
	for id, o := range f.leases {
		if o == owner {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Slab < out[j].Slab
	})
	return out
}

// Handoff transfers a slab lease from one owner to another — the ownership
// half of a cross-shard region transfer. It is a compare-and-swap on the
// control plane: it fails unless `from` currently holds the lease. Because
// the registry is fabric-resident, a handoff succeeds even when the slab's
// home node is crashed or partitioned (a survivor adopting a dead shard's
// slabs is exactly the failover case). Costs one round trip.
func (f *Fabric) Handoff(id SlabID, from, to string) (time.Duration, error) {
	if from == "" || to == "" {
		return 0, ErrInvalidInput
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur, ok := f.leases[id]
	if !ok || cur != from {
		return f.rtt, fmt.Errorf("%w: %s held by %q, not %q", ErrLeaseHeld, id, cur, from)
	}
	f.leases[id] = to
	f.verbCount++
	return f.rtt, nil
}
