package cluster

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func newTestFabric(t *testing.T, nodes int) *Fabric {
	t.Helper()
	f := NewFabric(Config{})
	for i := 0; i < nodes; i++ {
		if err := f.AddNode(nodeName(i), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func nodeName(i int) string { return "mem" + string(rune('0'+i)) }

func TestAddNodeValidation(t *testing.T) {
	f := NewFabric(Config{})
	if err := f.AddNode("", 10); err == nil {
		t.Error("empty name must fail")
	}
	if err := f.AddNode("a", 0); err == nil {
		t.Error("zero capacity must fail")
	}
	if err := f.AddNode("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNode("a", 10); err == nil {
		t.Error("duplicate node must fail")
	}
}

func TestSlabLifecycle(t *testing.T) {
	f := newTestFabric(t, 1)
	id, d, err := f.AllocSlab("mem0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("alloc verb must take virtual time")
	}
	used, capacity, err := f.NodeUsage("mem0")
	if err != nil || used != 4096 || capacity != 1<<20 {
		t.Errorf("usage = %d/%d err=%v", used, capacity, err)
	}
	if _, err := f.FreeSlab(id); err != nil {
		t.Fatal(err)
	}
	used, _, _ = f.NodeUsage("mem0")
	if used != 0 {
		t.Errorf("usage after free = %d", used)
	}
	if _, err := f.FreeSlab(id); err == nil {
		t.Error("double free must fail")
	}
}

func TestAllocCapacity(t *testing.T) {
	f := newTestFabric(t, 1)
	if _, _, err := f.AllocSlab("mem0", 1<<21); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized alloc err = %v, want ErrOutOfMemory", err)
	}
	if _, _, err := f.AllocSlab("mem0", 0); !errors.Is(err, ErrInvalidInput) {
		t.Error("zero alloc must be invalid")
	}
	if _, _, err := f.AllocSlab("nope", 64); !errors.Is(err, ErrUnknownNode) {
		t.Error("unknown node must fail")
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, _ := f.AllocSlab("mem0", 1024)
	payload := []byte("the quick brown fox")
	if _, err := f.Write(id, 100, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f.Read(id, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read back %q, want %q", got, payload)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, _ := f.AllocSlab("mem0", 64)
	buf := make([]byte, 65)
	if _, err := f.Read(id, 0, buf); !errors.Is(err, ErrOutOfRange) {
		t.Error("oversized read must fail")
	}
	if _, err := f.Write(id, -1, buf[:1]); !errors.Is(err, ErrOutOfRange) {
		t.Error("negative offset must fail")
	}
	if _, err := f.Read(SlabID{Node: "mem0", Slab: 999}, 0, buf[:1]); !errors.Is(err, ErrBadSlab) {
		t.Error("unknown slab must fail")
	}
}

func TestVerbTimeScalesWithPayload(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, _ := f.AllocSlab("mem0", 1<<20)
	small := make([]byte, 64)
	big := make([]byte, 1<<19)
	dSmall, err := f.Read(id, 0, small)
	if err != nil {
		t.Fatal(err)
	}
	dBig, err := f.Read(id, 0, big)
	if err != nil {
		t.Fatal(err)
	}
	if dBig <= dSmall {
		t.Errorf("large verb (%v) must cost more than small (%v)", dBig, dSmall)
	}
	if dSmall < 3*time.Microsecond {
		t.Errorf("every verb pays at least the RTT, got %v", dSmall)
	}
}

func TestCompareAndSwap(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, _ := f.AllocSlab("mem0", 64)
	if _, err := f.CompareAndSwap(id, 0, 0, 42); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.Read(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	if got := beUint64(buf); got != 42 {
		t.Errorf("CAS stored %d, want 42", got)
	}
	if _, err := f.CompareAndSwap(id, 0, 0, 7); !errors.Is(err, ErrCASMismatch) {
		t.Error("stale compare must fail")
	}
	if _, err := f.CompareAndSwap(id, 60, 0, 7); !errors.Is(err, ErrOutOfRange) {
		t.Error("CAS straddling the slab end must fail")
	}
}

func TestCrashLosesDataAndRestartIsEmpty(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, _ := f.AllocSlab("mem0", 64)
	if _, err := f.Write(id, 0, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("mem0"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(id, 0, make([]byte, 8)); !errors.Is(err, ErrUnreachable) {
		t.Errorf("read from crashed node err = %v, want ErrUnreachable", err)
	}
	if err := f.Restart("mem0"); err != nil {
		t.Fatal(err)
	}
	// Volatile contents are gone: the slab no longer exists.
	if _, err := f.Read(id, 0, make([]byte, 8)); !errors.Is(err, ErrBadSlab) {
		t.Errorf("read after restart err = %v, want ErrBadSlab", err)
	}
	used, _, _ := f.NodeUsage("mem0")
	if used != 0 {
		t.Error("restarted node must be empty")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	f := newTestFabric(t, 2)
	id, _, _ := f.AllocSlab("mem1", 64)
	if _, err := f.Write(id, 0, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := f.Partition("mem1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(id, 0, make([]byte, 8)); !errors.Is(err, ErrUnreachable) {
		t.Error("partitioned node must be unreachable")
	}
	if got := f.AliveNodes(); len(got) != 1 || got[0] != "mem0" {
		t.Errorf("alive = %v, want [mem0]", got)
	}
	if err := f.Heal("mem1"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := f.Read(id, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "survives" {
		t.Error("partition must not lose data")
	}
}

func TestFaultOpsUnknownNode(t *testing.T) {
	f := newTestFabric(t, 1)
	for _, op := range []func(string) error{f.Crash, f.Restart, f.Partition, f.Heal} {
		if err := op("ghost"); !errors.Is(err, ErrUnknownNode) {
			t.Error("fault ops on unknown nodes must fail")
		}
	}
}

func TestNodesListing(t *testing.T) {
	f := newTestFabric(t, 3)
	if got := f.Nodes(); len(got) != 3 || got[0] != "mem0" {
		t.Errorf("Nodes() = %v", got)
	}
	f.Crash("mem1")
	if got := f.AliveNodes(); len(got) != 2 {
		t.Errorf("alive = %v", got)
	}
	if got := f.Nodes(); len(got) != 3 {
		t.Error("Nodes() lists crashed nodes too")
	}
}

func TestStats(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, _ := f.AllocSlab("mem0", 1024)
	f.Write(id, 0, make([]byte, 100))
	f.Read(id, 0, make([]byte, 100))
	verbs, moved := f.Stats()
	if verbs != 3 { // alloc + write + read
		t.Errorf("verbs = %d, want 3", verbs)
	}
	if moved != 200 {
		t.Errorf("bytes = %d, want 200", moved)
	}
}

// Property: any write/read sequence round-trips bytes exactly, regardless of
// offset and length, while in range.
func TestReadWriteProperty(t *testing.T) {
	f := NewFabric(Config{})
	if err := f.AddNode("m", 1<<16); err != nil {
		t.Fatal(err)
	}
	id, _, _ := f.AllocSlab("m", 1<<16)
	fn := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % (1<<16 - int64(len(data)))
		if o < 0 {
			return true
		}
		if _, err := f.Write(id, o, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := f.Read(id, o, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBigEndianHelpers(t *testing.T) {
	buf := make([]byte, 8)
	putBEUint64(buf, 0x0123456789abcdef)
	if beUint64(buf) != 0x0123456789abcdef {
		t.Error("big-endian round trip failed")
	}
}

func BenchmarkOneSidedRead(b *testing.B) {
	f := NewFabric(Config{})
	if err := f.AddNode("m", 1<<26); err != nil {
		b.Fatal(err)
	}
	id, _, _ := f.AllocSlab("m", 1<<26)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Read(id, int64(i%1000)*4096, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPerNodeStatsAttribution(t *testing.T) {
	f := newTestFabric(t, 2)
	a, _, err := f.AllocSlab(nodeName(0), 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := f.AllocSlab(nodeName(1), 4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := f.Write(a, 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(a, 0, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b, 0, buf[:40]); err != nil {
		t.Fatal(err)
	}
	s0, err := f.NodeStats(nodeName(0))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := f.NodeStats(nodeName(1))
	if err != nil {
		t.Fatal(err)
	}
	if s0.Verbs != 3 || s0.Bytes != 200 { // alloc + write + read
		t.Errorf("node0 stats = %+v, want {Verbs:3 Bytes:200}", s0)
	}
	if s1.Verbs != 2 || s1.Bytes != 40 { // alloc + write
		t.Errorf("node1 stats = %+v, want {Verbs:2 Bytes:40}", s1)
	}
	verbs, bytes := f.Stats()
	var sumV, sumB uint64
	for _, s := range f.StatsByNode() {
		sumV += s.Verbs
		sumB += s.Bytes
	}
	if sumV != verbs || sumB != bytes {
		t.Errorf("per-node totals (%d verbs, %d bytes) != fabric totals (%d, %d)",
			sumV, sumB, verbs, bytes)
	}
	if _, err := f.NodeStats("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: err = %v, want ErrUnknownNode", err)
	}
}

func TestCASMismatchCountsAsVerb(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, err := f.AllocSlab(nodeName(0), 64)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := f.Stats()
	if _, err := f.CompareAndSwap(id, 0, 7, 9); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS err = %v, want ErrCASMismatch", err)
	}
	after, _ := f.Stats()
	if after != before+1 {
		t.Errorf("failed CAS did not count as a verb: %d -> %d", before, after)
	}
	st, _ := f.NodeStats(nodeName(0))
	if st.Verbs != 2 { // alloc + failed CAS
		t.Errorf("node verbs = %d, want 2", st.Verbs)
	}
	if _, err := f.CompareAndSwap(id, 0, 0, 9); err != nil {
		t.Fatal(err)
	}
	after2, _ := f.Stats()
	if after2 != after+1 {
		t.Errorf("successful CAS did not count as a verb: %d -> %d", after, after2)
	}
}

func TestSlabLeaseAndHandoff(t *testing.T) {
	f := newTestFabric(t, 1)
	id, _, err := f.AllocSlab(nodeName(0), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Owner(id); ok {
		t.Fatal("fresh slab must be unleased")
	}
	if _, err := f.Lease(id, "shard0"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lease(id, "shard0"); err != nil {
		t.Fatalf("re-leasing one's own slab must succeed: %v", err)
	}
	if _, err := f.Lease(id, "shard1"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("stealing a lease: err = %v, want ErrLeaseHeld", err)
	}
	if _, err := f.Handoff(id, "shard1", "shard2"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("handoff from non-owner: err = %v, want ErrLeaseHeld", err)
	}
	if d, err := f.Handoff(id, "shard0", "shard1"); err != nil || d <= 0 {
		t.Fatalf("handoff = (%v, %v), want priced success", d, err)
	}
	if owner, _ := f.Owner(id); owner != "shard1" {
		t.Fatalf("owner = %q, want shard1", owner)
	}
	// The ownership registry lives in the fabric: a handoff must succeed
	// even when the slab's home node is dead (failover adoption).
	if err := f.Crash(nodeName(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Handoff(id, "shard1", "shard2"); err != nil {
		t.Fatalf("handoff with crashed home node: %v", err)
	}
	if owner, _ := f.Owner(id); owner != "shard2" {
		t.Fatalf("owner after crash handoff = %q, want shard2", owner)
	}
	if err := f.Restart(nodeName(0)); err != nil {
		t.Fatal(err)
	}
	// Freeing a slab clears its lease.
	id2, _, err := f.AllocSlab(nodeName(0), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lease(id2, "shard0"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.FreeSlab(id2); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Owner(id2); ok {
		t.Error("freed slab must be unleased")
	}
}
