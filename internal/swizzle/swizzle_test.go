package swizzle

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func newHeap(t *testing.T, localCap int64) *Heap {
	t.Helper()
	h, err := NewHeap(Config{LocalCapacity: localCap})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTaggedPtrPacking(t *testing.T) {
	p := makePtr(true, 123, 0xdeadbeef)
	if !p.Remote() || p.Hotness() != 123 || p.Loc() != 0xdeadbeef {
		t.Errorf("packing broken: %s", p)
	}
	p = makePtr(false, 0, 0)
	if p.Remote() || p.Hotness() != 0 || p.Loc() != 0 {
		t.Error("zero pointer broken")
	}
}

func TestTaggedPtrHotnessSaturates(t *testing.T) {
	p := makePtr(false, hotSaturate, 1)
	p = p.withHotness(p.Hotness() + 1)
	if p.Hotness() != hotSaturate {
		t.Errorf("hotness must saturate at %d, got %d", hotSaturate, p.Hotness())
	}
	p = p.withHotness(-5)
	if p.Hotness() != 0 {
		t.Error("hotness must clamp at 0")
	}
}

// Property: packing round-trips all fields for any input.
func TestTaggedPtrRoundtripProperty(t *testing.T) {
	f := func(remote bool, hot uint16, loc uint64) bool {
		h := int(hot) % (hotSaturate + 1)
		l := loc & locMask
		p := makePtr(remote, h, l)
		return p.Remote() == remote && p.Hotness() == h && p.Loc() == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllocSpillsToRemote(t *testing.T) {
	h := newHeap(t, 100)
	a, err := h.Alloc(make([]byte, 60))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(make([]byte, 60)) // doesn't fit locally anymore
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := h.Ptr(a)
	pb, _ := h.Ptr(b)
	if pa.Remote() {
		t.Error("first object must be local")
	}
	if !pb.Remote() {
		t.Error("overflow object must be remote")
	}
}

func TestAccessCostsAndHotness(t *testing.T) {
	h := newHeap(t, 100)
	local, _ := h.Alloc([]byte("near"))
	remote, _ := h.Alloc(make([]byte, 200)) // forced remote
	_, dLocal, err := h.Access(local)
	if err != nil {
		t.Fatal(err)
	}
	_, dRemote, err := h.Access(remote)
	if err != nil {
		t.Fatal(err)
	}
	if dRemote <= dLocal {
		t.Errorf("remote access (%v) must cost more than local (%v)", dRemote, dLocal)
	}
	p, _ := h.Ptr(local)
	if p.Hotness() != 1 {
		t.Errorf("hotness after one access = %d, want 1", p.Hotness())
	}
}

func TestAccessReturnsData(t *testing.T) {
	h := newHeap(t, 1000)
	id, _ := h.Alloc([]byte("payload"))
	got, _, err := h.Access(id)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Access = %q, %v", got, err)
	}
}

func TestUnknownObjectErrors(t *testing.T) {
	h := newHeap(t, 100)
	if _, _, err := h.Access(99); !errors.Is(err, ErrNoObject) {
		t.Error("access of unknown object must fail")
	}
	if _, err := h.Ptr(99); !errors.Is(err, ErrNoObject) {
		t.Error("ptr of unknown object must fail")
	}
	if err := h.Free(99); !errors.Is(err, ErrNoObject) {
		t.Error("free of unknown object must fail")
	}
	if _, err := h.Alloc(nil); err == nil {
		t.Error("empty alloc must fail")
	}
	if _, err := NewHeap(Config{}); err == nil {
		t.Error("zero local capacity must fail")
	}
}

func TestSweepPromotesHotRemote(t *testing.T) {
	h, err := NewHeap(Config{LocalCapacity: 64, PromoteAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := h.Alloc(make([]byte, 60)) // local
	hot, _ := h.Alloc(make([]byte, 60))  // remote
	for i := 0; i < 5; i++ {
		if _, _, err := h.Access(hot); err != nil {
			t.Fatal(err)
		}
	}
	promoted, demoted, cost := h.Sweep()
	if promoted != 1 || demoted != 1 {
		t.Errorf("sweep = %d promoted / %d demoted, want 1/1", promoted, demoted)
	}
	if cost <= 0 {
		t.Error("migrations must cost time")
	}
	ph, _ := h.Ptr(hot)
	pc, _ := h.Ptr(cold)
	if ph.Remote() {
		t.Error("hot object must be swizzled local")
	}
	if !pc.Remote() {
		t.Error("cold object must be unswizzled remote")
	}
	// Data survives migration.
	data, _, err := h.Access(hot)
	if err != nil || len(data) != 60 {
		t.Errorf("promoted object unreadable: %v", err)
	}
}

func TestSweepDecaysHotness(t *testing.T) {
	h := newHeap(t, 1000)
	id, _ := h.Alloc([]byte("x"))
	for i := 0; i < 8; i++ {
		h.Access(id)
	}
	h.Sweep()
	p, _ := h.Ptr(id)
	if p.Hotness() != 4 {
		t.Errorf("hotness after decay = %d, want 4", p.Hotness())
	}
}

func TestSweepRespectsCapacity(t *testing.T) {
	h, err := NewHeap(Config{LocalCapacity: 100, PromoteAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One local 90-byte object, hot; one remote 200-byte object, hotter —
	// but it can never fit locally.
	local, _ := h.Alloc(make([]byte, 90))
	big, _ := h.Alloc(make([]byte, 200))
	h.Access(local)
	h.Access(local)
	for i := 0; i < 10; i++ {
		h.Access(big)
	}
	h.Sweep()
	pl, _ := h.Ptr(local)
	pb, _ := h.Ptr(big)
	if pb.Remote() == false {
		t.Error("object larger than the arena must stay remote")
	}
	if pl.Remote() {
		t.Error("local object must not be evicted for an unpromotable one")
	}
}

func TestFreeReclaimsLocalSpace(t *testing.T) {
	h := newHeap(t, 100)
	a, _ := h.Alloc(make([]byte, 80))
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Alloc(make([]byte, 80))
	pb, _ := h.Ptr(b)
	if pb.Remote() {
		t.Error("freed space must be reusable locally")
	}
	st := h.Stats()
	if st.LocalObjects != 1 || st.RemoteObjects != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStatsCounting(t *testing.T) {
	h, _ := NewHeap(Config{LocalCapacity: 64, PromoteAt: 1})
	a, _ := h.Alloc(make([]byte, 60))
	b, _ := h.Alloc(make([]byte, 60))
	h.Access(a)
	h.Access(b)
	h.Access(b)
	h.Sweep()
	st := h.Stats()
	if st.LocalHits != 1 || st.RemoteHits != 2 {
		t.Errorf("hits = %d/%d, want 1/2", st.LocalHits, st.RemoteHits)
	}
	if st.Promotions != 1 || st.Demotions != 1 {
		t.Errorf("migrations = %+v", st)
	}
}

// Property: after any access pattern and sweeps, local bytes never exceed
// capacity and every object remains readable with intact length.
func TestHeapInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h, err := NewHeap(Config{LocalCapacity: 512, PromoteAt: 2})
		if err != nil {
			return false
		}
		sizes := map[ObjID]int{}
		var ids []ObjID
		for _, op := range ops {
			switch op % 4 {
			case 0:
				n := int(op%200) + 1
				id, err := h.Alloc(make([]byte, n))
				if err != nil {
					return false
				}
				sizes[id] = n
				ids = append(ids, id)
			case 1, 2:
				if len(ids) > 0 {
					id := ids[int(op)%len(ids)]
					if _, ok := sizes[id]; !ok {
						continue
					}
					data, _, err := h.Access(id)
					if err != nil || len(data) != sizes[id] {
						return false
					}
				}
			case 3:
				h.Sweep()
			}
			if st := h.Stats(); st.LocalBytes > 512 {
				return false
			}
		}
		for id, n := range sizes {
			data, _, err := h.Access(id)
			if err != nil || len(data) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSweepIdempotentWhenCold(t *testing.T) {
	h := newHeap(t, 100)
	h.Alloc(make([]byte, 50))
	h.Alloc(make([]byte, 200))
	p1, d1, _ := h.Sweep() // nothing hot
	if p1 != 0 || d1 != 0 {
		t.Error("cold heap must not migrate")
	}
}

var sinkDur time.Duration

func BenchmarkAccessLocal(b *testing.B) {
	h, _ := NewHeap(Config{LocalCapacity: 1 << 20})
	id, _ := h.Alloc(make([]byte, 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, d, _ := h.Access(id)
		sinkDur = d
	}
}

func BenchmarkSweep(b *testing.B) {
	h, _ := NewHeap(Config{LocalCapacity: 1 << 16, PromoteAt: 1})
	var ids []ObjID
	for i := 0; i < 1000; i++ {
		id, _ := h.Alloc(make([]byte, 128))
		ids = append(ids, id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(ids[i%len(ids)])
		if i%100 == 0 {
			h.Sweep()
		}
	}
}
