// Package swizzle implements the remotable-pointer machinery the paper's
// challenge 1-3 discussion cites ([37] LeanStore, [48] AIFM, [62] Carbink):
// pointer tagging to track the hotness of objects, and pointer swizzling —
// rewriting a pointer to target a local copy when the object is promoted
// from far memory, or a remote descriptor when it is demoted.
//
// A TaggedPtr packs location, a saturating hotness counter, and the object's
// storage coordinates into one 64-bit word, exactly as systems with raw
// pointers do; here the word lives in a pointer table the Heap owns (Go has
// no mutable raw pointers, so handles are stable object IDs and the tagged
// word is what gets swizzled — the data structure and its costs are the
// same).
package swizzle

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TaggedPtr is a 64-bit tagged, remotable pointer:
//
//	bit  63    : 1 = remote (unswizzled), 0 = local (swizzled)
//	bits 48..62: 15-bit saturating hotness counter
//	bits 0..47 : 48-bit location (local arena offset or remote slot)
type TaggedPtr uint64

const (
	remoteBit   = uint64(1) << 63
	hotShift    = 48
	hotMask     = uint64(0x7fff) << hotShift
	locMask     = (uint64(1) << 48) - 1
	hotSaturate = 0x7fff
)

// Remote reports whether the pointer targets far memory.
func (p TaggedPtr) Remote() bool { return uint64(p)&remoteBit != 0 }

// Hotness returns the access counter.
func (p TaggedPtr) Hotness() int { return int((uint64(p) & hotMask) >> hotShift) }

// Loc returns the 48-bit location field.
func (p TaggedPtr) Loc() uint64 { return uint64(p) & locMask }

// withHotness returns p with the counter replaced.
func (p TaggedPtr) withHotness(h int) TaggedPtr {
	if h < 0 {
		h = 0
	}
	if h > hotSaturate {
		h = hotSaturate
	}
	return TaggedPtr(uint64(p)&^hotMask | uint64(h)<<hotShift)
}

// makePtr assembles a pointer.
func makePtr(remote bool, hot int, loc uint64) TaggedPtr {
	v := loc & locMask
	if remote {
		v |= remoteBit
	}
	return TaggedPtr(v).withHotness(hot)
}

// String renders the pointer for diagnostics.
func (p TaggedPtr) String() string {
	where := "local"
	if p.Remote() {
		where = "remote"
	}
	return fmt.Sprintf("%s@%d(hot=%d)", where, p.Loc(), p.Hotness())
}

// ObjID is a stable object handle; the tagged pointer behind it moves.
type ObjID uint64

// Errors.
var (
	ErrNoObject = errors.New("swizzle: unknown object")
	ErrNoSpace  = errors.New("swizzle: local arena full")
)

// Config tunes the heap.
type Config struct {
	LocalCapacity int64         // bytes of fast local memory
	LocalLatency  time.Duration // per local access, default 100ns
	RemoteLatency time.Duration // per remote access, default 3µs
	PromoteAt     int           // hotness that triggers promotion, default 4
	DecayShift    uint          // hotness >>= DecayShift per sweep, default 1
}

// Heap is a two-tier object heap: a bounded local arena and unbounded far
// memory, with hotness-driven migration. All durations are virtual.
type Heap struct {
	mu      sync.Mutex
	cfg     Config
	ptrs    map[ObjID]TaggedPtr
	local   map[uint64][]byte // local arena: loc → bytes
	remote  map[uint64][]byte // far memory: slot → bytes
	nextObj ObjID
	nextLoc uint64
	used    int64

	promotions, demotions uint64
	localHits, remoteHits uint64
}

// NewHeap builds a heap.
func NewHeap(cfg Config) (*Heap, error) {
	if cfg.LocalCapacity <= 0 {
		return nil, fmt.Errorf("swizzle: local capacity %d", cfg.LocalCapacity)
	}
	if cfg.LocalLatency <= 0 {
		cfg.LocalLatency = 100 * time.Nanosecond
	}
	if cfg.RemoteLatency <= 0 {
		cfg.RemoteLatency = 3 * time.Microsecond
	}
	if cfg.PromoteAt <= 0 {
		cfg.PromoteAt = 4
	}
	if cfg.DecayShift == 0 {
		cfg.DecayShift = 1
	}
	return &Heap{
		cfg:    cfg,
		ptrs:   make(map[ObjID]TaggedPtr),
		local:  make(map[uint64][]byte),
		remote: make(map[uint64][]byte),
	}, nil
}

// Alloc stores a new object, locally if it fits, else in far memory.
func (h *Heap) Alloc(data []byte) (ObjID, error) {
	if len(data) == 0 {
		return 0, errors.New("swizzle: empty object")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextObj
	h.nextObj++
	buf := append([]byte(nil), data...)
	loc := h.nextLoc
	h.nextLoc++
	if h.used+int64(len(buf)) <= h.cfg.LocalCapacity {
		h.local[loc] = buf
		h.used += int64(len(buf))
		h.ptrs[id] = makePtr(false, 0, loc)
	} else {
		h.remote[loc] = buf
		h.ptrs[id] = makePtr(true, 0, loc)
	}
	return id, nil
}

// Ptr returns the current tagged pointer for an object.
func (h *Heap) Ptr(id ObjID) (TaggedPtr, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.ptrs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, id)
	}
	return p, nil
}

// Access dereferences the object: it returns the bytes, the virtual access
// latency (local vs remote), and bumps the hotness tag.
func (h *Heap) Access(id ObjID) ([]byte, time.Duration, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.ptrs[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrNoObject, id)
	}
	h.ptrs[id] = p.withHotness(p.Hotness() + 1)
	if p.Remote() {
		h.remoteHits++
		return h.remote[p.Loc()], h.cfg.RemoteLatency, nil
	}
	h.localHits++
	return h.local[p.Loc()], h.cfg.LocalLatency, nil
}

// Free releases an object.
func (h *Heap) Free(id ObjID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.ptrs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoObject, id)
	}
	if p.Remote() {
		delete(h.remote, p.Loc())
	} else {
		h.used -= int64(len(h.local[p.Loc()]))
		delete(h.local, p.Loc())
	}
	delete(h.ptrs, id)
	return nil
}

// Sweep runs one migration epoch, the background work AIFM/Carbink perform:
// hot remote objects are promoted (swizzled in), evicting the coldest local
// objects if space is needed (unswizzled out); afterwards every counter
// decays. Returns (promoted, demoted, virtual time) — each migration pays
// one remote access.
func (h *Heap) Sweep() (int, int, time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var promoted, demoted int
	var cost time.Duration

	// Candidates: remote objects at/above the promotion threshold, hottest
	// first (deterministic order: hotness desc, then id).
	type cand struct {
		id ObjID
		p  TaggedPtr
	}
	var hot []cand
	for id, p := range h.ptrs {
		if p.Remote() && p.Hotness() >= h.cfg.PromoteAt {
			hot = append(hot, cand{id, p})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].p.Hotness() != hot[j].p.Hotness() {
			return hot[i].p.Hotness() > hot[j].p.Hotness()
		}
		return hot[i].id < hot[j].id
	})
	for _, c := range hot {
		size := int64(len(h.remote[c.p.Loc()]))
		if size > h.cfg.LocalCapacity {
			continue
		}
		// Evict coldest locals until the object fits.
		for h.used+size > h.cfg.LocalCapacity {
			vid, ok := h.coldestLocal(c.p.Hotness())
			if !ok {
				break
			}
			vp := h.ptrs[vid]
			buf := h.local[vp.Loc()]
			delete(h.local, vp.Loc())
			h.used -= int64(len(buf))
			h.remote[vp.Loc()] = buf
			h.ptrs[vid] = makePtr(true, vp.Hotness(), vp.Loc())
			demoted++
			cost += h.cfg.RemoteLatency
		}
		if h.used+size > h.cfg.LocalCapacity {
			continue // nothing colder to evict
		}
		buf := h.remote[c.p.Loc()]
		delete(h.remote, c.p.Loc())
		h.local[c.p.Loc()] = buf
		h.used += size
		h.ptrs[c.id] = makePtr(false, c.p.Hotness(), c.p.Loc())
		promoted++
		cost += h.cfg.RemoteLatency
	}
	// Decay all counters.
	for id, p := range h.ptrs {
		h.ptrs[id] = p.withHotness(p.Hotness() >> h.cfg.DecayShift)
	}
	h.promotions += uint64(promoted)
	h.demotions += uint64(demoted)
	return promoted, demoted, cost
}

// coldestLocal returns the local object with the lowest hotness strictly
// below limit. Caller holds the lock.
func (h *Heap) coldestLocal(limit int) (ObjID, bool) {
	best := ObjID(0)
	bestHot := limit
	found := false
	// Deterministic: lowest (hotness, id).
	ids := make([]ObjID, 0, len(h.ptrs))
	for id, p := range h.ptrs {
		if !p.Remote() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := h.ptrs[id]
		if p.Hotness() < bestHot {
			best, bestHot, found = id, p.Hotness(), true
		}
	}
	return best, found
}

// Stats reports migration and hit counters.
type Stats struct {
	Promotions, Demotions uint64
	LocalHits, RemoteHits uint64
	LocalBytes            int64
	LocalObjects          int
	RemoteObjects         int
}

// Stats returns a snapshot.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		Promotions: h.promotions, Demotions: h.demotions,
		LocalHits: h.localHits, RemoteHits: h.remoteHits,
		LocalBytes: h.used, LocalObjects: len(h.local), RemoteObjects: len(h.remote),
	}
}
