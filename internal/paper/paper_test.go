package paper

import (
	"fmt"
	"strings"
	"testing"
)

func gen(t *testing.T, id string) *Artifact {
	t.Helper()
	a, err := Generate(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if a.ID != id || a.Title == "" || a.Text == "" {
		t.Fatalf("%s: malformed artifact %+v", id, a)
	}
	return a
}

func TestRegistryCoversAllIDs(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("artifact %s missing from registry", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Errorf("registry has %d entries, IDs() has %d", len(reg), len(IDs()))
	}
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown artifact must fail")
	}
}

func TestTable1Shape(t *testing.T) {
	a := gen(t, "table1")
	m := a.Metrics
	// The paper's ordinal rankings must hold in the measured numbers.
	latOrder := []string{"Cache", "DRAM", "CXL-DRAM", "PMem", "Disagg. Mem.", "SSD", "HDD"}
	for i := 1; i < len(latOrder); i++ {
		lo, hi := m["latency_ns/"+latOrder[i-1]], m["latency_ns/"+latOrder[i]]
		if hi <= lo {
			t.Errorf("latency(%s)=%.0f must exceed latency(%s)=%.0f", latOrder[i], hi, latOrder[i-1], lo)
		}
	}
	bwOrder := []string{"HDD", "SSD", "Disagg. Mem.", "CXL-DRAM", "DRAM", "HBM"}
	for i := 1; i < len(bwOrder); i++ {
		lo, hi := m["bandwidth_bps/"+bwOrder[i-1]], m["bandwidth_bps/"+bwOrder[i]]
		if hi <= lo {
			t.Errorf("bandwidth(%s)=%.0f must exceed bandwidth(%s)=%.0f", bwOrder[i], hi, bwOrder[i-1], lo)
		}
	}
	for _, row := range []string{"Cache", "HBM", "DRAM", "PMem", "CXL-DRAM", "Disagg. Mem.", "SSD", "HDD"} {
		if !strings.Contains(a.Text, row) {
			t.Errorf("rendered table missing row %q", row)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	a := gen(t, "table2")
	ps := a.Metrics["access_ns/Private Scratch"]
	gs := a.Metrics["access_ns/Global State"]
	gsc := a.Metrics["access_ns/Global Scratch"]
	if ps <= 0 || gs <= 0 || gsc <= 0 {
		t.Fatalf("all three classes must be measured: %v", a.Metrics)
	}
	// Private scratch is the fastest tier.
	if ps > gs || ps > gsc {
		t.Errorf("private scratch (%.0fns) must be the cheapest access (gs=%.0f, gsc=%.0f)", ps, gs, gsc)
	}
}

func TestTable3Shape(t *testing.T) {
	a := gen(t, "table3")
	if a.Metrics["placements"] < 12 {
		t.Errorf("want all 12 Table 3 cells placed, got %.0f\n%s", a.Metrics["placements"], a.Text)
	}
	for _, app := range []string{"DBMS", "ML/AI", "HPC", "Streaming"} {
		if !strings.Contains(a.Text, app) {
			t.Errorf("missing app row %s", app)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	a := gen(t, "figure1")
	if a.Metrics["pooled_admitted"] <= a.Metrics["static_admitted"] {
		t.Errorf("pooling must admit more jobs: %v", a.Metrics)
	}
	if a.Metrics["pooled_util"] <= a.Metrics["static_util"] {
		t.Errorf("pooling must raise utilization: %v", a.Metrics)
	}
}

func TestFigure2Shape(t *testing.T) {
	a := gen(t, "figure2")
	if a.Metrics["property_violations"] != 0 {
		t.Errorf("hospital run violated %v declared properties\n%s", a.Metrics["property_violations"], a.Text)
	}
	if a.Metrics["makespan_ns"] <= 0 {
		t.Error("makespan must be positive")
	}
}

func TestFigure3Shape(t *testing.T) {
	a := gen(t, "figure3")
	// The same request maps to GDDR for the GPU, TPU-HBM for the TPU, and
	// something CPU-local for the CPU.
	if a.Metrics["mapped/node0/gpu0→node0/gddr0"] != 1 {
		t.Errorf("GPU must map to GDDR:\n%s", a.Text)
	}
	if a.Metrics["mapped/node0/tpu0→node0/tpuhbm0"] != 1 {
		t.Errorf("TPU must map to TPU-HBM:\n%s", a.Text)
	}
	if a.Metrics["mapped/node0/cpu0→node0/gddr0"] == 1 {
		t.Errorf("CPU must not map to GDDR:\n%s", a.Text)
	}
}

func TestFigure4Shape(t *testing.T) {
	a := gen(t, "figure4")
	// Zero-copy transfer must be free; copies must grow with size.
	for _, size := range []int64{64 << 10, 64 << 20} {
		tr := a.Metrics["transfer_ns/"+itoa(size)]
		cp := a.Metrics["copy_ns/"+itoa(size)]
		if tr != 0 {
			t.Errorf("transfer at %d bytes cost %.0fns, want 0 (zero copy)", size, tr)
		}
		if cp <= 0 {
			t.Errorf("copy at %d bytes must cost time", size)
		}
	}
	if a.Metrics["copy_ns/67108864"] <= a.Metrics["copy_ns/65536"] {
		t.Error("copy cost must grow with size")
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestClaimNUMAShape(t *testing.T) {
	a := gen(t, "claim-numa")
	s := a.Metrics["slowdown"]
	if s < 1.5 || s > 3.5 {
		t.Errorf("NUMA slowdown %.2f× out of the paper's 'up to 3×' band", s)
	}
}

func TestClaimPlacementShape(t *testing.T) {
	a := gen(t, "claim-placement")
	s := a.Metrics["slowdown"]
	if s < 2 {
		t.Errorf("naive placement slowdown %.2f× — the claim needs ≥2×\n%s", s, a.Text)
	}
}

func TestClaimUtilizationShape(t *testing.T) {
	a := gen(t, "claim-util")
	su := a.Metrics["static_util"]
	if su < 0.40 || su > 0.70 {
		t.Errorf("static utilization %.1f%% outside the paper's cited band", 100*su)
	}
	if a.Metrics["pooled_util"] <= su {
		t.Error("pooled must beat static utilization")
	}
}

func TestClaimFaultShape(t *testing.T) {
	a := gen(t, "claim-fault")
	ro := a.Metrics["replication_overhead"]
	eo := a.Metrics["erasure_overhead"]
	if ro < 2.9 || ro > 3.1 {
		t.Errorf("3-replication overhead %.2f, want ≈3", ro)
	}
	if eo >= ro || eo > 1.8 {
		t.Errorf("erasure overhead %.2f must be ≈1.5 and below replication", eo)
	}
	if a.Metrics["erasure_degraded_ns"] <= a.Metrics["replication_degraded_ns"] {
		t.Error("erasure degraded reads must be slower than replication's read-any (the Carbink trade-off)")
	}
}

func TestClaimSwizzleShape(t *testing.T) {
	a := gen(t, "claim-swizzle")
	if a.Metrics["speedup"] < 2 {
		t.Errorf("swizzling speedup %.2f×, want ≥2× on a 90/10 skew\n%s", a.Metrics["speedup"], a.Text)
	}
	if a.Metrics["swizzle_local_hits"] == 0 {
		t.Error("swizzling must convert remote hits to local hits")
	}
}

func TestAblationAsyncShape(t *testing.T) {
	a := gen(t, "ablation-async")
	if a.Metrics["speedup"] < 1.5 {
		t.Errorf("async pipeline speedup %.2f×, want ≥1.5×\n%s", a.Metrics["speedup"], a.Text)
	}
}

func TestAblationSchedShape(t *testing.T) {
	a := gen(t, "ablation-sched")
	heft := a.Metrics["makespan_ns/HEFT"]
	fifo := a.Metrics["makespan_ns/FIFO"]
	rr := a.Metrics["makespan_ns/round-robin"]
	if heft <= 0 || fifo <= 0 || rr <= 0 {
		t.Fatalf("metrics missing: %v", a.Metrics)
	}
	if heft >= fifo {
		t.Errorf("HEFT (%.0f) must beat FIFO (%.0f)", heft, fifo)
	}
}

func TestAblationCoherenceShape(t *testing.T) {
	a := gen(t, "ablation-coherence")
	if a.Metrics["ratio"] <= 1 {
		t.Errorf("shared ownership must cost more than exclusive: %v", a.Metrics)
	}
	if a.Metrics["invalidations"] < 100 {
		t.Errorf("ping-pong must generate invalidations, got %.0f", a.Metrics["invalidations"])
	}
}

func TestAllArtifactsRenderDeterministically(t *testing.T) {
	for _, id := range IDs() {
		a1 := gen(t, id)
		a2 := gen(t, id)
		if a1.Text != a2.Text {
			t.Errorf("%s renders nondeterministically", id)
		}
	}
}

func TestAblationTieringShape(t *testing.T) {
	a := gen(t, "ablation-tiering")
	if a.Metrics["speedup"] < 2 {
		t.Errorf("tiering speedup %.2f×, want ≥2× on a 90/10 skew\n%s", a.Metrics["speedup"], a.Text)
	}
	if a.Metrics["promotions"] < 1 {
		t.Error("tiering must promote the hot regions")
	}
}

func TestAblationPlannerShape(t *testing.T) {
	a := gen(t, "ablation-planner")
	for _, dev := range []string{"node0/dram0", "node0/cxl0", "memnode0/far0"} {
		plan := a.Metrics["plan_ns/"+dev]
		d1 := a.Metrics["d1_ns/"+dev]
		d8 := a.Metrics["d8_ns/"+dev]
		if plan <= 0 || d1 <= 0 || d8 <= 0 {
			t.Fatalf("%s: missing metrics %v", dev, a.Metrics)
		}
		if plan > d1 || plan > d8 {
			t.Errorf("%s: compiled plan (%.0f) must not lose to fixed d1 (%.0f) or d8 (%.0f)", dev, plan, d1, d8)
		}
	}
	// On far memory the compiled plan must clearly beat blocking access.
	if a.Metrics["d1_ns/memnode0/far0"]/a.Metrics["plan_ns/memnode0/far0"] < 1.5 {
		t.Errorf("far-memory plan should be ≥1.5× over sync:\n%s", a.Text)
	}
}

func TestAblationMultiJobShape(t *testing.T) {
	a := gen(t, "ablation-multijob")
	if a.Metrics["speedup"] < 1.5 {
		t.Errorf("concurrent serving speedup %.2f×, want ≥1.5×\n%s", a.Metrics["speedup"], a.Text)
	}
	if a.Metrics["worst_stretch"] < 0.99 {
		t.Errorf("stretch %.2f < 1 is impossible (concurrency cannot beat isolation per job)", a.Metrics["worst_stretch"])
	}
}

func TestAblationRecoveryShape(t *testing.T) {
	a := gen(t, "ablation-recovery")
	if a.Metrics["speedup"] < 1.5 {
		t.Errorf("checkpointed recovery speedup %.2f×, want ≥1.5× (failure at pipeline end)\n%s", a.Metrics["speedup"], a.Text)
	}
	if a.Metrics["attempts"] != 2 {
		t.Errorf("attempts = %.0f, want 2", a.Metrics["attempts"])
	}
}

func TestFigure1SweepShape(t *testing.T) {
	a := gen(t, "figure1-sweep")
	// At every load point, pooled waits must not exceed static's.
	points := 0
	for k, v := range a.Metrics {
		if len(k) > 15 && k[:15] == "static_wait_ns/" {
			key := k[15:]
			if pooled, ok := a.Metrics["pooled_wait_ns/"+key]; !ok || pooled > v {
				t.Errorf("load %s: pooled wait %.0f exceeds static %.0f", key, pooled, v)
			}
			points++
		}
	}
	if points < 5 {
		t.Errorf("sweep has %d points, want ≥5", points)
	}
	// The gap must widen with load: static wait at the top point dwarfs the
	// bottom point's.
	if a.Metrics["static_wait_ns/load_1.04"] < 100*a.Metrics["static_wait_ns/load_0.16"]+1 {
		t.Errorf("static queueing must explode with load:\n%s", a.Text)
	}
}

func TestTable1SweepShape(t *testing.T) {
	a := gen(t, "table1-sweep")
	// Latency-bound regime: far memory orders of magnitude behind DRAM.
	if a.Metrics["far_vs_dram_small"] < 10 {
		t.Errorf("at 64B far/DRAM = %.1f×, want ≫10×\n%s", a.Metrics["far_vs_dram_small"], a.Text)
	}
	// Bandwidth-bound regime: the gap collapses toward the bandwidth ratio.
	if a.Metrics["far_vs_dram_large"] > 20 {
		t.Errorf("at 64MiB far/DRAM = %.1f×, want the crossover to compress it\n%s", a.Metrics["far_vs_dram_large"], a.Text)
	}
	if a.Metrics["far_vs_dram_large"] >= a.Metrics["far_vs_dram_small"] {
		t.Error("the ratio must shrink with size (latency→bandwidth regime)")
	}
	// Monotone in size per device.
	for _, dev := range []string{"DRAM", "CXL-DRAM", "Disagg.", "SSD"} {
		prev := 0.0
		for _, size := range []int64{64, 4 << 10, 256 << 10, 4 << 20, 64 << 20} {
			v := a.Metrics[fmt.Sprintf("ns/%s/%d", dev, size)]
			if v < prev { // block devices plateau below one block
				t.Errorf("%s: access time not monotone at %d", dev, size)
			}
			prev = v
		}
	}
}
