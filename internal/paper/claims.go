package paper

import (
	"fmt"
	"time"

	"repro/internal/dcsim"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/memsim"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/swizzle"
	"repro/internal/topology"
)

// ClaimNUMA regenerates the intro's "[NUMA] can slow down algorithms by up
// to 3×" [39]: a random-access data shuffle against socket-local DRAM vs
// the remote socket's DRAM, from the same CPU.
func ClaimNUMA() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	const cpu = "node0/cpu0"
	const accesses = 4096
	measure := func(dev string) (time.Duration, error) {
		m, _ := topo.Memory(dev)
		m.ResetQueue()
		var now time.Duration
		for i := 0; i < accesses; i++ {
			done, err := topo.AccessTime(cpu, dev, now, 64, memsim.Read, memsim.Random)
			if err != nil {
				return 0, err
			}
			now = done
		}
		m.ResetQueue()
		return now, nil
	}
	local, err := measure("node0/dram0")
	if err != nil {
		return nil, err
	}
	remote, err := measure("node0/dram1")
	if err != nil {
		return nil, err
	}
	ratio := float64(remote) / float64(local)
	tbl := &table{header: []string{"Placement", "4096 random 64B reads", "Slowdown"}}
	tbl.add("local socket DRAM", fmtDur(float64(local)), "1.0×")
	tbl.add("remote socket DRAM (NUMA)", fmtDur(float64(remote)), fmt.Sprintf("%.1f×", ratio))
	return &Artifact{
		ID:    "claim-numa",
		Title: "Claim [39]: NUMA placement slows data shuffling (paper: up to 3×)",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"local_ns": float64(local), "remote_ns": float64(remote), "slowdown": ratio,
		},
	}, nil
}

// ClaimPlacement regenerates "a naïve data placement ... can reduce a
// database system's performance by up to 3×" [59]: a hash-aggregation
// working set placed by the cost-model optimizer vs the worst legal device
// for an untuned (latency-unconstrained) request.
func ClaimPlacement() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	run := func(placer region.Placer) (time.Duration, string, error) {
		mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placer})
		if err != nil {
			return 0, "", err
		}
		// An untuned developer request: byte-addressable sync memory, no
		// latency class given (the declarative hint the paper adds is
		// exactly what's missing here).
		h, err := mgr.Alloc(region.Spec{
			Name: "group-ht", Class: props.Custom, Size: 1 << 20,
			Req:   props.Requirements{Sync: props.Require, ByteAddr: props.Require},
			Owner: "q1", Compute: "node0/cpu0",
		})
		if err != nil {
			return 0, "", err
		}
		defer h.Release() //nolint:errcheck // teardown
		dev, _ := h.DeviceID()
		// Hash-aggregation probe pattern: 8192 random 64 B slot touches
		// (read-modify-write).
		var now time.Duration
		buf := make([]byte, 64)
		for i := 0; i < 8192; i++ {
			off := int64(i*2654435761%(1<<20-64)) &^ 63
			done, err := h.ReadAtRandom(now, off, buf)
			if err != nil {
				return 0, "", err
			}
			done, err = h.WriteAt(done, off, buf)
			if err != nil {
				return 0, "", err
			}
			now = done
		}
		return now, dev, nil
	}
	optTime, optDev, err := run(placement.NewBestFit(topo))
	if err != nil {
		return nil, err
	}
	naiveTime, naiveDev, err := run(placement.NewWorst(topo))
	if err != nil {
		return nil, err
	}
	ratio := float64(naiveTime) / float64(optTime)
	tbl := &table{header: []string{"Placement policy", "Device", "Aggregation time", "Slowdown"}}
	tbl.add("runtime optimizer (best-fit)", optDev, fmtDur(float64(optTime)), "1.0×")
	tbl.add("naive (worst legal fit)", naiveDev, fmtDur(float64(naiveTime)), fmt.Sprintf("%.1f×", ratio))
	return &Artifact{
		ID:    "claim-placement",
		Title: "Claim [59]: naive data placement reduces DBMS performance (paper: up to 3×)",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"optimized_ns": float64(optTime), "naive_ns": float64(naiveTime), "slowdown": ratio,
		},
	}, nil
}

// ClaimUtilization regenerates "average memory utilization ... remains low,
// typically in the range of 50-65%" [38,56]: the peak-vs-average gap of a
// statically provisioned park under a bursty Poisson stream, measured by
// the discrete-event simulator. Peak demand forces the provisioning; the
// time-average is what the cloud vendors report.
func ClaimUtilization() (*Artifact, error) {
	cfg := dcsim.Config{Servers: 8, PerServer: 256 << 30}
	jobs := dcsim.PoissonJobs(42, 4000, 9*time.Millisecond, 95*time.Millisecond, cfg.PerServer, 0.1, 0.9)
	st, err := dcsim.Static(cfg, jobs)
	if err != nil {
		return nil, err
	}
	po, err := dcsim.Pooled(cfg, jobs)
	if err != nil {
		return nil, err
	}
	inBand := st.AvgUtil >= 0.45 && st.AvgUtil <= 0.70
	tbl := &table{header: []string{"Provisioning", "Avg util", "Peak util", "Avg wait", "Note"}}
	tbl.add("static per-server (status quo)", fmt.Sprintf("%.1f%%", 100*st.AvgUtil),
		fmt.Sprintf("%.1f%%", 100*st.PeakUtil), fmtDur(float64(st.AvgWait)),
		fmt.Sprintf("paper's 50-65%% band: %s", yesNo(inBand)))
	tbl.add("pooled (proposed)", fmt.Sprintf("%.1f%%", 100*po.AvgUtil),
		fmt.Sprintf("%.1f%%", 100*po.PeakUtil), fmtDur(float64(po.AvgWait)), "")
	return &Artifact{
		ID:    "claim-util",
		Title: "Claim [38,56]: static provisioning strands memory at 50-65% utilization; pooling recovers it",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"static_util": st.AvgUtil, "pooled_util": po.AvgUtil,
			"static_wait_ns": float64(st.AvgWait), "pooled_wait_ns": float64(po.AvgWait),
		},
	}, nil
}

// ClaimFaultTolerance regenerates the challenge-8(3) discussion (Carbink
// [62]): replication vs erasure coding for far-memory objects — memory
// overhead, write cost, degraded-read cost, and crash recovery.
func ClaimFaultTolerance() (*Artifact, error) {
	const nodes = 8
	const objSize = 4096
	const objects = 64
	mkFabric := func() (*cluster.Fabric, error) {
		f := cluster.NewFabric(cluster.Config{})
		for i := 0; i < nodes; i++ {
			if err := f.AddNode(fmt.Sprintf("mem%d", i), 1<<26); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	type result struct {
		name                   string
		overhead               float64
		writeNS, readNS        time.Duration
		degradedNS, recoveryNS time.Duration
	}
	exercise := func(name string, store fault.Store, f *cluster.Fabric) (*result, error) {
		var ids []fault.ObjectID
		var writeTotal time.Duration
		payload := make([]byte, objSize)
		for i := range payload {
			payload[i] = byte(i)
		}
		for i := 0; i < objects; i++ {
			id, d, err := store.Put(payload)
			if err != nil {
				return nil, err
			}
			writeTotal += d
			ids = append(ids, id)
		}
		if ec, ok := store.(*fault.ErasureStore); ok {
			d, err := ec.Flush()
			if err != nil {
				return nil, err
			}
			writeTotal += d
		}
		logical, physical := store.StoredBytes()
		_, healthyRead, err := store.Get(ids[objects/2])
		if err != nil {
			return nil, err
		}
		// Crash one node, measure degraded read and recovery.
		if err := f.Crash("mem0"); err != nil {
			return nil, err
		}
		_, degraded, err := store.Get(ids[objects/2])
		if err != nil {
			return nil, err
		}
		_, recovery, err := store.Recover()
		if err != nil {
			return nil, err
		}
		return &result{
			name: name, overhead: float64(physical) / float64(logical),
			writeNS: writeTotal / objects, readNS: healthyRead,
			degradedNS: degraded, recoveryNS: recovery,
		}, nil
	}
	f1, err := mkFabric()
	if err != nil {
		return nil, err
	}
	rep, err := fault.NewReplicatedStore(f1, 3)
	if err != nil {
		return nil, err
	}
	r1, err := exercise("3-replication", rep, f1)
	if err != nil {
		return nil, err
	}
	f2, err := mkFabric()
	if err != nil {
		return nil, err
	}
	ec, err := fault.NewErasureStore(f2, fault.ErasureConfig{Data: 4, Parity: 2, SpanSize: 16384})
	if err != nil {
		return nil, err
	}
	r2, err := exercise("RS(6,4) erasure", ec, f2)
	if err != nil {
		return nil, err
	}
	tbl := &table{header: []string{"Scheme", "Mem overhead", "Write/obj", "Read", "Degraded read", "Recovery"}}
	for _, r := range []*result{r1, r2} {
		tbl.add(r.name, fmt.Sprintf("%.2f×", r.overhead), fmtDur(float64(r.writeNS)),
			fmtDur(float64(r.readNS)), fmtDur(float64(r.degradedNS)), fmtDur(float64(r.recoveryNS)))
	}
	return &Artifact{
		ID:    "claim-fault",
		Title: "Claim [62] (Carbink): erasure coding cuts far-memory overhead vs replication at slower degraded reads",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"replication_overhead": r1.overhead, "erasure_overhead": r2.overhead,
			"replication_degraded_ns": float64(r1.degradedNS), "erasure_degraded_ns": float64(r2.degradedNS),
		},
	}, nil
}

// ClaimSwizzle regenerates the pointer-swizzling discussion ([37,48,62]):
// a skewed object workload (90% of accesses to 10% of objects) over a
// small local tier, with and without hotness-driven swizzling.
func ClaimSwizzle() (*Artifact, error) {
	const objects = 1024
	const objSize = 256
	const accesses = 20000
	run := func(swizzling bool) (time.Duration, swizzle.Stats, error) {
		promoteAt := 3
		if !swizzling {
			promoteAt = 1 << 20 // never promotes
		}
		h, err := swizzle.NewHeap(swizzle.Config{
			LocalCapacity: objects / 8 * objSize, // 12.5% fits locally
			PromoteAt:     promoteAt,
		})
		if err != nil {
			return 0, swizzle.Stats{}, err
		}
		var ids []swizzle.ObjID
		payload := make([]byte, objSize)
		for i := 0; i < objects; i++ {
			id, err := h.Alloc(payload)
			if err != nil {
				return 0, swizzle.Stats{}, err
			}
			ids = append(ids, id)
		}
		hot := objects / 10
		var total time.Duration
		state := uint64(7)
		for i := 0; i < accesses; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			var idx int
			if (state>>33)%10 < 9 { // 90% of traffic
				idx = objects - hot + int((state>>10)%uint64(hot)) // hottest tail
			} else {
				idx = int((state >> 10) % uint64(objects))
			}
			_, d, err := h.Access(ids[idx])
			if err != nil {
				return 0, swizzle.Stats{}, err
			}
			total += d
			if swizzling && i%500 == 499 {
				_, _, cost := h.Sweep()
				total += cost
			}
		}
		return total, h.Stats(), nil
	}
	off, offStats, err := run(false)
	if err != nil {
		return nil, err
	}
	on, onStats, err := run(true)
	if err != nil {
		return nil, err
	}
	speedup := float64(off) / float64(on)
	tbl := &table{header: []string{"Mode", "Total access time", "Local hit rate", "Promotions"}}
	hitRate := func(s swizzle.Stats) string {
		return fmt.Sprintf("%.1f%%", 100*float64(s.LocalHits)/float64(s.LocalHits+s.RemoteHits))
	}
	tbl.add("no swizzling (pointers stay remote)", fmtDur(float64(off)), hitRate(offStats), fmt.Sprintf("%d", offStats.Promotions))
	tbl.add("hotness-tagged swizzling", fmtDur(float64(on)), hitRate(onStats), fmt.Sprintf("%d", onStats.Promotions))
	tbl.add("speedup", fmt.Sprintf("%.1f×", speedup), "", "")
	return &Artifact{
		ID:    "claim-swizzle",
		Title: "Claim [37,48,62]: hotness-tagged pointer swizzling accelerates skewed far-memory workloads",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"no_swizzle_ns": float64(off), "swizzle_ns": float64(on), "speedup": speedup,
			"swizzle_local_hits": float64(onStats.LocalHits),
		},
	}, nil
}
