package paper

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/fault"
	"repro/internal/placement"
	"repro/internal/planner"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
)

// These four artifacts quantify the extension features DESIGN.md §5 calls
// out beyond the paper's figures: hotness-driven tiering (A4), the access-
// plan compiler (A5), concurrent multi-job serving (A6), and checkpointed
// recovery (A7). They are ablations of the runtime's own design choices.

// AblationTiering contrasts a skewed region workload with and without the
// background rebalancer (TPP [40]-style promotion of hot regions).
func AblationTiering() (*Artifact, error) {
	run := func(tiering bool) (time.Duration, int, error) {
		topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
		if err != nil {
			return 0, 0, err
		}
		mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
		if err != nil {
			return 0, 0, err
		}
		// 16 regions stranded in far memory; 2 of them take 90% of traffic.
		var handles []*region.Handle
		for i := 0; i < 16; i++ {
			h, err := mgr.Alloc(region.Spec{
				Name: fmt.Sprintf("obj%d", i), Class: props.Custom, Size: 64 << 10,
				Req:   props.Requirements{Latency: props.LatencyHigh, ByteAddr: props.Require},
				Owner: region.Owner(fmt.Sprintf("t%d", i)), Compute: "node0/cpu0",
				Device: "memnode0/far0",
			})
			if err != nil {
				return 0, 0, err
			}
			handles = append(handles, h)
		}
		defer func() {
			for _, h := range handles {
				h.Release() //nolint:errcheck // teardown
			}
		}()
		buf := make([]byte, 4096)
		var now time.Duration
		promoted := 0
		state := uint64(3)
		for i := 0; i < 2000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			idx := 0
			if (state>>33)%10 < 9 {
				idx = int((state >> 10) % 2) // hot pair
			} else {
				idx = int((state >> 10) % 16)
			}
			f := handles[idx].ReadAsync(now, 0, buf)
			done, err := f.Await(now)
			if err != nil {
				return 0, 0, err
			}
			now = done
			if tiering && i%250 == 249 {
				stats, err := mgr.Rebalance(now, region.RebalancePolicy{})
				if err != nil {
					return 0, 0, err
				}
				now += stats.Cost
				promoted += stats.Promoted
			}
		}
		return now, promoted, nil
	}
	off, _, err := run(false)
	if err != nil {
		return nil, err
	}
	on, promoted, err := run(true)
	if err != nil {
		return nil, err
	}
	speedup := float64(off) / float64(on)
	tbl := &table{header: []string{"Mode", "2000 skewed reads", "Promotions", "Speedup"}}
	tbl.add("static placement", fmtDur(float64(off)), "0", "1.0×")
	tbl.add("hotness-driven tiering", fmtDur(float64(on)), fmt.Sprintf("%d", promoted), fmt.Sprintf("%.1f×", speedup))
	return &Artifact{
		ID:    "ablation-tiering",
		Title: "Ablation A4: background region tiering (TPP-style promotion) on a skewed working set",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"static_ns": float64(off), "tiered_ns": float64(on),
			"speedup": speedup, "promotions": float64(promoted),
		},
	}, nil
}

// AblationPlanner contrasts the compiled access plan against fixed
// strategies on near and far placements (challenge 7).
func AblationPlanner() (*Artifact, error) {
	tbl := &table{header: []string{"Placement", "Fixed sync (d=1)", "Fixed async (d=8)", "Compiled plan", "Plan"}}
	metrics := map[string]float64{}
	spec := planner.AccessSpec{TotalBytes: 512 << 10, ChunkBytes: 4096, OverlapOpsPerChunk: 500}
	for _, device := range []string{"node0/dram0", "node0/cxl0", "memnode0/far0"} {
		measure := func(depthOverride int) (time.Duration, planner.Plan, error) {
			topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
			if err != nil {
				return 0, planner.Plan{}, err
			}
			mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
			if err != nil {
				return 0, planner.Plan{}, err
			}
			h, err := mgr.Alloc(region.Spec{
				Name: "scan", Class: props.Custom, Size: spec.TotalBytes,
				Req:   props.Requirements{Latency: props.LatencyBulk, ByteAddr: props.Require},
				Owner: "a5", Compute: "node0/cpu0", Device: device,
			})
			if err != nil {
				return 0, planner.Plan{}, err
			}
			defer h.Release() //nolint:errcheck // teardown
			plan, err := planner.Compile(topo, "node0/cpu0", device, spec)
			if err != nil {
				return 0, planner.Plan{}, err
			}
			if depthOverride > 0 {
				plan.Depth = depthOverride
				plan.Async = depthOverride > 1
			}
			end, err := planner.Execute(h, 0, plan, spec, nil)
			return end, plan, err
		}
		d1, _, err := measure(1)
		if err != nil {
			return nil, err
		}
		d8, _, err := measure(8)
		if err != nil {
			return nil, err
		}
		chosen, plan, err := measure(0)
		if err != nil {
			return nil, err
		}
		tbl.add(device, fmtDur(float64(d1)), fmtDur(float64(d8)), fmtDur(float64(chosen)), plan.String())
		metrics["d1_ns/"+device] = float64(d1)
		metrics["d8_ns/"+device] = float64(d8)
		metrics["plan_ns/"+device] = float64(chosen)
	}
	return &Artifact{
		ID:    "ablation-planner",
		Title: "Ablation A5 (challenge 7): compiling declarative access specs into per-placement plans",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

// AblationMultiJob measures concurrent serving of a batch-job mix vs
// running the same jobs back to back: six 16-way compute jobs with mixed
// device preferences share one runtime.
func AblationMultiJob() (*Artifact, error) {
	rt, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	mkBatch := func(name string, pref dataflow.DevicePref) *dataflow.Job {
		j := dataflow.NewJob(name)
		src := j.Task("scatter", dataflow.Props{Ops: 1e6, OutputBytes: 1 << 14}, nil)
		sink := j.Task("gather", dataflow.Props{Ops: 1e6}, nil)
		for k := 0; k < 16; k++ {
			t := j.Task(fmt.Sprintf("work%02d", k), dataflow.Props{Compute: pref, Ops: 4e8, OutputBytes: 1 << 14}, nil)
			src.Then(t)
			t.Then(sink)
		}
		return j
	}
	jobs := []*dataflow.Job{
		mkBatch("batch-cpu-0", dataflow.OnCPU),
		mkBatch("batch-cpu-1", dataflow.OnCPU),
		mkBatch("batch-gpu-0", dataflow.OnGPU),
		mkBatch("batch-any-0", dataflow.AnyDevice),
		mkBatch("batch-any-1", dataflow.AnyDevice),
		mkBatch("batch-fpga-0", dataflow.OnFPGA),
	}
	rep, err := rt.RunAll(jobs, core.MultiConfig{ComputeStretch: true})
	if err != nil {
		return nil, err
	}
	speedup := float64(rep.SumIsolated) / float64(rep.Makespan)
	tbl := &table{header: []string{"Serving mode", "Completion of all 6 jobs", "Speedup"}}
	tbl.add("sequential (one at a time)", fmtDur(float64(rep.SumIsolated)), "1.0×")
	tbl.add("concurrent (shared RTS)", fmtDur(float64(rep.Makespan)), fmt.Sprintf("%.1f×", speedup))
	var worst float64
	for _, jr := range rep.Jobs {
		if jr.Stretch > worst {
			worst = jr.Stretch
		}
	}
	tbl.add("worst per-job stretch", fmt.Sprintf("%.2f×", worst), "")
	return &Artifact{
		ID:    "ablation-multijob",
		Title: "Ablation A6 (§2.1): serving a concurrent job mix on one runtime",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"sequential_ns": float64(rep.SumIsolated), "concurrent_ns": float64(rep.Makespan),
			"speedup": speedup, "worst_stretch": worst,
		},
	}, nil
}

// AblationRecovery measures checkpointed recovery: a pipeline whose last
// stage fails once, re-run with and without checkpoints.
func AblationRecovery() (*Artifact, error) {
	mkStore := func() (fault.Store, error) {
		fabric := cluster.NewFabric(cluster.Config{})
		for i := 0; i < 8; i++ {
			if err := fabric.AddNode(fmt.Sprintf("ck%d", i), 1<<26); err != nil {
				return nil, err
			}
		}
		return fault.NewReplicatedStore(fabric, 3)
	}
	// The job: an expensive producer chain (compute-heavy, small outputs —
	// the regime where recomputation dwarfs restore I/O) feeding a cheap,
	// flaky sink.
	mkJob := func(failures *int) *dataflow.Job {
		j := dataflow.NewJob("pipeline")
		prev := j.Task("stage0", dataflow.Props{Ops: 5e9, OutputBytes: 64 << 10}, nil)
		for i := 1; i < 4; i++ {
			t := j.Task(fmt.Sprintf("stage%d", i), dataflow.Props{Ops: 5e9, OutputBytes: 64 << 10}, nil)
			prev.Then(t)
			prev = t
		}
		sink := j.Task("sink", dataflow.Props{Ops: 1e6}, func(ctx dataflow.Ctx) error {
			if *failures > 0 {
				*failures--
				return errors.New("transient sink failure")
			}
			return nil
		})
		prev.Then(sink)
		return j
	}

	// Baselines on a clean job: B = plain makespan, B+O = with snapshots.
	zero := 0
	rtBase, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	baseRep, err := rtBase.Run(mkJob(&zero))
	if err != nil {
		return nil, err
	}
	storeOverhead, err := mkStore()
	if err != nil {
		return nil, err
	}
	rtOv, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	zero = 0
	ovRep, _, err := rtOv.RunWithRecovery(mkJob(&zero), core.NewCheckpointer(storeOverhead), 1)
	if err != nil {
		return nil, err
	}

	// Without checkpoints: failure at the sink costs two full runs.
	plainTotal := 2 * baseRep.Makespan

	// With checkpoints: failed attempt (with snapshot overhead) + a retry
	// that restores the four stages instead of recomputing them.
	failures := 1
	store, err := mkStore()
	if err != nil {
		return nil, err
	}
	rtCk, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	ck := core.NewCheckpointer(store)
	repCk, attempts, err := rtCk.RunWithRecovery(mkJob(&failures), ck, 3)
	if err != nil {
		return nil, err
	}
	ckTotal := ovRep.Makespan + repCk.Makespan
	saving := float64(plainTotal) / float64(ckTotal)
	tbl := &table{header: []string{"Recovery mode", "Cost to finish after 1 failure", "Attempts", "Speedup"}}
	tbl.add("restart from scratch", fmtDur(float64(plainTotal)), "2", "1.0×")
	tbl.add("checkpointed restart", fmtDur(float64(ckTotal)), fmt.Sprintf("%d", attempts), fmt.Sprintf("%.1f×", saving))
	return &Artifact{
		ID:    "ablation-recovery",
		Title: "Ablation A7 (challenge 8(3)): checkpointed restart vs full re-execution",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"scratch_ns": float64(plainTotal), "checkpoint_ns": float64(ckTotal),
			"speedup": saving, "attempts": float64(attempts),
		},
	}, nil
}
