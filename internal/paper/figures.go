package paper

import (
	"fmt"
	"time"

	"repro/internal/dcsim"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Figure1 regenerates the compute-centric vs memory-centric contrast with
// the discrete-event datacenter simulator (internal/dcsim): the identical
// Poisson job stream served by per-server memory vs one pool of the same
// total capacity, under a 50 ms patience bound.
func Figure1() (*Artifact, error) {
	cfg := dcsim.Config{Servers: 8, PerServer: 256 << 30, MaxWait: 50 * time.Millisecond}
	jobs := dcsim.PoissonJobs(42, 2000, 10*time.Millisecond, 90*time.Millisecond, cfg.PerServer, 0.1, 0.9)
	st, err := dcsim.Static(cfg, jobs)
	if err != nil {
		return nil, err
	}
	po, err := dcsim.Pooled(cfg, jobs)
	if err != nil {
		return nil, err
	}
	tbl := &table{header: []string{"Architecture", "Admitted", "Avg util", "Peak util", "Avg wait"}}
	row := func(label string, r dcsim.Result) {
		tbl.add(label, fmt.Sprintf("%d/%d", r.Admitted, len(jobs)),
			fmt.Sprintf("%.1f%%", 100*r.AvgUtil), fmt.Sprintf("%.1f%%", 100*r.PeakUtil),
			fmtDur(float64(r.AvgWait)))
	}
	row("Fig. 1a compute-centric (static)", st)
	row("Fig. 1b memory-centric (pooled)", po)
	return &Artifact{
		ID:    "figure1",
		Title: "Figure 1: moving from compute-centric to memory-centric architecture (same Poisson stream)",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"static_admitted": float64(st.Admitted), "pooled_admitted": float64(po.Admitted),
			"static_util": st.AvgUtil, "pooled_util": po.AvgUtil,
			"static_wait_ns": float64(st.AvgWait), "pooled_wait_ns": float64(po.AvgWait),
		},
	}, nil
}

// Figure2 regenerates the hospital dataflow: the five tasks with their
// Fig. 2c property annotations run end-to-end; the table shows where each
// task and its regions landed and verifies the properties were honoured.
func Figure2() (*Artifact, error) {
	rt, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	rep, err := rt.Run(workload.Hospital(workload.DefaultHospital()))
	if err != nil {
		return nil, err
	}
	tbl := &table{header: []string{"Task", "Declared", "Compute", "Key region", "Placed on"}}
	decls := map[string]string{
		"preprocess":          "GPU, confidential, low-lat",
		"face-recognition":    "GPU, confidential, low-lat",
		"track-hours":         "CPU, confidential, low-lat",
		"compute-utilization": "CPU",
		"alert-caregivers":    "CPU, confidential, persistent",
	}
	keyRegion := map[string]string{
		"preprocess":          "framebuf",
		"face-recognition":    "directory",
		"track-hours":         "hours",
		"compute-utilization": "out",
		"alert-caregivers":    "missing-patients",
	}
	violations := 0.0
	for _, id := range []string{"preprocess", "face-recognition", "track-hours", "compute-utilization", "alert-caregivers"} {
		tr, ok := rep.Tasks[id]
		if !ok {
			return nil, fmt.Errorf("paper: hospital task %s missing from report", id)
		}
		label := keyRegion[id]
		dev := tr.Regions[label]
		tbl.add(id, decls[id], tr.Compute, label, dev)
	}
	// Verify: persistent ledger on persistent media.
	if dev, ok := rt.Topology().Memory(rep.Tasks["alert-caregivers"].Regions["missing-patients"]); !ok || !dev.Persistent {
		violations++
	}
	// Verify: GPU tasks on GPU.
	for _, id := range []string{"preprocess", "face-recognition"} {
		if c, ok := rt.Topology().Compute(rep.Tasks[id].Compute); !ok || c.Kind != topology.GPU {
			violations++
		}
	}
	return &Artifact{
		ID:    "figure2",
		Title: "Figure 2: hospital dataflow with declarative task properties (executed)",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"makespan_ns":         float64(rep.Makespan),
			"property_violations": violations,
		},
	}, nil
}

// Figure3 regenerates the logical→physical mapping: the identical "fast
// local scratch" request issued from a CPU, a GPU, and a TPU maps to a
// different physical device each time, with the measured access latency
// from each side.
func Figure3() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	best := placement.NewBestFit(topo)
	req := props.PrivateScratch.Defaults()
	req.Capacity = 1 << 20
	tbl := &table{header: []string{"Compute device", "Request", "Mapped to", "Access latency"}}
	metrics := map[string]float64{}
	for _, comp := range []string{"node0/cpu0", "node0/gpu0", "node0/tpu0"} {
		dev, err := best.Place(req, comp)
		if err != nil {
			return nil, fmt.Errorf("paper: figure3 %s: %w", comp, err)
		}
		m, _ := topo.Memory(dev)
		m.ResetQueue()
		done, err := topo.AccessTime(comp, dev, 0, 64, memsim.Read, memsim.Sequential)
		if err != nil {
			return nil, err
		}
		m.ResetQueue()
		tbl.add(comp, "fast local scratch "+req.String(), dev, fmtDur(float64(done)))
		metrics["latency_ns/"+comp] = float64(done)
		metrics["mapped/"+comp+"→"+dev] = 1
	}
	return &Artifact{
		ID:    "figure3",
		Title: "Figure 3: the same logical Memory Region maps to different physical devices per compute device",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

// Figure4 regenerates the ownership-transfer handover: the producer's "out"
// becomes the consumer's "in" by a zero-copy ownership move, versus the
// traditional physical copy, across output sizes.
func Figure4() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		return nil, err
	}
	tbl := &table{header: []string{"Output size", "Ownership transfer", "Physical copy", "Speedup"}}
	metrics := map[string]float64{}
	for _, size := range []int64{64 << 10, 1 << 20, 16 << 20, 64 << 20} {
		// Ownership transfer: producer on cpu0, consumer on cpu1.
		h, err := mgr.Alloc(region.Spec{
			Name: "out", Class: props.Transfer, Size: size,
			Owner: "job/t1", Compute: "node0/cpu0",
		})
		if err != nil {
			return nil, err
		}
		h2, done, err := h.Transfer(0, "job/t2", "node0/cpu1")
		if err != nil {
			return nil, err
		}
		transferCost := done
		if err := h2.Release(); err != nil {
			return nil, err
		}

		// Physical copy: producer region + consumer region + byte copy.
		src, err := mgr.Alloc(region.Spec{Name: "src", Class: props.Transfer, Size: size, Owner: "job/t1", Compute: "node0/cpu0"})
		if err != nil {
			return nil, err
		}
		dst, err := mgr.Alloc(region.Spec{Name: "dst", Class: props.Transfer, Size: size, Owner: "job/t2", Compute: "node0/cpu1"})
		if err != nil {
			return nil, err
		}
		buf := make([]byte, size)
		now, err := src.ReadAt(0, 0, buf)
		if err != nil {
			return nil, err
		}
		copyDone, err := dst.WriteAt(now, 0, buf)
		if err != nil {
			return nil, err
		}
		src.Release() //nolint:errcheck // teardown
		dst.Release() //nolint:errcheck // teardown

		speedup := float64(copyDone) / float64(max64(int64(transferCost), 1))
		tbl.add(fmtBytes(size), fmtDur(float64(transferCost)), fmtDur(float64(copyDone)), fmt.Sprintf("%.0f×", speedup))
		metrics[fmt.Sprintf("transfer_ns/%d", size)] = float64(transferCost)
		metrics[fmt.Sprintf("copy_ns/%d", size)] = float64(copyDone)
	}
	return &Artifact{
		ID:    "figure4",
		Title: "Figure 4: out→in handover as ownership transfer vs physical copy",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

func max64(a, b int64) time.Duration {
	if a > b {
		return time.Duration(a)
	}
	return time.Duration(b)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
