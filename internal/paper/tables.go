package paper

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// table1Devices maps Table 1 rows to testbed device instances, in the
// paper's row order.
var table1Devices = []struct {
	row string
	id  string
}{
	{"Cache", "node0/cache0"},
	{"HBM", "node0/hbm0"},
	{"DRAM", "node0/dram0"},
	{"PMem", "node0/pmem0"},
	{"CXL-DRAM", "node0/cxl0"},
	{"Disagg. Mem.", "memnode0/far0"},
	{"SSD", "node0/ssd0"},
	{"HDD", "node0/hdd0"},
}

// Table1 regenerates "Memory device properties as seen from a CPU": for
// each device the effective latency (one 64 B access issued by cpu0, path
// included), the measured sustained bandwidth (one 64 MiB streaming read),
// granularity, attachment, sync capability, and persistence.
func Table1() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	const cpu = "node0/cpu0"
	tbl := &table{header: []string{"Name", "Bandwidth", "Latency", "Gran.", "Attached", "Sync", "Persist."}}
	metrics := map[string]float64{}
	for _, d := range table1Devices {
		dev, ok := topo.Memory(d.id)
		if !ok {
			return nil, fmt.Errorf("paper: testbed missing %s", d.id)
		}
		caps, ok := topo.EffectiveCaps(cpu, d.id)
		if !ok {
			return nil, fmt.Errorf("paper: %s unreachable from %s", d.id, cpu)
		}
		// Measured latency: one granule-sized sequential access.
		dev.ResetQueue()
		small, err := topo.AccessTime(cpu, d.id, 0, int64(dev.Granularity), memsim.Read, memsim.Sequential)
		if err != nil {
			return nil, err
		}
		// Measured bandwidth: one 64 MiB stream, minus the latency part.
		dev.ResetQueue()
		const streamSize = 64 << 20
		big, err := topo.AccessTime(cpu, d.id, 0, streamSize, memsim.Read, memsim.Sequential)
		if err != nil {
			return nil, err
		}
		bw := float64(streamSize) / big.Seconds()
		dev.ResetQueue()
		tbl.add(d.row, fmtBW(bw), fmtDur(float64(small)), fmt.Sprintf("%dB", dev.Granularity),
			dev.Attach.String(), yesNo(caps.Sync), yesNo(dev.Persistent))
		metrics["latency_ns/"+d.row] = float64(small)
		metrics["bandwidth_bps/"+d.row] = bw
	}
	return &Artifact{
		ID:    "table1",
		Title: "Table 1: memory device properties as seen from a CPU (measured on the simulator)",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

// Table2 regenerates "Common Memory Regions": the three predefined classes
// are allocated from a CPU through the best-fit optimizer; the table shows
// the properties each class demands, the device the runtime chose, and the
// measured access cost.
func Table2() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	mgr, err := region.NewManager(region.Config{
		Topology: topo, Placer: placement.NewBestFit(topo), Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	const cpu = "node0/cpu0"
	tbl := &table{header: []string{"Name", "Properties", "Purpose", "Placed on", "Access"}}
	metrics := map[string]float64{}
	rows := []struct {
		class   props.RegionClass
		props   string
		purpose string
	}{
		{props.PrivateScratch, "{noncoherent, sync}", "Thread-local data"},
		{props.GlobalState, "{coherent, sync}", "Syncing tasks"},
		{props.GlobalScratch, "{coherent, async}", "Data exchange"},
	}
	for _, r := range rows {
		h, err := mgr.Alloc(region.Spec{
			Name: r.class.String(), Class: r.class, Size: 1 << 20,
			Owner: "paper/table2", Compute: cpu,
		})
		if err != nil {
			return nil, fmt.Errorf("paper: alloc %s: %w", r.class, err)
		}
		dev, err := h.DeviceID()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 4096)
		var done time.Duration
		if r.class == props.GlobalScratch {
			f := h.ReadAsync(0, 0, buf)
			done, err = f.Await(0)
		} else {
			done, err = h.ReadAt(0, 0, buf)
		}
		if err != nil {
			return nil, err
		}
		tbl.add(r.class.String(), r.props, r.purpose, dev, fmtDur(float64(done)))
		metrics["access_ns/"+r.class.String()] = float64(done)
		if err := h.Release(); err != nil {
			return nil, err
		}
	}
	return &Artifact{
		ID:    "table2",
		Title: "Table 2: common Memory Regions, as placed by the runtime from a CPU",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

// Table3 regenerates "How applications may use memory regions": the four
// application workloads run end-to-end and the table reports, per app, the
// physical device the runtime picked for its Private Scratch, Global State,
// and Global Scratch exemplars.
func Table3() (*Artifact, error) {
	rt, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	type row struct {
		app     string
		labels  [3]string // private, global state, global scratch
		tasks   [3]string
		purpose [3]string
	}
	rows := []row{
		{app: "DBMS", labels: [3]string{"group-ht", "admission-latch", "agg-index"},
			tasks:   [3]string{"hash-aggregate", "scan", "hash-aggregate"},
			purpose: [3]string{"operator state", "latches", "transient index"}},
		{app: "ML/AI", labels: [3]string{"weights", "worker-state", "sample-cache"},
			tasks:   [3]string{"train", "preprocess", "preprocess"},
			purpose: [3]string{"training state", "worker state", "cached transf. data"}},
		{app: "HPC", labels: [3]string{"grid-a", "job-meta", "result-field"},
			tasks:   [3]string{"relax", "relax", "publish"},
			purpose: [3]string{"node-local memory", "job metadata", "blob storage"}},
		{app: "Streaming", labels: [3]string{"recv-buffer", "cluster-state", "result-cache"},
			tasks:   [3]string{"source", "window-aggregate", "sink"},
			purpose: [3]string{"recv buffer", "cluster state", "result cache"}},
	}
	runs := map[string]*core.Report{}
	for _, build := range []struct {
		app string
		run func() (*core.Report, error)
	}{
		{"DBMS", func() (*core.Report, error) { return rt.Run(workload.DBMS(workload.DefaultDBMS())) }},
		{"ML/AI", func() (*core.Report, error) { return rt.Run(workload.ML(workload.DefaultML())) }},
		{"HPC", func() (*core.Report, error) { return rt.Run(workload.HPC(workload.DefaultHPC())) }},
		{"Streaming", func() (*core.Report, error) { return rt.Run(workload.StreamWindow(workload.DefaultStream(), 0)) }},
	} {
		rep, err := build.run()
		if err != nil {
			return nil, fmt.Errorf("paper: %s: %w", build.app, err)
		}
		runs[build.app] = rep
	}
	tbl := &table{header: []string{"App", "Region", "Role (Table 3 cell)", "Label", "Placed on"}}
	metrics := map[string]float64{}
	classes := [3]string{"Priv. Scratch", "Glob. State", "Glob. Scratch"}
	placedCount := 0
	for _, r := range rows {
		rep := runs[r.app]
		for i := 0; i < 3; i++ {
			dev := rep.Tasks[r.tasks[i]].Regions[r.labels[i]]
			if dev == "" {
				dev = "(not recorded)"
			} else {
				placedCount++
			}
			tbl.add(r.app, classes[i], r.purpose[i], r.labels[i], dev)
		}
	}
	metrics["placements"] = float64(placedCount)
	return &Artifact{
		ID:    "table3",
		Title: "Table 3: application usage of memory regions (devices chosen by the runtime)",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}
