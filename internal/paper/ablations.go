package paper

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/sched"
	"repro/internal/topology"
)

// AblationAsync quantifies §2.2's access-interface argument: a scan over
// NIC-attached far memory with (a) one outstanding request at a time (the
// synchronous discipline) vs (b) an 8-deep asynchronous pipeline.
func AblationAsync() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		return nil, err
	}
	const chunk = 4096
	const chunks = 256
	h, err := mgr.Alloc(region.Spec{
		Name: "far-scan", Class: props.Custom, Size: chunk * chunks,
		Req:   props.Requirements{Latency: props.LatencyHigh, Sync: props.Forbid, ByteAddr: props.Require},
		Owner: "ablation", Compute: "node0/cpu0",
	})
	if err != nil {
		return nil, err
	}
	defer h.Release() //nolint:errcheck // teardown
	dev, _ := h.DeviceID()
	buf := make([]byte, chunk)

	// Synchronous discipline: issue, await, repeat.
	var now time.Duration
	for i := 0; i < chunks; i++ {
		f := h.ReadAsync(now, int64(i*chunk), buf)
		done, err := f.Await(now)
		if err != nil {
			return nil, err
		}
		now = done
	}
	syncTotal := now

	// Reset the device queue for a fair second run.
	if m, ok := topo.Memory(dev); ok {
		m.ResetQueue()
	}

	// Asynchronous pipeline: keep 8 requests in flight.
	const depth = 8
	now = 0
	var inflight []*region.Future
	for i := 0; i < chunks; i++ {
		inflight = append(inflight, h.ReadAsync(now, int64(i*chunk), buf))
		if len(inflight) >= depth {
			done, err := inflight[0].Await(now)
			if err != nil {
				return nil, err
			}
			now = done
			inflight = inflight[1:]
		}
	}
	for _, f := range inflight {
		done, err := f.Await(now)
		if err != nil {
			return nil, err
		}
		now = done
	}
	asyncTotal := now

	speedup := float64(syncTotal) / float64(asyncTotal)
	tbl := &table{header: []string{"Interface", "1 MiB scan of " + dev, "Speedup"}}
	tbl.add("synchronous (1 outstanding)", fmtDur(float64(syncTotal)), "1.0×")
	tbl.add("asynchronous (8-deep pipeline)", fmtDur(float64(asyncTotal)), fmt.Sprintf("%.1f×", speedup))
	return &Artifact{
		ID:    "ablation-async",
		Title: "Ablation A1 (§2.2(3)): asynchronous access interfaces for far memory",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"sync_ns": float64(syncTotal), "async_ns": float64(asyncTotal), "speedup": speedup,
		},
	}, nil
}

// AblationScheduler contrasts the HEFT cost model against FIFO and
// round-robin on a heterogeneous job mix (RTS duty 4).
func AblationScheduler() (*Artifact, error) {
	mkMix := func() *dataflow.Job {
		j := dataflow.NewJob("mix")
		src := j.Task("src", dataflow.Props{Ops: 1e5, OutputBytes: 1 << 16}, nil)
		sink := j.Task("sink", dataflow.Props{Ops: 1e5}, nil)
		for i := 0; i < 20; i++ {
			t := j.Task(fmt.Sprintf("work%02d", i), dataflow.Props{Ops: 4e8, OutputBytes: 1 << 16}, nil)
			src.Then(t)
			t.Then(sink)
		}
		gpu := j.Task("gpu-stage", dataflow.Props{Compute: dataflow.OnGPU, Ops: 1e9, OutputBytes: 1 << 20}, nil)
		src.Then(gpu)
		gpu.Then(sink)
		return j
	}
	tbl := &table{header: []string{"Scheduler", "Makespan", "vs HEFT"}}
	metrics := map[string]float64{}
	var heftSpan time.Duration
	for _, s := range []sched.Scheduler{sched.HEFT{}, sched.FIFO{}, sched.RoundRobin{}} {
		topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
		if err != nil {
			return nil, err
		}
		rt, err := core.New(core.Config{Topology: topo, Scheduler: s})
		if err != nil {
			return nil, err
		}
		rep, err := rt.Run(mkMix())
		if err != nil {
			return nil, err
		}
		if s.Name() == "HEFT" {
			heftSpan = rep.Makespan
		}
		ratio := "1.0×"
		if heftSpan > 0 && s.Name() != "HEFT" {
			ratio = fmt.Sprintf("%.1f×", float64(rep.Makespan)/float64(heftSpan))
		}
		tbl.add(s.Name(), fmtDur(float64(rep.Makespan)), ratio)
		metrics["makespan_ns/"+s.Name()] = float64(rep.Makespan)
	}
	return &Artifact{
		ID:    "ablation-sched",
		Title: "Ablation A2 (§2.3 RTS duty 4): resource-aware scheduling vs naive policies",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

// AblationCoherence quantifies §2.2's ownership argument: updates to a
// counter under shared ownership (two CPUs ping-ponging one cache line
// through the directory) vs exclusive ownership handed over once.
func AblationCoherence() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		return nil, err
	}
	const updates = 512
	buf := make([]byte, 8)

	// Shared ownership: two owners alternate writes to the same line.
	shared, err := mgr.Alloc(region.Spec{
		Name: "counter", Class: props.GlobalState, Size: 4096,
		Owner: "t1", Compute: "node0/cpu0",
	})
	if err != nil {
		return nil, err
	}
	sh2, err := shared.Share("t2", "node0/cpu1")
	if err != nil {
		return nil, err
	}
	var now time.Duration
	for i := 0; i < updates; i++ {
		h := shared
		if i%2 == 1 {
			h = sh2
		}
		done, err := h.WriteAt(now, 0, buf)
		if err != nil {
			return nil, err
		}
		now = done
	}
	sharedTotal := now
	invalidations := float64(mgr.Directory().Stats().Invalidations)
	sh2.Release()      //nolint:errcheck // teardown
	shared.Release()   //nolint:errcheck // teardown
	topo.ResetQueues() // the shared phase must not leave a virtual backlog

	// Exclusive ownership: t1 does half the updates, transfers once, t2
	// finishes — no protocol traffic (§2.2: "consistency guarantees and
	// memory ordering can be relaxed").
	excl, err := mgr.Alloc(region.Spec{
		Name: "counter", Class: props.Transfer, Size: 4096,
		Owner: "t1", Compute: "node0/cpu0",
	})
	if err != nil {
		return nil, err
	}
	now = 0
	for i := 0; i < updates/2; i++ {
		done, err := excl.WriteAt(now, 0, buf)
		if err != nil {
			return nil, err
		}
		now = done
	}
	h2, now, err := excl.Transfer(now, "t2", "node0/cpu1")
	if err != nil {
		return nil, err
	}
	for i := 0; i < updates/2; i++ {
		done, err := h2.WriteAt(now, 0, buf)
		if err != nil {
			return nil, err
		}
		now = done
	}
	exclTotal := now
	h2.Release() //nolint:errcheck // teardown

	ratio := float64(sharedTotal) / float64(exclTotal)
	tbl := &table{header: []string{"Ownership", "512 counter updates", "Invalidations", "Cost"}}
	tbl.add("shared (coherent ping-pong)", fmtDur(float64(sharedTotal)), fmt.Sprintf("%.0f", invalidations), fmt.Sprintf("%.1f×", ratio))
	tbl.add("exclusive + one transfer", fmtDur(float64(exclTotal)), "0", "1.0×")
	return &Artifact{
		ID:    "ablation-coherence",
		Title: "Ablation A3 (§2.2(2)): the coherence cost of shared vs exclusive ownership",
		Text:  tbl.String(),
		Metrics: map[string]float64{
			"shared_ns": float64(sharedTotal), "exclusive_ns": float64(exclTotal),
			"ratio": ratio, "invalidations": invalidations,
		},
	}, nil
}
