package paper

import (
	"fmt"
	"time"

	"repro/internal/dcsim"
)

// Figure1Sweep extends Figure 1 into a parameter sweep: the same machine
// park under increasing offered load (arrival rate), static vs pooled.
// The series shows where the two architectures diverge — at low load both
// idle, at saturation both queue; in between, pooling absorbs the bursts
// static provisioning strands.
func Figure1Sweep() (*Artifact, error) {
	cfg := dcsim.Config{Servers: 8, PerServer: 256 << 30}
	tbl := &table{header: []string{"Offered load", "Static util", "Pooled util", "Static wait", "Pooled wait", "Wait ratio"}}
	metrics := map[string]float64{}
	// Offered load ≈ (meanDuration / meanInterarrival) × meanDemand / park.
	// meanDemand = 0.5 servers; park = 8 servers.
	for _, inter := range []time.Duration{
		40 * time.Millisecond, // ~0.16 load
		20 * time.Millisecond, // ~0.31
		12 * time.Millisecond, // ~0.52
		9 * time.Millisecond,  // ~0.69
		7 * time.Millisecond,  // ~0.89
		6 * time.Millisecond,  // ~1.04 (overload)
	} {
		jobs := dcsim.PoissonJobs(42, 2500, inter, 100*time.Millisecond, cfg.PerServer, 0.1, 0.9)
		st, err := dcsim.Static(cfg, jobs)
		if err != nil {
			return nil, err
		}
		po, err := dcsim.Pooled(cfg, jobs)
		if err != nil {
			return nil, err
		}
		load := float64(100*time.Millisecond) / float64(inter) * 0.5 / 8
		ratio := float64(st.AvgWait) / float64(maxDur(po.AvgWait, time.Microsecond))
		tbl.add(fmt.Sprintf("%.2f", load),
			fmt.Sprintf("%.1f%%", 100*st.AvgUtil), fmt.Sprintf("%.1f%%", 100*po.AvgUtil),
			fmtDur(float64(st.AvgWait)), fmtDur(float64(po.AvgWait)),
			fmt.Sprintf("%.0f×", ratio))
		key := fmt.Sprintf("load_%.2f", load)
		metrics["static_util/"+key] = st.AvgUtil
		metrics["pooled_util/"+key] = po.AvgUtil
		metrics["static_wait_ns/"+key] = float64(st.AvgWait)
		metrics["pooled_wait_ns/"+key] = float64(po.AvgWait)
	}
	return &Artifact{
		ID:    "figure1-sweep",
		Title: "Figure 1 (sweep): static vs pooled across offered load",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
