package paper

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/topology"
)

// Table1Sweep extends Table 1 into an access-size sweep: the effective
// access time of representative tiers (DRAM, CXL-DRAM, far memory, SSD)
// from a CPU across sizes 64 B → 64 MiB. Small accesses are latency-bound
// (the tiers differ by orders of magnitude), large ones bandwidth-bound
// (the tiers converge toward their bandwidth ratios) — the crossovers are
// exactly what drives the runtime's sync-vs-async and chunking decisions.
func Table1Sweep() (*Artifact, error) {
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		return nil, err
	}
	const cpu = "node0/cpu0"
	devices := []struct{ label, id string }{
		{"DRAM", "node0/dram0"},
		{"CXL-DRAM", "node0/cxl0"},
		{"Disagg.", "memnode0/far0"},
		{"SSD", "node0/ssd0"},
	}
	sizes := []int64{64, 4 << 10, 256 << 10, 4 << 20, 64 << 20}
	header := []string{"Access size"}
	for _, d := range devices {
		header = append(header, d.label)
	}
	tbl := &table{header: header}
	metrics := map[string]float64{}
	for _, size := range sizes {
		row := []string{fmtBytes(size)}
		for _, d := range devices {
			dev, _ := topo.Memory(d.id)
			dev.ResetQueue()
			done, err := topo.AccessTime(cpu, d.id, 0, size, memsim.Read, memsim.Sequential)
			if err != nil {
				return nil, err
			}
			dev.ResetQueue()
			row = append(row, fmtDur(float64(done)))
			metrics[fmt.Sprintf("ns/%s/%d", d.label, size)] = float64(done)
		}
		tbl.add(row...)
	}
	// Headline crossover metric: DRAM:far ratio at 64 B vs 64 MiB.
	small := metrics["ns/Disagg./64"] / metrics["ns/DRAM/64"]
	large := metrics[fmt.Sprintf("ns/Disagg./%d", int64(64<<20))] / metrics[fmt.Sprintf("ns/DRAM/%d", int64(64<<20))]
	metrics["far_vs_dram_small"] = small
	metrics["far_vs_dram_large"] = large
	tbl.add("far/DRAM ratio", fmt.Sprintf("%.0f× @64B", small), fmt.Sprintf("%.1f× @64MiB", large), "", "")
	return &Artifact{
		ID:    "table1-sweep",
		Title: "Table 1 (sweep): effective access time vs size — latency-bound to bandwidth-bound",
		Text:  tbl.String(), Metrics: metrics,
	}, nil
}
