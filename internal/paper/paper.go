// Package paper regenerates every table and figure of "Programming Fully
// Disaggregated Systems" (HotOS '23), plus the quantitative claims its
// introduction cites, from the simulated system in this repository. Each
// artifact function returns both a rendered text table (what cmd/paperbench
// prints) and structured metrics (what tests and benches assert on).
//
// The index of artifacts mirrors DESIGN.md §4: T1-T3 are the paper's
// tables, F1-F4 its figures, C1-C5 the intro/discussion claims, A1-A3 the
// design ablations. Absolute numbers come from a simulator and are not
// expected to match the authors' hardware; the *shape* of each result (who
// wins, by roughly what factor) is the reproduction target.
package paper

import (
	"fmt"
	"sort"
	"strings"
)

// Artifact is one regenerated table/figure/claim.
type Artifact struct {
	ID      string // stable identifier, e.g. "table1", "figure4", "claim-numa"
	Title   string
	Text    string             // rendered table
	Metrics map[string]float64 // structured findings for assertions
}

// Generator produces an artifact.
type Generator func() (*Artifact, error)

// Registry returns all artifact generators keyed by ID.
func Registry() map[string]Generator {
	return map[string]Generator{
		"table1":             Table1,
		"table1-sweep":       Table1Sweep,
		"table2":             Table2,
		"table3":             Table3,
		"figure1":            Figure1,
		"figure1-sweep":      Figure1Sweep,
		"figure2":            Figure2,
		"figure3":            Figure3,
		"figure4":            Figure4,
		"claim-numa":         ClaimNUMA,
		"claim-placement":    ClaimPlacement,
		"claim-util":         ClaimUtilization,
		"claim-fault":        ClaimFaultTolerance,
		"claim-swizzle":      ClaimSwizzle,
		"ablation-async":     AblationAsync,
		"ablation-sched":     AblationScheduler,
		"ablation-coherence": AblationCoherence,
		"ablation-tiering":   AblationTiering,
		"ablation-planner":   AblationPlanner,
		"ablation-multijob":  AblationMultiJob,
		"ablation-recovery":  AblationRecovery,
	}
}

// IDs returns the artifact IDs in DESIGN.md order.
func IDs() []string {
	return []string{
		"table1", "table1-sweep", "table2", "table3",
		"figure1", "figure1-sweep", "figure2", "figure3", "figure4",
		"claim-numa", "claim-placement", "claim-util", "claim-fault", "claim-swizzle",
		"ablation-async", "ablation-sched", "ablation-coherence",
		"ablation-tiering", "ablation-planner", "ablation-multijob", "ablation-recovery",
	}
}

// Generate runs one artifact by ID.
func Generate(id string) (*Artifact, error) {
	gen, ok := Registry()[id]
	if !ok {
		known := IDs()
		return nil, fmt.Errorf("paper: unknown artifact %q (known: %s)", id, strings.Join(known, ", "))
	}
	return gen()
}

// table renders rows with a header in aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cols ...string) { t.rows = append(t.rows, cols) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cols)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// MetricKeys returns an artifact's metric names in sorted order, for
// deterministic rendering by cmd/paperbench.
func MetricKeys(a *Artifact) []string {
	out := make([]string, 0, len(a.Metrics))
	for k := range a.Metrics {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fmtDur renders nanosecond floats human-readably.
func fmtDur(ns float64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}

// fmtBW renders bytes/second.
func fmtBW(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.1fGB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.1fMB/s", bps/1e6)
	default:
		return fmt.Sprintf("%.0fB/s", bps)
	}
}

// yesNo renders booleans as the paper's check marks do.
func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
