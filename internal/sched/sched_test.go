package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/topology"
)

func testbed(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func chainJob(n int, ops float64) *dataflow.Job {
	j := dataflow.NewJob("chain")
	var prev *dataflow.Task
	for i := 0; i < n; i++ {
		t := j.Task(string(rune('a'+i)), dataflow.Props{Ops: ops, OutputBytes: 1 << 20}, nil)
		if prev != nil {
			prev.Then(t)
		}
		prev = t
	}
	return j
}

func fanoutJob(width int, ops float64) *dataflow.Job {
	j := dataflow.NewJob("fanout")
	src := j.Task("src", dataflow.Props{Ops: ops, OutputBytes: 4096}, nil)
	sink := j.Task("sink", dataflow.Props{Ops: ops}, nil)
	for i := 0; i < width; i++ {
		t := j.Task(string(rune('A'+i)), dataflow.Props{Ops: ops * 10, OutputBytes: 4096}, nil)
		src.Then(t)
		t.Then(sink)
	}
	return j
}

func allSchedulers() []Scheduler {
	return []Scheduler{HEFT{}, FIFO{}, RoundRobin{}}
}

func TestSchedulersProduceValidSchedules(t *testing.T) {
	topo := testbed(t)
	for _, job := range []*dataflow.Job{chainJob(6, 1e6), fanoutJob(8, 1e6)} {
		for _, s := range allSchedulers() {
			sch, err := s.Schedule(job, topo)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name(), job.Name(), err)
			}
			if err := Validate(job, topo, sch); err != nil {
				t.Errorf("%s on %s: %v", s.Name(), job.Name(), err)
			}
			if sch.Makespan <= 0 {
				t.Errorf("%s: zero makespan", s.Name())
			}
		}
	}
}

func TestDevicePreferenceRespected(t *testing.T) {
	topo := testbed(t)
	j := dataflow.NewJob("gpu-job")
	j.Task("train", dataflow.Props{Compute: dataflow.OnGPU, Ops: 1e9}, nil)
	j.Task("prep", dataflow.Props{Compute: dataflow.OnCPU, Ops: 1e6}, nil)
	for _, s := range allSchedulers() {
		sch, err := s.Schedule(j, topo)
		if err != nil {
			t.Fatal(err)
		}
		if got := sch.Assignments["train"].Compute; got != "node0/gpu0" {
			t.Errorf("%s put the GPU task on %s", s.Name(), got)
		}
		c, _ := topo.Compute(sch.Assignments["prep"].Compute)
		if c.Kind != topology.CPU {
			t.Errorf("%s put the CPU task on %s", s.Name(), c.Kind)
		}
	}
}

func TestUnsatisfiablePreference(t *testing.T) {
	topo, err := topology.BuildSingleNode(topology.SingleNodeConfig{WithGPU: false})
	if err != nil {
		t.Fatal(err)
	}
	j := dataflow.NewJob("needs-gpu")
	j.Task("t", dataflow.Props{Compute: dataflow.OnGPU, Ops: 1}, nil)
	for _, s := range allSchedulers() {
		if _, err := s.Schedule(j, topo); !errors.Is(err, ErrNoDevice) {
			t.Errorf("%s: err = %v, want ErrNoDevice", s.Name(), err)
		}
	}
}

func TestHEFTPrefersFastDevices(t *testing.T) {
	// An unconstrained heavy task should land on the fastest device (TPU
	// at 4000 Gops in the testbed).
	topo := testbed(t)
	j := dataflow.NewJob("heavy")
	j.Task("crunch", dataflow.Props{Ops: 1e12}, nil)
	sch, err := HEFT{}.Schedule(j, topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := sch.Assignments["crunch"].Compute; got != "node0/tpu0" {
		t.Errorf("HEFT put the heavy task on %s, want the TPU", got)
	}
}

func TestHEFTBeatsBaselinesOnHeterogeneousMix(t *testing.T) {
	// A wide fan-out of heavy unconstrained tasks: HEFT load-balances onto
	// the fast accelerators; FIFO piles everything onto the first device.
	topo := testbed(t)
	job := fanoutJob(24, 1e8)
	heft, err := HEFT{}.Schedule(job, topo)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := FIFO{}.Schedule(job, topo)
	if err != nil {
		t.Fatal(err)
	}
	if heft.Makespan >= fifo.Makespan {
		t.Errorf("HEFT (%v) must beat FIFO (%v) on a heterogeneous mix", heft.Makespan, fifo.Makespan)
	}
}

func TestChainRespectsPrecedenceTimes(t *testing.T) {
	topo := testbed(t)
	job := chainJob(5, 1e7)
	for _, s := range allSchedulers() {
		sch, err := s.Schedule(job, topo)
		if err != nil {
			t.Fatal(err)
		}
		prevFinish := sch.Assignments["a"].Finish
		for _, id := range []string{"b", "c", "d", "e"} {
			a := sch.Assignments[id]
			if a.Start < prevFinish {
				t.Errorf("%s: %s starts at %v before predecessor finished at %v", s.Name(), id, a.Start, prevFinish)
			}
			prevFinish = a.Finish
		}
	}
}

func TestScheduleOrderSortsByStart(t *testing.T) {
	topo := testbed(t)
	sch, err := HEFT{}.Schedule(fanoutJob(4, 1e6), topo)
	if err != nil {
		t.Fatal(err)
	}
	order := sch.Order()
	if order[0] != "src" {
		t.Errorf("first scheduled must be src, got %s", order[0])
	}
	if order[len(order)-1] != "sink" {
		t.Errorf("last scheduled must be sink, got %s", order[len(order)-1])
	}
	for i := 1; i < len(order); i++ {
		if sch.Assignments[order[i]].Start < sch.Assignments[order[i-1]].Start {
			t.Fatal("Order() must be non-decreasing in start time")
		}
	}
}

func TestCommCostDiscouragesPointlessMigration(t *testing.T) {
	// Two tiny chained tasks with a huge intermediate result: HEFT should
	// co-locate them (zero comm) rather than hop devices.
	topo := testbed(t)
	j := dataflow.NewJob("colocate")
	a := j.Task("a", dataflow.Props{Ops: 1e6, OutputBytes: 1 << 30}, nil)
	b := j.Task("b", dataflow.Props{Ops: 1e6}, nil)
	a.Then(b)
	sch, err := HEFT{}.Schedule(j, topo)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Assignments["a"].Compute != sch.Assignments["b"].Compute {
		t.Errorf("1 GiB handover split across %s and %s", sch.Assignments["a"].Compute, sch.Assignments["b"].Compute)
	}
}

func TestValidateCatchesBrokenSchedules(t *testing.T) {
	topo := testbed(t)
	job := chainJob(3, 1e6)
	sch, err := HEFT{}.Schedule(job, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Break precedence.
	bad := *sch
	bad.Assignments = map[string]Assignment{}
	for k, v := range sch.Assignments {
		bad.Assignments[k] = v
	}
	a := bad.Assignments["b"]
	a.Start = 0
	bad.Assignments["b"] = a
	if err := Validate(job, topo, &bad); err == nil {
		t.Error("precedence violation must be caught")
	}
	// Drop a task.
	delete(bad.Assignments, "c")
	if err := Validate(job, topo, &bad); err == nil {
		t.Error("missing assignment must be caught")
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	topo := testbed(t)
	job := fanoutJob(10, 1e7)
	for _, s := range allSchedulers() {
		s1, err := s.Schedule(job, topo)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := s.Schedule(job, topo)
		if err != nil {
			t.Fatal(err)
		}
		for id, a1 := range s1.Assignments {
			if a2 := s2.Assignments[id]; a1 != a2 {
				t.Fatalf("%s: nondeterministic assignment for %s: %+v vs %+v", s.Name(), id, a1, a2)
			}
		}
	}
}

// Property: on random DAGs, every scheduler yields a valid schedule and
// HEFT's makespan never exceeds FIFO's by more than rounding noise.
func TestRandomDAGScheduleProperty(t *testing.T) {
	topo := testbed(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		j := dataflow.NewJob("rand")
		tasks := make([]*dataflow.Task, n)
		prefs := []dataflow.DevicePref{dataflow.AnyDevice, dataflow.OnCPU, dataflow.OnGPU}
		for i := range tasks {
			tasks[i] = j.Task(string(rune('a'+i)), dataflow.Props{
				Compute:     prefs[rng.Intn(len(prefs))],
				Ops:         float64(1+rng.Intn(1000)) * 1e5,
				OutputBytes: int64(rng.Intn(1 << 20)),
			}, nil)
		}
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				if rng.Intn(3) == 0 {
					tasks[i].Then(tasks[k])
				}
			}
		}
		var heftSpan, fifoSpan float64
		for _, s := range allSchedulers() {
			sch, err := s.Schedule(j, topo)
			if err != nil {
				return false
			}
			if Validate(j, topo, sch) != nil {
				return false
			}
			switch s.Name() {
			case "HEFT":
				heftSpan = float64(sch.Makespan)
			case "FIFO":
				fifoSpan = float64(sch.Makespan)
			}
		}
		return heftSpan <= fifoSpan*1.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHEFT(b *testing.B) {
	topo := testbed(b)
	job := fanoutJob(26, 1e7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (HEFT{}).Schedule(job, topo); err != nil {
			b.Fatal(err)
		}
	}
}
