package sched

// Pre-execution cost estimation. SLO-aware admission (core.SLOPolicy) prices
// every submission before committing a queue slot: the scheduler's makespan
// prediction — the same figure HEFT optimizes — becomes the service-time
// input of the admission queue model, and the critical path is the floor no
// amount of capacity can beat. Keeping the estimator in this package keeps
// the prediction and the plan consistent: whatever cost model the scheduler
// uses to place tasks is the cost model admission judges deadlines with.

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/topology"
)

// Estimate is the scheduler's prediction for one job on an idle testbed.
type Estimate struct {
	// Makespan is the planned completion time of the job's last task — the
	// service-time estimate SLO admission feeds its queue model.
	Makespan time.Duration
	// CriticalPath is the longest dependency chain under mean execution and
	// communication costs — the latency floor regardless of capacity. A
	// deadline below this is infeasible even on an idle machine.
	CriticalPath time.Duration
	// TotalWork is the sum of per-task mean execution times — the capacity
	// the job consumes, which bounds sustainable admission rate.
	TotalWork time.Duration
	// Tasks is the job's task count.
	Tasks int
}

// upwardRanks computes the HEFT cost-model primitives shared by scheduling
// and estimation: the topological order, each task's mean execution time
// across its eligible devices, and each task's upward rank (critical-path
// length to a sink under mean costs).
func upwardRanks(job *dataflow.Job, topo *topology.Topology) ([]*dataflow.Task, map[*dataflow.Task]time.Duration, map[*dataflow.Task]time.Duration, error) {
	order, err := job.TopoOrder()
	if err != nil {
		return nil, nil, nil, err
	}
	meanExec := make(map[*dataflow.Task]time.Duration, len(order))
	for _, t := range order {
		devs := eligible(t, topo)
		if len(devs) == 0 {
			return nil, nil, nil, fmt.Errorf("%w: %s wants %s", ErrNoDevice, t.ID(), t.Props().Compute)
		}
		var sum time.Duration
		for _, d := range devs {
			sum += execTime(t, d)
		}
		meanExec[t] = sum / time.Duration(len(devs))
	}
	// Mean communication: a representative cross-device figure.
	meanComm := func(t *dataflow.Task) time.Duration {
		b := t.Props().OutputBytes
		if b <= 0 {
			return 0
		}
		return time.Duration(float64(b) / 20e9 * float64(time.Second))
	}
	// Upward ranks, computed in reverse topological order.
	rank := make(map[*dataflow.Task]time.Duration, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		var max time.Duration
		for _, s := range t.Succs() {
			v := meanComm(t) + rank[s]
			if v > max {
				max = v
			}
		}
		rank[t] = meanExec[t] + max
	}
	return order, meanExec, rank, nil
}

// EstimateJob prices a job on an idle topology with scheduler s (nil gives
// HEFT). The returned schedule is the plan the estimate is derived from —
// callers that go on to execute the job can reuse it instead of replanning,
// which is how the serving path keeps SLO admission from doubling the
// scheduling cost of every accepted submission.
func EstimateJob(job *dataflow.Job, topo *topology.Topology, s Scheduler) (Estimate, *Schedule, error) {
	if s == nil {
		s = HEFT{}
	}
	schedule, err := s.Schedule(job, topo)
	if err != nil {
		return Estimate{}, nil, err
	}
	order, meanExec, rank, err := upwardRanks(job, topo)
	if err != nil {
		return Estimate{}, nil, err
	}
	est := Estimate{Makespan: schedule.Makespan, Tasks: len(order)}
	for _, t := range order {
		est.TotalWork += meanExec[t]
		if rank[t] > est.CriticalPath {
			est.CriticalPath = rank[t]
		}
	}
	return est, schedule, nil
}
