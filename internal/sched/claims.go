package sched

import "time"

// This file implements the rank-ordered virtual-core claim ledger the
// wavefront executor grants against. The ledger is the determinism-critical
// half of parallel dispatch: per compute device, tasks claim cores strictly
// in rank order, and a claim is granted only when the chosen core's
// availability can no longer be lowered by any in-flight lower rank. The
// executor used to inline this machinery per device and grant one claim per
// wakeup; the ledger batches instead — GrantBatch walks the whole run of
// consecutive grantable head-of-queue ranks inside one critical section, so
// a completion that unblocks several ranks costs one pass, not one
// lock-acquire/wake cycle per rank.
//
// The ledger itself is not goroutine-safe: callers (the wavefront pool)
// serialize access under their own dispatcher lock, which is where the
// "one critical section" batching happens.

// Claim is one granted virtual-core reservation: the rank holding the core
// and the virtual time its task starts.
type Claim struct {
	Rank  int
	Start time.Duration
}

// Grant is one GrantBatch decision: rank k starts on core at start.
type Grant struct {
	Rank  int
	Core  int
	Start time.Duration
}

// ClaimLedger is the per-compute-device claim state: the ascending queue of
// ranks still awaiting a core and the claims currently in flight.
type ClaimLedger struct {
	queue  []int         // ranks awaiting a core claim, ascending
	held   map[int]Claim // core index → in-flight claim
	grants []Grant       // reusable GrantBatch result buffer
}

// NewClaimLedger returns an empty ledger.
func NewClaimLedger() *ClaimLedger {
	return &ClaimLedger{held: make(map[int]Claim)}
}

// Enqueue appends a rank to the claim queue. Callers enqueue in ascending
// rank order (the wavefront builds queues by iterating ranks 0..n-1).
func (l *ClaimLedger) Enqueue(rank int) { l.queue = append(l.queue, rank) }

// Release drops the in-flight claim on a core (task finished, or a failure
// revoked an unlaunched claim).
func (l *ClaimLedger) Release(core int) { delete(l.held, core) }

// GrantBatch grants claims to the longest run of consecutive grantable
// head-of-queue ranks in one pass and returns them. A rank is grantable when
// it is below limit (the failure frontier; pass len(ready) when no rank is
// excluded), ready[rank] is true (DAG-ready and not yet claimed), a core is
// free, and the determinism guard holds: the free core's availability must
// not exceed the earliest in-flight claim's start, since an in-flight task
// finishes no earlier than it starts and could otherwise still lower the
// chosen clock. readyAt[rank] is the max predecessor finish; base floors
// every start (retry backoff).
//
// The returned slice is reused by the next GrantBatch call — callers consume
// it before touching the ledger again.
func (l *ClaimLedger) GrantBatch(cores []time.Duration, base time.Duration, limit int, ready []bool, readyAt []time.Duration) []Grant {
	l.grants = l.grants[:0]
	for len(l.queue) > 0 {
		k := l.queue[0]
		if k >= limit || !ready[k] {
			break // head not dispatchable: later ranks must wait their turn
		}
		cand, ok := l.freeCore(cores)
		if !ok {
			break // every core is in flight
		}
		if s, held := l.minHeldStart(); held && cores[cand] > s {
			break
		}
		start := readyAt[k]
		if cores[cand] > start {
			start = cores[cand]
		}
		if base > start {
			start = base
		}
		l.held[cand] = Claim{Rank: k, Start: start}
		l.grants = append(l.grants, Grant{Rank: k, Core: cand, Start: start})
		l.queue = l.queue[1:]
	}
	return l.grants
}

// freeCore returns the earliest-available core not held by an in-flight
// claim (lowest index on ties — the same tie-break sequential argmin used).
func (l *ClaimLedger) freeCore(cores []time.Duration) (int, bool) {
	best, found := 0, false
	for i := range cores {
		if _, busy := l.held[i]; busy {
			continue
		}
		if !found || cores[i] < cores[best] {
			best, found = i, true
		}
	}
	return best, found
}

// minHeldStart returns the earliest start among in-flight claims.
func (l *ClaimLedger) minHeldStart() (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, c := range l.held {
		if !found || c.Start < min {
			min, found = c.Start, true
		}
	}
	return min, found
}
