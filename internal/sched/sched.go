// Package sched implements resource-aware task scheduling — RTS duty (4) of
// §2.3: mapping tasks onto heterogeneous compute devices "using cost models
// that consider topology and access paths". The primary policy is HEFT
// (Heterogeneous Earliest Finish Time): tasks are prioritized by upward
// rank (critical-path length under mean costs) and greedily assigned to the
// device minimizing their earliest finish time, including the cost of
// moving the predecessor's output across the interconnect.
//
// FIFO and round-robin baselines quantify what the cost model buys
// (ablation A2 in DESIGN.md).
package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataflow"
	"repro/internal/topology"
)

// Assignment is one task's scheduled placement.
type Assignment struct {
	Task    string
	Compute string
	Start   time.Duration
	Finish  time.Duration
}

// Schedule is a full plan for a job.
type Schedule struct {
	Policy      string
	Assignments map[string]Assignment
	Makespan    time.Duration
}

// Order returns task IDs sorted by scheduled start (ties by ID) — the
// execution order internal/core follows.
func (s *Schedule) Order() []string {
	ids := make([]string, 0, len(s.Assignments))
	for id := range s.Assignments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := s.Assignments[ids[a]], s.Assignments[ids[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return ids[a] < ids[b]
	})
	return ids
}

// BatchBefore is the deterministic cross-job dispatch order used when a
// serving batch overlaps several jobs on one worker pool: task rank first
// (the within-job sequential order), submission sequence as the tiebreak.
// Wall-clock interleaving between batch members is thereby a pure function
// of the batch — independent of pool size and goroutine scheduling — which
// is the batch-wide counterpart of the per-job rank order.
func BatchBefore(rankA, seqA, rankB, seqB int) bool {
	if rankA != rankB {
		return rankA < rankB
	}
	return seqA < seqB
}

// Scheduler plans a job onto a topology.
type Scheduler interface {
	Schedule(job *dataflow.Job, topo *topology.Topology) (*Schedule, error)
	Name() string
}

// ErrNoDevice is returned when a task's device preference cannot be met.
var ErrNoDevice = errors.New("sched: no compute device satisfies the task's preference")

// eligible returns the compute devices a task may run on.
func eligible(t *dataflow.Task, topo *topology.Topology) []*topology.ComputeDevice {
	if kind, ok := t.Props().Compute.Kind(); ok {
		return topo.ComputesByKind(kind)
	}
	return topo.Computes()
}

// execTime estimates a task's run time on a device from its declared Ops.
func execTime(t *dataflow.Task, c *topology.ComputeDevice) time.Duration {
	if t.Props().Ops <= 0 {
		return time.Microsecond // bookkeeping floor
	}
	sec := t.Props().Ops / (c.Gops * 1e9)
	return time.Duration(sec * float64(time.Second))
}

// commTime estimates moving `bytes` from the producer's device to the
// consumer's. Same device → free (ownership transfer, Fig. 4). Otherwise we
// price the cheapest path between the two compute endpoints.
func commTime(topo *topology.Topology, from, to string, bytes int64) time.Duration {
	if from == to || bytes <= 0 {
		return 0
	}
	p, ok := topo.Path(from, to)
	if !ok {
		return time.Millisecond // effectively discourages the pairing
	}
	xfer := time.Duration(float64(bytes) / p.Bandwidth * float64(time.Second))
	return p.Latency + xfer
}

// coreState tracks per-core availability for one compute device.
type coreState struct {
	cores []time.Duration
}

func newCoreState(c *topology.ComputeDevice, initial []time.Duration) *coreState {
	cores := make([]time.Duration, c.Cores)
	copy(cores, initial)
	return &coreState{cores: cores}
}

// earliest returns the index and free time of the first available core.
func (cs *coreState) earliest() (int, time.Duration) {
	best, bestAt := 0, cs.cores[0]
	for i, at := range cs.cores {
		if at < bestAt {
			best, bestAt = i, at
		}
	}
	return best, bestAt
}

// HEFT is the cost-model scheduler.
type HEFT struct{}

// Name implements Scheduler.
func (HEFT) Name() string { return "HEFT" }

// Schedule implements Scheduler.
func (h HEFT) Schedule(job *dataflow.Job, topo *topology.Topology) (*Schedule, error) {
	return h.ScheduleLoaded(job, topo, nil)
}

// ScheduleLoaded plans the job onto a machine that is already busy:
// initial[device] gives per-core times before which nothing can start —
// how the runtime packs concurrently submitted jobs across the cluster.
func (HEFT) ScheduleLoaded(job *dataflow.Job, topo *topology.Topology, initial map[string][]time.Duration) (*Schedule, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	order, _, rank, err := upwardRanks(job, topo)
	if err != nil {
		return nil, err
	}
	// Priority: rank descending (ties by topological position for
	// determinism and dependency safety).
	pos := make(map[*dataflow.Task]int, len(order))
	for i, t := range order {
		pos[t] = i
	}
	prio := append([]*dataflow.Task(nil), order...)
	sort.SliceStable(prio, func(a, b int) bool {
		if rank[prio[a]] != rank[prio[b]] {
			return rank[prio[a]] > rank[prio[b]]
		}
		return pos[prio[a]] < pos[prio[b]]
	})

	states := make(map[string]*coreState)
	for _, c := range topo.Computes() {
		states[c.ID] = newCoreState(c, initial[c.ID])
	}
	asg := make(map[string]Assignment, len(order))
	placedOn := make(map[*dataflow.Task]string, len(order))
	var makespan time.Duration
	for _, t := range prio {
		bestDev, bestCore := "", -1
		var bestStart, bestFinish time.Duration
		for _, c := range eligible(t, topo) {
			// Ready time: all predecessor outputs delivered to c.
			var ready time.Duration
			for _, p := range t.Preds() {
				pa := asg[p.ID()]
				arr := pa.Finish + commTime(topo, placedOn[p], c.ID, p.Props().OutputBytes)
				if arr > ready {
					ready = arr
				}
			}
			core, free := states[c.ID].earliest()
			start := ready
			if free > start {
				start = free
			}
			finish := start + execTime(t, c)
			if bestDev == "" || finish < bestFinish {
				bestDev, bestCore, bestStart, bestFinish = c.ID, core, start, finish
			}
		}
		states[bestDev].cores[bestCore] = bestFinish
		asg[t.ID()] = Assignment{Task: t.ID(), Compute: bestDev, Start: bestStart, Finish: bestFinish}
		placedOn[t] = bestDev
		if bestFinish > makespan {
			makespan = bestFinish
		}
	}
	return &Schedule{Policy: "HEFT", Assignments: asg, Makespan: makespan}, nil
}

// FIFO assigns tasks in topological order to the first eligible device kind
// listed by the topology, ignoring cost entirely.
type FIFO struct{}

// Name implements Scheduler.
func (FIFO) Name() string { return "FIFO" }

// Schedule implements Scheduler.
func (FIFO) Schedule(job *dataflow.Job, topo *topology.Topology) (*Schedule, error) {
	return listSchedule(job, topo, "FIFO", func(t *dataflow.Task, devs []*topology.ComputeDevice, i int) *topology.ComputeDevice {
		return devs[0]
	})
}

// RoundRobin cycles through eligible devices without regard to load or
// speed.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "round-robin" }

// Schedule implements Scheduler.
func (RoundRobin) Schedule(job *dataflow.Job, topo *topology.Topology) (*Schedule, error) {
	return listSchedule(job, topo, "round-robin", func(t *dataflow.Task, devs []*topology.ComputeDevice, i int) *topology.ComputeDevice {
		return devs[i%len(devs)]
	})
}

// listSchedule is the shared machinery of the naive baselines.
func listSchedule(job *dataflow.Job, topo *topology.Topology, policy string,
	pick func(*dataflow.Task, []*topology.ComputeDevice, int) *topology.ComputeDevice) (*Schedule, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	order, err := job.TopoOrder()
	if err != nil {
		return nil, err
	}
	states := make(map[string]*coreState)
	for _, c := range topo.Computes() {
		states[c.ID] = newCoreState(c, nil)
	}
	asg := make(map[string]Assignment, len(order))
	placedOn := make(map[*dataflow.Task]string, len(order))
	var makespan time.Duration
	for i, t := range order {
		devs := eligible(t, topo)
		if len(devs) == 0 {
			return nil, fmt.Errorf("%w: %s wants %s", ErrNoDevice, t.ID(), t.Props().Compute)
		}
		c := pick(t, devs, i)
		var ready time.Duration
		for _, p := range t.Preds() {
			pa := asg[p.ID()]
			arr := pa.Finish + commTime(topo, placedOn[p], c.ID, p.Props().OutputBytes)
			if arr > ready {
				ready = arr
			}
		}
		core, free := states[c.ID].earliest()
		start := ready
		if free > start {
			start = free
		}
		finish := start + execTime(t, c)
		states[c.ID].cores[core] = finish
		asg[t.ID()] = Assignment{Task: t.ID(), Compute: c.ID, Start: start, Finish: finish}
		placedOn[t] = c.ID
		if finish > makespan {
			makespan = finish
		}
	}
	return &Schedule{Policy: policy, Assignments: asg, Makespan: makespan}, nil
}

// Validate checks a schedule against the job: every task assigned exactly
// once, precedence respected, and per-core capacity never exceeded.
func Validate(job *dataflow.Job, topo *topology.Topology, s *Schedule) error {
	if len(s.Assignments) != job.Len() {
		return fmt.Errorf("sched: %d assignments for %d tasks", len(s.Assignments), job.Len())
	}
	for _, t := range job.Tasks() {
		a, ok := s.Assignments[t.ID()]
		if !ok {
			return fmt.Errorf("sched: task %s unassigned", t.ID())
		}
		if a.Finish < a.Start {
			return fmt.Errorf("sched: task %s finishes before it starts", t.ID())
		}
		c, ok := topo.Compute(a.Compute)
		if !ok {
			return fmt.Errorf("sched: task %s on unknown device %s", t.ID(), a.Compute)
		}
		if kind, restricted := t.Props().Compute.Kind(); restricted && c.Kind != kind {
			return fmt.Errorf("sched: task %s wants %s, got %s", t.ID(), t.Props().Compute, c.Kind)
		}
		for _, p := range t.Preds() {
			pa := s.Assignments[p.ID()]
			if a.Start < pa.Finish {
				return fmt.Errorf("sched: task %s starts before predecessor %s finishes", t.ID(), p.ID())
			}
		}
	}
	// Capacity: count overlapping tasks per device at each start instant.
	byDev := make(map[string][]Assignment)
	for _, a := range s.Assignments {
		byDev[a.Compute] = append(byDev[a.Compute], a)
	}
	for dev, as := range byDev {
		c, _ := topo.Compute(dev)
		for _, probe := range as {
			overlap := 0
			for _, other := range as {
				if other.Start <= probe.Start && probe.Start < other.Finish {
					overlap++
				}
			}
			if overlap > c.Cores {
				return fmt.Errorf("sched: %s runs %d tasks concurrently with %d cores", dev, overlap, c.Cores)
			}
		}
	}
	return nil
}

// Ranks returns every task's deterministic execution rank — its index in
// the job's topological order (Kahn's algorithm with insertion-index
// tie-breaking, so the result is stable run-to-run). The wavefront executor
// uses the rank as the global tie-breaker wherever two ready tasks contend
// for the same virtual core, which is what keeps parallel dispatch
// byte-for-byte deterministic. The order itself is returned alongside so
// callers don't recompute it.
func Ranks(job *dataflow.Job) (map[string]int, []*dataflow.Task, error) {
	order, err := job.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	ranks := make(map[string]int, len(order))
	for i, t := range order {
		ranks[t.ID()] = i
	}
	return ranks, order, nil
}

// PredCounts returns every task's unmet-predecessor count — the wavefront
// executor's initial ready-set state: tasks with a zero count are
// immediately dispatchable.
func PredCounts(job *dataflow.Job) map[string]int {
	counts := make(map[string]int, len(job.Tasks()))
	for _, t := range job.Tasks() {
		counts[t.ID()] = len(t.Preds())
	}
	return counts
}
