package allocator

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("size 0 must be rejected")
	}
	if _, err := New(100); err == nil {
		t.Error("non-power-of-two must be rejected")
	}
	if _, err := New(32); err == nil {
		t.Error("below minimum block must be rejected")
	}
	if _, err := New(1 << 20); err != nil {
		t.Errorf("1 MiB arena should work: %v", err)
	}
}

func TestBlockSize(t *testing.T) {
	cases := map[int64]int64{1: 64, 64: 64, 65: 128, 100: 128, 128: 128, 4096: 4096, 5000: 8192}
	for in, want := range cases {
		if got := BlockSize(in); got != want {
			t.Errorf("BlockSize(%d) = %d, want %d", in, got, want)
		}
	}
	if BlockSize(0) != 0 || BlockSize(-1) != 0 {
		t.Error("non-positive sizes round to 0")
	}
}

func TestAllocFreeRoundtrip(t *testing.T) {
	b, err := New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	off, err := b.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Used() != 1024 {
		t.Errorf("Used = %d, want rounded 1024", b.Used())
	}
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 0 {
		t.Errorf("Used after free = %d, want 0", b.Used())
	}
	if b.LargestFree() != 1<<16 {
		t.Errorf("free space must fully coalesce, largest = %d", b.LargestFree())
	}
}

func TestAllocRejectsBadSizes(t *testing.T) {
	b, _ := New(1 << 12)
	if _, err := b.Alloc(0); err == nil {
		t.Error("Alloc(0) must fail")
	}
	if _, err := b.Alloc(-1); err == nil {
		t.Error("Alloc(-1) must fail")
	}
	if _, err := b.Alloc(1 << 13); err == nil {
		t.Error("oversized request must fail")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	b, _ := New(1 << 12)
	off, _ := b.Alloc(64)
	if err := b.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(off); err == nil {
		t.Error("double free must be detected")
	}
	if err := b.Free(12345); err == nil {
		t.Error("free of never-allocated offset must fail")
	}
}

func TestExhaustion(t *testing.T) {
	b, _ := New(1 << 12) // 4 KiB
	var offs []int64
	for i := 0; i < 64; i++ { // 64 × 64 B fills the arena
		off, err := b.Alloc(64)
		if err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
		offs = append(offs, off)
	}
	if _, err := b.Alloc(64); err == nil {
		t.Error("65th allocation must fail")
	}
	for _, off := range offs {
		if err := b.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	if b.LargestFree() != 1<<12 {
		t.Error("arena must coalesce back to one block")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestOffsetsDisjoint(t *testing.T) {
	b, _ := New(1 << 14)
	seen := map[int64]int64{} // offset → size
	for i := 0; i < 20; i++ {
		size := int64(64 << (i % 4))
		off, err := b.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		for o, s := range seen {
			if off < o+s && o < off+size {
				t.Fatalf("overlap: [%d,%d) with [%d,%d)", off, off+size, o, o+s)
			}
		}
		seen[off] = size
	}
}

func TestFragmentationMetric(t *testing.T) {
	b, _ := New(1 << 12)
	if f := b.Fragmentation(); f != 0 {
		t.Errorf("pristine arena fragmentation = %f, want 0", f)
	}
	// Allocate all 64 B blocks, free every other one: free space is maximally
	// fragmented into 64 B islands.
	var offs []int64
	for {
		off, err := b.Alloc(64)
		if err != nil {
			break
		}
		offs = append(offs, off)
	}
	for i := 0; i < len(offs); i += 2 {
		if err := b.Free(offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if b.LargestFree() != 64 {
		t.Errorf("LargestFree = %d, want 64", b.LargestFree())
	}
	if f := b.Fragmentation(); f < 0.9 {
		t.Errorf("checkerboard fragmentation = %f, want ≥ 0.9", f)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDeterministicFirstFit(t *testing.T) {
	// Two identical allocators given identical request streams must return
	// identical offsets (the runtime relies on this for reproducible runs).
	a, _ := New(1 << 16)
	b, _ := New(1 << 16)
	for i := 0; i < 50; i++ {
		sa, e1 := a.Alloc(int64(64 + i*17))
		sb, e2 := b.Alloc(int64(64 + i*17))
		if (e1 == nil) != (e2 == nil) || sa != sb {
			t.Fatalf("divergence at %d: %d/%v vs %d/%v", i, sa, e1, sb, e2)
		}
	}
}

// Property: any interleaving of allocs and frees preserves the allocator
// invariants and never hands out overlapping blocks.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := New(1 << 16)
		if err != nil {
			return false
		}
		type blk struct{ off, size int64 }
		var live []blk
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				if err := b.Free(live[k].off); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				size := int64(1 + rng.Intn(4096))
				off, err := b.Alloc(size)
				if err != nil {
					continue // exhaustion is fine
				}
				rounded := BlockSize(size)
				for _, l := range live {
					if off < l.off+l.size && l.off < off+rounded {
						return false
					}
				}
				live = append(live, blk{off, rounded})
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: freeing everything always restores a fully coalesced arena.
func TestFullCoalesceProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		b, err := New(1 << 18)
		if err != nil {
			return false
		}
		var offs []int64
		for _, s := range sizes {
			off, err := b.Alloc(int64(s) + 1)
			if err != nil {
				break
			}
			offs = append(offs, off)
		}
		// Free in reverse order.
		for i := len(offs) - 1; i >= 0; i-- {
			if err := b.Free(offs[i]); err != nil {
				return false
			}
		}
		return b.Used() == 0 && b.LargestFree() == 1<<18 && b.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	buddy, err := New(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := buddy.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := buddy.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocChurn(b *testing.B) {
	buddy, err := New(1 << 28)
	if err != nil {
		b.Fatal(err)
	}
	var live []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(live) >= 1024 {
			if err := buddy.Free(live[0]); err != nil {
				b.Fatal(err)
			}
			live = live[1:]
		}
		off, err := buddy.Alloc(int64(64 << (i % 8)))
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, off)
	}
}
