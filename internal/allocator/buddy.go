// Package allocator provides the per-device physical allocators the runtime
// system uses when it maps Memory Regions onto simulated devices. It is a
// classic binary buddy allocator: power-of-two blocks, O(log n) allocate and
// free, buddies coalesce on free. The runtime keeps one Buddy per memory
// device and carves regions out of the device's backing arena.
package allocator

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// MinOrder is the smallest block the allocator hands out (64 B, one cache
// line — also the dominant granularity in Table 1).
const MinOrder = 6

// MaxOrders bounds the number of order levels (2^(6+47) covers any arena).
const maxOrders = 48

// Buddy is a binary buddy allocator over a byte range [0, size).
// The zero value is not usable; call New.
type Buddy struct {
	mu       sync.Mutex
	size     int64
	maxOrder int
	// free[k] holds offsets of free blocks of size 2^k, as a set for O(1)
	// buddy lookup during coalescing.
	free []map[int64]struct{}
	// allocated maps offset → order for live blocks.
	allocated map[int64]int
	used      int64
}

// New builds an allocator managing size bytes. Size must be a power of two
// ≥ 2^MinOrder.
func New(size int64) (*Buddy, error) {
	if size < 1<<MinOrder {
		return nil, fmt.Errorf("allocator: size %d below minimum block %d", size, 1<<MinOrder)
	}
	if size&(size-1) != 0 {
		return nil, fmt.Errorf("allocator: size %d not a power of two", size)
	}
	maxOrder := bits.TrailingZeros64(uint64(size))
	if maxOrder >= maxOrders {
		return nil, fmt.Errorf("allocator: size %d too large", size)
	}
	b := &Buddy{
		size:      size,
		maxOrder:  maxOrder,
		free:      make([]map[int64]struct{}, maxOrder+1),
		allocated: make(map[int64]int),
	}
	for i := range b.free {
		b.free[i] = make(map[int64]struct{})
	}
	b.free[maxOrder][0] = struct{}{}
	return b, nil
}

// orderFor returns the smallest order whose block holds n bytes.
func orderFor(n int64) int {
	if n <= 1<<MinOrder {
		return MinOrder
	}
	o := bits.Len64(uint64(n - 1))
	return o
}

// BlockSize returns the rounded size a request of n bytes actually consumes.
func BlockSize(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return 1 << orderFor(n)
}

// Alloc reserves a block of at least n bytes and returns its offset.
func (b *Buddy) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("allocator: alloc of %d bytes", n)
	}
	order := orderFor(n)
	if order > b.maxOrder {
		return 0, fmt.Errorf("allocator: request %d exceeds arena %d", n, b.size)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Find the smallest order ≥ request with a free block.
	k := order
	for k <= b.maxOrder && len(b.free[k]) == 0 {
		k++
	}
	if k > b.maxOrder {
		return 0, fmt.Errorf("allocator: out of memory (want %d, %d used of %d)", n, b.used, b.size)
	}
	// Take the lowest-offset free block for determinism.
	off := int64(-1)
	for o := range b.free[k] {
		if off < 0 || o < off {
			off = o
		}
	}
	delete(b.free[k], off)
	// Split down to the target order, freeing the upper halves.
	for k > order {
		k--
		buddy := off + (1 << k)
		b.free[k][buddy] = struct{}{}
	}
	b.allocated[off] = order
	b.used += 1 << order
	return off, nil
}

// Free releases a previously allocated block and coalesces buddies.
func (b *Buddy) Free(off int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	order, ok := b.allocated[off]
	if !ok {
		return fmt.Errorf("allocator: free of unallocated offset %d", off)
	}
	delete(b.allocated, off)
	b.used -= 1 << order
	for order < b.maxOrder {
		buddy := off ^ (1 << order)
		if _, free := b.free[order][buddy]; !free {
			break
		}
		delete(b.free[order], buddy)
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.free[order][off] = struct{}{}
	return nil
}

// Size returns the arena size.
func (b *Buddy) Size() int64 { return b.size }

// Used returns bytes currently allocated (after power-of-two rounding).
func (b *Buddy) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// LargestFree returns the size of the largest allocatable block — the
// external-fragmentation witness: Size-Used bytes may be free, but only
// LargestFree is contiguous.
func (b *Buddy) LargestFree() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := b.maxOrder; k >= MinOrder; k-- {
		if len(b.free[k]) > 0 {
			return 1 << k
		}
	}
	return 0
}

// Fragmentation returns 1 - LargestFree/TotalFree in [0,1]; 0 when the free
// space is one contiguous block or the arena is full.
func (b *Buddy) Fragmentation() float64 {
	b.mu.Lock()
	totalFree := b.size - b.used
	var largest int64
	for k := b.maxOrder; k >= MinOrder; k-- {
		if len(b.free[k]) > 0 {
			largest = 1 << k
			break
		}
	}
	b.mu.Unlock()
	if totalFree == 0 {
		return 0
	}
	return 1 - float64(largest)/float64(totalFree)
}

// CheckInvariants validates internal consistency (tests and fault drills):
// no block is both free and allocated, free+used accounting matches the
// arena, and no two live or free blocks overlap.
func (b *Buddy) CheckInvariants() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	type span struct {
		off, size int64
		free      bool
	}
	var spans []span
	var freeBytes int64
	for k, set := range b.free {
		for off := range set {
			spans = append(spans, span{off, 1 << k, true})
			freeBytes += 1 << k
		}
	}
	var usedBytes int64
	for off, k := range b.allocated {
		spans = append(spans, span{off, 1 << k, false})
		usedBytes += 1 << k
	}
	if usedBytes != b.used {
		return fmt.Errorf("allocator: used accounting %d != live blocks %d", b.used, usedBytes)
	}
	if freeBytes+usedBytes != b.size {
		return fmt.Errorf("allocator: free %d + used %d != size %d", freeBytes, usedBytes, b.size)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	var pos int64
	for _, s := range spans {
		if s.off != pos {
			return fmt.Errorf("allocator: gap or overlap at offset %d (expected %d)", s.off, pos)
		}
		if s.off%s.size != 0 {
			return fmt.Errorf("allocator: block at %d misaligned for size %d", s.off, s.size)
		}
		pos = s.off + s.size
	}
	if pos != b.size {
		return fmt.Errorf("allocator: spans cover %d of %d", pos, b.size)
	}
	return nil
}
