// Package planner compiles declarative access descriptions into concrete
// access plans — the paper's challenge 7: rather than forcing programmers
// to write "different versions of code targeting different memory types",
// a compilation service turns a declarative description of the intended
// accesses (how many bytes, what chunking, how much computation overlaps)
// into the imperative choice the hardware wants: synchronous loads for near
// memory, an asynchronous pipeline of the right depth for far memory.
//
// The compiler is a cost model over the same device/topology simulator the
// runtime uses, so its estimates are exact for the simulated hardware; an
// Executor then runs the plan against a real region handle.
package planner

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/memsim"
	"repro/internal/region"
	"repro/internal/topology"
)

// AccessSpec is the declarative description of an intended access sequence.
type AccessSpec struct {
	TotalBytes int64          // bytes the task will touch
	ChunkBytes int64          // bytes per logical access (e.g. one record batch)
	Pattern    memsim.Pattern // sequential or random
	Write      bool
	// OverlapOpsPerChunk is the computation (scalar ops) the task performs
	// per chunk, available to hide access latency behind.
	OverlapOpsPerChunk float64
}

// Validate reports malformed specs.
func (s AccessSpec) Validate() error {
	if s.TotalBytes <= 0 || s.ChunkBytes <= 0 {
		return errors.New("planner: total and chunk bytes must be positive")
	}
	if s.ChunkBytes > s.TotalBytes {
		return errors.New("planner: chunk larger than total")
	}
	if s.OverlapOpsPerChunk < 0 {
		return errors.New("planner: negative overlap")
	}
	return nil
}

// Chunks returns the number of accesses the spec describes.
func (s AccessSpec) Chunks() int {
	return int((s.TotalBytes + s.ChunkBytes - 1) / s.ChunkBytes)
}

// Plan is the compiled access strategy.
type Plan struct {
	// Async selects the asynchronous interface; false means blocking
	// loads/stores (only legal on sync-capable placements).
	Async bool
	// Depth is the number of in-flight requests the pipeline keeps.
	Depth int
	// Estimated is the cost model's predicted completion time.
	Estimated time.Duration
	// Device the plan was compiled against (plans are placement-specific,
	// which is the whole point).
	Device string
}

// String renders the plan.
func (p Plan) String() string {
	mode := "sync"
	if p.Async {
		mode = fmt.Sprintf("async(depth=%d)", p.Depth)
	}
	return fmt.Sprintf("%s on %s, est. %v", mode, p.Device, p.Estimated)
}

// candidateDepths are the pipeline depths the compiler considers.
var candidateDepths = []int{1, 2, 4, 8, 16, 32}

// estimate predicts the completion time of the spec against (compute,
// device) with the given pipeline depth, replaying the exact queue
// semantics of the simulator: request i is issued when request i-depth
// completes and the caller has finished its overlap computation.
func estimate(topo *topology.Topology, computeID, deviceID string, spec AccessSpec, depth int, gops float64) (time.Duration, error) {
	dev, ok := topo.Memory(deviceID)
	if !ok {
		return 0, fmt.Errorf("planner: unknown device %s", deviceID)
	}
	path, ok := topo.Path(computeID, deviceID)
	if !ok {
		return 0, fmt.Errorf("planner: %s cannot reach %s", computeID, deviceID)
	}
	kind := memsim.Read
	if spec.Write {
		kind = memsim.Write
	}
	svc := dev.ServiceTime(spec.ChunkBytes, kind, spec.Pattern)
	// Path bandwidth stretch, mirroring Topology.AccessTime.
	if path.Bandwidth < dev.Bandwidth {
		extra := time.Duration(float64(spec.ChunkBytes)/path.Bandwidth*float64(time.Second)) -
			time.Duration(float64(spec.ChunkBytes)/dev.Bandwidth*float64(time.Second))
		if extra > 0 {
			svc += extra
		}
	}
	compute := time.Duration(spec.OverlapOpsPerChunk / (gops * 1e9) * float64(time.Second))
	chunks := spec.Chunks()

	// Replay the simulator's queue semantics: the caller keeps up to
	// `depth` requests in flight; before issuing request i it awaits
	// request i-depth and runs that chunk's computation. Every chunk's
	// computation happens exactly once, after its await.
	completions := make([]time.Duration, chunks)
	var deviceFree, caller time.Duration
	await := func(i int) {
		if completions[i] > caller {
			caller = completions[i]
		}
		caller += compute
	}
	for i := 0; i < chunks; i++ {
		if i >= depth {
			await(i - depth)
		}
		arrive := caller + path.Latency
		if deviceFree > arrive {
			arrive = deviceFree
		}
		done := arrive + svc
		deviceFree = done
		completions[i] = done + path.Latency
	}
	for i := chunks - depth; i < chunks; i++ {
		if i >= 0 {
			await(i)
		}
	}
	return caller, nil
}

// Compile picks the best interface and pipeline depth for the spec against
// the region's current placement, as seen from computeID.
func Compile(topo *topology.Topology, computeID, deviceID string, spec AccessSpec) (Plan, error) {
	if err := spec.Validate(); err != nil {
		return Plan{}, err
	}
	comp, ok := topo.Compute(computeID)
	if !ok {
		return Plan{}, fmt.Errorf("planner: unknown compute %s", computeID)
	}
	caps, ok := topo.EffectiveCaps(computeID, deviceID)
	if !ok {
		return Plan{}, fmt.Errorf("planner: %s cannot reach %s", computeID, deviceID)
	}
	best := Plan{Device: deviceID}
	for _, d := range candidateDepths {
		est, err := estimate(topo, computeID, deviceID, spec, d, comp.Gops)
		if err != nil {
			return Plan{}, err
		}
		if best.Depth == 0 || est < best.Estimated {
			best.Depth = d
			best.Estimated = est
		}
	}
	// Sync only when the device supports it and one-deep won.
	best.Async = best.Depth > 1 || !caps.Sync
	return best, nil
}

// Execute runs a compiled plan against a region handle starting at virtual
// time now, invoking process on each chunk's bytes in order, and returns
// the completion time. The handle's placement must match the plan's device.
func Execute(h *region.Handle, now time.Duration, plan Plan, spec AccessSpec,
	process func(chunk int, data []byte) error) (time.Duration, error) {
	if err := spec.Validate(); err != nil {
		return now, err
	}
	if dev, err := h.DeviceID(); err != nil {
		return now, err
	} else if dev != plan.Device {
		return now, fmt.Errorf("planner: plan compiled for %s but region lives on %s", plan.Device, dev)
	}
	chunks := spec.Chunks()
	type inflight struct {
		fut *region.Future
		buf []byte
		idx int
	}
	var window []inflight
	issue := func(i int) inflight {
		off := int64(i) * spec.ChunkBytes
		n := spec.ChunkBytes
		if off+n > spec.TotalBytes {
			n = spec.TotalBytes - off
		}
		buf := make([]byte, n)
		return inflight{fut: h.ReadAsync(now, off, buf), buf: buf, idx: i}
	}
	drain := func(f inflight) error {
		done, err := f.fut.Await(now)
		if err != nil {
			return err
		}
		now = done
		if process != nil {
			if err := process(f.idx, f.buf); err != nil {
				return err
			}
		}
		return nil
	}
	depth := plan.Depth
	if !plan.Async {
		depth = 1
	}
	for i := 0; i < chunks; i++ {
		window = append(window, issue(i))
		if len(window) >= depth {
			if err := drain(window[0]); err != nil {
				return now, err
			}
			window = window[1:]
		}
	}
	for _, f := range window {
		if err := drain(f); err != nil {
			return now, err
		}
	}
	return now, nil
}
