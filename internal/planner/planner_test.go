package planner

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/placement"
	"repro/internal/props"
	"repro/internal/region"
	"repro/internal/topology"
)

func testbed(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.BuildSingleNode(topology.DefaultSingleNode())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSpecValidation(t *testing.T) {
	bad := []AccessSpec{
		{TotalBytes: 0, ChunkBytes: 1},
		{TotalBytes: 10, ChunkBytes: 0},
		{TotalBytes: 10, ChunkBytes: 20},
		{TotalBytes: 10, ChunkBytes: 5, OverlapOpsPerChunk: -1},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %+v must be invalid", s)
		}
	}
	good := AccessSpec{TotalBytes: 100, ChunkBytes: 30}
	if good.Validate() != nil || good.Chunks() != 4 {
		t.Errorf("chunks = %d, want ceil(100/30)=4", good.Chunks())
	}
}

func TestCompilePicksSyncForNearMemory(t *testing.T) {
	topo := testbed(t)
	spec := AccessSpec{TotalBytes: 1 << 20, ChunkBytes: 4096}
	plan, err := Compile(topo, "node0/cpu0", "node0/dram0", spec)
	if err != nil {
		t.Fatal(err)
	}
	// DRAM from the local CPU: per-chunk wire latency (20ns) is tiny vs
	// service time, so deep pipelining buys little; the plan must be
	// shallow (≤2) — with depth 1 meaning plain loads.
	if plan.Depth > 2 {
		t.Errorf("near-memory plan = %s, want shallow", plan)
	}
}

func TestCompilePicksDeepAsyncForFarMemory(t *testing.T) {
	topo := testbed(t)
	spec := AccessSpec{TotalBytes: 1 << 20, ChunkBytes: 4096}
	plan, err := Compile(topo, "node0/cpu0", "memnode0/far0", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Async || plan.Depth < 2 {
		t.Errorf("far-memory plan = %s, want a pipelined async plan", plan)
	}
	// Always async on async-only devices, even at depth 1.
	caps, _ := topo.EffectiveCaps("node0/cpu0", "memnode0/far0")
	if caps.Sync {
		t.Fatal("testbed invariant: far memory is async-only")
	}
}

func TestCompileErrors(t *testing.T) {
	topo := testbed(t)
	spec := AccessSpec{TotalBytes: 100, ChunkBytes: 10}
	if _, err := Compile(topo, "nope", "node0/dram0", spec); err == nil {
		t.Error("unknown compute must fail")
	}
	if _, err := Compile(topo, "node0/cpu0", "nope", spec); err == nil {
		t.Error("unknown device must fail")
	}
	if _, err := Compile(topo, "node0/cpu0", "node0/dram0", AccessSpec{}); err == nil {
		t.Error("invalid spec must fail")
	}
}

// executeAgainst compiles and runs the spec on a freshly allocated region
// pinned to the device, returning the measured virtual time.
func executeAgainst(t *testing.T, topo *topology.Topology, device string, spec AccessSpec, depthOverride int) time.Duration {
	t.Helper()
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "scan", Class: props.Custom, Size: spec.TotalBytes,
		Req:   props.Requirements{Latency: props.LatencyBulk, ByteAddr: props.Require},
		Owner: "planner-test", Compute: "node0/cpu0", Device: device,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	plan, err := Compile(topo, "node0/cpu0", device, spec)
	if err != nil {
		t.Fatal(err)
	}
	if depthOverride > 0 {
		plan.Depth = depthOverride
		plan.Async = depthOverride > 1
	}
	end, err := Execute(h, 0, plan, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

func TestCompiledPlanBeatsFixedStrategies(t *testing.T) {
	// The compiler's choice must be at least as good as both naive fixed
	// strategies (always depth 1, always depth 8) on both near and far
	// placements.
	spec := AccessSpec{TotalBytes: 256 << 10, ChunkBytes: 4096}
	for _, device := range []string{"node0/dram0", "memnode0/far0"} {
		topo := testbed(t)
		chosen := executeAgainst(t, topo, device, spec, 0)
		topo2 := testbed(t)
		d1 := executeAgainst(t, topo2, device, spec, 1)
		topo3 := testbed(t)
		d8 := executeAgainst(t, topo3, device, spec, 8)
		if chosen > d1 || chosen > d8 {
			t.Errorf("%s: compiled plan (%v) worse than fixed d1 (%v) or d8 (%v)", device, chosen, d1, d8)
		}
	}
}

func TestEstimateMatchesExecution(t *testing.T) {
	// The compiler's cost model replays the simulator, so its estimate
	// must match the measured execution on an uncontended device.
	topo := testbed(t)
	spec := AccessSpec{TotalBytes: 64 << 10, ChunkBytes: 4096}
	plan, err := Compile(topo, "node0/cpu0", "memnode0/far0", spec)
	if err != nil {
		t.Fatal(err)
	}
	measured := executeAgainst(t, topo, "memnode0/far0", spec, plan.Depth)
	diff := float64(measured-plan.Estimated) / float64(plan.Estimated)
	if diff < -0.01 || diff > 0.01 {
		t.Errorf("estimate %v vs measured %v (%.1f%% off)", plan.Estimated, measured, 100*diff)
	}
}

func TestExecuteDeliversAllChunksInOrder(t *testing.T) {
	topo := testbed(t)
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	const total = 10 * 100
	h, err := mgr.Alloc(region.Spec{
		Name: "data", Class: props.Custom, Size: total,
		Req:   props.Requirements{Latency: props.LatencyBulk, ByteAddr: props.Require},
		Owner: "t", Compute: "node0/cpu0", Device: "node0/dram0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	// Fill with a recognizable pattern.
	pattern := make([]byte, total)
	for i := range pattern {
		pattern[i] = byte(i % 251)
	}
	if _, err := h.WriteAt(0, 0, pattern); err != nil {
		t.Fatal(err)
	}
	spec := AccessSpec{TotalBytes: total, ChunkBytes: 100}
	plan, err := Compile(topo, "node0/cpu0", "node0/dram0", spec)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	_, err = Execute(h, 0, plan, spec, func(chunk int, data []byte) error {
		seen = append(seen, chunk)
		for i, b := range data {
			if b != byte((chunk*100+i)%251) {
				t.Fatalf("chunk %d byte %d corrupted", chunk, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 10 {
		t.Fatalf("chunks processed = %d", len(seen))
	}
	for i, c := range seen {
		if c != i {
			t.Fatalf("chunks out of order: %v", seen)
		}
	}
}

func TestExecuteRejectsWrongDevice(t *testing.T) {
	topo := testbed(t)
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	h, err := mgr.Alloc(region.Spec{
		Name: "x", Class: props.PrivateScratch, Size: 4096,
		Owner: "t", Compute: "node0/cpu0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	spec := AccessSpec{TotalBytes: 4096, ChunkBytes: 1024}
	plan := Plan{Device: "memnode0/far0", Depth: 4, Async: true}
	if _, err := Execute(h, 0, plan, spec, nil); err == nil {
		t.Error("device mismatch must fail")
	}
}

// Property: for any sane spec, the estimate is monotone non-increasing as
// depth doubles on far memory up to the point where bandwidth saturates —
// i.e., deeper never costs more than depth 1.
func TestDeeperNeverWorseThanSyncProperty(t *testing.T) {
	topo := testbed(t)
	comp, _ := topo.Compute("node0/cpu0")
	f := func(chunkSel, totalSel uint16, overlap uint16) bool {
		chunk := int64(chunkSel%8192) + 64
		total := chunk * (1 + int64(totalSel%64))
		spec := AccessSpec{
			TotalBytes: total, ChunkBytes: chunk,
			OverlapOpsPerChunk: float64(overlap % 10000),
		}
		d1, err := estimate(topo, "node0/cpu0", "memnode0/far0", spec, 1, comp.Gops)
		if err != nil {
			return false
		}
		for _, d := range []int{2, 4, 8} {
			dn, err := estimate(topo, "node0/cpu0", "memnode0/far0", spec, d, comp.Gops)
			if err != nil {
				return false
			}
			if dn > d1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Execute with the compiled plan round-trips every byte for
// random region contents.
func TestExecuteRoundtripProperty(t *testing.T) {
	topo := testbed(t)
	mgr, err := region.NewManager(region.Config{Topology: topo, Placer: placement.NewBestFit(topo)})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int64(rng.Intn(8192) + 256)
		chunk := int64(rng.Intn(int(total))/4 + 64)
		if chunk > total {
			chunk = total
		}
		h, err := mgr.Alloc(region.Spec{
			Name: "rt", Class: props.Custom, Size: total,
			Req:   props.Requirements{Latency: props.LatencyBulk, ByteAddr: props.Require},
			Owner: "t", Compute: "node0/cpu0", Device: "node0/cxl0",
		})
		if err != nil {
			return false
		}
		defer h.Release()
		payload := make([]byte, total)
		rng.Read(payload)
		if _, err := h.WriteAt(0, 0, payload); err != nil {
			return false
		}
		spec := AccessSpec{TotalBytes: total, ChunkBytes: chunk}
		plan, err := Compile(topo, "node0/cpu0", "node0/cxl0", spec)
		if err != nil {
			return false
		}
		got := make([]byte, 0, total)
		if _, err := Execute(h, 0, plan, spec, func(_ int, data []byte) error {
			got = append(got, data...)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != int(total) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

var sinkPlan Plan

func BenchmarkCompile(b *testing.B) {
	topo := testbed(b)
	spec := AccessSpec{TotalBytes: 1 << 20, ChunkBytes: 4096, OverlapOpsPerChunk: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Compile(topo, "node0/cpu0", "memnode0/far0", spec)
		if err != nil {
			b.Fatal(err)
		}
		sinkPlan = p
	}
}
