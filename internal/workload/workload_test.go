package workload

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/props"
)

func runJob(t *testing.T, job *dataflow.Job) *core.Report {
	t.Helper()
	rt, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if live := rt.Regions().Live(); live != 0 {
		t.Fatalf("%s leaked %d regions", job.Name(), live)
	}
	return rep
}

func logOf(rep *core.Report, task, substr string) string {
	for _, l := range rep.Tasks[task].Logs {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}

func TestHospitalJobShape(t *testing.T) {
	j := Hospital(DefaultHospital())
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 5 {
		t.Errorf("tasks = %d, want 5 (Fig. 2)", j.Len())
	}
	if len(j.Sinks()) != 3 {
		t.Errorf("sinks = %d, want T3/T4/T5", len(j.Sinks()))
	}
	t2, _ := j.Get("face-recognition")
	if len(t2.Succs()) != 3 {
		t.Errorf("T2 fan-out = %d, want 3", len(t2.Succs()))
	}
}

func TestHospitalRunProducesAlerts(t *testing.T) {
	rep := runJob(t, Hospital(DefaultHospital()))
	if l := logOf(rep, "alert-caregivers", "alerted caregivers"); l == "" || strings.Contains(l, "alerted caregivers 0 times") {
		t.Errorf("expected alerts, got %q", l)
	}
	if l := logOf(rep, "compute-utilization", "distinct persons"); l == "" {
		t.Error("utilization log missing")
	}
	if l := logOf(rep, "face-recognition", "recognized 32 sightings"); l == "" {
		t.Error("recognition must process every frame")
	}
}

func TestHospitalZeroConfigDefaults(t *testing.T) {
	j := Hospital(HospitalConfig{})
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 5 {
		t.Error("zero config must fall back to defaults")
	}
}

func TestDBMSQueryCorrectness(t *testing.T) {
	// With Rows=4096, Groups=64, Predicate=3: every group keeps at least
	// one row (filter drops ~1/3), so the join over the filtered table must
	// match every probe row.
	cfg := DefaultDBMS()
	rep := runJob(t, DBMS(cfg))
	kept := logOf(rep, "filter", "filter kept")
	if kept == "" {
		t.Fatal("filter log missing")
	}
	var k, total int
	if _, err := sscan(kept, "filter kept %d of %d rows", &k, &total); err != nil {
		t.Fatalf("unparsable filter log %q: %v", kept, err)
	}
	if total != cfg.Rows || k <= 0 || k >= cfg.Rows {
		t.Errorf("filter kept %d of %d — predicate had no effect", k, total)
	}
	join := logOf(rep, "hash-join", "join matched")
	var matches int
	if _, err := sscan(join, "join matched %d probe rows", &matches); err != nil {
		t.Fatalf("unparsable join log %q: %v", join, err)
	}
	// The join probes the aggregate's group rows against the re-used hash
	// index: with ≥1 surviving row per group, every group key must match.
	if matches != cfg.Groups {
		t.Errorf("join matched %d, want all %d groups", matches, cfg.Groups)
	}
}

func TestDBMSAggregateUsesPrivateScratch(t *testing.T) {
	rep := runJob(t, DBMS(DefaultDBMS()))
	dev := rep.Tasks["hash-aggregate"].Regions["group-ht"]
	if dev == "" {
		t.Fatal("group hash table placement missing")
	}
	if strings.Contains(dev, "far") || strings.Contains(dev, "ssd") || strings.Contains(dev, "hdd") {
		t.Errorf("operator state landed on %s — must be near memory", dev)
	}
}

func TestMLTrainingConsumesCache(t *testing.T) {
	rep := runJob(t, ML(DefaultML()))
	if l := logOf(rep, "train", "trained 64 weights"); l == "" {
		t.Error("training log missing")
	}
	if l := logOf(rep, "preprocess", "cached 128 transformed samples"); l == "" {
		t.Error("cache log missing")
	}
	// The sample cache is shared between CPU preprocess and TPU train:
	// both tasks must record the same placement for it.
	p := rep.Tasks["preprocess"].Regions["sample-cache"]
	tr := rep.Tasks["train"].Regions["sample-cache"]
	if p == "" || p != tr {
		t.Errorf("sample cache moved: preprocess=%s train=%s", p, tr)
	}
}

func TestHPCStencilConverges(t *testing.T) {
	rep := runJob(t, HPC(HPCConfig{Grid: 16, Sweeps: 8}))
	sum := logOf(rep, "publish", "checksum")
	var checksum uint64
	if _, err := sscan(sum, "published field, checksum %d", &checksum); err != nil {
		t.Fatalf("unparsable checksum log %q: %v", sum, err)
	}
	// Heat must have diffused from the hot boundary: checksum strictly
	// between the all-cold (0... well, boundary row stays 255·16 in input
	// but interior relaxation loses the boundary) and all-hot extremes.
	if checksum == 0 {
		t.Error("stencil produced an all-zero field")
	}
	if checksum >= 255*16*16 {
		t.Error("stencil produced an all-hot field")
	}
}

func TestStreamWindowTotals(t *testing.T) {
	cfg := DefaultStream()
	rep := runJob(t, StreamWindow(cfg, 3))
	total := logOf(rep, "sink", "sank")
	var window, events, keySum uint64
	if _, err := sscan(total, "window %d: sank %d events (key sum %d)", &window, &events, &keySum); err != nil {
		t.Fatalf("unparsable sink log %q: %v", total, err)
	}
	if window != 3 {
		t.Errorf("sink reported window %d, want 3", window)
	}
	if int(events) != cfg.WindowSize {
		t.Errorf("window accounts for %d events, want all %d", events, cfg.WindowSize)
	}
	// Keys cycle 0..Keys-1 over a full window, so the key sum is exact.
	full := cfg.WindowSize / cfg.Keys * (cfg.Keys * (cfg.Keys - 1) / 2)
	if int(keySum) != full {
		t.Errorf("key sum = %d, want %d", keySum, full)
	}
}

func TestStreamWindowPartitionedMatchesSingle(t *testing.T) {
	cfg := DefaultStream()
	cfg.Partitions = 4
	rep := runJob(t, StreamWindow(cfg, 0))
	total := logOf(rep, "sink", "sank")
	var window, events, keySum uint64
	if _, err := sscan(total, "window %d: sank %d events (key sum %d)", &window, &events, &keySum); err != nil {
		t.Fatalf("unparsable sink log %q: %v", total, err)
	}
	if int(events) != cfg.WindowSize {
		t.Errorf("partitioned window accounts for %d events, want %d", events, cfg.WindowSize)
	}
	for p := 0; p < cfg.Partitions; p++ {
		name := fmt.Sprintf("window-aggregate-%d", p)
		if _, ok := rep.Tasks[name]; !ok {
			t.Errorf("missing partition task %s", name)
		}
	}
}

func TestRegionHashTableDirect(t *testing.T) {
	// Exercise the hash table against a real runtime context through a
	// one-task job.
	rt, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	j := dataflow.NewJob("ht-test")
	j.Task("t", dataflow.Props{Compute: dataflow.OnCPU, MemLatency: props.LatencyLow}, func(ctx dataflow.Ctx) error {
		ht, err := NewRegionHashTable(ctx, "ht", 64)
		if err != nil {
			return err
		}
		for k := uint32(0); k < 40; k++ {
			if err := ht.Upsert(k, func(old uint32) uint32 { return old + k }); err != nil {
				return err
			}
		}
		for k := uint32(0); k < 40; k++ {
			v, ok, err := ht.Lookup(k)
			if err != nil {
				return err
			}
			if !ok || v != k {
				t.Errorf("lookup %d = (%d,%t)", k, v, ok)
			}
		}
		if _, ok, err := ht.Lookup(999); err != nil || ok {
			t.Error("absent key must miss")
		}
		// Collision chains: same bucket, distinct keys.
		if err := ht.Upsert(1000, func(uint32) uint32 { return 7 }); err != nil {
			return err
		}
		if v, ok, _ := ht.Lookup(1000); !ok || v != 7 {
			t.Error("collision insert lost")
		}
		return nil
	})
	if _, err := rt.Run(j); err != nil {
		t.Fatal(err)
	}
}

func TestRegionHashTableFull(t *testing.T) {
	rt, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	j := dataflow.NewJob("ht-full")
	j.Task("t", dataflow.Props{Compute: dataflow.OnCPU}, func(ctx dataflow.Ctx) error {
		ht, err := NewRegionHashTable(ctx, "ht", 4)
		if err != nil {
			return err
		}
		for k := uint32(0); k < 4; k++ {
			if err := ht.Upsert(k, func(uint32) uint32 { return 1 }); err != nil {
				return err
			}
		}
		if err := ht.Upsert(99, func(uint32) uint32 { return 1 }); err == nil {
			t.Error("5th insert into 4 slots must fail")
		}
		return nil
	})
	if _, err := rt.Run(j); err != nil {
		t.Fatal(err)
	}
}

func TestFNV32Deterministic(t *testing.T) {
	if fnv32([]byte("abc")) != fnv32([]byte("abc")) {
		t.Error("hash must be deterministic")
	}
	if fnv32([]byte("abc")) == fnv32([]byte("abd")) {
		t.Error("hash must discriminate")
	}
}

// sscan is fmt.Sscanf with the target prefix stripped of log decoration.
func sscan(s, format string, args ...any) (int, error) {
	idx := strings.Index(s, strings.SplitN(format, "%", 2)[0])
	if idx >= 0 {
		s = s[idx:]
	}
	return fmt.Sscanf(s, format, args...)
}

func TestGraphBFSMatchesOracle(t *testing.T) {
	cfg := DefaultGraph()
	wantReached, wantMax := GraphOracle(cfg)
	rep := runJob(t, Graph(cfg))
	l := logOf(rep, "bfs", "bfs reached")
	var reached, total, levels int
	if _, err := sscan(l, "bfs reached %d of %d vertices in %d levels", &reached, &total, &levels); err != nil {
		t.Fatalf("unparsable bfs log %q: %v", l, err)
	}
	if reached != wantReached || total != cfg.Vertices {
		t.Errorf("bfs reached %d of %d, oracle says %d", reached, total, wantReached)
	}
	dia := logOf(rep, "summarize", "diameter bound")
	var maxD uint32
	if _, err := sscan(dia, "graph diameter bound %d", &maxD); err != nil {
		t.Fatalf("unparsable summarize log %q: %v", dia, err)
	}
	if maxD != wantMax {
		t.Errorf("diameter bound %d, oracle says %d", maxD, wantMax)
	}
}

func TestGraphConnectedByConstruction(t *testing.T) {
	// The ring edge guarantees full reachability from vertex 0.
	reached, _ := GraphOracle(GraphConfig{Vertices: 100, AvgDegree: 2, Seed: 3})
	if reached != 100 {
		t.Errorf("ring construction must reach all vertices, got %d", reached)
	}
}

func TestGraphZeroConfigDefaults(t *testing.T) {
	j := Graph(GraphConfig{})
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Errorf("graph job tasks = %d", j.Len())
	}
	if DefaultGraph().String() == "" {
		t.Error("config must render")
	}
}
