package workload

import (
	"testing"

	"repro/internal/dataflow"
)

// TestMixDeterministic: the same seed must yield the same job stream —
// names, shapes, task counts — which is what the load harness's replayed
// admission decisions rest on.
func TestMixDeterministic(t *testing.T) {
	draw := func() []string {
		m := NewMix(MixConfig{Seed: 1234})
		var names []string
		for i := 0; i < 200; i++ {
			j := m.Next()
			names = append(names, j.Name())
			if err := j.Validate(); err != nil {
				t.Fatalf("draw %d (%s): %v", i, j.Name(), err)
			}
		}
		return names
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across replays: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestMixSeedsDiffer: different seeds should not produce the same stream.
func TestMixSeedsDiffer(t *testing.T) {
	a, b := NewMix(MixConfig{Seed: 1}), NewMix(MixConfig{Seed: 2})
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next().Name() == b.Next().Name() {
			same++
		}
	}
	if same == 100 {
		t.Error("seeds 1 and 2 produced identical 100-job streams")
	}
}

// TestMixRealFraction pins the RealFraction knob: negative disables real
// jobs, 1 yields only real jobs.
func TestMixRealFraction(t *testing.T) {
	isReal := func(j *dataflow.Job) bool {
		n := j.Name()
		return n == "graph-bfs" || n == "dbms" || len(n) < 3 || n[:3] != "mix"
	}
	synth := NewMix(MixConfig{Seed: 9, RealFraction: -1})
	for i := 0; i < 150; i++ {
		if j := synth.Next(); isReal(j) {
			t.Fatalf("RealFraction -1 produced real job %s", j.Name())
		}
	}
	real := NewMix(MixConfig{Seed: 9, RealFraction: 1})
	for i := 0; i < 50; i++ {
		if j := real.Next(); !isReal(j) {
			t.Fatalf("RealFraction 1 produced synthetic job %s", j.Name())
		}
	}
	if got := real.Drawn(); got != 50 {
		t.Errorf("Drawn = %d, want 50", got)
	}
}

// TestMixHeavyTail: the bounded Pareto size draw must put most jobs near
// the minimum with a real tail toward MaxScale.
func TestMixHeavyTail(t *testing.T) {
	m := NewMix(MixConfig{Seed: 5})
	small, large := 0, 0
	for i := 0; i < 5000; i++ {
		s := m.pareto()
		if s < 1 || s > m.cfg.MaxScale {
			t.Fatalf("size draw %g outside [1, %g]", s, m.cfg.MaxScale)
		}
		if s < 2 {
			small++
		}
		if s > 16 {
			large++
		}
	}
	if small < 2500 {
		t.Errorf("only %d/5000 draws below 2x base — tail too heavy", small)
	}
	if large == 0 {
		t.Error("no draws above 16x base — tail missing entirely")
	}
}
