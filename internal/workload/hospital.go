// Package workload builds the executable dataflow jobs the paper uses as
// motivation: the hospital CCTV pipeline of Figure 2 and the four
// application rows of Table 3 (DBMS, ML/AI, HPC, streaming). Every job has
// real task bodies: bytes move through Memory Regions, hash tables hash,
// stencils relax, windows aggregate — scaled down so the jobs run in
// milliseconds of wall time while exercising every region class.
package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/props"
	"repro/internal/region"
)

// HospitalConfig scales the Figure 2 job.
type HospitalConfig struct {
	Frames    int // CCTV frames per run
	FrameSize int // bytes per frame
	People    int // employees + patients in the directory
}

// DefaultHospital returns the configuration used by tests and benches.
func DefaultHospital() HospitalConfig {
	return HospitalConfig{Frames: 32, FrameSize: 16 << 10, People: 256}
}

// Hospital builds the Figure 2 dataflow: a CCTV stream through
// preprocessing (T1) and GPU face recognition (T2), fanning out to hour
// tracking (T3), a public utilization feed (T4), and persistent caregiver
// alerting (T5). Property annotations follow Figure 2c exactly.
func Hospital(cfg HospitalConfig) *dataflow.Job {
	if cfg.Frames <= 0 {
		cfg = DefaultHospital()
	}
	frameBytes := int64(cfg.Frames * cfg.FrameSize)
	j := dataflow.NewJob("hospital")

	t1 := j.Task("preprocess", dataflow.Props{
		Compute: dataflow.OnGPU, Confidential: true, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Frames*cfg.FrameSize) * 2, OutputBytes: frameBytes,
	}, func(ctx dataflow.Ctx) error {
		// Decode the camera stream into frames held in private scratch,
		// then normalize into the output region.
		raw, err := ctx.Scratch("framebuf", frameBytes)
		if err != nil {
			return err
		}
		out, err := ctx.Output(frameBytes)
		if err != nil {
			return err
		}
		frame := make([]byte, cfg.FrameSize)
		for f := 0; f < cfg.Frames; f++ {
			synthesizeFrame(frame, f)
			now, err := raw.WriteAt(ctx.Now(), int64(f*cfg.FrameSize), frame)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			// "Normalize": invert luma, a real byte transform.
			for i := range frame {
				frame[i] = 255 - frame[i]
			}
			now, err = out.WriteAt(ctx.Now(), int64(f*cfg.FrameSize), frame)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("preprocessed %d frames", cfg.Frames)
		return nil
	})

	t2 := j.Task("face-recognition", dataflow.Props{
		Compute: dataflow.OnGPU, Confidential: true, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Frames) * 1e6, OutputBytes: int64(cfg.Frames * 8),
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// The employee/patient directory lives in Global Scratch: loaded
		// once, reused by every job instance (Table 2's "data exchange").
		dir, err := ctx.Global("directory", props.GlobalScratch, int64(cfg.People*8))
		if err != nil {
			return err
		}
		if err := loadDirectory(ctx, dir, cfg.People); err != nil {
			return err
		}
		out, err := ctx.Output(int64(cfg.Frames * 8))
		if err != nil {
			return err
		}
		frame := make([]byte, cfg.FrameSize)
		rec := make([]byte, 8)
		for f := 0; f < cfg.Frames; f++ {
			now, err := in.ReadAt(ctx.Now(), int64(f*cfg.FrameSize), frame)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			// "Recognize": hash the frame to a person id — deterministic
			// and cheap, but it reads every byte like an embedding would.
			person := fnv32(frame) % uint32(cfg.People)
			binary.BigEndian.PutUint32(rec[:4], person)
			binary.BigEndian.PutUint32(rec[4:], uint32(f))
			now, err = out.WriteAt(ctx.Now(), int64(f*8), rec)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("recognized %d sightings", cfg.Frames)
		return nil
	})

	t3 := j.Task("track-hours", dataflow.Props{
		Compute: dataflow.OnCPU, Confidential: true, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Frames) * 1e3,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Working-hour counters are synchronization state shared across
		// the application: Global State {coherent, sync}.
		hours, err := ctx.Global("hours", props.GlobalState, int64(cfg.People*8))
		if err != nil {
			return err
		}
		rec := make([]byte, 8)
		cnt := make([]byte, 8)
		n, _ := in.Size()
		for off := int64(0); off < n; off += 8 {
			now, err := in.ReadAt(ctx.Now(), off, rec)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			person := binary.BigEndian.Uint32(rec[:4])
			slot := int64(person) * 8
			now, err = hours.ReadAt(ctx.Now(), slot, cnt)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			binary.BigEndian.PutUint64(cnt, binary.BigEndian.Uint64(cnt)+1)
			now, err = hours.WriteAt(ctx.Now(), slot, cnt)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("updated hour counters")
		return nil
	})

	t4 := j.Task("compute-utilization", dataflow.Props{
		Compute: dataflow.OnCPU, // public data: no confidentiality (Fig. 2c)
		Ops:     float64(cfg.Frames) * 1e3, OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		n, _ := in.Size()
		rec := make([]byte, 8)
		seen := map[uint32]bool{}
		for off := int64(0); off < n; off += 8 {
			now, err := in.ReadAt(ctx.Now(), off, rec)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			seen[binary.BigEndian.Uint32(rec[:4])] = true
		}
		out, err := ctx.Output(8)
		if err != nil {
			return err
		}
		util := make([]byte, 8)
		binary.BigEndian.PutUint64(util, uint64(len(seen)))
		now, err := out.WriteAt(ctx.Now(), 0, util)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("ward utilization: %d distinct persons", len(seen))
		return nil
	})

	t5 := j.Task("alert-caregivers", dataflow.Props{
		Compute: dataflow.OnCPU, Confidential: true, Persistent: true,
		MemLatency: props.LatencyLow, Ops: float64(cfg.Frames) * 1e3,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Missing patients must survive a crash (Fig. 2: "a system crash
		// would otherwise mean they might be forgotten") — persistent
		// private scratch, which the placer must put on persistent media.
		missing, err := ctx.Scratch("missing-patients", int64(cfg.People))
		if err != nil {
			return err
		}
		dev, _ := missing.DeviceID()
		ctx.Log("missing-patient ledger on %s", dev)
		n, _ := in.Size()
		rec := make([]byte, 8)
		alerts := 0
		flag := make([]byte, 1)
		for off := int64(0); off < n; off += 8 {
			now, err := in.ReadAt(ctx.Now(), off, rec)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			person := binary.BigEndian.Uint32(rec[:4])
			if person%7 == 0 { // synthetic "exited and not reappeared"
				flag[0] = 1
				now, err = missing.WriteAt(ctx.Now(), int64(person), flag)
				if err != nil {
					return err
				}
				ctx.Wait(now)
				alerts++
			}
		}
		ctx.Log("alerted caregivers %d times", alerts)
		return nil
	})

	t1.Then(t2)
	t2.Then(t3)
	t2.Then(t4)
	t2.Then(t5)
	return j
}

// synthesizeFrame fills buf with a deterministic synthetic camera frame.
func synthesizeFrame(buf []byte, seq int) {
	state := uint32(seq)*2654435761 + 1
	for i := range buf {
		state = state*1664525 + 1013904223
		buf[i] = byte(state >> 24)
	}
}

// loadDirectory writes the person directory into the shared region once
// (idempotent: keyed on a magic header).
func loadDirectory(ctx dataflow.Ctx, dir *region.Handle, people int) error {
	head := make([]byte, 4)
	f := dir.ReadAsync(ctx.Now(), 0, head)
	now, err := f.Await(ctx.Now())
	if err != nil {
		return err
	}
	ctx.Wait(now)
	if binary.BigEndian.Uint32(head) == 0xd1c70421 {
		return nil // already loaded by an earlier job
	}
	entry := make([]byte, 8)
	for p := 0; p < people; p++ {
		binary.BigEndian.PutUint32(entry[:4], uint32(p))
		binary.BigEndian.PutUint32(entry[4:], fnv32([]byte(fmt.Sprintf("person-%d", p))))
		fw := dir.WriteAsync(ctx.Now(), int64(p*8), entry)
		now, err := fw.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
	}
	binary.BigEndian.PutUint32(head, 0xd1c70421)
	fw := dir.WriteAsync(ctx.Now(), 0, head)
	now, err = fw.Await(ctx.Now())
	if err != nil {
		return err
	}
	ctx.Wait(now)
	return nil
}

// fnv32 is the FNV-1a hash.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
