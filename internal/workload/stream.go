package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/props"
	"repro/internal/stream"
)

// StreamConfig scales the Table 3 streaming row as a served stream: a
// synthetic event source cut into tumbling windows, each window an
// incremental source → window-aggregate → sink sub-DAG. Send/receive
// buffers are Private Scratch; cluster/worker state is Global State; the
// rolling result cache is Global Scratch.
type StreamConfig struct {
	Windows     int // windows in the finite synthetic stream
	WindowSize  int // events per tumbling window
	EventSize   int // bytes per event
	Keys        int // distinct event keys
	Partitions  int // key-partition fan-out of the aggregate stage (default 1)
	MaxInFlight int // in-flight window bound (0 = engine default)
}

// DefaultStream returns the configuration used by tests and benches: the
// same 512-event/64-per-window stream the retired monolithic job replayed.
func DefaultStream() StreamConfig {
	return StreamConfig{Windows: 8, WindowSize: 64, EventSize: 64, Keys: 16, Partitions: 1}
}

// norm applies defaults field by field so partial configs stay usable.
func (cfg StreamConfig) norm() StreamConfig {
	def := DefaultStream()
	if cfg.Windows <= 0 {
		cfg.Windows = def.Windows
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = def.WindowSize
	}
	if cfg.EventSize <= 0 {
		cfg.EventSize = def.EventSize
	}
	if cfg.Keys <= 0 {
		cfg.Keys = def.Keys
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	return cfg
}

// StreamEvents synthesizes the finite event slice the stream replays:
// Windows×WindowSize events, key = seq mod Keys, payloads deterministic.
func StreamEvents(cfg StreamConfig) []stream.Event {
	cfg = cfg.norm()
	events := make([]stream.Event, cfg.Windows*cfg.WindowSize)
	for i := range events {
		payload := make([]byte, cfg.EventSize)
		synthesizeFrame(payload, i)
		binary.BigEndian.PutUint32(payload[:4], uint32(i%cfg.Keys)) // event key
		events[i] = stream.Event{Key: uint64(i % cfg.Keys), Payload: payload}
	}
	return events
}

// Stream declares the synthetic stream as a served scenario: submit the
// returned spec via the server's SubmitStream and every window runs as an
// ordinary job named "streaming/w%06d". The spec holds a fresh source —
// build a new spec per run.
func Stream(cfg StreamConfig) stream.Spec {
	cfg = cfg.norm()
	return stream.Spec{
		Name:        "streaming",
		Source:      stream.NewSliceSource(StreamEvents(cfg)),
		WindowSize:  cfg.WindowSize,
		Partitions:  cfg.Partitions,
		MaxInFlight: cfg.MaxInFlight,
		Build: func(w stream.Window, j *dataflow.Job) error {
			return buildStreamWindow(cfg, w, j)
		},
	}
}

// StreamWindow instantiates window w of the synthetic stream as a
// standalone job — what the paper tables and single-job harnesses run.
// It panics on out-of-range w or a build error, like the other workload
// constructors, which never fail on valid configs.
func StreamWindow(cfg StreamConfig, w int) *dataflow.Job {
	cfg = cfg.norm()
	if w < 0 || w >= cfg.Windows {
		panic(fmt.Sprintf("workload: stream window %d out of range [0,%d)", w, cfg.Windows))
	}
	events := StreamEvents(cfg)[w*cfg.WindowSize : (w+1)*cfg.WindowSize]
	j, err := Stream(cfg).Instantiate(w, events)
	if err != nil {
		panic(fmt.Sprintf("workload: stream window build: %v", err))
	}
	return j
}

// buildStreamWindow populates one window's sub-DAG: source stages the
// window's events through a Private Scratch receive buffer, the (possibly
// key-partitioned) aggregate stage heartbeats Global State and folds its
// partition, and sink merges partials into the Global Scratch rolling
// result cache.
func buildStreamWindow(cfg StreamConfig, w stream.Window, j *dataflow.Job) error {
	n := len(w.Events)
	if n == 0 {
		return fmt.Errorf("workload: stream window %d is empty", w.Index)
	}
	// Arrival-order byte offsets of each event in the source's output.
	offs := make([]int64, n+1)
	for i, ev := range w.Events {
		offs[i+1] = offs[i] + int64(len(ev.Payload))
	}
	winBytes := offs[n]

	source := j.Task("source", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(n) * 100, OutputBytes: winBytes,
	}, func(ctx dataflow.Ctx) error {
		// Receive buffer: Private Scratch ("cache/buffer (send, recv.)").
		recv, err := ctx.Scratch("recv-buffer", int64(cfg.EventSize*16))
		if err != nil {
			return err
		}
		out, err := ctx.Output(winBytes)
		if err != nil {
			return err
		}
		for i, ev := range w.Events {
			// Stage through the receive buffer like a real socket read.
			slot := int64(i%16) * int64(cfg.EventSize)
			now, err := recv.WriteAt(ctx.Now(), slot, ev.Payload)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			now, err = out.WriteAt(ctx.Now(), offs[i], ev.Payload)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("window %d: ingested %d events", w.Index, n)
		return nil
	})

	sink := j.Task("sink", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(cfg.Partitions) * 200, OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		ins := ctx.Inputs()
		// Rolling results cache: Global Scratch, one 8-byte slot per
		// window, reused round-robin across the stream.
		cache, err := ctx.Global("result-cache", props.GlobalScratch, 1024)
		if err != nil {
			return err
		}
		agg := make([]byte, 8)
		var count, keySum uint64
		for _, in := range ins {
			now, err := in.ReadAt(ctx.Now(), 0, agg)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			count += uint64(binary.BigEndian.Uint32(agg[:4]))
			keySum += uint64(binary.BigEndian.Uint32(agg[4:]))
		}
		binary.BigEndian.PutUint32(agg[:4], uint32(count))
		binary.BigEndian.PutUint32(agg[4:], uint32(keySum))
		f := cache.WriteAsync(ctx.Now(), int64(w.Index%128)*8, agg)
		now, err := f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		out, err := ctx.Output(8)
		if err != nil {
			return err
		}
		res := make([]byte, 8)
		binary.BigEndian.PutUint64(res, count)
		now, err = out.WriteAt(ctx.Now(), 0, res)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("window %d: sank %d events (key sum %d)", w.Index, count, keySum)
		return nil
	})

	// Key-partitioned aggregate fan-out. A single partition keeps the
	// Table 3 task name "window-aggregate" verbatim.
	parts := make([][]int, cfg.Partitions)
	for i, ev := range w.Events {
		p := int(ev.Key % uint64(cfg.Partitions))
		parts[p] = append(parts[p], i)
	}
	for p := 0; p < cfg.Partitions; p++ {
		name := "window-aggregate"
		if cfg.Partitions > 1 {
			name = fmt.Sprintf("window-aggregate-%d", p)
		}
		idx := parts[p]
		slot := p
		agg := j.Task(name, dataflow.Props{
			Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
			Ops: float64(len(idx))*300 + 100, OutputBytes: 8,
		}, func(ctx dataflow.Ctx) error {
			in := ctx.Inputs()[0]
			// Worker liveness/state: Global State, one heartbeat slot per
			// partition worker.
			worker, err := ctx.Global("cluster-state", props.GlobalState, 128)
			if err != nil {
				return err
			}
			hb := make([]byte, 8)
			binary.BigEndian.PutUint64(hb, 1) // mark worker alive
			now, err := worker.WriteAt(ctx.Now(), int64(slot%16)*8, hb)
			if err != nil {
				return err
			}
			ctx.Wait(now)

			out, err := ctx.Output(8)
			if err != nil {
				return err
			}
			var max int
			for _, i := range idx {
				if l := len(w.Events[i].Payload); l > max {
					max = l
				}
			}
			buf := make([]byte, max)
			var count, keySum uint32
			for _, i := range idx {
				ev := buf[:len(w.Events[i].Payload)]
				now, err := in.ReadAt(ctx.Now(), offs[i], ev)
				if err != nil {
					return err
				}
				ctx.Wait(now)
				count++
				keySum += binary.BigEndian.Uint32(ev[:4])
			}
			res := make([]byte, 8)
			binary.BigEndian.PutUint32(res[:4], count)
			binary.BigEndian.PutUint32(res[4:], keySum)
			now, err = out.WriteAt(ctx.Now(), 0, res)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			ctx.Log("window %d partition %d: aggregated %d events", w.Index, slot, count)
			return nil
		})
		source.Then(agg)
		agg.Then(sink)
	}
	return nil
}
