package workload

// Mix is the traffic-shaped job sampler behind the open-loop load harness
// (internal/loadgen): production traffic is not one job repeated, it is a
// stream of mostly-small requests with a heavy tail of large ones. Sizes
// are drawn from a bounded Pareto distribution and stamped onto a rotation
// of DAG shapes (chains, fan-outs, diamonds) with declared-cost task
// bodies, plus a configurable fraction of the full Table 3 workloads
// (graph analytics, DBMS) so the stream also carries jobs with real bodies
// that move bytes through Memory Regions.
//
// A Mix is deterministic: the same seed yields the same job sequence —
// names, shapes, sizes — which is what lets a fixed-seed harness run
// reproduce its admission decisions exactly.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataflow"
)

// MixConfig tunes the traffic mix.
type MixConfig struct {
	// Seed drives every draw (shape, size, family). Same seed, same stream.
	Seed int64
	// Alpha is the Pareto tail index of the job-size distribution (default
	// 1.6). Smaller is heavier: more of the total work rides in rare large
	// jobs.
	Alpha float64
	// MaxScale caps the size draw (default 64): the largest job carries
	// MaxScale× the base per-task cost.
	MaxScale float64
	// RealFraction is the fraction of draws that build a full Table 3
	// workload (alternating scaled-down graph analytics and DBMS query
	// pipelines) instead of a declared-cost synthetic shape (default
	// 0.08). Negative disables real jobs entirely — the resulting
	// declared-cost-only stream is the one whose makespans the scheduler's
	// estimator predicts exactly (real task bodies accrue virtual time the
	// declared Props cannot express; see DESIGN.md on admission
	// estimates).
	RealFraction float64
}

// Mix is a deterministic job-stream sampler. Not safe for concurrent use;
// the load harness draws from one goroutine.
type Mix struct {
	cfg MixConfig
	rng *rand.Rand
	n   int
}

// NewMix builds a sampler; zero config fields get the defaults above.
func NewMix(cfg MixConfig) *Mix {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1.6
	}
	if cfg.MaxScale <= 1 {
		cfg.MaxScale = 64
	}
	switch {
	case cfg.RealFraction < 0:
		cfg.RealFraction = 0
	case cfg.RealFraction == 0:
		cfg.RealFraction = 0.08
	case cfg.RealFraction > 1:
		cfg.RealFraction = 1
	}
	return &Mix{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// pareto draws a size scale in [1, MaxScale) with tail index Alpha.
func (m *Mix) pareto() float64 {
	u := m.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	s := math.Pow(u, -1/m.cfg.Alpha)
	if s > m.cfg.MaxScale {
		s = m.cfg.MaxScale
	}
	return s
}

// Next draws the stream's next job. Job names are unique within the mix
// ("mix000041-fanout"), though the serving path does not require it.
func (m *Mix) Next() *dataflow.Job {
	i := m.n
	m.n++
	if m.rng.Float64() < m.cfg.RealFraction {
		// Real-body jobs ride the same heavy tail, scaled into ranges that
		// keep their wall cost in the low milliseconds.
		s := m.pareto()
		// The real generators keep their own job names ("graph", "dbms");
		// the serving path namespaces regions per submission, so repeats
		// never collide.
		if i%2 == 0 {
			v := 96 + 24*int(s)
			if v > 768 {
				v = 768
			}
			return Graph(GraphConfig{Vertices: v, AvgDegree: 4, Seed: uint64(m.cfg.Seed) + uint64(i)})
		}
		rows := 256 * int(1+s)
		if rows > 4096 {
			rows = 4096
		}
		return DBMS(DBMSConfig{Rows: rows, Groups: 32, Predicate: 3})
	}
	s := m.pareto()
	switch m.rng.Intn(3) {
	case 0:
		return m.chain(i, s)
	case 1:
		return m.fanout(i, s)
	default:
		return m.diamond(i, s)
	}
}

// chain is a linear pipeline: ingest → transform → reduce, costs scaled by
// the size draw. Nil bodies: tasks cost exactly their declared Ops and
// produce their declared output, so the job is pure virtual-time load.
func (m *Mix) chain(i int, s float64) *dataflow.Job {
	j := dataflow.NewJob(fmt.Sprintf("mix%06d-chain", i))
	depth := 3 + m.rng.Intn(3)
	prev := j.Task("t0", dataflow.Props{Ops: 1e6 * s, OutputBytes: int64(8192 * s)}, nil)
	for k := 1; k < depth; k++ {
		t := j.Task(fmt.Sprintf("t%d", k), dataflow.Props{Ops: 2e6 * s, OutputBytes: int64(4096 * s)}, nil)
		prev.Then(t)
		prev = t
	}
	return j
}

// fanout is src → N branches → sink: the wide phase stresses batching and
// the shared worker pool; width and per-branch cost both ride the draw.
func (m *Mix) fanout(i int, s float64) *dataflow.Job {
	j := dataflow.NewJob(fmt.Sprintf("mix%06d-fanout", i))
	width := 2 + int(math.Sqrt(s)*2)
	if width > 16 {
		width = 16
	}
	src := j.Task("src", dataflow.Props{Ops: 5e5 * s, OutputBytes: int64(4096 * s)}, nil)
	sink := j.Task("sink", dataflow.Props{Ops: 5e5 * s}, nil)
	for k := 0; k < width; k++ {
		b := j.Task(fmt.Sprintf("b%02d", k), dataflow.Props{Ops: 1.5e6 * s, OutputBytes: int64(2048 * s)}, nil)
		src.Then(b)
		b.Then(sink)
	}
	return j
}

// diamond is two parallel chains joining at a sink — enough structure to
// exercise rank fencing without the width of a fanout.
func (m *Mix) diamond(i int, s float64) *dataflow.Job {
	j := dataflow.NewJob(fmt.Sprintf("mix%06d-diamond", i))
	src := j.Task("src", dataflow.Props{Ops: 1e6 * s, OutputBytes: int64(8192 * s)}, nil)
	l1 := j.Task("l1", dataflow.Props{Ops: 2e6 * s, OutputBytes: int64(4096 * s)}, nil)
	l2 := j.Task("l2", dataflow.Props{Ops: 1e6 * s, OutputBytes: int64(2048 * s)}, nil)
	r1 := j.Task("r1", dataflow.Props{Ops: 3e6 * s, OutputBytes: int64(4096 * s)}, nil)
	sink := j.Task("sink", dataflow.Props{Ops: 5e5 * s}, nil)
	src.Then(l1)
	l1.Then(l2)
	l2.Then(sink)
	src.Then(r1)
	r1.Then(sink)
	return j
}

// Drawn reports how many jobs the mix has produced so far.
func (m *Mix) Drawn() int { return m.n }
