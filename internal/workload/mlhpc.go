package workload

import (
	"encoding/binary"

	"repro/internal/dataflow"
	"repro/internal/props"
)

// MLConfig scales the Table 3 ML/AI row — a Cachew-style input pipeline:
// preprocess on CPUs, cache transformed samples in Global Scratch, dispatch
// training tasks on accelerators whose state lives in Private Scratch and
// whose worker bookkeeping lives in Global State.
type MLConfig struct {
	Samples    int // training samples
	SampleSize int // bytes per sample
	Features   int // model weights
	Epochs     int
}

// DefaultML returns the configuration used by tests and benches.
func DefaultML() MLConfig {
	return MLConfig{Samples: 128, SampleSize: 512, Features: 64, Epochs: 2}
}

// ML builds the job.
func ML(cfg MLConfig) *dataflow.Job {
	if cfg.Samples <= 0 {
		cfg = DefaultML()
	}
	cacheBytes := int64(cfg.Samples * cfg.SampleSize)
	j := dataflow.NewJob("ml-pipeline")

	ingest := j.Task("ingest", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(cfg.Samples * cfg.SampleSize),
		OutputBytes: cacheBytes,
	}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(cacheBytes)
		if err != nil {
			return err
		}
		sample := make([]byte, cfg.SampleSize)
		for s := 0; s < cfg.Samples; s++ {
			synthesizeFrame(sample, s) // deterministic raw sample
			now, err := out.WriteAt(ctx.Now(), int64(s*cfg.SampleSize), sample)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("ingested %d samples", cfg.Samples)
		return nil
	})

	preprocess := j.Task("preprocess", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(cfg.Samples*cfg.SampleSize) * 3,
		OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Transformed data goes into the shared cache (Global Scratch),
		// exactly Cachew's "cached transformed data".
		cache, err := ctx.Global("sample-cache", props.GlobalScratch, cacheBytes)
		if err != nil {
			return err
		}
		sample := make([]byte, cfg.SampleSize)
		for s := 0; s < cfg.Samples; s++ {
			now, err := in.ReadAt(ctx.Now(), int64(s*cfg.SampleSize), sample)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			for i := range sample { // feature scaling
				sample[i] = sample[i]/2 + 16
			}
			f := cache.WriteAsync(ctx.Now(), int64(s*cfg.SampleSize), sample)
			now, err = f.Await(ctx.Now())
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		// Tell the dispatcher how many samples are ready (Global State).
		state, err := ctx.Global("worker-state", props.GlobalState, 64)
		if err != nil {
			return err
		}
		cnt := make([]byte, 8)
		binary.BigEndian.PutUint64(cnt, uint64(cfg.Samples))
		now, err := state.WriteAt(ctx.Now(), 0, cnt)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("cached %d transformed samples", cfg.Samples)
		return nil
	})

	train := j.Task("train", dataflow.Props{
		Compute: dataflow.OnTPU, Ops: float64(cfg.Samples*cfg.Features*cfg.Epochs) * 4,
		OutputBytes: int64(cfg.Features * 4),
	}, func(ctx dataflow.Ctx) error {
		// Model state on the accelerator: Private Scratch.
		weights, err := ctx.Scratch("weights", int64(cfg.Features*4))
		if err != nil {
			return err
		}
		cache, err := ctx.Global("sample-cache", props.GlobalScratch, cacheBytes)
		if err != nil {
			return err
		}
		state, err := ctx.Global("worker-state", props.GlobalState, 64)
		if err != nil {
			return err
		}
		cnt := make([]byte, 8)
		now, err := state.ReadAt(ctx.Now(), 0, cnt)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		samples := int(binary.BigEndian.Uint64(cnt))
		if samples > cfg.Samples {
			samples = cfg.Samples
		}
		w := make([]uint32, cfg.Features)
		sample := make([]byte, cfg.SampleSize)
		for e := 0; e < cfg.Epochs; e++ {
			for s := 0; s < samples; s++ {
				// Async prefetch hides the cache latency behind the
				// gradient computation of the previous sample.
				f := cache.ReadAsync(ctx.Now(), int64(s*cfg.SampleSize), sample)
				ctx.Charge(float64(cfg.Features) * 8) // gradient math
				now, err := f.Await(ctx.Now())
				if err != nil {
					return err
				}
				ctx.Wait(now)
				for i := 0; i < cfg.Features; i++ {
					w[i] += uint32(sample[i%len(sample)])
				}
			}
		}
		buf := make([]byte, 4)
		for i, v := range w {
			binary.BigEndian.PutUint32(buf, v)
			now, err := weights.WriteAt(ctx.Now(), int64(i*4), buf)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		// Materialize the trained weights as the job output (the paper's
		// "materialization of output data" pattern).
		out, err := ctx.Output(int64(cfg.Features * 4))
		if err != nil {
			return err
		}
		all := make([]byte, cfg.Features*4)
		now, err = weights.ReadAt(ctx.Now(), 0, all)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		now, err = out.WriteAt(ctx.Now(), 0, all)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("trained %d weights over %d epochs", cfg.Features, cfg.Epochs)
		return nil
	})

	ingest.Then(preprocess)
	preprocess.Then(train)
	return j
}

// HPCConfig scales the Table 3 HPC row: an iterative 2-D Jacobi stencil.
// Node-local working memory is Private Scratch; job metadata is Global
// State; the final field is blob-published to Global Scratch.
type HPCConfig struct {
	Grid   int // grid side length
	Sweeps int
}

// DefaultHPC returns the configuration used by tests and benches.
func DefaultHPC() HPCConfig { return HPCConfig{Grid: 32, Sweeps: 4} }

// HPC builds the job.
func HPC(cfg HPCConfig) *dataflow.Job {
	if cfg.Grid <= 0 {
		cfg = DefaultHPC()
	}
	gridBytes := int64(cfg.Grid * cfg.Grid)
	j := dataflow.NewJob("hpc-stencil")

	initTask := j.Task("init", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(gridBytes), OutputBytes: gridBytes,
	}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(gridBytes)
		if err != nil {
			return err
		}
		row := make([]byte, cfg.Grid)
		for y := 0; y < cfg.Grid; y++ {
			for x := range row {
				if y == 0 {
					row[x] = 255 // hot boundary
				} else {
					row[x] = 0
				}
			}
			now, err := out.WriteAt(ctx.Now(), int64(y*cfg.Grid), row)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		return nil
	})

	relax := j.Task("relax", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(gridBytes) * float64(cfg.Sweeps) * 5, OutputBytes: gridBytes,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Double-buffered working set in node-local Private Scratch.
		cur, err := ctx.Scratch("grid-a", gridBytes)
		if err != nil {
			return err
		}
		nxt, err := ctx.Scratch("grid-b", gridBytes)
		if err != nil {
			return err
		}
		buf := make([]byte, gridBytes)
		now, err := in.ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		now, err = cur.WriteAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)

		g := cfg.Grid
		a := make([]byte, gridBytes)
		b := make([]byte, gridBytes)
		now, err = cur.ReadAt(ctx.Now(), 0, a)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		for s := 0; s < cfg.Sweeps; s++ {
			for y := 1; y < g-1; y++ {
				for x := 1; x < g-1; x++ {
					i := y*g + x
					b[i] = byte((int(a[i-1]) + int(a[i+1]) + int(a[i-g]) + int(a[i+g])) / 4)
				}
			}
			// Persist the sweep through the scratch region (paying its
			// placement's cost), then swap buffers.
			now, err = nxt.WriteAt(ctx.Now(), 0, b)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			a, b = b, a
			cur, nxt = nxt, cur
		}
		// Progress heartbeat in Global State.
		meta, err := ctx.Global("job-meta", props.GlobalState, 64)
		if err != nil {
			return err
		}
		hb := make([]byte, 8)
		binary.BigEndian.PutUint64(hb, uint64(cfg.Sweeps))
		now, err = meta.WriteAt(ctx.Now(), 0, hb)
		if err != nil {
			return err
		}
		ctx.Wait(now)

		out, err := ctx.Output(gridBytes)
		if err != nil {
			return err
		}
		now, err = out.WriteAt(ctx.Now(), 0, a)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("relaxed %d sweeps on %dx%d grid", cfg.Sweeps, g, g)
		return nil
	})

	publish := j.Task("publish", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(gridBytes), OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Blob-store the result field (Global Scratch's object/blob row).
		blob, err := ctx.Global("result-field", props.GlobalScratch, gridBytes)
		if err != nil {
			return err
		}
		buf := make([]byte, gridBytes)
		now, err := in.ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		f := blob.WriteAsync(ctx.Now(), 0, buf)
		now, err = f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		var checksum uint64
		for _, v := range buf {
			checksum += uint64(v)
		}
		out, err := ctx.Output(8)
		if err != nil {
			return err
		}
		sum := make([]byte, 8)
		binary.BigEndian.PutUint64(sum, checksum)
		now, err = out.WriteAt(ctx.Now(), 0, sum)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("published field, checksum %d", checksum)
		return nil
	})

	initTask.Then(relax)
	relax.Then(publish)
	return j
}
