package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/props"
	"repro/internal/region"
)

// DBMS builds the Table 3 database row as a runnable query pipeline:
//
//	scan → filter → hash-aggregate → hash-join
//
// Operator state (the aggregation hash table) lives in Private Scratch;
// query admission is synchronized through a latch word in Global State; the
// aggregation's hash index is published to Global Scratch and *re-used* by
// the join — the paper's example of an operator re-using a transient result
// of an earlier operator.
type DBMSConfig struct {
	Rows      int // base table cardinality
	Groups    int // distinct aggregation keys
	Predicate uint32
}

// DefaultDBMS returns the configuration used by tests and benches.
func DefaultDBMS() DBMSConfig {
	return DBMSConfig{Rows: 4096, Groups: 64, Predicate: 3}
}

const rowSize = 8 // key uint32 | value uint32

// DBMS builds the job.
func DBMS(cfg DBMSConfig) *dataflow.Job {
	if cfg.Rows <= 0 {
		cfg = DefaultDBMS()
	}
	tableBytes := int64(cfg.Rows * rowSize)
	j := dataflow.NewJob("dbms")

	scan := j.Task("scan", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Rows) * 10, OutputBytes: tableBytes,
	}, func(ctx dataflow.Ctx) error {
		// Admission latch in Global State: one writer at a time.
		latch, err := ctx.Global("admission-latch", props.GlobalState, 64)
		if err != nil {
			return err
		}
		word := make([]byte, 8)
		now, err := latch.ReadAt(ctx.Now(), 0, word)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		binary.BigEndian.PutUint64(word, binary.BigEndian.Uint64(word)+1)
		now, err = latch.WriteAt(ctx.Now(), 0, word)
		if err != nil {
			return err
		}
		ctx.Wait(now)

		out, err := ctx.Output(tableBytes)
		if err != nil {
			return err
		}
		// Materialize the base table (synthetic, deterministic).
		row := make([]byte, rowSize)
		for i := 0; i < cfg.Rows; i++ {
			key := uint32(i) % uint32(cfg.Groups)
			val := uint32(i)*2654435761 + 7
			binary.BigEndian.PutUint32(row[:4], key)
			binary.BigEndian.PutUint32(row[4:], val)
			now, err := out.WriteAt(ctx.Now(), int64(i*rowSize), row)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("scanned %d rows", cfg.Rows)
		return nil
	})

	filter := j.Task("filter", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Rows) * 5, OutputBytes: tableBytes,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		out, err := ctx.Output(tableBytes)
		if err != nil {
			return err
		}
		row := make([]byte, rowSize)
		kept := 0
		for i := 0; i < cfg.Rows; i++ {
			now, err := in.ReadAt(ctx.Now(), int64(i*rowSize), row)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			if binary.BigEndian.Uint32(row[4:])%cfg.Predicate == 0 {
				continue // predicate drops the row
			}
			now, err = out.WriteAt(ctx.Now(), int64(kept*rowSize), row)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			kept++
		}
		// Row count header convention: last 8 bytes hold the count.
		cnt := make([]byte, 8)
		binary.BigEndian.PutUint64(cnt, uint64(kept))
		now, err := out.WriteAt(ctx.Now(), tableBytes-8, cnt)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("filter kept %d of %d rows", kept, cfg.Rows)
		return nil
	})

	agg := j.Task("hash-aggregate", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Rows) * 20, OutputBytes: int64(cfg.Groups * rowSize),
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// The group hash table is classic operator state: Private Scratch.
		ht, err := NewRegionHashTable(ctx, "group-ht", cfg.Groups*4)
		if err != nil {
			return err
		}
		n, _ := in.Size()
		rows := int((n - 8) / rowSize)
		cnt := make([]byte, 8)
		now, err := in.ReadAt(ctx.Now(), n-8, cnt)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		if c := binary.BigEndian.Uint64(cnt); c > 0 && int(c) < rows {
			rows = int(c)
		}
		row := make([]byte, rowSize)
		for i := 0; i < rows; i++ {
			now, err := in.ReadAt(ctx.Now(), int64(i*rowSize), row)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			key := binary.BigEndian.Uint32(row[:4])
			val := binary.BigEndian.Uint32(row[4:])
			if err := ht.Upsert(key, func(old uint32) uint32 { return old + val%1000 }); err != nil {
				return err
			}
		}
		// Publish the hash index to Global Scratch so later operators can
		// re-use it (the paper's hash-join example).
		idx, err := ctx.Global("agg-index", props.GlobalScratch, ht.Bytes())
		if err != nil {
			return err
		}
		if err := ht.CopyTo(idx); err != nil {
			return err
		}
		// The aggregate results are also the task output.
		out, err := ctx.Output(int64(cfg.Groups * rowSize))
		if err != nil {
			return err
		}
		if err := ht.Export(out, cfg.Groups); err != nil {
			return err
		}
		ctx.Log("aggregated %d rows into ≤%d groups", rows, cfg.Groups)
		return nil
	})

	join := j.Task("hash-join", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Rows) * 15, OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Re-use the aggregation's hash index from Global Scratch instead
		// of rebuilding it: the cross-operator reuse §2.4 describes.
		idx, err := ctx.Global("agg-index", props.GlobalScratch, 0)
		if err != nil {
			return err
		}
		ht, err := AttachRegionHashTable(ctx, idx)
		if err != nil {
			return err
		}
		matches := uint64(0)
		row := make([]byte, rowSize)
		n, _ := in.Size()
		for off := int64(0); off+rowSize <= n; off += rowSize {
			now, err := in.ReadAt(ctx.Now(), off, row)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			key := binary.BigEndian.Uint32(row[:4])
			if _, ok, err := ht.Lookup(key); err != nil {
				return err
			} else if ok {
				matches++
			}
		}
		out, err := ctx.Output(8)
		if err != nil {
			return err
		}
		res := make([]byte, 8)
		binary.BigEndian.PutUint64(res, matches)
		now, err := out.WriteAt(ctx.Now(), 0, res)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("join matched %d probe rows", matches)
		return nil
	})

	scan.Then(filter)
	filter.Then(agg)
	agg.Then(join)
	return j
}

// RegionHashTable is an open-addressing (linear probing) hash table stored
// *inside* a Memory Region — operator state living where the runtime placed
// it, with every probe paying the region's access cost. Slots are 12 bytes:
// used(4) | key(4) | value(4).
type RegionHashTable struct {
	ctx   dataflow.Ctx
	h     *region.Handle
	slots int
}

const slotSize = 12

// NewRegionHashTable allocates a table with the given slot count in the
// task's Private Scratch.
func NewRegionHashTable(ctx dataflow.Ctx, name string, slots int) (*RegionHashTable, error) {
	if slots < 4 {
		slots = 4
	}
	h, err := ctx.Scratch(name, int64(slots*slotSize))
	if err != nil {
		return nil, err
	}
	return &RegionHashTable{ctx: ctx, h: h, slots: slots}, nil
}

// AttachRegionHashTable wraps an existing region that holds an exported
// table (e.g. from Global Scratch).
func AttachRegionHashTable(ctx dataflow.Ctx, h *region.Handle) (*RegionHashTable, error) {
	size, err := h.Size()
	if err != nil {
		return nil, err
	}
	if size%slotSize != 0 || size == 0 {
		return nil, fmt.Errorf("workload: region size %d is not a slot multiple", size)
	}
	return &RegionHashTable{ctx: ctx, h: h, slots: int(size / slotSize)}, nil
}

// Bytes returns the table's backing size.
func (t *RegionHashTable) Bytes() int64 { return int64(t.slots * slotSize) }

// read one slot.
func (t *RegionHashTable) slot(i int) (used, key, val uint32, err error) {
	buf := make([]byte, slotSize)
	now, err := t.h.ReadAt(t.ctx.Now(), int64(i*slotSize), buf)
	if err != nil {
		return 0, 0, 0, err
	}
	t.ctx.Wait(now)
	return binary.BigEndian.Uint32(buf[0:4]), binary.BigEndian.Uint32(buf[4:8]), binary.BigEndian.Uint32(buf[8:12]), nil
}

func (t *RegionHashTable) setSlot(i int, key, val uint32) error {
	buf := make([]byte, slotSize)
	binary.BigEndian.PutUint32(buf[0:4], 1)
	binary.BigEndian.PutUint32(buf[4:8], key)
	binary.BigEndian.PutUint32(buf[8:12], val)
	now, err := t.h.WriteAt(t.ctx.Now(), int64(i*slotSize), buf)
	if err != nil {
		return err
	}
	t.ctx.Wait(now)
	return nil
}

// Upsert inserts or updates a key with the given value transform.
func (t *RegionHashTable) Upsert(key uint32, f func(old uint32) uint32) error {
	i := int(key*2654435761) % t.slots
	if i < 0 {
		i += t.slots
	}
	for probe := 0; probe < t.slots; probe++ {
		used, k, v, err := t.slot(i)
		if err != nil {
			return err
		}
		if used == 0 {
			return t.setSlot(i, key, f(0))
		}
		if k == key {
			return t.setSlot(i, key, f(v))
		}
		i = (i + 1) % t.slots
	}
	return fmt.Errorf("workload: hash table full (%d slots)", t.slots)
}

// Lookup returns the value for key.
func (t *RegionHashTable) Lookup(key uint32) (uint32, bool, error) {
	i := int(key*2654435761) % t.slots
	if i < 0 {
		i += t.slots
	}
	for probe := 0; probe < t.slots; probe++ {
		used, k, v, err := t.slot(i)
		if err != nil {
			return 0, false, err
		}
		if used == 0 {
			return 0, false, nil
		}
		if k == key {
			return v, true, nil
		}
		i = (i + 1) % t.slots
	}
	return 0, false, nil
}

// CopyTo copies the whole table into another region (publishing to Global
// Scratch). The destination must be at least Bytes() long.
func (t *RegionHashTable) CopyTo(dst *region.Handle) error {
	buf := make([]byte, t.Bytes())
	now, err := t.h.ReadAt(t.ctx.Now(), 0, buf)
	if err != nil {
		return err
	}
	t.ctx.Wait(now)
	f := dst.WriteAsync(t.ctx.Now(), 0, buf)
	now, err = f.Await(t.ctx.Now())
	if err != nil {
		return err
	}
	t.ctx.Wait(now)
	return nil
}

// Export writes up to maxRows (key,value) pairs of used slots into dst.
func (t *RegionHashTable) Export(dst *region.Handle, maxRows int) error {
	row := make([]byte, rowSize)
	out := 0
	for i := 0; i < t.slots && out < maxRows; i++ {
		used, k, v, err := t.slot(i)
		if err != nil {
			return err
		}
		if used == 0 {
			continue
		}
		binary.BigEndian.PutUint32(row[:4], k)
		binary.BigEndian.PutUint32(row[4:], v)
		now, err := dst.WriteAt(t.ctx.Now(), int64(out*rowSize), row)
		if err != nil {
			return err
		}
		t.ctx.Wait(now)
		out++
	}
	return nil
}
