package workload

import (
	"encoding/binary"

	"repro/internal/dataflow"
	"repro/internal/props"
)

// StreamingConfig scales the Table 3 streaming row: a windowed event
// aggregation. Send/receive buffers are Private Scratch; cluster/worker
// state is Global State; the rolling result cache is Global Scratch.
type StreamingConfig struct {
	Events     int // events in the replayed stream
	EventSize  int // bytes per event
	WindowSize int // events per tumbling window
	Keys       int // distinct event keys
}

// DefaultStreaming returns the configuration used by tests and benches.
func DefaultStreaming() StreamingConfig {
	return StreamingConfig{Events: 512, EventSize: 64, WindowSize: 64, Keys: 16}
}

// Streaming builds the job: source → parse → window-aggregate → sink.
func Streaming(cfg StreamingConfig) *dataflow.Job {
	if cfg.Events <= 0 {
		cfg = DefaultStreaming()
	}
	streamBytes := int64(cfg.Events * cfg.EventSize)
	windows := (cfg.Events + cfg.WindowSize - 1) / cfg.WindowSize
	j := dataflow.NewJob("streaming")

	source := j.Task("source", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(cfg.Events) * 100, OutputBytes: streamBytes,
	}, func(ctx dataflow.Ctx) error {
		// Receive buffer: Private Scratch ("cache/buffer (send, recv.)").
		recv, err := ctx.Scratch("recv-buffer", int64(cfg.EventSize*16))
		if err != nil {
			return err
		}
		out, err := ctx.Output(streamBytes)
		if err != nil {
			return err
		}
		ev := make([]byte, cfg.EventSize)
		for e := 0; e < cfg.Events; e++ {
			synthesizeFrame(ev, e)
			binary.BigEndian.PutUint32(ev[:4], uint32(e)%uint32(cfg.Keys)) // event key
			// Stage through the receive buffer like a real socket read.
			slot := int64(e%16) * int64(cfg.EventSize)
			now, err := recv.WriteAt(ctx.Now(), slot, ev)
			if err != nil {
				return err
			}
			ctx.Wait(now)
			now, err = out.WriteAt(ctx.Now(), int64(e*cfg.EventSize), ev)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("replayed %d events", cfg.Events)
		return nil
	})

	aggregate := j.Task("window-aggregate", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(cfg.Events) * 300, OutputBytes: int64(windows * 8),
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Worker liveness/state: Global State.
		worker, err := ctx.Global("cluster-state", props.GlobalState, 128)
		if err != nil {
			return err
		}
		hb := make([]byte, 8)
		binary.BigEndian.PutUint64(hb, 1) // mark worker alive
		now, err := worker.WriteAt(ctx.Now(), 0, hb)
		if err != nil {
			return err
		}
		ctx.Wait(now)

		out, err := ctx.Output(int64(windows * 8))
		if err != nil {
			return err
		}
		ev := make([]byte, cfg.EventSize)
		agg := make([]byte, 8)
		for w := 0; w < windows; w++ {
			var count, keySum uint32
			for i := 0; i < cfg.WindowSize; i++ {
				e := w*cfg.WindowSize + i
				if e >= cfg.Events {
					break
				}
				now, err := in.ReadAt(ctx.Now(), int64(e*cfg.EventSize), ev)
				if err != nil {
					return err
				}
				ctx.Wait(now)
				count++
				keySum += binary.BigEndian.Uint32(ev[:4])
			}
			binary.BigEndian.PutUint32(agg[:4], count)
			binary.BigEndian.PutUint32(agg[4:], keySum)
			now, err := out.WriteAt(ctx.Now(), int64(w*8), agg)
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		ctx.Log("aggregated %d windows", windows)
		return nil
	})

	sink := j.Task("sink", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(windows) * 200, OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		// Rolling results cache: Global Scratch.
		cache, err := ctx.Global("result-cache", props.GlobalScratch, int64(windows*8))
		if err != nil {
			return err
		}
		buf := make([]byte, windows*8)
		now, err := in.ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		f := cache.WriteAsync(ctx.Now(), 0, buf)
		now, err = f.Await(ctx.Now())
		if err != nil {
			return err
		}
		ctx.Wait(now)
		var total uint64
		for w := 0; w < windows; w++ {
			total += uint64(binary.BigEndian.Uint32(buf[w*8:]))
		}
		out, err := ctx.Output(8)
		if err != nil {
			return err
		}
		res := make([]byte, 8)
		binary.BigEndian.PutUint64(res, total)
		now, err = out.WriteAt(ctx.Now(), 0, res)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("sank %d windows totalling %d events", windows, total)
		return nil
	})

	source.Then(aggregate)
	aggregate.Then(sink)
	return j
}
