package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/props"
)

// GraphConfig scales the graph-analytics job — the "large-scale data
// analytics platforms" of the paper's §2.1 motivation, in the shape that
// stresses memory systems hardest: pointer-chasing over an irregular
// structure.
type GraphConfig struct {
	Vertices  int
	AvgDegree int
	Seed      uint64
}

// DefaultGraph returns the configuration used by tests and benches.
func DefaultGraph() GraphConfig { return GraphConfig{Vertices: 512, AvgDegree: 4, Seed: 7} }

// csrBytes returns the encoded size: header(8) | offsets((V+1)*4) | edges(E*4).
func csrBytes(v, e int) int64 { return 8 + int64(v+1)*4 + int64(e)*4 }

// synthesizeCSR builds a deterministic random graph in CSR form.
func synthesizeCSR(cfg GraphConfig) (offsets []uint32, edges []uint32) {
	state := cfg.Seed*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	offsets = make([]uint32, cfg.Vertices+1)
	for v := 0; v < cfg.Vertices; v++ {
		deg := next(cfg.AvgDegree*2) + 1 // 1..2·avg
		offsets[v+1] = offsets[v] + uint32(deg)
	}
	edges = make([]uint32, offsets[cfg.Vertices])
	for v := 0; v < cfg.Vertices; v++ {
		for i := offsets[v]; i < offsets[v+1]; i++ {
			// Bias edges toward a ring + random long links so the graph is
			// connected with interesting diameter.
			if i == offsets[v] {
				edges[i] = uint32((v + 1) % cfg.Vertices)
			} else {
				edges[i] = uint32(next(cfg.Vertices))
			}
		}
	}
	return offsets, edges
}

// referenceBFS computes distances from vertex 0 natively (test oracle).
func referenceBFS(offsets, edges []uint32) []uint32 {
	const unreached = ^uint32(0)
	dist := make([]uint32, len(offsets)-1)
	for i := range dist {
		dist[i] = unreached
	}
	dist[0] = 0
	frontier := []uint32{0}
	for len(frontier) > 0 {
		var nxt []uint32
		for _, v := range frontier {
			for i := offsets[v]; i < offsets[v+1]; i++ {
				w := edges[i]
				if dist[w] == unreached {
					dist[w] = dist[v] + 1
					nxt = append(nxt, w)
				}
			}
		}
		frontier = nxt
	}
	return dist
}

// Graph builds the job: load (materialize CSR) → bfs (level-synchronous
// traversal with the frontier in Private Scratch) → summarize (distance
// histogram into Global Scratch).
func Graph(cfg GraphConfig) *dataflow.Job {
	if cfg.Vertices <= 0 {
		cfg = DefaultGraph()
	}
	offsets, edges := synthesizeCSR(cfg)
	total := csrBytes(cfg.Vertices, len(edges))
	j := dataflow.NewJob("graph-bfs")

	load := j.Task("load", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(total), OutputBytes: total,
	}, func(ctx dataflow.Ctx) error {
		out, err := ctx.Output(total)
		if err != nil {
			return err
		}
		buf := make([]byte, total)
		binary.BigEndian.PutUint32(buf[0:4], uint32(cfg.Vertices))
		binary.BigEndian.PutUint32(buf[4:8], uint32(len(edges)))
		pos := 8
		for _, o := range offsets {
			binary.BigEndian.PutUint32(buf[pos:], o)
			pos += 4
		}
		for _, e := range edges {
			binary.BigEndian.PutUint32(buf[pos:], e)
			pos += 4
		}
		now, err := out.WriteAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("loaded CSR: %d vertices, %d edges", cfg.Vertices, len(edges))
		return nil
	})

	bfs := j.Task("bfs", dataflow.Props{
		Compute: dataflow.OnCPU, MemLatency: props.LatencyLow,
		Ops: float64(len(edges)) * 50, OutputBytes: int64(cfg.Vertices * 4),
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		head := make([]byte, 8)
		now, err := in.ReadAt(ctx.Now(), 0, head)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		v := int(binary.BigEndian.Uint32(head[0:4]))
		e := int(binary.BigEndian.Uint32(head[4:8]))
		// The adjacency structure stays in the input region; the distance
		// array and frontier live in Private Scratch. Every offset/edge
		// read pays the input region's placement cost.
		distR, err := ctx.Scratch("distances", int64(v*4))
		if err != nil {
			return err
		}
		offBase := int64(8)
		edgeBase := offBase + int64(v+1)*4
		readU32 := func(off int64) (uint32, error) {
			var b [4]byte
			done, err := in.ReadAt(ctx.Now(), off, b[:])
			if err != nil {
				return 0, err
			}
			ctx.Wait(done)
			return binary.BigEndian.Uint32(b[:]), nil
		}
		const unreached = ^uint32(0)
		dist := make([]uint32, v) // mirrors the scratch region
		for i := range dist {
			dist[i] = unreached
		}
		dist[0] = 0
		frontier := []uint32{0}
		levels := 0
		touched := 1
		var db [4]byte
		for len(frontier) > 0 {
			var nxt []uint32
			for _, u := range frontier {
				lo, err := readU32(offBase + int64(u)*4)
				if err != nil {
					return err
				}
				hi, err := readU32(offBase + int64(u+1)*4)
				if err != nil {
					return err
				}
				for i := lo; i < hi; i++ {
					w, err := readU32(edgeBase + int64(i)*4)
					if err != nil {
						return err
					}
					if dist[w] == unreached {
						dist[w] = dist[u] + 1
						binary.BigEndian.PutUint32(db[:], dist[w])
						done, err := distR.WriteAt(ctx.Now(), int64(w)*4, db[:])
						if err != nil {
							return err
						}
						ctx.Wait(done)
						nxt = append(nxt, w)
						touched++
					}
				}
			}
			frontier = nxt
			levels++
		}
		out, err := ctx.Output(int64(v * 4))
		if err != nil {
			return err
		}
		res := make([]byte, v*4)
		for i, d := range dist {
			binary.BigEndian.PutUint32(res[i*4:], d)
		}
		now, err = out.WriteAt(ctx.Now(), 0, res)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("bfs reached %d of %d vertices in %d levels", touched, v, levels)
		_ = e
		return nil
	})

	summarize := j.Task("summarize", dataflow.Props{
		Compute: dataflow.OnCPU, Ops: float64(cfg.Vertices) * 20, OutputBytes: 8,
	}, func(ctx dataflow.Ctx) error {
		in := ctx.Inputs()[0]
		n, _ := in.Size()
		buf := make([]byte, n)
		now, err := in.ReadAt(ctx.Now(), 0, buf)
		if err != nil {
			return err
		}
		ctx.Wait(now)
		hist := map[uint32]int{}
		maxD := uint32(0)
		for i := int64(0); i < n; i += 4 {
			d := binary.BigEndian.Uint32(buf[i:])
			if d == ^uint32(0) {
				continue
			}
			hist[d]++
			if d > maxD {
				maxD = d
			}
		}
		// Publish the histogram to Global Scratch for downstream queries.
		blob, err := ctx.Global("distance-histogram", props.GlobalScratch, int64((maxD+1)*8))
		if err != nil {
			return err
		}
		var hb [8]byte
		for d := uint32(0); d <= maxD; d++ {
			binary.BigEndian.PutUint64(hb[:], uint64(hist[d]))
			f := blob.WriteAsync(ctx.Now(), int64(d)*8, hb[:])
			now, err := f.Await(ctx.Now())
			if err != nil {
				return err
			}
			ctx.Wait(now)
		}
		out, err := ctx.Output(8)
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint64(hb[:], uint64(maxD))
		now, err = out.WriteAt(ctx.Now(), 0, hb[:])
		if err != nil {
			return err
		}
		ctx.Wait(now)
		ctx.Log("graph diameter bound %d (from source 0)", maxD)
		return nil
	})

	load.Then(bfs)
	bfs.Then(summarize)
	return j
}

// GraphOracle exposes the reference BFS for tests: it regenerates the same
// graph the job materializes and returns the expected reached count and
// max distance.
func GraphOracle(cfg GraphConfig) (reached int, maxDist uint32) {
	if cfg.Vertices <= 0 {
		cfg = DefaultGraph()
	}
	offsets, edges := synthesizeCSR(cfg)
	dist := referenceBFS(offsets, edges)
	for _, d := range dist {
		if d != ^uint32(0) {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return reached, maxDist
}

// String renders the config.
func (c GraphConfig) String() string {
	return fmt.Sprintf("graph{V=%d,avgDeg=%d,seed=%d}", c.Vertices, c.AvgDegree, c.Seed)
}
