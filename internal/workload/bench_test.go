package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
)

// Per-workload benchmarks: wall-clock ns/op measures the simulator; the
// interesting output is B/op (the engine's allocation footprint per run).

func benchJob(b *testing.B, mk func() *dataflow.Job) {
	b.Helper()
	rt, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(mk()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rt.Regions().Live() != 0 {
		b.Fatalf("leaked %d regions", rt.Regions().Live())
	}
}

func BenchmarkWorkloadHospital(b *testing.B) {
	cfg := DefaultHospital()
	benchJob(b, func() *dataflow.Job { return Hospital(cfg) })
}

func BenchmarkWorkloadDBMS(b *testing.B) {
	cfg := DefaultDBMS()
	benchJob(b, func() *dataflow.Job { return DBMS(cfg) })
}

func BenchmarkWorkloadML(b *testing.B) {
	cfg := DefaultML()
	benchJob(b, func() *dataflow.Job { return ML(cfg) })
}

func BenchmarkWorkloadHPC(b *testing.B) {
	cfg := DefaultHPC()
	benchJob(b, func() *dataflow.Job { return HPC(cfg) })
}

func BenchmarkWorkloadStreamWindow(b *testing.B) {
	cfg := DefaultStream()
	benchJob(b, func() *dataflow.Job { return StreamWindow(cfg, 0) })
}

func BenchmarkWorkloadGraph(b *testing.B) {
	cfg := DefaultGraph()
	benchJob(b, func() *dataflow.Job { return Graph(cfg) })
}
