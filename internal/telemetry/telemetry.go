// Package telemetry provides the cross-layer observability the paper's
// challenge 8(1) calls for: when the runtime hides placement decisions,
// developers still need to debug and profile dataflows across abstraction
// layers. Every layer (region, placement, scheduler, coherence, fault
// tolerance) records into a shared Registry; spans attribute simulated time
// to (job, task, layer) so a report can slice by any of them.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Layer tags which abstraction layer produced a metric or span.
type Layer string

const (
	LayerApp       Layer = "app"
	LayerRuntime   Layer = "runtime"
	LayerRegion    Layer = "region"
	LayerPlacement Layer = "placement"
	LayerScheduler Layer = "scheduler"
	LayerCoherence Layer = "coherence"
	LayerFault     Layer = "fault"
	LayerDevice    Layer = "device"
	LayerCluster   Layer = "cluster"
)

// Registry collects counters and spans. The zero value is unusable; use
// NewRegistry. A nil *Registry is a valid no-op sink, so hot paths can be
// instrumented unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	spans    []Span
	hists    map[string]*Histogram
}

// Span is one attributed slice of simulated time.
type Span struct {
	Layer Layer
	Job   string
	Task  string
	Name  string
	Start time.Duration // virtual time
	End   time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]int64), hists: make(map[string]*Histogram)}
}

// Add increments a named counter. Nil-safe.
func (r *Registry) Add(layer Layer, name string, delta int64) {
	if r == nil {
		return
	}
	key := string(layer) + "/" + name
	r.mu.Lock()
	r.counters[key] += delta
	r.mu.Unlock()
}

// Counter reads a counter (0 if absent). Nil-safe.
func (r *Registry) Counter(layer Layer, name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[string(layer)+"/"+name]
}

// Observe records one sample into the named histogram, creating it with
// DefaultWaitBounds on first use — distribution metrics (queue waits,
// admission latency) where a sum counter would hide the tail. Nil-safe.
func (r *Registry) Observe(layer Layer, name string, d time.Duration) {
	if r == nil {
		return
	}
	key := string(layer) + "/" + name
	r.mu.Lock()
	h, ok := r.hists[key]
	if !ok {
		h = NewHistogram(DefaultWaitBounds()...)
		r.hists[key] = h
	}
	r.mu.Unlock()
	h.Observe(d)
}

// Hist returns the named histogram, or nil if nothing was observed under
// that name. Nil-safe.
func (r *Registry) Hist(layer Layer, name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[string(layer)+"/"+name]
}

// Record stores a completed span. Nil-safe.
func (r *Registry) Record(s Span) {
	if r == nil {
		return
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of all recorded spans. Nil-safe.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Counters returns a sorted copy of all counters. Nil-safe.
func (r *Registry) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Reset clears all state. Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = make(map[string]int64)
	r.spans = nil
	r.hists = make(map[string]*Histogram)
	r.mu.Unlock()
}

// ByLayer aggregates total span time per layer — the "which layer is my
// dataflow spending time in" profile.
func (r *Registry) ByLayer() map[Layer]time.Duration {
	out := make(map[Layer]time.Duration)
	for _, s := range r.Spans() {
		out[s.Layer] += s.Duration()
	}
	return out
}

// ByTask aggregates total span time per (job, task).
func (r *Registry) ByTask() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range r.Spans() {
		out[s.Job+"/"+s.Task] += s.Duration()
	}
	return out
}

// Report renders a deterministic multi-line profile, layers then counters.
func (r *Registry) Report() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	byLayer := r.ByLayer()
	layers := make([]string, 0, len(byLayer))
	for l := range byLayer {
		layers = append(layers, string(l))
	}
	sort.Strings(layers)
	b.WriteString("time by layer:\n")
	for _, l := range layers {
		fmt.Fprintf(&b, "  %-12s %v\n", l, byLayer[Layer(l)])
	}
	counters := r.Counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("counters:\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-32s %d\n", k, counters[k])
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()
	if len(hists) > 0 {
		hkeys := make([]string, 0, len(hists))
		for k := range hists {
			hkeys = append(hkeys, k)
		}
		sort.Strings(hkeys)
		b.WriteString("histograms:\n")
		for _, k := range hkeys {
			s := hists[k].Snapshot()
			fmt.Fprintf(&b, "  %-32s n=%d mean=%v p50=%v p99=%v p999=%v max=%v\n",
				k, s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
		}
	}
	return b.String()
}

// Histogram is a fixed-bucket latency histogram for access profiles.
type Histogram struct {
	mu      sync.Mutex
	bounds  []time.Duration
	buckets []int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

// NewHistogram builds a histogram with the given ascending bucket bounds;
// an implicit +Inf bucket catches the tail.
func NewHistogram(bounds ...time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]int64, len(bounds)+1)}
}

// DefaultLatencyBounds spans Table 1's latency range: 100ns … 10ms.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		100 * time.Nanosecond, time.Microsecond, 10 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
	}
}

// DefaultWaitBounds spans queueing/wall-clock waits: 1µs … 10s. Registry
// histograms created implicitly by Observe use these.
func DefaultWaitBounds() []time.Duration {
	return []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
		time.Second, 10 * time.Second,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// HistSnapshot is a histogram's consistent summary at one instant — the
// latency figures a serving report quotes (count, mean, p50/p99/p999 tail,
// max). Taken atomically under the histogram's lock, so the quantiles are
// mutually consistent even while observations keep arriving.
type HistSnapshot struct {
	Count                     int64
	Mean, P50, P99, P999, Max time.Duration
}

// Snapshot summarizes the histogram. The p999 figure is what open-loop
// traffic runs gate on: with 100k+ submissions the 0.999 tail is resolved by
// real samples, not interpolation artifacts.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / time.Duration(h.count)
	}
	s.P50 = h.quantileLocked(0.50)
	s.P99 = h.quantileLocked(0.99)
	s.P999 = h.quantileLocked(0.999)
	return s
}

// Quantile estimates the q-quantile, q in [0,1], by locating the bucket
// holding the target rank and interpolating linearly inside it (the usual
// Prometheus-style estimator) instead of returning the raw bucket boundary.
// The tail bucket interpolates toward Max, and the estimate is clamped to
// Max so a sparsely filled bucket never reports a latency above any sample.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	target := int64(rank)
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum > target || (q == 1 && cum == h.count && c > 0) {
			var lower, upper time.Duration
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if i < len(h.bounds) {
				upper = h.bounds[i]
			} else {
				upper = h.max
			}
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			v := lower + time.Duration(frac*float64(upper-lower))
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
