package telemetry

import (
	"math/rand"
	"testing"
	"time"
)

// TestQuantileMonotoneProperty is the audit the interpolation clamp (PR 3)
// called for: over random observation sets, Quantile(p) ≤ Quantile(q) must
// hold for every p ≤ q — non-monotonic estimates would make reported p50 >
// p99 possible at bucket boundaries. The estimator passes because the
// selected bucket index is non-decreasing in q, the within-bucket
// interpolation increases with the target rank, and the final max-clamp can
// only engage in the topmost non-empty bucket (min with a constant is
// monotone). This test keeps that invariant pinned.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.5000001, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 300; trial++ {
		h := NewHistogram(DefaultLatencyBounds()...)
		n := rng.Intn(60) + 1
		for i := 0; i < n; i++ {
			// Span below the first bound, across every bucket, and past the
			// last bound into the +Inf tail bucket.
			h.Observe(time.Duration(rng.Int63n(int64(30 * time.Millisecond))))
		}
		qs := append([]float64(nil), grid...)
		for i := 0; i < 20; i++ {
			qs = append(qs, rng.Float64())
		}
		prev, prevQ := time.Duration(-1), -1.0
		for _, q := range sortedFloats(qs) {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile not monotone: Q(%v)=%v < Q(%v)=%v (n=%d)",
					trial, q, v, prevQ, prev, n)
			}
			prev, prevQ = v, q
		}
		if max := h.Max(); h.Quantile(1) != max {
			t.Fatalf("trial %d: Quantile(1)=%v, want max %v", trial, h.Quantile(1), max)
		}
	}
}

func sortedFloats(xs []float64) []float64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}
